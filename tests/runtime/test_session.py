"""Session construction and the fabricate_batch shape contract."""

import numpy as np
import pytest

from repro.meta import MetaArray
from repro.models.configs import OrbitConfig
from repro.runtime import RunSpec, Session, StepLoop, build_cluster, fabricate_batch

TINY = OrbitConfig("tiny", embed_dim=16, depth=2, num_heads=4, in_vars=3,
                   out_vars=2, img_height=8, img_width=8, patch_size=4)


def _spec(**overrides):
    base = dict(config=TINY, num_gpus=8, tp_size=2, fsdp_size=2, ddp_size=2,
                micro_batch=2)
    base.update(overrides)
    return RunSpec(**base)


class TestFabricateBatch:
    def test_grid_shape_contract(self):
        xs = fabricate_batch((2, 3, 8, 8), fsdp_size=3, ddp_size=2)
        assert len(xs) == 2
        assert all(len(row) == 3 for row in xs)
        for row in xs:
            for micro in row:
                assert isinstance(micro, MetaArray)
                assert micro.shape == (2, 3, 8, 8)

    def test_flat_row_when_no_ddp_axis(self):
        row = fabricate_batch((4, 16), fsdp_size=2)
        assert len(row) == 2
        assert all(m.shape == (4, 16) for m in row)

    def test_rejects_non_positive_sizes(self):
        with pytest.raises(ValueError):
            fabricate_batch((2,), fsdp_size=0)
        with pytest.raises(ValueError):
            fabricate_batch((2,), fsdp_size=1, ddp_size=0)


class TestBuildCluster:
    def test_is_the_single_construction_site(self):
        cluster = build_cluster(16, 8)
        assert cluster.world_size == 16

    def test_no_direct_cluster_construction_outside_runtime(self):
        """Grep-level acceptance criterion of the refactor: every stack
        consumer constructs its VirtualCluster through the runtime."""
        import pathlib

        import repro

        src = pathlib.Path(repro.__file__).parent
        offenders = []
        for path in sorted(src.rglob("*.py")):
            rel = path.relative_to(src)
            if rel.parts[0] in ("runtime", "cluster"):
                continue
            text = path.read_text()
            # Constructing one requires importing it; prose mentions in
            # docstrings don't count.
            if "import VirtualCluster" in text and "VirtualCluster(" in text:
                offenders.append(str(rel))
        assert offenders == []


class TestMetaSession:
    def test_builds_the_full_stack(self):
        session = Session(_spec())
        assert session.cluster.world_size == 8
        assert session.plan.tp_size == 2
        assert session.engine.plan is session.plan

    def test_meta_step_traces_one_engine_step(self):
        session = Session(_spec())
        loss, observations = session.meta_step(0)
        assert np.isnan(loss)
        assert observations == 8
        scopes = {span.scope for span in session.tracer.spans}
        assert any(scope.startswith("step.0") for scope in scopes)

    def test_meta_session_has_no_trainer(self):
        session = Session(_spec())
        with pytest.raises(RuntimeError, match="meta"):
            session.trainer

    def test_matches_legacy_run_case_trace(self):
        """The Session-built bench step is bitwise the hand-built one."""
        from repro.bench.harness import BenchCase, run_case

        case = BenchCase("tiny-1n", "unused", 8, 8, tp_size=2, fsdp_size=2,
                         ddp_size=2, micro_batch=2)
        record1 = run_case(case, config=TINY)
        record2 = run_case(case, config=TINY)
        assert record1.step_time_s == record2.step_time_s
        assert record1.spans == record2.spans


class TestNumericSession:
    def test_numeric_step_returns_finite_loss(self):
        session = Session(_spec(meta=False, track_device_memory=False))
        loss, batch_size = session.numeric_step(0)
        assert np.isfinite(loss)
        assert batch_size == 8

    def test_synthetic_batches_follow_the_seeded_stream(self):
        a = Session(_spec(meta=False, seed=3, track_device_memory=False))
        b = Session(_spec(meta=False, seed=3, track_device_memory=False))
        batch_a, batch_b = a.synthetic_batch(), b.synthetic_batch()
        np.testing.assert_array_equal(batch_a.x, batch_b.x)
        np.testing.assert_array_equal(batch_a.y, batch_b.y)

    def test_step_fn_picks_mode(self):
        assert Session(_spec()).step_fn().__name__ == "meta_step"
        spec = _spec(meta=False, track_device_memory=False)
        assert Session(spec).step_fn().__name__ == "numeric_step"

    def test_loop_drives_session(self):
        session = Session(_spec(meta=False, track_device_memory=False))
        result = StepLoop(session.numeric_step).run(3)
        assert len(result.history) == 3
        assert result.observations_seen == 24

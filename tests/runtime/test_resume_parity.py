"""Resume parity: a run killed at step k and resumed from its
checkpoint reproduces the uninterrupted loss trajectory bitwise."""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.runtime import RunSpec, Session, StepLoop
from repro.runtime.checkpoint import resume_trainer, save_trainer
from tests.runtime.test_session import TINY

TOTAL_STEPS = 6
KILL_AT = 3


def _artifact_path(tmp_path, name):
    """CI exports RESUME_ARTIFACT_DIR to keep the parity checkpoint as a
    build artifact; locally the checkpoint stays in tmp_path."""
    art_dir = os.environ.get("RESUME_ARTIFACT_DIR")
    if art_dir:
        Path(art_dir).mkdir(parents=True, exist_ok=True)
        return Path(art_dir) / name
    return tmp_path / name


def _numeric_spec(fold="off"):
    return RunSpec(config=TINY, num_gpus=8, tp_size=2, fsdp_size=2, ddp_size=2,
                   micro_batch=2, meta=False, seed=5, track_device_memory=False,
                   fold=fold)


class TestShardedResumeParity:
    # Numeric sessions never actually fold (symmetry folding is a
    # meta-mode accounting optimization), so the kill-and-resume loss
    # trajectory must be bitwise identical under either policy.
    @pytest.mark.parametrize("fold", ["off", "on"])
    def test_killed_and_resumed_run_matches_bitwise(self, tmp_path, fold):
        spec = _numeric_spec(fold)

        uninterrupted = StepLoop(Session(spec).numeric_step).run(TOTAL_STEPS)

        killed = Session(spec)
        killed_loop = StepLoop(killed.numeric_step)
        killed_loop.run(KILL_AT)
        ckpt = killed.save(_artifact_path(tmp_path, "resume_parity.npz"),
                           loop=killed_loop)
        del killed, killed_loop  # the "node loss"

        resumed = Session(spec)
        state = resumed.resume(ckpt)["loop"]
        loop = StepLoop(
            resumed.numeric_step,
            start_step=state["step"],
            observations_seen=state["observations_seen"],
            history=[tuple(pair) for pair in state["history"]],
        )
        result = loop.run(TOTAL_STEPS - KILL_AT)

        assert result.history == uninterrupted.history  # bitwise

    def test_periodic_checkpointing_through_the_loop(self, tmp_path):
        """checkpoint_fn wiring: Session.save as a StepLoop periodic."""
        spec = _numeric_spec()
        session = Session(spec)
        written = []

        def checkpoint(loop):
            path = session.save(tmp_path / f"step{loop.step}.npz", loop=loop)
            written.append(path)

        StepLoop(session.numeric_step, checkpoint_every=2,
                 checkpoint_fn=checkpoint).run(4)
        assert [p.name for p in written] == ["step2.npz", "step4.npz"]
        assert all(p.exists() for p in written)


class TestFig8SerialResumeParity:
    def _fig8_stack(self, num_steps):
        """The Fig 8 construction, scaled down (one model size)."""
        from repro.data.cmip6 import SyntheticCMIP6Archive
        from repro.data.grid import LatLonGrid
        from repro.data.loader import round_robin_loaders
        from repro.data.normalization import Normalizer
        from repro.data.variables import default_registry
        from repro.models import build_model
        from repro.models.configs import proxy_family
        from repro.train import AdamW, Trainer, WarmupCosineSchedule

        grid = LatLonGrid(16, 32)
        registry = default_registry(6)
        archive = SyntheticCMIP6Archive(grid, registry, years_per_source=0.05,
                                        seed=0)
        datasets = archive.datasets()
        normalizer = Normalizer.fit(datasets[0], num_samples=16)
        config = next(iter(proxy_family(
            in_vars=6, out_vars=6, img_height=grid.nlat, img_width=grid.nlon,
            patch_size=8,
        ).values()))
        batches = round_robin_loaders(
            datasets, 4, lead_steps_choices=(1,), normalizer=normalizer, seed=0
        )
        model = build_model(config, rng=0)
        optimizer = AdamW(model.parameters(), lr=2e-3, weight_decay=0.0)
        schedule = WarmupCosineSchedule(2e-3, warmup_steps=min(5, num_steps - 1),
                                        total_steps=num_steps)
        trainer = Trainer(model, batches, grid.latitude_weights(), optimizer,
                          schedule=schedule)
        return trainer, batches

    def test_fig8_loss_curve_resumes_bitwise(self, tmp_path):
        trainer, _ = self._fig8_stack(TOTAL_STEPS)
        uninterrupted = trainer.train(TOTAL_STEPS)

        killed, killed_batches = self._fig8_stack(TOTAL_STEPS)
        loop = killed.step_loop()
        loop.run(KILL_AT)
        ckpt = save_trainer(tmp_path / "fig8.npz", killed, loop=loop,
                            loader=killed_batches)
        del killed, loop

        resumed, resumed_batches = self._fig8_stack(TOTAL_STEPS)
        state = resume_trainer(ckpt, resumed, loader=resumed_batches)["loop"]
        resumed_loop = resumed.step_loop(
            start_step=state["step"],
            observations_seen=state["observations_seen"],
            history=[tuple(pair) for pair in state["history"]],
        )
        result = resumed_loop.run(TOTAL_STEPS - KILL_AT)

        assert result.history == uninterrupted.history  # bitwise

    def test_loader_state_round_trip(self):
        _, batches = self._fig8_stack(4)
        next(batches)
        next(batches)
        state = batches.state()
        _, fresh = self._fig8_stack(4)
        fresh.restore(state)
        a, b = next(batches), next(fresh)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.lead_time_hours, b.lead_time_hours)

"""Seed parity: serial Trainer and DistributedTrainer produce identical
loss trajectories at TP=FSDP=DDP=1 through the shared StepLoop."""

import numpy as np

from repro.data.loader import Batch
from repro.models import build_model
from repro.runtime import RunSpec, Session
from repro.train import AdamW, Trainer
from tests.runtime.test_session import TINY

STEPS = 4
BATCH = 4


def _batches(seed):
    rng = np.random.default_rng(seed)
    while True:
        yield Batch(
            x=rng.normal(size=(BATCH, TINY.in_vars, TINY.img_height,
                               TINY.img_width)).astype(np.float32),
            y=rng.normal(size=(BATCH, TINY.out_vars, TINY.img_height,
                               TINY.img_width)).astype(np.float32),
            lead_time_hours=np.full((BATCH,), 24.0, dtype=np.float32),
        )


def _serial_history(seed, lr):
    model = build_model(TINY, rng=seed, dtype=np.float64)
    optimizer = AdamW(model.parameters(), lr=lr, weight_decay=0.0)
    trainer = Trainer(model, _batches(seed), np.ones((TINY.img_height, 1)),
                      optimizer)
    return trainer.train(STEPS).history


def _distributed_history(seed, lr):
    spec = RunSpec(config=TINY, num_gpus=1, gpus_per_node=1, tp_size=1,
                   fsdp_size=1, ddp_size=1, micro_batch=BATCH, meta=False,
                   seed=seed, dtype="float64", track_device_memory=False)
    session = Session(spec, lr=lr)
    loop = session.trainer.step_loop(_batches(seed))
    return loop.run(STEPS).history


class TestSerialDistributedParity:
    def test_identical_loss_trajectories_at_trivial_grid(self):
        """At a 1x1x1 grid the engine is the serial model: same seed,
        same batches, same optimizer -> the same trajectory through the
        shared StepLoop, to the last bit in float64."""
        serial = _serial_history(seed=0, lr=1e-3)
        distributed = _distributed_history(seed=0, lr=1e-3)
        assert [obs for obs, _ in serial] == [obs for obs, _ in distributed]
        np.testing.assert_allclose(
            [loss for _, loss in serial],
            [loss for _, loss in distributed],
            rtol=1e-12,
        )

    def test_different_seeds_diverge(self):
        """Sanity check that the parity above is not vacuous."""
        a = _distributed_history(seed=0, lr=1e-3)
        b = _distributed_history(seed=1, lr=1e-3)
        assert [loss for _, loss in a] != [loss for _, loss in b]

"""StepLoop: hooks, budgets, early stop, and resume bookkeeping."""

import math

import pytest

from repro.runtime import StepHooks, StepLoop


def counting_step(losses):
    history = iter(losses)

    def step_fn(step):
        return next(history), 4

    return step_fn


class TestDriving:
    def test_runs_the_budget_and_accumulates_history(self):
        loop = StepLoop(counting_step([1.0, 0.5, 0.25]))
        result = loop.run(3)
        assert result.history == [(4, 1.0), (8, 0.5), (12, 0.25)]
        assert loop.step == 3

    def test_consecutive_runs_continue_the_trajectory(self):
        loop = StepLoop(counting_step([1.0, 0.5, 0.25]))
        loop.run(1)
        result = loop.run(2)
        assert result.history == [(4, 1.0), (8, 0.5), (12, 0.25)]

    def test_non_positive_budget_raises(self):
        with pytest.raises(ValueError):
            StepLoop(counting_step([1.0])).run(0)

    def test_resume_state_continues_numbering(self):
        loop = StepLoop(counting_step([0.5]), start_step=7,
                        observations_seen=28, history=[(28, 1.0)])
        result = loop.run(1)
        assert loop.step == 8
        assert result.history == [(28, 1.0), (32, 0.5)]


class TestHooks:
    def test_hook_order_and_payload(self):
        events = []
        hooks = StepHooks(
            on_step_start=lambda loop, step: events.append(("start", step)),
            on_step_end=lambda loop, ev: events.append(("end", ev.step, ev.loss)),
            on_loss=lambda loop, ev: events.append(("loss", ev.loss)),
        )
        StepLoop(counting_step([2.0]), hooks=hooks).run(1)
        assert events == [("start", 0), ("end", 0, 2.0), ("loss", 2.0)]

    def test_nan_loss_skips_on_loss(self):
        seen = []
        hooks = StepHooks(on_loss=lambda loop, ev: seen.append(ev.loss))
        StepLoop(counting_step([math.nan]), hooks=hooks).run(1)
        assert seen == []

    def test_multiple_hooks_all_fire(self):
        seen = []
        mk = lambda tag: StepHooks(on_step_end=lambda loop, ev: seen.append(tag))
        StepLoop(counting_step([1.0]), hooks=[mk("a"), mk("b")]).run(1)
        assert seen == ["a", "b"]

    def test_request_stop_ends_the_run_early(self):
        hooks = StepHooks(on_step_end=lambda loop, ev: loop.request_stop())
        loop = StepLoop(counting_step([1.0, 2.0, 3.0]), hooks=hooks)
        result = loop.run(3)
        assert len(result.history) == 1


class TestPeriodics:
    def test_checkpoint_cadence(self):
        saved = []
        marks = []
        loop = StepLoop(
            counting_step([1.0] * 6),
            hooks=StepHooks(on_checkpoint=lambda loop, ev: marks.append(ev.step)),
            checkpoint_every=2,
            checkpoint_fn=lambda loop: saved.append(loop.step),
        )
        loop.run(6)
        assert saved == [2, 4, 6]
        assert marks == [1, 3, 5]

    def test_health_cadence_receives_findings(self):
        findings_seen = []
        loop = StepLoop(
            counting_step([1.0] * 4),
            hooks=StepHooks(on_health=lambda loop, f: findings_seen.append(f)),
            health_every=2,
            health_fn=lambda loop: ["finding"],
        )
        loop.run(4)
        assert findings_seen == [["finding"], ["finding"]]

    def test_negative_cadence_rejected(self):
        with pytest.raises(ValueError):
            StepLoop(counting_step([]), checkpoint_every=-1)


class TestTrainerIntegration:
    def test_serial_trainer_routes_through_steploop(self):
        """Trainer.train is StepLoop-driven: hooks attached via
        step_loop() observe exactly the steps train() would run."""
        import numpy as np

        from repro.models import build_model
        from repro.models.configs import OrbitConfig
        from repro.train import AdamW, Trainer
        from tests.runtime.test_session import TINY

        rng = np.random.default_rng(0)

        def batches():
            from repro.data.loader import Batch

            while True:
                yield Batch(
                    x=rng.normal(size=(2, 3, 8, 8)).astype(np.float32),
                    y=rng.normal(size=(2, 2, 8, 8)).astype(np.float32),
                    lead_time_hours=np.full((2,), 6.0, dtype=np.float32),
                )

        model = build_model(TINY, rng=0)
        trainer = Trainer(model, batches(), np.ones((8, 1)),
                          AdamW(model.parameters(), lr=1e-3))
        seen = []
        loop = trainer.step_loop(
            hooks=StepHooks(on_step_end=lambda loop, ev: seen.append(ev.step))
        )
        result = loop.run(3)
        assert seen == [0, 1, 2]
        assert len(result.history) == 3

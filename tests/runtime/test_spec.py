"""RunSpec: validation, derivation, and the policy-metadata schema."""

import pytest

from repro.models.configs import ORBIT_115M, OrbitConfig
from repro.runtime import (
    RunSpec,
    RunSpecError,
    engine_legality_reason,
    grid_rank,
    policy_field_names,
    tp_group_spans_nodes,
)

TINY = OrbitConfig("tiny", embed_dim=16, depth=2, num_heads=4, in_vars=3,
                   out_vars=2, img_height=8, img_width=8, patch_size=4)


class TestValidation:
    def test_valid_spec_constructs(self):
        spec = RunSpec(config=TINY, num_gpus=16, tp_size=4, fsdp_size=2, ddp_size=2)
        assert spec.observations == 4
        assert spec.nodes == 2

    def test_product_mismatch_raises(self):
        with pytest.raises(RunSpecError, match="invalid topology"):
            RunSpec(config=TINY, num_gpus=16, tp_size=3, fsdp_size=2, ddp_size=2)

    def test_ragged_node_shape_raises(self):
        with pytest.raises(RunSpecError, match="whole number"):
            RunSpec(config=TINY, num_gpus=12, gpus_per_node=8,
                    tp_size=2, fsdp_size=3, ddp_size=2)

    def test_non_positive_steps_raises(self):
        with pytest.raises(RunSpecError, match="num_steps"):
            RunSpec(config=TINY, num_gpus=8, tp_size=2, fsdp_size=2,
                    ddp_size=2, num_steps=0)

    def test_every_problem_reported_at_once(self):
        with pytest.raises(RunSpecError) as excinfo:
            RunSpec(config=TINY, num_gpus=16, tp_size=3, fsdp_size=2,
                    ddp_size=2, micro_batch=0, num_steps=0)
        message = str(excinfo.value)
        assert "invalid topology" in message
        assert "micro_batch" in message
        assert "num_steps" in message

    def test_derived_ddp_size(self):
        spec = RunSpec(config=TINY, num_gpus=16, tp_size=4, fsdp_size=2,
                       ddp_size=None)
        assert spec.ddp_size == 2

    def test_derived_ddp_size_non_divisible_raises(self):
        with pytest.raises(RunSpecError, match="does not divide"):
            RunSpec(config=TINY, num_gpus=16, tp_size=3, fsdp_size=2,
                    ddp_size=None)

    def test_replace_revalidates(self):
        spec = RunSpec(config=TINY, num_gpus=16, tp_size=4, fsdp_size=2, ddp_size=2)
        with pytest.raises(RunSpecError):
            spec.replace(num_gpus=24)


class TestPolicyMetadata:
    def test_policy_fields_are_the_knobs(self):
        assert policy_field_names() == {
            "prefetch", "recompute", "tp_innermost", "layer_wrapping", "bf16",
            "fold", "monitor", "replan",
            "serve_max_batch", "serve_window_s", "serve_queue_limit",
            "serve_cache_entries", "serve_min_replicas", "serve_max_replicas",
        }

    def test_policy_fields_do_not_change_identity(self):
        base = RunSpec(config=TINY, num_gpus=16, tp_size=4, fsdp_size=2, ddp_size=2)
        flipped = base.replace(prefetch=False, recompute=True, bf16=True)
        base_id, flipped_id = base.identity(), flipped.identity()
        # tp_innermost changes rank placement, so it IS part of identity;
        # every other policy knob must not be.
        assert base_id == flipped_id


class TestLegality:
    def test_rank_layouts_differ(self):
        inner = grid_rank(0, 1, 0, fsdp_size=2, tp_size=2, tp_innermost=True)
        outer = grid_rank(0, 1, 0, fsdp_size=2, tp_size=2, tp_innermost=False)
        assert inner != outer

    def test_tp_group_spanning_nodes_detected(self):
        assert tp_group_spans_nodes(16, 1, 1, True, gpus_per_node=8)
        assert not tp_group_spans_nodes(8, 2, 1, True, gpus_per_node=8)

    def test_engine_legality_matches_tune_space(self):
        from repro.tune.space import TuneRequest, enumerate_space

        request = TuneRequest(config=ORBIT_115M, num_gpus=16, gpus_per_node=8)
        space = enumerate_space(request)
        for rejection in space.rejections:
            assert engine_legality_reason(
                ORBIT_115M, rejection.tp_size, rejection.fsdp_size,
                rejection.ddp_size, tp_innermost=rejection.tp_innermost,
                gpus_per_node=8,
            ) == rejection.reason

    def test_spec_legality_reason(self):
        spec = RunSpec(config=ORBIT_115M, num_gpus=32, tp_size=16,
                       fsdp_size=2, ddp_size=1, gpus_per_node=8)
        assert "spans node boundaries" in spec.legality_reason()

    def test_training_setup_bridge(self):
        spec = RunSpec(config=ORBIT_115M, num_gpus=16, tp_size=4, fsdp_size=2,
                       ddp_size=2, micro_batch=3, bf16=True, recompute=True)
        setup = spec.training_setup()
        assert setup.tp_size == 4
        assert setup.fsdp_size == 2
        assert setup.micro_batch == 3
        assert setup.bf16 is True
        assert setup.activation_checkpointing is True

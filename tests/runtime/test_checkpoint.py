"""Sharded checkpoint round-trip: dense replicas, flat shards,
optimizer moments, and metadata all restore bitwise."""

import numpy as np
import pytest

from repro.runtime import (
    CHECKPOINT_SCHEMA,
    RunSpec,
    Session,
    StepLoop,
    load_archive,
    save_archive,
)
from tests.runtime.test_session import TINY


def _numeric_spec(**overrides):
    base = dict(config=TINY, num_gpus=8, tp_size=2, fsdp_size=2, ddp_size=2,
                micro_batch=2, meta=False, seed=11, track_device_memory=False)
    base.update(overrides)
    return RunSpec(**base)


class TestArchive:
    def test_round_trip_preserves_bits_and_metadata(self, tmp_path):
        arrays = {
            "dense::0::w": np.arange(6, dtype=np.float32).reshape(2, 3),
            "shard::0::0::1": np.linspace(0, 1, 5),
        }
        path = save_archive(tmp_path / "a.npz", arrays, {"kind": "test", "k": 3})
        loaded, meta = load_archive(path)
        assert meta["kind"] == "test" and meta["k"] == 3
        assert meta["schema"] == CHECKPOINT_SCHEMA
        for key, value in arrays.items():
            np.testing.assert_array_equal(loaded[key], value)
            assert loaded[key].dtype == value.dtype

    def test_unknown_schema_rejected(self, tmp_path):
        path = save_archive(tmp_path / "a.npz", {}, {"schema": 99})
        with pytest.raises(ValueError, match="schema"):
            load_archive(path)

    def test_non_archive_rejected(self, tmp_path):
        path = tmp_path / "b.npz"
        np.savez_compressed(path, x=np.zeros(3))
        with pytest.raises(ValueError, match="not a runtime checkpoint"):
            load_archive(path)


class TestShardedSessionCheckpoint:
    def test_round_trip_restores_every_tensor(self, tmp_path):
        session = Session(_numeric_spec())
        StepLoop(session.numeric_step).run(2)
        path = session.save(tmp_path / "ckpt.npz", metadata={"note": "t2"})

        dense_before = {
            (d, name): np.array(param.data)
            for d in range(2)
            for name, param in session._dense_parameters(d).items()
        }
        shards_before = [
            np.array(shard)
            for d in range(2)
            for sharded in session.engine.sharded_parameters(d)
            for shard in sharded.shards
        ]
        opt_before = session.trainer.optimizer.state_dict()

        # A fresh session from the same spec starts from different state...
        restored = Session(_numeric_spec())
        restored.trainer  # materialize the optimizer
        meta = restored.resume(path)
        assert meta["user"]["note"] == "t2"
        assert meta["step"] == 2

        # ...and lands exactly on the saved tensors after resume.
        for d in range(2):
            for name, param in restored._dense_parameters(d).items():
                np.testing.assert_array_equal(param.data, dense_before[(d, name)])
        shards_after = [
            np.array(shard)
            for d in range(2)
            for sharded in restored.engine.sharded_parameters(d)
            for shard in sharded.shards
        ]
        for before, after in zip(shards_before, shards_after):
            np.testing.assert_array_equal(before, after)
        opt_after = restored.trainer.optimizer.state_dict()
        assert opt_after["scalars"] == opt_before["scalars"]
        for key, value in opt_before["arrays"].items():
            np.testing.assert_array_equal(opt_after["arrays"][key], value)

    def test_spec_identity_mismatch_rejected(self, tmp_path):
        session = Session(_numeric_spec())
        StepLoop(session.numeric_step).run(1)
        path = session.save(tmp_path / "ckpt.npz")
        other = Session(_numeric_spec(tp_size=4, fsdp_size=2, ddp_size=1))
        with pytest.raises(ValueError, match="does not match"):
            other.resume(path)

    def test_meta_session_cannot_save(self, tmp_path):
        session = Session(RunSpec(config=TINY, num_gpus=8, tp_size=2,
                                  fsdp_size=2, ddp_size=2))
        with pytest.raises(RuntimeError, match="meta"):
            session.save(tmp_path / "ckpt.npz")


class TestOptimizerState:
    def test_adamw_state_dict_round_trip(self):
        from repro.train.optimizer import AdamW

        class P:
            def __init__(self, value):
                self.data = np.asarray(value, dtype=np.float64)
                self.grad = np.ones_like(self.data)

        params = [P([1.0, 2.0]), P([[3.0]])]
        opt = AdamW(params, lr=1e-2)
        opt.step()
        state = opt.state_dict()

        fresh = AdamW([P([0.0, 0.0]), P([[0.0]])], lr=1e-2)
        fresh.load_state_dict(state)
        assert fresh.step_count == 1
        np.testing.assert_array_equal(fresh._m[0], opt._m[0])
        np.testing.assert_array_equal(fresh._v[1], opt._v[1])

    def test_adamw_rejects_mismatched_state(self):
        from repro.train.optimizer import AdamW

        class P:
            def __init__(self):
                self.data = np.zeros(2)
                self.grad = None

        opt = AdamW([P()], lr=1e-2)
        with pytest.raises(ValueError, match="moment pairs"):
            opt.load_state_dict({"arrays": {}, "scalars": {"step_count": 0}})

"""Tests for the walltime model, FLOP profiler, and scaling metrics."""

import dataclasses

import numpy as np
import pytest

from repro.memory import Parallelism, TrainingSetup
from repro.models import ORBIT_113B, ORBIT_10B, PROXY_MODELS, build_model
from repro.perf import (
    FlopsProfiler,
    PerfConstants,
    PerformanceModel,
    scaling_efficiency,
    strong_scaling_table,
)
from repro.perf.metrics import epoch_hours


@pytest.fixture(scope="module")
def pm():
    return PerformanceModel()


def hybrid_setup(num_gpus=512, tp=8, fsdp=64, b=3, config=ORBIT_113B, **kwargs):
    return TrainingSetup(
        config, num_gpus, Parallelism.HYBRID_STOP,
        tp_size=tp, fsdp_size=fsdp, micro_batch=b, **kwargs,
    )


class TestTable1Sequence:
    """The optimization ablation must reproduce Table I's ordering and scale."""

    @pytest.fixture(scope="class")
    def rows(self):
        pm = PerformanceModel()
        base = hybrid_setup(b=1, bf16=False, activation_checkpointing=False, prefetch=False)
        return {
            "wrap": pm.time_per_observation(base),
            "bf16": pm.time_per_observation(dataclasses.replace(base, bf16=True)),
            "prefetch": pm.time_per_observation(
                dataclasses.replace(base, bf16=True, prefetch=True)
            ),
            "ckpt": pm.time_per_observation(
                dataclasses.replace(
                    base, bf16=True, prefetch=True,
                    activation_checkpointing=True, micro_batch=3,
                )
            ),
        }

    def test_monotone_improvement(self, rows):
        assert rows["wrap"] > rows["bf16"] > rows["prefetch"] > rows["ckpt"]

    def test_anchor_values(self, rows):
        assert rows["wrap"] == pytest.approx(0.97, rel=0.15)
        assert rows["bf16"] == pytest.approx(0.49, rel=0.15)
        assert rows["prefetch"] == pytest.approx(0.40, rel=0.15)
        assert rows["ckpt"] == pytest.approx(0.17, rel=0.25)

    def test_mixed_precision_is_2x(self, rows):
        assert rows["wrap"] / rows["bf16"] == pytest.approx(2.0, rel=0.05)

    def test_unwrapped_config_ooms(self, pm):
        base = hybrid_setup(b=1, bf16=False, activation_checkpointing=False,
                            prefetch=False, layer_wrapping=False)
        assert not pm.fits(base)


class TestFig7Anchors:
    def test_113b_time_and_throughput_at_49k(self, pm):
        st = pm.step_time(hybrid_setup(num_gpus=49152))
        assert st.time_per_observation_s == pytest.approx(3e-3, rel=0.25)
        assert st.sustained_flops == pytest.approx(684e15, rel=0.25)

    def test_10b_reaches_near_exaflops(self, pm):
        setup = hybrid_setup(num_gpus=49152, config=ORBIT_10B, fsdp=8, b=6)
        st = pm.step_time(setup)
        assert st.sustained_flops > 0.6e18
        assert st.time_per_observation_s < 3e-4

    def test_91_channels_slower_than_48(self, pm):
        """Fig 7b: more input channels raise time per observation."""
        t48 = pm.time_per_observation(hybrid_setup(num_gpus=49152))
        t91 = pm.time_per_observation(
            hybrid_setup(num_gpus=49152, config=ORBIT_113B.with_channels(91))
        )
        assert t91 > t48

    def test_efficiency_range_matches_paper(self, pm):
        """Strong scaling efficiencies at 49,152 GPUs fall in 41-85%+."""
        effs = []
        for config, tp, fsdp, b in (
            (ORBIT_113B, 8, 64, 3),
            (ORBIT_10B, 8, 8, 6),
            (PROXY_MODELS["proxy-115m"], 1, 1, 8),
        ):
            if config.name.startswith("proxy"):
                continue
            t512 = pm.time_per_observation(
                hybrid_setup(num_gpus=512, config=config, tp=tp, fsdp=fsdp, b=b)
            )
            t49k = pm.time_per_observation(
                hybrid_setup(num_gpus=49152, config=config, tp=tp, fsdp=fsdp, b=b)
            )
            effs.append(scaling_efficiency(512, t512, 49152, t49k))
        assert all(0.35 < e <= 1.0 for e in effs)

    def test_epoch_under_an_hour_for_113b(self, pm):
        """Paper: one epoch (1.2M points) in ~0.8 h at 49,152 GPUs."""
        t = pm.time_per_observation(hybrid_setup(num_gpus=49152))
        assert epoch_hours(t) == pytest.approx(0.8, rel=0.35)


class TestFig6Behaviour:
    def test_balanced_config_fastest(self, pm):
        """Fig 6a: FSDP=64/TP=8 beats larger tensor-parallel degrees by a
        lot (the paper reports 25x vs FSDP=2/TP=256, dominated by the
        sub-head score reductions and inter-node activation traffic)."""
        times = {}
        for tp in (8, 64, 256):
            setup = hybrid_setup(tp=tp, fsdp=512 // tp, b=2)
            times[tp] = pm.time_per_observation(setup)
        assert times[8] == min(times.values())
        assert times[256] > 10 * times[8]

    def test_tp_beyond_node_pays_interconnect(self, pm):
        t8 = pm.time_per_observation(hybrid_setup(tp=8, fsdp=64, b=2))
        t64 = pm.time_per_observation(hybrid_setup(tp=64, fsdp=8, b=2))
        assert t64 > t8


class TestModelBasics:
    def test_step_breakdown_sums(self, pm):
        st = pm.step_time(hybrid_setup())
        assert st.step_s == pytest.approx(
            st.compute_s + st.exposed_gather_s + st.tp_allreduce_s + st.ddp_allreduce_s
        )

    def test_max_micro_batch(self, pm):
        setup = hybrid_setup(b=1)
        b = pm.max_micro_batch(setup)
        assert b >= 3
        assert pm.memory_model.fits(dataclasses.replace(setup, micro_batch=b))
        assert not pm.memory_model.fits(dataclasses.replace(setup, micro_batch=b + 1))

    def test_constants_sustained_ratio(self):
        c = PerfConstants()
        assert c.sustained_flops(True, 2) == pytest.approx(2 * c.sustained_flops(False, 2))

    def test_congestion_grows_with_scale(self):
        c = PerfConstants()
        assert c.congestion_factor(512) == 1.0
        assert c.congestion_factor(49152) > c.congestion_factor(4096) > 1.0

    def test_ddp_fills_remaining_gpus(self, pm):
        st_1replica = pm.step_time(hybrid_setup(num_gpus=512))
        st_2replica = pm.step_time(hybrid_setup(num_gpus=1024))
        assert st_2replica.observations_per_step == 2 * st_1replica.observations_per_step


class TestFlopsProfiler:
    def test_counts_real_execution(self):
        cfg = PROXY_MODELS["proxy-115m"]
        model = build_model(cfg, rng=0)
        profiler = FlopsProfiler()
        x = np.zeros((1, cfg.in_vars, cfg.img_height, cfg.img_width), np.float32)
        with profiler.profile():
            model(x, np.zeros(1, np.float32))
        from repro.models.flops import forward_flops_per_sample

        assert profiler.matmul_flops == pytest.approx(forward_flops_per_sample(cfg))
        assert profiler.elapsed_s > 0
        assert profiler.achieved_flops_per_second > 0

    def test_accumulates_and_resets(self):
        profiler = FlopsProfiler()
        from repro.nn import ops

        with profiler.profile():
            ops.matmul(np.ones((2, 2)), np.ones((2, 2)))
        with profiler.profile():
            ops.matmul(np.ones((2, 2)), np.ones((2, 2)))
        assert profiler.num_regions == 2
        first_total = profiler.total_flops
        profiler.reset()
        assert profiler.total_flops == 0 and first_total > 0


class TestMetrics:
    def test_perfect_scaling_is_one(self):
        assert scaling_efficiency(512, 1.0, 1024, 0.5) == pytest.approx(1.0)

    def test_no_speedup_halves(self):
        assert scaling_efficiency(512, 1.0, 1024, 1.0) == pytest.approx(0.5)

    def test_table_builder(self):
        table = strong_scaling_table({512: 1.0, 1024: 0.6, 2048: 0.4})
        assert table[512]["efficiency"] == pytest.approx(1.0)
        assert table[1024]["efficiency"] == pytest.approx(1.0 / 1.2)
        assert table[2048]["efficiency"] == pytest.approx(1.0 / 1.6)

    def test_table_requires_baseline(self):
        with pytest.raises(ValueError):
            strong_scaling_table({1024: 0.5}, baseline_gpus=512)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            scaling_efficiency(0, 1.0, 10, 1.0)
        with pytest.raises(ValueError):
            epoch_hours(0.0)

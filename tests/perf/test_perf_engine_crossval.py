"""Cross-validation: the analytic walltime model vs the executed engine.

The perf model prices communication with the same
:class:`~repro.cluster.costmodel.CollectiveCostModel` the engine's
collectives use, so at small scale the two must agree on *structure*:
which configuration communicates more, and roughly how much.  (Compute
constants differ by design — the engine's flat-efficiency recorder vs
the model's batch-dependent sustained rate — so the check is on
communication volume and ordering, not absolute walltime.)
"""

import numpy as np
import pytest

from repro.cluster import VirtualCluster
from repro.core import HybridSTOPTrunk
from repro.memory.estimator import Parallelism, TrainingSetup
from repro.models import OrbitConfig
from repro.models.flops import parameter_breakdown
from repro.nn.transformer import TransformerStack
from repro.parallel import HybridParallelPlan

CFG = OrbitConfig(
    "xval",
    embed_dim=64,
    depth=2,
    num_heads=4,
    in_vars=4,
    out_vars=4,
    img_height=16,
    img_width=32,
    patch_size=8,
)


def engine_comm_bytes(tp: int, fsdp: int) -> float:
    """Total communication bytes one engine step actually moves."""
    cluster = VirtualCluster(num_gpus=tp * fsdp, gpus_per_node=tp * fsdp)
    plan = HybridParallelPlan(cluster, tp_size=tp, fsdp_size=fsdp)
    serial = TransformerStack(CFG.embed_dim, CFG.depth, CFG.num_heads, rng=0, dtype=np.float32)
    trunk = HybridSTOPTrunk(serial, plan)
    rng = np.random.default_rng(0)
    seq = CFG.num_patches
    xs = [rng.normal(size=(2, seq, CFG.embed_dim)).astype(np.float32) for _ in range(fsdp)]
    gys = [rng.normal(size=(2, seq, CFG.embed_dim)).astype(np.float32) for _ in range(fsdp)]
    trunk.forward(xs)
    trunk.backward(gys)
    return sum(cluster.timeline.ledger(r).comm_bytes for r in range(cluster.world_size))


class TestCommVolumeStructure:
    def test_gather_volume_scales_with_fsdp_presence(self):
        """FSDP > 1 adds shard-gather traffic the F=1 config lacks."""
        with_fsdp = engine_comm_bytes(tp=2, fsdp=2)
        without_fsdp = engine_comm_bytes(tp=4, fsdp=1)
        assert with_fsdp > without_fsdp

    def test_engine_gather_traffic_matches_three_shard_movements(self):
        """The perf model assumes 3 layer-shard movements per layer per
        step (forward gather, backward gather, gradient reduce-scatter);
        the engine's measured gather traffic is the same order."""
        tp, fsdp = 2, 2
        cluster = VirtualCluster(num_gpus=4, gpus_per_node=4)
        plan = HybridParallelPlan(cluster, tp_size=tp, fsdp_size=fsdp)
        serial = TransformerStack(CFG.embed_dim, CFG.depth, CFG.num_heads, rng=0,
                                  dtype=np.float32)
        trunk = HybridSTOPTrunk(serial, plan)
        trunk_bytes = sum(
            p.shard_nbytes * p.num_shards for p in trunk.sharded_parameters()
        )  # one TP rank's shard of every layer, as stored
        rng = np.random.default_rng(0)
        seq = CFG.num_patches
        xs = [rng.normal(size=(1, seq, CFG.embed_dim)).astype(np.float32) for _ in range(2)]
        trunk.forward(xs)
        trunk.backward([x.copy() for x in xs])
        gathered = cluster.timeline.ledger(0).comm_bytes
        # Per rank: >= 3x its shard traffic moved (gathers + reduce-scatter
        # + activation all-reduces); and within an order of magnitude.
        per_rank_shard = trunk_bytes / tp
        assert gathered > 2 * per_rank_shard
        assert gathered < 40 * per_rank_shard

    def test_perf_model_ordering_matches_engine(self):
        """Both agree: more tensor parallelism (beyond the node) costs
        more communication time than the balanced split."""
        from repro.perf import PerformanceModel

        pm = PerformanceModel()
        s_balanced = TrainingSetup(
            CFG, 8, Parallelism.HYBRID_STOP, tp_size=2, fsdp_size=4, micro_batch=2
        )
        s_tp_heavy = TrainingSetup(
            CFG, 8, Parallelism.HYBRID_STOP, tp_size=4, fsdp_size=2, micro_batch=2
        )
        model_balanced = pm.step_time(s_balanced)
        model_heavy = pm.step_time(s_tp_heavy)
        # The model's TP all-reduce share grows with tensor-parallel size.
        assert model_heavy.tp_allreduce_s > model_balanced.tp_allreduce_s

"""Checkpoint round-trip edge cases: dtypes, metadata, overwrite, and
key/shape mismatch errors, plus tracer markers on save/load."""

import numpy as np
import pytest

from repro.nn import Linear, Sequential
from repro.obs import Tracer
from repro.train import load_checkpoint, save_checkpoint


def make_model(rng=0, dtype=np.float32):
    return Sequential([Linear(4, 6, rng=rng, dtype=dtype),
                       Linear(6, 2, rng=rng, dtype=dtype)])


class TestRoundTrip:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.float16])
    def test_dtype_preserved(self, tmp_path, dtype):
        a = make_model(rng=1, dtype=dtype)
        b = make_model(rng=2, dtype=dtype)
        save_checkpoint(a, tmp_path / "ckpt.npz")
        load_checkpoint(b, tmp_path / "ckpt.npz")
        for (name, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert pb.data.dtype == dtype, name
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_empty_metadata_default(self, tmp_path):
        model = make_model()
        save_checkpoint(model, tmp_path / "c.npz")
        assert load_checkpoint(model, tmp_path / "c.npz") == {}

    def test_non_ascii_metadata(self, tmp_path):
        model = make_model()
        metadata = {"run": "Ørbit-试验", "β": 0.9, "nested": {"π": [1, 2]}}
        save_checkpoint(model, tmp_path / "c.npz", metadata=metadata)
        assert load_checkpoint(model, tmp_path / "c.npz") == metadata

    def test_overwrite_existing_file(self, tmp_path):
        path = tmp_path / "c.npz"
        first = make_model(rng=1)
        second = make_model(rng=2)
        save_checkpoint(first, path, metadata={"step": 1})
        save_checkpoint(second, path, metadata={"step": 2})
        probe = make_model(rng=3)
        assert load_checkpoint(probe, path) == {"step": 2}
        np.testing.assert_array_equal(
            probe.state_dict()["0.weight"], second.state_dict()["0.weight"]
        )


class TestErrors:
    def test_missing_key_rejected(self, tmp_path):
        save_checkpoint(Linear(4, 6, rng=0), tmp_path / "c.npz")
        with pytest.raises(KeyError, match="missing"):
            load_checkpoint(make_model(), tmp_path / "c.npz")

    def test_extra_key_rejected(self, tmp_path):
        save_checkpoint(make_model(), tmp_path / "c.npz")
        with pytest.raises(KeyError, match="unexpected"):
            load_checkpoint(Linear(4, 6, rng=0), tmp_path / "c.npz")

    def test_shape_mismatch_rejected(self, tmp_path):
        save_checkpoint(Linear(4, 6, rng=0), tmp_path / "c.npz")
        with pytest.raises(ValueError, match="shape mismatch"):
            load_checkpoint(Linear(4, 7, rng=0), tmp_path / "c.npz")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(make_model(), tmp_path / "nope.npz")


class TestTracing:
    def test_save_and_load_emit_markers(self, tmp_path):
        tracer = Tracer()
        model = make_model()
        save_checkpoint(model, tmp_path / "c.npz", tracer=tracer)
        load_checkpoint(model, tmp_path / "c.npz", tracer=tracer)

        kinds = [(s.kind, s.name) for s in tracer.spans]
        assert ("checkpoint", "save") in kinds
        assert ("checkpoint", "load") in kinds
        assert ("io", "npz.write") in kinds
        assert ("io", "npz.read") in kinds
        save_span = next(s for s in tracer.spans if s.name == "save")
        assert save_span.dur == 0.0  # markers are instants off the busy clock
        assert save_span.nbytes > 0.0
        assert save_span.attrs["params"] == len(model.state_dict())
        counters = tracer.metrics.as_dict()["counters"]
        assert counters["checkpoint.saves"] == 1.0
        assert counters["checkpoint.loads"] == 1.0

    def test_default_tracer_is_silent(self, tmp_path):
        model = make_model()
        save_checkpoint(model, tmp_path / "c.npz")
        load_checkpoint(model, tmp_path / "c.npz")  # must not raise

"""Integration tests: the training loop actually learns.

Uses a tiny grid/model so each run stays in the seconds range.
"""

import numpy as np
import pytest

from repro.data import (
    BatchLoader,
    Climatology,
    LatLonGrid,
    Normalizer,
    SyntheticERA5,
    default_registry,
)
from repro.eval import ForecastEvaluator, ModelForecaster, PersistenceForecaster
from repro.models import OrbitConfig, build_model
from repro.nn import DynamicGradScaler
from repro.nn.precision import BF16_MIXED
from repro.train import AdamW, Finetuner, Trainer, WarmupCosineSchedule

GRID = LatLonGrid(8, 16)
NAMES = ["land_sea_mask", "2m_temperature", "temperature_850", "geopotential_500"]
REG = default_registry(91).subset(NAMES)
CFG = OrbitConfig(
    "tiny-train",
    embed_dim=16,
    depth=1,
    num_heads=2,
    in_vars=len(NAMES),
    out_vars=3,  # dynamic targets
    img_height=8,
    img_width=16,
    patch_size=4,
)
TARGETS = ["2m_temperature", "temperature_850", "geopotential_500"]


@pytest.fixture(scope="module")
def world():
    era5 = SyntheticERA5(GRID, REG, steps_per_year=16, seed=5)
    train = era5.train()
    train.out_names[:] = TARGETS
    train._out_indices[:] = train.system.registry.indices(TARGETS)
    norm = Normalizer.fit(train, num_samples=16)
    return era5, train, norm


def make_trainer(train, norm, seed=0, steps_total=60, scaler=None, precision=None):
    model = build_model(CFG, rng=seed)
    loader = BatchLoader(train, batch_size=4, lead_steps_choices=(1,), normalizer=norm, seed=seed)
    optimizer = AdamW(model.parameters(), lr=2e-3, weight_decay=0.0)
    schedule = WarmupCosineSchedule(2e-3, warmup_steps=5, total_steps=steps_total)
    weights = GRID.latitude_weights()
    trainer = Trainer(
        model, loader.batches(10**6), weights, optimizer,
        schedule=schedule, scaler=scaler, precision=precision,
    )
    return model, trainer


class TestTrainer:
    def test_loss_decreases(self, world):
        _, train, norm = world
        _, trainer = make_trainer(train, norm, seed=1)
        result = trainer.train(50)
        early = np.mean([l for _, l in result.history[:5]])
        late = np.mean([l for _, l in result.history[-5:]])
        assert late < 0.7 * early

    def test_history_counts_observations(self, world):
        _, train, norm = world
        _, trainer = make_trainer(train, norm, seed=2)
        result = trainer.train(3)
        assert [obs for obs, _ in result.history] == [4, 8, 12]

    def test_smoothed_losses(self, world):
        _, train, norm = world
        _, trainer = make_trainer(train, norm, seed=3)
        result = trainer.train(10)
        smoothed = result.smoothed_losses(window=4)
        assert len(smoothed) == 10
        raw_var = np.var([l for _, l in result.history])
        smooth_var = np.var([l for _, l in smoothed])
        assert smooth_var <= raw_var + 1e-12

    def test_bf16_training_with_scaler_learns(self, world):
        """Mixed precision + dynamic scaling still converges (Sec III-B)."""
        _, train, norm = world
        scaler = DynamicGradScaler(init_scale=2.0**8, growth_interval=1000)
        _, trainer = make_trainer(train, norm, seed=4, scaler=scaler, precision=BF16_MIXED)
        result = trainer.train(40)
        early = np.mean([l for _, l in result.history[:5]])
        late = np.mean([l for _, l in result.history[-5:]])
        assert late < early
        assert result.skipped_steps < 10

    def test_deterministic_given_seed(self, world):
        _, train, norm = world
        model_a, trainer_a = make_trainer(train, norm, seed=7)
        trainer_a.train(3)
        model_b, trainer_b = make_trainer(train, norm, seed=7)
        trainer_b.train(3)
        for (n, pa), (_, pb) in zip(model_a.named_parameters(), model_b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data, err_msg=n)

    def test_invalid_steps(self, world):
        _, train, norm = world
        _, trainer = make_trainer(train, norm)
        with pytest.raises(ValueError):
            trainer.train(0)


class TestTrainedModelSkill:
    def test_beats_persistence_beyond_one_step(self, world):
        """A trained tiny model out-forecasts persistence on its world.

        At one step persistence is a near-unbeatable baseline on a
        strongly autocorrelated system; the learned model matches it
        there and wins clearly at two steps, where persistence decays.
        """
        era5, train, norm = world
        model, trainer = make_trainer(train, norm, seed=11, steps_total=300)
        trainer.train(300)

        test = era5.test()
        test.out_names[:] = TARGETS
        test._out_indices[:] = test.system.registry.indices(TARGETS)
        clim = Climatology.from_dataset(train, num_samples=64)
        evaluator = ForecastEvaluator(test, clim, num_initializations=4)
        forecaster = ModelForecaster(model, norm)
        model_1 = evaluator.evaluate(forecaster, lead_steps=1).mean_wacc()
        persistence_1 = evaluator.evaluate(PersistenceForecaster(), lead_steps=1).mean_wacc()
        model_2 = evaluator.evaluate(forecaster, lead_steps=2).mean_wacc()
        persistence_2 = evaluator.evaluate(PersistenceForecaster(), lead_steps=2).mean_wacc()
        assert model_1 > persistence_1 - 0.08  # parity at 6 hours
        assert model_2 > persistence_2 + 0.1  # clear win at 12 hours
        assert model_2 > 0.4


class TestFinetuner:
    def _make_finetuner(self, world, seed=0):
        era5, train, norm = world
        model, trainer = make_trainer(train, norm, seed=seed, steps_total=200)
        val = era5.validation()
        val.out_names[:] = TARGETS
        val._out_indices[:] = val.system.registry.indices(TARGETS)
        clim = Climatology.from_dataset(train, num_samples=32)
        evaluator = ForecastEvaluator(val, clim, num_initializations=2)
        return Finetuner(trainer, evaluator, norm, eval_lead_steps=1)

    def test_history_and_samples(self, world):
        tuner = self._make_finetuner(world, seed=13)
        result = tuner.run(max_steps=12, eval_interval=4, patience=100)
        assert len(result.history) == 3
        assert result.samples_processed == 48
        assert result.samples_to_converge is not None

    def test_converges_and_stops_early(self, world):
        tuner = self._make_finetuner(world, seed=17)
        result = tuner.run(max_steps=400, eval_interval=10, patience=2, tolerance=0.01)
        assert result.converged
        assert result.samples_processed < 400 * 4
        assert result.best_wacc > 0.0

    def test_validation(self, world):
        tuner = self._make_finetuner(world)
        with pytest.raises(ValueError):
            tuner.run(max_steps=0, eval_interval=1)


class TestGradientAccumulation:
    def test_accumulated_update_matches_large_batch(self, world):
        """N micro-steps of batch b == one step of batch N*b (the paper's
        global batch 2880 over micro-batches of 2-3)."""
        _, train, norm = world
        from repro.data import BatchLoader
        from repro.train import AdamW, Trainer

        big_loader = BatchLoader(train, batch_size=8, lead_steps_choices=(1,),
                                 normalizer=norm, seed=31)
        big_batch = big_loader.next_batch()

        class _Replay:
            """Yield fixed batches (slices of one global batch)."""

            def __init__(self, batches):
                self._batches = batches

            def __iter__(self):
                return iter(self._batches)

        from repro.data.loader import Batch
        import numpy as np

        halves = [
            Batch(big_batch.x[:4], big_batch.y[:4], big_batch.lead_time_hours[:4]),
            Batch(big_batch.x[4:], big_batch.y[4:], big_batch.lead_time_hours[4:]),
        ]
        from repro.models import build_model

        model_acc = build_model(CFG, rng=55)
        trainer_acc = Trainer(
            model_acc, _Replay(halves), GRID.latitude_weights(),
            AdamW(model_acc.parameters(), lr=1e-3, weight_decay=0.0),
            accumulation_steps=2,
        )
        trainer_acc.train_step()
        trainer_acc.train_step()

        model_big = build_model(CFG, rng=55)
        trainer_big = Trainer(
            model_big, _Replay([big_batch]), GRID.latitude_weights(),
            AdamW(model_big.parameters(), lr=1e-3, weight_decay=0.0),
        )
        trainer_big.train_step()

        for (name, pa), (_, pb) in zip(
            model_acc.named_parameters(), model_big.named_parameters()
        ):
            # float32 forward/backward: summation-order noise only.
            np.testing.assert_allclose(pa.data, pb.data, rtol=1e-4, atol=1e-7, err_msg=name)

    def test_optimizer_steps_counted_per_update(self, world):
        _, train, norm = world
        _, trainer = make_trainer(train, norm, seed=60)
        trainer.accumulation_steps = 3
        for _ in range(6):
            trainer.train_step()
        assert trainer.step_count == 2

    def test_invalid_accumulation_rejected(self, world):
        _, train, norm = world
        from repro.data import BatchLoader
        from repro.models import build_model
        from repro.train import AdamW, Trainer
        import pytest as _pytest

        model = build_model(CFG, rng=0)
        with _pytest.raises(ValueError):
            Trainer(model, iter([]), GRID.latitude_weights(),
                    AdamW(model.parameters()), accumulation_steps=0)

"""Distributed-vs-serial training equivalence: the end-to-end claim.

The paper's implicit correctness statement — Hybrid-STOP training
computes the same optimization trajectory a single device would — is
checked here over several full optimizer steps (float64, so agreement
is near bit-level).
"""

import numpy as np
import pytest

from repro.cluster import VirtualCluster
from repro.data import BatchLoader, LatLonGrid, Normalizer, SyntheticERA5, default_registry
from repro.models import OrbitConfig, build_model
from repro.parallel import HybridParallelPlan, HybridSTOPEngine
from repro.train import AdamW, DistributedTrainer, Trainer

GRID = LatLonGrid(8, 16)
NAMES = ["2m_temperature", "temperature_850", "geopotential_500", "10m_u_component_of_wind"]
CFG = OrbitConfig(
    "dist-test",
    embed_dim=16,
    depth=2,
    num_heads=2,
    in_vars=len(NAMES),
    out_vars=len(NAMES),
    img_height=8,
    img_width=16,
    patch_size=4,
)


@pytest.fixture(scope="module")
def data():
    registry = default_registry(91).subset(NAMES)
    era5 = SyntheticERA5(GRID, registry, steps_per_year=16, seed=9)
    train = era5.train()
    norm = Normalizer.fit(train, num_samples=16)
    return train, norm


def collect_batches(train, norm, num, batch_size=8, seed=0):
    loader = BatchLoader(train, batch_size, normalizer=norm, seed=seed)
    return [loader.next_batch() for _ in range(num)]


@pytest.mark.parametrize("tp,fsdp,ddp", [(2, 2, 1), (1, 2, 2), (2, 2, 2)])
def test_distributed_training_matches_serial(data, tp, fsdp, ddp):
    train, norm = data
    batches = collect_batches(train, norm, num=3, seed=tp * 10 + fsdp)

    # Serial reference.
    serial = build_model(CFG, rng=21, dtype=np.float64)
    serial_trainer = Trainer(
        serial, iter(batches), GRID.latitude_weights(),
        AdamW(serial.parameters(), lr=1e-3, weight_decay=0.0),
    )
    serial_losses = [serial_trainer.train_step()[0] for _ in range(3)]

    # Distributed instance with identical initial weights.
    cluster = VirtualCluster(num_gpus=tp * fsdp * ddp, gpus_per_node=8)
    plan = HybridParallelPlan(cluster, tp_size=tp, fsdp_size=fsdp, ddp_size=ddp)
    engine = HybridSTOPEngine(build_model(CFG, rng=21, dtype=np.float64), plan)
    trainer = DistributedTrainer(engine, GRID.latitude_weights(), lr=1e-3)
    dist_losses = [trainer.train_step(b) for b in batches]

    np.testing.assert_allclose(dist_losses, serial_losses, rtol=1e-8)

    # Post-training parameters agree: dense...
    serial_params = dict(serial.named_parameters())
    dense = dict(engine.fronts[0][0].named_parameters())
    dense.update(dict(engine.heads[0][0].named_parameters()))
    for name, param in dense.items():
        np.testing.assert_allclose(
            param.data, serial_params[name].data, rtol=1e-8, atol=1e-12, err_msg=name
        )
    # ...and trunk shards (reassembled).
    state = {}
    for d_index in range(1):
        for block_index, block in enumerate(engine.trunks[0].blocks):
            prefix = f"block{block_index}"
            state[f"{prefix}.mlp.fc1.weight"] = block.mlp.gathered_state()["fc1.weight"]
    for name, value in state.items():
        np.testing.assert_allclose(
            value, serial_params[name].data, rtol=1e-8, atol=1e-12, err_msg=name
        )


def test_replicas_stay_synchronized(data):
    train, norm = data
    batches = collect_batches(train, norm, num=2, seed=3)
    cluster = VirtualCluster(num_gpus=4, gpus_per_node=8)
    plan = HybridParallelPlan(cluster, tp_size=1, fsdp_size=2, ddp_size=2)
    engine = HybridSTOPEngine(build_model(CFG, rng=5, dtype=np.float64), plan)
    trainer = DistributedTrainer(engine, GRID.latitude_weights(), lr=1e-3)
    for batch in batches:
        trainer.train_step(batch)
    for (n0, p0), (_, p1) in zip(
        engine.fronts[0][0].named_parameters(), engine.fronts[1][0].named_parameters()
    ):
        np.testing.assert_allclose(p0.data, p1.data, rtol=1e-12, err_msg=n0)
    for sp0, sp1 in zip(
        engine.trunks[0].sharded_parameters(), engine.trunks[1].sharded_parameters()
    ):
        np.testing.assert_allclose(sp0.full(), sp1.full(), rtol=1e-12, err_msg=sp0.name)


def test_indivisible_batch_rejected(data):
    train, norm = data
    cluster = VirtualCluster(num_gpus=4, gpus_per_node=8)
    plan = HybridParallelPlan(cluster, tp_size=1, fsdp_size=2, ddp_size=2)
    engine = HybridSTOPEngine(build_model(CFG, rng=0), plan)
    trainer = DistributedTrainer(engine, GRID.latitude_weights())
    (batch,) = collect_batches(train, norm, num=1, batch_size=6)
    with pytest.raises(ValueError):
        trainer.train_step(batch)


def test_loss_decreases_under_distributed_training(data):
    train, norm = data
    batches = collect_batches(train, norm, num=25, batch_size=4, seed=7)
    cluster = VirtualCluster(num_gpus=4, gpus_per_node=8)
    plan = HybridParallelPlan(cluster, tp_size=2, fsdp_size=2)
    engine = HybridSTOPEngine(build_model(CFG, rng=2), plan)
    trainer = DistributedTrainer(engine, GRID.latitude_weights(), lr=3e-3)
    losses = trainer.train(iter(batches), 25)
    assert np.mean(losses[-5:]) < np.mean(losses[:5])


def test_bf16_distributed_matches_bf16_serial(data):
    """With the BF16 policy, the engine rounds through bfloat16 at the
    same matmuls the serial trainer does — losses agree exactly."""
    from repro.nn.precision import BF16_MIXED

    train, norm = data
    batches = collect_batches(train, norm, num=2, batch_size=4, seed=41)

    serial = build_model(CFG, rng=33)
    serial_trainer = Trainer(
        serial, iter(batches), GRID.latitude_weights(),
        AdamW(serial.parameters(), lr=1e-3, weight_decay=0.0),
        precision=BF16_MIXED,
    )
    serial_losses = [serial_trainer.train_step()[0] for _ in range(2)]

    cluster = VirtualCluster(num_gpus=4, gpus_per_node=8)
    plan = HybridParallelPlan(cluster, tp_size=2, fsdp_size=2)
    engine = HybridSTOPEngine(build_model(CFG, rng=33), plan)
    trainer = DistributedTrainer(
        engine, GRID.latitude_weights(), lr=1e-3, precision=BF16_MIXED
    )
    dist_losses = [trainer.train_step(b) for b in batches]
    # BF16 rounding makes summation order visible; agreement is loose
    # but both must train on the same rounded numerics.
    np.testing.assert_allclose(dist_losses, serial_losses, rtol=2e-2)

"""Tests for AdamW, shard views, schedules, loss, and checkpointing."""

import numpy as np
import pytest

from repro.core.sharding import ShardedParameter, flat_pad_shard
from repro.nn import Linear, Parameter
from repro.train import (
    AdamW,
    WarmupCosineSchedule,
    latitude_weighted_mse,
    load_checkpoint,
    save_checkpoint,
    sharded_views,
)


class TestAdamW:
    def test_minimizes_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = AdamW([p], lr=0.1, weight_decay=0.0)
        for _ in range(200):
            p.zero_grad()
            p.add_grad(2 * p.data)  # d/dx of x^2
            opt.step()
        np.testing.assert_allclose(p.data, 0.0, atol=1e-2)

    def test_weight_decay_shrinks_params(self):
        p = Parameter(np.array([10.0]))
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        p.add_grad(np.zeros(1))
        for _ in range(20):
            opt.step()
        assert abs(p.data[0]) < 10.0

    def test_skips_gradless_params(self):
        p = Parameter(np.array([1.0]))
        AdamW([p], lr=0.1).step()
        assert p.data[0] == 1.0

    def test_per_step_lr_override(self):
        p = Parameter(np.array([1.0]))
        opt = AdamW([p], lr=1.0, weight_decay=0.0)
        p.add_grad(np.ones(1))
        opt.step(lr=0.0)
        assert p.data[0] == 1.0  # zero LR -> no movement

    def test_sharded_views_update_shards(self):
        param = ShardedParameter(np.full((2, 2), 4.0), 2, "w")
        views = sharded_views([param])
        assert len(views) == 2
        param.set_grad_shards(flat_pad_shard(np.ones((2, 2)), 2))
        opt = AdamW(views, lr=0.5, weight_decay=0.0)
        opt.step()
        assert (param.full() < 4.0).all()

    def test_sharded_update_matches_dense_update(self):
        """Shard-wise AdamW == dense AdamW on the same gradient (the
        property that keeps DDP replicas and serial training in sync)."""
        values = np.arange(6.0).reshape(2, 3)
        grads = np.linspace(-1, 1, 6).reshape(2, 3)

        dense = Parameter(values.copy())
        dense.add_grad(grads)
        AdamW([dense], lr=0.1).step()

        sharded = ShardedParameter(values.copy(), 2, "w")
        sharded.set_grad_shards(flat_pad_shard(grads, 2))
        AdamW(sharded_views([sharded]), lr=0.1).step()

        np.testing.assert_allclose(sharded.full(), dense.data, rtol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdamW([], lr=0.0)
        with pytest.raises(ValueError):
            AdamW([], betas=(1.0, 0.9))

    def test_state_bytes(self):
        p = Parameter(np.zeros(10, np.float32))
        opt = AdamW([p])
        assert opt.state_bytes() == 2 * 10 * 8  # float64 m and v


class TestSchedule:
    def test_warmup_ramps_linearly(self):
        sched = WarmupCosineSchedule(1.0, warmup_steps=10, total_steps=100)
        assert sched(0) == pytest.approx(0.1)
        assert sched(4) == pytest.approx(0.5)
        assert sched(9) == pytest.approx(1.0)

    def test_cosine_decays_to_floor(self):
        sched = WarmupCosineSchedule(1.0, warmup_steps=0, total_steps=100, min_lr_fraction=0.1)
        assert sched(0) == pytest.approx(1.0)
        assert sched(100) == pytest.approx(0.1)
        assert sched(1000) == pytest.approx(0.1)  # clamps past the end

    def test_monotone_after_warmup(self):
        sched = WarmupCosineSchedule(1.0, warmup_steps=5, total_steps=50)
        values = [sched(s) for s in range(5, 50)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmupCosineSchedule(0.0, 0, 10)
        with pytest.raises(ValueError):
            WarmupCosineSchedule(1.0, 10, 10)
        with pytest.raises(ValueError):
            WarmupCosineSchedule(1.0, 0, 10)(-1)


class TestLoss:
    def test_zero_for_perfect_prediction(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 4, 8))
        loss, grad = latitude_weighted_mse(x, x, np.ones((4, 1)))
        assert loss == 0.0
        np.testing.assert_array_equal(grad, 0.0)

    def test_matches_plain_mse_with_unit_weights(self):
        rng = np.random.default_rng(1)
        pred, target = rng.normal(size=(2, 1, 4, 4)), rng.normal(size=(2, 1, 4, 4))
        loss, _ = latitude_weighted_mse(pred, target, np.ones((4, 1)))
        assert loss == pytest.approx(((pred - target) ** 2).mean())

    def test_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(2)
        pred = rng.normal(size=(1, 2, 4, 4))
        target = rng.normal(size=(1, 2, 4, 4))
        weights = np.linspace(0.5, 1.5, 4)[:, None]
        _, grad = latitude_weighted_mse(pred, target, weights)
        eps = 1e-6
        probe = pred.copy()
        probe[0, 1, 2, 3] += eps
        up, _ = latitude_weighted_mse(probe, target, weights)
        probe[0, 1, 2, 3] -= 2 * eps
        down, _ = latitude_weighted_mse(probe, target, weights)
        assert grad[0, 1, 2, 3] == pytest.approx((up - down) / (2 * eps), rel=1e-4)

    def test_weighting_emphasizes_equator(self):
        pred = np.zeros((1, 1, 4, 4))
        target_eq = np.zeros((1, 1, 4, 4))
        target_eq[0, 0, 2] = 1.0  # error at a high-weight row
        target_pole = np.zeros((1, 1, 4, 4))
        target_pole[0, 0, 0] = 1.0  # error at a low-weight row
        weights = np.array([0.2, 0.8, 1.8, 1.2])[:, None]
        loss_eq, _ = latitude_weighted_mse(pred, target_eq, weights)
        loss_pole, _ = latitude_weighted_mse(pred, target_pole, weights)
        assert loss_eq > loss_pole

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            latitude_weighted_mse(np.zeros((2, 2)), np.zeros((2, 2)), np.ones((2, 1)))
        with pytest.raises(ValueError):
            latitude_weighted_mse(
                np.zeros((1, 1, 2, 2)), np.zeros((1, 1, 2, 3)), np.ones((2, 1))
            )


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        a = Linear(4, 3, rng=0)
        b = Linear(4, 3, rng=99)
        save_checkpoint(a, tmp_path / "ckpt.npz", metadata={"step": 7})
        meta = load_checkpoint(b, tmp_path / "ckpt.npz")
        assert meta == {"step": 7}
        x = np.random.default_rng(0).normal(size=(2, 4))
        np.testing.assert_array_equal(a(x), b(x))

    def test_creates_parent_dirs(self, tmp_path):
        save_checkpoint(Linear(2, 2, rng=0), tmp_path / "deep" / "dir" / "c.npz")
        assert (tmp_path / "deep" / "dir" / "c.npz").exists()

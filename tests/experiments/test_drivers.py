"""Smoke tests for the experiment drivers (tiny budgets).

The benchmarks exercise the drivers at full budget; these keep them
covered by the plain test suite with seconds-scale settings.
"""

import numpy as np
import pytest

from repro.data.grid import LatLonGrid
from repro.experiments import (
    fig5_max_model_size,
    fig6_parallelism_config,
    fig7_strong_scaling,
    fig8_pretraining_loss,
    fig9_wacc,
    fig10_data_efficiency,
    table1_optimizations,
)
from repro.experiments.common import format_params, format_seconds, format_table
from repro.memory.estimator import Parallelism


class TestCommon:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    @pytest.mark.parametrize(
        "value,expected", [(143e9, "143.0B"), (115e6, "115M"), (42, "42")]
    )
    def test_format_params(self, value, expected):
        assert format_params(value) == expected

    def test_format_seconds(self):
        assert format_seconds(0.97) == "0.97"
        assert format_seconds(3e-3) == "3e-03"


class TestAnalyticDrivers:
    def test_fig5_small(self):
        result = fig5_max_model_size.run(gpu_counts=(1, 8))
        assert result.at(Parallelism.HYBRID_STOP, 8) > result.at(Parallelism.HYBRID_STOP, 1)
        assert "Fig 5" in result.format()

    def test_table1_rows(self):
        result = table1_optimizations.run()
        assert [r.name for r in result.rows] == ["none", "+wrap", "+bf16", "+prefetch", "+ckpt"]
        assert "Table I" in result.format()

    def test_fig6_fastest_accessor(self):
        result = fig6_parallelism_config.run(tp_sizes=(8, 64))
        assert result.fastest().tp_size == 8
        with pytest.raises(KeyError):
            result.row_for(3)

    def test_fig7_structure(self):
        result = fig7_strong_scaling.run(channels=48, gpu_counts=(512, 1024))
        assert result.efficiency_at("orbit-113b", 512) == pytest.approx(1.0)
        assert "orbit-10b" in result.points


class TestTrainingDrivers:
    GRID = LatLonGrid(8, 16)

    def test_fig8_smoke(self):
        result = fig8_pretraining_loss.run(
            num_steps=3, grid=self.GRID, num_vars=4, patch_size=4,
            years_per_source=0.01,
        )
        assert len(result.histories) == 4
        for history in result.histories.values():
            assert len(history) == 3
        assert "Fig 8" in result.format()

    def test_fig9_smoke(self):
        result = fig9_wacc.run(
            grid=self.GRID,
            pretrain_steps=2,
            finetune_steps=2,
            steps_per_year=130,
            num_initializations=1,
        )
        assert set(result.wacc) >= {"ORBIT (pretrained)", "persistence", "climatology"}
        for leads in result.wacc.values():
            assert set(leads) == {1, 14, 30}
        assert "Fig 9" in result.format()

    def test_fig10_smoke(self):
        result = fig10_data_efficiency.run(
            grid=self.GRID,
            pretrain_steps=2,
            max_finetune_steps=4,
            eval_interval=2,
            steps_per_year=130,
        )
        assert len(result.samples) == 3
        assert all(s > 0 for s in result.samples.values())
        assert "Fig 10" in result.format()

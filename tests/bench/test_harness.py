"""Performance-regression harness: determinism, baselines, the gate."""

import json
from pathlib import Path

import pytest

from repro.bench import (
    DEFAULT_MATRIX,
    BenchCase,
    compare,
    load_baseline,
    run_case,
    run_matrix,
    scaling_efficiencies,
    summary_table,
    to_document,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
QUICK_CASE = next(case for case in DEFAULT_MATRIX if case.quick)


@pytest.fixture(scope="module")
def quick_records():
    return run_matrix(quick=True)


@pytest.fixture(scope="module")
def quick_doc(quick_records):
    return to_document(quick_records)


class TestMatrix:
    def test_matrix_covers_both_models_at_two_scales(self):
        assert {case.model for case in DEFAULT_MATRIX} == {"orbit-115m", "orbit-1b"}
        assert {case.nodes for case in DEFAULT_MATRIX} == {2, 4}
        for case in DEFAULT_MATRIX:
            assert case.tp_size * case.fsdp_size * case.ddp_size == case.num_gpus

    def test_quick_subset_nonempty_strict(self):
        quick = [case for case in DEFAULT_MATRIX if case.quick]
        assert quick and len(quick) < len(DEFAULT_MATRIX)


class TestDeterminism:
    def test_run_case_is_bitwise_deterministic(self):
        first = run_case(QUICK_CASE)
        second = run_case(QUICK_CASE)
        assert first.as_dict() == second.as_dict()

    def test_document_is_json_stable(self, quick_records):
        first = json.dumps(to_document(quick_records), sort_keys=True)
        second = json.dumps(to_document(run_matrix(quick=True)), sort_keys=True)
        assert first == second


class TestDocument:
    def test_schema_and_metrics_present(self, quick_doc):
        assert quick_doc["schema"] == 1
        for case in quick_doc["cases"].values():
            assert case["step_time_s"] > 0.0
            assert case["time_per_obs_s"] > 0.0
            assert 0.0 <= case["exposed_comm_fraction"] <= 1.0
            assert case["peak_memory_bytes"] > 0
            assert case["bound_resource"] in ("compute", "comm", "io", "idle")

    def test_efficiency_baseline_point_is_one(self, quick_records):
        efficiency = scaling_efficiencies(quick_records)
        points = efficiency["orbit-115m"]["points"]
        assert points["16"] == pytest.approx(1.0)
        assert 0.0 < points["32"] <= 1.3

    def test_write_and_load_round_trip(self, quick_records, tmp_path):
        path = write_baseline(quick_records, tmp_path / "BENCH_obs.json")
        assert load_baseline(path) == to_document(quick_records)

    def test_load_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 99}))
        with pytest.raises(ValueError, match="schema"):
            load_baseline(bad)

    def test_summary_table_renders(self, quick_doc):
        text = summary_table(quick_doc)
        assert "orbit-115m-2n" in text and "bound" in text


class TestRegressionGate:
    def test_identical_documents_pass(self, quick_doc):
        assert compare(quick_doc, quick_doc) == []

    def test_step_time_drift_detected(self, quick_doc):
        drifted = json.loads(json.dumps(quick_doc))
        name = next(iter(drifted["cases"]))
        drifted["cases"][name]["step_time_s"] *= 1.10
        problems = compare(drifted, quick_doc, tolerance=0.05)
        assert any("step_time_s" in problem for problem in problems)
        assert compare(drifted, quick_doc, tolerance=0.25) == []

    def test_efficiency_drift_detected(self, quick_doc):
        drifted = json.loads(json.dumps(quick_doc))
        drifted["efficiency"]["orbit-115m"]["points"]["32"] -= 0.10
        problems = compare(drifted, quick_doc, tolerance=0.05)
        assert any("efficiency" in problem for problem in problems)

    def test_missing_case_detected_unless_quick(self, quick_doc):
        partial = {"schema": 1, "cases": {}, "efficiency": {}}
        assert compare(partial, quick_doc, require_all=True)
        assert compare(partial, quick_doc, require_all=False) == []

    def test_committed_baseline_matches_fresh_run(self):
        """The repo's BENCH_obs.json is reproducible within tolerance."""
        baseline = load_baseline(REPO_ROOT / "BENCH_obs.json")
        current = to_document(run_matrix())
        assert compare(current, baseline, tolerance=0.05) == []

"""Tests for repro.utils (seeding, units, logging)."""

import logging

import numpy as np
import pytest

from repro.utils import (
    SeedSequenceFactory,
    format_bytes,
    format_count,
    format_flops,
    format_time,
    get_logger,
    spawn_rng,
)


class TestSeedSequenceFactory:
    def test_same_name_same_stream(self):
        factory = SeedSequenceFactory(7)
        a = factory.generator("init").normal(size=8)
        b = factory.generator("init").normal(size=8)
        np.testing.assert_array_equal(a, b)

    def test_different_names_different_streams(self):
        factory = SeedSequenceFactory(7)
        a = factory.generator("init").normal(size=8)
        b = factory.generator("data").normal(size=8)
        assert not np.array_equal(a, b)

    def test_different_roots_different_streams(self):
        a = SeedSequenceFactory(1).generator("x").normal(size=8)
        b = SeedSequenceFactory(2).generator("x").normal(size=8)
        assert not np.array_equal(a, b)

    def test_integer_and_string_names_compose(self):
        factory = SeedSequenceFactory(7)
        a = factory.generator("rank", 0).normal(size=4)
        b = factory.generator("rank", 1).normal(size=4)
        assert not np.array_equal(a, b)

    def test_integer_seed_stable(self):
        factory = SeedSequenceFactory(7)
        assert factory.integer_seed("x") == factory.integer_seed("x")
        assert factory.integer_seed("x") != factory.integer_seed("y")

    def test_rejects_non_int_root(self):
        with pytest.raises(TypeError):
            SeedSequenceFactory("seed")


class TestSpawnRng:
    def test_none_gives_generator(self):
        assert isinstance(spawn_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        assert spawn_rng(3).normal() == spawn_rng(3).normal()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert spawn_rng(rng) is rng


class TestUnits:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, "0 B"), (512, "512 B"), (1 << 20, "1.00 MiB"), (64 * 10**9, "59.60 GiB")],
    )
    def test_format_bytes(self, value, expected):
        assert format_bytes(value) == expected

    def test_format_flops_exa(self):
        assert format_flops(1.6e18) == "1.6 EFLOPS"

    def test_format_flops_peta(self):
        assert format_flops(684e15) == "684 PFLOPS"

    def test_format_count(self):
        assert format_count(113e9) == "113 G"

    @pytest.mark.parametrize(
        "seconds,expected",
        [(0.003, "3 ms"), (3e-6, "3 us"), (2.0, "2 s"), (90, "1m30.0s"), (3720, "1h02m")],
    )
    def test_format_time(self, seconds, expected):
        assert format_time(seconds) == expected

    def test_format_time_negative(self):
        assert format_time(-2.0) == "-2 s"


class TestLogging:
    def test_namespaced(self):
        assert get_logger("parallel.fsdp").name == "repro.parallel.fsdp"

    def test_root(self):
        assert get_logger().name == "repro"

    def test_null_handler_attached(self):
        handlers = logging.getLogger("repro").handlers
        assert any(isinstance(h, logging.NullHandler) for h in handlers)

"""Acceptance tests: the tuner against exhaustive simulated sweeps.

For ORBIT-115M at 2 nodes and ORBIT-1B at 4 nodes, every legal
candidate (micro-batch and prefetch pinned to keep the sweep tractable;
checkpointing swept) is run through the real meta-mode engine.  The
tuner's winner must match the brute-force minimum, and its analytic
estimates for the top-3 must sit within 10% of their simulated step
times — in practice the replay estimator is exact, so these bounds
have enormous margin.
"""

import pytest

from repro.tune import TuneRequest, enumerate_space, run_search, simulate_candidate
from repro.models.configs import ORBIT_115M, ORBIT_1B


def _request(config, num_gpus):
    return TuneRequest(
        config, num_gpus=num_gpus, gpus_per_node=8,
        micro_batches=(2,), recompute_options=(False, True),
        prefetch_options=(True,),
    )


CASES = [
    pytest.param(ORBIT_115M, 16, id="orbit-115m-2n"),
    pytest.param(ORBIT_1B, 32, id="orbit-1b-4n"),
]


@pytest.mark.parametrize("config,num_gpus", CASES)
def test_tuner_matches_brute_force_minimum(config, num_gpus):
    request = _request(config, num_gpus)
    result = run_search(request, top_k=3)

    space = enumerate_space(request)
    brute = {
        cand.label(): simulate_candidate(request, cand)["time_per_obs_s"]
        for cand in space.candidates
    }
    best_time = min(brute.values())
    winners = {label for label, t in brute.items()
               if t == pytest.approx(best_time, rel=1e-9)}

    # The tuner's top configuration is a brute-force minimum over the
    # per-observation walltime (ties — e.g. layout flips with identical
    # group placement — count).
    assert result.winner.candidate.label() in winners
    assert result.winner.simulated["time_per_obs_s"] == pytest.approx(
        best_time, rel=1e-9
    )

    # Analytic estimates for the validated top-3 within 10% of their
    # simulated step times (the ISSUE bound; the estimator is exact).
    for entry in result.validated:
        assert entry.analytic_error is not None
        assert entry.analytic_error < 0.10

    # The analytic ranking orders the *whole* space consistently with
    # the simulation: the analytic leader is also a simulated minimum,
    # and its analytic step-time estimate matches what the sweep ran.
    analytic_best = result.ranked[0]
    assert brute[analytic_best.candidate.label()] == pytest.approx(
        best_time, rel=1e-9
    )
    assert analytic_best.estimate.time_per_obs_s == pytest.approx(
        best_time, rel=1e-9
    )

"""Tests for the two-stage search and its result cache."""

import json

import pytest

from repro.models.configs import ORBIT_113B, ORBIT_115M
from repro.tune import (
    AnalyticEstimator,
    InfeasibleRequest,
    TuneCache,
    TuneRequest,
    run_search,
)


def _request(**overrides):
    defaults = dict(
        config=ORBIT_115M, num_gpus=16, gpus_per_node=8,
        micro_batches=(2,), recompute_options=(False,),
        prefetch_options=(True,),
    )
    defaults.update(overrides)
    return TuneRequest(**defaults)


@pytest.fixture(scope="module")
def shared_estimator():
    return AnalyticEstimator(ORBIT_115M, num_gpus=16, gpus_per_node=8)


class TestRunSearch:
    def test_ranked_by_analytic_throughput_and_topk_validated(
        self, shared_estimator
    ):
        result = run_search(_request(), top_k=2, estimator=shared_estimator)
        times = [s.estimate.time_per_obs_s for s in result.ranked]
        assert times == sorted(times)
        assert len(result.validated) == 2
        for entry in result.validated:
            assert entry.simulated_step_time_s is not None
            assert entry.analytic_error is not None
        assert result.winner in result.validated
        assert result.winner.simulated["time_per_obs_s"] == min(
            s.simulated["time_per_obs_s"] for s in result.validated
        )

    def test_relaxed_mode_refused(self):
        with pytest.raises(ValueError, match="engine_mode"):
            run_search(_request(engine_mode=False))

    def test_no_legal_candidates_is_infeasible(self):
        with pytest.raises(InfeasibleRequest) as exc:
            run_search(_request(tp_sizes=(3,)))
        assert "no legal configuration" in str(exc.value)
        assert exc.value.space.rejections

    def test_everything_oom_is_infeasible(self):
        # 113B on one node cannot fit under any factorization.
        with pytest.raises(InfeasibleRequest, match="exceed device memory"):
            run_search(TuneRequest(
                ORBIT_113B, num_gpus=8, micro_batches=(2,),
                recompute_options=(True,), prefetch_options=(True,),
            ))


class TestTuneCache:
    def test_second_search_hits_the_cache(self, tmp_path, shared_estimator):
        path = tmp_path / "tune_cache.json"
        request = _request()
        first = run_search(request, top_k=2, cache=TuneCache(path),
                           estimator=shared_estimator)
        assert (first.cache_hits, first.cache_misses) == (0, 2)
        assert path.exists()
        second = run_search(request, top_k=2, cache=TuneCache(path),
                            estimator=shared_estimator)
        assert (second.cache_hits, second.cache_misses) == (2, 0)
        assert (
            second.winner.simulated_step_time_s
            == first.winner.simulated_step_time_s
        )

    def test_key_separates_models_and_topologies(self):
        request_a = _request()
        request_b = _request(num_gpus=32)
        cand = request_a  # just need distinct key inputs
        from repro.tune import Candidate

        cand = Candidate(4, 2, 2, 2)
        assert TuneCache.key(request_a, cand) != TuneCache.key(request_b, cand)

    def test_degradation_key_separates_degraded_estimates(self):
        from repro.replan import DegradationProfile
        from repro.tune import Candidate

        profile = DegradationProfile(compute=((0, 4.0),), remaining_steps=3)
        clean = _request()
        degraded = _request(degradation_key=profile.key())
        cand = Candidate(4, 2, 2, 2)
        assert TuneCache.key(clean, cand) != TuneCache.key(degraded, cand)
        # Degraded keys are self-describing, so distinct profiles can
        # never collide with (or poison) each other either.
        other = _request(degradation_key=DegradationProfile(
            compute=((0, 2.0),), remaining_steps=3).key())
        assert TuneCache.key(degraded, cand) != TuneCache.key(other, cand)

    def test_clean_requests_keep_the_historical_key_shape(self):
        from repro.tune import Candidate

        cand = Candidate(4, 2, 2, 2)
        key = TuneCache.key(_request(), cand)
        # The pre-degradation key layout: config | topology | label,
        # with no degradation component — existing cache files stay
        # valid.
        assert key.count("|") == 2
        assert "degraded=" not in key
        assert key == TuneCache.key(_request(degradation_key=""), cand)

    def test_unknown_schema_ignored(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"schema": 99, "entries": {"x": {}}}))
        assert len(TuneCache(path)) == 0

"""Tests for tune report rendering and JSON export."""

import json

import pytest

from repro.models.configs import ORBIT_115M
from repro.tune import TuneRequest, render_report, result_document, run_search, write_report
from repro.tune.report import REPORT_SCHEMA


@pytest.fixture(scope="module")
def result():
    request = TuneRequest(
        ORBIT_115M, num_gpus=16, gpus_per_node=8,
        micro_batches=(2,), recompute_options=(False,),
        prefetch_options=(True,),
    )
    return run_search(request, top_k=2)


class TestRenderReport:
    def test_sections_present(self, result):
        text = render_report(result)
        assert "repro tune: orbit-115m on 16 GPUs" in text
        assert "Ranked configurations" in text
        assert "Why configurations were pruned" in text
        assert "Winner:" in text
        assert "critical path" in text
        assert "exposed communication by op" in text

    def test_winner_label_and_error_shown(self, result):
        text = render_report(result)
        assert result.winner.candidate.label() in text
        assert "analytic error" in text

    def test_limit_truncates_table(self, result):
        text = render_report(result, limit=2)
        assert f"and {len(result.ranked) - 2} more" in text


class TestResultDocument:
    def test_schema_and_structure(self, result):
        doc = result_document(result)
        assert doc["schema"] == REPORT_SCHEMA
        assert doc["request"]["model"] == "orbit-115m"
        assert doc["space"]["candidates"] == len(result.space.candidates)
        assert len(doc["ranked"]) == len(result.ranked)
        assert doc["winner"]["simulated"]["step_time_s"] > 0
        assert "critical_path" in doc["winner"]["simulated"]
        # Every rejection carries its reason for the why-pruned view.
        assert all(r["reason"] for r in doc["space"]["rejections"])

    def test_document_is_json_round_trippable(self, result):
        doc = result_document(result)
        assert json.loads(json.dumps(doc)) == doc

    def test_write_report(self, result, tmp_path):
        path = write_report(result, tmp_path / "tune_report.json")
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == REPORT_SCHEMA
        assert loaded["winner"]["config"] == result.winner.candidate.label()

"""Rank-class partitions over the tuner's search space.

For every legal candidate the tuner can enumerate, the symmetry
partition must tile the world exactly: class sizes multiply out to
``num_gpus``, per-class rank lists are disjoint and exhaustive, and
each representative belongs to (and classifies into) its own class.
This welds the folding layer to the same legality surface the tuner
and the RunSpec validate against.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.symmetry import RankClassPartition
from repro.models.configs import OrbitConfig
from repro.tune.space import TuneRequest, enumerate_space


def _config():
    return OrbitConfig(
        name="space-tiny", embed_dim=64, depth=1, num_heads=4,
        in_vars=3, out_vars=3, img_height=32, img_width=64,
        patch_size=8, mlp_ratio=4.0, qk_layernorm=False,
    )


def _candidates(num_gpus):
    request = TuneRequest(config=_config(), num_gpus=num_gpus,
                          micro_batches=(1,))
    return enumerate_space(request).candidates


class TestPartitionTilesTheWorld:
    @given(num_gpus=st.sampled_from([8, 16, 24, 32]))
    @settings(max_examples=4, deadline=None)
    def test_every_legal_candidate_partitions_exactly(self, num_gpus):
        candidates = _candidates(num_gpus)
        assert candidates, "search space unexpectedly empty"
        for cand in candidates:
            partition = RankClassPartition(
                cand.tp_size, cand.fsdp_size, cand.ddp_size,
                tp_innermost=cand.tp_innermost,
            )
            assert partition.num_gpus == num_gpus

            # Class sizes sum (multiply out) to the world size.
            sizes = [partition.size(key) for key in partition.keys]
            assert sum(sizes) == num_gpus
            assert all(size >= 1 for size in sizes)

            # Member lists are disjoint and exhaustive.
            seen: set[int] = set()
            for key in partition.keys:
                members = partition.members(key)
                assert len(members) == partition.size(key)
                assert not (seen & set(members)), f"overlap in {key}"
                seen.update(members)
                # Every member classifies back into its class, and the
                # representative is one of them.
                assert all(partition.class_of(r) == key for r in members)
                assert partition.representative(key) in members
            assert seen == set(range(num_gpus))

    def test_class_count_matches_the_fsdp_split(self):
        # F > 1 splits each tensor-parallel column into lead/non-lead.
        assert len(RankClassPartition(4, 2, 2).keys) == 8
        assert len(RankClassPartition(4, 1, 4).keys) == 4

    def test_rank_roundtrip_under_both_layouts(self):
        for tp_innermost in (True, False):
            partition = RankClassPartition(2, 4, 2,
                                           tp_innermost=tp_innermost)
            for rank in range(partition.num_gpus):
                d, f, k = partition.coords(rank)
                assert partition.rank(d, f, k) == rank

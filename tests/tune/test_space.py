"""Tests for the tuner's configuration-space enumeration."""

import pytest

from repro.models.configs import ORBIT_115M, ORBIT_1B
from repro.tune import Candidate, TuneRequest, enumerate_space


def _request(**overrides):
    defaults = dict(
        config=ORBIT_115M, num_gpus=16, gpus_per_node=8,
        micro_batches=(2,), recompute_options=(False,),
        prefetch_options=(True,),
    )
    defaults.update(overrides)
    return TuneRequest(**defaults)


class TestCandidate:
    def test_world_size_and_observations(self):
        cand = Candidate(tp_size=4, fsdp_size=2, ddp_size=2, micro_batch=3)
        assert cand.world_size == 16
        assert cand.observations == 12

    def test_label_encodes_policies(self):
        cand = Candidate(4, 2, 2, 2, recompute=True, prefetch=True,
                         tp_innermost=False)
        assert cand.label() == "tp4.f2.d2.mb2+ckpt+pf+fsdp-inner"
        plain = Candidate(1, 16, 1, 1, recompute=False, prefetch=False)
        assert plain.label() == "tp1.f16.d1.mb1"


class TestTuneRequest:
    def test_rejects_partial_nodes(self):
        with pytest.raises(ValueError, match="whole number"):
            _request(num_gpus=12)

    def test_rejects_empty_micro_batches(self):
        with pytest.raises(ValueError):
            _request(micro_batches=())

    def test_keys_identify_model_and_machine(self):
        request = _request()
        assert request.topology_key() == "g16x8"
        assert "orbit-115m" in request.config_key()
        assert request.config_key() != _request(config=ORBIT_1B).config_key()


class TestEnumeration:
    def test_every_candidate_factorizes_the_world(self):
        space = enumerate_space(_request())
        assert space.candidates
        for cand in space.candidates:
            assert cand.world_size == 16

    def test_policy_axes_multiply_candidates(self):
        base = len(enumerate_space(_request()).candidates)
        swept = len(enumerate_space(_request(
            micro_batches=(1, 2), recompute_options=(False, True),
        )).candidates)
        assert swept == 4 * base

    def test_node_spanning_tp_rejected_in_engine_mode(self):
        space = enumerate_space(_request())
        assert all(c.tp_size <= 8 for c in space.candidates)
        reasons = space.rejection_reasons()
        assert any("spans node boundaries" in r for r in reasons)

    def test_relaxed_mode_admits_node_spanning_tp(self):
        space = enumerate_space(_request(engine_mode=False))
        assert any(c.tp_size == 16 for c in space.candidates)

    def test_qk_layernorm_blocks_subhead_sharding_in_engine_mode(self):
        # ORBIT-115M has 16 heads; tp 32 needs sub-head sharding, which
        # the engine cannot combine with qk layer-norm.
        space = enumerate_space(_request(num_gpus=64, tp_sizes=(32,)))
        assert not space.candidates
        assert any("qk_layernorm" in r.reason for r in space.rejections)
        relaxed = enumerate_space(_request(
            num_gpus=64, tp_sizes=(32,), engine_mode=False,
        ))
        assert relaxed.candidates

    def test_non_dividing_tp_recorded(self):
        space = enumerate_space(_request(tp_sizes=(3,)))
        assert not space.candidates
        assert any("does not divide world size" in r.reason
                   for r in space.rejections)

    def test_alternate_layout_only_when_meaningful(self):
        space = enumerate_space(_request())
        layouts = {
            (c.tp_size, c.fsdp_size, c.ddp_size, c.tp_innermost)
            for c in space.candidates
        }
        # tp=1 or fsdp=1 factorizations appear only in the default layout.
        for tp, fsdp, ddp, tp_innermost in layouts:
            if tp == 1 or fsdp == 1:
                assert tp_innermost
        # Both-nontrivial factorizations appear in both layouts unless
        # the alternate one was rejected for spanning nodes.
        assert (4, 2, 2, True) in layouts

    def test_rejections_name_the_layout(self):
        space = enumerate_space(_request())
        flipped = [r for r in space.rejections if not r.tp_innermost]
        assert flipped
        assert all("fsdp-innermost" in r.reason for r in flipped)

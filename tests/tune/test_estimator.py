"""Tests for the analytic estimator.

The replay design makes the estimate *exact* — the probe runs the real
block code against the real cost model, and ledger accounting is
per-rank — so these tests can assert agreement with a fully simulated
engine step to float tolerance rather than within loose percentage
bands.  (The acceptance tests sweep whole spaces; here we cover the
structurally distinct paths: DDP reductions, checkpointed replay,
prefetch off, and the flipped rank layout.)
"""

import pytest

from repro.bench.harness import BenchCase, run_case
from repro.models.configs import ORBIT_115M
from repro.tune import AnalyticEstimator, Candidate


def _simulated_step(candidate: Candidate) -> float:
    case = BenchCase(
        "estimator-check", "orbit-115m", candidate.world_size, 8,
        tp_size=candidate.tp_size, fsdp_size=candidate.fsdp_size,
        ddp_size=candidate.ddp_size, micro_batch=candidate.micro_batch,
        prefetch=candidate.prefetch, recompute=candidate.recompute,
        tp_innermost=candidate.tp_innermost,
    )
    return run_case(case, config=ORBIT_115M).step_time_s


@pytest.fixture(scope="module")
def estimator():
    return AnalyticEstimator(ORBIT_115M, num_gpus=16, gpus_per_node=8)


class TestAgainstSimulation:
    @pytest.mark.parametrize("candidate", [
        Candidate(4, 2, 2, 2),
        Candidate(2, 4, 2, 1, recompute=True),
        Candidate(8, 2, 1, 2, prefetch=False),
        Candidate(4, 4, 1, 2, tp_innermost=False),
        Candidate(1, 2, 8, 2),
    ], ids=lambda c: c.label())
    def test_matches_engine_step_time(self, estimator, candidate):
        estimate = estimator.estimate(candidate)
        simulated = _simulated_step(candidate)
        assert estimate.step_time_s == pytest.approx(simulated, rel=1e-9)

    def test_ledger_buckets_sum_to_step_time(self, estimator):
        estimate = estimator.estimate(Candidate(4, 2, 2, 2))
        assert estimate.step_time_s == pytest.approx(
            estimate.compute_s + estimate.exposed_comm_s
        )
        assert estimate.exposed_comm_s <= estimate.comm_s
        assert 0.0 < estimate.exposed_comm_fraction < 1.0


class TestMemorySide:
    def test_peak_and_fits_populated(self, estimator):
        estimate = estimator.estimate(Candidate(4, 2, 2, 2))
        assert estimate.fits
        assert estimate.peak_memory_bytes > 0

    def test_checkpointing_reduces_predicted_memory(self, estimator):
        plain = estimator.estimate(Candidate(4, 2, 2, 2))
        ckpt = estimator.estimate(Candidate(4, 2, 2, 2, recompute=True))
        assert ckpt.peak_memory_bytes < plain.peak_memory_bytes
        assert ckpt.step_time_s > plain.step_time_s

    def test_time_per_obs_divides_by_global_batch(self, estimator):
        estimate = estimator.estimate(Candidate(4, 2, 2, 2))
        assert estimate.time_per_obs_s == pytest.approx(
            estimate.step_time_s / 8
        )


class TestValidation:
    def test_wrong_world_size_rejected(self, estimator):
        with pytest.raises(ValueError, match="world"):
            estimator.estimate(Candidate(4, 2, 1, 2))

    def test_probe_cache_reused_across_policy_axes(self, estimator):
        # recompute is replay-only: the same probe serves both variants.
        estimator.estimate(Candidate(4, 2, 2, 2))
        before = len(estimator._block_probes)
        estimator.estimate(Candidate(4, 2, 2, 2, recompute=True))
        assert len(estimator._block_probes) == before

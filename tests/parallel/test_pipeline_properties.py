"""Property-based tests for the pipeline engine (random partitions)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import VirtualCluster
from repro.nn.transformer import TransformerStack
from repro.parallel import PipelineParallelTrunk


@st.composite
def pipeline_cases(draw):
    depth = draw(st.integers(1, 5))
    num_stages = draw(st.integers(1, depth))
    micro = draw(st.integers(1, 3))
    dim = draw(st.sampled_from([4, 8]))
    seed = draw(st.integers(0, 2**16))
    return depth, num_stages, micro, dim, seed


@settings(max_examples=20, deadline=None)
@given(case=pipeline_cases())
def test_property_pipeline_equals_serial(case):
    depth, num_stages, micro, dim, seed = case
    rng = np.random.default_rng(seed)
    serial = TransformerStack(dim, depth, 2, rng=seed, dtype=np.float64)
    reference = TransformerStack(dim, depth, 2, rng=seed, dtype=np.float64)
    cluster = VirtualCluster(num_gpus=num_stages, gpus_per_node=8)
    pipeline = PipelineParallelTrunk(serial, cluster, num_stages)

    xs = [rng.normal(size=(1, 2, dim)) for _ in range(micro)]
    grads = [rng.normal(size=(1, 2, dim)) for _ in range(micro)]

    outputs = pipeline.forward(xs)
    grad_inputs = pipeline.backward(grads)

    reference(np.concatenate(xs, axis=0))
    reference.zero_grad()
    gx_ref = reference.backward(np.concatenate(grads, axis=0))

    # Output equivalence.
    check = TransformerStack(dim, depth, 2, rng=seed, dtype=np.float64)
    for x, y in zip(xs, outputs):
        expected = check(x)
        check.clear_cache()
        np.testing.assert_allclose(y, expected, rtol=1e-9, atol=1e-12)
    # Input-gradient equivalence.
    np.testing.assert_allclose(
        np.concatenate(grad_inputs, axis=0), gx_ref, rtol=1e-8, atol=1e-11
    )
    # Parameter-gradient equivalence (the pipeline reuses serial's blocks).
    for (name, ref_param), pipe_param in zip(
        reference.named_parameters(), pipeline.parameters()
    ):
        np.testing.assert_allclose(
            pipe_param.grad, ref_param.grad, rtol=1e-8, atol=1e-11, err_msg=name
        )


@settings(max_examples=20, deadline=None)
@given(
    depth=st.integers(1, 6),
    stages=st.integers(1, 6),
    micro=st.integers(1, 16),
)
def test_property_bubble_fraction_bounds(depth, stages, micro):
    """The GPipe bubble is always in [0, 1) and vanishes as M grows."""
    if stages > depth:
        return
    cluster = VirtualCluster(num_gpus=stages, gpus_per_node=8)
    serial = TransformerStack(4, depth, 2, rng=0)
    pipeline = PipelineParallelTrunk(serial, cluster, stages)
    bubble = pipeline.bubble_fraction(micro)
    assert 0.0 <= bubble < 1.0
    assert pipeline.bubble_fraction(micro + 8) <= bubble
    if stages == 1:
        assert bubble == 0.0

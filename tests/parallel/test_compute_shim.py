"""The SkewedCompute deprecation shim in repro.parallel.compute."""

import pytest


class TestSkewedComputeShim:
    def test_old_import_path_warns_and_resolves(self):
        import repro.parallel.compute as compute
        from repro.faults.degradation import SkewedCompute

        with pytest.warns(DeprecationWarning, match="repro.faults.degradation"):
            resolved = compute.SkewedCompute
        assert resolved is SkewedCompute

    def test_unknown_attribute_still_raises(self):
        import repro.parallel.compute as compute

        with pytest.raises(AttributeError, match="NoSuchThing"):
            compute.NoSuchThing

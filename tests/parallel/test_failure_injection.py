"""Failure injection: the engines fail loudly and cleanly, not silently.

A distributed training system's error paths matter as much as its happy
paths: simulated OOM must surface as the right exception, gradient
overflow must skip updates without corrupting state, and misuse of the
engine API must be rejected before it produces wrong numbers.
"""

import numpy as np
import pytest

from repro.cluster import VirtualCluster
from repro.core import HybridSTOPMLP, HybridSTOPTrunk
from repro.memory import OutOfDeviceMemoryError
from repro.nn import DynamicGradScaler
from repro.nn.mlp import MLP
from repro.nn.transformer import TransformerStack
from repro.parallel import FSDPModule, HybridParallelPlan


class TestSimulatedOOM:
    def test_construction_oom_when_shards_exceed_memory(self):
        cluster = VirtualCluster(num_gpus=2, gpu_memory_bytes=64)
        plan = HybridParallelPlan(cluster, tp_size=1, fsdp_size=2)
        serial = MLP(16, 32, rng=0, dtype=np.float64)
        with pytest.raises(OutOfDeviceMemoryError):
            HybridSTOPMLP(serial, plan)

    def test_forward_oom_from_gather(self):
        # Shards fit, but the transient gathered layer does not.
        serial = MLP(16, 32, rng=0, dtype=np.float64)
        shard_bytes = sum(p.data.nbytes for p in serial.parameters()) // 2
        cluster = VirtualCluster(num_gpus=2, gpu_memory_bytes=int(shard_bytes * 1.5))
        plan = HybridParallelPlan(cluster, tp_size=1, fsdp_size=2)
        hybrid = HybridSTOPMLP(serial, plan)
        with pytest.raises(OutOfDeviceMemoryError):
            hybrid.forward([np.zeros((1, 2, 16))] * 2)

    def test_oom_error_carries_diagnostics(self):
        cluster = VirtualCluster(num_gpus=2, gpu_memory_bytes=64)
        plan = HybridParallelPlan(cluster, tp_size=1, fsdp_size=2)
        try:
            HybridSTOPMLP(MLP(16, 32, rng=0, dtype=np.float64), plan)
        except OutOfDeviceMemoryError as err:
            assert err.capacity == 64
            assert err.requested > 0
            assert "gpu" in err.device
        else:  # pragma: no cover
            pytest.fail("expected OOM")

    def test_fsdp_unwrapped_oom_is_the_full_model_gather(self):
        budget = 120_000
        cluster = VirtualCluster(num_gpus=2, gpu_memory_bytes=budget)
        template = TransformerStack(16, 4, 2, rng=0, dtype=np.float64)
        engine = FSDPModule(template, cluster.world, layer_wrapping=False)
        with pytest.raises(OutOfDeviceMemoryError):
            engine.forward([np.zeros((1, 3, 16))] * 2)
        # The failure happened mid-gather; persistent shards are intact.
        assert cluster.device(0).memory.category_current("params") > 0


class TestGradientOverflowRecovery:
    def test_scaler_skips_and_training_continues(self):
        """Inject an overflow mid-training: the step is skipped, the
        scale backs off, and subsequent steps proceed normally."""
        scaler = DynamicGradScaler(init_scale=8.0, growth_interval=1000)
        from repro.nn import Parameter

        param = Parameter(np.array([1.0]))
        before = param.data.copy()

        # Poisoned step.
        param.add_grad(np.array([np.inf]))
        assert not scaler.unscale_and_check([param])
        param.zero_grad()
        # Optimizer would be skipped; parameter unchanged.
        np.testing.assert_array_equal(param.data, before)
        assert scaler.scale == 4.0

        # Clean step works at the backed-off scale.
        param.add_grad(np.array([8.0]))
        assert scaler.unscale_and_check([param])
        np.testing.assert_allclose(param.grad, [2.0])


class TestAPIMisuse:
    def test_trunk_double_backward_rejected(self):
        cluster = VirtualCluster(num_gpus=2, gpus_per_node=8)
        plan = HybridParallelPlan(cluster, tp_size=1, fsdp_size=2)
        serial = TransformerStack(8, 1, 2, rng=0, dtype=np.float64)
        trunk = HybridSTOPTrunk(serial, plan)
        xs = [np.zeros((1, 2, 8))] * 2
        trunk.forward(xs)
        trunk.backward([np.zeros((1, 2, 8))] * 2)
        with pytest.raises(RuntimeError):
            trunk.backward([np.zeros((1, 2, 8))] * 2)

    def test_collective_buffer_shape_mismatch_rejected(self):
        from repro.cluster.collectives import all_reduce

        cluster = VirtualCluster(num_gpus=2)
        with pytest.raises(ValueError):
            all_reduce(cluster.world, [np.zeros(3), np.zeros(4)])

    def test_plan_group_from_wrong_cluster_rank(self):
        cluster = VirtualCluster(num_gpus=4)
        plan = HybridParallelPlan(cluster, tp_size=2, fsdp_size=2)
        with pytest.raises(ValueError):
            plan.tp_group(0, 5)

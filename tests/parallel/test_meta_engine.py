"""Meta-mode engine execution and cross-validation with the estimator.

Meta mode is how the 10B/113B experiments run on one machine: the full
engine code path executes with shape-only arrays, the collectives cost-
account every message, and the memory trackers record every parameter
byte.  These tests pin that path down and tie the analytic memory model
to what the engine actually allocates.
"""

import numpy as np
import pytest

from repro.cluster import VirtualCluster
from repro.memory.estimator import MemoryModel, Parallelism, TrainingSetup
from repro.meta import MetaArray
from repro.models import OrbitConfig, build_model
from repro.models.flops import parameter_breakdown
from repro.parallel import HybridParallelPlan, HybridSTOPEngine

CFG = OrbitConfig(
    "meta-test",
    embed_dim=64,
    depth=3,
    num_heads=4,
    in_vars=8,
    out_vars=8,
    img_height=32,
    img_width=64,
    patch_size=8,
)


@pytest.fixture
def engine_setup():
    cluster = VirtualCluster(num_gpus=8, gpus_per_node=8)
    plan = HybridParallelPlan(cluster, tp_size=2, fsdp_size=4)
    engine = HybridSTOPEngine(build_model(CFG, meta=True), plan)
    return cluster, plan, engine


class TestMetaExecution:
    def test_forward_backward_shapes(self, engine_setup):
        cluster, plan, engine = engine_setup
        x = MetaArray((2, CFG.in_vars, CFG.img_height, CFG.img_width))
        lead = MetaArray((2,))
        ys = engine.forward([[x] * 4], [[lead] * 4])
        assert ys[0][0].shape == (2, CFG.out_vars, CFG.img_height, CFG.img_width)
        gx = engine.backward([[MetaArray(ys[0][0].shape)] * 4])
        assert gx[0][0].shape == x.shape

    def test_comm_costs_recorded(self, engine_setup):
        cluster, _, engine = engine_setup
        x = MetaArray((2, CFG.in_vars, CFG.img_height, CFG.img_width))
        engine.forward([[x] * 4], [[MetaArray((2,))] * 4])
        assert cluster.timeline.ledger(0).comm_bytes > 0

    def test_gathers_released_after_step(self, engine_setup):
        cluster, _, engine = engine_setup
        x = MetaArray((2, CFG.in_vars, CFG.img_height, CFG.img_width))
        ys = engine.forward([[x] * 4], [[MetaArray((2,))] * 4])
        engine.backward([[MetaArray(ys[0][0].shape)] * 4])
        for rank in range(8):
            assert cluster.device(rank).memory.category_current("gathered") == 0

    def test_sharded_grads_are_meta(self, engine_setup):
        _, _, engine = engine_setup
        x = MetaArray((2, CFG.in_vars, CFG.img_height, CFG.img_width))
        ys = engine.forward([[x] * 4], [[MetaArray((2,))] * 4])
        engine.backward([[MetaArray(ys[0][0].shape)] * 4])
        for param in engine.sharded_parameters():
            assert param.grad_shards is not None


class TestEstimatorCrossValidation:
    def test_persistent_param_bytes_match_estimator_scaling(self, engine_setup):
        """The engine's tracked parameter bytes match the estimator's
        sharding arithmetic: trunk/(K*F) + dense, per device."""
        cluster, plan, engine = engine_setup
        breakdown = parameter_breakdown(CFG)
        trunk = breakdown["blocks"]
        dense = sum(v for k, v in breakdown.items() if k != "blocks")
        expected = (trunk / (plan.tp_size * plan.fsdp_size) + dense) * 4  # meta fp32
        for rank in range(8):
            # "params" prefixes every parameter tag, dense replicas included;
            # flat-shard padding adds small slack.
            tracked = cluster.device(rank).memory.category_current("params")
            assert tracked == pytest.approx(expected, rel=0.05)

    def test_memory_model_persistent_close_to_engine(self, engine_setup):
        """MemoryModel's persistent term (scaled to raw param bytes)
        agrees with the engine's tracked allocation within 10%."""
        cluster, plan, _ = engine_setup
        setup = TrainingSetup(
            CFG, 8, Parallelism.HYBRID_STOP,
            tp_size=plan.tp_size, fsdp_size=plan.fsdp_size, micro_batch=2,
        )
        model = MemoryModel()
        components = model.components(setup)
        # Convert the estimator's optimizer-state bytes back to raw fp32
        # parameter bytes (state = 16 B/param in bf16-mixed accounting).
        estimated_param_bytes = components["persistent_states"] / setup.state_bytes_per_param * 4
        tracked = cluster.device(0).memory.category_current("params")
        assert tracked == pytest.approx(estimated_param_bytes, rel=0.10)

    def test_gathered_peak_matches_layer_shard(self, engine_setup):
        """Peak transient gather = one layer's TP shard at a time."""
        cluster, plan, engine = engine_setup
        x = MetaArray((1, CFG.in_vars, CFG.img_height, CFG.img_width))
        engine.forward([[x] * 4], [[MetaArray((1,))] * 4])
        breakdown = parameter_breakdown(CFG)
        layer_bytes = breakdown["blocks"] / CFG.depth * 4
        peak_gather = max(
            cluster.device(r).memory.category_peak("gathered") for r in range(8)
        )
        # Single largest gathered parameter is well below a layer's TP shard.
        assert 0 < peak_gather < layer_bytes / plan.tp_size


class TestPaperScaleConfig:
    """The real ORBIT-1B configuration (3072 embed, 8 layers, 48 channels,
    128x256 grid) executes end-to-end in meta mode on 64 virtual GPUs."""

    def test_orbit_1b_meta_step_on_64_gpus(self):
        from repro.models import ORBIT_1B
        from repro.models.flops import parameter_breakdown

        cluster = VirtualCluster(num_gpus=64, gpus_per_node=8)
        plan = HybridParallelPlan(cluster, tp_size=8, fsdp_size=8)
        engine = HybridSTOPEngine(build_model(ORBIT_1B, meta=True), plan)

        x = MetaArray((2, ORBIT_1B.in_vars, ORBIT_1B.img_height, ORBIT_1B.img_width))
        ys = engine.forward([[x] * 8], [[MetaArray((2,))] * 8])
        assert ys[0][0].shape == (2, ORBIT_1B.out_vars, 128, 256)
        engine.backward([[MetaArray(ys[0][0].shape)] * 8])

        breakdown = parameter_breakdown(ORBIT_1B)
        trunk = breakdown["blocks"]
        dense = sum(v for k, v in breakdown.items() if k != "blocks")
        expected = (trunk / 64 + dense) * 4
        tracked = cluster.device(0).memory.category_current("params")
        assert tracked == pytest.approx(expected, rel=0.05)
        # Every rank moved communication, and every grad shard exists.
        assert all(cluster.timeline.ledger(r).comm_bytes > 0 for r in range(64))
        assert all(p.grad_shards is not None for p in engine.sharded_parameters())

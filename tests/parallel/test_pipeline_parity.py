"""1F1B bitwise parity: the pipelined engine is the same computation.

The 4D engine's contract is *numerical exactness*, not closeness: a
``pp_size > 1`` step runs the same blocks in the same order as the
serial model, micro-batches fused, so its forward outputs, input
gradients, gathered state dict, gathered gradients, and loss must be
bitwise-equal to the ``pp_size = 1`` engine of the same
``(tp, fsdp, ddp)`` sub-grid — the pipeline axis never moves a float.
Against the *serial* model the gathered state dict is bitwise too; the
activations are bitwise at ``tp = 1`` and agree to summation-order
rounding at ``tp > 1`` (a pre-existing property of the 3D engine's
split matmuls, not of the pipeline axis).  Randomized 4D grids up to
32 GCDs pin the property.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import VirtualCluster
from repro.models import OrbitConfig, build_model
from repro.parallel import HybridParallelPlan, HybridSTOPEngine


def _config(depth):
    return OrbitConfig(
        "pipe-tiny", embed_dim=8, depth=depth, num_heads=2,
        in_vars=3, out_vars=2, img_height=8, img_width=8, patch_size=4,
    )


#: 4D grids with a non-trivial pipeline axis, world size <= 32.
GRIDS_4D = sorted(
    (pp, tp, fsdp, ddp)
    for pp in (2, 3, 4)
    for tp in (1, 2)
    for fsdp in (1, 2)
    for ddp in (1, 2)
    if pp * tp * fsdp * ddp <= 32
)


def make_engine(pp, tp, fsdp, ddp, depth, seed):
    cluster = VirtualCluster(num_gpus=pp * tp * fsdp * ddp, gpus_per_node=1)
    plan = HybridParallelPlan(
        cluster, tp_size=tp, fsdp_size=fsdp, ddp_size=ddp, pp_size=pp
    )
    model = build_model(_config(depth), rng=seed, dtype=np.float64)
    return HybridSTOPEngine(model, plan)


def make_batches(ddp, fsdp, micro_batch, seed):
    rng = np.random.default_rng(seed)
    xs = [
        [rng.normal(size=(micro_batch, 3, 8, 8)) for _ in range(fsdp)]
        for _ in range(ddp)
    ]
    leads = [
        [np.full((micro_batch,), 24.0) for _ in range(fsdp)] for _ in range(ddp)
    ]
    grad_ys = [
        [rng.normal(size=(micro_batch, 2, 8, 8)) for _ in range(fsdp)]
        for _ in range(ddp)
    ]
    return xs, leads, grad_ys


def run_step(engine, xs, leads, grad_ys):
    ys = engine.forward(xs, leads)
    grad_xs = engine.backward(grad_ys)
    engine.allreduce_gradients()
    loss = float(
        np.mean(np.concatenate([y for rep in ys for y in rep], axis=0) ** 2)
    )
    return ys, grad_xs, loss


def assert_bitwise(name, got, want):
    assert np.array_equal(np.asarray(got), np.asarray(want)), name


class TestPipelinedBitwiseParity:
    @given(
        grid=st.sampled_from(GRIDS_4D),
        extra_depth=st.integers(min_value=0, max_value=2),
        micro_batch=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_pipelined_step_is_bitwise_equal(
        self, grid, extra_depth, micro_batch, seed
    ):
        pp, tp, fsdp, ddp = grid
        depth = pp + extra_depth  # stages never exceed blocks
        xs, leads, grad_ys = make_batches(ddp, fsdp, micro_batch, seed + 1)

        piped = make_engine(pp, tp, fsdp, ddp, depth, seed)
        flat = make_engine(1, tp, fsdp, ddp, depth, seed)
        p_ys, p_gxs, p_loss = run_step(piped, xs, leads, grad_ys)
        f_ys, f_gxs, f_loss = run_step(flat, xs, leads, grad_ys)

        # Serial reference over the flattened global batch.
        serial = build_model(_config(depth), rng=seed, dtype=np.float64)
        x_all = np.concatenate([x for rep in xs for x in rep], axis=0)
        lead_all = np.concatenate([l for rep in leads for l in rep], axis=0)
        g_all = np.concatenate([g for rep in grad_ys for g in rep], axis=0)
        y_ref = serial(x_all, lead_all)
        serial.zero_grad()
        gx_ref = serial.backward(g_all)
        loss_ref = float(np.mean(y_ref**2))

        p_y_all = np.concatenate([y for rep in p_ys for y in rep], axis=0)
        p_gx_all = np.concatenate([g for rep in p_gxs for g in rep], axis=0)
        if tp == 1:
            assert_bitwise("forward vs serial", p_y_all, y_ref)
            assert_bitwise("input grads vs serial", p_gx_all, gx_ref)
            assert p_loss == loss_ref
        else:
            # tp > 1 splits matmul reductions; the 3D engine already
            # agrees with serial only to summation-order rounding.
            np.testing.assert_allclose(p_y_all, y_ref, rtol=1e-10, atol=1e-13)
            np.testing.assert_allclose(p_gx_all, gx_ref, rtol=1e-10, atol=1e-13)
            assert p_loss == pytest.approx(loss_ref, rel=1e-12)
        assert p_loss == f_loss
        for pr, fr in zip(p_ys, f_ys):
            for py, fy in zip(pr, fr):
                assert_bitwise("forward vs pp=1 engine", py, fy)
        for pr, fr in zip(p_gxs, f_gxs):
            for pg, fg in zip(pr, fr):
                assert_bitwise("input grads vs pp=1 engine", pg, fg)

        p_state = piped.gathered_state_dict()
        f_state = flat.gathered_state_dict()
        s_state = serial.state_dict()
        assert p_state.keys() == f_state.keys() == s_state.keys()
        for key in p_state:
            assert_bitwise(f"state[{key}] vs pp=1", p_state[key], f_state[key])
            assert_bitwise(f"state[{key}] vs serial", p_state[key], s_state[key])
        p_grads = piped.trunks[0].gathered_grads()
        f_grads = flat.trunks[0].gathered_grads()
        assert p_grads.keys() == f_grads.keys()
        for key in p_grads:
            assert_bitwise(f"grads[{key}] vs pp=1", p_grads[key], f_grads[key])

    def test_pipelined_state_dict_matches_serial_names(self):
        engine = make_engine(2, 1, 2, 1, 3, seed=3)
        serial = build_model(_config(3), rng=3, dtype=np.float64)
        assert engine.gathered_state_dict().keys() == serial.state_dict().keys()

    def test_stage_partition_is_contiguous(self):
        engine = make_engine(3, 1, 1, 1, 4, seed=0)
        trunk = engine.trunks[0]
        sizes = [len(t.blocks) for t in trunk.stage_trunks]
        assert sizes == [2, 1, 1]
        indices = [int(b.name.rsplit("block", 1)[1]) for b in trunk.blocks]
        assert indices == [0, 1, 2, 3]

    def test_pipeline_schedule_accounting(self):
        """pp=2 records boundary sends and 1F1B stalls that pad every
        stage to the common makespan ``(M + S - 1) / M`` of the slowest
        stage's busy time; none of that machinery runs at pp=1.  The
        grid keeps ``fsdp = tp = 1`` so the dense front/head grad
        syncs — which land *after* the stall pad on the first and last
        stages — are single-rank no-ops and the equality is exact."""
        from repro.obs.tracer import Tracer
        from repro.parallel.compute import PeakFractionCompute

        def timed(pp, micro_batch):
            cluster = VirtualCluster(num_gpus=pp, gpus_per_node=1)
            tracer = Tracer()
            cluster.timeline.tracer = tracer
            plan = HybridParallelPlan(
                cluster, tp_size=1, fsdp_size=1, ddp_size=1, pp_size=pp
            )
            model = build_model(_config(2), rng=0, dtype=np.float64)
            engine = HybridSTOPEngine(
                model, plan, compute_model=PeakFractionCompute(cluster)
            )
            xs, leads, grad_ys = make_batches(1, 1, micro_batch, seed=1)
            run_step(engine, xs, leads, grad_ys)
            return cluster, tracer

        pipeline_ops = {"pipeline.stall", "pipeline.send", "pipeline.grad_send"}
        _, flat_tracer = timed(1, 2)
        assert not pipeline_ops & {s.name for s in flat_tracer.spans}

        M, S = 2, 2
        cluster, tracer = timed(S, M)
        assert pipeline_ops <= {s.name for s in tracer.spans}
        stall = [0.0] * cluster.world_size
        for span in tracer.spans:
            if span.name == "pipeline.stall":
                stall[span.rank] += span.dur
        busy = [
            cluster.timeline.ledger(r).walltime_s - stall[r]
            for r in range(cluster.world_size)
        ]
        # Stalls pad every rank to the common 1F1B makespan, so the
        # padded walltimes agree and equal the closed-form schedule.
        walls = {
            round(cluster.timeline.ledger(r).walltime_s, 15)
            for r in range(cluster.world_size)
        }
        assert len(walls) == 1
        expected = (M + S - 1) * max(busy) / M
        assert cluster.timeline.walltime_s() == pytest.approx(expected)
        assert max(stall) > 0


class TestPipelineLimits:
    def test_more_stages_than_blocks_rejected(self):
        from repro.parallel.stages import PipelineLimitError

        with pytest.raises(PipelineLimitError, match="limited by the number"):
            make_engine(4, 1, 1, 1, depth=3, seed=0)

    def test_legacy_import_path_warns(self):
        import repro.parallel.pipeline as legacy
        from repro.parallel.stages import PipelineLimitError, PipelineParallelTrunk

        with pytest.warns(DeprecationWarning):
            assert legacy.PipelineParallelTrunk is PipelineParallelTrunk
        with pytest.warns(DeprecationWarning):
            assert legacy.PipelineLimitError is PipelineLimitError

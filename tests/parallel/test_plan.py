"""Tests for the hierarchical parallel group layout (paper Fig 4)."""

import pytest

from repro.cluster import LinkKind, VirtualCluster
from repro.parallel import HybridParallelPlan


class TestRankArithmetic:
    def test_roundtrip(self):
        cluster = VirtualCluster(num_gpus=16, gpus_per_node=8)
        plan = HybridParallelPlan(cluster, tp_size=2, fsdp_size=4, ddp_size=2)
        for d in range(2):
            for f in range(4):
                for k in range(2):
                    assert plan.coords(plan.rank(d, f, k)) == (d, f, k)

    def test_all_ranks_covered_once(self):
        cluster = VirtualCluster(num_gpus=16, gpus_per_node=8)
        plan = HybridParallelPlan(cluster, tp_size=4, fsdp_size=2, ddp_size=2)
        ranks = {
            plan.rank(d, f, k) for d in range(2) for f in range(2) for k in range(4)
        }
        assert ranks == set(range(16))

    def test_size_mismatch_rejected(self):
        cluster = VirtualCluster(num_gpus=16, gpus_per_node=8)
        with pytest.raises(ValueError):
            HybridParallelPlan(cluster, tp_size=4, fsdp_size=2, ddp_size=1)

    def test_size_mismatch_message_shows_arithmetic(self):
        """The error spells out the factor product vs the world size."""
        cluster = VirtualCluster(num_gpus=16, gpus_per_node=8)
        with pytest.raises(ValueError) as exc:
            HybridParallelPlan(cluster, tp_size=4, fsdp_size=2, ddp_size=3)
        message = str(exc.value)
        assert "tp(4) * fsdp(2) * ddp(3) = 24" in message
        assert "world size 16" in message

    def test_nonpositive_sizes_rejected(self):
        cluster = VirtualCluster(num_gpus=16, gpus_per_node=8)
        with pytest.raises(ValueError, match="positive"):
            HybridParallelPlan(cluster, tp_size=0, fsdp_size=4, ddp_size=4)

    def test_repr_names_every_axis(self):
        cluster = VirtualCluster(num_gpus=16, gpus_per_node=8)
        plan = HybridParallelPlan(
            cluster, tp_size=4, fsdp_size=2, ddp_size=2, tp_innermost=False
        )
        assert repr(plan) == (
            "HybridParallelPlan(ddp=2, fsdp=2, tp=4, tp_innermost=False)"
        )

    def test_coordinate_bounds_checked(self):
        cluster = VirtualCluster(num_gpus=4)
        plan = HybridParallelPlan(cluster, tp_size=2, fsdp_size=2)
        with pytest.raises(ValueError):
            plan.rank(0, 2, 0)


class TestGroupPlacement:
    def test_tp_groups_are_intra_node(self):
        """Fig 4: tensor-parallel groups ride the in-node Infinity Fabric."""
        cluster = VirtualCluster(num_gpus=32, gpus_per_node=8)
        plan = HybridParallelPlan(cluster, tp_size=8, fsdp_size=4)
        for f in range(4):
            group = plan.tp_group(0, f)
            assert cluster.topology.group_link_kind(group.ranks) is LinkKind.INTRA_NODE

    def test_fsdp_groups_span_nodes(self):
        cluster = VirtualCluster(num_gpus=32, gpus_per_node=8)
        plan = HybridParallelPlan(cluster, tp_size=8, fsdp_size=4)
        for k in range(8):
            group = plan.fsdp_group(0, k)
            assert cluster.topology.group_link_kind(group.ranks) is LinkKind.INTER_NODE

    def test_pessimal_mapping_flips_placement(self):
        """tp_innermost=False puts FSDP in-node and TP across nodes (ablation)."""
        cluster = VirtualCluster(num_gpus=32, gpus_per_node=8)
        plan = HybridParallelPlan(cluster, tp_size=4, fsdp_size=8, tp_innermost=False)
        assert cluster.topology.group_link_kind(plan.fsdp_group(0, 0).ranks) is LinkKind.INTRA_NODE
        assert cluster.topology.group_link_kind(plan.tp_group(0, 0).ranks) is LinkKind.INTER_NODE

    def test_groups_are_cached(self):
        cluster = VirtualCluster(num_gpus=4)
        plan = HybridParallelPlan(cluster, tp_size=2, fsdp_size=2)
        assert plan.tp_group(0, 0) is plan.tp_group(0, 0)

    def test_orthogonality(self):
        """Each rank belongs to exactly one group per axis, and groups of
        the same axis are disjoint."""
        cluster = VirtualCluster(num_gpus=16, gpus_per_node=8)
        plan = HybridParallelPlan(cluster, tp_size=2, fsdp_size=4, ddp_size=2)
        tp_members = [r for d in range(2) for f in range(4) for r in plan.tp_group(d, f).ranks]
        assert sorted(tp_members) == list(range(16))
        fsdp_members = [r for d in range(2) for k in range(2) for r in plan.fsdp_group(d, k).ranks]
        assert sorted(fsdp_members) == list(range(16))
        ddp_members = [r for f in range(4) for k in range(2) for r in plan.ddp_group(f, k).ranks]
        assert sorted(ddp_members) == list(range(16))

"""Tests for GPipe-style pipeline parallelism (the Sec II comparison)."""

import numpy as np
import pytest

from repro.cluster import VirtualCluster
from repro.nn.transformer import TransformerStack
from repro.parallel import PeakFractionCompute
from repro.parallel.stages import PipelineLimitError, PipelineParallelTrunk


def make_setup(num_stages=2, depth=4, dim=8, micro_batches=3, seed=0, compute=False):
    rng = np.random.default_rng(seed)
    serial = TransformerStack(dim, depth, 2, rng=seed, dtype=np.float64)
    reference = TransformerStack(dim, depth, 2, rng=seed, dtype=np.float64)
    cluster = VirtualCluster(num_gpus=num_stages, gpus_per_node=8)
    pipeline = PipelineParallelTrunk(
        serial, cluster, num_stages,
        compute_model=PeakFractionCompute(cluster) if compute else None,
    )
    xs = [rng.normal(size=(2, 3, dim)) for _ in range(micro_batches)]
    grads = [rng.normal(size=(2, 3, dim)) for _ in range(micro_batches)]
    return reference, pipeline, xs, grads, cluster


class TestEquivalence:
    @pytest.mark.parametrize("num_stages", [1, 2, 4])
    def test_forward_matches_serial(self, num_stages):
        reference, pipeline, xs, _, _ = make_setup(num_stages=num_stages)
        outputs = pipeline.forward(xs)
        for x, y in zip(xs, outputs):
            expected = reference(x)
            reference.clear_cache()
            np.testing.assert_allclose(y, expected, rtol=1e-10)

    def test_backward_matches_serial(self):
        reference, pipeline, xs, grads, _ = make_setup(num_stages=2, seed=1)
        pipeline.forward(xs)
        grad_inputs = pipeline.backward(grads)

        x_all = np.concatenate(xs, axis=0)
        g_all = np.concatenate(grads, axis=0)
        reference(x_all)
        reference.zero_grad()
        gx_ref = reference.backward(g_all)
        np.testing.assert_allclose(
            np.concatenate(grad_inputs, axis=0), gx_ref, rtol=1e-8, atol=1e-11
        )
        ref_grads = dict(reference.named_parameters())
        pipe_params = pipeline.parameters()
        # Pipeline blocks are the serial model's blocks in order.
        for (name, ref_param), pipe_param in zip(ref_grads.items(), pipe_params):
            np.testing.assert_allclose(
                pipe_param.grad, ref_param.grad, rtol=1e-8, atol=1e-11, err_msg=name
            )


class TestLimitsAndLayout:
    def test_layer_count_limit(self):
        """The paper's Sec II point: stages cannot exceed layers."""
        serial = TransformerStack(8, 2, 2, rng=0)
        cluster = VirtualCluster(num_gpus=4)
        with pytest.raises(PipelineLimitError):
            PipelineParallelTrunk(serial, cluster, num_stages=3)

    def test_needs_enough_ranks(self):
        serial = TransformerStack(8, 4, 2, rng=0)
        cluster = VirtualCluster(num_gpus=2)
        with pytest.raises(ValueError):
            PipelineParallelTrunk(serial, cluster, num_stages=4)

    def test_uneven_partition(self):
        _, pipeline, _, _, _ = make_setup(num_stages=3, depth=4)
        sizes = [len(stage) for stage in pipeline.stages]
        assert sizes == [2, 1, 1]
        assert sum(sizes) == 4

    def test_parameters_distributed_across_devices(self):
        _, pipeline, _, _, cluster = make_setup(num_stages=2, depth=4)
        for stage in range(2):
            stage_bytes = sum(p.nbytes for p in pipeline.stage_parameters(stage))
            assert cluster.device(stage).memory.current_bytes == stage_bytes

    def test_boundary_traffic_recorded(self):
        _, pipeline, xs, grads, cluster = make_setup(num_stages=2)
        pipeline.forward(xs)
        pipeline.backward(grads)
        assert cluster.timeline.ledger(0).comm_bytes > 0
        assert cluster.timeline.ledger(1).comm_bytes > 0


class TestSchedule:
    def test_bubble_fraction(self):
        _, pipeline, _, _, _ = make_setup(num_stages=4, depth=4)
        assert pipeline.bubble_fraction(1) == pytest.approx(3 / 4)
        assert pipeline.bubble_fraction(12) == pytest.approx(3 / 15)
        with pytest.raises(ValueError):
            pipeline.bubble_fraction(0)

    def test_more_micro_batches_amortize_the_bubble(self):
        _, pipeline, _, _, _ = make_setup(num_stages=4, depth=4)
        assert pipeline.bubble_fraction(16) < pipeline.bubble_fraction(2)

    def test_schedule_walltime_exceeds_ideal(self):
        _, pipeline, xs, _, cluster = make_setup(num_stages=2, compute=True)
        pipeline.forward(xs)
        wall = pipeline.schedule_walltime(len(xs))
        ideal = max(
            cluster.timeline.ledger(s).compute_s for s in range(2)
        )
        assert wall > ideal  # the bubble costs something

    def test_schedule_needs_compute_model(self):
        _, pipeline, xs, _, _ = make_setup(num_stages=2, compute=False)
        pipeline.forward(xs)
        with pytest.raises(RuntimeError):
            pipeline.schedule_walltime(3)


class TestErrors:
    def test_backward_without_forward(self):
        _, pipeline, _, grads, _ = make_setup()
        with pytest.raises(RuntimeError):
            pipeline.backward(grads)

    def test_gradient_count_mismatch(self):
        _, pipeline, xs, grads, _ = make_setup()
        pipeline.forward(xs)
        with pytest.raises(ValueError):
            pipeline.backward(grads[:1])

    def test_empty_micro_batches(self):
        _, pipeline, _, _, _ = make_setup()
        with pytest.raises(ValueError):
            pipeline.forward([])

"""End-to-end equivalence tests for the full HybridSTOPEngine."""

import numpy as np
import pytest

from repro.cluster import VirtualCluster
from repro.models import OrbitConfig, build_model
from repro.parallel import HybridParallelPlan, HybridSTOPEngine

TINY = OrbitConfig(
    "tiny",
    embed_dim=8,
    depth=2,
    num_heads=2,
    in_vars=3,
    out_vars=2,
    img_height=8,
    img_width=8,
    patch_size=4,
)


def make_engine(tp=2, fsdp=2, ddp=1, seed=0, **kwargs):
    cluster = VirtualCluster(num_gpus=tp * fsdp * ddp, gpus_per_node=8)
    plan = HybridParallelPlan(cluster, tp_size=tp, fsdp_size=fsdp, ddp_size=ddp)
    model = build_model(TINY, rng=seed, dtype=np.float64)
    engine = HybridSTOPEngine(model, plan, **kwargs)
    return engine, cluster, plan


def make_batches(ddp, fsdp, micro_batch=2, seed=0):
    rng = np.random.default_rng(seed)
    xs = [
        [rng.normal(size=(micro_batch, 3, 8, 8)) for _ in range(fsdp)] for _ in range(ddp)
    ]
    leads = [[np.full((micro_batch,), 24.0) for _ in range(fsdp)] for _ in range(ddp)]
    grad_ys = [
        [rng.normal(size=(micro_batch, 2, 8, 8)) for _ in range(fsdp)] for _ in range(ddp)
    ]
    return xs, leads, grad_ys


def serial_reference(seed, xs, leads, grad_ys):
    """Serial model over the flattened global batch."""
    model = build_model(TINY, rng=seed, dtype=np.float64)
    x_all = np.concatenate([x for replica in xs for x in replica], axis=0)
    lead_all = np.concatenate([l for replica in leads for l in replica], axis=0)
    g_all = np.concatenate([g for replica in grad_ys for g in replica], axis=0)
    y_all = model(x_all, lead_all)
    model.zero_grad()
    gx_all = model.backward(g_all)
    return model, y_all, gx_all


@pytest.mark.parametrize("tp,fsdp,ddp", [(1, 1, 1), (2, 2, 1), (2, 1, 2), (2, 2, 2)])
def test_forward_matches_serial(tp, fsdp, ddp):
    engine, _, _ = make_engine(tp=tp, fsdp=fsdp, ddp=ddp, seed=11)
    xs, leads, grad_ys = make_batches(ddp, fsdp, seed=1)
    _, y_ref, _ = serial_reference(11, xs, leads, grad_ys)
    ys = engine.forward(xs, leads)
    flat = [y for replica in ys for y in replica]
    np.testing.assert_allclose(np.concatenate(flat, axis=0), y_ref, rtol=1e-8, atol=1e-11)


@pytest.mark.parametrize("tp,fsdp,ddp", [(2, 2, 1), (2, 2, 2)])
def test_backward_and_gradients_match_serial(tp, fsdp, ddp):
    engine, _, _ = make_engine(tp=tp, fsdp=fsdp, ddp=ddp, seed=13)
    xs, leads, grad_ys = make_batches(ddp, fsdp, seed=3)
    ref_model, _, gx_ref = serial_reference(13, xs, leads, grad_ys)
    ref_grads = {n: p.grad for n, p in ref_model.named_parameters()}

    engine.forward(xs, leads)
    grad_xs = engine.backward(grad_ys)
    engine.allreduce_gradients()

    flat_gx = np.concatenate([g for replica in grad_xs for g in replica], axis=0)
    np.testing.assert_allclose(flat_gx, gx_ref, rtol=1e-7, atol=1e-10)

    # Dense (front + head) gradients, replica 0.
    # _DenseFront/_DenseHead reuse the serial submodule names directly.
    dense = dict(engine.fronts[0][0].named_parameters())
    dense.update(dict(engine.heads[0][0].named_parameters()))
    for name, param in dense.items():
        assert name in ref_grads, name
        np.testing.assert_allclose(
            param.grad, ref_grads[name], rtol=1e-7, atol=1e-10, err_msg=name
        )

    # Trunk gradients, replica 0 (same block{i}.<sub>.<param> naming).
    trunk_grads = engine.trunks[0].gathered_grads()
    for name, grad in trunk_grads.items():
        assert name in ref_grads, name
        np.testing.assert_allclose(
            grad, ref_grads[name], rtol=1e-7, atol=1e-10, err_msg=name
        )


def test_ddp_replicas_receive_identical_reduced_grads():
    engine, _, _ = make_engine(tp=1, fsdp=1, ddp=2, seed=17)
    xs, leads, grad_ys = make_batches(2, 1, seed=5)
    engine.forward(xs, leads)
    engine.backward(grad_ys)
    engine.allreduce_gradients()
    for (n0, p0), (n1, p1) in zip(
        engine.fronts[0][0].named_parameters(), engine.fronts[1][0].named_parameters()
    ):
        np.testing.assert_allclose(p0.grad, p1.grad, rtol=1e-12, err_msg=n0)
    for sp0, sp1 in zip(engine.trunks[0].sharded_parameters(), engine.trunks[1].sharded_parameters()):
        np.testing.assert_allclose(sp0.full_grad(), sp1.full_grad(), rtol=1e-12, err_msg=sp0.name)


def test_checkpointed_serial_model_rejected():
    cluster = VirtualCluster(num_gpus=4)
    plan = HybridParallelPlan(cluster, tp_size=2, fsdp_size=2)
    model = build_model(TINY, rng=0, activation_checkpointing=True)
    with pytest.raises(ValueError):
        HybridSTOPEngine(model, plan)


def test_bad_batch_nesting_rejected():
    engine, _, _ = make_engine(tp=2, fsdp=2)
    xs, leads, _ = make_batches(1, 1)
    with pytest.raises(ValueError):
        engine.forward(xs, leads)


def test_dense_params_allocated_on_every_rank():
    engine, cluster, _ = make_engine(tp=2, fsdp=2)
    for rank in range(4):
        assert cluster.device(rank).memory.category_current("params.dense") > 0


def test_zero_grad_resets_everything():
    engine, _, _ = make_engine(tp=2, fsdp=2, seed=19)
    xs, leads, grad_ys = make_batches(1, 2, seed=7)
    engine.forward(xs, leads)
    engine.backward(grad_ys)
    engine.zero_grad()
    assert all(p.grad is None for p in engine.dense_parameters())
    assert all(sp.grad_shards is None for sp in engine.sharded_parameters())

"""Tests for Megatron-style tensor parallelism and DDP engines."""

import numpy as np
import pytest

from repro.cluster import VirtualCluster
from repro.nn.mlp import MLP
from repro.nn.transformer import TransformerBlock, TransformerStack
from repro.parallel import DDPEngine, HybridParallelPlan, TensorParallelBlock
from repro.parallel.tensor_parallel import TensorParallelismLimitError, TensorParallelTrunk


class TestTensorParallel:
    def test_block_equivalence(self):
        rng = np.random.default_rng(0)
        serial = TransformerBlock(8, 4, rng=0, dtype=np.float64)
        reference = TransformerBlock(8, 4, rng=0, dtype=np.float64)
        cluster = VirtualCluster(num_gpus=4)
        plan = HybridParallelPlan(cluster, tp_size=4, fsdp_size=1)
        tp = TensorParallelBlock(serial, plan)
        x = rng.normal(size=(2, 3, 8))
        g = rng.normal(size=(2, 3, 8))
        y = tp.forward(x)
        expected = reference(x)
        np.testing.assert_allclose(y, expected, rtol=1e-9)
        gx = tp.backward(g)
        reference.zero_grad()
        gx_ref = reference.backward(g)
        np.testing.assert_allclose(gx, gx_ref, rtol=1e-8, atol=1e-11)

    def test_head_limit_enforced(self):
        """The Fig 5 limitation: degree cannot exceed the head count."""
        serial = TransformerBlock(16, 2, rng=0)
        cluster = VirtualCluster(num_gpus=4)
        plan = HybridParallelPlan(cluster, tp_size=4, fsdp_size=1)
        with pytest.raises(TensorParallelismLimitError):
            TensorParallelBlock(serial, plan)

    def test_indivisible_heads_rejected(self):
        serial = TransformerBlock(12, 3, rng=0)
        cluster = VirtualCluster(num_gpus=2)
        plan = HybridParallelPlan(cluster, tp_size=2, fsdp_size=1)
        with pytest.raises(TensorParallelismLimitError):
            TensorParallelBlock(serial, plan)

    def test_requires_fsdp_free_plan(self):
        serial = TransformerBlock(8, 4, rng=0)
        cluster = VirtualCluster(num_gpus=4)
        plan = HybridParallelPlan(cluster, tp_size=2, fsdp_size=2)
        with pytest.raises(ValueError):
            TensorParallelBlock(serial, plan)

    def test_trunk_equivalence(self):
        rng = np.random.default_rng(1)
        serial = TransformerStack(8, 2, 2, rng=1, dtype=np.float64)
        reference = TransformerStack(8, 2, 2, rng=1, dtype=np.float64)
        cluster = VirtualCluster(num_gpus=2)
        plan = HybridParallelPlan(cluster, tp_size=2, fsdp_size=1)
        tp = TensorParallelTrunk(serial, plan)
        x = rng.normal(size=(2, 3, 8))
        np.testing.assert_allclose(tp.forward(x), reference(x), rtol=1e-8)

    def test_no_gather_memory_traffic(self):
        """Plain TP keeps shards resident: no FSDP gather comm for params
        beyond the free singleton gathers."""
        serial = TransformerBlock(8, 4, rng=0, dtype=np.float64)
        cluster = VirtualCluster(num_gpus=4)
        plan = HybridParallelPlan(cluster, tp_size=4, fsdp_size=1)
        tp = TensorParallelBlock(serial, plan)
        x = np.random.default_rng(0).normal(size=(2, 3, 8))
        tp.forward(x)
        # Activations are all-reduced (cost > 0) but gathers over singleton
        # FSDP groups are free.
        led = cluster.timeline.ledger(0)
        assert led.comm_s > 0


class TestDDP:
    def _setup(self, replicas=2, seed=0):
        rng = np.random.default_rng(seed)
        serial = MLP(6, 8, rng=seed, dtype=np.float64)
        reference = MLP(6, 8, rng=seed, dtype=np.float64)
        cluster = VirtualCluster(num_gpus=replicas, gpus_per_node=8)
        engine = DDPEngine(serial, cluster, num_replicas=replicas)
        xs = [rng.normal(size=(3, 6)) for _ in range(replicas)]
        grad_ys = [rng.normal(size=(3, 6)) for _ in range(replicas)]
        return reference, engine, xs, grad_ys, cluster

    def test_replicas_start_in_sync(self):
        _, engine, _, _, _ = self._setup()
        assert engine.replica_state_in_sync()

    def test_forward_identical_to_serial_per_replica(self):
        reference, engine, xs, _, _ = self._setup()
        ys = engine.forward(xs)
        for x, y in zip(xs, ys):
            expected = reference(x)
            reference.clear_cache()
            np.testing.assert_allclose(y, expected, rtol=1e-12)

    def test_reduced_grads_match_global_batch(self):
        reference, engine, xs, grad_ys, _ = self._setup(seed=1)
        engine.forward(xs)
        engine.backward(grad_ys)
        reference(np.concatenate(xs, axis=0))
        reference.zero_grad()
        reference.backward(np.concatenate(grad_ys, axis=0))
        ref_grads = {n: p.grad for n, p in reference.named_parameters()}
        for replica in engine.replicas:
            for name, param in replica.named_parameters():
                np.testing.assert_allclose(param.grad, ref_grads[name], rtol=1e-10, err_msg=name)

    def test_grad_reduction_comm_recorded(self):
        _, engine, xs, grad_ys, cluster = self._setup(seed=2)
        engine.forward(xs)
        engine.backward(grad_ys)
        assert cluster.timeline.ledger(0).comm_bytes > 0

    def test_missing_grad_raises(self):
        _, engine, xs, _, _ = self._setup()
        engine.forward(xs)
        with pytest.raises(RuntimeError):
            engine.allreduce_gradients()

    def test_invalid_replica_count(self):
        serial = MLP(4, rng=0)
        cluster = VirtualCluster(num_gpus=4)
        with pytest.raises(ValueError):
            DDPEngine(serial, cluster, num_replicas=3)
        with pytest.raises(ValueError):
            DDPEngine(serial, cluster, num_replicas=0)

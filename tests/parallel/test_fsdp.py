"""Equivalence and memory-behaviour tests for the FSDP engine (paper Fig 2)."""

import numpy as np
import pytest

from repro.cluster import VirtualCluster
from repro.memory import OutOfDeviceMemoryError
from repro.nn.mlp import MLP
from repro.nn.transformer import TransformerStack
from repro.parallel import FSDPModule


def make_setup(group_size=2, dim=8, depth=2, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    reference = TransformerStack(dim, depth, 2, rng=seed, dtype=np.float64)
    template = TransformerStack(dim, depth, 2, rng=seed, dtype=np.float64)
    cluster = VirtualCluster(num_gpus=group_size, gpus_per_node=8)
    engine = FSDPModule(template, cluster.world, **kwargs)
    xs = [rng.normal(size=(2, 3, dim)) for _ in range(group_size)]
    grad_ys = [rng.normal(size=(2, 3, dim)) for _ in range(group_size)]
    return reference, engine, xs, grad_ys, cluster


def serial_reference(serial, xs, grad_ys):
    x_all = np.concatenate(xs, axis=0)
    g_all = np.concatenate(grad_ys, axis=0)
    y_all = serial(x_all)
    serial.zero_grad()
    gx_all = serial.backward(g_all)
    return (
        np.split(y_all, len(xs), axis=0),
        np.split(gx_all, len(xs), axis=0),
        {name: p.grad for name, p in serial.named_parameters()},
    )


class TestEquivalence:
    @pytest.mark.parametrize("group_size", [1, 2, 4])
    def test_forward_matches_serial(self, group_size):
        reference, engine, xs, _, _ = make_setup(group_size=group_size)
        ys = engine.forward(xs)
        for x, y in zip(xs, ys):
            expected = reference(x)
            reference.clear_cache()
            np.testing.assert_allclose(y, expected, rtol=1e-9)

    @pytest.mark.parametrize("layer_wrapping", [True, False])
    def test_backward_matches_serial(self, layer_wrapping):
        reference, engine, xs, grad_ys, _ = make_setup(
            group_size=2, seed=1, layer_wrapping=layer_wrapping
        )
        ys_ref, gxs_ref, grads_ref = serial_reference(reference, xs, grad_ys)
        engine.forward(xs)
        gxs = engine.backward(grad_ys)
        for f in range(2):
            np.testing.assert_allclose(gxs[f], gxs_ref[f], rtol=1e-7, atol=1e-10)
        gathered = engine.gathered_grads()
        for name, ref in grads_ref.items():
            np.testing.assert_allclose(gathered[name], ref, rtol=1e-7, atol=1e-10, err_msg=name)

    def test_gathered_state_roundtrip(self):
        reference, engine, _, _, _ = make_setup(seed=2)
        state = engine.gathered_state()
        for name, param in reference.named_parameters():
            np.testing.assert_array_equal(state[name], param.data, err_msg=name)

    def test_works_with_extra_args(self):
        """Per-member extra arguments (e.g. lead times) are routed through."""
        from repro.models import OrbitConfig, build_model

        cfg = OrbitConfig("t", embed_dim=8, depth=1, num_heads=2, in_vars=2, out_vars=2,
                          img_height=8, img_width=8, patch_size=4)
        reference = build_model(cfg, rng=3, dtype=np.float64)
        template = build_model(cfg, rng=3, dtype=np.float64)
        cluster = VirtualCluster(num_gpus=2)
        engine = FSDPModule(template, cluster.world)
        rng = np.random.default_rng(0)
        xs = [rng.normal(size=(1, 2, 8, 8)) for _ in range(2)]
        leads = [np.array([24.0]), np.array([48.0])]
        ys = engine.forward(xs, leads)
        for x, lead, y in zip(xs, leads, ys):
            expected = reference(x, lead)
            reference.clear_cache()
            np.testing.assert_allclose(y, expected, rtol=1e-9)


class TestMemoryBehaviour:
    def test_peak_memory_problem_without_wrapping(self):
        """Fig 2's limitation: the full model is transiently materialized."""
        _, wrapped, xs, grad_ys, cluster_w = make_setup(
            group_size=2, depth=4, seed=4, layer_wrapping=True
        )
        wrapped.forward(xs)
        persistent = cluster_w.device(0).memory.category_current("params")
        peak_wrapped = max(cluster_w.device(r).memory.peak_bytes for r in range(2))
        _, unwrapped, xs2, _, cluster_u = make_setup(
            group_size=2, depth=4, seed=4, layer_wrapping=False
        )
        unwrapped.forward(xs2)
        peak_unwrapped = max(cluster_u.device(r).memory.peak_bytes for r in range(2))
        # Beyond the (identical) persistent shards, the unwrapped run
        # transiently holds all four layers instead of one.
        assert peak_unwrapped - persistent > 2 * (peak_wrapped - persistent)

    def test_oom_without_wrapping_fits_with_wrapping(self):
        budget = 120_000
        cluster = VirtualCluster(num_gpus=2, gpu_memory_bytes=budget)
        template = TransformerStack(16, 4, 2, rng=0, dtype=np.float64)
        engine = FSDPModule(template, cluster.world, layer_wrapping=False)
        xs = [np.zeros((1, 3, 16)) for _ in range(2)]
        with pytest.raises(OutOfDeviceMemoryError):
            engine.forward(xs)

        cluster2 = VirtualCluster(num_gpus=2, gpu_memory_bytes=budget)
        template2 = TransformerStack(16, 4, 2, rng=0, dtype=np.float64)
        engine2 = FSDPModule(template2, cluster2.world, layer_wrapping=True)
        engine2.forward([np.zeros((1, 3, 16)) for _ in range(2)])  # fits

    def test_params_freed_between_steps(self):
        _, engine, xs, grad_ys, cluster = make_setup(seed=5)
        engine.forward(xs)
        engine.backward(grad_ys)
        for rank in range(2):
            assert cluster.device(rank).memory.category_current("gathered") == 0


class TestErrors:
    def test_wrong_batch_count(self):
        _, engine, xs, _, _ = make_setup(group_size=2)
        with pytest.raises(ValueError):
            engine.forward(xs[:1])

    def test_backward_without_forward(self):
        _, engine, _, grad_ys, _ = make_setup()
        with pytest.raises(RuntimeError):
            engine.backward(grad_ys)

    def test_grad_comm_recorded(self):
        _, engine, xs, grad_ys, cluster = make_setup(seed=6)
        engine.forward(xs)
        engine.backward(grad_ys)
        assert cluster.timeline.ledger(0).comm_bytes > 0

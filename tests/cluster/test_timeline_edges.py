"""Timeline edge cases: overlap-budget safety as a property, boundary
inputs, and the bulk-synchronous walltime definition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Timeline

# One timeline event: either compute or a collective with an overlap flag.
_EVENTS = st.lists(
    st.one_of(
        st.tuples(
            st.just("compute"),
            st.floats(min_value=0.0, max_value=10.0,
                      allow_nan=False, allow_infinity=False),
        ),
        st.tuples(
            st.just("comm"),
            st.floats(min_value=0.0, max_value=10.0,
                      allow_nan=False, allow_infinity=False),
            st.booleans(),
        ),
    ),
    max_size=40,
)


@settings(max_examples=200, deadline=None)
@given(events=_EVENTS)
def test_overlap_budget_never_negative(events):
    """No sequence of operations can drive the budget below zero, and
    exposed communication never exceeds total communication."""
    tl = Timeline(2)
    for event in events:
        if event[0] == "compute":
            tl.record_compute(0, event[1])
        else:
            tl.record_comm([0, 1], event[1], nbytes=8.0, overlappable=event[2])
        for rank in range(2):
            led = tl.ledger(rank)
            assert led.overlap_budget_s >= 0.0
            assert 0.0 <= led.exposed_comm_s <= led.comm_s + 1e-9
            assert led.walltime_s >= 0.0


@settings(max_examples=100, deadline=None)
@given(events=_EVENTS)
def test_hidden_time_bounded_by_compute(events):
    """Total hidden communication can never exceed total compute."""
    tl = Timeline(1)
    for event in events:
        if event[0] == "compute":
            tl.record_compute(0, event[1])
        else:
            tl.record_comm([0], event[1], nbytes=8.0, overlappable=event[2])
    led = tl.ledger(0)
    hidden = led.comm_s - led.exposed_comm_s
    assert hidden <= led.compute_s + 1e-9


class TestBoundaryInputs:
    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Timeline(1).record_compute(0, -1e-9)

    def test_negative_comm_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Timeline(2).record_comm([0, 1], -0.5, nbytes=8.0)

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            Timeline(0)

    def test_zero_duration_events_are_legal(self):
        tl = Timeline(1)
        tl.record_compute(0, 0.0)
        tl.record_comm([0], 0.0, nbytes=0.0)
        assert tl.ledger(0).walltime_s == 0.0

    def test_comm_with_generator_ranks(self):
        """record_comm must materialize lazily-supplied rank iterables."""
        tl = Timeline(4)
        tl.record_comm((r for r in range(4)), 0.5, nbytes=8.0)
        for rank in range(4):
            assert tl.ledger(rank).comm_s == pytest.approx(0.5)


class TestWalltimeSemantics:
    def test_walltime_is_max_over_participating_ranks(self):
        tl = Timeline(4)
        tl.record_compute(0, 1.0)
        tl.record_compute(1, 3.0)
        tl.record_compute(2, 2.0)
        assert tl.walltime_s() == 3.0
        assert tl.walltime_s(ranks=[0, 2]) == 2.0
        assert tl.walltime_s(ranks=[3]) == 0.0

    def test_walltime_counts_only_exposed_comm(self):
        tl = Timeline(1)
        tl.record_compute(0, 2.0)
        tl.record_comm([0], 1.5, nbytes=8.0, overlappable=True)  # fully hidden
        assert tl.walltime_s() == 2.0
        tl.record_comm([0], 1.0, nbytes=8.0)  # blocking: fully exposed
        assert tl.walltime_s() == 3.0

    def test_empty_rank_selection(self):
        assert Timeline(2).walltime_s(ranks=[]) == 0.0

"""Tests for the timeline ledger and alpha-beta cost model."""

import math

import pytest

from repro.cluster import CollectiveCostModel, FrontierTopology, Timeline, VirtualCluster


class TestTimeline:
    def test_compute_accumulates(self):
        tl = Timeline(2)
        tl.record_compute(0, 1.5, flops=10.0)
        tl.record_compute(0, 0.5, flops=5.0)
        assert tl.ledger(0).compute_s == 2.0
        assert tl.ledger(0).flops == 15.0
        assert tl.ledger(1).compute_s == 0.0

    def test_blocking_comm_fully_exposed(self):
        tl = Timeline(2)
        tl.record_compute(0, 1.0)
        tl.record_comm([0], seconds=0.4, nbytes=100, overlappable=False)
        assert tl.ledger(0).exposed_comm_s == pytest.approx(0.4)
        assert tl.ledger(0).walltime_s == pytest.approx(1.4)

    def test_overlappable_comm_hidden_up_to_budget(self):
        tl = Timeline(1)
        tl.record_compute(0, 0.3)
        tl.record_comm([0], seconds=0.5, nbytes=1, overlappable=True)
        led = tl.ledger(0)
        assert led.comm_s == pytest.approx(0.5)
        assert led.exposed_comm_s == pytest.approx(0.2)  # 0.3 hidden

    def test_overlap_budget_consumed(self):
        tl = Timeline(1)
        tl.record_compute(0, 1.0)
        tl.record_comm([0], 0.6, 1, overlappable=True)  # hides fully, budget 0.4
        tl.record_comm([0], 0.6, 1, overlappable=True)  # 0.4 hidden, 0.2 exposed
        assert tl.ledger(0).exposed_comm_s == pytest.approx(0.2)

    def test_blocking_comm_clears_budget(self):
        tl = Timeline(1)
        tl.record_compute(0, 1.0)
        tl.record_comm([0], 0.1, 1, overlappable=False)
        tl.record_comm([0], 0.1, 1, overlappable=True)
        assert tl.ledger(0).exposed_comm_s == pytest.approx(0.2)

    def test_walltime_is_max_over_ranks(self):
        tl = Timeline(3)
        tl.record_compute(0, 1.0)
        tl.record_compute(1, 3.0)
        tl.record_compute(2, 2.0)
        assert tl.walltime_s() == 3.0
        assert tl.walltime_s([0, 2]) == 2.0

    def test_sustained_flops(self):
        tl = Timeline(2)
        tl.record_compute(0, 2.0, flops=8e12)
        tl.record_compute(1, 2.0, flops=8e12)
        assert tl.sustained_flops() == pytest.approx(8e12)

    def test_reset(self):
        tl = Timeline(1)
        tl.record_compute(0, 1.0, flops=1.0)
        tl.reset()
        assert tl.walltime_s() == 0.0
        assert tl.total_flops() == 0.0

    def test_negative_times_rejected(self):
        tl = Timeline(1)
        with pytest.raises(ValueError):
            tl.record_compute(0, -1.0)
        with pytest.raises(ValueError):
            tl.record_comm([0], -0.1, 0)


class TestCostModel:
    @pytest.fixture
    def model(self):
        return CollectiveCostModel(FrontierTopology(num_gpus=16, gpus_per_node=8))

    def test_single_rank_collectives_free(self, model):
        assert model.all_gather([3], 1 << 20) == 0.0
        assert model.all_reduce([3], 1 << 20) == 0.0

    def test_all_gather_ring_cost(self, model):
        # 4-rank intra-node group, 4 MiB total: 3 steps of 1 MiB at 50 GB/s.
        total = 4 << 20
        expected = 3 * (2e-6 + (1 << 20) / 50e9)
        assert model.all_gather([0, 1, 2, 3], total) == pytest.approx(expected)

    def test_all_reduce_twice_all_gather(self, model):
        ranks = [0, 1, 2, 3]
        nbytes = 8 << 20
        assert model.all_reduce(ranks, nbytes) == pytest.approx(
            2 * model.all_gather(ranks, nbytes)
        )

    def test_reduce_scatter_equals_all_gather(self, model):
        ranks = [0, 1, 2, 3]
        assert model.reduce_scatter(ranks, 1 << 20) == model.all_gather(ranks, 1 << 20)

    def test_broadcast_log_steps(self, model):
        nbytes = 1 << 20
        expected = math.ceil(math.log2(8)) * (2e-6 + nbytes / 50e9)
        assert model.broadcast(list(range(8)), nbytes) == pytest.approx(expected)

    def test_inter_node_slower_than_intra(self, model):
        intra = model.all_gather([0, 1], 100 << 20)
        inter = model.all_gather([0, 8], 100 << 20)
        assert inter > intra

    def test_point_to_point(self, model):
        assert model.point_to_point(0, 0, 100) == 0.0
        intra = model.point_to_point(0, 1, 1 << 20)
        inter = model.point_to_point(0, 8, 1 << 20)
        assert 0 < intra < inter

    def test_larger_groups_cost_more(self, model):
        small = model.all_gather([0, 1], 8 << 20)
        large = model.all_gather([0, 1, 2, 3], 8 << 20)
        assert large > small


class TestVirtualCluster:
    def test_world_group(self):
        cluster = VirtualCluster(num_gpus=8)
        assert cluster.world.size == 8
        assert cluster.world_size == 8

    def test_new_group_validation(self):
        cluster = VirtualCluster(num_gpus=8)
        with pytest.raises(ValueError):
            cluster.new_group([0, 0])
        with pytest.raises(ValueError):
            cluster.new_group([8])
        with pytest.raises(ValueError):
            cluster.new_group([])

    def test_group_local_mapping(self):
        cluster = VirtualCluster(num_gpus=8)
        group = cluster.new_group([4, 2, 6])
        assert group.local_index(2) == 1
        assert group.global_rank(2) == 6
        assert 4 in group and 0 not in group
        with pytest.raises(ValueError):
            group.local_index(0)

    def test_device_memory_defaults(self):
        cluster = VirtualCluster(num_gpus=2)
        assert cluster.device(0).memory.capacity_bytes == 64 * 2**30  # 64 GiB HBM

    def test_untracked_memory(self):
        cluster = VirtualCluster(num_gpus=2, track_device_memory=False)
        assert cluster.device(0).memory.capacity_bytes is None

    def test_reset_clears_state(self):
        cluster = VirtualCluster(num_gpus=2)
        cluster.timeline.record_compute(0, 1.0)
        cluster.device(0).memory.allocate(100)
        cluster.reset()
        assert cluster.timeline.walltime_s() == 0.0
        assert cluster.device(0).memory.current_bytes == 0


class TestHierarchicalAllReduce:
    @pytest.fixture
    def model(self):
        return CollectiveCostModel(FrontierTopology(num_gpus=64, gpus_per_node=8))

    def test_tree_wins_latency_bound_regime(self, model):
        """64 ranks over 8 nodes, small buffer: the flat ring pays 126
        latency terms, the tree pays ~20 — the RCCL tree-vs-ring switch."""
        ranks = list(range(64))
        flat = model.all_reduce(ranks, 4 << 10)
        tree = model.hierarchical_all_reduce(ranks, 4 << 10)
        assert tree < 0.5 * flat

    def test_ring_wins_bandwidth_bound_regime(self, model):
        """Large buffers: the contiguous ring is bandwidth-optimal (one
        NIC crossing per node per step) and beats the tree."""
        ranks = list(range(64))
        flat = model.all_reduce(ranks, 256 << 20)
        tree = model.hierarchical_all_reduce(ranks, 256 << 20)
        assert flat < tree

    def test_falls_back_to_ring_for_single_node(self, model):
        ranks = list(range(8))
        nbytes = 8 << 20
        assert model.hierarchical_all_reduce(ranks, nbytes) == model.all_reduce(ranks, nbytes)

    def test_falls_back_for_one_rank_per_node(self, model):
        ranks = list(range(0, 64, 8))
        nbytes = 8 << 20
        assert model.hierarchical_all_reduce(ranks, nbytes) == model.all_reduce(ranks, nbytes)

    def test_single_rank_free(self, model):
        assert model.hierarchical_all_reduce([3], 1 << 20) == 0.0

    def test_scales_with_bytes(self, model):
        ranks = list(range(64))
        small = model.hierarchical_all_reduce(ranks, 1 << 20)
        large = model.hierarchical_all_reduce(ranks, 64 << 20)
        assert large > small

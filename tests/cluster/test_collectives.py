"""Semantics tests for the functional collectives (real and meta mode)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    VirtualCluster,
    all_gather,
    all_reduce,
    all_to_all,
    barrier,
    broadcast,
    gather,
    reduce_scatter,
    scatter,
)
from repro.meta import MetaArray


@pytest.fixture
def cluster():
    return VirtualCluster(num_gpus=8, gpus_per_node=4)


@pytest.fixture
def group(cluster):
    return cluster.new_group([0, 1, 2, 3])


class TestAllGather:
    def test_concatenates_in_group_order(self, group):
        shards = [np.full((2, 3), i, dtype=np.float32) for i in range(4)]
        outs = all_gather(group, shards)
        assert len(outs) == 4
        expected = np.concatenate(shards, axis=0)
        for out in outs:
            np.testing.assert_array_equal(out, expected)

    def test_axis_argument(self, group):
        shards = [np.full((2, 1), i, dtype=np.float32) for i in range(4)]
        outs = all_gather(group, shards, axis=1)
        assert outs[0].shape == (2, 4)
        np.testing.assert_array_equal(outs[0][0], [0, 1, 2, 3])

    def test_uneven_shards_supported(self, group):
        shards = [np.zeros((i + 1, 2)) for i in range(4)]
        outs = all_gather(group, shards)
        assert outs[0].shape == (1 + 2 + 3 + 4, 2)

    def test_meta_mode(self, group):
        shards = [MetaArray((2, 3)) for _ in range(4)]
        outs = all_gather(group, shards)
        assert outs[0].shape == (8, 3)

    def test_records_comm_time(self, cluster, group):
        shards = [np.zeros((1024, 1024), np.float32) for _ in range(4)]
        all_gather(group, shards)
        assert cluster.timeline.ledger(0).comm_s > 0
        assert cluster.timeline.ledger(7).comm_s == 0  # rank outside group

    def test_wrong_buffer_count_rejected(self, group):
        with pytest.raises(ValueError):
            all_gather(group, [np.zeros(2)] * 3)

    def test_mixed_meta_real_rejected(self, group):
        buffers = [np.zeros(2), MetaArray((2,)), np.zeros(2), np.zeros(2)]
        with pytest.raises(TypeError):
            all_gather(group, buffers)

    def test_singleton_group_identity(self, cluster):
        g1 = cluster.new_group([5])
        x = np.arange(3.0)
        (out,) = all_gather(g1, [x])
        np.testing.assert_array_equal(out, x)


class TestReduceScatter:
    def test_sum_then_shard(self, group):
        buffers = [np.arange(8.0) * (i + 1) for i in range(4)]
        outs = reduce_scatter(group, buffers, op="sum")
        full = np.arange(8.0) * 10
        for i, out in enumerate(outs):
            np.testing.assert_allclose(out, full[2 * i : 2 * i + 2])

    def test_mean(self, group):
        buffers = [np.full(4, float(i)) for i in range(4)]
        outs = reduce_scatter(group, buffers, op="mean")
        np.testing.assert_allclose(np.concatenate(outs), np.full(4, 1.5))

    def test_axis_argument(self, group):
        buffers = [np.ones((2, 8)) for _ in range(4)]
        outs = reduce_scatter(group, buffers, axis=1)
        assert outs[0].shape == (2, 2)
        np.testing.assert_allclose(outs[0], 4.0)

    def test_indivisible_axis_rejected(self, group):
        with pytest.raises(ValueError):
            reduce_scatter(group, [np.zeros(6)] * 4)

    def test_shape_mismatch_rejected(self, group):
        buffers = [np.zeros(8), np.zeros(8), np.zeros(8), np.zeros(4)]
        with pytest.raises(ValueError):
            reduce_scatter(group, buffers)

    def test_meta_mode(self, group):
        outs = reduce_scatter(group, [MetaArray((8, 2))] * 4)
        assert outs[0].shape == (2, 2)


class TestAllReduce:
    @pytest.mark.parametrize(
        "op,expected", [("sum", 6.0), ("mean", 1.5), ("max", 3.0), ("min", 0.0)]
    )
    def test_ops(self, group, op, expected):
        buffers = [np.full((2,), float(i)) for i in range(4)]
        outs = all_reduce(group, buffers, op=op)
        for out in outs:
            np.testing.assert_allclose(out, expected)

    def test_unknown_op_rejected(self, group):
        with pytest.raises(ValueError):
            all_reduce(group, [np.zeros(2)] * 4, op="prod")

    def test_meta_mode_preserves_shape(self, group):
        outs = all_reduce(group, [MetaArray((3, 3))] * 4)
        assert outs[0].shape == (3, 3)


class TestBroadcastScatterGather:
    def test_broadcast(self, group):
        x = np.arange(5.0)
        outs = broadcast(group, x, root=2)
        assert len(outs) == 4
        for out in outs:
            np.testing.assert_array_equal(out, x)

    def test_broadcast_bad_root(self, group):
        with pytest.raises(ValueError):
            broadcast(group, np.zeros(2), root=4)

    def test_scatter(self, group):
        shards = [np.full(2, float(i)) for i in range(4)]
        outs = scatter(group, shards)
        for i, out in enumerate(outs):
            np.testing.assert_allclose(out, float(i))

    def test_gather_only_root_receives(self, group):
        shards = [np.full((1, 2), float(i)) for i in range(4)]
        outs = gather(group, shards, root=1)
        assert outs[0] is None and outs[2] is None and outs[3] is None
        assert outs[1].shape == (4, 2)
        np.testing.assert_allclose(outs[1][:, 0], [0, 1, 2, 3])

    def test_gather_meta(self, group):
        outs = gather(group, [MetaArray((1, 2))] * 4, root=0)
        assert outs[0].shape == (4, 2)


class TestAllToAll:
    def test_transposes_blocks(self, group):
        blocks = [[np.array([10 * i + j]) for j in range(4)] for i in range(4)]
        outs = all_to_all(group, blocks)
        for j in range(4):
            received = np.concatenate(outs[j])
            np.testing.assert_array_equal(received, [10 * i + j for i in range(4)])

    def test_ragged_rows_rejected(self, group):
        with pytest.raises(ValueError):
            all_to_all(group, [[np.zeros(1)] * 3] * 4)


class TestBarrierAndAccounting:
    def test_barrier_records_time(self, cluster, group):
        barrier(group)
        assert cluster.timeline.ledger(0).comm_s > 0

    def test_overlappable_comm_hidden_under_compute(self, cluster, group):
        cluster.timeline.record_compute(0, seconds=1.0)
        cluster.timeline.record_compute(1, seconds=1.0)
        cluster.timeline.record_compute(2, seconds=1.0)
        cluster.timeline.record_compute(3, seconds=1.0)
        all_gather(group, [np.zeros((1 << 20,), np.float32)] * 4, overlappable=True)
        led = cluster.timeline.ledger(0)
        assert led.comm_s > 0
        assert led.exposed_comm_s == 0.0


@settings(max_examples=25, deadline=None)
@given(
    group_size=st.integers(2, 6),
    length=st.integers(1, 5),
    seed=st.integers(0, 2**16),
)
def test_property_allreduce_equals_allgather_sum(group_size, length, seed):
    """all_reduce(sum) must equal summing an all_gather — the identity the
    ring algorithm (reduce-scatter + all-gather) relies on."""
    rng = np.random.default_rng(seed)
    cluster = VirtualCluster(num_gpus=group_size, gpus_per_node=8)
    group = cluster.world
    buffers = [rng.normal(size=length) for _ in range(group_size)]
    reduced = all_reduce(group, buffers, op="sum")[0]
    gathered = all_gather(group, [b[None] for b in buffers])[0]
    np.testing.assert_allclose(reduced, gathered.sum(axis=0), rtol=1e-12)


@settings(max_examples=25, deadline=None)
@given(group_size=st.integers(2, 6), chunks=st.integers(1, 4), seed=st.integers(0, 2**16))
def test_property_reduce_scatter_then_all_gather_is_all_reduce(group_size, chunks, seed):
    rng = np.random.default_rng(seed)
    cluster = VirtualCluster(num_gpus=group_size, gpus_per_node=8)
    group = cluster.world
    buffers = [rng.normal(size=group_size * chunks) for _ in range(group_size)]
    shards = reduce_scatter(group, buffers, op="sum")
    rebuilt = all_gather(group, shards)[0]
    expected = all_reduce(group, buffers, op="sum")[0]
    np.testing.assert_allclose(rebuilt, expected, rtol=1e-12)

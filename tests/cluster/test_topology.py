"""Tests for the Frontier-like topology model."""

import pytest

from repro.cluster import FrontierTopology, LinkKind


class TestStructure:
    def test_node_layout(self):
        topo = FrontierTopology(num_gpus=32, gpus_per_node=8)
        assert topo.num_nodes == 4
        assert topo.node_of(0) == 0
        assert topo.node_of(15) == 1
        assert topo.local_rank(13) == 5
        assert list(topo.ranks_of_node(2)) == list(range(16, 24))

    def test_single_partial_node(self):
        topo = FrontierTopology(num_gpus=4, gpus_per_node=8)
        assert topo.num_nodes == 1
        assert list(topo.ranks_of_node(0)) == [0, 1, 2, 3]

    def test_non_integral_nodes_rejected(self):
        with pytest.raises(ValueError):
            FrontierTopology(num_gpus=12, gpus_per_node=8)

    def test_rank_bounds_checked(self):
        topo = FrontierTopology(num_gpus=8)
        with pytest.raises(ValueError):
            topo.node_of(8)
        with pytest.raises(ValueError):
            topo.ranks_of_node(1)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_positive_sizes_required(self, bad):
        with pytest.raises(ValueError):
            FrontierTopology(num_gpus=bad)


class TestLinkClassification:
    def test_link_kinds(self):
        topo = FrontierTopology(num_gpus=16, gpus_per_node=8)
        assert topo.link_kind(3, 3) is LinkKind.SELF
        assert topo.link_kind(0, 7) is LinkKind.INTRA_NODE
        assert topo.link_kind(0, 8) is LinkKind.INTER_NODE

    def test_group_link_kind(self):
        topo = FrontierTopology(num_gpus=16, gpus_per_node=8)
        assert topo.group_link_kind([2]) is LinkKind.SELF
        assert topo.group_link_kind([0, 3, 7]) is LinkKind.INTRA_NODE
        assert topo.group_link_kind([0, 8]) is LinkKind.INTER_NODE

    def test_link_specs(self):
        topo = FrontierTopology(num_gpus=16, gpus_per_node=8)
        assert topo.link_spec(LinkKind.INTRA_NODE).bandwidth_Bps == 50e9
        assert topo.link_spec(LinkKind.INTER_NODE).bandwidth_Bps == 100e9
        assert topo.link_spec(LinkKind.SELF).latency_s == 0.0


class TestEffectiveBandwidth:
    def test_intra_node_no_contention(self):
        topo = FrontierTopology(num_gpus=16, gpus_per_node=8)
        spec = topo.effective_bandwidth(list(range(8)))
        assert spec.bandwidth_Bps == 50e9

    def test_one_gpu_per_node_sees_shared_nic(self):
        # An FSDP group of one GCD per node competes with the 7 sibling
        # groups of each node for the 100 GB/s node injection bandwidth.
        topo = FrontierTopology(num_gpus=64, gpus_per_node=8)
        spec = topo.effective_bandwidth([0, 8, 16, 24])
        assert spec.bandwidth_Bps == pytest.approx(100e9 / 8)

    def test_whole_nodes_see_full_nic(self):
        topo = FrontierTopology(num_gpus=64, gpus_per_node=8)
        spec = topo.effective_bandwidth(list(range(16)))  # two whole nodes
        assert spec.bandwidth_Bps == pytest.approx(100e9)

    def test_inter_node_latency_used(self):
        topo = FrontierTopology(num_gpus=16, gpus_per_node=8)
        spec = topo.effective_bandwidth([0, 8])
        assert spec.latency_s == topo.inter_node.latency_s

"""Exactness harness for rank-symmetry folding.

The folded timeline's contract is *bitwise* equality, not statistical
closeness: for any eligible run, expanding the folded event log must
reproduce the exact-mode per-rank ledgers, the full span list, and the
step walltime float-for-float.  Randomized (TP, FSDP, DDP, micro-batch,
depth, prefetch, recompute) specs up to 32 GCDs pin the property; the
fault cases pin the exact-fallback machinery (a fault singles out one
rank, so its step must run unfolded, and a timing fault must keep the
run unfolded afterwards).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.timeline import FoldedTimeline, _ledger_values
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.models.configs import OrbitConfig
from repro.runtime import RunSpec, Session


def _config(depth=2):
    return OrbitConfig(
        name="fold-tiny", embed_dim=64, depth=depth, num_heads=4,
        in_vars=3, out_vars=3, img_height=32, img_width=64,
        patch_size=8, mlp_ratio=4.0, qk_layernorm=False,
    )


#: Whole-node (8-GCD) grids up to 32 GCDs; tp=8 exercises the
#: sub-head sharding regime (num_heads=4 < tp).
LEGAL_GRIDS = sorted(
    (tp, fsdp, ddp)
    for tp in (1, 2, 4, 8)
    for fsdp in (1, 2, 4, 8)
    for ddp in (1, 2, 4, 8)
    if tp * fsdp * ddp in (8, 16, 32)
)

#: 4D whole-node grids: a non-trivial stage axis on top of every 3D
#: sub-shape, worlds of 8-32 GCDs.  Folding requires uniform
#: pipeline-boundary links, so a multi-node grid must cut stages at
#: node boundaries (stage size a multiple of 8); single-node worlds
#: are uniform trivially.
LEGAL_GRIDS_4D = sorted(
    (pp, tp, fsdp, ddp)
    for pp in (2, 4, 8)
    for tp in (1, 2)
    for fsdp in (1, 2)
    for ddp in (1, 2, 4)
    if pp * tp * fsdp * ddp in (8, 16, 32)
    and (pp * tp * fsdp * ddp == 8 or (tp * fsdp * ddp) % 8 == 0)
)


def _spec(grid, micro_batch=2, depth=2, prefetch=True, recompute=False,
          num_steps=1, fold="off", compute_skew=()):
    if len(grid) == 4:
        pp, tp, fsdp, ddp = grid
    else:
        pp, (tp, fsdp, ddp) = 1, grid
    return RunSpec(
        config=_config(depth), num_gpus=pp * tp * fsdp * ddp, gpus_per_node=8,
        pp_size=pp, tp_size=tp, fsdp_size=fsdp, ddp_size=ddp,
        micro_batch=micro_batch,
        prefetch=prefetch, recompute=recompute, num_steps=num_steps,
        fold=fold, compute_skew=compute_skew,
    )


def _run(spec, fault_plan=None):
    session = Session(spec)
    injector = None
    if fault_plan is not None:
        injector = FaultInjector(fault_plan, gpus_per_node=spec.gpus_per_node)
        session.cluster.attach_injector(injector)
    modes = []
    for step in range(spec.num_steps):
        if injector is not None:
            injector.begin_step(step)
        session.meta_step(step)
        modes.append(getattr(session.cluster.timeline, "folded", None))
    return session, modes


def _assert_bitwise_equal(exact, folded):
    """Expanded folded state must equal the exact run float-for-float."""
    timeline = folded.cluster.timeline
    assert isinstance(timeline, FoldedTimeline)
    ledgers, spans = timeline.expand()
    world = exact.cluster.world_size
    for rank in range(world):
        assert _ledger_values(exact.cluster.timeline.ledger(rank)) == \
            _ledger_values(ledgers[rank]), f"ledger mismatch at rank {rank}"
    exact_spans = [s.to_dict() for s in exact.tracer.spans]
    folded_spans = [s.to_dict() for s in spans]
    assert exact_spans == folded_spans
    assert exact.cluster.timeline.walltime_s() == timeline.walltime_s()
    assert exact.cluster.timeline.total_flops() == timeline.total_flops()
    assert exact.peak_memory_bytes() == folded.peak_memory_bytes()


class TestFoldedExactParity:
    @given(
        grid=st.sampled_from(LEGAL_GRIDS),
        micro_batch=st.integers(min_value=1, max_value=3),
        depth=st.integers(min_value=1, max_value=2),
        prefetch=st.booleans(),
        recompute=st.booleans(),
        num_steps=st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=12, deadline=None)
    def test_folded_run_is_bitwise_equal_to_exact(
        self, grid, micro_batch, depth, prefetch, recompute, num_steps
    ):
        kwargs = dict(micro_batch=micro_batch, depth=depth,
                      prefetch=prefetch, recompute=recompute,
                      num_steps=num_steps)
        exact, _ = _run(_spec(grid, fold="off", **kwargs))
        folded, modes = _run(_spec(grid, fold="on", **kwargs))
        assert folded.fold_decision.folded, folded.fold_decision.reason
        assert all(modes)
        _assert_bitwise_equal(exact, folded)

    def test_auto_mode_folds_when_eligible(self):
        session = Session(_spec((2, 2, 4), fold="auto"))
        assert session.fold_decision.folded
        assert isinstance(session.cluster.timeline, FoldedTimeline)

    def test_compact_trace_is_smaller_but_walltime_identical(self):
        exact, _ = _run(_spec((2, 2, 4), fold="off"))
        folded, _ = _run(_spec((2, 2, 4), fold="on"))
        assert len(folded.tracer.spans) < len(exact.tracer.spans)
        assert folded.cluster.timeline.walltime_s() == \
            exact.cluster.timeline.walltime_s()

    def test_compact_spans_carry_class_sizes(self):
        folded, _ = _run(_spec((2, 2, 4), fold="on"))
        partition = folded.cluster.timeline.partition
        class_sizes = {partition.size(key) for key in partition.keys}
        sized = [s for s in folded.tracer.spans if "members" in s.attrs]
        assert sized
        # Every compact span's weight is a class size, every span lands
        # at a representative rank, and the sizes cover the world.
        reps = {partition.representative(key) for key in partition.keys}
        assert {s.attrs["members"] for s in sized} <= class_sizes
        assert {s.rank for s in sized} <= reps
        assert sum(partition.size(key) for key in partition.keys) == \
            partition.num_gpus


class TestFoldedPipelineParity:
    """The stage coordinate joins the fold ClassKey, so folding a 4D
    run must stay bitwise against the exact 4D run at any stage count."""

    @given(
        grid=st.sampled_from(LEGAL_GRIDS_4D),
        micro_batch=st.integers(min_value=1, max_value=2),
        extra_depth=st.integers(min_value=0, max_value=1),
        prefetch=st.booleans(),
        num_steps=st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=8, deadline=None)
    def test_folded_4d_run_is_bitwise_equal_to_exact(
        self, grid, micro_batch, extra_depth, prefetch, num_steps
    ):
        kwargs = dict(micro_batch=micro_batch, depth=grid[0] + extra_depth,
                      prefetch=prefetch, num_steps=num_steps)
        exact, _ = _run(_spec(grid, fold="off", **kwargs))
        folded, modes = _run(_spec(grid, fold="on", **kwargs))
        assert folded.fold_decision.folded, folded.fold_decision.reason
        assert all(modes)
        _assert_bitwise_equal(exact, folded)

    @pytest.mark.parametrize("grid", [
        (2, 1, 2, 4),   # 16 GCDs, one node per stage
        (4, 1, 2, 4),   # 32 GCDs, one node per stage
        (8, 1, 1, 1),   # 8 stages inside a single node
    ])
    def test_fold_parity_across_stage_counts(self, grid):
        """Node-aligned cuts at every pipeline depth stay bitwise."""
        kwargs = dict(depth=8)
        exact, _ = _run(_spec(grid, fold="off", **kwargs))
        folded, _ = _run(_spec(grid, fold="on", **kwargs))
        assert folded.fold_decision.folded, folded.fold_decision.reason
        _assert_bitwise_equal(exact, folded)

    def test_non_uniform_boundaries_refuse_to_fold(self):
        """pp=4 over two 8-GCD nodes cuts stages mid-node: boundary
        links alternate intra/inter-node, so folding must refuse —
        and the unfolded fold="on" run still matches fold="off"."""
        grid = (4, 1, 2, 2)
        off, _ = _run(_spec(grid, fold="off", depth=4))
        on, _ = _run(_spec(grid, fold="on", depth=4))
        assert not on.fold_decision.folded
        assert "non-uniform" in on.fold_decision.reason
        for rank in range(16):
            assert _ledger_values(off.cluster.timeline.ledger(rank)) == \
                _ledger_values(on.cluster.timeline.ledger(rank))


class TestFaultFallback:
    def test_straggler_forces_exact_and_stays_exact(self):
        """A timing fault unfolds its step and divergence blocks refold."""
        plan = FaultPlan(faults=(
            FaultSpec(FaultKind.STRAGGLER, step=1, rank=5, factor=2.0),
        ))
        kwargs = dict(num_steps=3)
        exact, _ = _run(_spec((2, 2, 4), fold="off", **kwargs), plan)
        folded, modes = _run(_spec((2, 2, 4), fold="on", **kwargs), plan)
        # Step 1 is the fault window; rank 5's ledger diverges there, so
        # the timeline can never legally refold.
        assert modes == [True, False, False]
        _assert_bitwise_equal(exact, folded)

    def test_link_degrade_forces_exact_for_its_window(self):
        plan = FaultPlan(faults=(
            FaultSpec(FaultKind.LINK_DEGRADE, step=1, rank=3, factor=3.0,
                      duration_steps=2),
        ))
        kwargs = dict(num_steps=4)
        exact, _ = _run(_spec((2, 2, 2), fold="off", **kwargs), plan)
        folded, modes = _run(_spec((2, 2, 2), fold="on", **kwargs), plan)
        assert modes[0] is True and modes[1] is False and modes[2] is False
        _assert_bitwise_equal(exact, folded)

    def test_timing_neutral_fault_refolds_after_its_step(self):
        """Grad corruption never touches timing, so the class ledgers
        stay converged and the timeline folds again the next step."""
        plan = FaultPlan(faults=(
            FaultSpec(FaultKind.GRAD_CORRUPTION, step=1, rank=2),
        ))
        kwargs = dict(num_steps=3)
        exact, _ = _run(_spec((2, 2, 4), fold="off", **kwargs), plan)
        folded, modes = _run(_spec((2, 2, 4), fold="on", **kwargs), plan)
        assert modes == [True, False, True]
        _assert_bitwise_equal(exact, folded)


class TestEligibility:
    def test_fold_off_never_folds(self):
        session = Session(_spec((2, 2, 4), fold="off"))
        assert not session.fold_decision.folded
        assert session.fold_decision.reason == "fold=off"
        assert not isinstance(session.cluster.timeline, FoldedTimeline)

    def test_compute_skew_is_ineligible(self):
        """SkewedCompute singles out ranks, so folding must refuse."""
        session = Session(
            _spec((2, 2, 4), fold="on", compute_skew=((5, 2.0),))
        )
        assert not session.fold_decision.folded
        assert "skew" in session.fold_decision.reason
        assert not isinstance(session.cluster.timeline, FoldedTimeline)

    def test_skewed_run_still_simulates_correctly(self):
        """fold="on" with skew silently runs exact; both specs agree."""
        skew = ((5, 2.0),)
        off, _ = _run(_spec((2, 2, 2), fold="off", compute_skew=skew))
        on, _ = _run(_spec((2, 2, 2), fold="on", compute_skew=skew))
        for rank in range(8):
            assert _ledger_values(off.cluster.timeline.ledger(rank)) == \
                _ledger_values(on.cluster.timeline.ledger(rank))

    def test_numeric_sessions_never_fold(self):
        spec = RunSpec(config=_config(1), num_gpus=8, tp_size=2, fsdp_size=2,
                       ddp_size=2, meta=False, fold="on",
                       track_device_memory=False)
        session = Session(spec)
        assert not session.fold_decision.folded
        assert "numeric" in session.fold_decision.reason

    def test_invalid_fold_value_rejected(self):
        with pytest.raises(Exception, match="invalid fold"):
            _spec((2, 2, 2), fold="sometimes")


class TestMetaStepContract:
    def test_meta_step_returns_nan_loss_under_folding(self):
        session = Session(_spec((2, 2, 4), fold="on"))
        loss, observations = session.meta_step(0)
        assert math.isnan(loss)
        assert observations == session.spec.observations

"""Property-based tests for the alpha-beta collective cost model.

These pin down the *shape* of the cost surface the tuner searches over:
monotonicity in message size, monotonicity in group size (within a
node, where the link spec is constant — across nodes, NIC contention
legitimately makes a bigger group on more nodes cheaper per member),
free single-rank collectives, and the ring identity
``all_reduce = reduce_scatter + all_gather``.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import VirtualCluster


def _model(num_gpus=32, gpus_per_node=8):
    return VirtualCluster(num_gpus=num_gpus, gpus_per_node=gpus_per_node).cost_model


COLLECTIVES = ("all_gather", "reduce_scatter", "all_reduce", "broadcast")

nbytes_pairs = st.tuples(
    st.integers(min_value=1, max_value=2**31),
    st.integers(min_value=0, max_value=2**31),
)


class TestMonotonicity:
    @given(pair=nbytes_pairs, op=st.sampled_from(COLLECTIVES),
           group_size=st.integers(min_value=2, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_cost_non_decreasing_in_bytes(self, pair, op, group_size):
        base, extra = pair
        model = _model()
        ranks = list(range(group_size))
        cost = getattr(model, op)
        assert cost(ranks, base + extra) >= cost(ranks, base)

    @given(nbytes=st.integers(min_value=1, max_value=2**31),
           op=st.sampled_from(COLLECTIVES),
           sizes=st.tuples(st.integers(min_value=1, max_value=8),
                           st.integers(min_value=1, max_value=8)))
    @settings(max_examples=60, deadline=None)
    def test_cost_non_decreasing_in_intra_node_group_size(
        self, nbytes, op, sizes
    ):
        """More members on the same link spec never makes a ring cheaper.

        Scoped to intra-node groups: inter-node groups change the NIC
        contention factor with member count, which is not monotone.
        """
        small, large = sorted(sizes)
        model = _model()
        cost = getattr(model, op)
        assert (
            cost(list(range(large)), nbytes)
            >= cost(list(range(small)), nbytes)
        )


class TestIdentities:
    @given(nbytes=st.integers(min_value=0, max_value=2**40),
           op=st.sampled_from(COLLECTIVES + ("gather", "scatter", "all_to_all")),
           rank=st.integers(min_value=0, max_value=31))
    @settings(max_examples=40, deadline=None)
    def test_single_rank_group_is_free(self, nbytes, op, rank):
        model = _model()
        assert getattr(model, op)([rank], nbytes) == 0.0

    @given(nbytes=st.integers(min_value=0, max_value=2**40),
           group=st.sampled_from([
               list(range(2)), list(range(8)),          # intra-node rings
               [0, 8, 16, 24], list(range(0, 32, 2)),   # inter-node rings
           ]))
    @settings(max_examples=40, deadline=None)
    def test_all_reduce_is_reduce_scatter_plus_all_gather(self, nbytes, group):
        """The ring identity the estimator's DDP replay relies on."""
        model = _model()
        combined = model.reduce_scatter(group, nbytes) + model.all_gather(
            group, nbytes
        )
        assert math.isclose(
            model.all_reduce(group, nbytes), combined, rel_tol=1e-12, abs_tol=0.0
        )

"""Algebraic invariants of the functional collectives.

Property-style checks beyond the per-primitive semantics tests:
round-trip identities, reduction algebra, meta/real cost parity, and
error paths that must stay errors.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    VirtualCluster,
    all_gather,
    all_reduce,
    all_to_all,
    broadcast,
    gather,
    reduce_scatter,
    scatter,
)
from repro.meta import MetaArray


def make_group(group_size: int):
    cluster = VirtualCluster(num_gpus=8, gpus_per_node=4)
    return cluster.new_group(list(range(group_size)))


@settings(max_examples=25, deadline=None)
@given(
    group_size=st.sampled_from([1, 2, 4]),
    chunks=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_reduce_scatter_all_gather_round_trip(group_size, chunks, seed):
    """all_gather(reduce_scatter(x, sum)) == elementwise sum of x."""
    group = make_group(group_size)
    rng = np.random.default_rng(seed)
    buffers = [
        rng.normal(size=(group_size * chunks, 3)).astype(np.float64)
        for _ in range(group_size)
    ]
    shards = reduce_scatter(group, buffers, op="sum")
    rebuilt = all_gather(group, shards)
    expected = np.sum(buffers, axis=0)
    for out in rebuilt:
        np.testing.assert_allclose(out, expected, rtol=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    group_size=st.sampled_from([1, 2, 4]),
    length=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_all_reduce_mean_is_sum_over_size(group_size, length, seed):
    group = make_group(group_size)
    rng = np.random.default_rng(seed)
    buffers = [rng.normal(size=length) for _ in range(group_size)]
    means = all_reduce(group, [b.copy() for b in buffers], op="mean")
    sums = all_reduce(group, [b.copy() for b in buffers], op="sum")
    for mean_out, sum_out in zip(means, sums):
        np.testing.assert_allclose(mean_out, sum_out / group_size, rtol=1e-12)


@settings(max_examples=20, deadline=None)
@given(
    group_size=st.sampled_from([2, 4]),
    rows=st.integers(min_value=1, max_value=4),
    cols=st.integers(min_value=1, max_value=4),
)
def test_meta_mode_cost_equals_real_mode_cost(group_size, rows, cols):
    """Identical shapes must be costed identically in meta and real mode."""
    shape = (group_size * rows, cols)

    def run(make_buffer):
        group = make_group(group_size)
        tl = group.cluster.timeline
        bufs = [make_buffer(shape) for _ in range(group_size)]
        all_gather(group, bufs)
        reduce_scatter(group, [make_buffer(shape) for _ in range(group_size)])
        all_reduce(group, [make_buffer(shape) for _ in range(group_size)])
        return [
            (tl.ledger(r).comm_s, tl.ledger(r).comm_bytes) for r in group.ranks
        ]

    real = run(lambda s: np.zeros(s, dtype=np.float32))
    meta = run(lambda s: MetaArray(s, np.float32))
    assert real == meta


def test_scatter_gather_round_trip():
    group = make_group(4)
    shards = [np.full((2, 2), i, dtype=np.float32) for i in range(4)]
    scattered = scatter(group, shards)
    outs = gather(group, scattered, root=1)
    assert outs[0] is None and outs[2] is None and outs[3] is None
    np.testing.assert_array_equal(outs[1], np.concatenate(shards, axis=0))


def test_all_to_all_is_involution():
    """Applying all_to_all twice restores the original block layout."""
    group = make_group(4)
    blocks = [[np.full((1,), 10 * i + j) for j in range(4)] for i in range(4)]
    once = all_to_all(group, blocks)
    twice = all_to_all(group, once)
    for i in range(4):
        for j in range(4):
            np.testing.assert_array_equal(twice[i][j], blocks[i][j])


def test_broadcast_matches_root_for_every_root():
    group = make_group(4)
    payload = np.arange(6.0).reshape(2, 3)
    for root in range(4):
        outs = broadcast(group, payload, root=root)
        assert len(outs) == 4
        for out in outs:
            np.testing.assert_array_equal(out, payload)


class TestErrorPaths:
    @pytest.fixture
    def group(self):
        return make_group(4)

    def test_wrong_buffer_count(self, group):
        with pytest.raises(ValueError, match="expected 4 buffers"):
            all_reduce(group, [np.zeros(2)] * 3)

    def test_mixed_meta_and_real(self, group):
        bufs = [np.zeros(2), MetaArray((2,)), np.zeros(2), np.zeros(2)]
        with pytest.raises(TypeError, match="cannot mix"):
            all_gather(group, bufs)

    def test_reduce_scatter_indivisible(self, group):
        with pytest.raises(ValueError, match="not divisible"):
            reduce_scatter(group, [np.zeros((5, 2))] * 4)

    def test_unknown_reduce_op(self, group):
        with pytest.raises(ValueError, match="unknown reduce op"):
            all_reduce(group, [np.zeros(2)] * 4, op="median")

    def test_scatter_bad_root(self, group):
        with pytest.raises(ValueError, match="outside group"):
            scatter(group, [np.zeros(1)] * 4, root=4)

    def test_gather_bad_root(self, group):
        with pytest.raises(ValueError, match="outside group"):
            gather(group, [np.zeros(1)] * 4, root=-1)

    def test_all_to_all_ragged(self, group):
        blocks = [[np.zeros(1)] * 4 for _ in range(4)]
        blocks[2] = blocks[2][:3]
        with pytest.raises(ValueError, match="block row 2"):
            all_to_all(group, blocks)

    def test_errors_record_no_comm_time(self, group):
        """A rejected collective must not pollute the ledgers."""
        with pytest.raises(ValueError):
            all_reduce(group, [np.zeros(2)] * 3)
        assert group.cluster.timeline.ledger(0).comm_s == 0.0

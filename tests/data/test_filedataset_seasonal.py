"""Tests for file-backed datasets and the seasonal climatology."""

import numpy as np
import pytest

from repro.data import (
    BatchLoader,
    Climatology,
    LatLonGrid,
    Normalizer,
    SyntheticERA5,
    default_registry,
)
from repro.data.filedataset import FileDataset, save_archive
from repro.data.synthetic import STEPS_PER_YEAR
from repro.eval import ForecastEvaluator, PersistenceForecaster

GRID = LatLonGrid(8, 16)
REG = default_registry(91).subset(
    ["land_sea_mask", "2m_temperature", "temperature_850", "geopotential_500"]
)


@pytest.fixture(scope="module")
def era5():
    return SyntheticERA5(GRID, REG, steps_per_year=16, seed=4)


@pytest.fixture
def archive_path(tmp_path, era5):
    path = tmp_path / "era5_export.npz"
    save_archive(era5.validation(), path)
    return path


class TestFileDataset:
    def test_snapshots_match_source(self, archive_path, era5):
        source = era5.validation()
        loaded = FileDataset(archive_path)
        assert len(loaded) == len(source)
        np.testing.assert_allclose(loaded.snapshot(3), source.snapshot(3), rtol=1e-6)

    def test_metadata_roundtrip(self, archive_path, era5):
        loaded = FileDataset(archive_path)
        assert loaded.registry.names == REG.names
        assert loaded.out_names == era5.validation().out_names
        assert loaded.start_step == era5.validation().start_step
        assert loaded.grid.shape == GRID.shape

    def test_forecast_samples(self, archive_path):
        loaded = FileDataset(archive_path)
        sample = loaded.forecast_sample(0, lead_steps=2)
        np.testing.assert_allclose(sample.y, loaded.target(2))
        assert sample.lead_time_hours == 12.0
        with pytest.raises(IndexError):
            loaded.forecast_sample(len(loaded) - 1, 1)

    def test_window_view(self, archive_path):
        loaded = FileDataset(archive_path)
        window = loaded.window(2, 5)
        assert len(window) == 5
        np.testing.assert_allclose(window.snapshot(0), loaded.snapshot(2))
        with pytest.raises(ValueError):
            loaded.window(0, 10**6)

    def test_works_with_loader_and_normalizer(self, archive_path):
        loaded = FileDataset(archive_path)
        norm = Normalizer.fit(loaded, num_samples=4)
        loader = BatchLoader(loaded, 2, normalizer=norm)
        batch = loader.next_batch()
        assert batch.x.shape == (2, 4, 8, 16)

    def test_works_with_evaluator(self, archive_path):
        loaded = FileDataset(archive_path)
        clim = Climatology.from_dataset(loaded, num_samples=8)
        evaluator = ForecastEvaluator(loaded, clim, num_initializations=2)
        scores = evaluator.evaluate(PersistenceForecaster(), lead_steps=1)
        assert set(scores.wacc) == set(loaded.out_names)

    def test_partial_snapshot_export(self, tmp_path, era5):
        path = tmp_path / "subset.npz"
        save_archive(era5.validation(), path, indices=[0, 2, 4])
        loaded = FileDataset(path)
        assert len(loaded) == 3
        np.testing.assert_allclose(loaded.snapshot(1), era5.validation().snapshot(2), rtol=1e-6)


class TestSeasonalClimatology:
    @pytest.fixture(scope="class")
    def seasonal_world(self):
        # Full-rate world so day-of-year spans the seasons properly.
        era5 = SyntheticERA5(GRID, REG, steps_per_year=STEPS_PER_YEAR, seed=8)
        return era5.train().window(0, 2 * STEPS_PER_YEAR, name="two-years")

    def test_bins_capture_seasonal_cycle(self, seasonal_world):
        clim = Climatology.from_dataset(seasonal_world, num_samples=96, num_bins=4)
        assert clim.num_bins == 4
        t2m = [clim.field("2m_temperature", day) for day in (45.0, 228.0)]
        # Northern-hemisphere winter vs summer contrast flips between bins.
        north_winter = t2m[0][:4].mean()
        north_summer = t2m[1][:4].mean()
        assert abs(north_winter - north_summer) > 1.0

    def test_annual_mean_is_bin_average(self, seasonal_world):
        clim = Climatology.from_dataset(seasonal_world, num_samples=32, num_bins=4)
        np.testing.assert_allclose(clim.mean_fields, clim.binned_fields.mean(axis=0))

    def test_annual_default_unchanged(self, seasonal_world):
        annual = Climatology.from_dataset(seasonal_world, num_samples=16)
        assert annual.num_bins == 1
        assert annual.field("2m_temperature").shape == GRID.shape
        # day_of_year argument is accepted and ignored for annual.
        np.testing.assert_array_equal(
            annual.field("2m_temperature", 100.0), annual.field("2m_temperature")
        )

    def test_empty_bins_fall_back_to_overall_mean(self, seasonal_world):
        # Two samples cannot fill 8 bins; empty ones get the overall mean.
        clim = Climatology.from_dataset(seasonal_world, num_samples=2, num_bins=8)
        overall = clim.binned_fields.reshape(8, -1)
        assert np.isfinite(overall).all()

    def test_seasonal_climatology_tightens_wacc_reference(self, seasonal_world):
        """Against a seasonal climatology, climatology-anomaly ACC of the
        *seasonal mean itself* is ~0 while the annual reference credits
        the seasonal cycle as skill."""
        seasonal = Climatology.from_dataset(seasonal_world, num_samples=96, num_bins=4)
        annual = Climatology.from_dataset(seasonal_world, num_samples=96, num_bins=1)
        evaluator_seasonal = ForecastEvaluator(seasonal_world, seasonal, num_initializations=3)
        evaluator_annual = ForecastEvaluator(seasonal_world, annual, num_initializations=3)

        class SeasonalMeanForecaster:
            name = "seasonal-mean"

            def forecast(self, dataset, index, lead_steps):
                day = dataset.system.day_of_year(dataset.absolute_step(index + lead_steps))
                return seasonal.fields_for(day).astype(np.float32)

        fc = SeasonalMeanForecaster()
        score_seasonal = evaluator_seasonal.evaluate(fc, lead_steps=4).mean_wacc()
        score_annual = evaluator_annual.evaluate(fc, lead_steps=4).mean_wacc()
        assert score_annual > score_seasonal - 0.05

    def test_invalid_bins_rejected(self, seasonal_world):
        with pytest.raises(ValueError):
            Climatology.from_dataset(seasonal_world, num_bins=0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Climatology(np.zeros((2, 3)), ["a"])

"""Tests for the variable registry and lat-lon grid."""

import numpy as np
import pytest

from repro.data import LatLonGrid, VariableKind, default_registry
from repro.data.grid import PAPER_GRID
from repro.data.variables import PRESSURE_LEVELS_17


class TestRegistry:
    def test_full_inventory_matches_paper(self):
        """91 = 3 static + 3 surface + 85 atmospheric on 17 levels."""
        reg = default_registry(91)
        assert len(reg) == 91
        kinds = {}
        for v in reg:
            kinds[v.kind] = kinds.get(v.kind, 0) + 1
        assert kinds[VariableKind.STATIC] == 3
        assert kinds[VariableKind.SURFACE] == 3
        assert kinds[VariableKind.ATMOSPHERIC] == 85

    def test_17_pressure_levels(self):
        assert len(PRESSURE_LEVELS_17) == 17
        reg = default_registry(91)
        levels = {v.level_hpa for v in reg if v.kind == VariableKind.ATMOSPHERIC}
        assert levels == set(PRESSURE_LEVELS_17)

    def test_48_variable_subset(self):
        reg = default_registry(48)
        assert len(reg) == 48
        names91 = set(default_registry(91).names)
        assert set(reg.names) <= names91

    def test_48_contains_finetune_targets(self):
        reg = default_registry(48)
        for name in ("geopotential_500", "temperature_850", "2m_temperature",
                     "10m_u_component_of_wind"):
            assert name in reg.names

    def test_lookup_by_name_and_index(self):
        reg = default_registry(91)
        assert reg.index("2m_temperature") == 3
        assert reg["2m_temperature"].units == "K"
        assert reg[0].name == "land_sea_mask"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            default_registry(48).index("vorticity_500")

    def test_subset_preserves_order(self):
        reg = default_registry(91)
        sub = reg.subset(["2m_temperature", "orography"])
        assert sub.names == ("2m_temperature", "orography")

    def test_static_indices(self):
        reg = default_registry(91)
        assert reg.static_indices == [0, 1, 2]

    def test_truncated_registry(self):
        assert len(default_registry(8)) == 8

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            default_registry(0)
        with pytest.raises(ValueError):
            default_registry(92)

    def test_statics_have_zero_coupling(self):
        reg = default_registry(91)
        for v in reg:
            if v.is_static:
                assert v.latent_coupling == 0.0


class TestGrid:
    def test_paper_grid_resolution(self):
        assert PAPER_GRID.shape == (128, 256)
        assert PAPER_GRID.resolution_degrees == pytest.approx(1.40625)

    def test_latitudes_symmetric(self):
        grid = LatLonGrid(8, 16)
        lats = grid.latitudes
        np.testing.assert_allclose(lats, -lats[::-1])
        assert lats[0] > 0  # north first

    def test_longitudes_cover_globe(self):
        grid = LatLonGrid(8, 16)
        lons = grid.longitudes
        assert 0 < lons[0] < lons[-1] < 360

    def test_latitude_weights_unit_mean(self):
        grid = LatLonGrid(32, 64)
        weights = grid.latitude_weights()
        assert weights.shape == (32, 1)
        assert weights.mean() == pytest.approx(1.0)

    def test_polar_rows_downweighted(self):
        grid = LatLonGrid(32, 64)
        weights = grid.latitude_weights()[:, 0]
        assert weights[0] < weights[16]  # pole < equator

    def test_cell_weights_shape(self):
        grid = LatLonGrid(8, 16)
        assert grid.cell_weights().shape == (8, 16)

    def test_tiny_grid_rejected(self):
        with pytest.raises(ValueError):
            LatLonGrid(1, 16)

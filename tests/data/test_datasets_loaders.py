"""Tests for datasets, CMIP6/ERA5 archives, climatology, normalization, loaders."""

import numpy as np
import pytest

from repro.data import (
    BatchLoader,
    CMIP6_SOURCES,
    Climatology,
    LatLonGrid,
    Normalizer,
    ShardSpec,
    SyntheticCMIP6Archive,
    SyntheticERA5,
    default_registry,
)
from repro.data.era5 import TARGET_VARIABLES
from repro.data.loader import round_robin_loaders

GRID = LatLonGrid(8, 16)
REG = default_registry(91).subset(
    ["land_sea_mask", "orography", "2m_temperature", "temperature_850",
     "geopotential_500", "10m_u_component_of_wind"]
)


@pytest.fixture(scope="module")
def archive():
    return SyntheticCMIP6Archive(GRID, REG, years_per_source=0.05, seed=11)


@pytest.fixture(scope="module")
def era5():
    return SyntheticERA5(GRID, REG, steps_per_year=12)


class TestCMIP6Archive:
    def test_ten_sources(self, archive):
        assert len(CMIP6_SOURCES) == 10
        assert len(archive.datasets()) == 10

    def test_sources_differ(self, archive):
        a = archive.dataset("MPI-ESM").snapshot(3)
        b = archive.dataset("NOR").snapshot(3)
        assert not np.allclose(a, b)

    def test_sources_share_planet_structure(self, archive):
        """Static fields (orography etc.) are identical across sources."""
        a = archive.dataset("MPI-ESM").snapshot(0)[1]
        b = archive.dataset("NOR").snapshot(0)[1]
        np.testing.assert_array_equal(a, b)

    def test_unknown_source_rejected(self, archive):
        with pytest.raises(KeyError):
            archive.dataset("GFDL")

    def test_total_observations(self, archive):
        assert archive.total_observations == 10 * archive.steps_per_source

    def test_systems_cached(self, archive):
        assert archive.system("EC") is archive.system("EC")


class TestERA5:
    def test_split_lengths(self, era5):
        assert len(era5.train()) == 40 * 12  # 1979-2018
        assert len(era5.validation()) == 12
        assert len(era5.test()) == 12

    def test_splits_are_disjoint_and_ordered(self, era5):
        train, val, test = era5.train(), era5.validation(), era5.test()
        assert train.start_step + len(train) == val.start_step
        assert val.start_step + len(val) == test.start_step

    def test_target_variables(self, era5):
        assert set(era5.target_names) <= set(TARGET_VARIABLES)
        assert "geopotential_500" in era5.target_names

    def test_differs_from_cmip6_sources(self, era5, archive):
        a = era5.train().snapshot(0)
        b = archive.dataset("MPI-ESM").snapshot(0)
        assert not np.allclose(a, b)


class TestDataset:
    def test_forecast_sample_shapes(self, era5):
        ds = era5.train()
        sample = ds.forecast_sample(0, lead_steps=2)
        assert sample.x.shape == (len(REG), 8, 16)
        assert sample.y.shape == (len(ds.out_names), 8, 16)
        assert sample.lead_time_hours == 12.0

    def test_target_is_future_snapshot_subset(self, era5):
        ds = era5.train()
        sample = ds.forecast_sample(3, lead_steps=1)
        full = ds.snapshot(4)
        idx = [list(REG.names).index(n) for n in ds.out_names]
        np.testing.assert_array_equal(sample.y, full[idx])

    def test_out_of_range_rejected(self, era5):
        ds = era5.validation()
        with pytest.raises(IndexError):
            ds.forecast_sample(len(ds) - 1, lead_steps=1)
        with pytest.raises(ValueError):
            ds.forecast_sample(0, lead_steps=0)

    def test_window_bounds_checked(self, era5):
        with pytest.raises(ValueError):
            era5.train().window(0, 10**6)


class TestClimatology:
    def test_mean_matches_manual(self, era5):
        ds = era5.validation()
        clim = Climatology.from_dataset(ds, num_samples=4)
        manual = np.mean([ds.target(i).astype(np.float64)
                          for i in np.linspace(0, len(ds) - 1, 4, dtype=int)], axis=0)
        np.testing.assert_allclose(clim.mean_fields, manual)

    def test_anomalies_are_centered(self, era5):
        ds = era5.validation()
        clim = Climatology.from_dataset(ds, num_samples=len(ds))
        anoms = [clim.anomalies(ds.target(i)) for i in range(len(ds))]
        np.testing.assert_allclose(np.mean(anoms, axis=0), 0.0, atol=1e-3)

    def test_field_lookup(self, era5):
        clim = Climatology.from_dataset(era5.validation(), num_samples=2)
        assert clim.field("geopotential_500").shape == (8, 16)
        with pytest.raises(KeyError):
            clim.field("nonexistent")

    def test_shape_mismatch_rejected(self, era5):
        clim = Climatology.from_dataset(era5.validation(), num_samples=2)
        with pytest.raises(ValueError):
            clim.anomalies(np.zeros((2, 3, 4)))


class TestNormalizer:
    def test_normalized_stats(self, era5):
        ds = era5.train()
        norm = Normalizer.fit(ds, num_samples=8)
        x = norm.normalize(ds.snapshot(0))
        dynamic = [i for i, v in enumerate(REG) if not v.is_static]
        assert np.abs(x[dynamic].mean(axis=(1, 2))).max() < 3.0
        assert x.dtype == np.float32

    def test_roundtrip(self, era5):
        ds = era5.train()
        norm = Normalizer.fit(ds, num_samples=4)
        snap = ds.snapshot(1)
        back = norm.denormalize(norm.normalize(snap))
        np.testing.assert_allclose(back, snap, rtol=1e-4, atol=1e-3)

    def test_subset_names(self, era5):
        ds = era5.train()
        norm = Normalizer.fit(ds, num_samples=4)
        y = ds.target(0)
        normed = norm.normalize(y, names=ds.out_names)
        assert normed.shape == y.shape

    def test_invalid_stats_rejected(self):
        with pytest.raises(ValueError):
            Normalizer(np.zeros(3), np.zeros(3), ["a", "b", "c"])  # zero std


class TestBatchLoader:
    def test_batch_shapes(self, era5):
        loader = BatchLoader(era5.train(), batch_size=3, lead_steps_choices=(1, 2))
        batch = loader.next_batch()
        assert batch.x.shape == (3, len(REG), 8, 16)
        assert batch.y.shape[0] == 3
        assert batch.lead_time_hours.shape == (3,)
        assert set(batch.lead_time_hours) <= {6.0, 12.0}

    def test_deterministic_replay(self, era5):
        l1 = BatchLoader(era5.train(), 2, seed=5)
        l2 = BatchLoader(era5.train(), 2, seed=5)
        np.testing.assert_array_equal(l1.next_batch().x, l2.next_batch().x)

    def test_reset_restarts_sequence(self, era5):
        loader = BatchLoader(era5.train(), 2, seed=5)
        first = loader.next_batch().x
        loader.next_batch()
        loader.reset()
        np.testing.assert_array_equal(loader.next_batch().x, first)

    def test_shards_draw_disjoint_indices(self, era5):
        """Different shard ranks sample disjoint input-time streams
        (index = rank mod num_shards, except the end-of-range clamp)."""
        ds = era5.train()
        drawn: dict[int, set[int]] = {}
        for rank in (0, 1):
            loader = BatchLoader(ds, 16, shard=ShardSpec(rank, 2), seed=3)
            recorded: set[int] = set()
            original = ds.forecast_sample

            def recording(index, lead_steps, _orig=original, _rec=recorded):
                _rec.add(index)
                return _orig(index, lead_steps)

            ds.forecast_sample = recording
            try:
                for _ in range(3):
                    loader.next_batch()
            finally:
                ds.forecast_sample = original
            drawn[rank] = recorded
        max_index = ds.max_input_index(1)
        unclamped = {
            rank: {i for i in indices if i < max_index} for rank, indices in drawn.items()
        }
        assert unclamped[0] and unclamped[1]
        assert all(i % 2 == 0 for i in unclamped[0])
        assert all(i % 2 == 1 for i in unclamped[1])
        assert not (unclamped[0] & unclamped[1])

    def test_normalizer_applied(self, era5):
        ds = era5.train()
        norm = Normalizer.fit(ds, num_samples=4)
        loader = BatchLoader(ds, 2, normalizer=norm)
        batch = loader.next_batch()
        assert np.abs(batch.x).max() < 50

    def test_validation(self, era5):
        with pytest.raises(ValueError):
            BatchLoader(era5.train(), 0)
        with pytest.raises(ValueError):
            BatchLoader(era5.train(), 2, lead_steps_choices=())
        with pytest.raises(ValueError):
            ShardSpec(rank=2, num_shards=2)

    def test_round_robin_cycles_sources(self, archive):
        gen = round_robin_loaders(archive.datasets()[:3], batch_size=2, seed=1)
        batches = [next(gen) for _ in range(3)]
        assert all(b.x.shape[0] == 2 for b in batches)

"""Tests for the latent-dynamics climate generator."""

import numpy as np
import pytest

from repro.data import ClimateSystemModel, LatentSpec, LatLonGrid, default_registry

GRID = LatLonGrid(16, 32)
REG = default_registry(91).subset([
    "land_sea_mask", "orography", "soil_type",
    "2m_temperature", "10m_u_component_of_wind",
    "temperature_850", "geopotential_500", "specific_humidity_700",
])


@pytest.fixture(scope="module")
def system():
    return ClimateSystemModel(GRID, REG, seed=7)


class TestDeterminism:
    def test_same_seed_same_fields(self):
        a = ClimateSystemModel(GRID, REG, seed=1).snapshot(5)
        b = ClimateSystemModel(GRID, REG, seed=1).snapshot(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_weather(self):
        a = ClimateSystemModel(GRID, REG, seed=1).snapshot(5)
        b = ClimateSystemModel(GRID, REG, seed=2).snapshot(5)
        assert not np.allclose(a, b)

    def test_random_access_matches_sequential(self, system):
        fresh = ClimateSystemModel(GRID, REG, seed=7)
        far = fresh.latents_at(300)  # random access crossing a checkpoint
        seq = ClimateSystemModel(GRID, REG, seed=7)
        for t in range(0, 300):
            seq.latents_at(t)
        np.testing.assert_allclose(far, seq.latents_at(300), rtol=1e-12)


class TestStatistics:
    def test_snapshot_shape_and_dtype(self, system):
        snap = system.snapshot(0)
        assert snap.shape == (len(REG), 16, 32)
        assert snap.dtype == np.float32

    def test_fields_are_finite(self, system):
        assert np.isfinite(system.snapshot(10)).all()

    def test_static_fields_constant_in_time(self, system):
        f0 = system.field("orography", 0)
        f9 = system.field("orography", 9)
        np.testing.assert_array_equal(f0, f9)

    def test_dynamic_fields_change_in_time(self, system):
        assert not np.allclose(system.field("2m_temperature", 0),
                               system.field("2m_temperature", 8))

    def test_realistic_magnitudes(self, system):
        t2m = system.field("2m_temperature", 0)
        assert 180 < t2m.mean() < 330  # kelvin, roughly Earth-like

    def test_temperature_warmer_at_equator(self, system):
        """The latitudinal climatology must have the right sign."""
        t2m = np.mean([system.field("2m_temperature", t) for t in range(0, 64, 8)], axis=0)
        equator = t2m[7:9].mean()
        poles = (t2m[0].mean() + t2m[-1].mean()) / 2
        assert equator > poles

    def test_seasonal_cycle_present(self):
        """Opposite seasons differ in the hemispheric temperature contrast."""
        system = ClimateSystemModel(GRID, REG, seed=3)
        winter = system.climatology_field("2m_temperature", 365)   # ~day 91
        summer = system.climatology_field("2m_temperature", 1095)  # ~day 274
        north_contrast_w = winter[:8].mean() - winter[8:].mean()
        north_contrast_s = summer[:8].mean() - summer[8:].mean()
        assert abs(north_contrast_w - north_contrast_s) > 1.0  # kelvin

    def test_temporal_persistence(self, system):
        """Adjacent steps are much more similar than distant ones —
        the property that makes short-lead forecasting easier."""
        a = system.field("2m_temperature", 100)
        b = system.field("2m_temperature", 101)
        c = system.field("2m_temperature", 200)
        clim_a = system.climatology_field("2m_temperature", 100)
        clim_b = system.climatology_field("2m_temperature", 101)
        clim_c = system.climatology_field("2m_temperature", 200)
        near = np.corrcoef((a - clim_a).ravel(), (b - clim_b).ravel())[0, 1]
        far = np.corrcoef((a - clim_a).ravel(), (c - clim_c).ravel())[0, 1]
        # On this coarse test grid advection dephases high modes quickly,
        # so adjacent-step correlation lands near 0.8 (higher on 256 lon).
        assert near > 0.7
        assert abs(far) < near - 0.2

    def test_cross_variable_correlation_via_shared_latents(self, system):
        """Different dynamic variables are statistically related."""
        rng_corr = []
        for t in range(0, 160, 16):
            t850 = system.field("temperature_850", t) - system.climatology_field("temperature_850", t)
            t2m = system.field("2m_temperature", t) - system.climatology_field("2m_temperature", t)
            rng_corr.append(abs(np.corrcoef(t850.ravel(), t2m.ravel())[0, 1]))
        assert max(rng_corr) > 0.05  # not independent


class TestNumericalSurrogate:
    def test_short_lead_nearly_perfect(self, system):
        truth = system.field("2m_temperature", 101)
        forecast = system.numerical_forecast(100, 1, names=["2m_temperature"])[0]
        clim = system.climatology_field("2m_temperature", 101)
        err_forecast = np.abs(forecast - truth).mean()
        err_clim = np.abs(clim - truth).mean()
        assert err_forecast < err_clim

    def test_skill_decays_with_lead(self, system):
        errors = []
        for lead in (1, 20, 120):
            truth = system.field("2m_temperature", 100 + lead)
            forecast = system.numerical_forecast(100, lead, names=["2m_temperature"])[0]
            errors.append(float(np.abs(forecast - truth).mean()))
        assert errors[0] < errors[1] < errors[2] * 1.5

    def test_statics_pass_through(self, system):
        out = system.numerical_forecast(0, 4, names=["orography"])
        np.testing.assert_allclose(out[0], system.field("orography", 0))


class TestValidation:
    def test_negative_time_rejected(self, system):
        with pytest.raises(ValueError):
            system.latents_at(-1)

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError):
            LatentSpec(persistence=1.5)
        with pytest.raises(ValueError):
            LatentSpec(num_modes_lat=0)

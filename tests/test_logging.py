"""Structured logging: records carry rank/step/phase inside traced scopes."""

import io
import json
import logging

import pytest

from repro.obs.tracer import Tracer
from repro.utils.logging import (
    configure_logging,
    current_trace_context,
    get_logger,
    trace_log_context,
)


@pytest.fixture
def capture():
    """A configured JSON-lines handler writing into a StringIO."""
    stream = io.StringIO()
    handler = configure_logging(json_lines=True, level=logging.INFO, stream=stream)
    try:
        yield stream
    finally:
        get_logger().removeHandler(handler)


def _records(stream) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestTraceContext:
    def test_tracer_scope_publishes_step_and_phase(self):
        tracer = Tracer()
        with tracer.scope("step", 3):
            with tracer.scope("engine.forward"):
                context = current_trace_context()
        assert context == {"step": 3, "phase": "engine.forward"}
        assert current_trace_context() == {}

    def test_none_values_do_not_erase(self):
        with trace_log_context(rank=5):
            with trace_log_context(rank=None, step=1):
                assert current_trace_context() == {"rank": 5, "step": 1}

    def test_nested_scopes_refine(self):
        tracer = Tracer()
        with trace_log_context(rank=2):
            with tracer.scope("step", 0):
                with tracer.scope("engine.backward"):
                    context = current_trace_context()
        assert context == {"rank": 2, "step": 0, "phase": "engine.backward"}


class TestJsonLines:
    def test_record_inside_scope_carries_all_fields(self, capture):
        tracer = Tracer()
        with tracer.scope("step", 7):
            with tracer.scope("engine.grad_sync"):
                with trace_log_context(rank=11):
                    get_logger("test").info("syncing")
        (record,) = _records(capture)
        assert record["message"] == "syncing"
        assert record["rank"] == 11
        assert record["step"] == 7
        assert record["phase"] == "engine.grad_sync"
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.test"

    def test_record_outside_scope_has_null_fields(self, capture):
        get_logger("test").info("ambient")
        (record,) = _records(capture)
        assert (record["rank"], record["step"], record["phase"]) == (None, None, None)

    def test_extra_overrides_ambient_context(self, capture):
        with trace_log_context(rank=1):
            get_logger("test").info("explicit", extra={"rank": 9})
        (record,) = _records(capture)
        assert record["rank"] == 9

    def test_traced_step_emits_rank_scoped_records(self, capture):
        """End to end: health findings logged during check_run carry ranks."""
        from repro.obs import check_run, run_traced_step

        run = run_traced_step(num_gpus=4, gpus_per_node=4, tp_size=2,
                              fsdp_size=2, ddp_size=1, micro_batch=1,
                              compute_skew={2: 10_000_000.0})
        findings = check_run(run.tracer, plan=run.plan)
        assert findings
        records = [r for r in _records(capture) if "straggler" in r["message"]]
        assert records
        assert any(record["rank"] == 2 for record in records)


class TestTextFormatter:
    def test_text_formatter_appends_fields(self):
        stream = io.StringIO()
        handler = configure_logging(json_lines=False, level=logging.INFO,
                                    stream=stream)
        try:
            tracer = Tracer()
            with tracer.scope("step", 0), trace_log_context(rank=3):
                get_logger("test").info("hello")
        finally:
            get_logger().removeHandler(handler)
        line = stream.getvalue().strip()
        assert "hello" in line
        assert "rank=3" in line and "step=0" in line

"""Tests for MetaArray shape/dtype stand-ins."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.meta import (
    MetaArray,
    dtype_of,
    is_meta,
    matmul_flops,
    matmul_shape,
    meta_like,
    nbytes_of,
    shape_of,
)


class TestMetaArrayBasics:
    def test_size_and_nbytes(self):
        m = MetaArray((4, 8), np.float32)
        assert m.size == 32
        assert m.nbytes == 128
        assert m.ndim == 2

    def test_scalar_shape(self):
        m = MetaArray((), np.float64)
        assert m.size == 1
        assert m.nbytes == 8

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            MetaArray((3, -2))

    def test_astype(self):
        m = MetaArray((4,), np.float32).astype(np.float64)
        assert m.dtype == np.float64
        assert m.nbytes == 32

    def test_transpose_default_and_axes(self):
        m = MetaArray((2, 3, 4))
        assert m.T.shape == (4, 3, 2)
        assert m.transpose(0, 2, 1).shape == (2, 4, 3)
        assert m.transpose((1, 0, 2)).shape == (3, 2, 4)


class TestReshape:
    def test_explicit(self):
        assert MetaArray((4, 6)).reshape(8, 3).shape == (8, 3)

    def test_minus_one(self):
        assert MetaArray((4, 6)).reshape(-1, 3).shape == (8, 3)

    def test_tuple_argument(self):
        assert MetaArray((4, 6)).reshape((2, 12)).shape == (2, 12)

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            MetaArray((4, 6)).reshape(5, 5)

    def test_indivisible_minus_one_rejected(self):
        with pytest.raises(ValueError):
            MetaArray((4, 6)).reshape(-1, 5)


class TestDispatchHelpers:
    def test_is_meta(self):
        assert is_meta(MetaArray((2,)))
        assert not is_meta(np.zeros(2))

    def test_shape_nbytes_dtype_on_ndarray(self):
        x = np.zeros((3, 5), np.float64)
        assert shape_of(x) == (3, 5)
        assert nbytes_of(x) == 120
        assert dtype_of(x) == np.float64

    def test_meta_like(self):
        x = np.zeros((3, 5), np.float32)
        m = meta_like(x)
        assert m.shape == (3, 5) and m.dtype == np.float32


@given(
    m=st.integers(1, 16),
    k=st.integers(1, 16),
    n=st.integers(1, 16),
    batch=st.integers(0, 3),
)
def test_matmul_shape_matches_numpy(m, k, n, batch):
    a_shape = (batch, m, k) if batch else (m, k)
    b_shape = (k, n)
    expected = (np.zeros(a_shape) @ np.zeros(b_shape)).shape
    assert matmul_shape(a_shape, b_shape) == expected


def test_matmul_shape_mismatch():
    with pytest.raises(ValueError):
        matmul_shape((2, 3), (4, 5))


def test_matmul_flops_counts_macs_twice():
    assert matmul_flops((2, 3), (3, 5)) == 2 * 2 * 5 * 3

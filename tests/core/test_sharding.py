"""Tests for shard layouts and the matrix-chain identities (Eqns 1-3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import VirtualCluster
from repro.core import (
    chain_backward_reference,
    chain_forward_reference,
    chain_forward_sharded,
    chain_grad_input_sharded,
    column_shards,
    flat_pad_shard,
    flat_unshard,
    row_shards,
    ShardedParameter,
)
from repro.meta import MetaArray, is_meta
from repro.nn import functional as F


class TestShardLayouts:
    def test_column_shards_roundtrip(self):
        m = np.arange(24.0).reshape(4, 6)
        shards = column_shards(m, 3)
        assert all(s.shape == (4, 2) for s in shards)
        np.testing.assert_array_equal(np.concatenate(shards, axis=-1), m)

    def test_row_shards_roundtrip(self):
        m = np.arange(24.0).reshape(6, 4)
        shards = row_shards(m, 2)
        assert all(s.shape == (3, 4) for s in shards)
        np.testing.assert_array_equal(np.concatenate(shards, axis=-2), m)

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            column_shards(np.zeros((2, 5)), 2)
        with pytest.raises(ValueError):
            row_shards(np.zeros((5, 2)), 2)

    def test_meta_shards(self):
        shards = column_shards(MetaArray((4, 6)), 3)
        assert len(shards) == 3 and shards[0].shape == (4, 2)

    def test_flat_pad_shard_roundtrip_exact(self):
        m = np.arange(12.0).reshape(3, 4)
        shards = flat_pad_shard(m, 4)
        np.testing.assert_array_equal(flat_unshard(shards, (3, 4)), m)

    def test_flat_pad_shard_roundtrip_with_padding(self):
        m = np.arange(10.0)
        shards = flat_pad_shard(m, 4)  # 10 -> pad to 12
        assert all(s.shape == (3,) for s in shards)
        np.testing.assert_array_equal(flat_unshard(shards, (10,)), m)

    def test_flat_pad_shard_meta(self):
        shards = flat_pad_shard(MetaArray((3, 5)), 4)
        assert shards[0].shape == (4,)
        assert is_meta(flat_unshard(shards, (3, 5)))

    @given(rows=st.integers(1, 7), cols=st.integers(1, 7), num=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_property_flat_roundtrip(self, rows, cols, num):
        m = np.random.default_rng(0).normal(size=(rows, cols))
        np.testing.assert_array_equal(flat_unshard(flat_pad_shard(m, num), (rows, cols)), m)


class TestShardedParameter:
    def test_full_reassembles(self):
        m = np.arange(20.0).reshape(4, 5)
        param = ShardedParameter(m, 3, "w")
        np.testing.assert_array_equal(param.full(), m)

    def test_grad_accumulation(self):
        param = ShardedParameter(np.zeros((2, 2)), 2, "w")
        ones = flat_pad_shard(np.ones((2, 2)), 2)
        param.set_grad_shards(ones)
        param.set_grad_shards(ones)
        np.testing.assert_array_equal(param.full_grad(), 2 * np.ones((2, 2)))
        param.zero_grad()
        assert param.full_grad() is None

    def test_device_allocation_and_free(self):
        cluster = VirtualCluster(num_gpus=2)
        devices = [cluster.device(0), cluster.device(1)]
        param = ShardedParameter(np.zeros((4, 4), np.float32), 2, "w", devices=devices)
        assert cluster.device(0).memory.current_bytes == 32  # 8 floats
        param.free()
        assert cluster.device(0).memory.current_bytes == 0

    def test_wrong_device_count_rejected(self):
        cluster = VirtualCluster(num_gpus=2)
        with pytest.raises(ValueError):
            ShardedParameter(np.zeros(4), 2, "w", devices=[cluster.device(0)])

    def test_wrong_grad_shard_count_rejected(self):
        param = ShardedParameter(np.zeros(4), 2, "w")
        with pytest.raises(ValueError):
            param.set_grad_shards([np.zeros(2)])


class TestMatmulChainIdentities:
    """Direct property tests of paper Eqns (1)-(3)."""

    @given(
        m=st.integers(1, 5),
        inner=st.integers(1, 4),
        hidden_mult=st.integers(1, 4),
        out=st.integers(1, 5),
        shards=st.sampled_from([1, 2, 4]),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_eqn2_sharded_forward_equals_serial(self, m, inner, hidden_mult, out, shards, seed):
        rng = np.random.default_rng(seed)
        hidden = hidden_mult * shards
        x = rng.normal(size=(m, inner))
        a = rng.normal(size=(inner, hidden))
        b = rng.normal(size=(hidden, out))
        cluster = VirtualCluster(num_gpus=shards, gpus_per_node=8)
        y_sharded, _ = chain_forward_sharded(
            x, column_shards(a, shards), row_shards(b, shards), cluster.world
        )
        np.testing.assert_allclose(y_sharded, chain_forward_reference(x, a, b), rtol=1e-10)

    @given(shards=st.sampled_from([1, 2, 3]), seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_eqn3_sharded_input_grad_equals_serial(self, shards, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(4, 5))
        a = rng.normal(size=(5, 6 * shards))
        b = rng.normal(size=(6 * shards, 3))
        grad_y = rng.normal(size=(4, 3))
        cluster = VirtualCluster(num_gpus=shards, gpus_per_node=8)
        grad_x = chain_grad_input_sharded(
            grad_y, column_shards(a, shards), row_shards(b, shards), cluster.world
        )
        expected, _, _ = chain_backward_reference(x, a, b, grad_y)
        np.testing.assert_allclose(grad_x, expected, rtol=1e-10)

    def test_elementwise_nonlinearity_commutes_with_column_split(self):
        """GeLU(x A) column blocks equal GeLU of the blocks — the property
        that lets Hybrid-STOP cover the feed-forward sublayer."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(4, 5))
        a = rng.normal(size=(5, 8))
        full = F.gelu_forward(x @ a)[0]
        blocks = [F.gelu_forward(x @ a_k)[0] for a_k in column_shards(a, 4)]
        np.testing.assert_allclose(np.concatenate(blocks, axis=-1), full, rtol=1e-12)

    def test_sharded_forward_with_gelu_equals_serial(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(3, 5))
        a = rng.normal(size=(5, 8))
        b = rng.normal(size=(8, 2))
        cluster = VirtualCluster(num_gpus=4, gpus_per_node=8)
        phi = lambda h: F.gelu_forward(h)[0]
        y, hiddens = chain_forward_sharded(
            x, column_shards(a, 4), row_shards(b, 4), cluster.world, phi=phi
        )
        np.testing.assert_allclose(y, chain_forward_reference(x, a, b, phi=phi), rtol=1e-10)
        assert len(hiddens) == 4 and hiddens[0].shape == (3, 2)

    def test_shard_count_mismatch_rejected(self):
        cluster = VirtualCluster(num_gpus=2)
        with pytest.raises(ValueError):
            chain_forward_sharded(np.zeros((2, 2)), [np.zeros((2, 2))], [np.zeros((2, 2))], cluster.world)

"""Equivalence tests: HybridSTOPMLP vs the serial MLP."""

import numpy as np
import pytest

from repro.cluster import VirtualCluster
from repro.core import HybridSTOPMLP
from repro.nn.mlp import MLP
from repro.parallel import HybridParallelPlan, PeakFractionCompute


def make_setup(tp=2, fsdp=2, dim=6, hidden=8, batch=3, seq=4, seed=0, prefetch=False,
               compute_model=False):
    rng = np.random.default_rng(seed)
    serial = MLP(dim, hidden, rng=seed, dtype=np.float64)
    cluster = VirtualCluster(num_gpus=tp * fsdp, gpus_per_node=8)
    plan = HybridParallelPlan(cluster, tp_size=tp, fsdp_size=fsdp)
    cm = PeakFractionCompute(cluster) if compute_model else None
    hybrid = HybridSTOPMLP(serial, plan, compute_model=cm)
    xs = [rng.normal(size=(batch, seq, dim)) for _ in range(fsdp)]
    grad_ys = [rng.normal(size=(batch, seq, dim)) for _ in range(fsdp)]
    return serial, hybrid, xs, grad_ys, cluster


def serial_reference(serial, xs, grad_ys):
    """Run the serial MLP over the concatenated global batch."""
    x_all = np.concatenate(xs, axis=0)
    g_all = np.concatenate(grad_ys, axis=0)
    y_all = serial(x_all)
    serial.zero_grad()
    gx_all = serial.backward(g_all)
    ys = np.split(y_all, len(xs), axis=0)
    gxs = np.split(gx_all, len(xs), axis=0)
    grads = {name: p.grad for name, p in serial.named_parameters()}
    return ys, gxs, grads


@pytest.mark.parametrize("tp,fsdp", [(1, 1), (2, 1), (1, 2), (2, 2), (4, 2), (2, 4)])
def test_forward_matches_serial(tp, fsdp):
    serial, hybrid, xs, _, _ = make_setup(tp=tp, fsdp=fsdp, hidden=8 * tp)
    ys = hybrid.forward(xs)
    for f, (x, y) in enumerate(zip(xs, ys)):
        expected = serial(x)
        serial.clear_cache()
        np.testing.assert_allclose(y, expected, rtol=1e-10, err_msg=f"fsdp rank {f}")


@pytest.mark.parametrize("tp,fsdp", [(1, 1), (2, 2), (4, 2)])
def test_backward_matches_serial(tp, fsdp):
    serial, hybrid, xs, grad_ys, _ = make_setup(tp=tp, fsdp=fsdp, hidden=8 * tp, seed=1)
    ys_ref, gxs_ref, grads_ref = serial_reference(serial, xs, grad_ys)

    ys = hybrid.forward(xs)
    gxs = hybrid.backward(grad_ys)
    for f in range(fsdp):
        np.testing.assert_allclose(ys[f], ys_ref[f], rtol=1e-10)
        np.testing.assert_allclose(gxs[f], gxs_ref[f], rtol=1e-9)

    gathered = hybrid.gathered_grads()
    for name in ("fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"):
        np.testing.assert_allclose(gathered[name], grads_ref[name], rtol=1e-9, err_msg=name)


def test_gathered_state_matches_serial_parameters():
    serial, hybrid, _, _, _ = make_setup()
    state = hybrid.gathered_state()
    for name, param in serial.named_parameters():
        np.testing.assert_array_equal(state[name], param.data, err_msg=name)


def test_parameters_stay_sharded_in_memory():
    """No device ever holds more than its shard + one gathered layer shard."""
    _, hybrid, xs, grad_ys, cluster = make_setup(tp=2, fsdp=2, dim=8, hidden=16)
    hybrid.forward(xs)
    total_param_bytes = sum(p.shard_nbytes * p.num_shards for p in hybrid.sharded_parameters())
    for rank in range(4):
        persistent = cluster.device(rank).memory.category_current("params")
        assert persistent < total_param_bytes  # strictly sharded
        # Transient gathered buffers were all released after forward.
        assert cluster.device(rank).memory.category_current("gathered") == 0


def test_peak_memory_below_full_model():
    """The Hybrid-STOP property: peak memory per GPU stays far below the
    full parameter set (FSDP without layer wrapping would gather it all)."""
    serial, hybrid, xs, grad_ys, cluster = make_setup(tp=2, fsdp=2, dim=16, hidden=32, seed=2)
    hybrid.forward(xs)
    hybrid.backward(grad_ys)
    full_bytes = sum(p.data.nbytes for p in serial.parameters())
    for rank in range(4):
        peak = cluster.device(rank).memory.peak_bytes
        assert peak < full_bytes


def test_backward_without_forward_raises():
    _, hybrid, _, grad_ys, _ = make_setup()
    with pytest.raises(RuntimeError):
        hybrid.backward(grad_ys)


def test_wrong_microbatch_count_rejected():
    _, hybrid, xs, _, _ = make_setup(fsdp=2)
    with pytest.raises(ValueError):
        hybrid.forward(xs[:1])


def test_indivisible_hidden_rejected():
    serial = MLP(4, 6, rng=0)
    cluster = VirtualCluster(num_gpus=4)
    plan = HybridParallelPlan(cluster, tp_size=4, fsdp_size=1)
    with pytest.raises(ValueError):
        HybridSTOPMLP(serial, plan)


def test_grad_accumulation_across_microsteps():
    serial, hybrid, xs, grad_ys, _ = make_setup(seed=3)
    hybrid.forward(xs)
    hybrid.backward(grad_ys)
    once = {k: v.copy() for k, v in hybrid.gathered_grads().items()}
    hybrid.forward(xs)
    hybrid.backward(grad_ys)
    twice = hybrid.gathered_grads()
    for name in once:
        np.testing.assert_allclose(twice[name], 2 * once[name], rtol=1e-12)


def test_compute_time_recorded_per_rank():
    _, hybrid, xs, grad_ys, cluster = make_setup(compute_model=True)
    hybrid.forward(xs)
    hybrid.backward(grad_ys)
    for rank in range(cluster.world_size):
        led = cluster.timeline.ledger(rank)
        assert led.compute_s > 0
        assert led.flops > 0


def test_prefetch_hides_gather_cost():
    """With prefetch, gathers overlap compute; exposed comm drops."""
    _, h_plain, xs, grad_ys, c_plain = make_setup(compute_model=True, prefetch=False,
                                                  dim=32, hidden=64, batch=8, seq=16)
    h_plain.prefetch = False
    h_plain.forward(xs)
    exposed_plain = sum(c_plain.timeline.ledger(r).exposed_comm_s for r in range(4))

    _, h_pre, xs2, _, c_pre = make_setup(compute_model=True, prefetch=True,
                                         dim=32, hidden=64, batch=8, seq=16)
    h_pre.prefetch = True
    h_pre.forward(xs2)
    exposed_pre = sum(c_pre.timeline.ledger(r).exposed_comm_s for r in range(4))
    assert exposed_pre < exposed_plain

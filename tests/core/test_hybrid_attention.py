"""Equivalence tests: HybridSTOPAttention vs serial MultiHeadAttention."""

import numpy as np
import pytest

from repro.cluster import VirtualCluster
from repro.core import HybridSTOPAttention
from repro.nn.attention import MultiHeadAttention
from repro.parallel import HybridParallelPlan


def make_setup(tp=2, fsdp=2, dim=8, heads=4, batch=2, seq=3, seed=0, qk_layernorm=False):
    rng = np.random.default_rng(seed)
    serial = MultiHeadAttention(dim, heads, qk_layernorm=qk_layernorm, rng=seed, dtype=np.float64)
    if qk_layernorm:
        # Non-trivial affine so LN gradients are exercised.
        serial.ln_q.gamma.data = rng.normal(1.0, 0.3, size=serial.ln_q.gamma.shape)
        serial.ln_k.beta.data = rng.normal(0.0, 0.3, size=serial.ln_k.beta.shape)
    cluster = VirtualCluster(num_gpus=tp * fsdp, gpus_per_node=8)
    plan = HybridParallelPlan(cluster, tp_size=tp, fsdp_size=fsdp)
    hybrid = HybridSTOPAttention(serial, plan)
    xs = [rng.normal(size=(batch, seq, dim)) for _ in range(fsdp)]
    grad_ys = [rng.normal(size=(batch, seq, dim)) for _ in range(fsdp)]
    return serial, hybrid, xs, grad_ys, cluster


def serial_reference(serial, xs, grad_ys):
    x_all = np.concatenate(xs, axis=0)
    g_all = np.concatenate(grad_ys, axis=0)
    y_all = serial(x_all)
    serial.zero_grad()
    gx_all = serial.backward(g_all)
    return (
        np.split(y_all, len(xs), axis=0),
        np.split(gx_all, len(xs), axis=0),
        {name: p.grad for name, p in serial.named_parameters()},
    )


NAME_MAP = {
    "wq.weight": "wq.weight", "wq.bias": "wq.bias",
    "wk.weight": "wk.weight", "wk.bias": "wk.bias",
    "wv.weight": "wv.weight", "wv.bias": "wv.bias",
    "wo.weight": "wo.weight", "wo.bias": "wo.bias",
    "ln_q.gamma": "ln_q.gamma", "ln_q.beta": "ln_q.beta",
    "ln_k.gamma": "ln_k.gamma", "ln_k.beta": "ln_k.beta",
}


class TestHeadParallelRegime:
    """Tensor-parallel degree <= head count (whole heads per rank)."""

    @pytest.mark.parametrize("tp,fsdp", [(1, 1), (2, 1), (4, 1), (2, 2), (4, 2)])
    def test_forward_matches_serial(self, tp, fsdp):
        serial, hybrid, xs, _, _ = make_setup(tp=tp, fsdp=fsdp)
        ys = hybrid.forward(xs)
        for x, y in zip(xs, ys):
            expected = serial(x)
            serial.clear_cache()
            np.testing.assert_allclose(y, expected, rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("tp,fsdp", [(1, 1), (2, 2), (4, 2)])
    def test_backward_matches_serial(self, tp, fsdp):
        serial, hybrid, xs, grad_ys, _ = make_setup(tp=tp, fsdp=fsdp, seed=1)
        ys_ref, gxs_ref, grads_ref = serial_reference(serial, xs, grad_ys)
        ys = hybrid.forward(xs)
        gxs = hybrid.backward(grad_ys)
        for f in range(fsdp):
            np.testing.assert_allclose(ys[f], ys_ref[f], rtol=1e-9, atol=1e-12)
            np.testing.assert_allclose(gxs[f], gxs_ref[f], rtol=1e-8, atol=1e-11)
        gathered = hybrid.gathered_grads()
        for name, ref in grads_ref.items():
            np.testing.assert_allclose(gathered[name], ref, rtol=1e-8, atol=1e-11, err_msg=name)

    @pytest.mark.parametrize("tp,fsdp", [(2, 1), (2, 2)])
    def test_qk_layernorm_equivalence(self, tp, fsdp):
        serial, hybrid, xs, grad_ys, _ = make_setup(
            tp=tp, fsdp=fsdp, seed=2, qk_layernorm=True
        )
        ys_ref, gxs_ref, grads_ref = serial_reference(serial, xs, grad_ys)
        ys = hybrid.forward(xs)
        gxs = hybrid.backward(grad_ys)
        for f in range(fsdp):
            np.testing.assert_allclose(ys[f], ys_ref[f], rtol=1e-8, atol=1e-11)
            np.testing.assert_allclose(gxs[f], gxs_ref[f], rtol=1e-7, atol=1e-10)
        gathered = hybrid.gathered_grads()
        for name, ref in grads_ref.items():
            np.testing.assert_allclose(gathered[name], ref, rtol=1e-7, atol=1e-10, err_msg=name)

    def test_gathered_state_matches_serial(self):
        serial, hybrid, _, _, _ = make_setup(qk_layernorm=True, tp=2, fsdp=2)
        state = hybrid.gathered_state()
        for name, param in serial.named_parameters():
            np.testing.assert_array_equal(state[name], param.data, err_msg=name)


class TestSubHeadRegime:
    """Tensor-parallel degree > head count — the Hybrid-STOP capability
    plain tensor parallelism lacks (paper Fig 5 rationale)."""

    @pytest.mark.parametrize("tp,heads", [(4, 2), (8, 2), (8, 4)])
    def test_forward_matches_serial(self, tp, heads):
        serial, hybrid, xs, _, _ = make_setup(tp=tp, fsdp=1, dim=16, heads=heads, seed=3)
        ys = hybrid.forward(xs)
        expected = serial(xs[0])
        np.testing.assert_allclose(ys[0], expected, rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("tp,fsdp,heads", [(4, 1, 2), (4, 2, 2)])
    def test_backward_matches_serial(self, tp, fsdp, heads):
        serial, hybrid, xs, grad_ys, _ = make_setup(
            tp=tp, fsdp=fsdp, dim=16, heads=heads, seed=4
        )
        ys_ref, gxs_ref, grads_ref = serial_reference(serial, xs, grad_ys)
        ys = hybrid.forward(xs)
        gxs = hybrid.backward(grad_ys)
        for f in range(fsdp):
            np.testing.assert_allclose(ys[f], ys_ref[f], rtol=1e-9, atol=1e-12)
            np.testing.assert_allclose(gxs[f], gxs_ref[f], rtol=1e-8, atol=1e-11)
        gathered = hybrid.gathered_grads()
        for name, ref in grads_ref.items():
            np.testing.assert_allclose(gathered[name], ref, rtol=1e-8, atol=1e-11, err_msg=name)

    def test_subhead_with_qk_layernorm_rejected(self):
        serial = MultiHeadAttention(16, 2, qk_layernorm=True, rng=0, dtype=np.float64)
        cluster = VirtualCluster(num_gpus=4)
        plan = HybridParallelPlan(cluster, tp_size=4, fsdp_size=1)
        with pytest.raises(NotImplementedError):
            HybridSTOPAttention(serial, plan)

    def test_indivisible_subhead_rejected(self):
        serial = MultiHeadAttention(6, 2, rng=0)  # head_dim 3, s would be 2
        cluster = VirtualCluster(num_gpus=4)
        plan = HybridParallelPlan(cluster, tp_size=4, fsdp_size=1)
        with pytest.raises(ValueError):
            HybridSTOPAttention(serial, plan)


class TestValidation:
    def test_heads_not_divisible_by_tp_rejected(self):
        serial = MultiHeadAttention(12, 3, rng=0)
        cluster = VirtualCluster(num_gpus=2)
        plan = HybridParallelPlan(cluster, tp_size=2, fsdp_size=1)
        with pytest.raises(ValueError):
            HybridSTOPAttention(serial, plan)

    def test_backward_without_forward(self):
        _, hybrid, _, grad_ys, _ = make_setup()
        with pytest.raises(RuntimeError):
            hybrid.backward(grad_ys)

    def test_wrong_microbatch_count(self):
        _, hybrid, xs, _, _ = make_setup(fsdp=2)
        with pytest.raises(ValueError):
            hybrid.forward(xs[:1])

    def test_transient_gathers_released(self):
        _, hybrid, xs, grad_ys, cluster = make_setup(tp=2, fsdp=2)
        hybrid.forward(xs)
        hybrid.backward(grad_ys)
        for rank in range(4):
            assert cluster.device(rank).memory.category_current("gathered") == 0

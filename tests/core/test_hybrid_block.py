"""Equivalence tests: HybridSTOPBlock / HybridSTOPTrunk vs serial."""

import numpy as np
import pytest

from repro.cluster import VirtualCluster
from repro.core import HybridSTOPBlock, HybridSTOPTrunk
from repro.memory import OutOfDeviceMemoryError
from repro.nn.transformer import TransformerBlock, TransformerStack
from repro.parallel import HybridParallelPlan


def make_block_setup(tp=2, fsdp=2, dim=8, heads=2, depth=None, batch=2, seq=3, seed=0,
                     qk_layernorm=True, **trunk_kwargs):
    rng = np.random.default_rng(seed)
    cluster = VirtualCluster(num_gpus=tp * fsdp, gpus_per_node=8)
    plan = HybridParallelPlan(cluster, tp_size=tp, fsdp_size=fsdp)
    if depth is None:
        serial = TransformerBlock(dim, heads, qk_layernorm=qk_layernorm, rng=seed, dtype=np.float64)
        hybrid = HybridSTOPBlock(serial, plan)
    else:
        serial = TransformerStack(dim, depth, heads, qk_layernorm=qk_layernorm, rng=seed,
                                  dtype=np.float64)
        hybrid = HybridSTOPTrunk(serial, plan, **trunk_kwargs)
    xs = [rng.normal(size=(batch, seq, dim)) for _ in range(fsdp)]
    grad_ys = [rng.normal(size=(batch, seq, dim)) for _ in range(fsdp)]
    return serial, hybrid, xs, grad_ys, cluster


def serial_reference(serial, xs, grad_ys):
    x_all = np.concatenate(xs, axis=0)
    g_all = np.concatenate(grad_ys, axis=0)
    y_all = serial(x_all)
    serial.zero_grad()
    gx_all = serial.backward(g_all)
    return (
        np.split(y_all, len(xs), axis=0),
        np.split(gx_all, len(xs), axis=0),
        {name: p.grad for name, p in serial.named_parameters()},
    )


class TestBlock:
    @pytest.mark.parametrize("tp,fsdp", [(1, 1), (2, 2)])
    def test_forward_backward_match_serial(self, tp, fsdp):
        serial, hybrid, xs, grad_ys, _ = make_block_setup(tp=tp, fsdp=fsdp)
        ys_ref, gxs_ref, grads_ref = serial_reference(serial, xs, grad_ys)
        ys = hybrid.forward(xs)
        gxs = hybrid.backward(grad_ys)
        for f in range(fsdp):
            np.testing.assert_allclose(ys[f], ys_ref[f], rtol=1e-8, atol=1e-11)
            np.testing.assert_allclose(gxs[f], gxs_ref[f], rtol=1e-7, atol=1e-10)
        gathered = hybrid.gathered_grads()
        for name, ref in grads_ref.items():
            np.testing.assert_allclose(gathered[name], ref, rtol=1e-7, atol=1e-10, err_msg=name)

    def test_layernorm_grads_not_scaled_by_tp(self):
        """LN params are replicated per tensor-parallel group; their grads
        must match serial exactly (no K-fold double counting)."""
        serial, hybrid, xs, grad_ys, _ = make_block_setup(tp=4, fsdp=1, dim=8, heads=4, seed=5)
        _, _, grads_ref = serial_reference(serial, xs, grad_ys)
        hybrid.forward(xs)
        hybrid.backward(grad_ys)
        gathered = hybrid.gathered_grads()
        np.testing.assert_allclose(gathered["ln1.gamma"], grads_ref["ln1.gamma"], rtol=1e-8)
        np.testing.assert_allclose(gathered["ln2.beta"], grads_ref["ln2.beta"], rtol=1e-8)


class TestTrunk:
    def test_depth2_equivalence(self):
        serial, hybrid, xs, grad_ys, _ = make_block_setup(tp=2, fsdp=2, depth=2, seed=7)
        ys_ref, gxs_ref, grads_ref = serial_reference(serial, xs, grad_ys)
        ys = hybrid.forward(xs)
        gxs = hybrid.backward(grad_ys)
        for f in range(2):
            np.testing.assert_allclose(ys[f], ys_ref[f], rtol=1e-7, atol=1e-10)
            np.testing.assert_allclose(gxs[f], gxs_ref[f], rtol=1e-6, atol=1e-9)
        gathered = hybrid.gathered_grads()
        for name, ref in grads_ref.items():
            np.testing.assert_allclose(gathered[name], ref, rtol=1e-6, atol=1e-9, err_msg=name)

    def test_layer_wrapping_off_registers_all_layers(self):
        _, hybrid, xs, grad_ys, cluster = make_block_setup(
            tp=2, fsdp=2, depth=3, seed=8, layer_wrapping=False
        )
        hybrid.forward(xs)
        # While forward caches are alive the wholesale allocation persists.
        assert cluster.device(0).memory.category_current("gathered.all_layers") > 0
        hybrid.backward(grad_ys)
        assert cluster.device(0).memory.category_current("gathered.all_layers") == 0

    def test_layer_wrapping_on_keeps_peak_low(self):
        """Peak gathered bytes with wrapping ~ one layer; without ~ all layers."""
        _, wrapped, xs, grad_ys, cluster_w = make_block_setup(
            tp=2, fsdp=2, depth=4, seed=9, layer_wrapping=True
        )
        wrapped.forward(xs)
        wrapped.backward(grad_ys)
        peak_wrapped = max(
            cluster_w.device(r).memory.category_peak("gathered") for r in range(4)
        )

        _, unwrapped, xs2, grad_ys2, cluster_u = make_block_setup(
            tp=2, fsdp=2, depth=4, seed=9, layer_wrapping=False
        )
        unwrapped.forward(xs2)
        peak_unwrapped = max(
            cluster_u.device(r).memory.category_peak("gathered") for r in range(4)
        )
        assert peak_unwrapped > 2 * peak_wrapped

    def test_no_layer_wrapping_can_oom(self):
        """The Table I first column: without layer wrapping the wholesale
        gather exceeds device memory while the wrapped run fits."""
        cluster = VirtualCluster(num_gpus=4, gpus_per_node=8, gpu_memory_bytes=400_000)
        plan = HybridParallelPlan(cluster, tp_size=2, fsdp_size=2)
        serial = TransformerStack(32, 6, 2, rng=0, dtype=np.float64)
        hybrid = HybridSTOPTrunk(serial, plan, layer_wrapping=False)
        xs = [np.zeros((1, 4, 32)) for _ in range(2)]
        with pytest.raises(OutOfDeviceMemoryError):
            hybrid.forward(xs)

        cluster2 = VirtualCluster(num_gpus=4, gpus_per_node=8, gpu_memory_bytes=400_000)
        plan2 = HybridParallelPlan(cluster2, tp_size=2, fsdp_size=2)
        serial2 = TransformerStack(32, 6, 2, rng=0, dtype=np.float64)
        wrapped = HybridSTOPTrunk(serial2, plan2, layer_wrapping=True)
        wrapped.forward([np.zeros((1, 4, 32)) for _ in range(2)])  # fits

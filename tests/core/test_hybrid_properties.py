"""Property-based equivalence tests for the Hybrid-STOP sublayers.

Hypothesis draws random dimensions, group factorizations, and batch
shapes; for every draw the sharded forward/backward must match serial
execution — the paper's correctness claim, as an invariant rather than
a handful of examples.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import VirtualCluster
from repro.core import HybridSTOPAttention, HybridSTOPMLP
from repro.nn.attention import MultiHeadAttention
from repro.nn.mlp import MLP
from repro.parallel import HybridParallelPlan


@st.composite
def mlp_cases(draw):
    tp = draw(st.sampled_from([1, 2, 4]))
    fsdp = draw(st.sampled_from([1, 2, 3]))
    dim = draw(st.integers(2, 6))
    hidden_mult = draw(st.integers(1, 3))
    batch = draw(st.integers(1, 3))
    seq = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 2**16))
    return tp, fsdp, dim, hidden_mult * tp * 2, batch, seq, seed


@st.composite
def attention_cases(draw):
    heads = draw(st.sampled_from([2, 4]))
    head_dim = draw(st.sampled_from([2, 4]))
    # tp covers under-, exactly-, and over-head factorizations.
    tp = draw(st.sampled_from([1, 2, heads, 2 * heads]))
    if tp > heads and head_dim % (tp // heads):
        tp = heads
    fsdp = draw(st.sampled_from([1, 2]))
    batch = draw(st.integers(1, 2))
    seq = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 2**16))
    return tp, fsdp, heads, head_dim, batch, seq, seed


@settings(max_examples=20, deadline=None)
@given(case=mlp_cases())
def test_property_hybrid_mlp_equals_serial(case):
    tp, fsdp, dim, hidden, batch, seq, seed = case
    rng = np.random.default_rng(seed)
    serial = MLP(dim, hidden, rng=seed, dtype=np.float64)
    cluster = VirtualCluster(num_gpus=tp * fsdp, gpus_per_node=tp * fsdp)
    plan = HybridParallelPlan(cluster, tp_size=tp, fsdp_size=fsdp)
    hybrid = HybridSTOPMLP(serial, plan)

    xs = [rng.normal(size=(batch, seq, dim)) for _ in range(fsdp)]
    grad_ys = [rng.normal(size=(batch, seq, dim)) for _ in range(fsdp)]

    ys = hybrid.forward(xs)
    gxs = hybrid.backward(grad_ys)

    serial_check = MLP(dim, hidden, rng=seed, dtype=np.float64)
    x_all = np.concatenate(xs, axis=0)
    y_ref = serial_check(x_all)
    serial_check.zero_grad()
    gx_ref = serial_check.backward(np.concatenate(grad_ys, axis=0))

    np.testing.assert_allclose(np.concatenate(ys, axis=0), y_ref, rtol=1e-9, atol=1e-11)
    np.testing.assert_allclose(np.concatenate(gxs, axis=0), gx_ref, rtol=1e-8, atol=1e-10)
    gathered = hybrid.gathered_grads()
    for name, param in serial_check.named_parameters():
        np.testing.assert_allclose(
            gathered[name], param.grad, rtol=1e-8, atol=1e-10, err_msg=name
        )


@settings(max_examples=16, deadline=None)
@given(case=attention_cases())
def test_property_hybrid_attention_equals_serial(case):
    tp, fsdp, heads, head_dim, batch, seq, seed = case
    dim = heads * head_dim
    rng = np.random.default_rng(seed)
    serial = MultiHeadAttention(dim, heads, rng=seed, dtype=np.float64)
    cluster = VirtualCluster(num_gpus=tp * fsdp, gpus_per_node=tp * fsdp)
    plan = HybridParallelPlan(cluster, tp_size=tp, fsdp_size=fsdp)
    hybrid = HybridSTOPAttention(serial, plan)

    xs = [rng.normal(size=(batch, seq, dim)) for _ in range(fsdp)]
    grad_ys = [rng.normal(size=(batch, seq, dim)) for _ in range(fsdp)]

    ys = hybrid.forward(xs)
    gxs = hybrid.backward(grad_ys)

    serial_check = MultiHeadAttention(dim, heads, rng=seed, dtype=np.float64)
    x_all = np.concatenate(xs, axis=0)
    y_ref = serial_check(x_all)
    serial_check.zero_grad()
    gx_ref = serial_check.backward(np.concatenate(grad_ys, axis=0))

    np.testing.assert_allclose(np.concatenate(ys, axis=0), y_ref, rtol=1e-8, atol=1e-10)
    np.testing.assert_allclose(np.concatenate(gxs, axis=0), gx_ref, rtol=1e-7, atol=1e-9)
    gathered = hybrid.gathered_grads()
    for name, param in serial_check.named_parameters():
        np.testing.assert_allclose(
            gathered[name], param.grad, rtol=1e-7, atol=1e-9, err_msg=name
        )


@settings(max_examples=15, deadline=None)
@given(
    tp=st.sampled_from([1, 2, 4]),
    fsdp=st.sampled_from([1, 2]),
    seed=st.integers(0, 2**16),
)
def test_property_transient_memory_always_released(tp, fsdp, seed):
    """After any forward+backward, no gathered bytes remain on any device."""
    rng = np.random.default_rng(seed)
    serial = MLP(4, 4 * tp, rng=seed, dtype=np.float64)
    cluster = VirtualCluster(num_gpus=tp * fsdp, gpus_per_node=tp * fsdp)
    plan = HybridParallelPlan(cluster, tp_size=tp, fsdp_size=fsdp)
    hybrid = HybridSTOPMLP(serial, plan)
    xs = [rng.normal(size=(1, 2, 4)) for _ in range(fsdp)]
    hybrid.forward(xs)
    hybrid.backward([rng.normal(size=(1, 2, 4)) for _ in range(fsdp)])
    for rank in range(cluster.world_size):
        assert cluster.device(rank).memory.category_current("gathered") == 0

"""FaultInjector: exact-event firing, fire-once semantics, degradations."""

import numpy as np
import pytest

from repro.cluster.cluster import VirtualCluster
from repro.cluster.timeline import NULL_INJECTOR
from repro.faults import (
    CollectiveTimeoutError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    GpuCrashError,
    NodeLossError,
    seeded_skew_profile,
)


def _injected_cluster(plan, num_gpus=8, gpus_per_node=8):
    cluster = VirtualCluster(num_gpus=num_gpus, gpus_per_node=gpus_per_node)
    injector = FaultInjector(plan, gpus_per_node=gpus_per_node)
    cluster.attach_injector(injector)
    return cluster, injector


class TestAttachment:
    def test_default_injector_is_null(self):
        cluster = VirtualCluster(num_gpus=4, gpus_per_node=4)
        assert cluster.injector is NULL_INJECTOR
        assert cluster.timeline.injector is NULL_INJECTOR

    def test_attach_and_detach(self):
        cluster, injector = _injected_cluster(FaultPlan())
        assert cluster.timeline.injector is injector
        cluster.attach_injector(None)
        assert cluster.timeline.injector is NULL_INJECTOR


class TestCrashFiring:
    def test_timeout_fires_only_on_named_collective(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="collective_timeout", step=0, rank=2,
                      op="all_gather"),
        ))
        cluster, injector = _injected_cluster(plan)
        injector.begin_step(0)
        # compute events never trigger a collective timeout
        cluster.timeline.record_compute(2, 1.0, op="gemm")
        # a different collective passes
        cluster.timeline.record_comm((0, 1, 2, 3), 0.1, 64, op="all_reduce")
        with pytest.raises(CollectiveTimeoutError) as err:
            cluster.timeline.record_comm((0, 1, 2, 3), 0.1, 64, op="all_gather")
        assert err.value.fault is plan.faults[0]

    def test_fires_only_when_target_rank_participates(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="gpu_crash", step=0, rank=6),
        ))
        cluster, injector = _injected_cluster(plan)
        injector.begin_step(0)
        cluster.timeline.record_comm((0, 1), 0.1, 64, op="all_gather")
        cluster.timeline.record_compute(5, 1.0, op="gemm")
        with pytest.raises(GpuCrashError):
            cluster.timeline.record_compute(6, 1.0, op="gemm")

    def test_fires_only_at_armed_step(self):
        plan = FaultPlan(faults=(FaultSpec(kind="gpu_crash", step=3, rank=0),))
        cluster, injector = _injected_cluster(plan)
        injector.begin_step(2)
        cluster.timeline.record_compute(0, 1.0, op="gemm")
        injector.begin_step(3)
        with pytest.raises(GpuCrashError):
            cluster.timeline.record_compute(0, 1.0, op="gemm")

    def test_fire_once_across_replay(self):
        """Replaying the faulted step after recovery must not re-fire —
        the basis of bitwise crash-resume parity."""
        plan = FaultPlan(faults=(FaultSpec(kind="gpu_crash", step=1, rank=0),))
        cluster, injector = _injected_cluster(plan)
        injector.begin_step(1)
        with pytest.raises(GpuCrashError):
            cluster.timeline.record_compute(0, 1.0, op="gemm")
        # same injector, rebuilt cluster, replayed step
        cluster2 = VirtualCluster(num_gpus=8, gpus_per_node=8)
        cluster2.attach_injector(injector)
        injector.begin_step(1)
        cluster2.timeline.record_compute(0, 1.0, op="gemm")
        assert injector.fired() == [plan.faults[0]]
        assert injector.pending() == []

    def test_node_loss_names_the_node(self):
        plan = FaultPlan(faults=(FaultSpec(kind="node_loss", step=0, rank=9),))
        cluster, injector = _injected_cluster(plan, num_gpus=16)
        injector.begin_step(0)
        with pytest.raises(NodeLossError, match="node 1"):
            cluster.timeline.record_compute(9, 1.0, op="gemm")

    def test_unrecorded_when_fired(self):
        """A faulted event never lands on the ledgers — the collective
        did not complete."""
        plan = FaultPlan(faults=(FaultSpec(kind="gpu_crash", step=0, rank=0),))
        cluster, injector = _injected_cluster(plan)
        injector.begin_step(0)
        with pytest.raises(GpuCrashError):
            cluster.timeline.record_compute(0, 1.0, op="gemm")
        assert cluster.timeline.ledger(0).compute_s == 0.0


class TestDegradations:
    def test_straggler_scales_compute_within_window(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="straggler", step=1, rank=2, factor=3.0,
                      duration_steps=2),
        ))
        cluster, injector = _injected_cluster(plan)
        injector.begin_step(0)
        cluster.timeline.record_compute(2, 1.0, op="gemm")
        injector.begin_step(1)
        cluster.timeline.record_compute(2, 1.0, op="gemm")
        cluster.timeline.record_compute(3, 1.0, op="gemm")
        injector.begin_step(2)
        cluster.timeline.record_compute(2, 1.0, op="gemm")
        injector.begin_step(3)  # window over
        cluster.timeline.record_compute(2, 1.0, op="gemm")
        assert cluster.timeline.ledger(2).compute_s == pytest.approx(1 + 3 + 3 + 1)
        assert cluster.timeline.ledger(3).compute_s == pytest.approx(1.0)

    def test_link_degrade_scales_collectives_touching_rank(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="link_degrade", step=0, rank=1, factor=2.0),
        ))
        cluster, injector = _injected_cluster(plan)
        injector.begin_step(0)
        cluster.timeline.record_comm((0, 1), 1.0, 64, op="all_gather")
        cluster.timeline.record_comm((2, 3), 1.0, 64, op="all_gather")
        assert cluster.timeline.ledger(1).comm_s == pytest.approx(2.0)
        assert cluster.timeline.ledger(2).comm_s == pytest.approx(1.0)


class TestGradFaults:
    def test_poison_plants_nan_in_first_numeric_grad(self):
        class P:
            def __init__(self):
                self.grad = np.ones(4)

        plan = FaultPlan(faults=(
            FaultSpec(kind="grad_corruption", step=2, rank=0),
        ))
        injector = FaultInjector(plan)
        params = [P(), P()]
        assert injector.poison_gradients(1, params) is None
        spec = injector.poison_gradients(2, params)
        assert spec is plan.faults[0]
        assert np.isnan(params[0].grad[0])
        # fire-once: a replay leaves gradients clean
        params2 = [P()]
        assert injector.poison_gradients(2, params2) is None
        assert np.isfinite(params2[0].grad).all()

    def test_meta_mode_acknowledgement(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="grad_corruption", step=4, rank=0),
        ))
        injector = FaultInjector(plan)
        assert injector.grad_fault(3, fire=True) is None
        spec = injector.grad_fault(4, fire=True)
        assert spec is plan.faults[0]
        assert injector.fired_at(4) == [spec]


class TestRemap:
    def test_remap_renumbers_and_drops(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="gpu_crash", step=5, rank=12),
            FaultSpec(kind="collective_timeout", step=6, rank=3),
        ))
        injector = FaultInjector(plan, gpus_per_node=8)
        # node 0 (ranks 0..7) is lost; survivors 8..15 renumber to 0..7
        dropped = injector.remap_ranks({r: r - 8 for r in range(8, 16)})
        assert dropped == [plan.faults[1]]
        assert injector.moot() == [plan.faults[1]]
        assert injector.pending() == [plan.faults[0]]


class TestSeededSkew:
    def test_profile_is_deterministic(self):
        a = seeded_skew_profile(3, 16, num_stragglers=2)
        b = seeded_skew_profile(3, 16, num_stragglers=2)
        assert a == b
        assert len(a) == 2
        assert all(1.2 <= f <= 2.5 for f in a.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            seeded_skew_profile(0, 0)
        with pytest.raises(ValueError):
            seeded_skew_profile(0, 4, num_stragglers=5)
        with pytest.raises(ValueError):
            seeded_skew_profile(0, 4, min_factor=0.9)


class TestDeprecationShim:
    def test_old_import_path_warns_and_resolves(self):
        import repro.faults.degradation as degradation

        with pytest.warns(DeprecationWarning, match="repro.faults.degradation"):
            from repro.parallel.compute import SkewedCompute
        assert SkewedCompute is degradation.SkewedCompute

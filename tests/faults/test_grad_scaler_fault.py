"""Injected NaN gradients hit the grad-scaler backoff, never the weights.

Regression for the fault-path wiring of
:class:`~repro.nn.grad_scaler.DynamicGradScaler` into
:class:`~repro.train.distributed.DistributedTrainer`: a scheduled
``grad_corruption`` plants a NaN in a reduced gradient; the scaler must
detect it, back the scale off, and skip the optimizer step — the
parameters and optimizer moments must be untouched, and the skip must
be charged to the goodput ledger.
"""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan, FaultSpec, Supervisor
from repro.models.configs import OrbitConfig
from repro.nn.grad_scaler import DynamicGradScaler

TINY = OrbitConfig("tiny", embed_dim=16, depth=2, num_heads=4, in_vars=3,
                   out_vars=2, img_height=8, img_width=8, patch_size=4)


def _session(plan=None, **session_kwargs):
    from repro.runtime import RunSpec, Session

    spec = RunSpec(config=TINY, num_gpus=4, gpus_per_node=4, tp_size=1,
                   fsdp_size=2, ddp_size=2, micro_batch=2, meta=False, seed=5,
                   track_device_memory=False)
    session = Session(spec, **session_kwargs)
    if plan is not None:
        session.cluster.attach_injector(FaultInjector(plan, gpus_per_node=4))
    return session


def _param_snapshot(trainer):
    return [np.array(p.data, copy=True) for p in trainer.optimizer.params]


class TestScalerFaultPath:
    def test_nan_gradient_skips_update_and_backs_off(self):
        scaler = DynamicGradScaler()
        plan = FaultPlan(faults=(
            FaultSpec(kind="grad_corruption", step=1, rank=0),
        ))
        session = _session(plan, grad_scaler=scaler)
        trainer = session.trainer
        session.numeric_step(0)
        assert not trainer.last_step_skipped
        before = _param_snapshot(trainer)
        moments_before = trainer.optimizer.step_count
        scale_before = scaler.scale
        session.numeric_step(1)  # the poisoned step
        assert trainer.last_step_skipped
        assert scaler.num_overflows == 1
        assert scaler.scale == scale_before * scaler.backoff_factor
        assert trainer.optimizer.step_count == moments_before  # no update
        after = _param_snapshot(trainer)
        for b, a in zip(before, after):
            np.testing.assert_array_equal(b, a)  # never a silent update
        # training continues cleanly after the skip
        session.numeric_step(2)
        assert not trainer.last_step_skipped

    def test_scaled_clean_steps_are_bitwise_identical_to_unscaled(self):
        """Power-of-two scales only shift exponents: a clean run with the
        scaler must reproduce the unscaled loss trajectory bitwise."""
        plain = _session()
        scaled = _session(grad_scaler=DynamicGradScaler())
        losses_plain = [plain.numeric_step(s)[0] for s in range(4)]
        losses_scaled = [scaled.numeric_step(s)[0] for s in range(4)]
        assert losses_plain == losses_scaled

    def test_scaler_state_round_trips(self):
        scaler = DynamicGradScaler()
        scaler.num_overflows = 3
        scaler.scale = 1024.0
        restored = DynamicGradScaler()
        restored.load_state_dict(scaler.state_dict())
        assert restored.scale == 1024.0
        assert restored.num_overflows == 3

    def test_supervised_skip_lands_in_goodput(self, tmp_path):
        from repro.runtime import RunSpec

        spec = RunSpec(config=TINY, num_gpus=4, gpus_per_node=4, tp_size=1,
                       fsdp_size=2, ddp_size=2, micro_batch=2, meta=False,
                       seed=5, track_device_memory=False)
        plan = FaultPlan(faults=(
            FaultSpec(kind="grad_corruption", step=2, rank=0),
        ))
        supervisor = Supervisor(spec, plan)
        report = supervisor.run(4)
        assert report.recovered
        assert report.ledger.skipped_steps == 1
        assert report.ledger.lost_skipped_s > 0
        assert [e.kind for e in report.events if e.action == "skip_step"] == [
            "grad_corruption"
        ]
        # the scaler saw exactly one overflow
        assert supervisor.session.trainer.grad_scaler.num_overflows == 1

    def test_scale_never_collapses_below_min(self):
        scaler = DynamicGradScaler(init_scale=2.0, min_scale=1.0)
        plan = FaultPlan(faults=tuple(
            FaultSpec(kind="grad_corruption", step=s, rank=0) for s in range(3)
        ))
        session = _session(plan, grad_scaler=scaler)
        for step in range(3):
            session.numeric_step(step)
        assert scaler.scale == 1.0
        assert scaler.num_overflows == 3

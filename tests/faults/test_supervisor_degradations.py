"""Supervisor recovery under windowed degradations, and the replan
bitwise-parity invariants.

Two families of checks:

* **Recovery semantics** — windowed ``link_degrade`` + ``straggler``
  plans interacting with the folded timeline's fold/refold transitions
  (the meta golden plan forces exact -> folded -> exact -> folded), and
  with crash rollback inside a degradation window.
* **Bitwise parity** — with ``replan='off'`` (the default) the journal
  bytes and the numeric state dict must reproduce the pre-replan
  fixtures under ``tests/faults/data/`` exactly; and a ``replan='on'``
  run whose every decision is "stay" must change zero bytes of
  training state.
"""

import pytest

from tests.faults.replan_golden import (
    DATA_DIR,
    NUMERIC_PLAN,
    meta_scenario,
    numeric_scenario,
    run_meta,
    run_numeric,
    state_digest,
)


class TestWindowedDegradationRecovery:
    def test_meta_plan_recovers_through_fold_transitions(self, tmp_path):
        supervisor = meta_scenario(tmp_path)
        report = supervisor.run(8)
        assert report.recovered
        assert report.steps_completed == 8
        kinds = [(e.kind, e.action) for e in report.events]
        # Both degradation windows observed, the crash rolled back.
        assert ("straggler", "observed") in kinds
        assert ("link_degrade", "observed") in kinds
        assert ("gpu_crash", "rollback_restart") in kinds

    def test_fold_switches_around_the_degradation_windows(self, tmp_path):
        supervisor = meta_scenario(tmp_path)
        supervisor.run(8)
        fold_events = [
            event for event in supervisor.monitor.journal.events
            if event.kind == "fold"
        ]
        # The straggler window unfolds the first incarnation at step 1
        # (and its timing divergence keeps it exact); the crash at step
        # 5 rebuilds a *folded* session whose replay immediately hits
        # the link window and unfolds again at step 4.  Two unfolds,
        # one per incarnation, both inside degradation windows.
        assert [event.step for event in fold_events] == [1, 4]
        assert all(event.category == "exact" for event in fold_events)

    def test_numeric_plan_recovers_with_degraded_steps(self, tmp_path):
        supervisor = numeric_scenario(tmp_path)
        report = supervisor.run(6)
        assert report.recovered
        observed = {e.kind for e in report.events if e.action == "observed"}
        assert {"straggler", "link_degrade"} <= observed

    def test_degradation_aware_accounting_charges_the_windows(self, tmp_path):
        supervisor = numeric_scenario(tmp_path)
        supervisor.degradation_aware = True
        report = supervisor.run(6)
        assert report.recovered
        ledger = supervisor.ledger
        assert ledger.lost_degraded_s > 0
        assert ledger.goodput_fraction < 1.0
        assert ledger.total_s == pytest.approx(
            ledger.useful_s + ledger.lost_s + ledger.checkpoint_s
            + ledger.replan_s
        )

    def test_default_accounting_never_charges_degradation(self, tmp_path):
        supervisor = numeric_scenario(tmp_path)
        supervisor.run(6)
        assert supervisor.ledger.lost_degraded_s == 0.0


class TestReplanOffBitwiseParity:
    """replan='off' must reproduce the pre-replan fixtures exactly."""

    def test_meta_journal_bytes_match_the_pre_replan_fixture(self, tmp_path):
        journal, report = run_meta(tmp_path)
        assert report.recovered
        golden = (DATA_DIR / "golden_meta_journal.jsonl").read_text()
        assert journal == golden

    def test_numeric_journal_and_state_match_the_pre_replan_fixture(
        self, tmp_path
    ):
        journal, digest, report = run_numeric(tmp_path)
        assert report.recovered
        golden = (DATA_DIR / "golden_numeric_journal.jsonl").read_text()
        assert journal == golden
        want = (DATA_DIR / "golden_numeric_state.sha256").read_text().strip()
        assert digest == want


class TestStayChangesNothing:
    """A replan='on' run whose decisions are all "stay" must leave the
    training state bitwise identical to the replan='off' run."""

    def supervise_replan_on(self, tmp_path):
        from repro.faults import Supervisor

        base = numeric_scenario(tmp_path)  # for the spec shape
        spec = base.spec.replace(replan="on")
        supervisor = Supervisor(
            spec, NUMERIC_PLAN, checkpoint_every=2,
            checkpoint_dir=tmp_path / "on", health_every=2,
        )
        report = supervisor.run(6)
        return supervisor, report

    def test_every_decision_stays(self, tmp_path):
        # The 4-GPU world has no equal-batch alternative reachable by
        # elastic resume, so the controller can only stay.
        supervisor, report = self.supervise_replan_on(tmp_path)
        assert report.recovered
        replan_events = [
            event for event in supervisor.monitor.journal.events
            if event.kind == "replan"
        ]
        assert replan_events, "degradations should trigger evaluations"
        assert all(e.category == "decision" for e in replan_events)
        assert all(e.data["action"] == "stay" for e in replan_events)

    def test_stay_decisions_change_zero_bytes_of_state(self, tmp_path):
        supervisor, _ = self.supervise_replan_on(tmp_path)
        want = (DATA_DIR / "golden_numeric_state.sha256").read_text().strip()
        assert state_digest(supervisor.session) == want

    def test_stay_decisions_do_not_touch_the_ledger(self, tmp_path):
        supervisor, _ = self.supervise_replan_on(tmp_path)
        assert supervisor.ledger.replans == 0
        assert supervisor.ledger.replan_s == 0.0

    def test_history_identical_to_replan_off(self, tmp_path):
        supervisor, report = self.supervise_replan_on(tmp_path)
        _, _, off_report = run_numeric(tmp_path / "off")
        assert report.history == off_report.history

"""FaultPlan: validation, serialization, seeded generation."""

import pytest

from repro.faults import (
    DEGRADATION_KINDS,
    FATAL_KINDS,
    TRANSIENT_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    classify,
)


class TestFaultSpec:
    def test_kind_coerced_from_string(self):
        spec = FaultSpec(kind="gpu_crash", step=3, rank=2)
        assert spec.kind is FaultKind.GPU_CRASH
        assert spec.classification == "fatal"

    def test_rejects_negative_step_and_rank(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.GPU_CRASH, step=-1)
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.GPU_CRASH, step=0, rank=-2)

    def test_degradation_needs_slowdown_factor(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.STRAGGLER, step=0, factor=1.0)
        spec = FaultSpec(kind=FaultKind.STRAGGLER, step=0, factor=2.5)
        assert spec.factor == 2.5

    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.LINK_DEGRADE, step=0, factor=2.0,
                      duration_steps=0)

    def test_classification_covers_every_kind(self):
        classes = {classify(kind) for kind in FaultKind}
        assert classes == {"transient", "fatal", "degradation", "numerical"}
        assert not (TRANSIENT_KINDS & FATAL_KINDS)
        assert not (DEGRADATION_KINDS & FATAL_KINDS)


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(faults=(
            FaultSpec(kind="collective_timeout", step=1, rank=3, op="all_gather"),
            FaultSpec(kind="link_degrade", step=2, rank=1, factor=3.0,
                      duration_steps=2),
            FaultSpec(kind="gpu_crash", step=3, rank=5),
        ), seed=11)
        path = plan.to_json(tmp_path / "plan.json")
        restored = FaultPlan.from_json(path)
        assert restored == plan

    def test_dict_entries_coerced(self):
        plan = FaultPlan(faults=(
            {"kind": "gpu_crash", "step": 2, "rank": 1},
        ))
        assert plan.faults[0].kind is FaultKind.GPU_CRASH

    def test_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            FaultPlan.from_dict({"schema": 99, "faults": []})

    def test_faults_at_and_max_rank(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="gpu_crash", step=2, rank=7),
            FaultSpec(kind="grad_corruption", step=2, rank=0),
            FaultSpec(kind="collective_timeout", step=4, rank=3),
        ))
        assert len(plan.faults_at(2)) == 2
        assert plan.faults_at(3) == ()
        assert plan.max_rank() == 7

    def test_seeded_random_is_deterministic(self):
        a = FaultPlan.random(7, num_steps=10, world_size=16, count=5)
        b = FaultPlan.random(7, num_steps=10, world_size=16, count=5)
        assert a == b
        assert len(a) == 5
        assert all(f.step < 10 and f.rank < 16 for f in a.faults)
        c = FaultPlan.random(8, num_steps=10, world_size=16, count=5)
        assert c != a

    def test_remapped_drops_lost_ranks(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="gpu_crash", step=2, rank=3),
            FaultSpec(kind="collective_timeout", step=4, rank=9),
        ))
        remapped = plan.remapped({3: 3, 4: 4})
        assert len(remapped) == 1
        assert remapped.faults[0].rank == 3

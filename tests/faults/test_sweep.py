"""Property sweep over fault plans: the supervisor never wedges.

For any plan drawn from kind x step x rank the supervised run either
completes every scheduled step with ``recovered=True``, or reports the
failure cleanly through ``report.unrecovered`` — no exception ever
escapes :meth:`Supervisor.run`, and the goodput ledger stays
internally consistent either way.
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import FaultKind, FaultPlan, FaultSpec, Supervisor
from repro.models.configs import OrbitConfig

TINY = OrbitConfig("tiny", embed_dim=16, depth=2, num_heads=4, in_vars=3,
                   out_vars=2, img_height=8, img_width=8, patch_size=4)

WORLD = 16
STEPS = 6
GLOBAL_BATCH = 16  # fsdp 2 x ddp 4 x micro 2


def _spec():
    from repro.runtime import RunSpec

    return RunSpec(config=TINY, num_gpus=WORLD, gpus_per_node=8, tp_size=2,
                   fsdp_size=2, ddp_size=4, micro_batch=2, meta=True)


def _fault_specs():
    crash_like = st.builds(
        FaultSpec,
        kind=st.sampled_from([
            FaultKind.COLLECTIVE_TIMEOUT,
            FaultKind.GPU_CRASH,
            FaultKind.NODE_LOSS,
            FaultKind.GRAD_CORRUPTION,
        ]),
        step=st.integers(min_value=0, max_value=STEPS + 1),
        rank=st.integers(min_value=0, max_value=WORLD - 1),
    )
    degradation = st.builds(
        FaultSpec,
        kind=st.sampled_from([FaultKind.STRAGGLER, FaultKind.LINK_DEGRADE]),
        step=st.integers(min_value=0, max_value=STEPS + 1),
        rank=st.integers(min_value=0, max_value=WORLD - 1),
        factor=st.floats(min_value=1.5, max_value=4.0),
        duration_steps=st.integers(min_value=1, max_value=3),
    )
    return st.one_of(crash_like, degradation)


def _plans():
    return st.builds(
        FaultPlan,
        faults=st.lists(_fault_specs(), min_size=1, max_size=3).map(tuple),
    )


@settings(max_examples=15, deadline=None)
@given(plan=_plans())
def test_any_plan_recovers_or_reports_cleanly(plan):
    with tempfile.TemporaryDirectory() as ckpt:
        supervisor = Supervisor(
            _spec(), plan, checkpoint_every=2, checkpoint_dir=Path(ckpt),
        )
        report = supervisor.run(STEPS)

    ledger = report.ledger
    # The exact total-time identity: every bucket — including the
    # replan-migration bucket — sums back to the total, with nothing
    # double-counted and nothing dropped.
    assert ledger.total_s == pytest.approx(
        ledger.useful_s + ledger.lost_s + ledger.checkpoint_s
        + ledger.replan_s
    )
    assert ledger.lost_s == pytest.approx(
        ledger.lost_retry_s + ledger.lost_rollback_s + ledger.lost_restart_s
        + ledger.lost_skipped_s + ledger.lost_degraded_s
    )
    if report.recovered:
        assert report.steps_completed == STEPS
        assert len(report.history) == STEPS
        # global batch preserved through any elastic regroup
        observations = [report.history[0][0]] + [
            b - a for (a, _), (b, _) in zip(report.history, report.history[1:])
        ]
        assert set(observations) == {GLOBAL_BATCH}
        # every scheduled in-run fault was consumed or explained
        for spec in plan.faults:
            if spec.step < STEPS:
                assert (
                    spec in supervisor.injector.fired()
                    or spec in report.moot
                    or spec in supervisor.injector.pending()
                )
    else:
        assert report.unrecovered, "failure must carry an explanation"


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_random_plans_are_deterministic_and_survivable(seed):
    plan = FaultPlan.random(seed, num_steps=STEPS, world_size=WORLD, count=2)
    assert plan == FaultPlan.random(seed, num_steps=STEPS, world_size=WORLD,
                                    count=2)
    with tempfile.TemporaryDirectory() as a, tempfile.TemporaryDirectory() as b:
        first = Supervisor(
            _spec(), plan, checkpoint_every=2, checkpoint_dir=Path(a),
        ).run(STEPS)
        second = Supervisor(
            _spec(), plan, checkpoint_every=2, checkpoint_dir=Path(b),
        ).run(STEPS)
    assert first.recovered == second.recovered
    assert [(e.step, e.kind, e.action) for e in first.events] == [
        (e.step, e.kind, e.action) for e in second.events
    ]
    assert first.history == second.history

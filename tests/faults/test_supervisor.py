"""Supervisor recovery paths: retry, rollback-restart, elastic regroup.

The acceptance scenario of the fault subsystem: a 16-GCD run with a
transient collective timeout, a GPU crash, and a NaN gradient completes
every scheduled step; the crash path resumes from the sharded archive
and reproduces the fault-free loss history *bitwise*.
"""

import pytest

from repro.faults import FaultPlan, FaultSpec, Supervisor
from repro.models.configs import OrbitConfig

TINY = OrbitConfig("tiny", embed_dim=16, depth=2, num_heads=4, in_vars=3,
                   out_vars=2, img_height=8, img_width=8, patch_size=4)


def _meta_spec(**overrides):
    from repro.runtime import RunSpec

    base = dict(config=TINY, num_gpus=16, gpus_per_node=8, tp_size=2,
                fsdp_size=2, ddp_size=4, micro_batch=2, meta=True)
    base.update(overrides)
    return RunSpec(**base)


def _numeric_spec(**overrides):
    from repro.runtime import RunSpec

    base = dict(config=TINY, num_gpus=4, gpus_per_node=4, tp_size=1,
                fsdp_size=2, ddp_size=2, micro_batch=2, meta=False, seed=5,
                track_device_memory=False)
    base.update(overrides)
    return RunSpec(**base)


ACCEPTANCE_PLAN = FaultPlan(faults=(
    FaultSpec(kind="collective_timeout", step=1, rank=3),
    FaultSpec(kind="gpu_crash", step=3, rank=5),
    FaultSpec(kind="grad_corruption", step=5, rank=0),
))


class TestMetaAcceptance:
    def test_sixteen_gcd_run_completes_through_all_three_faults(self, tmp_path):
        supervisor = Supervisor(
            _meta_spec(), ACCEPTANCE_PLAN,
            checkpoint_every=2, checkpoint_dir=tmp_path,
        )
        report = supervisor.run(8)
        assert report.recovered
        assert report.steps_completed == 8
        assert len(report.history) == 8
        actions = [e.action for e in report.events]
        assert "retry" in actions
        assert "rollback_restart" in actions
        assert "skip_step" in actions
        assert report.pending == [] and report.moot == []

    def test_walltime_attributed_to_recovery_buckets(self, tmp_path):
        supervisor = Supervisor(
            _meta_spec(), ACCEPTANCE_PLAN,
            checkpoint_every=2, checkpoint_dir=tmp_path,
        )
        ledger = supervisor.run(8).ledger
        assert ledger.lost_retry_s > 0
        assert ledger.lost_rollback_s > 0
        assert ledger.lost_restart_s > 0
        assert ledger.lost_skipped_s > 0
        assert ledger.checkpoint_s > 0
        assert ledger.goodput_fraction < 1.0
        assert ledger.total_s == pytest.approx(
            ledger.useful_s + ledger.lost_s + ledger.checkpoint_s
        )

    def test_report_document_is_json_able(self, tmp_path):
        import json

        report = Supervisor(
            _meta_spec(), ACCEPTANCE_PLAN,
            checkpoint_every=2, checkpoint_dir=tmp_path,
        ).run(8)
        doc = json.loads(json.dumps(report.as_dict()))
        assert doc["recovered"] is True
        assert doc["schema"] == 1
        assert doc["goodput"]["goodput_fraction"] < 1.0


class TestBitwiseRecovery:
    def test_crash_resume_matches_fault_free_history_bitwise(self, tmp_path):
        baseline = Supervisor(
            _numeric_spec(), FaultPlan(),
            checkpoint_every=2, checkpoint_dir=tmp_path / "base",
        ).run(6)
        plan = FaultPlan(faults=(FaultSpec(kind="gpu_crash", step=3, rank=1),))
        crashed = Supervisor(
            _numeric_spec(), plan,
            checkpoint_every=2, checkpoint_dir=tmp_path / "crash",
        ).run(6)
        assert crashed.recovered
        assert crashed.history == baseline.history  # bitwise: float equality

    def test_transient_retry_matches_fault_free_history_bitwise(self, tmp_path):
        baseline = Supervisor(
            _numeric_spec(), FaultPlan(),
            checkpoint_every=2, checkpoint_dir=tmp_path / "base",
        ).run(6)
        plan = FaultPlan(faults=(
            FaultSpec(kind="collective_timeout", step=2, rank=0),
        ))
        retried = Supervisor(
            _numeric_spec(), plan,
            checkpoint_every=2, checkpoint_dir=tmp_path / "retry",
        ).run(6)
        assert retried.recovered
        assert retried.history == baseline.history

    def test_crash_without_checkpoint_restarts_from_zero_bitwise(self):
        baseline = Supervisor(_numeric_spec(), FaultPlan()).run(5)
        plan = FaultPlan(faults=(FaultSpec(kind="gpu_crash", step=2, rank=0),))
        crashed = Supervisor(_numeric_spec(), plan).run(5)
        assert crashed.recovered
        assert crashed.history == baseline.history


class TestElasticRegroup:
    def test_meta_node_loss_shrinks_ddp_and_preserves_global_batch(self, tmp_path):
        plan = FaultPlan(faults=(FaultSpec(kind="node_loss", step=4, rank=9),))
        supervisor = Supervisor(
            _meta_spec(), plan, checkpoint_every=2, checkpoint_dir=tmp_path,
        )
        report = supervisor.run(8)
        assert report.recovered
        assert report.steps_completed == 8
        assert report.final_spec["grid"] == [2, 2, 2, 1]  # ddp 4 -> 2
        assert report.final_spec["micro_batch"] == 4   # micro 2 -> 4
        # global batch preserved: every step saw the same observations
        observations = [report.history[0][0]] + [
            b - a for (a, _), (b, _) in zip(report.history, report.history[1:])
        ]
        assert set(observations) == {16}
        assert supervisor.ledger.regroups == 1

    def test_numeric_node_loss_resumes_elastically(self, tmp_path):
        from repro.runtime import RunSpec

        spec = RunSpec(config=TINY, num_gpus=16, gpus_per_node=8, tp_size=1,
                       fsdp_size=2, ddp_size=8, micro_batch=2, meta=False,
                       seed=5, track_device_memory=False)
        plan = FaultPlan(faults=(FaultSpec(kind="node_loss", step=3, rank=12),))
        report = Supervisor(
            spec, plan, checkpoint_every=2, checkpoint_dir=tmp_path,
        ).run(6)
        assert report.recovered
        assert report.steps_completed == 6
        assert report.final_spec["grid"] == [1, 2, 4, 1]
        assert report.final_spec["micro_batch"] == 4
        assert all(math_isfinite(loss) for _, loss in report.history)

    def test_node_loss_without_checkpoint_restarts_from_zero(self):
        spec = _meta_spec(ddp_size=4, micro_batch=1)  # global batch 8
        plan = FaultPlan(faults=(FaultSpec(kind="node_loss", step=1, rank=0),))
        report = Supervisor(spec, plan).run(4)
        assert report.recovered
        assert report.final_spec["grid"][2] == 2 and report.final_spec["micro_batch"] == 2

    def test_survivors_cannot_host_replica(self):
        spec = _meta_spec(num_gpus=8, gpus_per_node=8, tp_size=2, fsdp_size=2,
                          ddp_size=2)
        plan = FaultPlan(faults=(FaultSpec(kind="node_loss", step=1, rank=0),))
        report = Supervisor(spec, plan).run(4)
        assert not report.recovered
        assert any("cannot host" in msg for msg in report.unrecovered)


class TestEscalationAndValidation:
    def test_plan_targeting_absent_rank_is_rejected(self):
        plan = FaultPlan(faults=(FaultSpec(kind="gpu_crash", step=0, rank=99),))
        with pytest.raises(ValueError, match="rank 99"):
            Supervisor(_meta_spec(), plan)

    def test_checkpointing_requires_directory(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            Supervisor(_meta_spec(), FaultPlan(), checkpoint_every=2)

    def test_pending_faults_surface_in_report(self):
        plan = FaultPlan(faults=(FaultSpec(kind="gpu_crash", step=50, rank=0),))
        report = Supervisor(_meta_spec(), plan).run(3)
        assert report.recovered
        assert report.pending == [plan.faults[0]]


def math_isfinite(x):
    import math

    return math.isfinite(x)

"""GoodputLedger arithmetic and the Young/Daly analytic model."""

import math

import pytest

from repro.faults import (
    GoodputLedger,
    bench_goodput,
    expected_goodput_fraction,
    recommend_checkpoint_interval,
)


class TestLedger:
    def test_clean_run_is_all_useful(self):
        ledger = GoodputLedger()
        for step in range(4):
            ledger.commit_step(step, 1.5)
        assert ledger.useful_s == pytest.approx(6.0)
        assert ledger.lost_s == 0.0
        assert ledger.goodput_fraction == pytest.approx(1.0)

    def test_skipped_step_is_lost_not_useful(self):
        ledger = GoodputLedger()
        ledger.commit_step(0, 1.0)
        ledger.commit_step(1, 1.0, skipped=True)
        assert ledger.useful_s == pytest.approx(1.0)
        assert ledger.lost_skipped_s == pytest.approx(1.0)
        assert ledger.skipped_steps == 1
        assert ledger.goodput_fraction == pytest.approx(0.5)

    def test_rollback_moves_window_to_lost(self):
        ledger = GoodputLedger()
        ledger.commit_step(0, 1.0)
        ledger.commit_step(1, 1.0)
        ledger.checkpoint(0.25)  # seals the window
        ledger.commit_step(2, 1.0)
        ledger.commit_step(3, 1.0)
        lost_steps, lost_s = ledger.rollback(attempt_s=0.5)
        assert lost_steps == 2
        assert lost_s == pytest.approx(2.5)
        assert ledger.useful_s == pytest.approx(2.0)  # pre-checkpoint work survives
        assert ledger.lost_rollback_s == pytest.approx(2.5)

    def test_total_is_the_sum_of_buckets(self):
        ledger = GoodputLedger()
        ledger.commit_step(0, 2.0)
        ledger.retry(0.5, backoff_s=0.1)
        ledger.checkpoint(0.25)
        ledger.restart(1.0)
        assert ledger.total_s == pytest.approx(2.0 + 0.6 + 0.25 + 1.0)
        assert ledger.retries == 1 and ledger.restarts == 1

    def test_degraded_excess_is_lost_not_useful(self):
        ledger = GoodputLedger()
        ledger.commit_step(0, 1.0)
        ledger.commit_step(1, 2.5, degraded_s=1.5)
        assert ledger.useful_s == pytest.approx(2.0)
        assert ledger.lost_degraded_s == pytest.approx(1.5)
        assert ledger.lost_s == pytest.approx(1.5)
        assert ledger.total_s == pytest.approx(3.5)
        assert ledger.goodput_fraction == pytest.approx(2.0 / 3.5)

    def test_degraded_excess_validated_against_the_step(self):
        ledger = GoodputLedger()
        with pytest.raises(ValueError, match="degraded_s"):
            ledger.commit_step(0, 1.0, degraded_s=1.5)
        with pytest.raises(ValueError, match="degraded_s"):
            ledger.commit_step(0, 1.0, degraded_s=-0.1)

    def test_replan_is_its_own_bucket(self):
        ledger = GoodputLedger()
        ledger.commit_step(0, 1.0)
        ledger.replan(0.4)
        ledger.commit_step(1, 1.0)
        assert ledger.replan_s == pytest.approx(0.4)
        assert ledger.replans == 1
        # Neither useful nor lost: a migration is planned spend.
        assert ledger.useful_s == pytest.approx(2.0)
        assert ledger.lost_s == 0.0
        assert ledger.total_s == pytest.approx(2.4)

    def test_replan_seals_the_rollback_window(self):
        ledger = GoodputLedger()
        ledger.commit_step(0, 1.0)
        ledger.replan(0.1)  # migration writes its own durable checkpoint
        ledger.commit_step(1, 1.0)
        lost_steps, _ = ledger.rollback()
        assert lost_steps == 1  # only the post-migration step rolls back

    def test_replan_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            GoodputLedger().replan(-0.1)

    def test_bucket_fractions_appear_only_when_charged(self):
        ledger = GoodputLedger()
        ledger.commit_step(0, 1.0)
        assert "goodput.replan_fraction" not in ledger.bucket_fractions()
        assert "goodput.degraded_fraction" not in ledger.bucket_fractions()
        ledger.replan(0.5)
        ledger.commit_step(1, 2.0, degraded_s=1.0)
        fractions = ledger.bucket_fractions()
        # total = useful 2.0 + degraded 1.0 + replan 0.5
        assert fractions["goodput.replan_fraction"] == pytest.approx(0.5 / 3.5)
        assert fractions["goodput.degraded_fraction"] == pytest.approx(1.0 / 3.5)

    def test_replayed_steps_recount_as_useful(self):
        ledger = GoodputLedger()
        ledger.commit_step(0, 1.0)
        ledger.rollback()
        ledger.restart(0.5)
        ledger.commit_step(0, 1.0)  # replay
        assert ledger.useful_s == pytest.approx(1.0)
        assert ledger.lost_rollback_s == pytest.approx(1.0)

    def test_as_dict_round_numbers(self):
        ledger = GoodputLedger()
        ledger.commit_step(0, 1.0)
        doc = ledger.as_dict()
        assert doc["useful_s"] == 1.0
        assert doc["goodput_fraction"] == 1.0
        assert "_window" not in doc


class TestAnalyticModel:
    def test_young_daly_interval(self):
        assert recommend_checkpoint_interval(1800, 25) == pytest.approx(
            math.sqrt(2 * 25 * 1800)
        )

    def test_interval_floored_to_one_step(self):
        assert recommend_checkpoint_interval(100, 0.001, step_time_s=5.0) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            recommend_checkpoint_interval(0, 10)
        with pytest.raises(ValueError):
            expected_goodput_fraction(100, 10, 10, 0)

    def test_goodput_fraction_decreases_with_failure_rate(self):
        frequent = expected_goodput_fraction(600, 30, 120, 190)
        rare = expected_goodput_fraction(86400, 30, 120, 190)
        assert 0 < frequent < rare < 1

    def test_fraction_formula(self):
        T, C, R, M = 200.0, 20.0, 100.0, 3600.0
        expected = 1.0 / (1.0 + C / T + (R + (T + C) / 2) / M)
        assert expected_goodput_fraction(M, C, R, T) == pytest.approx(expected)


class TestBenchGoodput:
    DOC = {
        "cases": {
            "tiny-2n": {"step_time_s": 0.5, "time_per_obs_s": 0.05},
        }
    }

    def test_goodput_trails_throughput_by_exactly_the_fraction(self):
        out = bench_goodput(self.DOC, mtbf_s=3600.0)
        entry = out["tiny-2n"]
        assert entry["throughput_obs_per_s"] == pytest.approx(20.0)
        assert entry["goodput_obs_per_s"] == pytest.approx(
            entry["throughput_obs_per_s"] * entry["goodput_fraction"]
        )
        assert entry["goodput_obs_per_s"] < entry["throughput_obs_per_s"]
        assert entry["checkpoint_every_steps"] >= 1

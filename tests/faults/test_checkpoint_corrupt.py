"""Checkpoint integrity: the manifest catches corruption, typed and named."""

import json
import zipfile

import numpy as np
import pytest

from repro.runtime import CheckpointCorruptError, load_archive, save_archive
from repro.runtime.checkpoint import _META_KEY, CHECKPOINT_SCHEMA


@pytest.fixture
def archive(tmp_path):
    path = tmp_path / "ckpt.npz"
    save_archive(
        path,
        {"dense::0::w": np.arange(6.0).reshape(2, 3),
         "opt::m::0": np.zeros(4)},
        {"kind": "session", "step": 3},
    )
    return path


class TestManifest:
    def test_round_trip_verifies_clean(self, archive):
        arrays, meta = load_archive(archive)
        assert meta["schema"] == CHECKPOINT_SCHEMA == 2
        assert set(meta["manifest"]) == {"dense::0::w", "opt::m::0"}
        entry = meta["manifest"]["dense::0::w"]
        assert entry["shape"] == [2, 3] and entry["dtype"] == "float64"
        np.testing.assert_array_equal(
            arrays["dense::0::w"], np.arange(6.0).reshape(2, 3)
        )

    def test_checksum_mismatch_names_the_member(self, archive, tmp_path):
        arrays, meta = load_archive(archive)
        arrays["opt::m::0"] = np.ones(4)  # silently flipped bits
        tampered = tmp_path / "tampered.npz"
        save_archive(tampered, arrays, {**meta, "manifest": meta["manifest"]})
        with pytest.raises(CheckpointCorruptError, match="opt::m::0"):
            load_archive(tampered)

    def test_missing_member_named(self, archive, tmp_path):
        arrays, meta = load_archive(archive)
        del arrays["dense::0::w"]
        broken = tmp_path / "missing.npz"
        save_archive(broken, arrays, meta)
        with pytest.raises(CheckpointCorruptError, match="dense::0::w"):
            load_archive(broken)

    def test_extra_member_rejected(self, archive, tmp_path):
        arrays, meta = load_archive(archive)
        arrays["rogue"] = np.ones(2)
        broken = tmp_path / "extra.npz"
        save_archive(broken, arrays, meta)
        with pytest.raises(CheckpointCorruptError, match="rogue"):
            load_archive(broken)

    def test_verify_false_skips_the_manifest_pass(self, archive, tmp_path):
        arrays, meta = load_archive(archive)
        arrays["opt::m::0"] = np.ones(4)
        tampered = tmp_path / "tampered.npz"
        save_archive(tampered, arrays, meta)
        loaded, _ = load_archive(tampered, verify=False)
        np.testing.assert_array_equal(loaded["opt::m::0"], np.ones(4))


class TestStructuralDamage:
    def test_truncated_file_is_typed_not_raw(self, archive):
        data = archive.read_bytes()
        archive.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointCorruptError, match=str(archive)):
            load_archive(archive)

    def test_not_a_zip_at_all(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not an archive")
        with pytest.raises(CheckpointCorruptError):
            load_archive(path)

    def test_corrupted_zip_member_names_the_member(self, archive, tmp_path):
        # Rewrite the zip with one member's compressed payload mangled.
        broken = tmp_path / "member.npz"
        with zipfile.ZipFile(archive) as src, \
                zipfile.ZipFile(broken, "w", zipfile.ZIP_STORED) as dst:
            for info in src.infolist():
                payload = src.read(info.filename)
                if info.filename == "opt::m::0.npy":
                    payload = payload[:-8] + b"XXXXXXXX"
                dst.writestr(info, payload)
        with pytest.raises(CheckpointCorruptError, match="opt::m::0"):
            load_archive(broken)

    def test_missing_metadata_member_is_typed(self, archive, tmp_path):
        broken = tmp_path / "meta.npz"
        with zipfile.ZipFile(archive) as src, \
                zipfile.ZipFile(broken, "w", zipfile.ZIP_STORED) as dst:
            for info in src.infolist():
                if info.filename == f"{_META_KEY}.npy":
                    continue
                dst.writestr(info, src.read(info.filename))
        with pytest.raises(CheckpointCorruptError, match=_META_KEY):
            load_archive(broken)

    def test_schema_one_archives_still_load(self, tmp_path):
        """Back-compat: schema-1 archives (no manifest) load unverified."""
        path = tmp_path / "v1.npz"
        payload = {"a": np.arange(3.0)}
        meta = {"kind": "session", "schema": 1}
        payload[_META_KEY] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        np.savez_compressed(path, **payload)
        arrays, loaded = load_archive(path)
        assert loaded["schema"] == 1
        np.testing.assert_array_equal(arrays["a"], np.arange(3.0))

    def test_unknown_schema_still_value_error(self, tmp_path):
        path = tmp_path / "v99.npz"
        payload = {
            _META_KEY: np.frombuffer(
                json.dumps({"schema": 99}).encode("utf-8"), dtype=np.uint8
            )
        }
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="unsupported checkpoint schema"):
            load_archive(path)

"""ReplanController decisions on the seeded demo scenario.

The demo model (see :mod:`repro.replan.scenario`) is the smallest
configuration whose compute is comparable to its exposed communication
— the regime where a lead-rank straggler actually reorders the
candidate ranking and a switch can pay for itself.
"""

import pytest

from repro.replan import (
    DegradationProfile,
    MigrationCostModel,
    ReplanController,
    candidate_of,
)
from repro.replan.scenario import demo_spec

CHEAP = MigrationCostModel(checkpoint_s=0.005, rebuild_s=0.01, warmup_s=0.005)
STRAGGLER = DegradationProfile(compute=((0, 8.0),), remaining_steps=11)


@pytest.fixture(scope="module")
def spec():
    return demo_spec()


@pytest.fixture(scope="module")
def controller(spec):
    return ReplanController(spec, hysteresis=0.25)


class TestDecision:
    def test_straggler_triggers_a_switch(self, controller, spec):
        decision = controller.evaluate(spec, 3, 16, STRAGGLER, CHEAP)
        assert decision.switch
        assert decision.best_label == "tp2.f4.d2.mb4+pf"
        assert decision.best_candidate.label() == decision.best_label
        # The alternative must preserve the global batch.
        assert decision.best_candidate.observations == spec.observations
        assert decision.projected_gain_s > CHEAP.total_s * 1.25
        assert decision.best_step_s < decision.current_step_s

    def test_prohibitive_migration_cost_stays(self, controller, spec):
        expensive = MigrationCostModel(checkpoint_s=5.0, rebuild_s=5.0)
        decision = controller.evaluate(spec, 3, 16, STRAGGLER, expensive)
        assert decision.action == "stay"
        assert "does not clear" in decision.reason
        # The gain is still reported: the journal shows what was left
        # on the table.
        assert decision.projected_gain_s > 0

    def test_exhausted_horizon_stays(self, controller, spec):
        decision = controller.evaluate(spec, 16, 16, STRAGGLER, CHEAP)
        assert decision.action == "stay"
        assert decision.reason == "horizon exhausted"
        assert decision.remaining_steps == 0

    def test_short_window_shrinks_the_gain(self, controller, spec):
        brief = DegradationProfile(compute=((0, 8.0),), remaining_steps=1)
        long = controller.evaluate(spec, 3, 16, STRAGGLER, CHEAP)
        short = controller.evaluate(spec, 3, 16, brief, CHEAP)
        assert short.projected_gain_s < long.projected_gain_s

    def test_as_dict_is_json_ready(self, controller, spec):
        decision = controller.evaluate(spec, 3, 16, STRAGGLER, CHEAP)
        payload = decision.as_dict()
        assert payload["action"] == "switch"
        assert payload["profile"] == "c0x8,w11"
        assert payload["current"] == candidate_of(spec).label()
        # The executable Candidate rides on the dataclass, not the
        # serialized payload.
        assert "best_candidate" not in payload

    def test_estimates_are_cached_per_profile(self, spec):
        calls = []

        class CountingEstimator:
            def __init__(self, inner):
                self.inner = inner

            def estimate(self, candidate, degradation=None):
                calls.append((candidate, degradation))
                return self.inner.estimate(candidate, degradation=degradation)

        from repro.tune.estimator import AnalyticEstimator

        inner = AnalyticEstimator(spec.config, spec.num_gpus, spec.gpus_per_node)
        controller = ReplanController(
            spec, estimator=CountingEstimator(inner)
        )
        controller.evaluate(spec, 3, 16, STRAGGLER, CHEAP)
        first = len(calls)
        controller.evaluate(spec, 4, 16, STRAGGLER, CHEAP)
        assert len(calls) == first


class TestElasticOnly:
    def test_numeric_specs_restrict_to_the_elastic_resume_grid(self, spec):
        numeric = spec.replace(meta=False)
        controller = ReplanController(numeric)
        assert controller.elastic_only
        for candidate in controller.alternatives(numeric):
            assert candidate.tp_size == numeric.tp_size
            assert candidate.fsdp_size == numeric.fsdp_size
            assert candidate.recompute == numeric.recompute
            assert candidate.observations == numeric.observations

    def test_meta_specs_may_take_any_legal_plan(self, controller, spec):
        labels = {c.label() for c in controller.alternatives(spec)}
        assert "tp2.f4.d2.mb4+pf" in labels
        assert candidate_of(spec).label() not in labels

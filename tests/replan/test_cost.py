"""MigrationCostModel: validation, totals, and ledger-priced history."""

import pytest

from repro.faults import GoodputLedger
from repro.replan import MigrationCostModel


class TestModel:
    def test_total_is_the_sum_of_components(self):
        model = MigrationCostModel(checkpoint_s=0.2, rebuild_s=1.0,
                                   warmup_s=0.3)
        assert model.total_s == pytest.approx(1.5)

    def test_negative_components_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            MigrationCostModel(checkpoint_s=-0.1, rebuild_s=1.0)

    def test_as_dict_includes_total(self):
        model = MigrationCostModel(checkpoint_s=0.25, rebuild_s=2.0)
        assert model.as_dict() == {
            "checkpoint_s": 0.25, "rebuild_s": 2.0, "warmup_s": 0.0,
            "total_s": 2.25,
        }


class TestFromLedger:
    def test_configured_charges_without_history(self):
        model = MigrationCostModel.from_ledger(
            GoodputLedger(), checkpoint_cost_s=0.25, restart_latency_s=2.0,
            warmup_s=0.1,
        )
        assert model.checkpoint_s == pytest.approx(0.25)
        assert model.rebuild_s == pytest.approx(2.0)
        assert model.warmup_s == pytest.approx(0.1)

    def test_realized_averages_beat_configured_constants(self):
        ledger = GoodputLedger()
        ledger.commit_step(0, 1.0)
        ledger.checkpoint(0.4)
        ledger.checkpoint(0.6)
        ledger.restart(3.0)
        model = MigrationCostModel.from_ledger(
            ledger, checkpoint_cost_s=0.25, restart_latency_s=2.0
        )
        # Averages of what the run actually paid, not the configuration.
        assert model.checkpoint_s == pytest.approx(0.5)
        assert model.rebuild_s == pytest.approx(3.0)

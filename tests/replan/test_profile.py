"""DegradationProfile: canonicalization, keys, evidence channels."""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.obs.health import Finding
from repro.replan import DegradationProfile


class TestCanonicalization:
    def test_max_factor_per_rank_sorted(self):
        profile = DegradationProfile(
            compute=((3, 2.0), (1, 4.0), (3, 6.0)), links=((2, 1.5),)
        )
        assert profile.compute == ((1, 4.0), (3, 6.0))
        assert profile.links == ((2, 1.5),)

    def test_unit_and_sub_unit_factors_dropped(self):
        profile = DegradationProfile(compute=((0, 1.0), (1, 0.5), (2, 2.0)))
        assert profile.compute == ((2, 2.0),)

    def test_lost_ranks_deduped_and_sorted(self):
        profile = DegradationProfile(lost_ranks=(5, 2, 5))
        assert profile.lost_ranks == (2, 5)

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError, match="remaining_steps"):
            DegradationProfile(remaining_steps=-1)

    def test_lookups_default_to_unity(self):
        profile = DegradationProfile(compute=((0, 2.0),), links=((1, 3.0),))
        assert profile.compute_factor(0) == 2.0
        assert profile.compute_factor(7) == 1.0
        assert profile.link_factor(1) == 3.0
        assert profile.link_factor(0) == 1.0


class TestKey:
    def test_clean_profile_has_empty_key(self):
        assert DegradationProfile().is_clean
        assert DegradationProfile().key() == ""
        # The historical cache-key shape: clean contributes nothing.
        assert DegradationProfile(compute=((0, 1.0),)).key() == ""

    def test_key_is_canonical(self):
        a = DegradationProfile(compute=((0, 2.0), (3, 4.0)), remaining_steps=5)
        b = DegradationProfile(compute=((3, 4.0), (0, 2.0), (0, 1.5)),
                               remaining_steps=5)
        assert a.key() == b.key() == "c0x2,c3x4,w5"

    def test_key_covers_every_axis(self):
        profile = DegradationProfile(
            compute=((0, 2.0),), links=((1, 3.0),), lost_ranks=(7,),
            remaining_steps=2,
        )
        assert profile.key() == "c0x2,l1x3,-7,w2"

    def test_as_dict(self):
        profile = DegradationProfile(compute=((0, 2.0),), remaining_steps=3)
        assert profile.as_dict() == {
            "compute": [[0, 2.0]], "links": [], "lost_ranks": [],
            "remaining_steps": 3,
        }


class TestFromInjector:
    PLAN = FaultPlan((
        FaultSpec(step=1, rank=2, kind=FaultKind.STRAGGLER,
                  factor=2.5, duration_steps=3),
        FaultSpec(step=2, rank=1, kind=FaultKind.LINK_DEGRADE,
                  factor=3.0, duration_steps=2),
    ))

    def drive(self, through_step):
        """Degradations fire lazily, on the first in-window event that
        touches the target rank — mimic a step's compute + comm."""
        injector = FaultInjector(self.PLAN, gpus_per_node=8)
        for step in range(through_step + 1):
            injector.begin_step(step)
            for rank in range(4):
                injector.on_compute(rank, 1.0, "block")
            injector.on_comm(tuple(range(4)), 1.0, "all_gather")
        return injector

    def test_before_anything_fires_profile_is_clean(self):
        injector = self.drive(0)
        assert DegradationProfile.from_injector(injector, 1).is_clean

    def test_inside_the_windows(self):
        injector = self.drive(2)
        profile = DegradationProfile.from_injector(injector, 3)
        assert profile.compute == ((2, 2.5),)
        assert profile.links == ((1, 3.0),)
        # straggler window 1..3 has 1 step left at step 3; the link
        # window 2..3 also ends after step 3 — max window wins.
        assert profile.remaining_steps == 1

    def test_after_the_windows_profile_is_clean(self):
        injector = self.drive(4)
        assert DegradationProfile.from_injector(injector, 5).is_clean


class TestFromFindings:
    def test_straggler_findings_become_compute_factors(self):
        findings = [
            Finding(category="straggler", severity="warning", message="m",
                    ranks=(3,), value=0.4, threshold=0.1),
            Finding(category="tp_imbalance", severity="info", message="m",
                    ranks=(0, 1), value=0.9, threshold=0.1),
        ]
        profile = DegradationProfile.from_findings(findings, remaining_steps=4)
        assert profile.compute == ((3, 1.4),)
        assert profile.links == ()
        assert profile.remaining_steps == 4

    def test_merged_takes_max_per_rank(self):
        seen = DegradationProfile(compute=((0, 2.0),), remaining_steps=2)
        estimated = DegradationProfile(compute=((0, 3.0), (1, 1.5)),
                                       remaining_steps=1)
        merged = seen.merged(estimated)
        assert merged.compute == ((0, 3.0), (1, 1.5))
        assert merged.remaining_steps == 2

"""Acceptance: the seeded demo scenario migrates and wins goodput.

Runs the full supervised demo twice — replan='off' and replan='on',
both under degradation-aware accounting — and checks the ISSUE's
acceptance bar: the adaptive run journals a switch with projected and
realized gain, ends on the better plan, and reaches strictly higher
``goodput_fraction()`` than the static run.
"""

import pytest

from repro.faults import Supervisor
from repro.replan.scenario import (
    DEMO_STEPS,
    DEMO_SUPERVISOR_KWARGS,
    demo_plan,
    demo_spec,
)


def supervise(tmp_path, replan: str):
    supervisor = Supervisor(
        demo_spec(replan=replan),
        demo_plan(),
        checkpoint_dir=tmp_path / replan,
        **DEMO_SUPERVISOR_KWARGS,
    )
    report = supervisor.run(DEMO_STEPS)
    return supervisor, report


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("replan-demo")
    return supervise(tmp_path, "off"), supervise(tmp_path, "on")


class TestAcceptance:
    def test_replan_on_beats_replan_off_goodput(self, runs):
        (off, _), (on, _) = runs
        assert on.ledger.goodput_fraction > off.ledger.goodput_fraction
        # The win comes from real walltime saved, not accounting games:
        # the adaptive run finishes the same 16 steps in less time.
        assert on.ledger.total_s < off.ledger.total_s

    def test_switch_event_journaled_with_projected_and_realized_gain(self, runs):
        _, (on, _) = runs
        events = [e for e in on.monitor.journal.events if e.kind == "replan"]
        by_category = {e.category for e in events}
        assert {"decision", "switch", "outcome"} <= by_category
        (switch,) = [e for e in events if e.category == "switch"]
        assert switch.data["projected_gain_s"] > 0
        assert switch.data["to"] == "tp2.f4.d2.mb4+pf"
        (outcome,) = [e for e in events if e.category == "outcome"]
        assert outcome.data["projected_gain_s"] > 0
        assert outcome.data["realized_gain_s"] > 0

    def test_run_ends_on_the_migrated_plan(self, runs):
        _, (on, on_report) = runs
        assert on_report.recovered
        assert on_report.steps_completed == DEMO_STEPS
        assert on_report.final_spec["grid"] == [2, 4, 2, 1]
        assert on_report.final_spec["micro_batch"] == 4
        switch_events = [e for e in on_report.events
                         if e.action == "plan_switch"]
        assert len(switch_events) == 1

    def test_migration_charged_to_the_replan_bucket(self, runs):
        (off, _), (on, _) = runs
        assert on.ledger.replans == 1
        assert on.ledger.replan_s > 0
        assert off.ledger.replans == 0
        assert off.ledger.replan_s == 0.0
        for ledger in (off.ledger, on.ledger):
            assert ledger.total_s == pytest.approx(
                ledger.useful_s + ledger.lost_s + ledger.checkpoint_s
                + ledger.replan_s
            )

    def test_degradation_aware_accounting_charges_the_window(self, runs):
        (off, _), (on, _) = runs
        # The static run eats the whole straggler window as degraded
        # excess; the adaptive run still pays for the pre-switch steps
        # and the (smaller) post-switch degradation.
        assert off.ledger.lost_degraded_s > on.ledger.lost_degraded_s > 0

    def test_off_run_journals_no_replan_events(self, runs):
        (off, _), _ = runs
        assert not any(e.kind == "replan"
                       for e in off.monitor.journal.events)

    def test_preserves_the_observation_stream(self, runs):
        (_, off_report), (_, on_report) = runs
        off_obs = [obs for obs, _ in off_report.history]
        on_obs = [obs for obs, _ in on_report.history]
        assert off_obs == on_obs

"""Tests for the Module base class, Parameter, and Sequential."""

import numpy as np
import pytest

from repro.meta import MetaArray
from repro.nn import Linear, Module, Parameter, Sequential


class TestParameter:
    def test_grad_accumulates(self):
        p = Parameter(np.zeros((2, 2)))
        p.add_grad(np.ones((2, 2)))
        p.add_grad(np.ones((2, 2)))
        np.testing.assert_array_equal(p.grad, 2 * np.ones((2, 2)))

    def test_zero_grad(self):
        p = Parameter(np.zeros(3))
        p.add_grad(np.ones(3))
        p.zero_grad()
        assert p.grad is None

    def test_shape_mismatch_rejected(self):
        p = Parameter(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            p.add_grad(np.ones((3, 2)))

    def test_meta_parameter(self):
        p = Parameter(MetaArray((4, 4)))
        assert p.is_meta
        p.add_grad(MetaArray((4, 4)))
        assert p.grad.shape == (4, 4)

    def test_grad_copy_does_not_alias(self):
        p = Parameter(np.zeros(2))
        g = np.ones(2)
        p.add_grad(g)
        g[0] = 99.0
        assert p.grad[0] == 1.0


class TestModuleRegistration:
    def test_named_parameters_depth_first(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.fc1 = Linear(2, 3, rng=0)
                self.fc2 = Linear(3, 2, rng=1)

        names = [n for n, _ in Net().named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_num_parameters(self):
        lin = Linear(4, 5, rng=0)
        assert lin.num_parameters() == 4 * 5 + 5
        assert lin.parameter_bytes() == (4 * 5 + 5) * 4

    def test_zero_grad_recursive(self):
        seq = Sequential([Linear(2, 2, rng=0), Linear(2, 2, rng=1)])
        x = np.ones((1, 2))
        seq.backward(np.ones((1, 2))) if False else None
        seq(x)
        seq.backward(np.ones((1, 2)))
        assert all(p.grad is not None for p in seq.parameters())
        seq.zero_grad()
        assert all(p.grad is None for p in seq.parameters())

    def test_named_modules(self):
        seq = Sequential([Linear(2, 2, rng=0)])
        names = [n for n, _ in seq.named_modules()]
        assert "" in names and "0" in names

    def test_register_module_type_checked(self):
        with pytest.raises(TypeError):
            Sequential([]).register_module("x", object())


class TestCacheDiscipline:
    def test_backward_without_forward_raises(self):
        lin = Linear(2, 2, rng=0)
        with pytest.raises(RuntimeError, match="without a cached forward"):
            lin.backward(np.ones((1, 2)))

    def test_backward_twice_raises(self):
        lin = Linear(2, 2, rng=0)
        lin(np.ones((1, 2)))
        lin.backward(np.ones((1, 2)))
        with pytest.raises(RuntimeError):
            lin.backward(np.ones((1, 2)))

    def test_clear_cache_recursive(self):
        seq = Sequential([Linear(2, 2, rng=0)])
        seq(np.ones((1, 2)))
        seq.clear_cache()
        with pytest.raises(RuntimeError):
            seq.backward(np.ones((1, 2)))


class TestStateDict:
    def test_roundtrip(self):
        a = Linear(3, 4, rng=0)
        b = Linear(3, 4, rng=99)
        b.load_state_dict(a.state_dict())
        x = np.random.default_rng(0).normal(size=(2, 3))
        np.testing.assert_array_equal(a(x), b(x))

    def test_state_dict_is_a_copy(self):
        lin = Linear(2, 2, rng=0)
        state = lin.state_dict()
        state["weight"][0, 0] = 123.0
        assert lin.weight.data[0, 0] != 123.0

    def test_missing_key_rejected(self):
        lin = Linear(2, 2, rng=0)
        state = lin.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            lin.load_state_dict(state)

    def test_unexpected_key_rejected(self):
        lin = Linear(2, 2, rng=0)
        state = lin.state_dict()
        state["extra"] = np.zeros(1)
        with pytest.raises(KeyError):
            lin.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        lin = Linear(2, 2, rng=0)
        state = lin.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            lin.load_state_dict(state)


class TestSequential:
    def test_forward_matches_manual_chain(self):
        l1, l2 = Linear(2, 3, rng=0), Linear(3, 2, rng=1)
        seq = Sequential([l1, l2])
        x = np.random.default_rng(1).normal(size=(4, 2))
        np.testing.assert_array_equal(seq(x), l2(l1(x)))

    def test_len_getitem(self):
        seq = Sequential([Linear(2, 2, rng=0), Linear(2, 2, rng=1)])
        assert len(seq) == 2
        assert isinstance(seq[1], Linear)

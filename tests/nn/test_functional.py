"""Gradient and semantics tests for the functional fwd/bwd pairs."""

import numpy as np
import pytest

from repro.meta import MetaArray, is_meta
from repro.nn import functional as F

from tests.nn.gradcheck import numerical_gradient


def _check_pair(fwd, x, extra_args=(), rtol=1e-6, atol=1e-9):
    """Gradcheck a (fwd, bwd) pair against finite differences."""
    rng = np.random.default_rng(0)
    y0, _ = fwd(x, *extra_args)
    probe = rng.normal(size=y0.shape)
    return y0, probe


class TestGelu:
    def test_known_values(self):
        y, _ = F.gelu_forward(np.array([0.0]))
        assert y[0] == 0.0
        y, _ = F.gelu_forward(np.array([100.0]))
        np.testing.assert_allclose(y[0], 100.0)  # gelu(x) -> x for large x
        y, _ = F.gelu_forward(np.array([-100.0]))
        np.testing.assert_allclose(y[0], 0.0, atol=1e-12)

    def test_gradcheck(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(4, 5))
        y, cache = F.gelu_forward(x)
        probe = rng.normal(size=y.shape)
        analytic = F.gelu_backward(cache, probe)

        def loss():
            out, _ = F.gelu_forward(x)
            return float(np.sum(out * probe))

        numerical = numerical_gradient(loss, x)
        np.testing.assert_allclose(analytic, numerical, rtol=1e-6, atol=1e-9)

    def test_meta_shapes(self):
        y, cache = F.gelu_forward(MetaArray((2, 3)))
        assert is_meta(y) and y.shape == (2, 3)
        g = F.gelu_backward(cache, MetaArray((2, 3)))
        assert g.shape == (2, 3)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(4)
        p, _ = F.softmax_forward(rng.normal(size=(3, 7)))
        np.testing.assert_allclose(p.sum(axis=-1), 1.0)

    def test_stable_for_large_logits(self):
        p, _ = F.softmax_forward(np.array([1e4, 1e4 + 1.0]))
        assert np.isfinite(p).all()
        np.testing.assert_allclose(p.sum(), 1.0)

    def test_gradcheck(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(3, 6))
        p, cache = F.softmax_forward(x)
        probe = rng.normal(size=p.shape)
        analytic = F.softmax_backward(cache, probe)

        def loss():
            out, _ = F.softmax_forward(x)
            return float(np.sum(out * probe))

        np.testing.assert_allclose(analytic, numerical_gradient(loss, x), rtol=1e-5, atol=1e-9)

    def test_grad_orthogonal_to_ones(self):
        # Softmax output is shift-invariant, so the gradient must have
        # zero component along the all-ones direction.
        rng = np.random.default_rng(6)
        x = rng.normal(size=(2, 5))
        p, cache = F.softmax_forward(x)
        g = F.softmax_backward(cache, rng.normal(size=p.shape))
        np.testing.assert_allclose(g.sum(axis=-1), 0.0, atol=1e-12)


class TestLayerNorm:
    def test_normalizes(self):
        rng = np.random.default_rng(7)
        xhat, _ = F.layernorm_forward(rng.normal(2.0, 3.0, size=(4, 16)))
        np.testing.assert_allclose(xhat.mean(axis=-1), 0.0, atol=1e-7)
        np.testing.assert_allclose(xhat.var(axis=-1), 1.0, rtol=1e-3)

    def test_gradcheck(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(3, 8))
        xhat, cache = F.layernorm_forward(x)
        probe = rng.normal(size=xhat.shape)
        analytic = F.layernorm_backward(cache, probe)

        def loss():
            out, _ = F.layernorm_forward(x)
            return float(np.sum(out * probe))

        np.testing.assert_allclose(analytic, numerical_gradient(loss, x), rtol=1e-4, atol=1e-8)


class TestAttention:
    def test_output_shape(self):
        rng = np.random.default_rng(9)
        q = rng.normal(size=(2, 3, 4, 5))
        k = rng.normal(size=(2, 3, 6, 5))
        v = rng.normal(size=(2, 3, 6, 5))
        out, _ = F.attention_forward(q, k, v, scale=5**-0.5)
        assert out.shape == (2, 3, 4, 5)

    def test_uniform_attention_averages_values(self):
        # Identical keys => uniform attention => output is the mean value.
        q = np.ones((1, 1, 1, 2))
        k = np.ones((1, 1, 4, 2))
        v = np.arange(8.0).reshape(1, 1, 4, 2)
        out, _ = F.attention_forward(q, k, v, scale=1.0)
        np.testing.assert_allclose(out[0, 0, 0], v[0, 0].mean(axis=0))

    def test_gradcheck_all_operands(self):
        rng = np.random.default_rng(10)
        q = rng.normal(size=(1, 2, 3, 4))
        k = rng.normal(size=(1, 2, 5, 4))
        v = rng.normal(size=(1, 2, 5, 4))
        scale = 4**-0.5
        out, cache = F.attention_forward(q, k, v, scale)
        probe = rng.normal(size=out.shape)
        gq, gk, gv = F.attention_backward(cache, probe)

        def loss():
            y, _ = F.attention_forward(q, k, v, scale)
            return float(np.sum(y * probe))

        np.testing.assert_allclose(gq, numerical_gradient(loss, q), rtol=1e-5, atol=1e-8)
        np.testing.assert_allclose(gk, numerical_gradient(loss, k), rtol=1e-5, atol=1e-8)
        np.testing.assert_allclose(gv, numerical_gradient(loss, v), rtol=1e-5, atol=1e-8)

    def test_meta_mode(self):
        q = MetaArray((2, 4, 8, 16))
        k = MetaArray((2, 4, 8, 16))
        v = MetaArray((2, 4, 8, 16))
        out, cache = F.attention_forward(q, k, v, scale=0.25)
        assert out.shape == (2, 4, 8, 16)
        gq, gk, gv = F.attention_backward(cache, MetaArray((2, 4, 8, 16)))
        assert gq.shape == q.shape and gk.shape == k.shape and gv.shape == v.shape

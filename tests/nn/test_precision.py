"""Tests for bfloat16 emulation and precision policies."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.meta import MetaArray
from repro.nn.precision import (
    BF16_MAX,
    BF16_MIXED,
    FP32,
    PrecisionPolicy,
    round_to_bfloat16,
)


def bf16_representable(x: np.ndarray) -> np.ndarray:
    """True where the float32 value has zero low-16 mantissa bits."""
    bits = np.ascontiguousarray(x, dtype=np.float32).view(np.uint32)
    return (bits & np.uint32(0xFFFF)) == 0


class TestRounding:
    def test_exact_values_unchanged(self):
        x = np.array([0.0, 1.0, -2.0, 0.5, 256.0], dtype=np.float32)
        np.testing.assert_array_equal(round_to_bfloat16(x), x)

    def test_output_always_representable(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=1000).astype(np.float32) * 10.0**rng.integers(-20, 20, 1000)
        out = round_to_bfloat16(x)
        assert bf16_representable(out).all()

    def test_relative_error_bounded(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=1000).astype(np.float32)
        out = round_to_bfloat16(x)
        rel = np.abs(out - x) / np.abs(x)
        assert rel.max() <= 2.0**-8  # half ULP of a 7-bit mantissa

    def test_idempotent(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=100).astype(np.float32)
        once = round_to_bfloat16(x)
        np.testing.assert_array_equal(round_to_bfloat16(once), once)

    def test_ties_round_to_even(self):
        # 1 + 2^-8 is exactly halfway between 1.0 and 1 + 2^-7:
        # round-to-even picks 1.0 (even mantissa).
        halfway = np.array([1.0 + 2.0**-8], dtype=np.float32)
        assert round_to_bfloat16(halfway)[0] == np.float32(1.0)
        # 1 + 3 * 2^-8 is halfway between 1+2^-7 and 1+2^-6: even is 1+2^-6.
        halfway_up = np.array([1.0 + 3 * 2.0**-8], dtype=np.float32)
        assert round_to_bfloat16(halfway_up)[0] == np.float32(1.0 + 2.0**-6)

    def test_infinities_preserved(self):
        x = np.array([np.inf, -np.inf], dtype=np.float32)
        np.testing.assert_array_equal(round_to_bfloat16(x), x)

    def test_nan_preserved(self):
        assert np.isnan(round_to_bfloat16(np.array([np.nan], dtype=np.float32)))[0]

    def test_overflow_to_inf(self):
        # Just above BF16_MAX rounds up past the largest finite bf16.
        over = np.array([BF16_MAX * (1 + 2.0**-8)], dtype=np.float32)
        assert np.isinf(round_to_bfloat16(over))[0]

    def test_scalar_input(self):
        out = round_to_bfloat16(np.float32(1.0 + 2.0**-12))
        assert np.ndim(out) == 0
        assert out == np.float32(1.0)

    def test_meta_input_changes_itemsize(self):
        out = round_to_bfloat16(MetaArray((4, 4), np.float32))
        assert out.dtype.itemsize == 2

    @given(st.floats(-1e30, 1e30, allow_nan=False))
    def test_property_rounding_is_nearest(self, value):
        value = float(np.float32(value))
        x = np.array([value], dtype=np.float32)
        out = round_to_bfloat16(x)[0]
        # Distance to the rounded value never exceeds one bf16 ULP.
        ulp = max(abs(value), 2.0**-126) * 2.0**-7
        assert abs(out - value) <= ulp


class TestPolicy:
    def test_fp32_cast_is_identity(self):
        x = np.array([1.0 + 2.0**-12], dtype=np.float32)
        assert FP32.cast(x) is x

    def test_bf16_cast_rounds(self):
        x = np.array([1.0 + 2.0**-12], dtype=np.float32)
        assert BF16_MIXED.cast(x)[0] == np.float32(1.0)

    def test_meta_dtype(self):
        assert FP32.meta_dtype.itemsize == 4
        assert BF16_MIXED.meta_dtype.itemsize == 2

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError):
            PrecisionPolicy("float16")

    def test_buffer_itemsize(self):
        assert FP32.buffer_itemsize == 4
        assert BF16_MIXED.buffer_itemsize == 2

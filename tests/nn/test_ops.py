"""Tests for the dispatching primitives in repro.nn.ops."""

import numpy as np
import pytest

from repro.meta import MetaArray, is_meta
from repro.nn import ops
from repro.nn.context import ExecutionContext, execution_context
from repro.nn.precision import BF16_MIXED


class TestMatmul:
    def test_real_matches_numpy(self):
        a = np.arange(6.0).reshape(2, 3)
        b = np.arange(12.0).reshape(3, 4)
        np.testing.assert_array_equal(ops.matmul(a, b), a @ b)

    def test_meta_shape(self):
        out = ops.matmul(MetaArray((5, 3)), MetaArray((3, 7)))
        assert is_meta(out) and out.shape == (5, 7)

    def test_batched_meta_shape(self):
        out = ops.matmul(MetaArray((2, 4, 5, 3)), MetaArray((3, 7)))
        assert out.shape == (2, 4, 5, 7)

    def test_flops_recorded(self):
        ctx = ExecutionContext()
        with execution_context(ctx):
            ops.matmul(np.ones((2, 3)), np.ones((3, 4)))
        assert ctx.flops == 2 * 2 * 4 * 3
        assert ctx.matmul_flops == ctx.flops

    def test_meta_flops_match_real(self):
        real, meta = ExecutionContext(), ExecutionContext()
        with execution_context(real):
            ops.matmul(np.ones((2, 8, 3)), np.ones((3, 4)))
        with execution_context(meta):
            ops.matmul(MetaArray((2, 8, 3)), MetaArray((3, 4)))
        assert real.flops == meta.flops

    def test_bf16_policy_rounds(self):
        a = np.array([[1.0 + 2.0**-12]], dtype=np.float32)
        b = np.array([[1.0]], dtype=np.float32)
        with execution_context(ExecutionContext(precision=BF16_MIXED)):
            out = ops.matmul(a, b)
        assert out[0, 0] == 1.0  # rounded away in bf16

    def test_bf16_policy_meta_itemsize(self):
        with execution_context(ExecutionContext(precision=BF16_MIXED)):
            out = ops.matmul(MetaArray((2, 2)), MetaArray((2, 2)))
        assert out.dtype.itemsize == 2


class TestElementwise:
    def test_binary_broadcast_real(self):
        out = ops.add(np.ones((2, 1)), np.ones((1, 3)))
        assert out.shape == (2, 3)

    def test_binary_broadcast_meta(self):
        out = ops.multiply(MetaArray((2, 1)), MetaArray((1, 3)))
        assert out.shape == (2, 3)

    def test_binary_meta_with_scalar(self):
        out = ops.divide(MetaArray((4,)), 2.0)
        assert out.shape == (4,)

    def test_unary_meta(self):
        assert ops.tanh(MetaArray((3, 3))).shape == (3, 3)

    def test_unary_flops(self):
        ctx = ExecutionContext()
        with execution_context(ctx):
            ops.exp(np.ones(7))
        assert ctx.flops == 7
        assert ctx.matmul_flops == 0

    def test_erf_matches_scipy(self):
        from scipy import special

        x = np.linspace(-2, 2, 5)
        np.testing.assert_allclose(ops.erf(x), special.erf(x))


class TestReductions:
    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, True), (-1, False), ((0, 1), True)])
    def test_meta_matches_numpy_shape(self, axis, keepdims):
        x = np.zeros((2, 3, 4))
        expected = np.sum(x, axis=axis, keepdims=keepdims).shape
        assert ops.sum_(MetaArray((2, 3, 4)), axis=axis, keepdims=keepdims).shape == expected

    def test_mean_real(self):
        np.testing.assert_allclose(ops.mean(np.arange(4.0)), 1.5)

    def test_amax_real(self):
        np.testing.assert_allclose(ops.amax(np.array([[1.0, 5.0], [3.0, 2.0]]), axis=-1), [5.0, 3.0])

    def test_var_real(self):
        x = np.arange(4.0)
        np.testing.assert_allclose(ops.var(x), x.var())


class TestShapeOps:
    def test_split_real_contiguous(self):
        parts = ops.split(np.arange(12.0).reshape(4, 3), 2, axis=0)
        assert len(parts) == 2 and parts[0].shape == (2, 3)
        assert parts[0].flags["C_CONTIGUOUS"]

    def test_split_meta(self):
        parts = ops.split(MetaArray((4, 6)), 3, axis=1)
        assert len(parts) == 3 and parts[0].shape == (4, 2)

    def test_split_indivisible_rejected(self):
        with pytest.raises(ValueError):
            ops.split(np.zeros((5, 2)), 2, axis=0)

    def test_concat_roundtrip(self):
        x = np.arange(12.0).reshape(4, 3)
        np.testing.assert_array_equal(ops.concat(ops.split(x, 2, axis=0), axis=0), x)

    def test_concat_meta(self):
        out = ops.concat([MetaArray((2, 3)), MetaArray((5, 3))], axis=0)
        assert out.shape == (7, 3)

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            ops.concat([])

    def test_swapaxes_meta(self):
        assert ops.swapaxes(MetaArray((2, 3, 4)), -1, -2).shape == (2, 4, 3)

    def test_broadcast_to_returns_writable_copy(self):
        out = ops.broadcast_to(np.ones((1, 3)), (4, 3))
        out[0, 0] = 5.0  # must not raise

    def test_broadcast_to_meta_validates(self):
        with pytest.raises(ValueError):
            ops.broadcast_to(MetaArray((2, 3)), (4, 5))

    def test_zeros_like_meta(self):
        out = ops.zeros_like(MetaArray((2, 2), np.float64))
        assert is_meta(out) and out.dtype == np.float64

    def test_zeros_meta_flag(self):
        assert is_meta(ops.zeros((2, 2), meta=True))
        assert not is_meta(ops.zeros((2, 2)))


class TestContextNesting:
    def test_nested_contexts_both_accumulate(self):
        outer, inner = ExecutionContext(), ExecutionContext()
        with execution_context(outer):
            ops.exp(np.ones(3))
            with execution_context(inner):
                ops.exp(np.ones(5))
        assert inner.flops == 5
        assert outer.flops == 8

    def test_no_context_is_fine(self):
        ops.exp(np.ones(3))  # must not raise

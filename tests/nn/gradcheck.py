"""Finite-difference gradient checking helpers for explicit-backprop modules."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


def numerical_gradient(loss_fn, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``loss_fn()`` w.r.t. ``array`` (mutated in place)."""
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = loss_fn()
        flat[i] = original - eps
        minus = loss_fn()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_module_gradients(
    module: Module,
    x: np.ndarray,
    forward=None,
    rtol: float = 1e-5,
    atol: float = 1e-7,
) -> None:
    """Verify ``module.backward`` against finite differences in float64.

    A random linear probe ``loss = sum(y * r)`` turns the vector output
    into a scalar; its analytic input/parameter gradients from
    ``backward(r)`` must match central differences of the loss.
    """
    rng = np.random.default_rng(0)
    run = forward if forward is not None else module.forward
    y0 = run(x)
    probe = rng.normal(size=y0.shape)

    def loss_fn() -> float:
        out = run(x)
        module.clear_cache()
        return float(np.sum(out * probe))

    # Analytic gradients.
    module.zero_grad()
    run(x)
    grad_x = module.backward(probe.copy())

    num_grad_x = numerical_gradient(loss_fn, x)
    np.testing.assert_allclose(grad_x, num_grad_x, rtol=rtol, atol=atol, err_msg="input gradient")

    for name, param in module.named_parameters():
        num_grad = numerical_gradient(loss_fn, param.data)
        np.testing.assert_allclose(
            param.grad,
            num_grad,
            rtol=rtol,
            atol=atol,
            err_msg=f"parameter gradient for {name}",
        )

"""Gradient checks and behaviour tests for every nn layer."""

import numpy as np
import pytest

from repro.meta import MetaArray, is_meta
from repro.nn import (
    CrossVariableAggregation,
    LayerNorm,
    LeadTimeEmbedding,
    Linear,
    MLP,
    MultiHeadAttention,
    PatchEmbedding,
    PositionalEmbedding,
    TransformerBlock,
    TransformerStack,
    VariableEmbedding,
)

from tests.nn.gradcheck import check_module_gradients

RNG = np.random.default_rng(42)


def randn(*shape):
    return RNG.normal(size=shape)  # float64 for tight gradcheck tolerances


class TestLinear:
    def test_gradcheck(self):
        lin = Linear(3, 4, rng=0, dtype=np.float64)
        check_module_gradients(lin, randn(5, 3))

    def test_gradcheck_batched_input(self):
        lin = Linear(3, 2, rng=1, dtype=np.float64)
        check_module_gradients(lin, randn(2, 4, 3))

    def test_no_bias(self):
        lin = Linear(3, 4, bias=False, rng=0, dtype=np.float64)
        assert lin.bias is None
        check_module_gradients(lin, randn(5, 3))

    def test_wrong_feature_dim_rejected(self):
        with pytest.raises(ValueError):
            Linear(3, 4, rng=0)(np.ones((2, 5)))

    def test_meta_forward_backward_shapes(self):
        lin = Linear(8, 16, meta=True)
        y = lin(MetaArray((4, 8)))
        assert y.shape == (4, 16)
        gx = lin.backward(MetaArray((4, 16)))
        assert gx.shape == (4, 8)
        assert lin.weight.grad.shape == (8, 16)

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            Linear(0, 4)


class TestLayerNorm:
    def test_gradcheck(self):
        ln = LayerNorm(6, dtype=np.float64)
        # Non-trivial affine so gamma gradients are exercised.
        ln.gamma.data = randn(6)
        ln.beta.data = randn(6)
        check_module_gradients(ln, randn(4, 6), rtol=1e-4, atol=1e-7)

    def test_output_statistics_with_default_affine(self):
        ln = LayerNorm(32, dtype=np.float64)
        y = ln(randn(8, 32) * 5 + 3)
        np.testing.assert_allclose(y.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(y.var(axis=-1), 1.0, rtol=1e-3)

    def test_wrong_dim_rejected(self):
        with pytest.raises(ValueError):
            LayerNorm(8)(np.ones((2, 4)))

    def test_meta_mode(self):
        ln = LayerNorm(8, meta=True)
        y = ln(MetaArray((2, 8)))
        assert y.shape == (2, 8)
        assert ln.backward(MetaArray((2, 8))).shape == (2, 8)


class TestMLP:
    def test_gradcheck(self):
        mlp = MLP(4, hidden_dim=6, rng=0, dtype=np.float64)
        check_module_gradients(mlp, randn(3, 4), rtol=1e-4, atol=1e-7)

    def test_default_hidden_is_4x(self):
        assert MLP(8, rng=0).hidden_dim == 32

    def test_meta_mode(self):
        mlp = MLP(8, meta=True)
        assert mlp(MetaArray((2, 8))).shape == (2, 8)
        assert mlp.backward(MetaArray((2, 8))).shape == (2, 8)


class TestMultiHeadAttention:
    @pytest.mark.parametrize("qk_layernorm", [False, True])
    def test_gradcheck(self, qk_layernorm):
        attn = MultiHeadAttention(6, 2, qk_layernorm=qk_layernorm, rng=0, dtype=np.float64)
        check_module_gradients(attn, randn(2, 3, 6), rtol=1e-4, atol=1e-7)

    def test_indivisible_heads_rejected(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(7, 2)

    def test_input_shape_validated(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(8, 2, rng=0)(np.ones((2, 8)))

    def test_meta_mode(self):
        attn = MultiHeadAttention(16, 4, qk_layernorm=True, meta=True)
        y = attn(MetaArray((2, 10, 16)))
        assert y.shape == (2, 10, 16)
        assert attn.backward(MetaArray((2, 10, 16))).shape == (2, 10, 16)

    def test_qk_layernorm_bounds_logits(self):
        # With QK-LN, q/k rows are unit-variance, so logits stay O(sqrt(d));
        # without it, scaling the input scales logits quadratically.
        x = randn(1, 8, 16) * 50.0
        plain = MultiHeadAttention(16, 2, qk_layernorm=False, rng=0, dtype=np.float64)
        normed = MultiHeadAttention(16, 2, qk_layernorm=True, rng=0, dtype=np.float64)
        assert normed.max_attention_logit(x) < plain.max_attention_logit(x)


class TestCrossVariableAggregation:
    def test_gradcheck(self):
        agg = CrossVariableAggregation(4, 2, rng=0, dtype=np.float64)
        check_module_gradients(agg, randn(2, 3, 2, 4), rtol=1e-4, atol=1e-7)

    def test_collapses_variable_axis(self):
        agg = CrossVariableAggregation(8, 2, rng=0)
        y = agg(np.random.default_rng(0).normal(size=(2, 5, 3, 8)).astype(np.float32))
        assert y.shape == (2, 3, 8)

    def test_meta_mode(self):
        agg = CrossVariableAggregation(8, 2, meta=True)
        y = agg(MetaArray((2, 5, 3, 8)))
        assert y.shape == (2, 3, 8)
        assert agg.backward(MetaArray((2, 3, 8))).shape == (2, 5, 3, 8)


class TestPatchEmbedding:
    def test_gradcheck(self):
        embed = PatchEmbedding(2, 4, 4, 2, 3, rng=0, dtype=np.float64)
        check_module_gradients(embed, randn(2, 2, 4, 4), rtol=1e-5, atol=1e-8)

    def test_token_shape(self):
        embed = PatchEmbedding(num_vars=5, img_height=8, img_width=16, patch_size=4, dim=12, rng=0)
        tokens = embed(np.zeros((3, 5, 8, 16), np.float32))
        assert tokens.shape == (3, 5, 8, 12)  # L = 2 * 4 = 8

    def test_patchify_unpatchify_roundtrip(self):
        embed = PatchEmbedding(1, 8, 8, 2, 4, rng=0)
        x = np.arange(64.0).reshape(1, 1, 8, 8)
        patches = embed.patchify(x)
        back = embed.unpatchify(patches, 1, 1)
        np.testing.assert_array_equal(back, x)

    def test_patchify_preserves_locality(self):
        # The first patch must contain exactly the top-left p x p block.
        embed = PatchEmbedding(1, 4, 4, 2, 4, rng=0)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        patches = embed.patchify(x)
        np.testing.assert_array_equal(patches[0, 0, 0], [0, 1, 4, 5])

    def test_indivisible_image_rejected(self):
        with pytest.raises(ValueError):
            PatchEmbedding(1, 5, 4, 2, 4)

    def test_meta_mode(self):
        embed = PatchEmbedding(91, 32, 64, 8, 16, meta=True)
        tokens = embed(MetaArray((2, 91, 32, 64)))
        assert tokens.shape == (2, 91, 32, 16)
        assert embed.backward(MetaArray((2, 91, 32, 16))).shape == (2, 91, 32, 64)


class TestSmallEmbeddings:
    def test_variable_embedding_gradcheck(self):
        ve = VariableEmbedding(3, 4, rng=0, dtype=np.float64)
        check_module_gradients(ve, randn(2, 3, 5, 4))

    def test_positional_embedding_gradcheck(self):
        pe = PositionalEmbedding(5, 4, rng=0, dtype=np.float64)
        check_module_gradients(pe, randn(2, 5, 4))

    def test_lead_time_embedding_changes_tokens(self):
        lte = LeadTimeEmbedding(8, rng=0)
        tokens = np.zeros((2, 3, 8), np.float32)
        day1 = lte(tokens, np.array([24.0, 24.0], np.float32))
        lte.clear_cache()
        day30 = lte(tokens, np.array([720.0, 720.0], np.float32))
        assert not np.allclose(day1, day30)

    def test_lead_time_embedding_backward(self):
        lte = LeadTimeEmbedding(4, rng=0, dtype=np.float64)
        tokens = randn(2, 3, 4)
        lte(tokens, np.array([24.0, 48.0]))
        grad = lte.backward(np.ones((2, 3, 4)))
        assert grad.shape == tokens.shape
        assert lte.proj.weight.grad is not None


class TestTransformer:
    def test_block_gradcheck(self):
        block = TransformerBlock(4, 2, mlp_ratio=2.0, rng=0, dtype=np.float64)
        check_module_gradients(block, randn(2, 3, 4), rtol=1e-4, atol=1e-7)

    def test_block_gradcheck_qk_layernorm(self):
        block = TransformerBlock(4, 2, mlp_ratio=2.0, qk_layernorm=True, rng=0, dtype=np.float64)
        check_module_gradients(block, randn(2, 3, 4), rtol=1e-4, atol=1e-7)

    def test_stack_gradcheck(self):
        stack = TransformerStack(4, depth=2, num_heads=2, mlp_ratio=2.0, rng=0, dtype=np.float64)
        check_module_gradients(stack, randn(1, 3, 4), rtol=1e-4, atol=1e-6)

    def test_stack_depth_validated(self):
        with pytest.raises(ValueError):
            TransformerStack(4, depth=0, num_heads=2)

    def test_meta_mode_stack(self):
        stack = TransformerStack(16, depth=3, num_heads=4, qk_layernorm=True, meta=True)
        y = stack(MetaArray((2, 8, 16)))
        assert is_meta(y) and y.shape == (2, 8, 16)
        assert stack.backward(MetaArray((2, 8, 16))).shape == (2, 8, 16)

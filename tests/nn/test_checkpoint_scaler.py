"""Tests for activation checkpointing and the dynamic gradient scaler."""

import numpy as np
import pytest

from repro.nn import (
    CheckpointWrapper,
    DynamicGradScaler,
    MLP,
    Parameter,
    TransformerBlock,
)


class TestCheckpointWrapper:
    def test_forward_matches_inner(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 8))
        plain = TransformerBlock(8, 2, rng=7, dtype=np.float64)
        wrapped = CheckpointWrapper(TransformerBlock(8, 2, rng=7, dtype=np.float64))
        np.testing.assert_allclose(plain(x), wrapped(x))

    def test_gradients_match_unwrapped(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 3, 8))
        grad_out = rng.normal(size=(2, 3, 8))
        plain = MLP(8, 16, rng=3, dtype=np.float64)
        wrapped = CheckpointWrapper(MLP(8, 16, rng=3, dtype=np.float64))

        plain(x)
        gx_plain = plain.backward(grad_out.copy())
        wrapped(x)
        gx_wrapped = wrapped.backward(grad_out.copy())

        np.testing.assert_allclose(gx_plain, gx_wrapped)
        for (name, p1), (_, p2) in zip(plain.named_parameters(), wrapped.inner.named_parameters()):
            np.testing.assert_allclose(p1.grad, p2.grad, err_msg=name)

    def test_inner_cache_dropped_after_forward(self):
        wrapped = CheckpointWrapper(MLP(4, 8, rng=0, dtype=np.float64))
        wrapped(np.ones((1, 4)))
        assert wrapped.inner._cache is None
        assert wrapped.inner.fc1._cache is None
        assert wrapped._cache is not None  # stores only the input

    def test_backward_without_forward_raises(self):
        wrapped = CheckpointWrapper(MLP(4, 8, rng=0))
        with pytest.raises(RuntimeError):
            wrapped.backward(np.ones((1, 4)))

    def test_recompute_factor(self):
        assert CheckpointWrapper(MLP(4, rng=0)).recompute_flops_factor == 1.0


class TestDynamicGradScaler:
    def _param_with_grad(self, grad_values):
        p = Parameter(np.zeros_like(np.asarray(grad_values, dtype=np.float64)))
        p.add_grad(np.asarray(grad_values, dtype=np.float64))
        return p

    def test_scale_applied_to_seed_grad(self):
        scaler = DynamicGradScaler(init_scale=8.0)
        np.testing.assert_allclose(scaler.scale_loss_grad(np.ones(3)), 8.0)

    def test_unscale_divides_in_place(self):
        scaler = DynamicGradScaler(init_scale=4.0)
        p = self._param_with_grad([8.0, 12.0])
        assert scaler.unscale_and_check([p])
        np.testing.assert_allclose(p.grad, [2.0, 3.0])

    def test_overflow_backs_off_and_skips(self):
        scaler = DynamicGradScaler(init_scale=1024.0, backoff_factor=0.5)
        p = self._param_with_grad([np.inf, 1.0])
        assert not scaler.unscale_and_check([p])
        assert scaler.scale == 512.0
        assert scaler.num_overflows == 1

    def test_nan_detected(self):
        scaler = DynamicGradScaler()
        p = self._param_with_grad([np.nan])
        assert not scaler.unscale_and_check([p])

    def test_growth_after_interval(self):
        scaler = DynamicGradScaler(init_scale=2.0, growth_factor=2.0, growth_interval=3)
        for _ in range(3):
            p = self._param_with_grad([1.0])
            assert scaler.unscale_and_check([p])
        assert scaler.scale == 4.0

    def test_overflow_resets_growth_streak(self):
        scaler = DynamicGradScaler(init_scale=2.0, growth_interval=2)
        scaler.unscale_and_check([self._param_with_grad([1.0])])
        scaler.unscale_and_check([self._param_with_grad([np.inf])])
        scaler.unscale_and_check([self._param_with_grad([1.0])])
        assert scaler.scale == 1.0  # backed off, no growth yet

    def test_min_scale_floor(self):
        scaler = DynamicGradScaler(init_scale=2.0, min_scale=1.0)
        for _ in range(5):
            scaler.unscale_and_check([self._param_with_grad([np.inf])])
        assert scaler.scale == 1.0

    def test_parameters_without_grad_skipped(self):
        scaler = DynamicGradScaler()
        p = Parameter(np.zeros(2))
        assert scaler.unscale_and_check([p])

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            DynamicGradScaler(init_scale=0.0)
        with pytest.raises(ValueError):
            DynamicGradScaler(growth_factor=1.0)
        with pytest.raises(ValueError):
            DynamicGradScaler(backoff_factor=1.5)

    def test_bf16_underflow_rescued_by_scaling(self):
        """The mechanism the paper describes: gradients below bf16's
        resolution relative to the loss scale survive when pre-scaled."""
        from repro.nn.precision import round_to_bfloat16

        tiny = np.float32(1e-42)  # subnormal; bf16 rounding flushes toward 0
        unscaled = round_to_bfloat16(np.array([tiny], dtype=np.float32))
        scaled = round_to_bfloat16(np.array([tiny * 2.0**16], dtype=np.float32))
        assert scaled[0] / 2.0**16 != 0.0
        assert scaled[0] / 2.0**16 == pytest.approx(float(tiny), rel=2**-7)

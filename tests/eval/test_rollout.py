"""Tests for autoregressive rollout forecasting."""

import numpy as np
import pytest

from repro.data import (
    BatchLoader,
    Climatology,
    LatLonGrid,
    Normalizer,
    SyntheticERA5,
    default_registry,
)
from repro.eval import ForecastEvaluator, ModelForecaster, PersistenceForecaster
from repro.eval.rollout import RolloutForecaster
from repro.models import OrbitConfig, build_model
from repro.train import AdamW, Trainer

GRID = LatLonGrid(8, 16)
NAMES = ["land_sea_mask", "2m_temperature", "temperature_850", "geopotential_500"]
REG = default_registry(91).subset(NAMES)


@pytest.fixture(scope="module")
def trained_world():
    era5 = SyntheticERA5(GRID, REG, steps_per_year=24, seed=13)
    train, test = era5.train(), era5.test()
    # Rollout needs all-channel prediction: out_names = all channels.
    for ds in (train, test):
        ds.out_names[:] = list(REG.names)
        ds._out_indices[:] = ds.system.registry.indices(list(REG.names))
    norm = Normalizer.fit(train, num_samples=16)
    config = OrbitConfig(
        "rollout-test", embed_dim=16, depth=1, num_heads=2,
        in_vars=len(NAMES), out_vars=len(NAMES),
        img_height=8, img_width=16, patch_size=4,
    )
    model = build_model(config, rng=1)
    loader = BatchLoader(train, 4, lead_steps_choices=(1,), normalizer=norm, seed=1)
    Trainer(model, loader.batches(10**9), GRID.latitude_weights(),
            AdamW(model.parameters(), lr=3e-3, weight_decay=0.0)).train(150)
    return era5, train, test, norm, model


class TestRollout:
    def test_forecast_shape(self, trained_world):
        _, _, test, norm, model = trained_world
        rollout = RolloutForecaster(model, norm)
        out = rollout.forecast(test, 0, lead_steps=2)
        assert out.shape == (len(NAMES), 8, 16)

    def test_static_channels_carried_over(self, trained_world):
        _, _, test, norm, model = trained_world
        rollout = RolloutForecaster(model, norm)
        out = rollout.forecast(test, 0, lead_steps=3)
        lsm_index = list(REG.names).index("land_sea_mask")
        np.testing.assert_allclose(
            out[lsm_index], test.snapshot(0)[lsm_index], rtol=1e-4, atol=1e-4
        )

    def test_one_application_matches_direct(self, trained_world):
        """A single rollout step is the direct forecast on dynamic channels
        (rollout pins statics to the initial condition by design)."""
        _, _, test, norm, model = trained_world
        rollout = RolloutForecaster(model, norm)
        direct = ModelForecaster(model, norm)
        dynamic = [i for i, v in enumerate(REG) if not v.is_static]
        np.testing.assert_allclose(
            rollout.forecast(test, 2, 1)[dynamic],
            direct.forecast(test, 2, 1)[dynamic],
            rtol=1e-5, atol=1e-4,
        )

    def test_rollout_has_skill_at_longer_lead(self, trained_world):
        _, train, test, norm, model = trained_world
        clim = Climatology.from_dataset(train, num_samples=48)
        evaluator = ForecastEvaluator(test, clim, num_initializations=4)
        rollout = RolloutForecaster(model, norm)
        score = evaluator.evaluate(rollout, lead_steps=2).mean_wacc()
        persistence = evaluator.evaluate(PersistenceForecaster(), lead_steps=2).mean_wacc()
        assert score > persistence - 0.1
        assert score > 0.2

    def test_indivisible_lead_rejected(self, trained_world):
        _, _, test, norm, model = trained_world
        rollout = RolloutForecaster(model, norm, base_lead_steps=2)
        with pytest.raises(ValueError):
            rollout.forecast(test, 0, lead_steps=3)

    def test_partial_channel_model_rejected(self, trained_world):
        _, _, test, norm, _ = trained_world
        partial_cfg = OrbitConfig(
            "partial", embed_dim=16, depth=1, num_heads=2,
            in_vars=len(NAMES), out_vars=2, img_height=8, img_width=16, patch_size=4,
        )
        partial = build_model(partial_cfg, rng=0)
        rollout = RolloutForecaster(partial, norm)
        with pytest.raises(ValueError):
            rollout.forecast(test, 0, lead_steps=2)

    def test_invalid_base_lead(self, trained_world):
        _, _, _, norm, model = trained_world
        with pytest.raises(ValueError):
            RolloutForecaster(model, norm, base_lead_steps=0)


class TestEngineCheckpointExport:
    def test_gathered_state_dict_loads_into_serial(self):
        from repro.cluster import VirtualCluster
        from repro.parallel import HybridParallelPlan, HybridSTOPEngine

        config = OrbitConfig(
            "export-test", embed_dim=16, depth=2, num_heads=2,
            in_vars=3, out_vars=3, img_height=8, img_width=8, patch_size=4,
        )
        cluster = VirtualCluster(num_gpus=4, gpus_per_node=8)
        plan = HybridParallelPlan(cluster, tp_size=2, fsdp_size=2)
        engine = HybridSTOPEngine(build_model(config, rng=77), plan)

        fresh = build_model(config, rng=0)
        fresh.load_state_dict(engine.gathered_state_dict())

        reference = build_model(config, rng=77)
        x = np.random.default_rng(0).normal(size=(1, 3, 8, 8)).astype(np.float32)
        lead = np.array([24.0], np.float32)
        np.testing.assert_allclose(fresh(x, lead), reference(x, lead), rtol=1e-5, atol=1e-6)

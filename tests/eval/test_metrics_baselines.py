"""Tests for wACC/wRMSE, the forecast harness, and baselines."""

import numpy as np
import pytest

from repro.data import (
    Climatology,
    LatLonGrid,
    Normalizer,
    SyntheticERA5,
    default_registry,
)
from repro.eval import (
    ClimatologyForecaster,
    FFTFilterForecaster,
    ForecastEvaluator,
    NumericalSurrogateForecaster,
    PersistenceForecaster,
    PUBLISHED_WACC,
    latitude_weighted_acc,
    latitude_weighted_rmse,
)

GRID = LatLonGrid(8, 16)
REG = default_registry(91).subset(
    ["land_sea_mask", "2m_temperature", "temperature_850", "geopotential_500",
     "10m_u_component_of_wind"]
)


@pytest.fixture(scope="module")
def era5():
    return SyntheticERA5(GRID, REG, steps_per_year=24)


@pytest.fixture(scope="module")
def evaluator(era5):
    clim = Climatology.from_dataset(era5.train(), num_samples=48)
    return ForecastEvaluator(era5.test(), clim, num_initializations=4)


class TestWACC:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.weights = GRID.latitude_weights()
        self.clim = rng.normal(size=(8, 16))
        self.truth = self.clim + rng.normal(size=(8, 16))

    def test_perfect_forecast_scores_one(self):
        acc = latitude_weighted_acc(self.truth, self.truth, self.clim, self.weights)
        assert acc == pytest.approx(1.0)

    def test_climatology_scores_zero(self):
        acc = latitude_weighted_acc(self.clim, self.truth, self.clim, self.weights)
        assert acc == pytest.approx(0.0, abs=1e-9)

    def test_anti_correlated_scores_minus_one(self):
        anti = 2 * self.clim - self.truth  # anomaly flipped in sign
        acc = latitude_weighted_acc(anti, self.truth, self.clim, self.weights)
        assert acc == pytest.approx(-1.0)

    def test_range_bounded(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            pred = self.clim + rng.normal(size=(8, 16))
            acc = latitude_weighted_acc(pred, self.truth, self.clim, self.weights)
            assert -1.0 - 1e-9 <= acc <= 1.0 + 1e-9

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            latitude_weighted_acc(np.zeros((4, 4)), np.zeros((8, 16)), self.clim, self.weights)


class TestWRMSE:
    def test_zero_for_perfect(self):
        x = np.random.default_rng(0).normal(size=(8, 16))
        assert latitude_weighted_rmse(x, x, GRID.latitude_weights()) == 0.0

    def test_constant_offset(self):
        x = np.zeros((8, 16))
        rmse = latitude_weighted_rmse(x + 2.0, x, GRID.latitude_weights())
        assert rmse == pytest.approx(2.0)


class TestBaselines:
    def test_climatology_forecaster_scores_near_zero(self, era5, evaluator):
        clim = Climatology.from_dataset(era5.train(), num_samples=48)
        scores = evaluator.evaluate(ClimatologyForecaster(clim), lead_steps=2)
        assert abs(scores.mean_wacc()) < 0.35

    def test_persistence_beats_climatology_at_short_lead(self, era5, evaluator):
        clim = Climatology.from_dataset(era5.train(), num_samples=48)
        persistence = evaluator.evaluate(PersistenceForecaster(), lead_steps=1)
        climatology = evaluator.evaluate(ClimatologyForecaster(clim), lead_steps=1)
        assert persistence.mean_wacc() > climatology.mean_wacc() + 0.2

    def test_persistence_skill_decays_with_lead(self, evaluator):
        short = evaluator.evaluate(PersistenceForecaster(), lead_steps=1)
        long = evaluator.evaluate(PersistenceForecaster(), lead_steps=8)
        assert short.mean_wacc() > long.mean_wacc()

    def test_numerical_surrogate_strong_at_short_lead(self, evaluator):
        scores = evaluator.evaluate(NumericalSurrogateForecaster(), lead_steps=1)
        assert scores.mean_wacc() > 0.9

    def test_numerical_surrogate_decays(self, evaluator):
        short = evaluator.evaluate(NumericalSurrogateForecaster(), lead_steps=1)
        long = evaluator.evaluate(NumericalSurrogateForecaster(), lead_steps=12)
        assert long.mean_wacc() < short.mean_wacc()

    def test_fft_forecaster_beats_persistence(self, era5, evaluator):
        clim = Climatology.from_dataset(era5.train(), num_samples=48)
        fft = FFTFilterForecaster(era5.train(), clim, num_fit_samples=16)
        lead = 4
        fft_scores = evaluator.evaluate(fft, lead_steps=lead)
        persistence = evaluator.evaluate(PersistenceForecaster(), lead_steps=lead)
        assert fft_scores.mean_wacc() > persistence.mean_wacc()

    def test_scores_structure(self, evaluator):
        scores = evaluator.evaluate(PersistenceForecaster(), lead_steps=2)
        assert set(scores.wacc) == set(evaluator.dataset.out_names)
        assert scores.lead_days == 0.5
        assert all(v >= 0 for v in scores.wrmse.values())

    def test_evaluate_many(self, evaluator):
        results = evaluator.evaluate_many({"persistence": PersistenceForecaster()}, [1, 2])
        assert set(results["persistence"]) == {1, 2}


class TestReferenceTable:
    def test_models_and_variables_present(self):
        assert set(PUBLISHED_WACC) == {"ORBIT-115M", "ClimaX", "Stormer", "FourCastNet", "IFS"}
        for scores in PUBLISHED_WACC.values():
            assert set(scores) == {
                "geopotential_500", "temperature_850", "2m_temperature",
                "10m_u_component_of_wind",
            }

    def test_unavailable_leads_marked_none(self):
        assert PUBLISHED_WACC["Stormer"]["geopotential_500"][30] is None
        assert PUBLISHED_WACC["FourCastNet"]["geopotential_500"][14] is None

    def test_orbit_wins_at_long_leads(self):
        """The paper's headline: ORBIT >= ClimaX at 30 days, every variable."""
        for var, scores in PUBLISHED_WACC["ORBIT-115M"].items():
            assert scores[30] >= PUBLISHED_WACC["ClimaX"][var][30]

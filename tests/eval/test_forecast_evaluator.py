"""ForecastEvaluator.evaluate_many and rollout buffer-safety.

The serving stack leans on two contracts introduced with it:
``evaluate_many`` (one evaluator pass over a forecaster zoo) and
``RolloutForecaster.advance`` never writing the model's returned
buffer (a model handing back a cached array must keep it intact).
"""

import numpy as np
import pytest

from repro.data import (
    Climatology,
    LatLonGrid,
    Normalizer,
    SyntheticERA5,
    default_registry,
)
from repro.eval import ForecastEvaluator, PersistenceForecaster
from repro.eval.forecast import LeadTimeScores
from repro.eval.rollout import RolloutForecaster
from repro.models import OrbitConfig, build_model

GRID = LatLonGrid(8, 16)
NAMES = ["land_sea_mask", "2m_temperature", "temperature_850",
         "geopotential_500"]
REG = default_registry(91).subset(NAMES)


@pytest.fixture(scope="module")
def world():
    era5 = SyntheticERA5(GRID, REG, steps_per_year=24, seed=5)
    train, test = era5.train(), era5.test()
    for ds in (train, test):
        ds.out_names[:] = list(REG.names)
        ds._out_indices[:] = ds.system.registry.indices(list(REG.names))
    norm = Normalizer.fit(train, num_samples=16)
    clim = Climatology.from_dataset(train, num_samples=24)
    model = build_model(
        OrbitConfig("eval-many", embed_dim=16, depth=1, num_heads=2,
                    in_vars=len(NAMES), out_vars=len(NAMES),
                    img_height=8, img_width=16, patch_size=4),
        rng=3,
    )
    return test, norm, clim, model


class TestEvaluateMany:
    def test_nested_structure(self, world):
        test, norm, clim, model = world
        evaluator = ForecastEvaluator(test, clim, num_initializations=2)
        results = evaluator.evaluate_many(
            {"rollout": RolloutForecaster(model, norm),
             "persistence": PersistenceForecaster()},
            lead_steps_list=(1, 2),
        )
        assert set(results) == {"rollout", "persistence"}
        for per_lead in results.values():
            assert set(per_lead) == {1, 2}
            for lead, scores in per_lead.items():
                assert isinstance(scores, LeadTimeScores)
                assert scores.lead_steps == lead
                assert set(scores.wacc) == set(NAMES)
                assert set(scores.wrmse) == set(NAMES)

    def test_matches_individual_evaluate(self, world):
        test, norm, clim, model = world
        evaluator = ForecastEvaluator(test, clim, num_initializations=2)
        forecaster = PersistenceForecaster()
        many = evaluator.evaluate_many({"p": forecaster}, (2,))["p"][2]
        single = evaluator.evaluate(forecaster, 2)
        assert many.wacc == single.wacc
        assert many.wrmse == single.wrmse

    def test_empty_zoo_gives_empty_results(self, world):
        test, _, clim, _ = world
        evaluator = ForecastEvaluator(test, clim, num_initializations=2)
        assert evaluator.evaluate_many({}, (1,)) == {}


class _SharedBufferModel:
    """Returns the same array object on every call (no clear_cache) —
    the shape of model that made in-place mutation in the rollout a
    real bug."""

    def __init__(self, model):
        self._model = model
        self._buffer = None
        self.calls = 0

    def __call__(self, x, lead_hours):
        self.calls += 1
        out = self._model(x, lead_hours)
        if self._buffer is None:
            self._buffer = np.array(out)
        else:
            self._buffer[...] = out
        return self._buffer


class TestRolloutBufferSafety:
    def test_advance_never_writes_the_models_buffer(self, world):
        from repro.data.synthetic import HOURS_PER_STEP

        test, norm, _, model = world
        shared = _SharedBufferModel(model)
        rollout = RolloutForecaster(shared, norm)
        static = test.registry.static_indices
        state = rollout.initial_state(test, 0)
        result = rollout.advance(state, static)
        # The returned state is a fresh array with statics pinned ...
        assert result.base is not shared._buffer
        np.testing.assert_array_equal(result[static], state[static])
        # ... while the model's own buffer still holds raw model output
        # (pinning went to a copy, not to the shared buffer).
        raw = model(
            state[None].astype(np.float32),
            np.asarray([HOURS_PER_STEP], np.float32),
        )
        np.testing.assert_array_equal(shared._buffer, raw)

    def test_forecast_identical_with_shared_buffer_model(self, world):
        """Rolling out through a buffer-reusing model must equal rolling
        out through the plain model — proof advance copies before
        pinning statics."""
        test, norm, _, model = world
        plain = RolloutForecaster(model, norm).forecast(test, 0, 3)
        shared = RolloutForecaster(_SharedBufferModel(model), norm).forecast(
            test, 0, 3
        )
        np.testing.assert_array_equal(plain, shared)

    def test_model_without_clear_cache_is_tolerated(self, world):
        test, norm, _, model = world
        shared = _SharedBufferModel(model)
        assert not hasattr(shared, "clear_cache")
        out = RolloutForecaster(shared, norm).forecast(test, 0, 2)
        assert out.shape == (len(NAMES), 8, 16)

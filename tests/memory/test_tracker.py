"""Tests for the per-device memory tracker and simulated OOM."""

import pytest

from repro.memory import MemoryTracker, OutOfDeviceMemoryError


class TestAllocateFree:
    def test_current_and_peak(self):
        tracker = MemoryTracker(1000)
        a = tracker.allocate(400, "params")
        b = tracker.allocate(300, "activations")
        assert tracker.current_bytes == 700
        assert tracker.peak_bytes == 700
        tracker.free(a)
        assert tracker.current_bytes == 300
        assert tracker.peak_bytes == 700
        tracker.free(b)
        assert tracker.current_bytes == 0
        assert tracker.live_allocations == 0

    def test_peak_tracks_interleaved_lifetimes(self):
        tracker = MemoryTracker(None)
        a = tracker.allocate(100)
        tracker.free(a)
        b = tracker.allocate(60)
        c = tracker.allocate(30)
        assert tracker.peak_bytes == 100  # first allocation was the high-water mark
        tracker.free(b)
        tracker.free(c)

    def test_double_free_raises(self):
        tracker = MemoryTracker(None)
        a = tracker.allocate(10)
        tracker.free(a)
        with pytest.raises(KeyError):
            tracker.free(a)

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            MemoryTracker(None).allocate(-1)

    def test_zero_byte_allocation_ok(self):
        tracker = MemoryTracker(0)
        a = tracker.allocate(0)
        tracker.free(a)


class TestOOM:
    def test_oom_raised_at_capacity(self):
        tracker = MemoryTracker(100, name="gpu3")
        tracker.allocate(80)
        with pytest.raises(OutOfDeviceMemoryError) as excinfo:
            tracker.allocate(21)
        assert excinfo.value.device == "gpu3"
        assert excinfo.value.requested == 21
        assert excinfo.value.in_use == 80

    def test_exact_fit_allowed(self):
        tracker = MemoryTracker(100)
        tracker.allocate(100)
        assert tracker.current_bytes == 100

    def test_unlimited_tracker_never_ooms(self):
        tracker = MemoryTracker(None)
        tracker.allocate(10**18)

    def test_failed_allocation_does_not_leak(self):
        tracker = MemoryTracker(100)
        tracker.allocate(90)
        with pytest.raises(OutOfDeviceMemoryError):
            tracker.allocate(50)
        assert tracker.current_bytes == 90
        assert tracker.live_allocations == 1


class TestCategories:
    def test_category_peaks_are_independent(self):
        tracker = MemoryTracker(None)
        p = tracker.allocate(100, "params.layer0")
        tracker.allocate(50, "activations")
        tracker.free(p)
        tracker.allocate(30, "params.layer1")
        assert tracker.category_peak("params") == 100
        assert tracker.category_current("params") == 30
        assert tracker.category_peak("activations") == 50

    def test_breakdown_omits_zero(self):
        tracker = MemoryTracker(None)
        a = tracker.allocate(10, "x")
        tracker.allocate(20, "y")
        tracker.free(a)
        assert tracker.breakdown() == {"y": 20}


class TestScopedAndReset:
    def test_scoped_frees_on_exit(self):
        tracker = MemoryTracker(None)
        with tracker.scoped(64, "gathered"):
            assert tracker.current_bytes == 64
        assert tracker.current_bytes == 0
        assert tracker.peak_bytes == 64

    def test_scoped_frees_on_exception(self):
        tracker = MemoryTracker(None)
        with pytest.raises(RuntimeError):
            with tracker.scoped(64):
                raise RuntimeError("boom")
        assert tracker.current_bytes == 0

    def test_reset_peak(self):
        tracker = MemoryTracker(None)
        a = tracker.allocate(100)
        tracker.free(a)
        tracker.allocate(10)
        tracker.reset_peak()
        assert tracker.peak_bytes == 10

    def test_free_all(self):
        tracker = MemoryTracker(None)
        tracker.allocate(10, "a")
        tracker.allocate(20, "b")
        tracker.free_all()
        assert tracker.current_bytes == 0
        assert tracker.live_allocations == 0
        assert tracker.breakdown() == {}

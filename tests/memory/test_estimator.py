"""Tests for the analytic memory model (drives Fig 5 / Fig 6 / Table I)."""

import dataclasses

import pytest

from repro.memory import MemoryModel, Parallelism, TrainingSetup
from repro.models import ORBIT_113B, ORBIT_10B, PROXY_MODELS


@pytest.fixture(scope="module")
def model():
    return MemoryModel()


class TestComponents:
    def test_components_sum_to_total(self, model):
        setup = model.default_setup(Parallelism.HYBRID_STOP, ORBIT_113B, 512)
        comps = model.components(setup)
        assert sum(comps.values()) == pytest.approx(model.per_gpu_bytes(setup))

    def test_bf16_halves_buffers(self, model):
        setup = model.default_setup(Parallelism.HYBRID_STOP, ORBIT_113B, 512)
        fp32 = dataclasses.replace(setup, bf16=False)
        c16 = model.components(setup)
        c32 = model.components(fp32)
        assert c32["front_activations"] == 2 * c16["front_activations"]
        assert c32["gathered_params"] == 2 * c16["gathered_params"]

    def test_checkpointing_reduces_trunk_activations(self, model):
        setup = model.default_setup(Parallelism.HYBRID_STOP, ORBIT_113B, 512)
        no_ckpt = dataclasses.replace(setup, activation_checkpointing=False)
        assert (
            model.components(setup)["trunk_activations"]
            < model.components(no_ckpt)["trunk_activations"]
        )

    def test_layer_wrapping_reduces_gathered(self, model):
        setup = model.default_setup(Parallelism.HYBRID_STOP, ORBIT_113B, 512)
        unwrapped = dataclasses.replace(setup, layer_wrapping=False)
        assert (
            model.components(setup)["gathered_params"]
            < model.components(unwrapped)["gathered_params"]
        )

    def test_more_channels_cost_more(self, model):
        """The 91-channel memory pressure of Fig 7b."""
        s48 = model.default_setup(Parallelism.HYBRID_STOP, ORBIT_113B, 512)
        s91 = dataclasses.replace(s48, config=ORBIT_113B.with_channels(91))
        assert model.per_gpu_bytes(s91) > model.per_gpu_bytes(s48)

    def test_tensor_and_ddp_have_no_gathered(self, model):
        for par in (Parallelism.TENSOR, Parallelism.DDP):
            setup = model.default_setup(par, PROXY_MODELS["proxy-115m"], 8)
            assert model.components(setup)["gathered_params"] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingSetup(ORBIT_10B, 4, Parallelism.HYBRID_STOP, tp_size=4, fsdp_size=4)
        with pytest.raises(ValueError):
            TrainingSetup(ORBIT_10B, 0, Parallelism.DDP)


class TestFig5Anchors:
    """Calibration anchors from paper Fig 5 (512 GPUs, batch 2, 48 ch)."""

    def test_fsdp_caps_near_20b(self, model):
        params, _ = model.max_model_size(Parallelism.FSDP, 512, ORBIT_113B)
        assert 15e9 < params < 30e9

    def test_tensor_caps_below_hybrid(self, model):
        tensor, _ = model.max_model_size(Parallelism.TENSOR, 512, ORBIT_113B)
        hybrid, _ = model.max_model_size(Parallelism.HYBRID_STOP, 512, ORBIT_113B)
        assert 55e9 < tensor <= 110e9
        assert 130e9 < hybrid <= 200e9
        assert hybrid > tensor

    def test_ordering_at_every_scale(self, model):
        for num_gpus in (8, 64, 512):
            fsdp, _ = model.max_model_size(Parallelism.FSDP, num_gpus, ORBIT_113B)
            tensor, _ = model.max_model_size(Parallelism.TENSOR, num_gpus, ORBIT_113B)
            hybrid, _ = model.max_model_size(Parallelism.HYBRID_STOP, num_gpus, ORBIT_113B)
            assert hybrid >= max(tensor, fsdp)
        # Past the 64-GPU point tensor parallelism also beats FSDP (Fig 5).
        fsdp, _ = model.max_model_size(Parallelism.FSDP, 512, ORBIT_113B)
        tensor, _ = model.max_model_size(Parallelism.TENSOR, 512, ORBIT_113B)
        assert tensor > fsdp

    def test_single_gpu_parity(self, model):
        """At one GPU no scheme has an advantage (Fig 5 leftmost points)."""
        caps = [
            model.max_model_size(par, 1, ORBIT_113B)[0]
            for par in (Parallelism.FSDP, Parallelism.TENSOR, Parallelism.HYBRID_STOP)
        ]
        assert max(caps) < 2.0 * min(caps)

    def test_hybrid_grows_with_gpus(self, model):
        sizes = [
            model.max_model_size(Parallelism.HYBRID_STOP, n, ORBIT_113B)[0]
            for n in (8, 64, 512)
        ]
        assert sizes == sorted(sizes)
        assert sizes[-1] > 5 * sizes[0]

    def test_tensor_saturates_at_head_count(self, model):
        """Beyond num_heads GPUs, plain TP gains nothing (the Fig 5 plateau)."""
        at_heads, _ = model.max_model_size(Parallelism.TENSOR, 64, ORBIT_113B)
        beyond, _ = model.max_model_size(Parallelism.TENSOR, 512, ORBIT_113B)
        assert beyond == at_heads


class TestFig6Anchors:
    def test_fsdp_alone_ooms_at_113b(self, model):
        """Fig 6: FSDP alone (K=1) runs out of memory for 113B."""
        setup = TrainingSetup(
            ORBIT_113B, 512, Parallelism.HYBRID_STOP, tp_size=1, fsdp_size=512, micro_batch=3
        )
        assert not model.fits(setup)

    def test_balanced_hybrid_fits_113b(self, model):
        setup = TrainingSetup(
            ORBIT_113B, 512, Parallelism.HYBRID_STOP, tp_size=8, fsdp_size=64, micro_batch=3
        )
        assert model.fits(setup)

    def test_memory_increases_with_fsdp_share(self, model):
        """Fig 6b: memory mildly increases as FSDP grows / TP shrinks."""
        mems = []
        for tp in (256, 64, 8, 2):
            setup = TrainingSetup(
                ORBIT_113B, 512, Parallelism.HYBRID_STOP,
                tp_size=tp, fsdp_size=512 // tp, micro_batch=2,
            )
            mems.append(model.per_gpu_bytes(setup))
        assert mems == sorted(mems)
        assert mems[-1] < 1.5 * mems[0]  # "mild" increase


class TestCrossValidationWithEngine:
    def test_persistent_share_matches_engine(self):
        """The estimator's persistent-state sharding matches what the real
        engine allocates for trunk shards (same 1/(K*F) scaling)."""
        import numpy as np

        from repro.cluster import VirtualCluster
        from repro.core import HybridSTOPTrunk
        from repro.nn.transformer import TransformerStack
        from repro.parallel import HybridParallelPlan

        cluster = VirtualCluster(num_gpus=4, gpus_per_node=8)
        plan = HybridParallelPlan(cluster, tp_size=2, fsdp_size=2)
        serial = TransformerStack(16, 2, 2, rng=0, dtype=np.float32)
        total_bytes = sum(p.data.nbytes for p in serial.parameters())
        HybridSTOPTrunk(serial, plan)
        engine_per_gpu = cluster.device(0).memory.category_current("params")
        # Each device holds ~1/(K*F) of the trunk (padding adds slack).
        assert engine_per_gpu == pytest.approx(total_bytes / 4, rel=0.05)


class TestPipelineExtension:
    """Sec II's pipeline-parallelism limitation, in the memory model."""

    def test_pipeline_plateaus_at_layer_count(self, model):
        """Beyond one stage per layer, extra GPUs buy nothing."""
        at_depth, _ = model.max_model_size(Parallelism.PIPELINE, 64, ORBIT_113B)
        beyond, _ = model.max_model_size(Parallelism.PIPELINE, 512, ORBIT_113B)
        far_beyond, _ = model.max_model_size(Parallelism.PIPELINE, 4096, ORBIT_113B)
        assert at_depth == beyond == far_beyond

    def test_hybrid_overtakes_pipeline_at_scale(self, model):
        pipeline, _ = model.max_model_size(Parallelism.PIPELINE, 512, ORBIT_113B)
        hybrid, _ = model.max_model_size(Parallelism.HYBRID_STOP, 512, ORBIT_113B)
        assert hybrid > 1.5 * pipeline

    def test_pipeline_stage_memory_scales_with_stages(self, model):
        two = TrainingSetup(ORBIT_10B, 8, Parallelism.PIPELINE, tp_size=2)
        eight = TrainingSetup(ORBIT_10B, 8, Parallelism.PIPELINE, tp_size=8)
        assert model.per_gpu_bytes(eight) < model.per_gpu_bytes(two)

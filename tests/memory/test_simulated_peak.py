"""Consistency between the closed-form memory model and the trackers.

``MemoryModel.simulated_peak_bytes`` predicts what the meta-mode
engine's per-device memory trackers will record (fp32 parameter shards
+ replicated dense parameters + the transient gathered layer).  These
tests run the real engine and hold the prediction to the observed
high-watermark within 15% — in practice the formula is exact, so the
band is pure safety margin against future engine allocation changes.
"""

import pytest

from repro.cluster import VirtualCluster
from repro.memory.estimator import MemoryModel, Parallelism, TrainingSetup
from repro.meta import MetaArray
from repro.models import PAPER_MODELS, build_model
from repro.parallel import HybridParallelPlan, HybridSTOPEngine
from repro.parallel.compute import PeakFractionCompute


def _observed_peak(config, num_gpus, tp, fsdp, ddp, micro_batch):
    cluster = VirtualCluster(num_gpus=num_gpus, gpus_per_node=8)
    plan = HybridParallelPlan(cluster, tp_size=tp, fsdp_size=fsdp, ddp_size=ddp)
    engine = HybridSTOPEngine(
        build_model(config, meta=True), plan,
        compute_model=PeakFractionCompute(cluster),
    )
    x = MetaArray((micro_batch, config.in_vars, config.img_height, config.img_width))
    lead = MetaArray((micro_batch,))
    ys = engine.forward(
        [[x] * fsdp for _ in range(ddp)], [[lead] * fsdp for _ in range(ddp)]
    )
    engine.backward(
        [[MetaArray(ys[d][f].shape) for f in range(fsdp)] for d in range(ddp)]
    )
    engine.allreduce_gradients()
    return max(
        cluster.device(rank).memory.peak_bytes for rank in range(num_gpus)
    )


@pytest.mark.parametrize("model,num_gpus,tp,fsdp,ddp", [
    ("orbit-115m", 16, 4, 2, 2),
    ("orbit-115m", 16, 8, 2, 1),
    ("orbit-1b", 32, 8, 4, 1),
], ids=["115m-2n", "115m-tp8", "1b-4n"])
def test_predicted_within_15pct_of_tracker(model, num_gpus, tp, fsdp, ddp):
    config = PAPER_MODELS[model]
    setup = TrainingSetup(
        config, num_gpus, Parallelism.HYBRID_STOP,
        tp_size=tp, fsdp_size=fsdp, micro_batch=2,
    )
    predicted = MemoryModel().simulated_peak_bytes(setup)
    observed = _observed_peak(config, num_gpus, tp, fsdp, ddp, micro_batch=2)
    assert predicted == pytest.approx(observed, rel=0.15)


def test_non_hybrid_setups_rejected():
    setup = TrainingSetup(PAPER_MODELS["orbit-115m"], 16, Parallelism.FSDP,
                          fsdp_size=16)
    with pytest.raises(ValueError, match="Hybrid-STOP"):
        MemoryModel().simulated_peak_bytes(setup)

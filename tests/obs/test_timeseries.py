"""Timeseries substrate: streaming stats, P² quantiles, JSONL round-trip."""

import math
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import P2Quantile, Series, StreamingStats, TimeseriesStore
from repro.obs.timeseries import TIMESERIES_SCHEMA, load_timeseries

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


class TestStreamingStats:
    def test_welford_matches_statistics_module(self):
        values = [3.0, 1.5, 4.25, -2.0, 0.5, 9.0]
        s = StreamingStats()
        for v in values:
            s.update(v)
        assert s.count == len(values)
        assert s.mean == pytest.approx(statistics.fmean(values))
        assert s.variance == pytest.approx(statistics.pvariance(values))
        assert s.minimum == min(values) and s.maximum == max(values)
        assert s.last == values[-1]

    def test_constant_series_has_zero_spread(self):
        s = StreamingStats()
        for _ in range(50):
            s.update(1.25)
        assert s.ewma == 1.25
        assert s.ewstd == 0.0
        assert s.std == 0.0

    def test_ewma_tracks_recent_regime(self):
        s = StreamingStats(alpha=0.5)
        for _ in range(20):
            s.update(1.0)
        for _ in range(20):
            s.update(10.0)
        # The EW mean has converged to the new regime; the exact mean
        # still remembers the old one.
        assert s.ewma == pytest.approx(10.0, abs=1e-3)
        assert s.mean == pytest.approx(5.5)

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            StreamingStats(alpha=0.0)
        with pytest.raises(ValueError):
            StreamingStats(alpha=1.5)

    @given(st.lists(finite, min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_welford_agrees_with_batch_formulas(self, values):
        s = StreamingStats()
        for v in values:
            s.update(v)
        assert s.mean == pytest.approx(statistics.fmean(values), rel=1e-9, abs=1e-9)
        assert s.variance >= -1e-12


class TestP2Quantile:
    def test_exact_under_five_samples(self):
        q = P2Quantile(0.5)
        assert math.isnan(q.value)
        q.update(5.0)
        assert q.value == 5.0
        q.update(1.0)
        q.update(3.0)
        assert q.value == 3.0  # exact median of {1, 3, 5}

    def test_median_estimate_on_uniform_ramp(self):
        q = P2Quantile(0.5)
        for i in range(1, 201):
            q.update(float(i))
        assert q.value == pytest.approx(100.0, rel=0.1)

    def test_p95_estimate_on_uniform_ramp(self):
        q = P2Quantile(0.95)
        for i in range(1, 201):
            q.update(float(i))
        assert q.value == pytest.approx(190.0, rel=0.1)

    def test_quantile_validated(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    @given(st.lists(finite, min_size=5, max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_estimate_stays_within_observed_range(self, values):
        q = P2Quantile(0.5)
        for v in values:
            q.update(v)
        assert min(values) - 1e-9 <= q.value <= max(values) + 1e-9


class TestSeries:
    def test_ring_buffer_bounds_raw_points(self):
        series = Series("m", capacity=4, rollup_every=2)
        for step in range(10):
            series.append(step, float(step))
        assert len(series.raw) == 4
        assert [p[0] for p in series.raw] == [6, 7, 8, 9]
        # Every point still landed in a rollup bucket.
        assert sum(b[0] for b in series.rollups.values()) == 10

    def test_rollup_buckets_carry_count_sum_min_max(self):
        series = Series("m", capacity=8, rollup_every=4)
        for step, value in enumerate([2.0, 4.0, 1.0, 3.0, 10.0]):
            series.append(step, value)
        assert series.rollups[0] == [4, 10.0, 1.0, 4.0]
        assert series.rollups[1] == [1, 10.0, 10.0, 10.0]

    def test_summary_is_json_able(self):
        import json

        series = Series("m")
        series.append(0, 1.0)
        json.dumps(series.summary())

    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            Series("m", capacity=0)
        with pytest.raises(ValueError):
            Series("m", rollup_every=0)


class TestTimeseriesStore:
    def test_record_creates_series_on_first_use(self):
        store = TimeseriesStore()
        store.record(0, {"b": 2.0, "a": 1.0})
        assert store.names() == ["a", "b"]
        assert "a" in store and "missing" not in store
        assert len(store) == 2

    def test_jsonl_round_trip(self, tmp_path):
        store = TimeseriesStore(capacity=8, rollup_every=4)
        for step in range(10):
            store.record(step, {"x": float(step), "y": -float(step)})
        path = store.write_jsonl(tmp_path / "ts.jsonl")
        doc = load_timeseries(path)
        assert doc["schema"] == TIMESERIES_SCHEMA
        assert doc["capacity"] == 8 and doc["rollup_every"] == 4
        assert sorted(doc["series"]) == ["x", "y"]
        x = doc["series"]["x"]
        assert x["summary"]["count"] == 10
        assert x["points"] == [(s, float(s)) for s in range(2, 10)]
        assert sum(r["count"] for r in x["rollups"]) == 10

    def test_serialization_is_byte_deterministic(self):
        def build():
            store = TimeseriesStore()
            for step in range(20):
                store.record(step, {"x": 0.125 * step, "y": 3.0})
            return store.to_jsonl()

        assert build() == build()

    def test_load_rejects_missing_header_and_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind":"point","name":"x","step":0,"value":1}\n')
        with pytest.raises(ValueError, match="no header"):
            load_timeseries(bad)
        worse = tmp_path / "worse.jsonl"
        worse.write_text('{"kind":"header","schema":99}\n')
        with pytest.raises(ValueError, match="schema"):
            load_timeseries(worse)

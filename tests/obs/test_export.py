"""Exporter structure: Chrome trace JSON, step report, raw dict."""

import json

import pytest

from repro.cluster import Timeline, VirtualCluster, all_reduce
from repro.obs import Tracer, step_report, to_chrome_trace, to_dict, write_chrome_trace
from repro.obs import analysis

import numpy as np


@pytest.fixture
def traced_timeline():
    tracer = Tracer()
    tl = Timeline(2, tracer=tracer)
    tl.record_compute(0, 0.4, flops=10.0, op="attn")
    tl.record_compute(1, 0.2, op="mlp")
    tl.record_comm([0, 1], 0.3, nbytes=1024.0, overlappable=True, op="all_gather")
    tracer.instant("optimizer", "apply", t0=1.0, step=0)
    return tracer, tl


class TestChromeTrace:
    def test_structure(self, traced_timeline):
        tracer, _ = traced_timeline
        doc = to_chrome_trace(tracer)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        assert [m["pid"] for m in metas] == [0, 1]
        assert metas[0]["args"]["name"] == "rank 0"
        # 5 spans (comm emits one per rank) + 2 process_name records.
        assert len(events) == 7

    def test_complete_events_have_duration_us(self, traced_timeline):
        tracer, _ = traced_timeline
        events = to_chrome_trace(tracer)["traceEvents"]
        compute = next(e for e in events if e.get("cat") == "compute")
        assert compute["ph"] == "X"
        assert compute["dur"] == pytest.approx(0.4e6)
        assert compute["ts"] == pytest.approx(0.0)
        assert compute["tid"] == "compute"

    def test_comm_event_lane_and_args(self, traced_timeline):
        tracer, _ = traced_timeline
        events = to_chrome_trace(tracer)["traceEvents"]
        comm = [e for e in events if e.get("cat") == "collective"]
        assert {e["tid"] for e in comm} == {"comm"}
        rank0 = next(e for e in comm if e["pid"] == 0)
        assert rank0["args"]["nbytes"] == 1024.0
        assert rank0["args"]["group"] == [0, 1]
        # rank 0 had 0.4 s of compute slack: the 0.3 s gather fully hides.
        assert rank0["args"]["disposition"] == "hidden"

    def test_instant_event(self, traced_timeline):
        tracer, _ = traced_timeline
        events = to_chrome_trace(tracer)["traceEvents"]
        instant = next(e for e in events if e.get("cat") == "optimizer")
        assert instant["ph"] == "i"
        assert instant["s"] == "t"
        assert "dur" not in instant
        assert instant["args"]["step"] == 0

    def test_write_round_trips_as_json(self, traced_timeline, tmp_path):
        tracer, _ = traced_timeline
        path = write_chrome_trace(tracer, tmp_path / "sub" / "trace.json")
        assert path.exists()
        loaded = json.loads(path.read_text())
        assert loaded == to_chrome_trace(tracer)


class TestDictExport:
    def test_spans_and_metrics(self, traced_timeline):
        tracer, _ = traced_timeline
        doc = to_dict(tracer)
        assert len(doc["spans"]) == 5
        assert doc["metrics"]["counters"]["spans.compute"] == 2.0
        json.dumps(doc)  # must be serializable


class TestStepReport:
    def test_contains_rank_rows_and_totals(self, traced_timeline):
        tracer, tl = traced_timeline
        text = step_report(tracer)
        assert "Per-rank time breakdown" in text
        assert "walltime (max busy rank)" in text
        assert f"{tl.walltime_s():.6f}" in text
        assert "exposed-comm ratio" in text
        assert "all_gather" in text

    def test_memory_column_with_cluster(self):
        tracer = Tracer()
        cluster = VirtualCluster(num_gpus=2, tracer=tracer)
        bufs = [np.ones(8, dtype=np.float32) for _ in range(2)]
        all_reduce(cluster.world, bufs)
        text = step_report(tracer, cluster=cluster)
        assert "peak_mem" in text
        assert "MiB" in text

    def test_empty_trace(self):
        text = step_report(Tracer())
        assert "spans recorded:           0" in text


class TestAnalysis:
    def test_top_operations_grouping(self, traced_timeline):
        tracer, _ = traced_timeline
        ops = analysis.top_operations(tracer.spans)
        names = {(o["kind"], o["name"]) for o in ops}
        assert ("collective", "all_gather") in names
        gather = next(o for o in ops if o["name"] == "all_gather")
        assert gather["count"] == 2  # one span per rank

    def test_top_operations_key_validation(self):
        with pytest.raises(ValueError):
            analysis.top_operations([], key="bogus")

    def test_exposed_ratio_zero_for_empty(self):
        assert analysis.exposed_comm_ratio([]) == 0.0


class TestPrometheus:
    def _registry(self):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("spans.compute").inc(7)
        reg.gauge("step.loss").set(0.6931471805599453)
        reg.gauge("memory.peak_bytes.rank0").set(1.5 * 2**20)
        for v in (0.25, 0.5, 0.125):
            reg.histogram("step.walltime_s").observe(v)
        return reg

    def test_exposition_structure(self):
        from repro.obs import to_prometheus

        text = to_prometheus(self._registry())
        assert "# TYPE repro_counter counter" in text
        assert "# TYPE repro_gauge gauge" in text
        assert "# TYPE repro_histogram summary" in text
        assert 'repro_counter{instrument="spans.compute"} 7.0' in text
        assert 'quantile="0.95"' in text
        assert text.endswith("\n")
        # Dotted names ride in the label, never the metric name.
        for line in text.splitlines():
            if not line.startswith("#"):
                assert "." not in line.split("{", 1)[0]

    def test_round_trip_is_lossless(self):
        from repro.obs import parse_prometheus, to_prometheus

        reg = self._registry()
        parsed = parse_prometheus(to_prometheus(reg))
        assert parsed == reg.as_dict()

    def test_output_is_deterministic_and_sorted(self):
        from repro.obs import to_prometheus

        first = to_prometheus(self._registry())
        second = to_prometheus(self._registry())
        assert first == second
        names = [line.split('instrument="')[1].split('"')[0]
                 for line in first.splitlines() if "instrument=" in line]
        grouped = [n for i, n in enumerate(names) if i == 0 or n != names[i - 1]]
        assert grouped == sorted(set(grouped), key=grouped.index)

    def test_empty_registry_is_empty_text(self):
        from repro.obs import MetricsRegistry, parse_prometheus, to_prometheus

        assert to_prometheus(MetricsRegistry()) == ""
        assert parse_prometheus("") == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_unparseable_line_rejected(self):
        from repro.obs import parse_prometheus

        with pytest.raises(ValueError, match="unparseable"):
            parse_prometheus("repro_gauge{bad} 1.0")

    def test_write_prometheus_round_trips_through_disk(self, tmp_path):
        from repro.obs import parse_prometheus, write_prometheus

        reg = self._registry()
        path = write_prometheus(reg, tmp_path / "metrics.prom")
        assert parse_prometheus(path.read_text()) == reg.as_dict()

    def test_step_report_includes_gauges_table(self, traced_timeline):
        tracer, _ = traced_timeline
        tracer.metrics.gauge("goodput.fraction").set(0.97)
        text = step_report(tracer)
        assert "Gauges" in text
        assert "goodput.fraction" in text

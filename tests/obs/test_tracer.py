"""Tracer semantics: spans, scopes, kinds, and the no-op tracer."""

import pytest

from repro.cluster import Timeline, VirtualCluster, all_gather, all_reduce
from repro.obs import NULL_TRACER, SPAN_KINDS, NullTracer, Span, Tracer

import numpy as np


class TestSpan:
    def test_busy_is_exposed_part(self):
        span = Span("collective", "all_gather", 0, t0=1.0, dur=0.5, hidden_s=0.2)
        assert span.busy_s == pytest.approx(0.3)
        assert span.exposed_s == span.busy_s
        assert span.t1 == pytest.approx(1.3)

    @pytest.mark.parametrize(
        "dur,hidden,expected",
        [(0.5, 0.0, "exposed"), (0.5, 0.5, "hidden"), (0.5, 0.2, "partial")],
    )
    def test_disposition(self, dur, hidden, expected):
        span = Span("collective", "x", 0, 0.0, dur, hidden_s=hidden)
        assert span.disposition == expected

    def test_to_dict_round_trips_fields(self):
        span = Span("gather", "all_gather", 3, 0.0, 0.1, nbytes=64.0,
                    group=(0, 3), scope="gather.w", attrs={"unit": 1})
        d = span.to_dict()
        assert d["kind"] == "gather" and d["rank"] == 3
        assert d["group"] == [0, 3]
        assert d["attrs"] == {"unit": 1}
        assert d["exposed_s"] == pytest.approx(0.1)


class TestTracer:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Tracer().span("nonsense", "x", 0, 0.0, 1.0)

    def test_span_counts_per_kind(self):
        tracer = Tracer()
        tracer.span("compute", "mlp", 0, 0.0, 1.0)
        tracer.instant("optimizer", "apply")
        assert tracer.metrics.counter("spans.compute").value == 1
        assert tracer.metrics.counter("spans.optimizer").value == 1
        assert len(tracer) == 2

    def test_scope_labels_spans(self):
        tracer = Tracer()
        with tracer.scope("step", 3):
            with tracer.scope("forward"):
                tracer.span("compute", "mlp", 0, 0.0, 1.0)
        tracer.span("compute", "tail", 0, 1.0, 1.0)
        assert tracer.spans[0].scope == "step.3/forward"
        assert tracer.spans[1].scope == ""

    def test_scope_kind_override_reclassifies_comm(self):
        tracer = Tracer()
        with tracer.scope("gather", "w", kind="gather"):
            tracer.on_comm(0, 0.0, 0.1, 0.0, 8.0, "all_gather", (0, 1))
        tracer.on_comm(0, 0.1, 0.1, 0.0, 8.0, "all_reduce", (0, 1))
        assert tracer.spans[0].kind == "gather"
        assert tracer.spans[1].kind == "collective"

    def test_clear(self):
        tracer = Tracer()
        tracer.span("compute", "x", 0, 0.0, 1.0)
        tracer.clear()
        assert len(tracer) == 0

    def test_determinism_identical_runs_identical_spans(self):
        def run():
            tracer = Tracer()
            cluster = VirtualCluster(num_gpus=4, tracer=tracer)
            group = cluster.world
            rng = np.random.default_rng(7)
            bufs = [rng.normal(size=16).astype(np.float32) for _ in range(4)]
            all_reduce(group, bufs)
            cluster.timeline.record_compute(1, 0.25, flops=5.0, op="mlp")
            all_gather(group, bufs, overlappable=True)
            return tracer

        a, b = run(), run()
        assert [s.to_dict() for s in a.spans] == [s.to_dict() for s in b.spans]


class TestTimelineIntegration:
    def test_compute_span_starts_at_prior_walltime(self):
        tracer = Tracer()
        tl = Timeline(2, tracer=tracer)
        tl.record_compute(0, 1.0, flops=3.0, op="attn")
        tl.record_compute(0, 0.5, op="mlp")
        first, second = tracer.spans
        assert (first.t0, first.dur, first.flops) == (0.0, 1.0, 3.0)
        assert second.t0 == pytest.approx(1.0)
        assert second.name == "mlp"

    def test_comm_span_carries_hidden_split(self):
        tracer = Tracer()
        tl = Timeline(1, tracer=tracer)
        tl.record_compute(0, 0.3)
        tl.record_comm([0], seconds=0.5, nbytes=8, overlappable=True, op="all_gather")
        span = tracer.spans[-1]
        assert span.kind == "collective"
        assert span.dur == pytest.approx(0.5)
        assert span.hidden_s == pytest.approx(0.3)
        assert span.busy_s == pytest.approx(0.2)
        assert span.group == (0,)

    def test_one_span_per_participating_rank(self):
        tracer = Tracer()
        tl = Timeline(4, tracer=tracer)
        tl.record_comm([0, 2, 3], 0.1, 64, op="all_reduce")
        assert sorted(s.rank for s in tracer.spans) == [0, 2, 3]


class TestNullTracer:
    def test_records_nothing(self):
        null = NullTracer()
        with null.scope("step", 0, kind="gather"):
            null.span("compute", "x", 0, 0.0, 1.0)
            null.instant("optimizer", "apply")
            null.on_compute(0, 0.0, 1.0, 0.0, "x")
            null.on_comm(0, 0.0, 1.0, 0.0, 8.0, "all_reduce", (0,))
            null.mark_free(None, [0], "w", 8.0)
        assert len(null.spans) == 0
        assert len(null) == 0
        assert null.current_scope == ""
        assert not null.enabled

    def test_metrics_are_inert(self):
        NULL_TRACER.metrics.counter("x").inc()
        NULL_TRACER.metrics.gauge("y").set(5.0)
        NULL_TRACER.metrics.histogram("z").observe(1.0)
        assert NULL_TRACER.metrics.as_dict() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_default_timeline_uses_null_tracer(self):
        tl = Timeline(2)
        assert tl.tracer is NULL_TRACER
        tl.record_compute(0, 1.0)
        tl.record_comm([0, 1], 0.5, 8)
        assert len(tl.tracer.spans) == 0

    def test_all_kinds_are_known(self):
        assert SPAN_KINDS == {
            "compute", "collective", "gather", "optimizer", "checkpoint", "io",
            "serve",
        }

"""Detector semantics: thresholds, z-score drift, sustain, escalation."""

import pytest

from repro.obs import AlertRule, DetectorBank, TimeseriesStore, default_rules
from repro.obs.detect import rules_from_dicts, with_overrides


def drive(bank, store, samples, metric="m"):
    """Feed scalar samples through the observe-then-record protocol."""
    alerts = []
    for step, value in enumerate(samples):
        values = {metric: value}
        alerts.extend((step, f) for f in bank.observe(step, values, store))
        store.record(step, values)
    return alerts


class TestAlertRule:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            AlertRule(metric="m", detector="d", kind="spline")
        with pytest.raises(ValueError, match="direction"):
            AlertRule(metric="m", detector="d", direction="sideways")
        with pytest.raises(ValueError, match="sustain"):
            AlertRule(metric="m", detector="d", sustain=0)
        with pytest.raises(ValueError, match="positive threshold"):
            AlertRule(metric="m", detector="d", kind="zscore", threshold=0.0)

    def test_as_dict_round_trips_through_rules_from_dicts(self):
        rules = default_rules()
        rebuilt = rules_from_dicts(r.as_dict() for r in rules)
        assert rebuilt == rules

    def test_with_overrides_applies_uniformly(self):
        rules = with_overrides(default_rules(), sustain=1)
        assert all(r.sustain == 1 for r in rules)

    def test_duplicate_rules_rejected(self):
        rule = AlertRule(metric="m", detector="d")
        with pytest.raises(ValueError, match="duplicate"):
            DetectorBank((rule, rule))


class TestThresholdRules:
    def test_fires_after_sustain_and_escalates(self):
        rule = AlertRule(metric="m", detector="hot", threshold=1.0,
                         sustain=2, escalate=2.0)
        bank, store = DetectorBank((rule,)), TimeseriesStore()
        alerts = drive(bank, store, [0.5, 2.0, 2.0, 2.0, 2.0, 0.5])
        severities = [(step, f.severity) for step, f in alerts]
        # Warning at the 2nd violating step, one critical at the 4th.
        assert severities == [(2, "warning"), (4, "critical")]
        assert bank.warning_count == 1 and bank.critical_count == 1

    def test_streak_resets_when_violation_ends(self):
        rule = AlertRule(metric="m", detector="hot", threshold=1.0, sustain=2)
        bank, store = DetectorBank((rule,)), TimeseriesStore()
        alerts = drive(bank, store, [2.0, 0.5, 2.0, 0.5, 2.0, 0.5])
        # Never two consecutive violations, so nothing ever fires.
        assert alerts == []

    def test_below_direction(self):
        rule = AlertRule(metric="m", detector="low", threshold=0.9,
                         direction="below", sustain=1)
        bank, store = DetectorBank((rule,)), TimeseriesStore()
        alerts = drive(bank, store, [1.0, 0.95, 0.5])
        assert [step for step, _ in alerts] == [2]

    def test_escalate_zero_disables_critical(self):
        rule = AlertRule(metric="m", detector="hot", threshold=1.0,
                         sustain=1, escalate=0.0)
        bank, store = DetectorBank((rule,)), TimeseriesStore()
        drive(bank, store, [2.0] * 10)
        assert bank.warning_count == 1 and bank.critical_count == 0


class TestZScoreRules:
    RULE = AlertRule(metric="m", detector="drift", kind="zscore",
                     threshold=4.0, sustain=2, warmup=8)

    def test_silent_during_warmup_and_on_steady_series(self):
        bank, store = DetectorBank((self.RULE,)), TimeseriesStore()
        alerts = drive(bank, store, [1.0] * 30)
        assert alerts == []

    def test_steady_series_then_jump_is_infinite_sigma(self):
        # Bitwise-steady regime, then a level shift: ewstd is exactly 0
        # at the jump, so any deviation is an infinite-z event.  Only
        # the first shifted point is infinite — the EWMA adapts and the
        # next z is sqrt((1-alpha)/alpha) regardless of jump size — so
        # level shifts are a sustain=1 phenomenon by construction.
        rule = AlertRule(metric="m", detector="drift", kind="zscore",
                         threshold=4.0, sustain=1, warmup=8)
        bank, store = DetectorBank((rule,)), TimeseriesStore()
        alerts = drive(bank, store, [1.0] * 10 + [1.5] * 4)
        assert [step for step, _ in alerts] == [10]

    def test_noisy_regime_tolerates_in_band_variation(self):
        bank, store = DetectorBank((self.RULE,)), TimeseriesStore()
        wobble = [1.0 + 0.1 * (-1) ** i for i in range(40)]
        assert drive(bank, store, wobble) == []

    def test_deterministic_given_the_sample_sequence(self):
        samples = [1.0] * 12 + [3.0] * 5 + [1.0] * 3

        def run():
            bank, store = DetectorBank((self.RULE,)), TimeseriesStore()
            return [(s, f.severity, f.message)
                    for s, f in drive(bank, store, samples)]

        assert run() == run()


class TestDefaultRules:
    def test_covers_the_six_stock_detectors(self):
        detectors = {r.detector for r in default_rules()}
        assert detectors == {
            "step_time_drift", "exposed_comm_regression", "straggler",
            "memory_watermark_creep", "goodput_decay", "degraded_goodput",
        }

    def test_rules_for_filters_by_metric(self):
        bank = DetectorBank()
        (rule,) = bank.rules_for("goodput.fraction")
        assert rule.direction == "below"
        assert bank.rules_for("no.such.metric") == ()

    def test_unmentioned_metric_is_ignored(self):
        bank, store = DetectorBank(), TimeseriesStore()
        # Samples that never include a watched metric produce nothing.
        assert bank.observe(0, {"unwatched": 1e9}, store) == []

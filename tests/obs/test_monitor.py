"""RunMonitor end-to-end: clean-run silence, fault detection, journal
byte-determinism, and the zero-overhead / bitwise-parity contract.

The telemetry layer's two acceptance properties live here:

* **Determinism** — two identical seeded runs (including a supervised
  replay of ``examples/fault_plan.json``) serialize byte-identical
  journal and timeseries artifacts.
* **Non-interference** — a monitored step is bitwise-equal on every
  ledger field and the walltime to an unmonitored one; the monitor
  reads the timeline, it never writes it.
"""

from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.timeline import _ledger_values
from repro.faults import FaultInjector, FaultPlan, FaultSpec, Supervisor
from repro.faults.goodput import GoodputLedger
from repro.models.configs import OrbitConfig
from repro.obs import NULL_MONITOR, RunMonitor
from repro.runtime import RunSpec, Session, StepLoop

TINY = OrbitConfig("tiny", embed_dim=16, depth=2, num_heads=4, in_vars=3,
                   out_vars=2, img_height=8, img_width=8, patch_size=8)

FAULT_PLAN_EXAMPLE = (
    Path(__file__).resolve().parents[2] / "examples" / "fault_plan.json"
)

#: A pure straggler plan: one degraded link, no crash to interrupt the
#: detector's sustain streak.
STRAGGLER_PLAN = FaultPlan(faults=(
    FaultSpec(kind="link_degrade", step=2, rank=1, factor=5.0,
              duration_steps=4),
))


def _spec(grid=(4, 2, 2), seed=0, steps=6, **overrides):
    tp, fsdp, ddp = grid
    base = dict(config=TINY, num_gpus=tp * fsdp * ddp, gpus_per_node=8,
                tp_size=tp, fsdp_size=fsdp, ddp_size=ddp, micro_batch=2,
                meta=True, seed=seed, num_steps=steps)
    base.update(overrides)
    return RunSpec(**base)


def _monitored_run(spec, steps=None):
    session = Session(spec)
    StepLoop(session.meta_step, hooks=session.loop_hooks()).run(
        steps or spec.num_steps
    )
    return session


class TestMonitoredSession:
    def test_records_the_core_step_series(self):
        session = _monitored_run(_spec(monitor="on"))
        store = session.monitor.store
        for name in ("step.time_s", "step.straggler_excess",
                     "step.exposed_comm_ratio", "memory.peak_fraction"):
            assert name in store, name
            assert store.series(name).count == 6

    def test_clean_run_raises_zero_alerts(self):
        # This topology has *static* busy-time imbalance (FSDP lead
        # ranks do the dense all-reduce), which must not read as
        # straggler emergence.
        session = _monitored_run(_spec(monitor="on"))
        monitor = session.monitor
        assert monitor.alerts == ()
        assert monitor.warning_alerts == 0 and monitor.critical_alerts == 0

    def test_monitor_off_installs_the_null_monitor(self):
        session = Session(_spec())
        assert session.monitor is NULL_MONITOR
        assert session.loop_hooks() == []

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        grid=st.sampled_from([(4, 2, 2), (2, 2, 4), (2, 2, 2), (1, 2, 4)]),
    )
    @settings(max_examples=10, deadline=None)
    def test_clean_seeded_runs_are_alert_free(self, seed, grid):
        session = _monitored_run(_spec(grid=grid, seed=seed, monitor="on"))
        assert session.monitor.alerts == ()


class TestZeroOverhead:
    def test_null_objects_record_nothing(self):
        from repro.obs import NULL_METRICS, NULL_TRACER

        with NULL_TRACER.scope("step", 0):
            NULL_TRACER.instant("optimizer", "apply", t0=0.0)
        NULL_METRICS.counter("x").inc()
        NULL_METRICS.gauge("y").set(1.0)
        assert len(NULL_TRACER.spans) == 0
        assert len(NULL_METRICS) == 0 and NULL_METRICS.snapshot() == {}

        NULL_MONITOR.on_step_start(None, 0)
        NULL_MONITOR.on_step_end(None, None)
        NULL_MONITOR.observe_gauges(0, {"m": 1.0})
        NULL_MONITOR.record_fold(0, "exact")
        assert NULL_MONITOR.alerts == ()
        assert NULL_MONITOR.critical_alerts == 0
        assert not NULL_MONITOR.enabled

    def test_monitored_step_is_bitwise_equal_to_unmonitored(self):
        plain = _monitored_run(_spec(fold="off"))
        monitored = _monitored_run(_spec(fold="off", monitor="on"))
        assert monitored.monitor.store.names()  # telemetry did record
        for rank in range(plain.cluster.world_size):
            assert _ledger_values(plain.cluster.timeline.ledger(rank)) == \
                _ledger_values(monitored.cluster.timeline.ledger(rank))
        assert plain.cluster.timeline.walltime_s() == \
            monitored.cluster.timeline.walltime_s()


class TestFaultDetection:
    def _supervised(self, plan, tmp_path, steps=8, **spec_overrides):
        spec = _spec(steps=steps, monitor="on", **spec_overrides)
        supervisor = Supervisor(
            spec, plan, checkpoint_every=2, checkpoint_dir=tmp_path,
        )
        report = supervisor.run(steps)
        return supervisor, report

    def test_straggler_plan_alerts_within_bounded_steps(self, tmp_path):
        supervisor, report = self._supervised(STRAGGLER_PLAN, tmp_path)
        assert report.recovered
        straggler = [
            (step, f) for step, f in supervisor.monitor.alerts
            if f.category == "straggler"
        ]
        assert straggler, "injected straggler never raised an alert"
        first_step, finding = straggler[0]
        # Warning must land within `sustain` steps of fault onset.
        (rule,) = supervisor.monitor.bank.rules_for("step.straggler_excess")
        assert first_step <= STRAGGLER_PLAN.faults[0].step + rule.sustain
        assert finding.severity == "warning"

    def test_faultless_supervised_run_is_alert_free(self, tmp_path):
        # No checkpoint cadence: with the tiny config a 1 s checkpoint
        # dwarfs the millisecond steps and goodput *genuinely* decays,
        # which is a true alarm, not the clean baseline.
        spec = _spec(steps=6, monitor="on")
        supervisor = Supervisor(spec, FaultPlan(faults=()),
                                checkpoint_every=0)
        report = supervisor.run(6)
        assert report.recovered
        assert supervisor.monitor.alerts == ()
        # Lifecycle events still journal.
        kinds = {e.kind for e in supervisor.monitor.journal}
        assert kinds == {"run"}

    def test_example_plan_journals_every_recovery_kind(self, tmp_path):
        plan = FaultPlan.from_json(FAULT_PLAN_EXAMPLE)
        supervisor, report = self._supervised(plan, tmp_path)
        assert report.recovered
        journal = supervisor.monitor.journal
        kinds = {e.kind for e in journal}
        assert {"run", "alert", "recovery", "checkpoint"} <= kinds
        # Rollback recovery shows up as a checkpoint/rollback event.
        assert any(e.category == "rollback"
                   for e in journal.by_kind("checkpoint"))


class TestJournalDeterminism:
    def _replay(self, tmp_path, tag):
        plan = FaultPlan.from_json(FAULT_PLAN_EXAMPLE)
        spec = _spec(steps=8, monitor="on")
        supervisor = Supervisor(
            spec, plan, checkpoint_every=2,
            checkpoint_dir=tmp_path / tag,
        )
        report = supervisor.run(8)
        assert report.recovered
        return supervisor.monitor

    def test_fault_plan_replays_are_byte_identical(self, tmp_path):
        first = self._replay(tmp_path, "a")
        second = self._replay(tmp_path, "b")
        assert first.journal.to_jsonl() == second.journal.to_jsonl()
        assert first.store.to_jsonl() == second.store.to_jsonl()

    def test_clean_monitored_runs_are_byte_identical(self):
        first = _monitored_run(_spec(monitor="on")).monitor
        second = _monitored_run(_spec(monitor="on")).monitor
        assert first.store.to_jsonl() == second.store.to_jsonl()
        assert first.journal.to_jsonl() == second.journal.to_jsonl()


class TestFoldEvents:
    def test_mode_switches_are_journaled(self):
        # A timing-neutral fault unfolds its step and refolds after.
        plan = FaultPlan(faults=(
            FaultSpec(kind="grad_corruption", step=1, rank=2),
        ))
        spec = _spec(grid=(2, 2, 4), steps=3, fold="on", monitor="on")
        session = Session(spec)
        injector = FaultInjector(plan, gpus_per_node=spec.gpus_per_node)
        session.cluster.attach_injector(injector)
        for step in range(3):
            injector.begin_step(step)
            session.meta_step(step)
        folds = session.monitor.journal.by_kind("fold")
        assert [(e.step, e.category) for e in folds] == \
            [(1, "exact"), (2, "folded")]


class TestGoodputGauges:
    def test_bucket_fractions_partition_the_walltime(self):
        ledger = GoodputLedger()
        ledger.commit_step(0, 2.0)
        ledger.checkpoint(1.0)
        ledger.retry(0.5)
        fractions = ledger.bucket_fractions()
        parts = sum(v for k, v in fractions.items() if k != "goodput.fraction")
        assert parts == pytest.approx(1.0)
        assert fractions["goodput.fraction"] == \
            fractions["goodput.useful_fraction"]

    def test_publish_gauges_sets_metrics_registry_gauges(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        ledger = GoodputLedger()
        ledger.commit_step(0, 2.0)
        published = ledger.publish_gauges(metrics)
        for name, value in published.items():
            assert metrics.gauge(name).value == value

    def test_supervised_run_exports_goodput_to_monitor_and_metrics(
        self, tmp_path
    ):
        spec = _spec(steps=4, monitor="on")
        supervisor = Supervisor(
            spec, FaultPlan(faults=()), checkpoint_every=2,
            checkpoint_dir=tmp_path,
        )
        assert supervisor.run(4).recovered
        assert "goodput.fraction" in supervisor.monitor.store
        assert supervisor.monitor.store.series("goodput.fraction").count == 4
        snapshot = supervisor.session.tracer.metrics.snapshot()
        assert "goodput.fraction" in snapshot

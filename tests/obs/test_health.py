"""Run-health monitor: findings from clean and perturbed simulated runs.

Straggler injection uses the perturbed cost model
(:class:`repro.parallel.compute.SkewedCompute` via
``run_traced_step(compute_skew=...)``), exactly as the issue's
acceptance criterion requires.
"""

import pytest

from repro.obs import HealthThresholds, check_run, health_report, run_traced_step
from repro.obs.health import Finding, FindingKind, check_memory_watermark


@pytest.fixture(scope="module")
def clean_run():
    return run_traced_step(num_gpus=16, gpus_per_node=8,
                           tp_size=4, fsdp_size=2, ddp_size=2, seed=0)


@pytest.fixture(scope="module")
def skewed_run():
    """Rank 5's compute slowed enough to dominate the tiny step.

    The trace-tiny model's per-rank compute is O(10 ns), so the factor
    must be enormous to overtake the comm-dominated busy times.
    """
    return run_traced_step(num_gpus=16, gpus_per_node=8,
                           tp_size=4, fsdp_size=2, ddp_size=2, seed=0,
                           compute_skew={5: 10_000_000.0})


def _by_category(findings):
    grouped = {}
    for finding in findings:
        grouped.setdefault(finding.category, []).append(finding)
    return grouped


class TestStragglerInjection:
    def test_skewed_rank_flagged_as_straggler(self, skewed_run):
        findings = check_run(skewed_run.tracer, cluster=skewed_run.cluster,
                             plan=skewed_run.plan)
        stragglers = _by_category(findings).get("straggler", [])
        assert any(5 in finding.ranks for finding in stragglers)
        worst = max(stragglers, key=lambda f: f.value)
        assert worst.ranks == (5,)
        assert worst.severity == "critical"

    def test_clean_run_does_not_flag_the_injected_rank(self, clean_run):
        findings = check_run(clean_run.tracer, cluster=clean_run.cluster,
                             plan=clean_run.plan)
        stragglers = _by_category(findings).get("straggler", [])
        assert not any(5 in finding.ranks for finding in stragglers)

    def test_skew_creates_group_imbalance(self, skewed_run):
        """Rank 5's TP group sees a ~100%% compute spread."""
        findings = check_run(skewed_run.tracer, plan=skewed_run.plan)
        tp = _by_category(findings).get("tp_imbalance", [])
        assert any(5 in finding.ranks for finding in tp)


class TestMemoryWatermark:
    def test_high_watermark_flagged(self, clean_run):
        cluster = clean_run.cluster
        tracker = cluster.device(3).memory
        headroom = tracker.capacity_bytes - tracker.current_bytes
        alloc = tracker.allocate(int(headroom * 0.93), tag="test.balloon")
        try:
            findings = check_memory_watermark(cluster, HealthThresholds())
        finally:
            tracker.free(alloc)
            tracker.reset_peak()  # don't leak the watermark to other tests
        assert any(
            finding.ranks == (3,) and finding.severity == "warning"
            for finding in findings
        )

    def test_near_oom_is_critical(self, clean_run):
        cluster = clean_run.cluster
        tracker = cluster.device(7).memory
        headroom = tracker.capacity_bytes - tracker.current_bytes
        alloc = tracker.allocate(int(headroom * 0.99), tag="test.balloon")
        try:
            findings = check_memory_watermark(cluster, HealthThresholds())
        finally:
            tracker.free(alloc)
            tracker.reset_peak()  # don't leak the watermark to other tests
        flagged = [finding for finding in findings if finding.ranks == (7,)]
        assert flagged and flagged[0].severity == "critical"

    def test_no_findings_below_threshold(self, clean_run):
        # The tiny trace model peaks far below 85% of a 64 GB GCD.
        findings = check_memory_watermark(clean_run.cluster, HealthThresholds())
        assert findings == []


class TestMetricsAndReporting:
    def test_findings_emitted_through_metrics(self, skewed_run):
        findings = check_run(skewed_run.tracer, plan=skewed_run.plan)
        snapshot = skewed_run.tracer.metrics.as_dict()
        assert snapshot["gauges"]["health.findings"] >= len(findings) > 0
        assert snapshot["counters"]["health.findings.straggler"] >= 1

    def test_findings_sorted_most_severe_first(self, skewed_run):
        findings = check_run(skewed_run.tracer, plan=skewed_run.plan)
        order = {"critical": 0, "warning": 1, "info": 2}
        severities = [order[finding.severity] for finding in findings]
        assert severities == sorted(severities)

    def test_report_text(self, skewed_run):
        findings = check_run(skewed_run.tracer, plan=skewed_run.plan)
        text = health_report(findings)
        assert "straggler" in text
        assert health_report([]) == "health: OK (no findings)"

    def test_finding_as_dict_round_trips(self):
        finding = Finding(category="straggler", severity="warning",
                          message="m", ranks=(3,), value=0.5, threshold=0.1)
        payload = finding.as_dict()
        assert payload["ranks"] == [3]
        assert payload["category"] == "straggler"


class TestMachineReadableShape:
    FINDING = Finding(category="straggler", severity="warning",
                      message="rank 3 is slow", ranks=(3, 7), value=0.5,
                      threshold=0.1)

    def test_kind_is_a_taxonomy_member(self):
        assert self.FINDING.kind is FindingKind.STRAGGLER
        assert self.FINDING.kind.value == "straggler"

    def test_unknown_category_maps_to_other(self):
        odd = Finding(category="novel_failure", severity="info", message="m")
        assert odd.kind is FindingKind.OTHER

    def test_magnitude_aliases_value(self):
        assert self.FINDING.magnitude == self.FINDING.value == 0.5

    def test_as_dict_carries_the_machine_readable_fields(self):
        payload = self.FINDING.as_dict()
        assert payload["kind"] == "straggler"
        assert payload["ranks"] == [3, 7]
        assert payload["magnitude"] == 0.5
        assert payload["threshold"] == 0.1

    def test_from_dict_round_trips(self):
        assert Finding.from_dict(self.FINDING.as_dict()) == self.FINDING

    def test_from_dict_ignores_derived_fields(self):
        payload = self.FINDING.as_dict()
        # kind/magnitude are derived: tampering with them cannot skew
        # the rebuilt finding.
        payload["kind"] = "goodput_decay"
        payload["magnitude"] = 99.0
        assert Finding.from_dict(payload) == self.FINDING

    def test_every_stock_category_is_in_the_taxonomy(self):
        from repro.obs.detect import default_rules

        for rule in default_rules():
            assert FindingKind(rule.detector) is not FindingKind.OTHER

    def test_round_trip_through_json(self):
        import json

        payload = json.loads(json.dumps(self.FINDING.as_dict()))
        assert Finding.from_dict(payload) == self.FINDING


class TestThresholds:
    def test_loose_thresholds_silence_stragglers(self, skewed_run):
        loose = HealthThresholds(straggler_frac=1e9, imbalance_frac=1e9,
                                 overlap_exposed_frac=1.1)
        findings = check_run(skewed_run.tracer, cluster=skewed_run.cluster,
                             plan=skewed_run.plan, thresholds=loose)
        assert findings == []

    def test_spans_only_input(self, skewed_run):
        """check_run accepts a bare span list (offline --trace mode)."""
        findings = check_run(list(skewed_run.tracer.spans))
        assert any(finding.category == "straggler" for finding in findings)

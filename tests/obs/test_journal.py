"""Event journal: ordering, typed appenders, byte-deterministic JSONL."""

import pytest

from repro.obs import EventJournal, Finding, journal_summary
from repro.obs.journal import JOURNAL_SCHEMA, load_journal


def sample_journal(on_event=None):
    journal = EventJournal(on_event)
    journal.record_run(0, "start", "run begins")
    journal.record_finding(
        2, Finding(category="straggler", severity="warning",
                   message="rank 3 slow", ranks=(3,), value=0.4,
                   threshold=0.1),
    )
    journal.record_checkpoint(2, "save", detail="ckpt_step2.npz")
    journal.record_fold(3, "exact", "fault window")
    journal.record_checkpoint(4, "rollback", detail="back to step 2")
    journal.record_run(6, "end", "run ends")
    return journal


class TestOrdering:
    def test_seq_is_append_order(self):
        journal = sample_journal()
        assert [e.seq for e in journal] == list(range(len(journal)))

    def test_on_event_fires_synchronously_per_append(self):
        seen = []
        journal = sample_journal(on_event=seen.append)
        assert seen == journal.events

    def test_queries(self):
        journal = sample_journal()
        assert len(journal.by_kind("checkpoint")) == 2
        assert journal.critical() == []
        summary = journal_summary(journal)
        assert summary["events"] == 6
        assert summary["by_kind"] == {
            "alert": 1, "checkpoint": 2, "fold": 1, "run": 2,
        }
        assert summary["by_severity"] == {"info": 4, "warning": 2}


class TestTypedAppenders:
    def test_finding_payload_preserved(self):
        event = sample_journal().by_kind("alert")[0]
        assert event.category == "straggler"
        assert event.severity == "warning"
        assert event.data == {"ranks": [3], "value": 0.4, "threshold": 0.1}

    def test_rollback_is_warning_save_is_info(self):
        saves = sample_journal().by_kind("checkpoint")
        assert [e.severity for e in saves] == ["info", "warning"]

    def test_render_mentions_kind_and_category(self):
        line = sample_journal().events[0].render()
        assert "run/start" in line and "[info]" in line


class TestReplanAppender:
    def test_replan_payload_preserved(self):
        journal = EventJournal()
        journal.record_replan(
            3, "decision", message="stay: gain below cost",
            data={"action": "stay", "profile": "c0x8,w11"},
        )
        journal.record_replan(
            5, "switch", severity="warning",
            message="tp4.f2.d2.mb8+ckpt -> tp2.f4.d2.mb4+pf",
            data={"migration_cost_s": 0.02},
        )
        decision, switch = journal.by_kind("replan")
        assert decision.category == "decision"
        assert decision.data == {"action": "stay", "profile": "c0x8,w11"}
        assert switch.category == "switch"
        assert switch.severity == "warning"

    def test_replan_is_a_journal_kind(self):
        from repro.obs.journal import JOURNAL_KINDS

        assert "replan" in JOURNAL_KINDS

    def test_replan_events_round_trip(self, tmp_path):
        journal = EventJournal()
        journal.record_run(0, "start", "run begins")
        journal.record_replan(2, "decision", data={"action": "stay"})
        journal.record_run(3, "end", "run ends")
        path = journal.write_jsonl(tmp_path / "journal.jsonl")
        assert load_journal(path) == journal.events


class TestPersistence:
    def test_round_trip(self, tmp_path):
        journal = sample_journal()
        path = journal.write_jsonl(tmp_path / "journal.jsonl")
        events = load_journal(path)
        assert events == journal.events

    def test_byte_identical_for_identical_event_sequences(self):
        assert sample_journal().to_jsonl() == sample_journal().to_jsonl()

    def test_load_rejects_corrupt_artifacts(self, tmp_path):
        no_header = tmp_path / "a.jsonl"
        no_header.write_text('{"seq":0,"step":0,"kind":"run"}\n')
        with pytest.raises(ValueError, match="no header"):
            load_journal(no_header)

        wrong_schema = tmp_path / "b.jsonl"
        wrong_schema.write_text('{"kind":"journal","schema":99,"events":0}\n')
        with pytest.raises(ValueError, match="schema"):
            load_journal(wrong_schema)

        journal = sample_journal()
        gap = journal.to_jsonl().splitlines()
        del gap[2]  # drop seq 1: header promise and seq chain both break
        torn = tmp_path / "c.jsonl"
        torn.write_text("\n".join(gap) + "\n")
        with pytest.raises(ValueError):
            load_journal(torn)

    def test_schema_constant_is_one(self):
        assert JOURNAL_SCHEMA == 1

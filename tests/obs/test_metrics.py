"""MetricsRegistry instrument semantics."""

import math

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("x").inc(-1.0)


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("x")
        g.set(3.0)
        g.set(1.0)
        assert g.value == 1.0

    def test_max_keeps_high_water(self):
        g = Gauge("x")
        g.max(2.0)
        g.max(1.0)
        g.max(5.0)
        assert g.value == 5.0


class TestHistogram:
    def test_stats(self):
        h = Histogram("x")
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(6.0)
        assert h.mean == pytest.approx(2.0)
        assert h.min == 1.0 and h.max == 3.0
        assert h.percentile(50) == 2.0
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 3.0

    def test_empty_stats_are_nan(self):
        h = Histogram("x")
        assert math.isnan(h.mean)
        assert math.isnan(h.percentile(50))
        assert h.count == 0 and h.sum == 0.0

    def test_percentile_bounds(self):
        h = Histogram("x")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_summary_keys(self):
        h = Histogram("x")
        h.observe(1.0)
        assert set(h.summary()) == {"count", "sum", "mean", "min", "max", "p50", "p95"}


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")

    def test_as_dict_partitions_by_type(self):
        reg = MetricsRegistry()
        reg.counter("steps").inc(2)
        reg.gauge("mem").set(7.0)
        reg.histogram("loss").observe(0.5)
        snap = reg.as_dict()
        assert snap["counters"] == {"steps": 2.0}
        assert snap["gauges"] == {"mem": 7.0}
        assert snap["histograms"]["loss"]["count"] == 1

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a")
        assert list(reg.names()) == ["a", "b"]

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert len(reg) == 0
        assert reg.counter("a").value == 0.0


class TestSnapshot:
    def test_flat_sorted_view(self):
        reg = MetricsRegistry()
        reg.gauge("b.gauge").set(2.0)
        reg.counter("a.counter").inc(3)
        reg.histogram("c.hist").observe(1.0)
        snap = reg.snapshot()
        assert list(snap) == ["a.counter", "b.gauge", "c.hist"]
        assert snap["a.counter"] == 3.0
        assert snap["b.gauge"] == 2.0
        assert snap["c.hist"]["count"] == 1

    def test_snapshot_shares_no_state(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        snap = reg.snapshot()
        reg.counter("a").inc(9)
        assert snap["a"] == 1.0

    def test_null_registry_snapshot_is_empty(self):
        from repro.obs import NULL_METRICS

        assert NULL_METRICS.snapshot() == {}

"""Property tests: span aggregations partition ledger time exactly.

For *arbitrary* sequences of compute / collective / marker events
driven through a real :class:`~repro.cluster.timeline.Timeline` with a
tracer attached, the analyzer's per-rank buckets must satisfy the
partition identity bitwise::

    compute_seconds_by_rank[r] + exposed_comm_seconds_by_rank[r]
        == ledger(r).walltime_s

— including the empty trace and traces containing only zero-duration
markers.  Both sides accumulate the same floats in the same order, so
``==`` is exact, never approximate.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.timeline import Timeline
from repro.obs import analysis, analyze_trace
from repro.obs.tracer import Tracer

NUM_RANKS = 4

_seconds = st.floats(min_value=0.0, max_value=1e3, allow_nan=False,
                     allow_infinity=False)
_rank = st.integers(min_value=0, max_value=NUM_RANKS - 1)
_group = st.lists(_rank, min_size=1, max_size=NUM_RANKS, unique=True)

_compute_event = st.tuples(st.just("compute"), _rank, _seconds,
                           st.floats(min_value=0.0, max_value=1e12))
_comm_event = st.tuples(st.just("comm"), _group, _seconds,
                        st.floats(min_value=0.0, max_value=1e9),
                        st.booleans(),
                        st.sampled_from(["all_gather", "all_reduce",
                                         "reduce_scatter"]))
_marker_event = st.tuples(st.just("marker"), _rank,
                          st.sampled_from(["optimizer", "checkpoint", "io"]))

_events = st.lists(st.one_of(_compute_event, _comm_event, _marker_event),
                   max_size=60)


def _replay(events) -> tuple[Timeline, Tracer]:
    tracer = Tracer()
    timeline = Timeline(NUM_RANKS, tracer=tracer)
    for event in events:
        if event[0] == "compute":
            _, rank, seconds, flops = event
            timeline.record_compute(rank, seconds, flops=flops)
        elif event[0] == "comm":
            _, ranks, seconds, nbytes, overlappable, op = event
            timeline.record_comm(ranks, seconds, nbytes,
                                 overlappable=overlappable, op=op)
        else:
            _, rank, kind = event
            tracer.instant(kind, f"{kind}.marker", rank=rank,
                           t0=timeline.ledger(rank).walltime_s)
    return timeline, tracer


class TestPartitionIdentity:
    @settings(max_examples=60, deadline=None)
    @given(_events)
    def test_compute_plus_exposed_partitions_walltime(self, events):
        timeline, tracer = _replay(events)
        compute = analysis.compute_seconds_by_rank(tracer.spans)
        exposed = analysis.exposed_comm_seconds_by_rank(tracer.spans)
        comm = analysis.comm_seconds_by_rank(tracer.spans)
        for rank in range(NUM_RANKS):
            ledger = timeline.ledger(rank)
            assert compute.get(rank, 0.0) == ledger.compute_s
            assert exposed.get(rank, 0.0) == ledger.exposed_comm_s
            assert comm.get(rank, 0.0) == ledger.comm_s
            assert (
                compute.get(rank, 0.0) + exposed.get(rank, 0.0)
                == ledger.walltime_s
            )

    @settings(max_examples=60, deadline=None)
    @given(_events)
    def test_analyzer_buckets_match_ledgers(self, events):
        timeline, tracer = _replay(events)
        decomposition = analyze_trace(tracer)
        walltimes = [timeline.ledger(r).walltime_s for r in range(NUM_RANKS)]
        assert decomposition.critical_path_s == max(walltimes, default=0.0)
        for rank, attr in decomposition.overall.ranks.items():
            ledger = timeline.ledger(rank)
            assert attr.compute_s == ledger.compute_s
            assert attr.exposed_comm_s == ledger.exposed_comm_s
            # markers and io don't exist in the ledger; without io the
            # busy identity reduces to the ledger walltime
            assert attr.busy_s == ledger.walltime_s + attr.io_s

    @settings(max_examples=40, deadline=None)
    @given(_events)
    def test_hidden_plus_exposed_equals_total_comm(self, events):
        _, tracer = _replay(events)
        exposed = analysis.exposed_comm_seconds_by_rank(tracer.spans)
        hidden = analysis.hidden_comm_seconds_by_rank(tracer.spans)
        comm = analysis.comm_seconds_by_rank(tracer.spans)
        for rank in set(comm):
            # summed separately, so approximate (unlike the ledger-order
            # identities above, which are bitwise)
            assert exposed.get(rank, 0.0) + hidden.get(rank, 0.0) == pytest.approx(
                comm.get(rank, 0.0), rel=1e-9, abs=1e-15
            )


class TestEdgeCases:
    def test_empty_trace(self):
        tracer = Tracer()
        assert analysis.compute_seconds_by_rank(tracer.spans) == {}
        assert analysis.exposed_comm_seconds_by_rank(tracer.spans) == {}
        assert analysis.exposed_comm_ratio(tracer.spans) == 0.0
        decomposition = analyze_trace(tracer)
        assert decomposition.critical_path_s == 0.0
        assert decomposition.bound_resource == "idle"

    def test_marker_only_trace_contributes_nothing(self):
        tracer = Tracer()
        for rank in range(NUM_RANKS):
            tracer.instant("optimizer", "opt.step", rank=rank)
            tracer.instant("io", "ckpt.write", rank=rank)
        # markers are not timed kinds, so no rank accrues busy time
        assert analysis.busy_seconds_by_rank(tracer.spans) == {}
        decomposition = analyze_trace(tracer)
        assert decomposition.critical_path_s == 0.0
        # io markers have zero duration, so even the io bucket is empty
        assert all(
            attr.io_s == 0.0 for attr in decomposition.overall.ranks.values()
        )

    @settings(max_examples=40, deadline=None)
    @given(_events)
    def test_markers_never_change_totals(self, events):
        """The same run with markers stripped yields identical buckets."""
        _, tracer = _replay(events)
        with_markers = analysis.busy_seconds_by_rank(tracer.spans)
        stripped = [s for s in tracer.spans
                    if s.kind in ("compute", "collective", "gather")]
        without_markers = analysis.busy_seconds_by_rank(stripped)
        for rank in set(with_markers) & set(without_markers):
            assert with_markers[rank] == without_markers[rank]

    @settings(max_examples=30, deadline=None)
    @given(_events)
    def test_top_operations_totals_are_consistent(self, events):
        _, tracer = _replay(events)
        ops = analysis.top_operations(tracer.spans, limit=100)
        total_count = sum(entry["count"] for entry in ops)
        assert total_count == sum(
            1 for s in tracer.spans if s.kind in ("collective", "gather")
        ) + sum(1 for s in tracer.spans if s.kind == "compute")

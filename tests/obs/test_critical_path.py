"""Critical-path analyzer invariants on a full 2-node / 16-GCD step.

The acceptance bar from the issue: ``critical_path_s`` must equal the
maximum per-rank ledger walltime *bitwise*, and the attribution buckets
must sum to the critical-path total exactly — both sides accumulate the
same floats in the same order, so ``==`` is the right comparison, not
``pytest.approx``.
"""

import pytest

from repro.obs import (
    analyze_step,
    analyze_trace,
    critical_path_report,
    load_trace_events,
    run_traced_step,
)


@pytest.fixture(scope="module")
def run(tmp_path_factory):
    """One traced step on the default 2-node, 16-GCD layout."""
    out = tmp_path_factory.mktemp("trace")
    return run_traced_step(num_gpus=16, gpus_per_node=8,
                           tp_size=4, fsdp_size=2, ddp_size=2, seed=0,
                           out_dir=out)


@pytest.fixture(scope="module")
def analysis(run):
    return analyze_trace(run.tracer)


class TestBitwiseInvariants:
    def test_critical_path_equals_max_ledger_walltime(self, run, analysis):
        walltimes = [
            run.cluster.timeline.ledger(rank).walltime_s
            for rank in range(run.cluster.world_size)
        ]
        assert analysis.critical_path_s == max(walltimes)
        assert analysis.critical_path_s == run.walltime_s

    def test_per_rank_buckets_match_ledgers_exactly(self, run, analysis):
        for rank in range(run.cluster.world_size):
            ledger = run.cluster.timeline.ledger(rank)
            attr = analysis.overall.ranks[rank]
            assert attr.compute_s == ledger.compute_s
            assert attr.comm_s == ledger.comm_s
            assert attr.exposed_comm_s == ledger.exposed_comm_s
            assert attr.busy_s == ledger.walltime_s
            assert attr.flops == ledger.flops
            assert attr.comm_bytes == ledger.comm_bytes

    def test_attribution_buckets_sum_to_critical_path(self, analysis):
        buckets = analysis.overall.attribution
        total = (
            buckets["exposed_compute_s"] + buckets["exposed_comm_s"] + buckets["io_s"]
        )
        assert total == analysis.critical_path_s

    def test_slack_is_zero_on_critical_rank_and_nonnegative(self, analysis):
        overall = analysis.overall
        assert overall.slack_s[overall.critical_rank] == 0.0
        assert all(slack >= 0.0 for slack in overall.slack_s.values())
        for rank, slack in overall.slack_s.items():
            assert slack == overall.critical_path_s - overall.ranks[rank].busy_s


class TestDecomposition:
    def test_phases_cover_engine_stages(self, analysis):
        assert {"engine.forward", "engine.backward", "engine.grad_sync"} <= set(
            analysis.overall.phases
        )

    def test_layers_identified(self, analysis):
        assert {"block0", "block1"} <= set(analysis.overall.layers)

    def test_exposed_comm_by_op_names_collectives(self, analysis):
        assert "all_reduce" in analysis.overall.exposed_comm_by_op

    def test_bound_resource_is_named(self, analysis):
        assert analysis.bound_resource in ("compute", "comm", "io", "idle")
        assert analysis.bound_resource != "idle"

    def test_exposed_comm_fraction_in_unit_interval(self, analysis):
        assert 0.0 <= analysis.overall.exposed_comm_fraction <= 1.0

    def test_single_step_cut_present(self, run, analysis):
        assert [cut.label for cut in analysis.steps] == ["step.0"]
        cut = analyze_step(run.tracer, step=0)
        assert cut.label == "step.0"
        with pytest.raises(KeyError):
            analyze_step(run.tracer, step=7)


class TestMultiStep:
    def test_steps_labeled_and_ordered(self):
        run = run_traced_step(num_gpus=4, gpus_per_node=4, tp_size=2,
                              fsdp_size=2, ddp_size=1, micro_batch=1,
                              num_steps=3)
        analysis = analyze_trace(run.tracer)
        assert [cut.label for cut in analysis.steps] == [
            "step.0", "step.1", "step.2"
        ]
        # Every step cut is internally consistent.
        for cut in analysis.steps:
            buckets = cut.attribution
            assert (
                buckets["exposed_compute_s"]
                + buckets["exposed_comm_s"]
                + buckets["io_s"]
                == cut.critical_path_s
            )


class TestCrossRankChain:
    def test_chain_covers_critical_rank(self, analysis):
        chain = analysis.overall.chain
        assert chain
        assert chain[-1].rank == analysis.overall.critical_rank
        assert chain[-1].via is None  # walk started there
        assert all(seg.spans > 0 for seg in chain)

    def test_chain_jumps_to_injected_straggler(self):
        """A massively skewed off-critical rank must appear in the chain.

        Rank 2's compute is inflated until it dominates the step, so the
        dependency walk from the critical rank has to pass through the
        collective gated by rank 2's late arrival.
        """
        run = run_traced_step(num_gpus=4, gpus_per_node=4, tp_size=2,
                              fsdp_size=2, ddp_size=1, micro_batch=1,
                              compute_skew={2: 10_000_000.0})
        analysis = analyze_trace(run.tracer)
        assert 2 in {seg.rank for seg in analysis.overall.chain}
        entered = [seg for seg in analysis.overall.chain if seg.via is not None]
        assert all(seg.via_cid is not None for seg in entered)


class TestSerializationRoundTrip:
    def test_loaded_trace_analyzes_bitwise_identically(self, run, analysis):
        spans = load_trace_events(run.files["events"])
        reloaded = analyze_trace(spans)
        assert reloaded.critical_path_s == analysis.critical_path_s
        assert reloaded.overall.critical_rank == analysis.overall.critical_rank
        for rank, attr in analysis.overall.ranks.items():
            assert reloaded.overall.ranks[rank].as_dict() == attr.as_dict()


class TestEmptyAndDegenerate:
    def test_empty_trace(self):
        analysis = analyze_trace([])
        assert analysis.critical_path_s == 0.0
        assert analysis.bound_resource == "idle"
        assert analysis.steps == []

    def test_report_renders(self, analysis):
        text = critical_path_report(analysis)
        assert "critical path:" in text
        assert "bound resource:" in text
        assert "Per-rank slack" in text

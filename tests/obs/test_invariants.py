"""Trace <-> ledger invariants on a full 2-node / 16-GCD traced step.

The acceptance bar for the observability subsystem: for every rank the
span sums must equal the Timeline ledgers *exactly* (bitwise ``==``,
not approximately) because both sides accumulate the same floats in
the same order, and a disabled tracer must record nothing while
leaving the simulation byte-identical.
"""

import json

import pytest

from repro.obs import analysis, run_traced_step, to_chrome_trace
from repro.obs.tracer import SPAN_KINDS


@pytest.fixture(scope="module", params=["off", "on"])
def run(request):
    """One traced step on the default 2-node, 16-GCD layout.

    Parameterized over the symmetry-folding policy: traced steps are
    numeric, so ``fold="on"`` silently stays in exact mode — every
    invariant must hold identically under both settings.
    """
    return run_traced_step(num_gpus=16, gpus_per_node=8,
                           tp_size=4, fsdp_size=2, ddp_size=2, seed=0,
                           fold=request.param)


class TestLedgerEquality:
    def test_compute_sums_match_exactly(self, run):
        compute = analysis.compute_seconds_by_rank(run.tracer.spans)
        for rank in range(run.cluster.world_size):
            assert compute.get(rank, 0.0) == run.cluster.timeline.ledger(rank).compute_s

    def test_exposed_comm_sums_match_exactly(self, run):
        exposed = analysis.exposed_comm_seconds_by_rank(run.tracer.spans)
        for rank in range(run.cluster.world_size):
            ledger = run.cluster.timeline.ledger(rank)
            assert exposed.get(rank, 0.0) == ledger.exposed_comm_s

    def test_total_comm_sums_match_exactly(self, run):
        comm = analysis.comm_seconds_by_rank(run.tracer.spans)
        for rank in range(run.cluster.world_size):
            assert comm.get(rank, 0.0) == run.cluster.timeline.ledger(rank).comm_s

    def test_busy_sums_equal_ledger_walltime(self, run):
        """sum(span durations on rank r) == ledger(r).walltime_s."""
        compute = analysis.compute_seconds_by_rank(run.tracer.spans)
        exposed = analysis.exposed_comm_seconds_by_rank(run.tracer.spans)
        for rank in range(run.cluster.world_size):
            ledger = run.cluster.timeline.ledger(rank)
            assert compute.get(rank, 0.0) + exposed.get(rank, 0.0) == ledger.walltime_s

    def test_walltime_is_max_busy_rank(self, run):
        busy = analysis.busy_seconds_by_rank(run.tracer.spans)
        assert run.walltime_s == max(busy.values())
        assert run.walltime_s == run.cluster.timeline.walltime_s()


class TestSpanWellFormedness:
    def test_every_span_kind_is_known(self, run):
        assert {s.kind for s in run.tracer.spans} <= SPAN_KINDS

    def test_hidden_never_exceeds_duration(self, run):
        for span in run.tracer.spans:
            assert 0.0 <= span.hidden_s <= span.dur
            assert span.busy_s >= 0.0

    def test_all_ranks_traced(self, run):
        ranks = {s.rank for s in run.tracer.spans if s.kind == "compute"}
        assert ranks == set(range(16))

    def test_gather_spans_reclassified(self, run):
        """FSDP shard gathers are kind 'gather', not bare collectives."""
        gathers = [s for s in run.tracer.spans if s.kind == "gather"]
        assert gathers
        assert all(s.name == "all_gather" for s in gathers if s.dur > 0)

    def test_scopes_capture_step_phases(self, run):
        scopes = {s.scope for s in run.tracer.spans}
        assert any(scope.startswith("step.0/engine.forward") for scope in scopes)
        assert any(scope.startswith("step.0/engine.backward") for scope in scopes)
        assert any("engine.grad_sync" in scope for scope in scopes)

    def test_optimizer_marker_recorded(self, run):
        markers = [s for s in run.tracer.spans if s.kind == "optimizer"]
        assert len(markers) == 1
        assert markers[0].name == "apply"


class TestChromeExportValidity:
    def test_trace_json_is_valid_and_consistent(self, run, tmp_path):
        doc = to_chrome_trace(run.tracer)
        # Round-trip through the serializer chrome://tracing would read.
        loaded = json.loads(json.dumps(doc))
        events = [e for e in loaded["traceEvents"] if e["ph"] in ("X", "i")]
        assert len(events) == len(run.tracer.spans)
        for event in events:
            assert event["ts"] >= 0.0
            if event["ph"] == "X":
                assert event["dur"] > 0.0

    def test_per_rank_span_sums_match_ledgers_via_export(self, run):
        """Chrome-trace durations reproduce the ledgers (in microseconds)."""
        doc = to_chrome_trace(run.tracer)
        busy_us: dict[int, float] = {}
        for event in doc["traceEvents"]:
            if event.get("ph") == "X":
                busy_us[event["pid"]] = busy_us.get(event["pid"], 0.0) + \
                    event["args"]["exposed_s"] * 1e6
        for rank in range(run.cluster.world_size):
            ledger = run.cluster.timeline.ledger(rank)
            assert busy_us[rank] == pytest.approx(ledger.walltime_s * 1e6, rel=1e-12)


class TestMetrics:
    def test_step_metrics_populated(self, run):
        snap = run.tracer.metrics.as_dict()
        assert snap["counters"]["optimizer.steps"] == 1.0
        assert snap["histograms"]["step.walltime_s"]["count"] == 1
        assert snap["histograms"]["train.loss"]["count"] == 1
        assert snap["gauges"]["step.loss"] == run.loss
        for rank in range(16):
            assert snap["gauges"][f"memory.peak_bytes.rank{rank}"] > 0.0
        assert 0.0 <= snap["gauges"]["step.exposed_comm_ratio"] <= 1.0

    def test_span_counters_match_span_list(self, run):
        snap = run.tracer.metrics.as_dict()["counters"]
        for kind in ("compute", "collective", "gather"):
            recorded = sum(1 for s in run.tracer.spans if s.kind == kind)
            assert snap[f"spans.{kind}"] == recorded


class TestDisabledTracer:
    def test_untraced_run_records_nothing_and_matches(self, run):
        """Default (null) tracer: zero events, byte-identical simulation."""
        from repro.cluster import VirtualCluster
        from repro.data.loader import Batch
        from repro.models import OrbitConfig, build_model
        from repro.obs.capture import TRACE_CONFIG_KWARGS
        from repro.parallel import HybridParallelPlan, HybridSTOPEngine
        from repro.parallel.compute import PeakFractionCompute
        from repro.train.distributed import DistributedTrainer

        import numpy as np

        cluster = VirtualCluster(num_gpus=16, gpus_per_node=8)  # no tracer
        plan = HybridParallelPlan(cluster, tp_size=4, fsdp_size=2, ddp_size=2)
        config = OrbitConfig("trace-tiny", **TRACE_CONFIG_KWARGS)
        model = build_model(config, rng=0)
        engine = HybridSTOPEngine(model, plan, prefetch=True, layer_wrapping=True,
                                  compute_model=PeakFractionCompute(cluster))
        trainer = DistributedTrainer(engine, np.ones((config.img_height, 1)))
        rng = np.random.default_rng(0)
        batch = Batch(
            x=rng.normal(size=(8, 3, 8, 8)).astype(np.float32),
            y=rng.normal(size=(8, 2, 8, 8)).astype(np.float32),
            lead_time_hours=np.full((8,), 24.0, dtype=np.float32),
        )
        loss = trainer.train_step(batch)

        assert len(cluster.tracer.spans) == 0
        assert cluster.tracer.metrics.as_dict() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }
        # The simulation itself is unaffected by tracing.
        assert loss == run.loss
        for rank in range(16):
            a = cluster.timeline.ledger(rank)
            b = run.cluster.timeline.ledger(rank)
            assert (a.compute_s, a.comm_s, a.exposed_comm_s) == \
                (b.compute_s, b.comm_s, b.exposed_comm_s)


class TestDeterminism:
    def test_identical_seeds_identical_traces(self, run):
        other = run_traced_step(num_gpus=16, gpus_per_node=8,
                                tp_size=4, fsdp_size=2, ddp_size=2, seed=0)
        assert len(other.tracer.spans) == len(run.tracer.spans)
        assert [s.to_dict() for s in other.tracer.spans] == \
            [s.to_dict() for s in run.tracer.spans]

"""Tests for model configs, parameter counting, and FLOP counting."""

import numpy as np
import pytest

from repro.meta import MetaArray
from repro.models import (
    ORBIT_113B,
    ORBIT_10B,
    ORBIT_115M,
    ORBIT_1B,
    PAPER_MODELS,
    PROXY_MODELS,
    OrbitConfig,
    build_model,
    count_parameters,
    parameter_breakdown,
    step_flops,
)
from repro.models.flops import forward_flops_per_sample
from repro.nn.context import ExecutionContext, execution_context


class TestConfigs:
    def test_paper_presets_match_section_iv(self):
        assert (ORBIT_115M.embed_dim, ORBIT_115M.depth, ORBIT_115M.num_heads) == (1024, 8, 16)
        assert (ORBIT_1B.embed_dim, ORBIT_1B.depth, ORBIT_1B.num_heads) == (3072, 8, 16)
        assert (ORBIT_10B.embed_dim, ORBIT_10B.depth, ORBIT_10B.num_heads) == (8192, 11, 32)
        assert (ORBIT_113B.embed_dim, ORBIT_113B.depth, ORBIT_113B.num_heads) == (12288, 56, 64)

    def test_default_grid_is_1p40625_degree(self):
        assert (ORBIT_115M.img_height, ORBIT_115M.img_width) == (128, 256)

    def test_num_patches(self):
        cfg = OrbitConfig("t", embed_dim=8, depth=1, num_heads=2, img_height=16, img_width=32, patch_size=4)
        assert cfg.num_patches == 4 * 8

    def test_with_channels(self):
        cfg = ORBIT_115M.with_channels(91)
        assert cfg.in_vars == 91 and cfg.out_vars == 91
        cfg2 = ORBIT_115M.with_channels(91, out_vars=4)
        assert cfg2.out_vars == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            OrbitConfig("bad", embed_dim=10, depth=1, num_heads=3)
        with pytest.raises(ValueError):
            OrbitConfig("bad", embed_dim=8, depth=1, num_heads=2, img_height=10, patch_size=4)
        with pytest.raises(ValueError):
            OrbitConfig("bad", embed_dim=8, depth=0, num_heads=2)

    def test_proxy_family_is_size_ordered(self):
        sizes = [count_parameters(cfg) for cfg in PROXY_MODELS.values()]
        assert sizes == sorted(sizes)
        assert len(PROXY_MODELS) == 4


class TestParameterCounts:
    @pytest.mark.parametrize("name", list(PROXY_MODELS))
    def test_analytic_matches_built_model(self, name):
        cfg = PROXY_MODELS[name]
        model = build_model(cfg, meta=True)
        assert model.num_parameters() == count_parameters(cfg)

    def test_analytic_matches_real_model(self):
        cfg = PROXY_MODELS["proxy-115m"]
        model = build_model(cfg, rng=0)
        assert model.num_parameters() == count_parameters(cfg)

    @pytest.mark.parametrize(
        "cfg,target,tolerance",
        [
            (ORBIT_115M, 115e6, 0.15),
            (ORBIT_1B, 1e9, 0.15),
            (ORBIT_10B, 10e9, 0.15),
            (ORBIT_113B, 113e9, 0.15),
        ],
    )
    def test_paper_sizes_within_tolerance(self, cfg, target, tolerance):
        """Sanity: presets land near their advertised sizes."""
        params = count_parameters(cfg)
        assert abs(params - target) / target < tolerance, f"{cfg.name}: {params:.3e}"

    def test_qk_layernorm_adds_parameters(self):
        cfg = PROXY_MODELS["proxy-115m"]
        import dataclasses

        plain = dataclasses.replace(cfg, qk_layernorm=False)
        assert count_parameters(cfg) > count_parameters(plain)

    def test_breakdown_sums_to_total(self):
        cfg = PROXY_MODELS["proxy-10b"]
        assert sum(parameter_breakdown(cfg).values()) == count_parameters(cfg)


class TestFlops:
    def test_analytic_matches_meta_execution(self):
        cfg = PROXY_MODELS["proxy-1b"]
        model = build_model(cfg, meta=True)
        ctx = ExecutionContext()
        with execution_context(ctx):
            model(MetaArray((1, cfg.in_vars, cfg.img_height, cfg.img_width)), MetaArray((1,)))
        assert ctx.matmul_flops == pytest.approx(forward_flops_per_sample(cfg), rel=1e-12)

    def test_backward_is_twice_forward(self):
        cfg = PROXY_MODELS["proxy-115m"]
        flops = step_flops(cfg)
        assert flops.backward == 2 * flops.forward
        assert flops.recompute == 0.0

    def test_checkpointing_adds_one_forward(self):
        cfg = PROXY_MODELS["proxy-115m"]
        flops = step_flops(cfg, activation_checkpointing=True)
        assert flops.recompute == flops.forward
        assert flops.total == 4 * flops.forward

    def test_flops_grow_with_channels(self):
        f48 = forward_flops_per_sample(ORBIT_115M)
        f91 = forward_flops_per_sample(ORBIT_115M.with_channels(91))
        assert f91 > f48

    def test_113b_per_sample_flops_magnitude(self):
        # 113B params, 2048 tokens: forward alone is several hundred TFLOPs.
        assert forward_flops_per_sample(ORBIT_113B) > 1e14

"""Tests for the full ClimaX/ORBIT model: shapes, gradients, modes."""

import numpy as np
import pytest

from repro.meta import MetaArray, is_meta
from repro.models import PROXY_MODELS, OrbitConfig, build_model

from tests.nn.gradcheck import check_module_gradients

TINY = OrbitConfig(
    "tiny",
    embed_dim=8,
    depth=2,
    num_heads=2,
    in_vars=3,
    out_vars=2,
    img_height=8,
    img_width=8,
    patch_size=4,
)


def tiny_inputs(batch=2, dtype=np.float64, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    x = rng.normal(size=(batch, TINY.in_vars, TINY.img_height, TINY.img_width)).astype(dtype)
    lead = np.full((batch,), 24.0, dtype)
    return x, lead


class TestForward:
    def test_output_shape(self):
        model = build_model(TINY, rng=0)
        x, lead = tiny_inputs(dtype=np.float32)
        y = model(x, lead)
        assert y.shape == (2, TINY.out_vars, 8, 8)

    def test_input_shape_validated(self):
        model = build_model(TINY, rng=0)
        with pytest.raises(ValueError):
            model(np.zeros((2, 5, 8, 8), np.float32), np.zeros(2, np.float32))

    def test_deterministic_given_seed(self):
        x, lead = tiny_inputs(dtype=np.float32)
        y1 = build_model(TINY, rng=7)(x, lead)
        y2 = build_model(TINY, rng=7)(x, lead)
        np.testing.assert_array_equal(y1, y2)

    def test_different_lead_times_differ(self):
        model = build_model(TINY, rng=0)
        x, _ = tiny_inputs(dtype=np.float32)
        y1 = model(x, np.full(2, 24.0, np.float32))
        model.clear_cache()
        y30 = model(x, np.full(2, 720.0, np.float32))
        assert not np.allclose(y1, y30)

    def test_qk_layernorm_changes_model(self):
        import dataclasses

        x, lead = tiny_inputs(dtype=np.float32)
        orbit = build_model(TINY, rng=0)(x, lead)
        climax = build_model(dataclasses.replace(TINY, qk_layernorm=False), rng=0)(x, lead)
        assert not np.allclose(orbit, climax)


class TestBackward:
    def test_gradcheck_full_model(self):
        model = build_model(TINY, rng=0, dtype=np.float64)
        x, lead = tiny_inputs(batch=1)
        check_module_gradients(
            model, x, forward=lambda inp: model(inp, lead), rtol=2e-4, atol=1e-6
        )

    def test_backward_shape(self):
        model = build_model(TINY, rng=0)
        x, lead = tiny_inputs(dtype=np.float32)
        y = model(x, lead)
        gx = model.backward(np.ones_like(y))
        assert gx.shape == x.shape

    def test_all_parameters_receive_gradients(self):
        model = build_model(TINY, rng=0)
        x, lead = tiny_inputs(dtype=np.float32)
        y = model(x, lead)
        model.backward(np.ones_like(y))
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert missing == []


class TestActivationCheckpointing:
    def test_equivalent_outputs_and_gradients(self):
        x, lead = tiny_inputs()
        plain = build_model(TINY, rng=5, dtype=np.float64)
        ckpt = build_model(TINY, rng=5, dtype=np.float64, activation_checkpointing=True)
        y_plain = plain(x, lead)
        y_ckpt = ckpt(x, lead)
        np.testing.assert_allclose(y_plain, y_ckpt)
        g = np.random.default_rng(1).normal(size=y_plain.shape)
        plain.backward(g.copy())
        ckpt.backward(g.copy())
        plain_grads = dict(plain.named_parameters())
        for name, param in ckpt.named_parameters():
            ref = plain_grads[name.replace("inner.", "")]
            np.testing.assert_allclose(param.grad, ref.grad, err_msg=name)

    def test_blocks_are_wrapped(self):
        from repro.nn import CheckpointWrapper

        model = build_model(TINY, rng=0, activation_checkpointing=True)
        assert all(isinstance(b, CheckpointWrapper) for b in model.blocks)


class TestMetaMode:
    def test_meta_forward_backward(self):
        cfg = PROXY_MODELS["proxy-113b"]
        model = build_model(cfg, meta=True)
        x = MetaArray((2, cfg.in_vars, cfg.img_height, cfg.img_width))
        y = model(x, MetaArray((2,)))
        assert is_meta(y)
        assert y.shape == (2, cfg.out_vars, cfg.img_height, cfg.img_width)
        gx = model.backward(MetaArray(y.shape))
        assert gx.shape == x.shape

    def test_meta_parameters_have_no_data(self):
        model = build_model(PROXY_MODELS["proxy-115m"], meta=True)
        assert all(p.is_meta for p in model.parameters())

    def test_paper_113b_config_buildable_in_meta(self):
        """The full 113-billion-parameter model is constructible (shape-only)."""
        from repro.models import ORBIT_113B, count_parameters

        model = build_model(ORBIT_113B, meta=True)
        assert model.num_parameters() == count_parameters(ORBIT_113B)
        assert model.num_parameters() > 100e9

"""Tests for typed requests/responses and the serving policy."""

import pytest

from repro.serve import (
    ForecastRequest,
    ForecastResponse,
    LatencyWindow,
    RequestError,
    ServePolicy,
    STATUS_OK,
)
from repro.serve.policy import policy_problems


def _request(**overrides):
    base = dict(request_id=0, init_index=3, lead_steps=4,
                out_vars=("2m_temperature",), arrival_s=1.0)
    base.update(overrides)
    return ForecastRequest(**base)


class TestForecastRequest:
    def test_batch_key_is_the_variable_set(self):
        assert _request().batch_key == ("2m_temperature",)

    @pytest.mark.parametrize("bad", [
        dict(init_index=-1),
        dict(lead_steps=0),
        dict(out_vars=()),
        dict(arrival_s=-0.1),
    ])
    def test_invalid_requests_rejected(self, bad):
        with pytest.raises(RequestError):
            _request(**bad)

    def test_out_vars_normalized_to_tuple(self):
        request = _request(out_vars=["2m_temperature", "geopotential_500"])
        assert request.out_vars == ("2m_temperature", "geopotential_500")


class TestForecastResponse:
    def test_latency_is_arrival_to_completion(self):
        response = ForecastResponse(
            request=_request(arrival_s=2.0), status=STATUS_OK, completed_s=2.75
        )
        assert response.ok
        assert response.latency_s == pytest.approx(0.75)

    def test_as_dict_excludes_the_array(self):
        response = ForecastResponse(
            request=_request(), status=STATUS_OK, completed_s=1.5
        )
        assert "result" not in response.as_dict()
        assert response.as_dict()["request_id"] == 0


class TestLatencyWindow:
    def test_sliding_capacity(self):
        window = LatencyWindow(capacity=3)
        for value in (1.0, 2.0, 3.0, 4.0):
            window.observe(value)
        assert window.values == [2.0, 3.0, 4.0]

    def test_percentiles(self):
        window = LatencyWindow()
        assert window.percentile(99) == 0.0
        for value in range(1, 101):
            window.observe(float(value))
        assert window.percentile(50) == 50.0
        assert window.percentile(99) == 99.0


class TestServePolicy:
    def test_defaults_valid(self):
        assert ServePolicy().problems() == []

    @pytest.mark.parametrize("bad,match", [
        (dict(max_batch=0), "max_batch"),
        (dict(batch_window_s=-1.0), "batch_window_s"),
        (dict(queue_limit=0), "queue_limit"),
        (dict(cache_entries=-1), "cache_entries"),
        (dict(min_replicas=0), "min_replicas"),
        (dict(min_replicas=3, max_replicas=2), "replica bounds"),
        (dict(autoscale_tick_s=0.0), "autoscale_tick_s"),
        (dict(utilization_low=1.5), "utilization_low"),
    ])
    def test_invalid_policies_raise(self, bad, match):
        with pytest.raises(ValueError, match=match):
            ServePolicy(**bad)

    def test_from_spec_reads_the_serve_knobs(self):
        from repro.models import OrbitConfig
        from repro.runtime import RunSpec

        spec = RunSpec(
            config=OrbitConfig("t", embed_dim=16, depth=1, num_heads=2,
                               in_vars=4, out_vars=4, img_height=8,
                               img_width=16, patch_size=4),
            num_gpus=8, tp_size=2, fsdp_size=2, ddp_size=2,
            serve_max_batch=4, serve_window_s=0.01, serve_queue_limit=64,
            serve_cache_entries=8, serve_min_replicas=2, serve_max_replicas=3,
        )
        policy = ServePolicy.from_spec(spec)
        assert policy.max_batch == 4
        assert policy.batch_window_s == 0.01
        assert policy.queue_limit == 64
        assert policy.cache_entries == 8
        assert policy.min_replicas == 2
        assert policy.max_replicas == 3

    def test_runspec_rejects_bad_serve_knobs_like_topology(self):
        from repro.models import OrbitConfig
        from repro.runtime import RunSpec, RunSpecError

        with pytest.raises(RunSpecError, match="serve max_batch"):
            RunSpec(
                config=OrbitConfig("t", embed_dim=16, depth=1, num_heads=2,
                                   in_vars=4, out_vars=4, img_height=8,
                                   img_width=16, patch_size=4),
                num_gpus=8, tp_size=2, fsdp_size=2, ddp_size=2,
                serve_max_batch=0,
            )

    def test_policy_problems_collects_everything(self):
        problems = policy_problems(
            max_batch=0, batch_window_s=-1.0, queue_limit=0, cache_entries=-1,
            min_replicas=0, max_replicas=-1,
        )
        assert len(problems) >= 5

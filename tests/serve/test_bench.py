"""Serve bench: matrix records, baseline round-trip, regression gate."""

import pytest

from repro.serve.bench import (
    DEFAULT_MATRIX,
    SCHEMA_VERSION,
    compare,
    load_baseline,
    run_serve_case,
    run_serve_matrix,
    summary_table,
    to_document,
    write_baseline,
)

EXPECTED_METRICS = (
    "offered", "completed", "rejected", "throughput_rps", "latency_p50_s",
    "latency_p99_s", "latency_mean_s", "cache_hit_ratio", "model_steps",
    "replicas_final", "replicas_peak", "utilization", "makespan_s",
)


@pytest.fixture(scope="module")
def quick_records(serve_world):
    return run_serve_matrix(quick=True, world=serve_world)


class TestMatrix:
    def test_matrix_names_and_quick_subset(self):
        names = [case.name for case in DEFAULT_MATRIX]
        assert names == ["hot-25rps", "hot-150rps", "cold-300rps",
                         "surge-800rps"]
        assert [c.name for c in DEFAULT_MATRIX if c.quick] == ["hot-25rps"]

    def test_case_record_has_every_gated_metric(self, quick_records):
        record = quick_records["hot-25rps"]
        for metric in EXPECTED_METRICS:
            assert metric in record
        assert record["load"]["rate_rps"] == 25.0
        assert record["cache_hit_ratio"] > 0.5  # hot workload earns the cache

    def test_case_runs_are_reproducible(self, serve_world, quick_records):
        again = run_serve_case(DEFAULT_MATRIX[0], world=serve_world)
        assert again == quick_records["hot-25rps"]

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            run_serve_matrix(cases=(), quick=False)


class TestBaselineFile:
    def test_document_round_trip(self, quick_records, tmp_path):
        path = write_baseline(quick_records, tmp_path / "BENCH_serve.json")
        doc = load_baseline(path)
        assert doc["schema"] == SCHEMA_VERSION
        assert doc["cases"] == to_document(quick_records)["cases"]

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 999, "cases": {}}')
        with pytest.raises(ValueError, match="schema"):
            load_baseline(path)

    def test_summary_table_mentions_every_case(self, quick_records):
        table = summary_table(to_document(quick_records))
        assert "hot-25rps" in table


class TestRegressionGate:
    def test_identical_documents_pass(self, quick_records):
        doc = to_document(quick_records)
        assert compare(doc, doc) == []

    def test_latency_drift_detected(self, quick_records):
        current = to_document(quick_records)
        baseline = to_document(
            {k: dict(v) for k, v in quick_records.items()}
        )
        baseline["cases"]["hot-25rps"]["latency_p99_s"] *= 2.0
        problems = compare(current, baseline)
        assert any("latency_p99_s" in p for p in problems)

    def test_exact_count_change_is_a_replay_break(self, quick_records):
        current = to_document(quick_records)
        baseline = to_document(
            {k: dict(v) for k, v in quick_records.items()}
        )
        baseline["cases"]["hot-25rps"]["model_steps"] += 1
        problems = compare(current, baseline)
        assert any("seeded replay" in p for p in problems)

    def test_missing_case_honours_require_all(self, quick_records):
        partial = to_document(quick_records)  # quick subset only
        full_baseline = to_document(
            {**quick_records,
             "hot-150rps": dict(quick_records["hot-25rps"])}
        )
        assert compare(partial, full_baseline, require_all=False) == []
        problems = compare(partial, full_baseline, require_all=True)
        assert any("missing" in p for p in problems)

    def test_committed_baseline_matches_fresh_quick_run(self, quick_records):
        """The repo's BENCH_serve.json must agree with a fresh quick run —
        the same check CI's ``repro serve --check --quick`` performs."""
        from pathlib import Path

        baseline_path = Path(__file__).resolve().parents[2] / "BENCH_serve.json"
        baseline = load_baseline(baseline_path)
        assert compare(to_document(quick_records), baseline,
                       require_all=False) == []

"""Shared serving-test world: one dataset + untrained seeded forecaster.

Session-scoped because the world is immutable from the serving layer's
point of view (servers never write the dataset or the model), and the
synthetic-ERA5 construction is the slow part of every serve test.
"""

import pytest

from repro.serve.bench import build_serve_world


@pytest.fixture(scope="session")
def serve_world():
    return build_serve_world()


@pytest.fixture(scope="session")
def dataset(serve_world):
    return serve_world[0]


@pytest.fixture(scope="session")
def forecaster(serve_world):
    return serve_world[1]

"""Replica pool and autoscaler mechanics."""

import pytest

from repro.serve import Autoscaler, ReplicaPool, ServePolicy, ServiceCostModel


def _pool(initial=1, **cost):
    return ReplicaPool(ServiceCostModel(**cost), initial=initial)


class TestCostModel:
    def test_batch_service_time_composition(self):
        cost = ServiceCostModel(setup_s=0.002, per_request_s=0.0002,
                                per_step_s=0.0015)
        assert cost.batch_service_s(4, 10) == pytest.approx(
            0.002 + 4 * 0.0002 + 10 * 0.0015
        )


class TestReplicaPool:
    def test_acquire_prefers_lowest_id(self):
        pool = _pool(initial=3)
        replica = pool.acquire_idle(now=0.0)
        assert replica.replica_id == 0

    def test_busy_replica_not_acquirable(self):
        pool = _pool(initial=1)
        replica = pool.acquire_idle(now=0.0)
        replica.begin_batch(0.0, 0.5, num_requests=2)
        assert pool.acquire_idle(now=0.25) is None
        assert pool.acquire_idle(now=0.5) is replica

    def test_begin_batch_while_busy_raises(self):
        pool = _pool(initial=1)
        replica = pool.acquire_idle(now=0.0)
        replica.begin_batch(0.0, 0.5, num_requests=1)
        with pytest.raises(RuntimeError):
            replica.begin_batch(0.25, 0.5, num_requests=1)

    def test_scale_up_respects_setup_delay(self):
        pool = _pool(initial=1, replica_setup_s=0.05)
        fresh = pool.scale_up(now=1.0)
        assert fresh.ready_at_s == pytest.approx(1.05)
        assert pool.acquire_idle(now=1.0) is not fresh
        assert len(pool.replicas) == 2

    def test_scale_down_retires_highest_idle(self):
        pool = _pool(initial=3)
        retired = pool.scale_down(now=0.0)
        assert retired.replica_id == 2
        assert len(pool.replicas) == 2
        assert pool.retired == [retired]

    def test_scale_down_with_no_idle_replica_returns_none(self):
        pool = _pool(initial=1)
        pool.acquire_idle(now=0.0).begin_batch(0.0, 1.0, num_requests=1)
        assert pool.scale_down(now=0.5) is None

    def test_utilization_counts_live_busy_time(self):
        pool = _pool(initial=2)
        pool.acquire_idle(now=0.0).begin_batch(0.0, 1.0, num_requests=1)
        # One of two replicas busy for the first second of a 2 s horizon.
        assert pool.utilization(now=2.0) == pytest.approx(1.0 / 4.0)


class TestAutoscaler:
    def _policy(self, **overrides):
        base = dict(min_replicas=1, max_replicas=4, queue_high=8,
                    target_p99_s=0.25, utilization_low=0.30, cooldown_s=0.5)
        base.update(overrides)
        return ServePolicy(**base)

    def test_scales_up_on_deep_queue(self):
        scaler = Autoscaler(self._policy())
        pool = _pool(initial=1)
        decision = scaler.evaluate(now=1.0, queue_depth=20, p99_s=0.0, pool=pool)
        assert decision.action == "up"
        assert "queue" in decision.reason
        assert len(pool.replicas) == 2

    def test_scales_up_on_p99_breach(self):
        scaler = Autoscaler(self._policy())
        pool = _pool(initial=1)
        decision = scaler.evaluate(now=1.0, queue_depth=0, p99_s=0.9, pool=pool)
        assert decision.action == "up"
        assert "p99" in decision.reason

    def test_scales_down_when_idle_and_cold(self):
        scaler = Autoscaler(self._policy())
        pool = _pool(initial=3)
        decision = scaler.evaluate(now=100.0, queue_depth=0, p99_s=0.0, pool=pool)
        assert decision.action == "down"
        assert len(pool.replicas) == 2

    def test_respects_replica_bounds(self):
        scaler = Autoscaler(self._policy(max_replicas=1))
        pool = _pool(initial=1)
        up = scaler.evaluate(now=1.0, queue_depth=99, p99_s=9.9, pool=pool)
        assert up.action == "hold"
        down = scaler.evaluate(now=100.0, queue_depth=0, p99_s=0.0, pool=pool)
        assert down.action == "hold"
        assert len(pool.replicas) == 1

    def test_cooldown_suppresses_consecutive_actions(self):
        scaler = Autoscaler(self._policy(cooldown_s=1.0))
        pool = _pool(initial=1)
        assert scaler.evaluate(1.0, 99, 0.0, pool).action == "up"
        held = scaler.evaluate(1.5, 99, 0.0, pool)
        assert held.action == "hold"
        assert "cooldown" in held.reason
        assert scaler.evaluate(2.5, 99, 0.0, pool).action == "up"

    def test_decisions_are_recorded(self):
        scaler = Autoscaler(self._policy())
        pool = _pool(initial=1)
        scaler.evaluate(1.0, 99, 0.0, pool)
        scaler.evaluate(9.0, 0, 0.0, pool)
        assert [d.action for d in scaler.decisions] == ["up", "down"]
        record = scaler.decisions[0].as_dict()
        assert record["action"] == "up"
        assert record["replicas"] == 2

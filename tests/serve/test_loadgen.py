"""Seeded open-loop load generator."""

import pytest

from repro.serve import LoadSpec, generate_requests


def _spec(**overrides):
    base = dict(rate_rps=100.0, duration_s=2.0, seed=7, num_windows=32,
                num_hot=4, hot_fraction=0.8)
    base.update(overrides)
    return LoadSpec(**base)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        first = generate_requests(_spec())
        second = generate_requests(_spec())
        assert [(r.arrival_s, r.init_index, r.lead_steps, r.out_vars)
                for r in first] == \
               [(r.arrival_s, r.init_index, r.lead_steps, r.out_vars)
                for r in second]

    def test_different_seed_different_trace(self):
        assert [r.arrival_s for r in generate_requests(_spec(seed=7))] != \
               [r.arrival_s for r in generate_requests(_spec(seed=8))]


class TestShape:
    def test_arrivals_ordered_and_bounded(self):
        requests = generate_requests(_spec())
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= a < 2.0 for a in arrivals)
        assert [r.request_id for r in requests] == list(range(len(requests)))

    def test_rate_approximately_honoured(self):
        requests = generate_requests(_spec(rate_rps=200.0, duration_s=4.0))
        assert len(requests) == pytest.approx(800, rel=0.25)

    def test_hot_windows_dominate(self):
        requests = generate_requests(_spec(hot_fraction=0.9, num_hot=2))
        hot = sum(1 for r in requests if r.init_index < 2)
        assert hot / len(requests) > 0.75

    def test_cold_load_spreads_over_all_windows(self):
        requests = generate_requests(
            _spec(hot_fraction=0.0, rate_rps=400.0, duration_s=2.0)
        )
        assert len({r.init_index for r in requests}) > 16

    def test_draws_only_configured_choices(self):
        spec = _spec()
        requests = generate_requests(spec)
        assert {r.lead_steps for r in requests} <= set(spec.lead_choices)
        assert {r.out_vars for r in requests} <= set(spec.var_choices)


class TestValidation:
    @pytest.mark.parametrize("bad", [
        dict(rate_rps=0.0),
        dict(duration_s=0.0),
        dict(num_windows=0),
        dict(num_hot=0),
        dict(num_hot=33),
        dict(hot_fraction=1.5),
        dict(lead_choices=()),
        dict(var_choices=()),
    ])
    def test_invalid_specs_raise(self, bad):
        with pytest.raises(ValueError):
            _spec(**bad)

    def test_as_dict_round_trips_scalars(self):
        record = _spec().as_dict()
        assert record["rate_rps"] == 100.0
        assert record["seed"] == 7

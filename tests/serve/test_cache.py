"""Rollout prefix cache: correctness is bitwise, not approximate.

The acceptance contract for serving is that caching is invisible in
the payload — a cache hit, a prefix extension, and a cold recompute
must all return arrays bitwise-identical to a direct
``RolloutForecaster.forecast`` call.
"""

import numpy as np
import pytest

from repro.serve import RolloutPrefixCache


def direct(forecaster, dataset, init_index, lead_steps, out_vars=None):
    full = forecaster.forecast(dataset, init_index, lead_steps)
    if out_vars is None:
        return full
    names = list(dataset.out_names)
    return full[[names.index(v) for v in out_vars]]


class TestBitwiseParity:
    def test_miss_matches_direct_forecast(self, forecaster, dataset):
        cache = RolloutPrefixCache(capacity=4)
        result, steps, hit = cache.forecast(forecaster, dataset, 3, 4)
        assert not hit
        assert steps == 4
        np.testing.assert_array_equal(result, direct(forecaster, dataset, 3, 4))

    def test_hit_is_bitwise_equal_to_recompute(self, forecaster, dataset):
        cache = RolloutPrefixCache(capacity=4)
        first, _, _ = cache.forecast(forecaster, dataset, 2, 6)
        again, steps, hit = cache.forecast(forecaster, dataset, 2, 6)
        assert hit and steps == 0
        np.testing.assert_array_equal(first, again)
        np.testing.assert_array_equal(again, direct(forecaster, dataset, 2, 6))

    def test_shorter_lead_served_from_deeper_prefix(self, forecaster, dataset):
        cache = RolloutPrefixCache(capacity=4)
        cache.forecast(forecaster, dataset, 1, 8)
        for lead in (2, 4, 6):
            result, steps, hit = cache.forecast(forecaster, dataset, 1, lead)
            assert hit and steps == 0
            np.testing.assert_array_equal(
                result, direct(forecaster, dataset, 1, lead)
            )

    def test_deeper_lead_extends_the_prefix(self, forecaster, dataset):
        cache = RolloutPrefixCache(capacity=4)
        cache.forecast(forecaster, dataset, 0, 2)
        result, steps, hit = cache.forecast(forecaster, dataset, 0, 6)
        assert not hit      # paid for new steps ...
        assert steps == 4   # ... but only the extension, not the prefix
        np.testing.assert_array_equal(result, direct(forecaster, dataset, 0, 6))

    def test_variable_selection_rides_free(self, forecaster, dataset):
        cache = RolloutPrefixCache(capacity=4)
        out_vars = ("geopotential_500", "2m_temperature")
        cache.forecast(forecaster, dataset, 2, 4)
        result, steps, hit = cache.forecast(forecaster, dataset, 2, 4,
                                            out_vars=out_vars)
        assert hit and steps == 0
        np.testing.assert_array_equal(
            result, direct(forecaster, dataset, 2, 4, out_vars)
        )

    def test_non_multiple_lead_rejected(self, forecaster, dataset):
        from repro.eval.rollout import RolloutForecaster

        coarse = RolloutForecaster(forecaster.model, forecaster.normalizer,
                                   base_lead_steps=2)
        cache = RolloutPrefixCache(capacity=4)
        with pytest.raises(ValueError, match="not a multiple"):
            cache.forecast(coarse, dataset, 0, 3)


class TestEviction:
    def test_eviction_never_changes_responses(self, forecaster, dataset):
        """Thrash a capacity-2 cache across 5 windows; every response must
        stay bitwise-equal to the direct rollout regardless of which
        entries survived."""
        cache = RolloutPrefixCache(capacity=2)
        for init_index in (0, 1, 2, 3, 4, 0, 2, 4, 1, 3):
            result, _, _ = cache.forecast(forecaster, dataset, init_index, 4)
            np.testing.assert_array_equal(
                result, direct(forecaster, dataset, init_index, 4)
            )
        assert cache.evictions > 0
        assert len(cache) <= 2

    def test_lru_evicts_the_stalest_window(self, forecaster, dataset):
        cache = RolloutPrefixCache(capacity=2)
        cache.forecast(forecaster, dataset, 0, 2)
        cache.forecast(forecaster, dataset, 1, 2)
        cache.forecast(forecaster, dataset, 0, 2)  # refresh window 0
        cache.forecast(forecaster, dataset, 2, 2)  # evicts window 1
        assert cache.depth(0) >= 0
        assert cache.depth(1) == -1
        assert cache.depth(2) >= 0

    def test_capacity_zero_disables_caching(self, forecaster, dataset):
        cache = RolloutPrefixCache(capacity=0)
        for _ in range(2):
            result, steps, hit = cache.forecast(forecaster, dataset, 3, 4)
            assert not hit and steps == 4
            np.testing.assert_array_equal(
                result, direct(forecaster, dataset, 3, 4)
            )
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            RolloutPrefixCache(capacity=-1)


class TestAccounting:
    def test_stats_track_hits_misses_steps(self, forecaster, dataset):
        cache = RolloutPrefixCache(capacity=4)
        cache.forecast(forecaster, dataset, 0, 4)   # miss, 4 steps
        cache.forecast(forecaster, dataset, 0, 2)   # hit, 0 steps
        cache.forecast(forecaster, dataset, 0, 6)   # miss, 2 new steps
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["steps_computed"] == 6
        assert cache.hit_ratio == pytest.approx(1 / 3)

    def test_clear_empties_the_cache(self, forecaster, dataset):
        cache = RolloutPrefixCache(capacity=4)
        cache.forecast(forecaster, dataset, 0, 2)
        cache.clear()
        assert len(cache) == 0
        assert cache.depth(0) == -1

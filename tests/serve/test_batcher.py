"""Tests for the dynamic micro-batcher."""

import pytest

from repro.serve import EventLoop, ForecastRequest, MicroBatcher


def _request(request_id, *, out_vars=("2m_temperature",), arrival_s=0.0):
    return ForecastRequest(request_id=request_id, init_index=0, lead_steps=2,
                           out_vars=out_vars, arrival_s=arrival_s)


def _batcher(loop, batches, **kwargs):
    return MicroBatcher(loop, batches.append, **kwargs)


class TestSizeFlush:
    def test_full_batch_flushes_immediately(self):
        loop = EventLoop()
        batches = []
        batcher = _batcher(loop, batches, max_batch=2, window_s=1.0)
        batcher.add(_request(0))
        assert batches == []
        batcher.add(_request(1))
        assert len(batches) == 1
        assert batches[0].trigger == "full"
        assert [r.request_id for r in batches[0].requests] == [0, 1]
        assert batcher.waiting == 0


class TestWindowFlush:
    def test_deadline_flushes_partial_batch(self):
        loop = EventLoop()
        batches = []
        batcher = _batcher(loop, batches, max_batch=8, window_s=0.01)
        batcher.add(_request(0))
        loop.run_until_idle()
        assert len(batches) == 1
        assert batches[0].trigger == "window"
        assert loop.now == 0.01

    def test_stale_deadline_does_not_reflush(self):
        """A size-triggered flush must invalidate the pending window
        deadline: the stale event fires against the *next* group on the
        same key but sees a newer generation and must not clip its
        window short."""
        loop = EventLoop()
        batches = []
        batcher = _batcher(loop, batches, max_batch=2, window_s=0.01)
        batcher.add(_request(0))
        batcher.add(_request(1))  # size flush at t=0; deadline still pending
        loop.schedule(0.005, batcher.add, _request(2))  # reopens the key
        loop.run_until_idle()
        assert [b.trigger for b in batches] == ["full", "window"]
        assert [r.request_id for b in batches for r in b.requests] == [0, 1, 2]
        # The second group gets its own full window (0.005 + 0.01), not
        # the leftover deadline from the flushed group (0.01).
        assert batches[1].formed_s == pytest.approx(0.015)

    def test_incompatible_requests_never_share_a_batch(self):
        loop = EventLoop()
        batches = []
        batcher = _batcher(loop, batches, max_batch=8, window_s=0.01)
        batcher.add(_request(0, out_vars=("2m_temperature",)))
        batcher.add(_request(1, out_vars=("geopotential_500",)))
        loop.run_until_idle()
        assert len(batches) == 2
        keys = {b.requests[0].batch_key for b in batches}
        assert keys == {("2m_temperature",), ("geopotential_500",)}


class TestDrain:
    def test_flush_all_drains_every_group_deterministically(self):
        loop = EventLoop()
        batches = []
        batcher = _batcher(loop, batches, max_batch=8, window_s=10.0)
        batcher.add(_request(0, out_vars=("geopotential_500",)))
        batcher.add(_request(1, out_vars=("2m_temperature",)))
        batcher.flush_all()
        assert [b.trigger for b in batches] == ["drain", "drain"]
        # Sorted by batch key, not insertion order.
        assert batches[0].requests[0].batch_key == ("2m_temperature",)
        assert batcher.waiting == 0

    def test_batch_ids_are_sequential(self):
        loop = EventLoop()
        batches = []
        batcher = _batcher(loop, batches, max_batch=1, window_s=0.01)
        for i in range(3):
            batcher.add(_request(i))
        assert [b.batch_id for b in batches] == [0, 1, 2]
        assert batcher.batches_formed == 3

"""End-to-end serving invariants: the issue's acceptance contract.

1. Every served forecast is **bitwise-equal** to a direct
   ``RolloutForecaster.forecast`` call — batching, caching, and
   scaling are invisible in the payload.
2. Identical seeded workloads produce **byte-identical** journals and
   artifacts — the serving stack is a deterministic simulation.
"""

import numpy as np
import pytest

from repro.obs.journal import EventJournal
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.serve import (
    ForecastServer,
    LoadSpec,
    ServePolicy,
    STATUS_REJECTED,
    generate_requests,
)

HOT_LOAD = LoadSpec(rate_rps=60.0, duration_s=1.5, seed=3, num_windows=24,
                    num_hot=3, hot_fraction=0.85)


@pytest.fixture()
def requests():
    return generate_requests(HOT_LOAD)


def direct(forecaster, dataset, request):
    full = forecaster.forecast(dataset, request.init_index, request.lead_steps)
    names = list(dataset.out_names)
    return full[[names.index(v) for v in request.out_vars]]


class TestPayloadParity:
    def test_every_response_bitwise_equals_direct_forecast(
        self, forecaster, dataset, requests
    ):
        report = ForecastServer(forecaster, dataset).serve(requests)
        assert report.completed
        for response in report.completed:
            np.testing.assert_array_equal(
                response.result, direct(forecaster, dataset, response.request)
            )

    def test_cache_disabled_serves_identical_payloads(
        self, forecaster, dataset, requests
    ):
        """Eviction/caching policy must never change bytes: capacity 0
        and capacity 32 serve the same arrays."""
        cached = ForecastServer(
            forecaster, dataset, ServePolicy(cache_entries=32)
        ).serve(requests)
        uncached = ForecastServer(
            forecaster, dataset, ServePolicy(cache_entries=0)
        ).serve(requests)
        assert len(cached.responses) == len(uncached.responses)
        for a, b in zip(cached.completed, uncached.completed):
            assert a.request.request_id == b.request.request_id
            np.testing.assert_array_equal(a.result, b.result)
        # Same bytes, very different cost.
        assert cached.stats()["model_steps"] < uncached.stats()["model_steps"]


class TestReplayDeterminism:
    def _run(self, forecaster, dataset):
        journal = EventJournal()
        server = ForecastServer(
            forecaster, dataset,
            tracer=Tracer(), journal=journal, metrics=MetricsRegistry(),
        )
        report = server.serve(generate_requests(HOT_LOAD))
        return report, journal

    def test_identical_seeded_replays_byte_identical(self, forecaster, dataset):
        report_a, journal_a = self._run(forecaster, dataset)
        report_b, journal_b = self._run(forecaster, dataset)
        assert journal_a.to_jsonl() == journal_b.to_jsonl()
        assert report_a.histogram_json() == report_b.histogram_json()
        assert report_a.stats() == report_b.stats()
        assert [d.as_dict() for d in report_a.decisions] == \
               [d.as_dict() for d in report_b.decisions]

    def test_journal_records_serve_lifecycle(self, forecaster, dataset):
        _, journal = self._run(forecaster, dataset)
        categories = [e.category for e in journal.events if e.kind == "serve"]
        assert categories[0] == "start"
        assert categories[-1] == "end"


class TestAdmissionControl:
    def test_tiny_queue_rejects_overload(self, forecaster, dataset):
        policy = ServePolicy(queue_limit=2, max_batch=2, batch_window_s=0.05)
        burst = LoadSpec(rate_rps=500.0, duration_s=0.3, seed=1,
                         num_windows=8, num_hot=2, hot_fraction=0.5)
        report = ForecastServer(forecaster, dataset, policy).serve(
            generate_requests(burst)
        )
        assert report.rejected
        assert all(r.status == STATUS_REJECTED and r.result is None
                   for r in report.rejected)
        stats = report.stats()
        assert stats["offered"] == stats["completed"] + stats["rejected"]

    def test_rejections_are_journaled(self, forecaster, dataset):
        journal = EventJournal()
        policy = ServePolicy(queue_limit=1, max_batch=1, batch_window_s=0.05)
        burst = LoadSpec(rate_rps=500.0, duration_s=0.2, seed=1,
                         num_windows=8, num_hot=2, hot_fraction=0.5)
        ForecastServer(forecaster, dataset, policy, journal=journal).serve(
            generate_requests(burst)
        )
        rejects = [e for e in journal.events if e.category == "reject"]
        assert rejects
        assert all(e.severity == "warning" for e in rejects)


class TestReportShape:
    def test_hot_workload_hit_ratio_above_half(self, forecaster, dataset,
                                               requests):
        stats = ForecastServer(forecaster, dataset).serve(requests).stats()
        assert stats["cache_hit_ratio"] > 0.5

    def test_stats_keys_and_ordering(self, forecaster, dataset, requests):
        report = ForecastServer(forecaster, dataset).serve(requests)
        stats = report.stats()
        for key in ("offered", "completed", "rejected", "throughput_rps",
                    "latency_p50_s", "latency_p99_s", "cache_hit_ratio",
                    "replicas_peak", "utilization", "makespan_s"):
            assert key in stats
        assert stats["latency_p50_s"] <= stats["latency_p99_s"]
        assert [r.request.request_id for r in report.responses] == \
               sorted(r.request.request_id for r in report.responses)

    def test_latency_histogram_counts_every_completion(self, forecaster,
                                                       dataset, requests):
        report = ForecastServer(forecaster, dataset).serve(requests)
        histogram = report.latency_histogram()
        assert sum(histogram["counts"]) == len(report.completed)
        assert len(histogram["bins"]) == len(histogram["counts"]) + 1

    def test_serve_spans_and_metrics_emitted(self, forecaster, dataset,
                                             requests):
        tracer = Tracer()
        metrics = MetricsRegistry()
        ForecastServer(forecaster, dataset, tracer=tracer,
                       metrics=metrics).serve(requests)
        spans = [s for s in tracer.spans if s.kind == "serve"]
        assert spans
        assert metrics.counter("serve.requests").value == len(requests)
        assert metrics.counter("serve.cache_hits").value > 0

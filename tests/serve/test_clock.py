"""Tests for the deterministic simulated-clock event loop."""

import pytest

from repro.serve import EventLoop, SimClock


class TestSimClock:
    def test_monotone(self):
        clock = SimClock()
        clock.advance_to(1.5)
        assert clock.now == 1.5
        with pytest.raises(ValueError, match="backwards"):
            clock.advance_to(1.0)

    def test_advance_to_same_instant_ok(self):
        clock = SimClock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0


class TestEventLoop:
    def test_fires_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(3.0, fired.append, "c")
        loop.schedule(1.0, fired.append, "a")
        loop.schedule(2.0, fired.append, "b")
        assert loop.run_until_idle() == 3
        assert fired == ["a", "b", "c"]
        assert loop.now == 3.0

    def test_ties_fire_in_program_order(self):
        """Equal timestamps must break ties by scheduling order, never
        by heap internals — the replay-determinism contract."""
        loop = EventLoop()
        fired = []
        for tag in range(20):
            loop.schedule(1.0, fired.append, tag)
        loop.run_until_idle()
        assert fired == list(range(20))

    def test_callbacks_schedule_more_events(self):
        loop = EventLoop()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                loop.schedule(loop.now + 1.0, chain, n + 1)

        loop.schedule(0.0, chain, 0)
        loop.run_until_idle()
        assert fired == [0, 1, 2, 3]
        assert loop.now == 3.0

    def test_scheduling_into_the_past_raises(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda: None)
        loop.run_until_idle()
        with pytest.raises(ValueError, match="clock is at"):
            loop.schedule(4.0, lambda: None)

    def test_runaway_backstop(self):
        loop = EventLoop()

        def forever():
            loop.schedule(loop.now + 1.0, forever)

        loop.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="exceeded"):
            loop.run_until_idle(max_events=100)

    def test_pending_and_fired_counts(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        assert loop.pending == 2
        assert loop.run_next()
        assert loop.pending == 1
        assert loop.fired == 1
        assert loop.run_next()
        assert not loop.run_next()

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_fig7_channel_choices(self):
        assert build_parser().parse_args(["fig7", "--channels", "91"]).channels == 91
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig7", "--channels", "50"])


class TestAnalyticCommands:
    """The analytic commands run in well under a second."""

    def test_fig5(self, capsys):
        assert main(["fig5", "--max-gpus", "8"]) == 0
        out = capsys.readouterr().out
        assert "Fig 5" in out and "hybrid_stop" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "OOM" in out

    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        assert "Fig 6" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert main(["fig7", "--channels", "91"]) == 0
        assert "91 channels" in capsys.readouterr().out


class TestTrainingCommands:
    def test_fig8_small(self, capsys):
        assert main(["fig8", "--steps", "4"]) == 0
        assert "Fig 8" in capsys.readouterr().out


class TestAllCommand:
    def test_writes_every_analytic_table(self, tmp_path, capsys):
        assert main(["all", "--out", str(tmp_path / "results")]) == 0
        written = sorted(p.name for p in (tmp_path / "results").iterdir())
        assert written == ["fig5.txt", "fig6.txt", "fig7_48ch.txt", "fig7_91ch.txt", "table1.txt"]
        assert "Table I" in (tmp_path / "results" / "table1.txt").read_text()

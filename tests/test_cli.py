"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

ALL_SUBCOMMANDS = [
    "fig5", "table1", "fig6", "fig7", "fig8", "fig9", "fig10", "all", "trace",
]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_fig7_channel_choices(self):
        assert build_parser().parse_args(["fig7", "--channels", "91"]).channels == 91
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig7", "--channels", "50"])

    @pytest.mark.parametrize("command", ALL_SUBCOMMANDS)
    def test_every_subcommand_has_help(self, command, capsys):
        """`repro <cmd> --help` exits 0 and prints a usage line."""
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args([command, "--help"])
        assert exc.value.code == 0
        assert f"repro {command}" in capsys.readouterr().out

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert (args.gpus, args.gpus_per_node) == (16, 8)
        assert (args.tp, args.fsdp, args.ddp) == (4, 2, 2)
        assert args.no_prefetch is False


class TestAnalyticCommands:
    """The analytic commands run in well under a second."""

    def test_fig5(self, capsys):
        assert main(["fig5", "--max-gpus", "8"]) == 0
        out = capsys.readouterr().out
        assert "Fig 5" in out and "hybrid_stop" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "OOM" in out

    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        assert "Fig 6" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert main(["fig7", "--channels", "91"]) == 0
        assert "91 channels" in capsys.readouterr().out


class TestTrainingCommands:
    def test_fig8_small(self, capsys):
        assert main(["fig8", "--steps", "4"]) == 0
        assert "Fig 8" in capsys.readouterr().out


class TestAllCommand:
    def test_writes_every_analytic_table(self, tmp_path, capsys):
        assert main(["all", "--out", str(tmp_path / "results")]) == 0
        written = sorted(p.name for p in (tmp_path / "results").iterdir())
        assert written == ["fig5.txt", "fig6.txt", "fig7_48ch.txt", "fig7_91ch.txt", "table1.txt"]
        assert "Table I" in (tmp_path / "results" / "table1.txt").read_text()


class TestTraceCommand:
    def test_small_trace_run(self, tmp_path, capsys):
        """A minimal 4-GCD traced step: report on stdout, artifacts on disk."""
        out = tmp_path / "trace"
        assert main([
            "trace", "--gpus", "4", "--gpus-per-node", "4",
            "--tp", "2", "--fsdp", "2", "--ddp", "1",
            "--micro-batch", "1", "--out", str(out),
        ]) == 0
        stdout = capsys.readouterr().out
        assert "Per-rank time breakdown" in stdout
        assert "exposed-comm ratio" in stdout
        trace = json.loads((out / "trace.json").read_text())
        assert trace["traceEvents"]
        assert {e["ph"] for e in trace["traceEvents"]} <= {"M", "X", "i"}
        assert "walltime" in (out / "report.txt").read_text()

    def test_no_prefetch_flag(self, tmp_path, capsys):
        assert main([
            "trace", "--gpus", "4", "--gpus-per-node", "4",
            "--tp", "2", "--fsdp", "2", "--ddp", "1",
            "--micro-batch", "1", "--no-prefetch", "--out", str(tmp_path / "t"),
        ]) == 0
        assert "wrote" in capsys.readouterr().out

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

ALL_SUBCOMMANDS = [
    "fig5", "table1", "fig6", "fig7", "fig8", "fig9", "fig10", "all", "trace",
    "analyze", "bench", "tune", "faults", "monitor",
]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_fig7_channel_choices(self):
        assert build_parser().parse_args(["fig7", "--channels", "91"]).channels == 91
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig7", "--channels", "50"])

    @pytest.mark.parametrize("command", ALL_SUBCOMMANDS)
    def test_every_subcommand_has_help(self, command, capsys):
        """`repro <cmd> --help` exits 0 and prints a usage line."""
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args([command, "--help"])
        assert exc.value.code == 0
        assert f"repro {command}" in capsys.readouterr().out

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert (args.gpus, args.gpus_per_node) == (16, 8)
        assert (args.tp, args.fsdp, args.ddp) == (4, 2, 2)
        assert args.no_prefetch is False


class TestAnalyticCommands:
    """The analytic commands run in well under a second."""

    def test_fig5(self, capsys):
        assert main(["fig5", "--max-gpus", "8"]) == 0
        out = capsys.readouterr().out
        assert "Fig 5" in out and "hybrid_stop" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "OOM" in out

    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        assert "Fig 6" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert main(["fig7", "--channels", "91"]) == 0
        assert "91 channels" in capsys.readouterr().out


class TestTrainingCommands:
    def test_fig8_small(self, capsys):
        assert main(["fig8", "--steps", "4"]) == 0
        assert "Fig 8" in capsys.readouterr().out


class TestAllCommand:
    def test_writes_every_analytic_table(self, tmp_path, capsys):
        assert main(["all", "--out", str(tmp_path / "results")]) == 0
        written = sorted(p.name for p in (tmp_path / "results").iterdir())
        assert written == ["fig5.txt", "fig6.txt", "fig7_48ch.txt", "fig7_91ch.txt", "table1.txt"]
        assert "Table I" in (tmp_path / "results" / "table1.txt").read_text()


class TestTraceCommand:
    def test_small_trace_run(self, tmp_path, capsys):
        """A minimal 4-GCD traced step: report on stdout, artifacts on disk."""
        out = tmp_path / "trace"
        assert main([
            "trace", "--gpus", "4", "--gpus-per-node", "4",
            "--tp", "2", "--fsdp", "2", "--ddp", "1",
            "--micro-batch", "1", "--out", str(out),
        ]) == 0
        stdout = capsys.readouterr().out
        assert "Per-rank time breakdown" in stdout
        assert "exposed-comm ratio" in stdout
        trace = json.loads((out / "trace.json").read_text())
        assert trace["traceEvents"]
        assert {e["ph"] for e in trace["traceEvents"]} <= {"M", "X", "i"}
        assert "walltime" in (out / "report.txt").read_text()

    def test_no_prefetch_flag(self, tmp_path, capsys):
        assert main([
            "trace", "--gpus", "4", "--gpus-per-node", "4",
            "--tp", "2", "--fsdp", "2", "--ddp", "1",
            "--micro-batch", "1", "--no-prefetch", "--out", str(tmp_path / "t"),
        ]) == 0
        assert "wrote" in capsys.readouterr().out

    def test_multi_step_trace(self, tmp_path, capsys):
        assert main([
            "trace", "--gpus", "4", "--gpus-per-node", "4",
            "--tp", "2", "--fsdp", "2", "--ddp", "1",
            "--micro-batch", "1", "--steps", "3", "--out", str(tmp_path / "t"),
        ]) == 0
        events = json.loads((tmp_path / "t" / "trace_events.json").read_text())
        scopes = {span["scope"].split("/", 1)[0] for span in events["spans"]}
        assert {"step.0", "step.1", "step.2"} <= scopes

    def test_invalid_topology_exits_nonzero(self, capsys):
        assert main(["trace", "--gpus", "16", "--tp", "3"]) == 2
        err = capsys.readouterr().err
        assert "invalid topology" in err
        assert "3" in err and "16" in err

    def test_invalid_node_shape_exits_nonzero(self, capsys):
        assert main(["trace", "--gpus", "4", "--gpus-per-node", "8",
                     "--tp", "2", "--fsdp", "2", "--ddp", "1"]) == 2
        assert "invalid topology" in capsys.readouterr().err

    def test_invalid_steps_exits_nonzero(self, capsys):
        assert main(["trace", "--gpus", "4", "--gpus-per-node", "4",
                     "--tp", "2", "--fsdp", "2", "--ddp", "1",
                     "--steps", "0"]) == 2
        assert "--steps" in capsys.readouterr().err


class TestAnalyzeCommand:
    TOPOLOGY = ["--gpus", "4", "--gpus-per-node", "4",
                "--tp", "2", "--fsdp", "2", "--ddp", "1", "--micro-batch", "1"]

    def test_fresh_run_names_bound_resource(self, capsys):
        assert main(["analyze", *self.TOPOLOGY]) == 0
        out = capsys.readouterr().out
        assert "critical path:" in out
        assert "bound resource:" in out
        assert "health:" in out

    def test_straggler_injection_surfaces_finding(self, capsys):
        assert main(["analyze", *self.TOPOLOGY, "--skew", "2=50000"]) == 0
        out = capsys.readouterr().out
        assert "straggler" in out
        assert "rank 2" in out

    def test_offline_trace_file(self, tmp_path, capsys):
        assert main(["trace", *self.TOPOLOGY, "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["analyze", "--trace", str(tmp_path / "trace_events.json")]) == 0
        assert "bound resource:" in capsys.readouterr().out

    def test_invalid_topology_exits_nonzero(self, capsys):
        assert main(["analyze", "--gpus", "16", "--fsdp", "5"]) == 2
        assert "invalid topology" in capsys.readouterr().err

    def test_bad_skew_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", *self.TOPOLOGY, "--skew", "nonsense"])


class TestTuneCommand:
    def test_help_shows_worked_examples(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["tune", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "examples:" in out
        assert "repro tune --model orbit-1b" in out

    def test_search_prints_winner_and_writes_report(self, tmp_path, capsys):
        report = tmp_path / "tune_report.json"
        code = main([
            "tune", "--micro-batches", "2", "--top-k", "1",
            "--out", str(report),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Winner:" in out
        assert "Why configurations were pruned" in out
        doc = json.loads(report.read_text())
        assert doc["winner"]["simulated"]["step_time_s"] > 0

    def test_cache_file_round_trip(self, tmp_path, capsys):
        cache = tmp_path / "tune_cache.json"
        argv = ["tune", "--micro-batches", "2", "--top-k", "1",
                "--cache", str(cache)]
        assert main(argv) == 0
        assert "cache: 0 hits / 1 misses" in capsys.readouterr().out
        assert main(argv) == 0
        assert "cache: 1 hits / 0 misses" in capsys.readouterr().out

    def test_infeasible_request_exits_2_with_stderr(self, capsys):
        # 113B cannot fit on a single node under any factorization.
        code = main(["tune", "--model", "orbit-113b", "--gpus", "8"])
        assert code == 2
        captured = capsys.readouterr()
        assert "exceed device memory" in captured.err
        assert captured.out == ""

    def test_invalid_request_exits_2_with_stderr(self, capsys):
        assert main(["tune", "--gpus", "12"]) == 2
        assert "invalid request" in capsys.readouterr().err
        assert main(["tune", "--micro-batches", "two"]) == 2
        assert "invalid request" in capsys.readouterr().err
        assert main(["tune", "--top-k", "0"]) == 2
        assert "--top-k" in capsys.readouterr().err


class TestBenchCommand:
    def test_quick_run_writes_and_self_checks(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_obs.json"
        assert main(["bench", "--quick", "--out", str(baseline)]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(["bench", "--quick", "--check",
                     "--baseline", str(baseline)]) == 0
        assert "bench regression gate OK" in capsys.readouterr().out

    def test_drift_fails_the_gate(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_obs.json"
        assert main(["bench", "--quick", "--out", str(baseline)]) == 0
        doc = json.loads(baseline.read_text())
        name = next(iter(doc["cases"]))
        doc["cases"][name]["step_time_s"] *= 1.5
        baseline.write_text(json.dumps(doc))
        capsys.readouterr()
        assert main(["bench", "--quick", "--check",
                     "--baseline", str(baseline)]) == 1
        err = capsys.readouterr().err
        assert "DRIFT" in err and "step_time_s" in err

    def test_timeseries_flag_writes_per_case_artifacts(self, tmp_path, capsys):
        ts_dir = tmp_path / "ts"
        assert main(["bench", "--quick", "--timeseries", str(ts_dir)]) == 0
        written = sorted(p.name for p in ts_dir.iterdir())
        assert written and all(n.endswith("_timeseries.jsonl") for n in written)
        from repro.obs import load_timeseries

        doc = load_timeseries(ts_dir / written[0])
        assert "step.time_s" in doc["series"]


class TestMonitorCommand:
    PLAN = str(__import__("pathlib").Path("examples/fault_plan.json"))

    def test_clean_run_exits_zero_with_summary(self, capsys):
        assert main(["monitor", "--steps", "4"]) == 0
        out = capsys.readouterr().out
        assert "run/start" in out and "run/end" in out  # live tail
        assert "step.time_s" in out                     # summary table
        assert "alerts: 0 warning, 0 critical" in out

    def test_fault_plan_with_critical_alert_exits_one(self, capsys):
        # The tiny trace model's steps are milliseconds, so the example
        # plan's retry/restart costs push goodput.fraction into a
        # sustained critical alert.
        assert main(["monitor", "--plan", self.PLAN, "--quiet"]) == 1
        out = capsys.readouterr().out
        assert "critical" in out

    def test_out_writes_loadable_byte_identical_artifacts(self, tmp_path, capsys):
        from repro.obs import load_journal, load_timeseries

        first = tmp_path / "a"
        second = tmp_path / "b"
        for out_dir in (first, second):
            main(["monitor", "--plan", self.PLAN, "--quiet",
                  "--out", str(out_dir)])
            capsys.readouterr()
        events = load_journal(first / "journal.jsonl")
        assert events and events[0].kind == "run"
        load_timeseries(first / "timeseries.jsonl")
        assert (first / "journal.jsonl").read_bytes() == \
            (second / "journal.jsonl").read_bytes()
        assert (first / "timeseries.jsonl").read_bytes() == \
            (second / "timeseries.jsonl").read_bytes()

    def test_json_output_is_machine_readable(self, capsys):
        assert main(["monitor", "--steps", "3", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["alerts"] == {"warning": 0, "critical": 0}
        assert {"journal", "journal_summary", "timeseries", "rules"} <= set(doc)

    def test_invalid_topology_exits_two(self, capsys):
        assert main(["monitor", "--tp", "3"]) == 2
        assert "--gpus" in capsys.readouterr().err

    def test_invalid_plan_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["monitor", "--plan", str(missing)]) == 2
        assert "invalid plan" in capsys.readouterr().err

    def test_plan_and_random_are_mutually_exclusive(self, capsys):
        assert main(["monitor", "--plan", self.PLAN, "--random", "7"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

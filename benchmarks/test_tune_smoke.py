"""Benchmark: the parallelism planner end to end (quick subset).

Times one full ``repro tune`` search — enumeration, analytic scoring of
every legal candidate, and one simulated validation step — on the
ORBIT-115M 2-node space, and asserts the headline claims the planner
makes: the analytic leader survives simulated validation with a tight
analytic-vs-simulated error, and the winner beats the committed bench
matrix's hand-picked configuration on time per observation.
"""

import pytest

from repro.models.configs import ORBIT_115M
from repro.tune import TuneRequest, run_search


@pytest.mark.quick
@pytest.mark.benchmark(group="tune")
def test_tune_115m_2n_search(once):
    request = TuneRequest(
        ORBIT_115M, num_gpus=16, gpus_per_node=8,
        micro_batches=(2,), recompute_options=(False,),
        prefetch_options=(True,),
    )
    result = once(run_search, request, top_k=1)

    winner = result.winner
    print(
        f"\ntune winner: {winner.candidate.label()} "
        f"sim {winner.simulated_step_time_s:.6f} s "
        f"(analytic error {winner.analytic_error:.2%}, "
        f"{len(result.ranked)} candidates scored)"
    )
    # The analytic estimate validates within the 10% acceptance bound.
    assert winner.analytic_error < 0.10
    # The planner's pick is at least as fast per observation as the
    # bench matrix's hand-picked tp4/f2/d2/mb2 point for this topology.
    hand_picked = next(
        s for s in result.ranked
        if (s.candidate.tp_size, s.candidate.fsdp_size,
            s.candidate.ddp_size) == (4, 2, 2)
    )
    assert (
        winner.estimate.time_per_obs_s <= hand_picked.estimate.time_per_obs_s
    )

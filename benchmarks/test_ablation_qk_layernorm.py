"""Ablation: QK layer normalization (paper Sec III-B).

The paper adopts the ViT-22B fix — layer-normalizing attention queries
and keys — because large ViTs diverge when attention logits grow
uncontrolled (softmax saturates to near-zero entropy).  This ablation
trains a pair of identical models at an aggressive learning rate and
compares attention-logit growth and loss stability.
"""

import dataclasses

import numpy as np

from repro.data import BatchLoader, LatLonGrid, Normalizer, SyntheticERA5, default_registry
from repro.models import OrbitConfig, build_model
from repro.train import AdamW, Trainer


def _run_pair(lr: float = 0.05, steps: int = 40, seed: int = 0):
    grid = LatLonGrid(8, 16)
    names = ["2m_temperature", "temperature_850", "geopotential_500", "10m_u_component_of_wind"]
    registry = default_registry(91).subset(names)
    era5 = SyntheticERA5(grid, registry, steps_per_year=16, seed=seed)
    train = era5.train()
    norm = Normalizer.fit(train, num_samples=16)
    base = OrbitConfig(
        "ablate", embed_dim=16, depth=2, num_heads=2, in_vars=len(names),
        out_vars=len(names), img_height=8, img_width=16, patch_size=4,
        qk_layernorm=True,
    )
    results = {}
    probe_rng = np.random.default_rng(seed)
    probe = probe_rng.normal(size=(1, 8, 16)).astype(np.float32) * 20.0
    for qk in (True, False):
        config = dataclasses.replace(base, qk_layernorm=qk)
        model = build_model(config, rng=seed)
        loader = BatchLoader(train, 4, normalizer=norm, seed=seed)
        trainer = Trainer(
            model, loader.batches(10**9), grid.latitude_weights(),
            AdamW(model.parameters(), lr=lr, weight_decay=0.0),
        )
        history = trainer.train(steps).history
        losses = [l for _, l in history]
        logit = model.blocks[0].attn.max_attention_logit(probe)
        model.clear_cache()
        results[qk] = {"losses": losses, "max_logit": logit}
    return results


def test_qk_layernorm_contains_logits_and_stabilizes(once):
    results = once(_run_pair)
    with_ln = results[True]
    without_ln = results[False]
    print(
        f"\nQK-LN ablation: max |attention logit| with LN = {with_ln['max_logit']:.1f}, "
        f"without = {without_ln['max_logit']:.1f}; "
        f"final loss with LN = {with_ln['losses'][-1]:.3f}, "
        f"without = {without_ln['losses'][-1]:.3f}"
    )

    # The paper's rationale: QK-LN contains attention-logit growth.
    assert with_ln["max_logit"] < without_ln["max_logit"]

    # Training with QK-LN stays finite and non-exploding at a learning
    # rate that stresses the plain model.
    assert np.isfinite(with_ln["losses"]).all()
    assert with_ln["losses"][-1] < 5 * with_ln["losses"][0]

    # The plain model's late-training loss is at least as unstable
    # (higher variance) as the normalized one.
    late_with = np.var(with_ln["losses"][-10:])
    late_without = np.var(without_ln["losses"][-10:])
    assert late_with <= late_without * 5

"""Benchmark: paper Fig 6 — hierarchical parallelism configuration sweep.

Paper (113B, 512 GPUs, DDP=1): FSDP alone runs out of memory;
FSDP=64 x TP=8 is fastest (batch 3); that point is ~25x faster than
FSDP=2 x TP=256; per-GPU memory rises mildly as the FSDP share grows.
"""

from repro.experiments import fig6_parallelism_config


def test_fig6_parallelism_configurations(once):
    result = once(fig6_parallelism_config.run)
    print("\n" + result.format())

    # FSDP alone (TP=1) is out of memory at the paper's operating batch.
    assert result.row_for(1).oom

    # The paper's fastest configuration: FSDP=64 x TP=8 at batch 3.
    balanced = result.row_for(8)
    assert not balanced.oom
    assert balanced.micro_batch == 3
    # Known model deviation (EXPERIMENTS.md): FSDP=256 x TP=2 comes out
    # marginally faster here; the balanced point must at least be within
    # 30% of the sweep's best and beat every higher tensor-parallel degree.
    fastest = result.fastest()
    assert balanced.walltime_per_obs_s <= 1.3 * fastest.walltime_per_obs_s
    for tp in (32, 64, 128, 256, 512):
        assert balanced.walltime_per_obs_s < result.row_for(tp).walltime_per_obs_s

    # The 25x blowup at extreme tensor parallelism (paper: 25x).
    assert result.row_for(256).walltime_per_obs_s > 15 * balanced.walltime_per_obs_s

    # Walltime worsens monotonically as TP grows beyond the node.
    times = [result.row_for(tp).walltime_per_obs_s for tp in (8, 32, 64, 128, 256, 512)]
    assert times == sorted(times)

    # Fig 6b: memory changes are mild across viable configurations.
    viable = [r for r in result.rows if not r.oom]
    mems = [r.memory_per_gpu_bytes for r in viable]
    assert max(mems) < 1.5 * min(mems)

"""Benchmark: paper Fig 9 — wACC comparison at 1/14/30-day leads.

Paper: ORBIT is comparable to the task-specific and numerical models
at 1 day and clearly superior at 14 and 30 days (up to +52% over IFS
and +166% over Stormer at 14 days).

Measured on the synthetic world; the published (real-ERA5) scores are
printed alongside for shape comparison — see EXPERIMENTS.md for the
documented deviations (the tiny proxy ViTs trail the physics-exact
baselines at 1 day, and the spectral-operator stand-in is an oracle
family for the synthetic generator).
"""

from repro.eval.reference import PUBLISHED_WACC
from repro.experiments import fig9_wacc


def test_fig9_wacc_lead_time_comparison(once):
    result = once(fig9_wacc.run)
    print("\n" + result.format())
    print("\nPublished (real-ERA5) wACC for shape comparison:")
    for model, scores in PUBLISHED_WACC.items():
        row = {v: s for v, s in scores.items()}
        print(f"  {model}: {row}")

    orbit = "ORBIT (pretrained)"
    ifs = "IFS-like (numerical)"
    stormer = "Stormer-like (ERA5 only)"

    # Headline (paper Sec V-F): ORBIT beats the numerical model at 14
    # and 30 days (paper: up to +52% at 14 days)...
    assert result.mean_wacc(orbit, 14) > result.mean_wacc(ifs, 14)
    assert result.mean_wacc(orbit, 30) > result.mean_wacc(ifs, 30)
    # ...and the task-specific (no pre-training) model at 14 days
    # (paper: up to +166%): the value of foundation-model pre-training.
    assert result.mean_wacc(orbit, 14) > result.mean_wacc(stormer, 14)

    # ORBIT retains real skill at long leads: above climatology and
    # persistence at both 14 and 30 days.
    for lead in (14, 30):
        assert result.mean_wacc(orbit, lead) > result.mean_wacc("climatology", lead) + 0.05
        assert result.mean_wacc(orbit, lead) > result.mean_wacc("persistence", lead)

    # Skill decays with lead time for every forecaster with skill.
    for model in (orbit, "ClimaX-like (pretrained)", stormer):
        assert result.mean_wacc(model, 1) > result.mean_wacc(model, 14) > result.mean_wacc(model, 30)

    # At 1 day everyone with dynamics knowledge is clearly skillful.
    for model in (orbit, ifs, "FourCastNet-like (spectral)", "persistence"):
        assert result.mean_wacc(model, 1) > 0.5

    # ORBIT and ClimaX-like are close (the paper's 30-day gap is 9%).
    gap = abs(result.mean_wacc(orbit, 30) - result.mean_wacc("ClimaX-like (pretrained)", 30))
    assert gap < 0.15

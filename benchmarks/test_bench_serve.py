"""Benchmark: the serving latency/throughput matrix (``BENCH_serve.json``).

Times the ``repro serve`` bench harness and asserts the headline shape
claims the committed baseline encodes: the hot-window workloads earn
the rollout prefix cache (>0.5 hit ratio), the cold workload drives
the autoscaler above one replica, and the surge saturates the pool and
trips admission control.
"""

import time
from pathlib import Path

import pytest

from repro.serve.bench import (
    DEFAULT_MATRIX,
    DEFAULT_TOLERANCE,
    build_serve_world,
    compare,
    load_baseline,
    run_serve_matrix,
    to_document,
)

BASELINE = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: CI wall-clock ceiling for the quick serving bench, in seconds.  The
#: quick case takes well under a second on any machine; a blowout here
#: means the simulation went quadratic, not that the runner was slow.
QUICK_WALL_CLOCK_CEILING_S = 30.0


@pytest.fixture(scope="module")
def world():
    return build_serve_world()


@pytest.mark.quick
def test_quick_matrix_against_baseline(once, world):
    """The CI gate in benchmark form: quick subset vs the committed file."""
    records = once(run_serve_matrix, quick=True, world=world)
    baseline = load_baseline(BASELINE)
    problems = compare(to_document(records), baseline,
                       tolerance=DEFAULT_TOLERANCE, require_all=False)
    assert problems == []


@pytest.mark.quick
def test_quick_matrix_wall_clock_ceiling(world):
    """The quick subset must stay far inside the CI time budget."""
    started = time.perf_counter()
    run_serve_matrix(quick=True, world=world)
    elapsed = time.perf_counter() - started
    assert elapsed < QUICK_WALL_CLOCK_CEILING_S


def test_full_matrix_shape_claims(once, world):
    records = once(run_serve_matrix, world=world)
    hot_low, hot_high = records["hot-25rps"], records["hot-150rps"]
    cold, surge = records["cold-300rps"], records["surge-800rps"]

    # Hot synoptic windows are where the prefix cache earns its keep.
    assert hot_low["cache_hit_ratio"] > 0.5
    assert hot_high["cache_hit_ratio"] > 0.5
    # The cold uniform workload can't ride the cache as hard and pushes
    # the autoscaler above the single-replica floor.
    assert cold["cache_hit_ratio"] < hot_high["cache_hit_ratio"]
    assert cold["replicas_peak"] > 1
    # The surge saturates the pool ceiling and trips admission control.
    assert surge["replicas_peak"] == 4
    assert surge["rejected"] > 0
    # Queueing is visible: offered load up, p99 up.
    assert surge["latency_p99_s"] > hot_low["latency_p99_s"]

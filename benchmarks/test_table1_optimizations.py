"""Benchmark: paper Table I — the optimization ablation.

Paper (113B on 512 GPUs, seconds per observation):
OOM -> 0.97 -> 0.49 -> 0.40 -> 0.17 as layer wrapping, mixed precision,
prefetching, and activation checkpointing stack.
"""

import pytest

from repro.experiments import table1_optimizations


def test_table1_optimization_ablation(once):
    result = once(table1_optimizations.run)
    print("\n" + result.format())
    rows = {row.name: row for row in result.rows}

    # Column 1: no optimizations -> out of memory.
    assert rows["none"].oom

    # Columns 2-5 run, each faster than the previous.
    walltimes = [rows[n].walltime_per_obs_s for n in ("+wrap", "+bf16", "+prefetch", "+ckpt")]
    assert all(w is not None for w in walltimes)
    assert walltimes[0] > walltimes[1] > walltimes[2] > walltimes[3]

    # Anchor values (paper: 0.97 / 0.49 / 0.40 / 0.17).
    assert walltimes[0] == pytest.approx(0.97, rel=0.15)
    assert walltimes[1] == pytest.approx(0.49, rel=0.15)
    assert walltimes[2] == pytest.approx(0.40, rel=0.15)
    assert walltimes[3] == pytest.approx(0.17, rel=0.25)

    # Mixed precision is a clean 2x; checkpointing buys the micro-batch.
    assert walltimes[0] / walltimes[1] == pytest.approx(2.0, rel=0.05)
    assert rows["+ckpt"].micro_batch >= 3 * rows["+prefetch"].micro_batch

"""Ablation: pipeline parallelism's layer-count limit (paper Sec II).

The paper dismisses pipeline parallelism because "the scalability for
pipeline parallelism is limited by the number of model layers".  This
benchmark makes that executable: the pipeline engine refuses more
stages than layers, its maximal model size plateaus once GPUs exceed
the 56-layer depth, while Hybrid-STOP keeps scaling; and the GPipe
bubble shrinks only with more micro-batches — i.e. more memory.
"""

import numpy as np
import pytest

from repro.cluster import VirtualCluster
from repro.memory.estimator import MemoryModel, Parallelism
from repro.models import ORBIT_113B
from repro.nn.transformer import TransformerStack
from repro.parallel import PipelineLimitError, PipelineParallelTrunk


def _max_sizes():
    model = MemoryModel()
    return {
        gpus: {
            "pipeline": model.max_model_size(Parallelism.PIPELINE, gpus, ORBIT_113B)[0],
            "hybrid": model.max_model_size(Parallelism.HYBRID_STOP, gpus, ORBIT_113B)[0],
        }
        for gpus in (8, 64, 512)
    }


def test_pipeline_layer_limit(once):
    sizes = once(_max_sizes)
    rows = "\n".join(
        f"  {gpus:>4d} GPUs: pipeline {v['pipeline'] / 1e9:.1f}B, "
        f"hybrid-stop {v['hybrid'] / 1e9:.1f}B"
        for gpus, v in sizes.items()
    )
    print(f"\nmax model size, pipeline vs Hybrid-STOP:\n{rows}")

    # The executable limit: stages cannot exceed layers.
    serial = TransformerStack(8, 2, 2, rng=0)
    cluster = VirtualCluster(num_gpus=4)
    with pytest.raises(PipelineLimitError):
        PipelineParallelTrunk(serial, cluster, num_stages=3)

    # The scaling consequence: pipeline plateaus at depth (56 layers for
    # the 113B template), Hybrid-STOP keeps growing.
    assert sizes[64]["pipeline"] == sizes[512]["pipeline"]
    assert sizes[512]["hybrid"] > 1.5 * sizes[512]["pipeline"]

    # And the bubble: halving it requires ~doubling in-flight micro-batches.
    serial = TransformerStack(8, 8, 2, rng=0)
    cluster = VirtualCluster(num_gpus=8)
    pipe = PipelineParallelTrunk(serial, cluster, num_stages=8)
    assert pipe.bubble_fraction(4) > 2.5 * pipe.bubble_fraction(32)

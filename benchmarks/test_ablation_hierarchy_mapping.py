"""Ablation: hierarchical group placement (paper Fig 4).

The paper maps tensor-parallel groups *inside* nodes (their per-sublayer
activation reductions are blocking and latency/bandwidth sensitive) and
FSDP groups *across* nodes (their shard gathers are coarse and hidden by
prefetching).  This ablation evaluates the calibrated performance model
at the paper's 113B/512-GPU operating point with the Fig 4 placement and
with the inverted one.
"""

from repro.memory.estimator import Parallelism, TrainingSetup
from repro.models import ORBIT_113B
from repro.perf import PerformanceModel


def _walltimes():
    pm = PerformanceModel()
    setup = TrainingSetup(
        ORBIT_113B, 512, Parallelism.HYBRID_STOP,
        tp_size=8, fsdp_size=64, micro_batch=3,
    )
    paper = pm.step_time(setup, tp_in_node=True)
    inverted = pm.step_time(setup, tp_in_node=False)
    return paper, inverted


def test_tp_in_node_beats_tp_across_nodes(once):
    paper, inverted = once(_walltimes)
    slowdown = inverted.time_per_observation_s / paper.time_per_observation_s
    print(
        f"\nFig 4 mapping ablation (113B, 512 GPUs): "
        f"paper placement {paper.time_per_observation_s:.3f} s/obs "
        f"(activation reductions {paper.tp_allreduce_s:.2f} s/step), "
        f"inverted {inverted.time_per_observation_s:.3f} s/obs "
        f"(activation reductions {inverted.tp_allreduce_s:.2f} s/step) "
        f"-> {slowdown:.1f}x slower inverted"
    )

    # The paper's placement wins, and the reason is exactly the one the
    # paper gives: the blocking activation all-reduces blow up when they
    # leave the in-node fabric...
    assert inverted.time_per_observation_s > 1.1 * paper.time_per_observation_s
    assert inverted.tp_allreduce_s > 3 * paper.tp_allreduce_s
    # ...while the prefetched shard gathers tolerate either placement
    # (their exposed cost changes far less than the blocked reductions).
    assert abs(inverted.exposed_gather_s - paper.exposed_gather_s) < max(
        1.0, inverted.tp_allreduce_s - paper.tp_allreduce_s
    )

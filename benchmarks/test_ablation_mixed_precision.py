"""Ablation: BF16 mixed precision preserves convergence (Sec III-B).

The paper trains in BF16 with dynamic gradient scaling for a ~2x
speedup (Table I); the implicit claim is that reduced precision does
not change what the model learns.  This ablation trains the same tiny
model with the same data order in FP32 and in emulated BF16 (+ scaler)
and compares the loss trajectories.
"""

import numpy as np

from repro.data import BatchLoader, LatLonGrid, Normalizer, SyntheticERA5, default_registry
from repro.models import OrbitConfig, build_model
from repro.nn import DynamicGradScaler
from repro.nn.precision import BF16_MIXED
from repro.train import AdamW, Trainer


def _train_pair(steps: int = 60, seed: int = 0):
    grid = LatLonGrid(8, 16)
    names = ["2m_temperature", "temperature_850", "geopotential_500", "10m_u_component_of_wind"]
    registry = default_registry(91).subset(names)
    era5 = SyntheticERA5(grid, registry, steps_per_year=16, seed=seed)
    train = era5.train()
    norm = Normalizer.fit(train, num_samples=16)
    config = OrbitConfig(
        "precision-ablate", embed_dim=16, depth=2, num_heads=2,
        in_vars=len(names), out_vars=len(names),
        img_height=8, img_width=16, patch_size=4,
    )
    results = {}
    for label, precision, scaler in (
        ("fp32", None, None),
        ("bf16+scaler", BF16_MIXED, DynamicGradScaler(init_scale=2.0**10, growth_interval=10**6)),
    ):
        model = build_model(config, rng=seed)
        loader = BatchLoader(train, 4, normalizer=norm, seed=seed)
        trainer = Trainer(
            model, loader.batches(10**9), grid.latitude_weights(),
            AdamW(model.parameters(), lr=2e-3, weight_decay=0.0),
            precision=precision, scaler=scaler,
        )
        outcome = trainer.train(steps)
        results[label] = outcome
    return results


def test_bf16_training_matches_fp32_quality(once):
    results = once(_train_pair)
    fp32 = results["fp32"]
    bf16 = results["bf16+scaler"]
    final_fp32 = float(np.mean([l for _, l in fp32.history[-10:]]))
    final_bf16 = float(np.mean([l for _, l in bf16.history[-10:]]))
    print(
        f"\nmixed-precision ablation: final wMSE fp32 {final_fp32:.4f}, "
        f"bf16+scaler {final_bf16:.4f}; skipped steps {bf16.skipped_steps}"
    )

    # Both converge from the same start...
    first = fp32.history[0][1]
    assert final_fp32 < 0.8 * first
    assert final_bf16 < 0.8 * first
    # ...to equivalent quality (the Sec III-B claim), within 15%.
    assert abs(final_bf16 - final_fp32) < 0.15 * final_fp32
    # The scaler kept BF16 training healthy (no persistent overflow loop).
    assert bf16.skipped_steps <= 3

"""Benchmark: paper Fig 10 — fine-tuning data efficiency vs model size.

Paper (30-day task): samples to convergence drop with size — 76,000
(115M) -> 47,000 (1B) -> 32,800 (10B), i.e. -38% and -57% relative to
the smallest model.
"""

from repro.experiments import fig10_data_efficiency


def test_fig10_samples_to_convergence_decrease_with_size(once):
    result = once(fig10_data_efficiency.run)
    print("\n" + result.format())
    print(f"paper sample counts: {fig10_data_efficiency.PAPER_SAMPLES}")

    names = list(result.samples)
    samples = [result.samples[n] for n in names]

    # Monotone: larger models converge with no more samples (paper shape).
    assert samples[0] >= samples[1] >= samples[2]
    # And the largest shows a real reduction vs the smallest
    # (paper: 57%; granularity here is one eval interval).
    assert samples[2] < samples[0]
    reduction = 1.0 - samples[2] / samples[0]
    assert reduction > 0.2

    # Convergence is to comparable-or-better skill, not to a worse model.
    assert result.best_wacc[names[2]] >= result.best_wacc[names[0]] - 0.05
    for name in names:
        assert result.best_wacc[name] > 0.2

"""Ablation: peak memory across sharding strategies (paper Figs 2-3).

Runs the *actual engines* on the virtual cluster and compares the
device-tracker peak memory: FSDP without layer wrapping (the
full-model gather of Fig 2), FSDP with wrapping, and Hybrid-STOP
(which gathers only one layer's tensor-parallel shard at a time).
"""

import numpy as np

from repro.cluster import VirtualCluster
from repro.core import HybridSTOPTrunk
from repro.nn.transformer import TransformerStack
from repro.parallel import FSDPModule, HybridParallelPlan


def _measure(seed: int = 0, dim: int = 32, depth: int = 4):
    def stack():
        return TransformerStack(dim, depth, 2, rng=seed, dtype=np.float64)

    rng = np.random.default_rng(seed)
    xs4 = [rng.normal(size=(1, 4, dim)) for _ in range(4)]
    grads4 = [rng.normal(size=(1, 4, dim)) for _ in range(4)]
    peaks = {}

    for wrapping, label in ((False, "fsdp (no wrapping)"), (True, "fsdp (wrapped)")):
        cluster = VirtualCluster(num_gpus=4, gpus_per_node=8)
        engine = FSDPModule(stack(), cluster.world, layer_wrapping=wrapping)
        engine.forward(xs4)
        engine.backward(grads4)
        peaks[label] = max(cluster.device(r).memory.peak_bytes for r in range(4))

    cluster = VirtualCluster(num_gpus=4, gpus_per_node=8)
    plan = HybridParallelPlan(cluster, tp_size=2, fsdp_size=2)
    trunk = HybridSTOPTrunk(stack(), plan)
    xs2 = [rng.normal(size=(2, 4, dim)) for _ in range(2)]
    grads2 = [rng.normal(size=(2, 4, dim)) for _ in range(2)]
    trunk.forward(xs2)
    trunk.backward(grads2)
    peaks["hybrid-stop"] = max(cluster.device(r).memory.peak_bytes for r in range(4))
    return peaks


def test_hybrid_stop_has_lowest_peak_memory(once):
    peaks = once(_measure)
    pretty = {k: f"{v / 1024:.0f} KiB" for k, v in peaks.items()}
    print(f"\nPeak device memory by strategy: {pretty}")

    # Fig 2's problem: without wrapping, FSDP transiently materializes
    # the whole model.
    assert peaks["fsdp (no wrapping)"] > 1.5 * peaks["fsdp (wrapped)"]
    # Fig 3's fix: Hybrid-STOP gathers only a tensor-parallel fraction
    # of one layer, beating even wrapped FSDP.
    assert peaks["hybrid-stop"] < peaks["fsdp (wrapped)"]
    assert peaks["hybrid-stop"] < 0.5 * peaks["fsdp (no wrapping)"]

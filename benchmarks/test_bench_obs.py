"""Benchmark: the trace-derived performance-regression matrix.

Unlike the figure benchmarks (which regenerate paper tables), these
cases time the ``repro bench`` harness itself and assert the headline
shape claims the committed ``BENCH_obs.json`` baseline encodes:
near-ideal FSDP strong scaling for both paper models, compute-bound
steps, and peak memory shrinking as the FSDP axis grows.
"""

from pathlib import Path

import pytest

from repro.bench import (
    DEFAULT_MATRIX,
    DEFAULT_TOLERANCE,
    compare,
    load_baseline,
    run_case,
    run_matrix,
    scaling_efficiencies,
    to_document,
)

BASELINE = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

_QUICK_CASES = [case for case in DEFAULT_MATRIX if case.quick]
_FULL_CASES = list(DEFAULT_MATRIX)


@pytest.mark.quick
@pytest.mark.parametrize("case", _QUICK_CASES, ids=lambda c: c.name)
def test_quick_case_is_compute_bound(once, case):
    record = once(run_case, case)
    assert record.bound_resource == "compute"
    assert record.step_time_s > 0.0
    assert 0.0 <= record.exposed_comm_fraction < 0.5


@pytest.mark.quick
def test_quick_matrix_against_baseline(once):
    """The CI gate in benchmark form: quick subset vs the committed file."""
    records = once(run_matrix, quick=True)
    baseline = load_baseline(BASELINE)
    problems = compare(to_document(records), baseline,
                       tolerance=DEFAULT_TOLERANCE, require_all=False)
    assert problems == []


def test_full_matrix_scaling_efficiency(once):
    """Both paper models keep >90% efficiency from 2 to 4 nodes."""
    records = once(run_matrix)
    efficiency = scaling_efficiencies(records)
    for model in ("orbit-115m", "orbit-1b"):
        points = efficiency[model]["points"]
        assert points["16"] == pytest.approx(1.0)
        assert points["32"] > 0.90


def test_full_matrix_memory_shrinks_with_fsdp(once):
    """Doubling the FSDP axis lowers the per-GCD peak for both models."""
    records = {record.case.name: record for record in once(run_matrix)}
    assert (records["orbit-115m-4n"].peak_memory_bytes
            < records["orbit-115m-2n"].peak_memory_bytes)
    assert (records["orbit-1b-4n"].peak_memory_bytes
            < records["orbit-1b-2n"].peak_memory_bytes)

"""Benchmark: frontier-scale simulation stays affordable and exact.

The symmetry-folded timeline is what makes the 113B model simulatable
at the full 49,152-GCD Frontier machine; these cases gate both sides
of that bargain.  The ``quick``-marked wall-clock ceiling fails CI if
the folded full-machine meta step regresses past 10 seconds of real
time (the whole point of folding), and the baseline comparison holds
the frontier entries of ``BENCH_obs.json`` to the same 5% drift gate
as the small cases.
"""

import time
from pathlib import Path

import pytest

from repro.bench import (
    DEFAULT_TOLERANCE,
    FRONTIER_MATRIX,
    compare,
    load_baseline,
    run_case,
    to_document,
)

BASELINE = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

#: Real-seconds budget for the folded 49,152-GCD meta step.  The exact
#: (unfolded) simulation is ~3,000x this; a folded run breaching the
#: ceiling means symmetry folding stopped pulling its weight.
FULL_MACHINE_WALL_CEILING_S = 10.0

_BY_NAME = {case.name: case for case in FRONTIER_MATRIX}
_FULL_MACHINE = _BY_NAME["orbit-113b-6144n"]


@pytest.mark.quick
def test_full_machine_meta_step_under_wall_clock_ceiling(once):
    """One folded 113B step on all 49,152 GCDs in < 10 s of real time."""
    start = time.perf_counter()
    record = once(run_case, _FULL_MACHINE)
    elapsed = time.perf_counter() - start
    assert elapsed < FULL_MACHINE_WALL_CEILING_S, (
        f"folded full-machine step took {elapsed:.2f}s real time "
        f"(ceiling {FULL_MACHINE_WALL_CEILING_S:.0f}s)"
    )
    # The simulated step itself must stay sane: minutes-long,
    # compute-bound, with communication mostly overlapped.
    assert record.bound_resource == "compute"
    assert 60.0 < record.step_time_s < 600.0
    assert 0.0 <= record.exposed_comm_fraction < 0.5


@pytest.mark.quick
def test_full_machine_step_matches_baseline(once):
    """The 49,152-GCD entry of BENCH_obs.json, held to the 5% gate."""
    record = once(run_case, _FULL_MACHINE)
    baseline = load_baseline(BASELINE)
    problems = compare(to_document([record]), baseline,
                       tolerance=DEFAULT_TOLERANCE, require_all=False)
    assert problems == []


@pytest.mark.parametrize("case", FRONTIER_MATRIX, ids=lambda c: c.name)
def test_frontier_case_against_baseline(once, case):
    """Every frontier entry reproduces within tolerance."""
    record = once(run_case, case)
    baseline = load_baseline(BASELINE)
    problems = compare(to_document([record]), baseline,
                       tolerance=DEFAULT_TOLERANCE, require_all=False)
    assert problems == []


def test_frontier_weak_scaling_efficiency(once):
    """113B time-per-observation keeps >95% efficiency to 49,152 GCDs."""
    from repro.bench import scaling_efficiencies

    # pedantic timers are once-per-test; time the scan as a whole.
    records = once(lambda: [run_case(case) for case in FRONTIER_MATRIX])
    points = scaling_efficiencies(records)["orbit-113b"]["points"]
    assert points["1024"] == pytest.approx(1.0)
    assert points["8192"] > 0.95
    assert points["49152"] > 0.95

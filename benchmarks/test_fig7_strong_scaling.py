"""Benchmark: paper Fig 7 — strong scaling to 49,152 GPUs.

Paper: efficiencies of 44-82% (48 ch) and 41-85% (91 ch) at 49,152
GPUs; 113B processes a 48-channel observation in 3e-3 s at 684 PFLOPS
sustained; 10B sustains ~1.6 EFLOPS; 91-channel observations cost more
than 48-channel ones.
"""

import pytest

from repro.experiments import fig7_strong_scaling


def test_fig7_strong_scaling_48_channels(once):
    result = once(fig7_strong_scaling.run, channels=48)
    print("\n" + result.format())

    point_113b = result.points["orbit-113b"][49152]
    # Anchors: 3e-3 s/obs at 684 PFLOPS (paper).
    assert point_113b.time_per_obs_s == pytest.approx(3e-3, rel=0.3)
    assert point_113b.sustained_flops == pytest.approx(684e15, rel=0.3)

    # 10B approaches the exaFLOPS regime (paper: 1.6 EFLOPS).
    point_10b = result.points["orbit-10b"][49152]
    assert point_10b.sustained_flops > 0.6e18
    assert point_10b.time_per_obs_s < 5e-4

    # Every size keeps efficiency in a paper-like band at 49,152 GPUs
    # and loses efficiency monotonically as the world grows.
    for name, series in result.points.items():
        eff_49k = series[49152].efficiency
        assert 0.35 < eff_49k <= 1.0, name
        efficiencies = [series[g].efficiency for g in sorted(series)]
        assert all(a >= b - 0.02 for a, b in zip(efficiencies, efficiencies[1:])), name

    # Time per observation falls monotonically with GPU count.
    for name, series in result.points.items():
        times = [series[g].time_per_obs_s for g in sorted(series)]
        assert times == sorted(times, reverse=True), name


def test_fig7_strong_scaling_91_channels(once):
    result = once(fig7_strong_scaling.run, channels=91)
    print("\n" + result.format())

    baseline = fig7_strong_scaling.run(channels=48)
    # 91-channel observations cost more walltime than 48-channel ones
    # (paper: 5e-3 vs 3e-3 for 113B, 2e-4 vs 1e-4 for 10B).
    for name in result.points:
        t91 = result.points[name][49152].time_per_obs_s
        t48 = baseline.points[name][49152].time_per_obs_s
        assert t91 > t48, name
    ratio_113b = (
        result.points["orbit-113b"][49152].time_per_obs_s
        / baseline.points["orbit-113b"][49152].time_per_obs_s
    )
    assert 1.2 < ratio_113b < 4.0  # paper: 5e-3 / 3e-3 = 1.7

    # Efficiencies stay in the paper-like band.
    for name, series in result.points.items():
        assert 0.35 < series[49152].efficiency <= 1.0, name

"""Benchmark: paper Fig 5 — maximal model size per parallelism.

Paper: at 512 GPUs FSDP ~20B, tensor parallelism ~73B (head-limited),
Hybrid-STOP ~143B.  Shape claims: Hybrid-STOP >= the others at every
scale and ~7x FSDP at 512 GPUs; tensor parallelism plateaus once the
head count is reached; FSDP plateaus earliest.
"""

from repro.experiments import fig5_max_model_size
from repro.memory.estimator import Parallelism


def test_fig5_max_model_size(once):
    result = once(fig5_max_model_size.run)
    print("\n" + result.format())

    hybrid = result.max_params[Parallelism.HYBRID_STOP]
    tensor = result.max_params[Parallelism.TENSOR]
    fsdp = result.max_params[Parallelism.FSDP]

    # Headline: Hybrid-STOP dominates and reaches >130B at 512 GPUs
    # (paper: 143B) while FSDP stalls ~20B (paper: 20B).
    assert hybrid[512] > 130e9
    assert 15e9 < fsdp[512] < 30e9
    assert hybrid[512] > 6 * fsdp[512]  # paper factor: 143/20 = 7.2
    assert hybrid[512] > 1.5 * tensor[512]  # paper factor: 143/73 = 2.0

    # Hybrid-STOP >= both baselines at every GPU count.
    for gpus in hybrid:
        assert hybrid[gpus] >= max(tensor[gpus], fsdp[gpus])

    # Tensor parallelism plateaus at the head count (64 heads here).
    assert tensor[128] == tensor[512]
    # FSDP plateaus: the full-model gather dominates regardless of width.
    assert fsdp[512] < 1.5 * fsdp[64]
    # Hybrid-STOP keeps growing all the way to 512 GPUs.
    assert hybrid[512] > hybrid[128] > hybrid[32]

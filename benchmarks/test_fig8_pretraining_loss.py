"""Benchmark: paper Fig 8 — pre-training loss vs model size.

Paper (48 channels, global batch 2880): larger models start from a
higher loss but learn faster per observation, overtaking the smaller
ones — the 10B/113B curves end lowest.

Real training of the four-point proxy ladder on the synthetic CMIP6
archive, identical batch stream for every size.
"""

import numpy as np

from repro.experiments import fig8_pretraining_loss


def test_fig8_pretraining_loss_crossover(once):
    result = once(fig8_pretraining_loss.run, num_steps=80, seed=0)
    print("\n" + result.format())
    names = list(result.histories)
    assert names == ["proxy-115m", "proxy-1b", "proxy-10b", "proxy-113b"]

    initial = {
        n: float(np.mean([l for _, l in h[:5]])) for n, h in result.histories.items()
    }
    final = {n: result.final_smoothed_loss(n) for n in names}

    # Larger models start higher (paper: "despite of high initial loss").
    assert initial["proxy-113b"] > initial["proxy-115m"]

    # ... but end lower: every size ladder step improves the final loss
    # (paper: 10B/113B outperform 115M/1B after ~2M observations).
    assert final["proxy-113b"] < final["proxy-10b"] < final["proxy-1b"] < final["proxy-115m"]

    # The crossover exists: the biggest model overtakes the smallest
    # somewhere inside the run.
    big = result.histories["proxy-113b"]
    small = result.histories["proxy-115m"]
    crossed = [
        obs for (obs, lb), (_, ls) in zip(big, small) if lb < ls
    ]
    assert crossed, "113B-proxy never overtook 115M-proxy"
    assert crossed[0] > big[0][0], "crossover should happen after the start"

    # Every curve actually trains (loss drops substantially).
    for name in names:
        assert final[name] < 0.8 * initial[name], name

"""Benchmark harness configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates one table or figure of the paper, prints the
paper-style rows, and asserts the headline *shape* claims (who wins,
by roughly what factor, where crossovers fall).  ``EXPERIMENTS.md``
records paper-vs-measured values.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Time a driver exactly once (training drivers are not re-runnable cheaply)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run

"""Benchmark harness configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates one table or figure of the paper, prints the
paper-style rows, and asserts the headline *shape* claims (who wins,
by roughly what factor, where crossovers fall).  ``EXPERIMENTS.md``
records paper-vs-measured values.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run only benchmarks marked `quick` (the CI bench-regression subset)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "quick: fast benchmark included in the CI --quick subset"
    )


def pytest_collection_modifyitems(config, items):
    if not config.getoption("--quick"):
        return
    skip = pytest.mark.skip(reason="not part of the --quick subset")
    for item in items:
        if "quick" not in item.keywords:
            item.add_marker(skip)


def run_once(benchmark, fn, *args, **kwargs):
    """Time a driver exactly once (training drivers are not re-runnable cheaply)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run

"""Hybrid-STOP on the virtual cluster: the paper's parallelism end-to-end.

Trains the same tiny ORBIT model two ways — serially, and with the
Hybrid-STOP engine on a simulated 8-GPU Frontier node group
(tensor-parallel x FSDP x DDP = 2 x 2 x 2) — and shows:

* per-step losses agree to floating-point noise (the engine is exact);
* no device ever holds more than its parameter shard plus one gathered
  layer (the Hybrid-STOP memory property);
* the communication/computation time the virtual cluster accounted.

Run:  python examples/hybrid_stop_training.py
"""

import numpy as np

from repro.cluster import VirtualCluster
from repro.data import BatchLoader, LatLonGrid, Normalizer, SyntheticERA5, default_registry
from repro.models import OrbitConfig, build_model
from repro.parallel import HybridParallelPlan, HybridSTOPEngine, PeakFractionCompute
from repro.train import AdamW, DistributedTrainer, latitude_weighted_mse
from repro.utils.units import format_bytes, format_time


def main() -> None:
    grid = LatLonGrid(8, 16)
    names = ["2m_temperature", "temperature_850", "geopotential_500", "10m_u_component_of_wind"]
    registry = default_registry(91).subset(names)
    era5 = SyntheticERA5(grid, registry, steps_per_year=16, seed=3)
    train = era5.train()
    normalizer = Normalizer.fit(train, num_samples=16)
    weights = grid.latitude_weights()

    config = OrbitConfig(
        "orbit-hybrid-demo", embed_dim=16, depth=2, num_heads=2,
        in_vars=len(names), out_vars=len(train.out_names),
        img_height=grid.nlat, img_width=grid.nlon, patch_size=4,
    )

    # -- the distributed instance: 2-way TP x 2-way FSDP x 2-way DDP --------
    cluster = VirtualCluster(num_gpus=8, gpus_per_node=4)
    plan = HybridParallelPlan(cluster, tp_size=2, fsdp_size=2, ddp_size=2)
    engine = HybridSTOPEngine(
        build_model(config, rng=42), plan,
        prefetch=True, compute_model=PeakFractionCompute(cluster),
    )
    # -- the serial reference --------------------------------------------------
    serial = build_model(config, rng=42)

    serial_optimizer = AdamW(serial.parameters(), lr=1e-3, weight_decay=0.0)
    distributed = DistributedTrainer(engine, weights, lr=1e-3)

    loader = BatchLoader(train, batch_size=8, normalizer=normalizer, seed=0)
    print("step | serial wMSE | hybrid-stop wMSE")
    for step in range(5):
        batch = loader.next_batch()
        # Serial step over the whole global batch.
        pred = serial(batch.x, batch.lead_time_hours)
        loss_serial, grad = latitude_weighted_mse(pred, batch.y, weights)
        serial.zero_grad()
        serial.backward(grad)
        serial_optimizer.step()
        serial.clear_cache()

        # Hybrid-STOP step: DistributedTrainer splits the global batch
        # over the (DDP x FSDP) grid and reduces gradients exactly.
        loss_dist = distributed.train_step(batch)
        print(f"  {step}  |   {loss_serial:.5f}  |   {loss_dist:.5f}")

    # -- what the cluster observed ----------------------------------------------
    print("\nper-device state after training:")
    for rank in range(cluster.world_size):
        mem = cluster.device(rank).memory
        led = cluster.timeline.ledger(rank)
        print(
            f"  gpu{rank}: persistent {format_bytes(mem.category_current('params')):>10s}, "
            f"peak {format_bytes(mem.peak_bytes):>10s}, "
            f"compute {format_time(led.compute_s)}, comm {format_time(led.comm_s)} "
            f"({format_time(led.exposed_comm_s)} exposed)"
        )
    total = sum(p.data.nbytes for p in serial.parameters())
    print(f"\nfull model parameters: {format_bytes(total)} "
          f"(each GPU holds only its shard + dense replicas)")


if __name__ == "__main__":
    main()

"""Forecast comparison: a miniature of the paper's Fig 9 evaluation.

Pre-trains a tiny ORBIT on the synthetic CMIP6 archive, fine-tunes it
on synthetic ERA5 (all four target variables, mixed lead times), and
compares wACC at 1/14/30-day leads against the task-specific,
spectral-operator, numerical, and trivial baselines.

Run:  python examples/forecast_comparison.py        (~1-2 minutes)
"""

from repro.experiments import fig9_wacc


def main() -> None:
    result = fig9_wacc.run(
        pretrain_steps=200,
        finetune_steps=200,
        num_initializations=4,
    )
    print(result.format())
    print("\nmean wACC over the four target variables:")
    for model in result.wacc:
        row = "  ".join(
            f"{lead:>2d}d: {result.mean_wacc(model, lead):+.3f}" for lead in (1, 14, 30)
        )
        print(f"  {model:28s} {row}")
    orbit, ifs = "ORBIT (pretrained)", "IFS-like (numerical)"
    gain = result.mean_wacc(orbit, 14) - result.mean_wacc(ifs, 14)
    print(
        f"\nThe foundation-model pattern of paper Fig 9: ORBIT leads the "
        f"numerical baseline by {gain:+.3f} mean wACC at 14 days."
    )


if __name__ == "__main__":
    main()

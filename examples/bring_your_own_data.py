"""Bring your own data: export, reload, and fine-tune from an archive.

The synthetic generator stands in for CMIP6/ERA5, but downstream use
starts from *files*.  This example exports a dataset window to a
portable ``.npz`` archive (the same thing you would produce from real
reanalysis NetCDF), reloads it with :class:`repro.data.FileDataset`,
and runs the unchanged training/evaluation stack on it.

Run:  python examples/bring_your_own_data.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.data import (
    BatchLoader,
    Climatology,
    FileDataset,
    LatLonGrid,
    Normalizer,
    SyntheticERA5,
    default_registry,
    save_archive,
)
from repro.eval import ForecastEvaluator, ModelForecaster, PersistenceForecaster
from repro.models import OrbitConfig, build_model
from repro.train import AdamW, Trainer


def main() -> None:
    grid = LatLonGrid(8, 16)
    names = ["land_sea_mask", "2m_temperature", "temperature_850", "geopotential_500"]
    registry = default_registry(91).subset(names)

    # -- 1. export: in real use this comes from your NetCDF pipeline -------
    era5 = SyntheticERA5(grid, registry, steps_per_year=24, seed=11)
    workdir = Path(tempfile.mkdtemp(prefix="orbit-data-"))
    train_path = workdir / "train.npz"
    test_path = workdir / "test.npz"
    save_archive(era5.train().window(0, 120, name="train"), train_path)
    save_archive(era5.test(), test_path)
    print(f"exported archives to {workdir}")

    # -- 2. reload: everything downstream only sees the files -----------------
    train = FileDataset(train_path)
    test = FileDataset(test_path)
    print(f"train: {len(train)} snapshots x {train.num_channels} channels "
          f"on a {train.grid.shape} grid")

    # -- 3. the unchanged stack: normalize, train, evaluate ---------------------
    normalizer = Normalizer.fit(train, num_samples=24)
    config = OrbitConfig(
        "byod", embed_dim=16, depth=1, num_heads=2,
        in_vars=train.num_channels, out_vars=len(train.out_names),
        img_height=grid.nlat, img_width=grid.nlon, patch_size=4,
    )
    model = build_model(config, rng=0)
    loader = BatchLoader(train, 4, lead_steps_choices=(1,), normalizer=normalizer, seed=0)
    trainer = Trainer(model, loader.batches(10**9), grid.latitude_weights(),
                      AdamW(model.parameters(), lr=3e-3, weight_decay=0.0))
    result = trainer.train(150)
    print(f"fine-tuned 150 steps: wMSE {result.history[0][1]:.3f} -> {result.final_loss:.3f}")

    climatology = Climatology.from_dataset(train, num_samples=48)
    evaluator = ForecastEvaluator(test, climatology, num_initializations=4)
    model_score = evaluator.evaluate(ModelForecaster(model, normalizer), 2).mean_wacc()
    persistence = evaluator.evaluate(PersistenceForecaster(), 2).mean_wacc()
    print(f"wACC at 12 h: model {model_score:+.3f} vs persistence {persistence:+.3f}")


if __name__ == "__main__":
    main()

"""Scaling study: plan a large training run before buying the GPUs.

Uses the calibrated memory and performance models to answer the
questions the paper's evaluation answers for Frontier:

1. How large a model fits with each parallelism at my GPU count? (Fig 5)
2. Which optimizations matter, and in what order? (Table I)
3. How should I split tensor-parallel vs FSDP group sizes? (Fig 6)
4. What walltime/throughput should I expect at scale? (Fig 7)

Run:  python examples/scaling_study.py [num_gpus]
"""

import sys

from repro.experiments import (
    fig5_max_model_size,
    fig6_parallelism_config,
    fig7_strong_scaling,
    table1_optimizations,
)
from repro.memory.estimator import MemoryModel, Parallelism, TrainingSetup
from repro.models import ORBIT_113B, count_parameters
from repro.perf import PerformanceModel
from repro.perf.metrics import epoch_hours
from repro.utils.units import format_flops


def main() -> None:
    num_gpus = int(sys.argv[1]) if len(sys.argv) > 1 else 512

    print(f"=== planning a run on {num_gpus} GPUs ===\n")

    counts = sorted({1, 8, 64, num_gpus})
    print(fig5_max_model_size.run(gpu_counts=tuple(counts)).format())

    print()
    print(table1_optimizations.run(num_gpus=num_gpus,
                                   fsdp_size=num_gpus // 8).format())

    print()
    print(fig6_parallelism_config.run(num_gpus=num_gpus).format())

    print()
    result = fig7_strong_scaling.run(gpu_counts=(512, num_gpus * 4, 49152))
    print(result.format())

    # Headline summary for the 113B flagship.
    pm = PerformanceModel()
    setup = TrainingSetup(
        ORBIT_113B, 49152, Parallelism.HYBRID_STOP,
        tp_size=8, fsdp_size=64, micro_batch=3,
    )
    step = pm.step_time(setup)
    print(
        f"\nflagship: {count_parameters(ORBIT_113B) / 1e9:.0f}B parameters at 49,152 GPUs -> "
        f"{step.time_per_observation_s:.1e} s/observation, "
        f"{format_flops(step.sustained_flops)} sustained, "
        f"{epoch_hours(step.time_per_observation_s):.1f} h per 1.2M-observation epoch"
    )


if __name__ == "__main__":
    main()

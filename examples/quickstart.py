"""Quickstart: train a tiny ORBIT model on synthetic climate data.

Builds a scaled-down ORBIT (ClimaX architecture + QK layer-norm),
trains it for a few hundred steps on a synthetic ERA5-like world, and
evaluates latitude-weighted anomaly correlation (wACC) against
persistence and climatology.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.data import (
    BatchLoader,
    Climatology,
    LatLonGrid,
    Normalizer,
    SyntheticERA5,
    default_registry,
)
from repro.eval import (
    ClimatologyForecaster,
    ForecastEvaluator,
    ModelForecaster,
    PersistenceForecaster,
)
from repro.models import OrbitConfig, build_model
from repro.train import AdamW, Trainer, WarmupCosineSchedule


def main() -> None:
    # -- a small world: 16 x 32 grid, six variables ------------------------
    grid = LatLonGrid(16, 32)
    names = [
        "land_sea_mask", "2m_temperature", "temperature_850",
        "geopotential_500", "10m_u_component_of_wind", "u_component_of_wind_500",
    ]
    registry = default_registry(91).subset(names)
    era5 = SyntheticERA5(grid, registry, steps_per_year=32, seed=7)
    train, test = era5.train(), era5.test()
    normalizer = Normalizer.fit(train, num_samples=24)

    # -- a tiny ORBIT ---------------------------------------------------------
    config = OrbitConfig(
        "orbit-quickstart",
        embed_dim=32,
        depth=2,
        num_heads=4,
        in_vars=len(names),
        out_vars=len(train.out_names),
        img_height=grid.nlat,
        img_width=grid.nlon,
        patch_size=4,
        qk_layernorm=True,  # the ORBIT addition over ClimaX
    )
    model = build_model(config, rng=0)
    print(f"model: {config.name}, {model.num_parameters():,} parameters")

    # -- train ------------------------------------------------------------------
    steps = 300
    loader = BatchLoader(train, batch_size=4, lead_steps_choices=(1, 2),
                         normalizer=normalizer, seed=0)
    optimizer = AdamW(model.parameters(), lr=3e-3, weight_decay=0.0)
    schedule = WarmupCosineSchedule(3e-3, warmup_steps=10, total_steps=steps)
    trainer = Trainer(model, loader.batches(steps), grid.latitude_weights(),
                      optimizer, schedule=schedule)
    result = trainer.train(steps)
    print(f"trained {steps} steps: wMSE {result.history[0][1]:.3f} -> {result.final_loss:.3f}")

    # -- evaluate -----------------------------------------------------------------
    climatology = Climatology.from_dataset(train, num_samples=64)
    evaluator = ForecastEvaluator(test, climatology, num_initializations=6)
    forecasters = {
        "orbit (trained)": ModelForecaster(model, normalizer),
        "persistence": PersistenceForecaster(),
        "climatology": ClimatologyForecaster(climatology),
    }
    print("\nwACC at 6-hour and 12-hour leads (higher is better):")
    for name, forecaster in forecasters.items():
        scores = [evaluator.evaluate(forecaster, lead).mean_wacc() for lead in (1, 2)]
        print(f"  {name:18s} 6h: {scores[0]:+.3f}   12h: {scores[1]:+.3f}")


if __name__ == "__main__":
    main()

"""repro — reproduction of ORBIT (SC 2024).

ORBIT is a ClimaX-style vision-transformer foundation model for Earth
system predictability, scaled to 113B parameters with the Hybrid-STOP
(Hybrid Sharded Tensor-Data Orthogonal Parallelism) algorithm on the
Frontier supercomputer.  This package re-implements:

* the parallelism contribution (:mod:`repro.core`,
  :mod:`repro.parallel`) over a simulated Frontier cluster
  (:mod:`repro.cluster`);
* the model (:mod:`repro.models`) on an explicit-backprop NumPy
  substrate (:mod:`repro.nn`);
* the data, training and evaluation pipeline (:mod:`repro.data`,
  :mod:`repro.train`, :mod:`repro.eval`);
* one experiment driver per table/figure of the paper
  (:mod:`repro.experiments`).

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

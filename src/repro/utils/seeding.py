"""Deterministic, hierarchical random-number seeding.

Every stochastic component in the library takes either an integer seed
or a :class:`numpy.random.Generator`.  :class:`SeedSequenceFactory`
provides reproducible *named* streams so that, e.g., the rank-7 data
loader and the parameter initializer never share a stream regardless of
call order.
"""

from __future__ import annotations

import zlib

import numpy as np


def spawn_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalize ``seed`` into a fresh :class:`numpy.random.Generator`."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class SeedSequenceFactory:
    """Produce independent generators keyed by name.

    The stream for a given ``(root_seed, name)`` pair is stable across
    processes and call orders: the name is hashed (CRC32) into the
    ``spawn_key`` of a :class:`numpy.random.SeedSequence`.

    Examples
    --------
    >>> factory = SeedSequenceFactory(1234)
    >>> rng_a = factory.generator("init")
    >>> rng_b = factory.generator("data", 3)
    """

    def __init__(self, root_seed: int):
        if not isinstance(root_seed, (int, np.integer)):
            raise TypeError(f"root_seed must be an int, got {type(root_seed)!r}")
        self.root_seed = int(root_seed)

    def _spawn_key(self, *names: str | int) -> tuple[int, ...]:
        key = []
        for name in names:
            if isinstance(name, (int, np.integer)):
                key.append(int(name))
            else:
                key.append(zlib.crc32(str(name).encode("utf-8")))
        return tuple(key)

    def sequence(self, *names: str | int) -> np.random.SeedSequence:
        """Return the :class:`~numpy.random.SeedSequence` for a named stream."""
        return np.random.SeedSequence(self.root_seed, spawn_key=self._spawn_key(*names))

    def generator(self, *names: str | int) -> np.random.Generator:
        """Return a fresh generator for a named stream."""
        return np.random.default_rng(self.sequence(*names))

    def integer_seed(self, *names: str | int) -> int:
        """Return a stable 63-bit integer seed for a named stream."""
        return int(self.sequence(*names).generate_state(1, np.uint64)[0] >> np.uint64(1))

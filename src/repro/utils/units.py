"""Byte / FLOP / time unit constants and human-readable formatting."""

from __future__ import annotations

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30
TIB = 1 << 40

_SI_PREFIXES = ["", "K", "M", "G", "T", "P", "E"]


def _si_format(value: float, unit: str, base: float = 1000.0) -> str:
    value = float(value)
    if value == 0:
        return f"0 {unit}"
    magnitude = 0
    scaled = abs(value)
    while scaled >= base and magnitude < len(_SI_PREFIXES) - 1:
        scaled /= base
        magnitude += 1
    sign = "-" if value < 0 else ""
    return f"{sign}{scaled:.3g} {_SI_PREFIXES[magnitude]}{unit}"


def format_bytes(num_bytes: float) -> str:
    """Format a byte count with binary prefixes (GiB etc.)."""
    value = float(num_bytes)
    if abs(value) < 1024:
        return f"{value:.0f} B"
    for prefix, threshold in (("Ki", KIB), ("Mi", MIB), ("Gi", GIB), ("Ti", TIB)):
        if abs(value) < threshold * 1024 or prefix == "Ti":
            return f"{value / threshold:.2f} {prefix}B"
    raise AssertionError("unreachable")


def format_flops(flops: float) -> str:
    """Format a FLOP/s rate with SI prefixes (e.g. ``1.6 EFLOPS``)."""
    return _si_format(flops, "FLOPS")


def format_count(count: float) -> str:
    """Format a plain count (e.g. parameter count ``113 B`` -> ``113 G``)."""
    return _si_format(count, "")


def format_time(seconds: float) -> str:
    """Format a duration, switching between s/ms/us and h:m for long times."""
    seconds = float(seconds)
    if seconds < 0:
        return f"-{format_time(-seconds)}"
    if seconds >= 3600:
        hours = int(seconds // 3600)
        minutes = int((seconds % 3600) // 60)
        return f"{hours}h{minutes:02d}m"
    if seconds >= 60:
        minutes = int(seconds // 60)
        return f"{minutes}m{seconds % 60:04.1f}s"
    if seconds >= 1:
        return f"{seconds:.3g} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3g} ms"
    return f"{seconds * 1e6:.3g} us"

"""Shared utilities: logging, seeding, and unit formatting."""

from repro.utils.logging import get_logger
from repro.utils.seeding import SeedSequenceFactory, spawn_rng
from repro.utils.units import (
    GB,
    GIB,
    MB,
    MIB,
    format_bytes,
    format_count,
    format_flops,
    format_time,
)

__all__ = [
    "GB",
    "GIB",
    "MB",
    "MIB",
    "SeedSequenceFactory",
    "format_bytes",
    "format_count",
    "format_flops",
    "format_time",
    "get_logger",
    "spawn_rng",
]

"""Library logging setup.

The library never configures the root logger; it attaches a
``NullHandler`` to its own namespace so applications stay in control,
and offers :func:`get_logger` for namespaced child loggers.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    Parameters
    ----------
    name:
        Optional dotted suffix, e.g. ``"parallel.fsdp"``. ``None``
        returns the package root logger.
    """
    if name is None:
        return logging.getLogger(_ROOT_NAME)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")

"""Library logging setup, with structured trace context.

The library never configures the root logger; it attaches a
``NullHandler`` to its own namespace so applications stay in control,
and offers :func:`get_logger` for namespaced child loggers.

Structured context
------------------
Every record emitted under the ``repro`` namespace can carry three
fields — ``rank``, ``step``, and ``phase`` — describing *where in a
traced run* the record was produced.  The fields live in a
:class:`contextvars.ContextVar`:

* :class:`~repro.obs.tracer.Tracer` scopes publish ``step`` and
  ``phase`` automatically (``step.3/engine.backward`` → ``step=3``,
  ``phase="engine.backward"``);
* per-rank execution contexts (the engine's ranked-compute blocks)
  publish ``rank``;
* any caller can push fields explicitly with
  :func:`trace_log_context`.

:func:`configure_logging` installs a handler whose records always carry
the three fields (``None`` outside a traced scope), formatted either as
plain text or as JSON lines::

    configure_logging(json_lines=True)
    # {"ts": ..., "level": "INFO", "logger": "repro.obs.health",
    #  "message": "...", "rank": 3, "step": 0, "phase": "engine.forward"}
"""

from __future__ import annotations

import json
import logging
from contextlib import contextmanager
from contextvars import ContextVar

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())

#: Fields every structured record carries.
TRACE_FIELDS = ("rank", "step", "phase")

_TRACE_CONTEXT: ContextVar[dict] = ContextVar(f"{_ROOT_NAME}_trace_context", default={})


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    Parameters
    ----------
    name:
        Optional dotted suffix, e.g. ``"parallel.fsdp"``. ``None``
        returns the package root logger.
    """
    if name is None:
        return logging.getLogger(_ROOT_NAME)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


# -- trace context -----------------------------------------------------------
def current_trace_context() -> dict:
    """The active ``{rank, step, phase}`` fields (missing keys omitted)."""
    return dict(_TRACE_CONTEXT.get())


@contextmanager
def trace_log_context(**fields):
    """Overlay ``rank``/``step``/``phase`` onto the logging context.

    ``None`` values leave the inherited value in place, so nested
    scopes refine rather than erase (a rank-scoped block inside a step
    scope sees all three fields).
    """
    merged = dict(_TRACE_CONTEXT.get())
    merged.update({k: v for k, v in fields.items() if v is not None})
    token = _TRACE_CONTEXT.set(merged)
    try:
        yield
    finally:
        _TRACE_CONTEXT.reset(token)


class TraceContextFilter(logging.Filter):
    """Stamp every record with the trace fields (``None`` when unset).

    Values already set on the record (via ``extra={"rank": ...}``) win
    over the ambient context.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        context = _TRACE_CONTEXT.get()
        for field in TRACE_FIELDS:
            if not hasattr(record, field):
                setattr(record, field, context.get(field))
        return True


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record, trace fields included."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": self.formatTime(record, self.datefmt),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for field in TRACE_FIELDS:
            payload[field] = getattr(record, field, None)
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload)


class TextFormatter(logging.Formatter):
    """Plain-text formatter that appends the non-empty trace fields."""

    def format(self, record: logging.LogRecord) -> str:
        base = super().format(record)
        parts = [
            f"{field}={getattr(record, field)}"
            for field in TRACE_FIELDS
            if getattr(record, field, None) is not None
        ]
        return f"{base} [{' '.join(parts)}]" if parts else base


def configure_logging(
    json_lines: bool = False,
    level: int | str = logging.INFO,
    stream=None,
) -> logging.Handler:
    """Attach a structured handler to the ``repro`` root logger.

    Returns the handler so callers (and tests) can detach it with
    ``get_logger().removeHandler(handler)``.
    """
    handler = logging.StreamHandler(stream)
    handler.addFilter(TraceContextFilter())
    if json_lines:
        handler.setFormatter(JsonLinesFormatter())
    else:
        handler.setFormatter(TextFormatter("%(levelname)s %(name)s: %(message)s"))
    root = get_logger()
    root.addHandler(handler)
    root.setLevel(level)
    return handler

"""What a live plan switch costs, priced from the run's own history.

A migration is: sharded checkpoint save -> session rebuild (elastic
regroup of the collective groups) -> warm-up of the new plan.  Each
component is priced from :class:`~repro.faults.goodput.GoodputLedger`
history when the run has already paid for one (average realized cost
beats any configured constant), falling back to the Supervisor's
configured cost-model charges otherwise:

* checkpoint: ``ledger.checkpoint_s / ledger.checkpoints`` — the
  realized cost of the periodic durable checkpoints;
* rebuild: ``ledger.lost_restart_s / ledger.restarts`` — the realized
  incarnation-restart latency (scheduler requeue, process spawn,
  archive load), which is exactly what a rebuild-and-resume pays;
* warm-up: a configured surcharge for the new plan's first step
  (gather-path cache warm, overlap budgets resetting).

The resulting total feeds the controller's break-even test: a switch
only happens when the projected goodput gain over the remaining
horizon clears ``total_s`` by the hysteresis margin.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MigrationCostModel:
    """Priced components of one live plan migration."""

    checkpoint_s: float
    rebuild_s: float
    warmup_s: float = 0.0

    def __post_init__(self):
        if min(self.checkpoint_s, self.rebuild_s, self.warmup_s) < 0:
            raise ValueError("migration cost components must be non-negative")

    @property
    def total_s(self) -> float:
        return self.checkpoint_s + self.rebuild_s + self.warmup_s

    def as_dict(self) -> dict:
        return {
            "checkpoint_s": self.checkpoint_s,
            "rebuild_s": self.rebuild_s,
            "warmup_s": self.warmup_s,
            "total_s": self.total_s,
        }

    @classmethod
    def from_ledger(
        cls,
        ledger,
        checkpoint_cost_s: float,
        restart_latency_s: float,
        warmup_s: float = 0.0,
    ) -> "MigrationCostModel":
        """Realized average costs where history exists, configured
        charges where it does not."""
        checkpoint = (
            ledger.checkpoint_s / ledger.checkpoints
            if ledger.checkpoints
            else checkpoint_cost_s
        )
        rebuild = (
            ledger.lost_restart_s / ledger.restarts
            if ledger.restarts
            else restart_latency_s
        )
        return cls(checkpoint_s=checkpoint, rebuild_s=rebuild,
                   warmup_s=warmup_s)

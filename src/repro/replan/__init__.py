"""Online adaptive re-planning: mid-run plan migration.

``repro.replan`` turns health findings and fault events into a typed
decision — stay on the current parallelism plan, or checkpoint, rebuild
and resume on a better one — priced against the run's own goodput
history.  See :mod:`repro.replan.controller` for the decision
procedure, :mod:`repro.replan.profile` for the degraded-machine model,
and :mod:`repro.replan.cost` for the migration cost model.
"""

from repro.replan.controller import ReplanController, ReplanDecision, candidate_of
from repro.replan.cost import MigrationCostModel
from repro.replan.profile import DegradationProfile

__all__ = [
    "DegradationProfile",
    "MigrationCostModel",
    "ReplanController",
    "ReplanDecision",
    "candidate_of",
]

"""DegradationProfile: the replanner's picture of the sick machine.

The controller never looks at raw detector output or injector state
directly; everything it knows about the degraded cluster is projected
into one frozen :class:`DegradationProfile` — per-rank compute slowdown
factors, per-rank link bandwidth factors, and the set of permanently
lost ranks — plus how many more steps the evidence says the condition
will last.  Two independent evidence channels feed it:

* :meth:`DegradationProfile.from_injector` reads the fault injector's
  fired, in-window degradations (the seeded-scenario replay channel —
  exact factors and exact remaining windows);
* :meth:`DegradationProfile.from_findings` converts
  :class:`~repro.obs.health.Finding` records (straggler excess over the
  median) into estimated compute factors — the channel a real cluster
  would use, where only the symptom is observable.

Profiles are canonically ordered and hashable, and :meth:`key` renders
a stable string used both for replan hysteresis (one evaluation per
distinct profile) and as the tune-cache degradation component
(:attr:`repro.tune.space.TuneRequest.degradation_key`).
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _canonical(pairs) -> tuple[tuple[int, float], ...]:
    """Sorted (rank, factor) pairs, keeping the max factor per rank."""
    best: dict[int, float] = {}
    for rank, factor in pairs:
        rank = int(rank)
        factor = float(factor)
        if factor <= 1.0:
            continue
        best[rank] = max(best.get(rank, 1.0), factor)
    return tuple(sorted(best.items()))


@dataclass(frozen=True)
class DegradationProfile:
    """Projected state of a degraded cluster.

    ``compute`` / ``links`` hold ``(rank, factor)`` slowdown multipliers
    (factors are > 1; a rank absent from a map runs at full speed);
    ``lost_ranks`` are permanently gone; ``remaining_steps`` is the
    longest remaining degradation window — the horizon over which the
    degraded (rather than clean) step time applies.
    """

    compute: tuple[tuple[int, float], ...] = ()
    links: tuple[tuple[int, float], ...] = ()
    lost_ranks: tuple[int, ...] = ()
    remaining_steps: int = 0

    def __post_init__(self):
        object.__setattr__(self, "compute", _canonical(self.compute))
        object.__setattr__(self, "links", _canonical(self.links))
        object.__setattr__(
            self, "lost_ranks", tuple(sorted(set(int(r) for r in self.lost_ranks)))
        )
        if self.remaining_steps < 0:
            raise ValueError("remaining_steps must be non-negative")

    # -- lookups --------------------------------------------------------------
    def compute_factor(self, rank: int) -> float:
        return dict(self.compute).get(rank, 1.0)

    def link_factor(self, rank: int) -> float:
        return dict(self.links).get(rank, 1.0)

    @property
    def is_clean(self) -> bool:
        """No degradation evidence at all (the stay-fast path)."""
        return not self.compute and not self.links and not self.lost_ranks

    def key(self) -> str:
        """Canonical string identity (hysteresis + tune-cache key)."""
        if self.is_clean:
            return ""
        parts = []
        for tag, pairs in (("c", self.compute), ("l", self.links)):
            parts.extend(f"{tag}{rank}x{factor:g}" for rank, factor in pairs)
        parts.extend(f"-{rank}" for rank in self.lost_ranks)
        parts.append(f"w{self.remaining_steps}")
        return ",".join(parts)

    def as_dict(self) -> dict:
        return {
            "compute": [[rank, factor] for rank, factor in self.compute],
            "links": [[rank, factor] for rank, factor in self.links],
            "lost_ranks": list(self.lost_ranks),
            "remaining_steps": self.remaining_steps,
        }

    # -- evidence channels ----------------------------------------------------
    @classmethod
    def from_injector(cls, injector, step: int) -> "DegradationProfile":
        """Project the injector's fired, in-window degradations at
        ``step``: the exact-evidence channel of a seeded scenario."""
        from repro.faults.plan import FaultKind

        compute, links = [], []
        remaining = 0
        for rank, spec in injector.active_degradations(step):
            window_left = spec.step + spec.duration_steps - step
            remaining = max(remaining, window_left)
            if spec.kind is FaultKind.STRAGGLER:
                compute.append((rank, spec.factor))
            else:
                links.append((rank, spec.factor))
        return cls(compute=tuple(compute), links=tuple(links),
                   remaining_steps=remaining)

    @classmethod
    def from_findings(cls, findings, remaining_steps: int = 0) -> "DegradationProfile":
        """Estimate a profile from health findings.

        A ``straggler`` finding's magnitude is the rank's busy-time
        excess over the median, so ``1 + magnitude`` approximates its
        compute slowdown factor.  Imbalance and other categories carry
        no per-rank factor and are ignored here — they describe the
        *plan*, not the machine.
        """
        from repro.obs.health import FindingKind

        compute = []
        for finding in findings:
            if finding.kind is FindingKind.STRAGGLER and finding.ranks:
                compute.append((finding.ranks[0], 1.0 + finding.magnitude))
        return cls(compute=tuple(compute), remaining_steps=remaining_steps)

    def merged(self, other: "DegradationProfile") -> "DegradationProfile":
        """Union of two evidence channels (max factor per rank)."""
        return DegradationProfile(
            compute=self.compute + other.compute,
            links=self.links + other.links,
            lost_ranks=self.lost_ranks + other.lost_ranks,
            remaining_steps=max(self.remaining_steps, other.remaining_steps),
        )

"""The ReplanController: should this run switch plans, and to what?

Consulted by the :class:`~repro.faults.supervisor.Supervisor` after
every committed step that has live degradation evidence.  One
evaluation is four moves:

1. **Project** the degraded topology (a
   :class:`~repro.replan.profile.DegradationProfile`) — done by the
   caller, from injector evidence and/or health findings.
2. **Re-price the candidate space** on that profile with the
   :class:`~repro.tune.estimator.AnalyticEstimator`: projected step
   time of the current plan vs every legal alternative that preserves
   the global batch (and therefore the data stream — the bitwise
   contract of an elastic switch).
3. **Compare the projected gain over the remaining horizon** — degraded
   step-time difference while the degradation window lasts, clean
   difference after it expires — against the
   :class:`~repro.replan.cost.MigrationCostModel` total.
4. **Decide**: switch only when the gain clears the migration cost by
   the hysteresis margin (a break-even switch would churn for nothing);
   otherwise stay — and a stay changes zero bytes of training state.

The controller is pure decision logic: it never touches the session.
Executing a switch (checkpoint -> rebuild -> resume) is the
Supervisor's job, so every mutation of training state stays on the one
code path that already owns recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.replan.cost import MigrationCostModel
from repro.replan.profile import DegradationProfile
from repro.tune.estimator import AnalyticEstimator
from repro.tune.space import Candidate, TuneRequest, enumerate_space
from repro.utils.logging import get_logger

_LOG = get_logger("replan")


@dataclass(frozen=True)
class ReplanDecision:
    """One evaluated migration decision (journaled as typed data)."""

    step: int
    action: str  # "stay" | "switch"
    reason: str
    profile_key: str
    current_label: str
    best_label: str
    #: Projected step seconds on the *degraded* machine.
    current_step_s: float
    best_step_s: float
    #: Projected step seconds on a clean machine (post-window regime).
    current_clean_step_s: float
    best_clean_step_s: float
    #: Walltime saved over the remaining horizon by switching now.
    projected_gain_s: float
    migration_cost_s: float
    hysteresis: float
    remaining_steps: int
    degraded_steps: int
    candidates_considered: int
    #: The chosen alternative as a :class:`~repro.tune.space.Candidate`
    #: (the executable form of ``best_label``); carried for the
    #: Supervisor's switch path, not serialized.
    best_candidate: Candidate | None = None

    @property
    def switch(self) -> bool:
        return self.action == "switch"

    def as_dict(self) -> dict:
        return {
            "step": self.step,
            "action": self.action,
            "reason": self.reason,
            "profile": self.profile_key,
            "current": self.current_label,
            "best": self.best_label,
            "current_step_s": self.current_step_s,
            "best_step_s": self.best_step_s,
            "current_clean_step_s": self.current_clean_step_s,
            "best_clean_step_s": self.best_clean_step_s,
            "projected_gain_s": self.projected_gain_s,
            "migration_cost_s": self.migration_cost_s,
            "hysteresis": self.hysteresis,
            "remaining_steps": self.remaining_steps,
            "degraded_steps": self.degraded_steps,
            "candidates_considered": self.candidates_considered,
        }


def candidate_of(spec) -> Candidate:
    """The tuner's view of a RunSpec's plan."""
    return Candidate(
        tp_size=spec.tp_size,
        fsdp_size=spec.fsdp_size,
        ddp_size=spec.ddp_size,
        micro_batch=spec.micro_batch,
        recompute=spec.recompute,
        prefetch=spec.prefetch,
        tp_innermost=spec.tp_innermost,
        pp_size=spec.pp_size,
    )


class ReplanController:
    """Analytic mid-run replanner for one supervised spec.

    Parameters
    ----------
    spec:
        The run being supervised (fixes model, world, and global batch).
    hysteresis:
        Extra margin the projected gain must clear beyond the migration
        cost (0.25 = gain must exceed cost by 25%).
    micro_batches:
        Micro-batch axis of the alternative space; candidates are
        filtered to the spec's observation count regardless, so widening
        this only adds equal-batch factorization trades.
    elastic_only:
        Restrict alternatives to plans reachable by the sharded elastic
        resume path — same per-replica (pp, tp, fsdp) grid, DDP and
        micro-batch retraded.  Forced for numeric runs, where parameter
        shards physically live in the grid layout; meta runs may take
        any legal plan (their checkpoint is pure RNG + loop state).
    estimator:
        Injectable :class:`AnalyticEstimator` (tests, probe reuse).
    """

    def __init__(
        self,
        spec,
        *,
        hysteresis: float = 0.25,
        micro_batches: tuple[int, ...] = (1, 2, 4, 8),
        elastic_only: bool | None = None,
        estimator: AnalyticEstimator | None = None,
    ):
        if hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")
        self.spec = spec
        self.hysteresis = float(hysteresis)
        self.micro_batches = tuple(sorted(set(micro_batches) | {spec.micro_batch}))
        self.elastic_only = (
            bool(elastic_only) if elastic_only is not None else not spec.meta
        )
        self.estimator = estimator if estimator is not None else AnalyticEstimator(
            spec.config, spec.num_gpus, spec.gpus_per_node
        )
        #: estimate cache: (candidate, profile key) -> Estimate.
        self._estimates: dict[tuple, object] = {}

    # -- candidate space -------------------------------------------------------
    def alternatives(self, spec) -> list[Candidate]:
        """Legal same-world candidates preserving the observation count."""
        request = TuneRequest(
            config=spec.config,
            num_gpus=spec.num_gpus,
            gpus_per_node=spec.gpus_per_node,
            micro_batches=self.micro_batches,
            recompute_options=(False, True),
            prefetch_options=(spec.prefetch,),
            pp_sizes=(spec.pp_size,),
        )
        current = candidate_of(spec)
        out = []
        for candidate in enumerate_space(request).candidates:
            if candidate.observations != spec.observations:
                continue
            if self.elastic_only and (
                candidate.tp_size != spec.tp_size
                or candidate.fsdp_size != spec.fsdp_size
                or candidate.tp_innermost != spec.tp_innermost
                or candidate.recompute != spec.recompute
            ):
                continue
            if candidate == current:
                continue
            out.append(candidate)
        return out

    def _estimate(self, candidate: Candidate, profile) -> object:
        key = (candidate, profile.key() if profile is not None else "")
        if key not in self._estimates:
            self._estimates[key] = self.estimator.estimate(
                candidate, degradation=profile
            )
        return self._estimates[key]

    # -- the decision ----------------------------------------------------------
    def evaluate(
        self,
        spec,
        step: int,
        num_steps: int,
        profile: DegradationProfile,
        cost_model: MigrationCostModel,
    ) -> ReplanDecision:
        """Price current vs alternatives on ``profile``; decide.

        ``step`` is the next step to run; ``num_steps`` the run's step
        budget, so ``num_steps - step`` is the remaining horizon the
        projected gain integrates over.
        """
        current = candidate_of(spec)
        remaining = max(0, num_steps - step)
        degraded_steps = min(profile.remaining_steps, remaining)

        current_deg = self._estimate(current, profile)
        current_clean = self._estimate(current, None)

        def horizon_s(deg, clean) -> float:
            return (degraded_steps * deg.step_time_s
                    + (remaining - degraded_steps) * clean.step_time_s)

        def decision(action, reason, best_candidate, best_deg, best_clean,
                     gain, considered) -> ReplanDecision:
            return ReplanDecision(
                step=step,
                action=action,
                reason=reason,
                profile_key=profile.key(),
                current_label=current.label(),
                best_label=best_candidate.label(),
                current_step_s=current_deg.step_time_s,
                best_step_s=best_deg.step_time_s,
                current_clean_step_s=current_clean.step_time_s,
                best_clean_step_s=best_clean.step_time_s,
                projected_gain_s=gain,
                migration_cost_s=cost_model.total_s,
                hysteresis=self.hysteresis,
                remaining_steps=remaining,
                degraded_steps=degraded_steps,
                candidates_considered=considered,
                best_candidate=best_candidate,
            )

        if remaining <= 0:
            return decision("stay", "horizon exhausted", current,
                            current_deg, current_clean, 0.0, 0)

        best = None
        candidates = self.alternatives(spec)
        for candidate in candidates:
            deg = self._estimate(candidate, profile)
            if not deg.fits:
                continue
            clean = self._estimate(candidate, None)
            projected = horizon_s(deg, clean)
            if best is None or projected < best[0]:
                best = (projected, candidate, deg, clean)

        current_projected = horizon_s(current_deg, current_clean)
        if best is None:
            return decision("stay", "no feasible alternative",
                            current, current_deg, current_clean,
                            0.0, len(candidates))

        projected, candidate, deg, clean = best
        gain = current_projected - projected
        threshold = cost_model.total_s * (1.0 + self.hysteresis)
        if gain <= threshold:
            reason = (
                f"projected gain {gain:.6f} s does not clear migration "
                f"cost {cost_model.total_s:.6f} s x {1 + self.hysteresis:.2f}"
            )
            return decision("stay", reason, candidate, deg, clean,
                            gain, len(candidates))
        reason = (
            f"{candidate.label()} projects {gain:.6f} s gain over "
            f"{remaining} remaining step(s) ({degraded_steps} degraded), "
            f"vs {cost_model.total_s:.6f} s migration cost"
        )
        _LOG.info("replan switch at step %d: %s", step, reason)
        return decision("switch", reason, candidate, deg, clean,
                        gain, len(candidates))

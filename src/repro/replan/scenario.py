"""The seeded replan demo scenario (``repro replan`` and its tests).

The trace-tiny model the other CLI commands use cannot demonstrate
re-planning: its per-rank compute (~50 ns/step) is four orders of
magnitude below its exposed communication, so a compute straggler is
invisible and a link degrade scales every candidate plan uniformly —
the degraded ranking equals the clean ranking and the controller
correctly always stays.  The demo model is sized so compute and
communication are the same order of magnitude (~3 ms vs ~8-30 ms per
step at 16 GPUs); under a lead-rank straggler the estimator then ranks
``tp2.f4.d2.mb4`` well ahead of the default ``tp4.f2.d2.mb8+ckpt``
plan, and the supervisor migrates.
"""

from __future__ import annotations

from repro.models.configs import OrbitConfig


def demo_config() -> OrbitConfig:
    """A model where compute is comparable to exposed communication."""
    return OrbitConfig(
        "replan-demo",
        in_vars=3,
        out_vars=2,
        embed_dim=256,
        depth=8,
        num_heads=8,
        img_height=32,
        img_width=32,
        patch_size=2,
    )


def demo_plan():
    """A windowed lead-rank straggler: x8 on rank 0 for steps 2..13."""
    from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

    return FaultPlan((
        FaultSpec(step=2, rank=0, kind=FaultKind.STRAGGLER,
                  factor=8.0, duration_steps=12),
    ))


def demo_spec(*, replan: str = "on", monitor: str = "on"):
    """The supervised run: 16 GPUs on the deliberately non-optimal
    ``tp4.f2.d2.mb8+ckpt`` plan (meta mode — exact cost accounting,
    no numerics, so the demo runs in seconds)."""
    from repro.runtime.spec import RunSpec

    return RunSpec(
        config=demo_config(),
        num_gpus=16,
        gpus_per_node=8,
        tp_size=4,
        fsdp_size=2,
        ddp_size=2,
        micro_batch=8,
        recompute=True,
        meta=True,
        monitor=monitor,
        replan=replan,
        track_device_memory=False,
    )


#: Step budget and supervisor charges the demo is calibrated for: the
#: migration costs are scaled to the demo model's millisecond-scale
#: steps, so break-even clears within the straggler window.
DEMO_STEPS = 16
DEMO_SUPERVISOR_KWARGS = dict(
    checkpoint_every=4,
    degradation_aware=True,
    checkpoint_cost_s=0.005,
    restart_latency_s=0.01,
    replan_warmup_s=0.005,
)

"""Configuration-space enumeration for the parallelism planner.

A *candidate* is one complete engine configuration: a
(pipeline, tensor-parallel, FSDP, DDP) factorization of the world size
plus the micro-batch size, the activation-checkpointing policy,
prefetch on/off, and the ``tp_innermost`` rank layout.  :func:`enumerate_space` walks
every combination and splits it into legal candidates and
:class:`Rejection` records carrying the reason — non-divisible
factorizations, head-count constraints, tensor-parallel groups that
would span node boundaries — so a report can explain *why* a
configuration the user expected is absent.

Two legality regimes exist:

* **engine mode** (default): only configurations the simulated
  :class:`~repro.parallel.engine.HybridSTOPEngine` can actually run —
  whole heads per rank when ``qk_layernorm`` is on, tensor-parallel
  groups confined to one node (the paper's Fig 4 placement);
* **relaxed mode** (``engine_mode=False``): the analytic regime of the
  Fig 6 sweep, which admits sub-head sharding and node-spanning
  tensor-parallel groups because no engine step is ever taken.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.configs import OrbitConfig


@dataclass(frozen=True)
class Candidate:
    """One fully specified engine configuration."""

    tp_size: int
    fsdp_size: int
    ddp_size: int
    micro_batch: int
    recompute: bool = False
    prefetch: bool = True
    tp_innermost: bool = True
    pp_size: int = 1

    @property
    def world_size(self) -> int:
        return self.pp_size * self.tp_size * self.fsdp_size * self.ddp_size

    @property
    def observations(self) -> int:
        """Observations per step (global batch; the pipeline axis adds
        stages, not observations)."""
        return self.micro_batch * self.fsdp_size * self.ddp_size

    def label(self) -> str:
        """Compact human-readable tag (also the cache-key fragment).

        The ``pp{S}`` segment appears only for pipelined candidates, so
        3D labels — and the cache entries keyed on them — are unchanged,
        while a 4D plan can never collide with its ``pp=1`` projection.
        """
        flags = []
        if self.recompute:
            flags.append("ckpt")
        if self.prefetch:
            flags.append("pf")
        if not self.tp_innermost:
            flags.append("fsdp-inner")
        suffix = "+" + "+".join(flags) if flags else ""
        pp = f"pp{self.pp_size}." if self.pp_size > 1 else ""
        return (
            f"{pp}tp{self.tp_size}.f{self.fsdp_size}.d{self.ddp_size}"
            f".mb{self.micro_batch}{suffix}"
        )


@dataclass(frozen=True)
class Rejection:
    """A (factorization, layout) combination ruled out, and why.

    Policy axes (micro-batch, checkpointing, prefetch) never affect
    legality, so rejections are recorded once per factorization/layout
    rather than once per candidate.
    """

    tp_size: int
    fsdp_size: int
    ddp_size: int
    tp_innermost: bool
    reason: str
    pp_size: int = 1


@dataclass(frozen=True)
class TuneRequest:
    """What to search: model, machine, and the policy axes to sweep."""

    config: OrbitConfig
    num_gpus: int
    gpus_per_node: int = 8
    micro_batches: tuple[int, ...] = (1, 2, 4)
    recompute_options: tuple[bool, ...] = (False, True)
    prefetch_options: tuple[bool, ...] = (True, False)
    #: Restrict the tensor-parallel axis (the Fig 6 sweep pins it);
    #: ``None`` sweeps every divisor of the world size.
    tp_sizes: tuple[int, ...] | None = None
    #: Pipeline depths to sweep.  The default keeps the search 3D; the
    #: ``repro tune --pp`` flag widens it to the 4D space.
    pp_sizes: tuple[int, ...] = (1,)
    #: Engine-runnable legality vs the relaxed analytic regime.
    engine_mode: bool = True
    #: Canonical key of the hardware/degradation profile the request is
    #: priced against (:meth:`repro.replan.DegradationProfile.key`).
    #: Empty for a clean machine — the historical cache-key shape — so
    #: degraded-topology estimates can never collide with (or poison)
    #: clean-topology cache entries.
    degradation_key: str = ""

    def __post_init__(self):
        if self.num_gpus < 1 or self.gpus_per_node < 1:
            raise ValueError("num_gpus and gpus_per_node must be positive")
        if self.num_gpus > self.gpus_per_node and self.num_gpus % self.gpus_per_node:
            raise ValueError(
                f"{self.num_gpus} GPUs is not a whole number of "
                f"{self.gpus_per_node}-GPU nodes"
            )
        if not self.micro_batches or min(self.micro_batches) < 1:
            raise ValueError("micro_batches must be positive")
        if not self.pp_sizes or min(self.pp_sizes) < 1:
            raise ValueError("pp_sizes must be positive")

    @property
    def nodes(self) -> int:
        return max(1, self.num_gpus // self.gpus_per_node)

    def topology_key(self) -> str:
        return f"g{self.num_gpus}x{self.gpus_per_node}"

    def config_key(self) -> str:
        """Structural identity of the model (cache key component)."""
        c = self.config
        return (
            f"{c.name}:d{c.embed_dim}:L{c.depth}:h{c.num_heads}"
            f":v{c.in_vars}-{c.out_vars}:i{c.img_height}x{c.img_width}"
            f":p{c.patch_size}:m{c.mlp_ratio}:q{int(c.qk_layernorm)}"
        )


@dataclass(frozen=True)
class SearchSpace:
    """The outcome of enumeration: legal candidates plus rejections."""

    request: TuneRequest
    candidates: tuple[Candidate, ...]
    rejections: tuple[Rejection, ...] = field(default=())

    def rejection_reasons(self) -> dict[str, int]:
        """Histogram of rejection reasons (for the report)."""
        counts: dict[str, int] = {}
        for rejection in self.rejections:
            counts[rejection.reason] = counts.get(rejection.reason, 0) + 1
        return counts


def _factorization_reason(request: TuneRequest, tp: int, fsdp: int, ddp: int,
                          tp_innermost: bool, pp: int = 1) -> str | None:
    """Why (pp, tp, fsdp, ddp) under this layout is illegal; None if legal.

    Delegates to the runtime layer's
    :func:`~repro.runtime.spec.engine_legality_reason`, so the tuner
    rejects exactly what a :class:`~repro.runtime.spec.RunSpec` would.
    """
    from repro.runtime.spec import engine_legality_reason

    return engine_legality_reason(
        request.config, tp, fsdp, ddp,
        tp_innermost=tp_innermost,
        gpus_per_node=request.gpus_per_node,
        engine_mode=request.engine_mode,
        pp=pp,
    )


def enumerate_space(request: TuneRequest) -> SearchSpace:
    """All legal candidates for ``request``, plus why the rest are not.

    The policy axes (micro-batch, checkpointing, prefetch) multiply
    only the *legal* factorizations; ``tp_innermost=False`` is
    enumerated only when both the tensor-parallel and FSDP axes are
    non-trivial (otherwise the two layouts give the identical rank
    map and would duplicate candidates).
    """
    world = request.num_gpus
    candidates: list[Candidate] = []
    rejections: list[Rejection] = []

    for pp in request.pp_sizes:
        if world % pp:
            rejections.append(Rejection(
                0, 0, 0, True, f"pp {pp} does not divide world size {world}",
                pp_size=pp,
            ))
            continue
        stage_world = world // pp
        tp_axis = request.tp_sizes if request.tp_sizes is not None else tuple(
            tp for tp in range(1, stage_world + 1) if stage_world % tp == 0
        )
        for tp in tp_axis:
            if stage_world % tp:
                scope = "world size" if pp == 1 else "per-stage world size"
                rejections.append(Rejection(
                    tp, 0, 0, True,
                    f"tp {tp} does not divide {scope} {stage_world}",
                    pp_size=pp,
                ))
                continue
            remainder = stage_world // tp
            for fsdp in (f for f in range(1, remainder + 1) if remainder % f == 0):
                ddp = remainder // fsdp
                layouts = (True, False) if (tp > 1 and fsdp > 1) else (True,)
                for tp_innermost in layouts:
                    reason = _factorization_reason(
                        request, tp, fsdp, ddp, tp_innermost, pp=pp
                    )
                    if reason is not None:
                        rejections.append(Rejection(
                            tp, fsdp, ddp, tp_innermost, reason, pp_size=pp
                        ))
                        continue
                    for micro_batch in request.micro_batches:
                        for recompute in request.recompute_options:
                            for prefetch in request.prefetch_options:
                                candidates.append(Candidate(
                                    tp_size=tp, fsdp_size=fsdp, ddp_size=ddp,
                                    micro_batch=micro_batch, recompute=recompute,
                                    prefetch=prefetch, tp_innermost=tp_innermost,
                                    pp_size=pp,
                                ))
    return SearchSpace(request, tuple(candidates), tuple(rejections))

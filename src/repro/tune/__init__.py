"""Automatic parallelism planner (``repro tune``).

Answers "what is the fastest legal Hybrid-STOP configuration for this
model on N nodes that fits in device memory?" with a two-stage search:

1. :mod:`repro.tune.space` enumerates every legal
   (tensor-parallel, FSDP, DDP) factorization of the world size crossed
   with micro-batch size, activation checkpointing, prefetch, and rank
   layout, recording a reason for every rejected combination;
2. :mod:`repro.tune.estimator` scores each candidate analytically —
   per-step time from FLOP counts plus alpha-beta collective costs
   along the plan's group layout, peak memory from
   :mod:`repro.memory.estimator` — and prunes configurations that do
   not fit;
3. :mod:`repro.tune.search` ranks the survivors and validates the
   top-k with real meta-mode engine steps (the same harness the bench
   gate runs), with a result cache keyed by (model, topology, config);
4. :mod:`repro.tune.report` renders the ranked table, the why-pruned
   explanations, and a critical-path explanation of the winner.
"""

from repro.tune.estimator import AnalyticEstimator, Estimate
from repro.tune.report import render_report, result_document, write_report
from repro.tune.search import (
    InfeasibleRequest,
    ScoredCandidate,
    TuneCache,
    TuneResult,
    run_search,
    simulate_candidate,
)
from repro.tune.space import (
    Candidate,
    Rejection,
    SearchSpace,
    TuneRequest,
    enumerate_space,
)

__all__ = [
    "AnalyticEstimator",
    "Candidate",
    "Estimate",
    "InfeasibleRequest",
    "Rejection",
    "ScoredCandidate",
    "SearchSpace",
    "TuneCache",
    "TuneRequest",
    "TuneResult",
    "enumerate_space",
    "render_report",
    "result_document",
    "run_search",
    "simulate_candidate",
    "write_report",
]

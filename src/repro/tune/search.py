"""Two-stage configuration search: analytic ranking, simulated validation.

Stage one scores every legal candidate with the
:class:`~repro.tune.estimator.AnalyticEstimator` (exact replay of the
engine's cost accounting, so the ranking *is* the simulated ranking)
and prunes candidates the memory model says will not fit.  Stage two
runs the top-k survivors through the real meta-mode engine via the
bench harness — the same code path the regression gate measures — both
as a belt-and-braces check on the analytic numbers and to capture the
winner's trace for the critical-path explanation in the report.

Validation results are cached in a JSON file keyed by
``(model structure, topology, candidate)``, so re-tuning after an
unrelated code change replays instantly; the cache never feeds stage
one, which is cheap enough to always recompute.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.tune.estimator import AnalyticEstimator, Estimate
from repro.tune.space import Candidate, SearchSpace, TuneRequest, enumerate_space
from repro.utils.logging import get_logger

_LOG = get_logger("tune")

#: Format version of the tune cache file.  Bumped to 2 when the label
#: schema grew the optional ``pp{S}.`` prefix for pipelined candidates.
CACHE_SCHEMA = 2


class InfeasibleRequest(RuntimeError):
    """No candidate can run: everything was rejected or exceeds memory.

    Carries the enumerated :class:`SearchSpace` so the CLI can explain
    exactly why before exiting with status 2.
    """

    def __init__(self, message: str, space: SearchSpace):
        super().__init__(message)
        self.space = space


@dataclass
class ScoredCandidate:
    """A candidate with its analytic estimate and, for the top-k, the
    simulated measurement dict from the validation stage."""

    candidate: Candidate
    estimate: Estimate
    simulated: dict | None = None

    @property
    def simulated_step_time_s(self) -> float | None:
        return self.simulated["step_time_s"] if self.simulated else None

    @property
    def analytic_error(self) -> float | None:
        """Relative error of the analytic estimate vs the simulation."""
        if not self.simulated:
            return None
        sim = self.simulated["step_time_s"]
        return abs(self.estimate.step_time_s - sim) / sim if sim else 0.0


@dataclass(frozen=True)
class TuneResult:
    """Everything the report needs: ranking, validation, and pruning."""

    request: TuneRequest
    space: SearchSpace
    #: All memory-feasible candidates, best analytic time-per-observation
    #: (the Fig 6 throughput metric) first.
    ranked: tuple[ScoredCandidate, ...]
    #: Candidates pruned for exceeding device memory.
    oom_pruned: tuple[ScoredCandidate, ...]
    #: The top-k slice of ``ranked``, each with ``simulated`` filled in.
    validated: tuple[ScoredCandidate, ...]
    #: The validated candidate with the lowest *simulated* time per
    #: observation.
    winner: ScoredCandidate
    cache_hits: int = 0
    cache_misses: int = 0


class TuneCache:
    """JSON-file cache of simulated validation results.

    Keys combine the model's structural identity, the machine topology,
    and the candidate label, so a cache file can safely serve many
    models and machine sizes at once.  ``path=None`` keeps the cache
    in-memory only (tests, one-shot runs).
    """

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self._entries: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        if self.path is not None and self.path.exists():
            doc = json.loads(self.path.read_text())
            if doc.get("schema") == CACHE_SCHEMA:
                self._entries = doc.get("entries", {})
            else:
                _LOG.warning(
                    "ignoring tune cache %s with schema %r",
                    self.path, doc.get("schema"),
                )

    @staticmethod
    def key(request: TuneRequest, candidate: Candidate) -> str:
        """Cache key: model structure, machine topology, candidate —
        and, when the request prices a *degraded* machine, the
        degradation profile.  The degraded component is appended only
        when present, so every clean-topology key (and the entries
        existing cache files hold under them) is unchanged.
        """
        parts = [request.config_key(), request.topology_key(),
                 candidate.label()]
        if request.degradation_key:
            parts.append(f"degraded={request.degradation_key}")
        return "|".join(parts)

    def get(self, request: TuneRequest, candidate: Candidate) -> dict | None:
        entry = self._entries.get(self.key(request, candidate))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, request: TuneRequest, candidate: Candidate, value: dict) -> None:
        self._entries[self.key(request, candidate)] = value

    def __len__(self) -> int:
        return len(self._entries)

    def save(self) -> None:
        if self.path is None:
            return
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(
                {"schema": CACHE_SCHEMA, "entries": self._entries},
                indent=1, sort_keys=True,
            )
            + "\n"
        )


def simulate_candidate(request: TuneRequest, candidate: Candidate) -> dict:
    """One real meta-mode engine step of ``candidate``, as a plain dict.

    Runs through :func:`repro.bench.harness.run_case` — the exact
    harness the regression gate measures — and keeps a compact
    critical-path summary of the trace for the report.
    """
    from repro.bench.harness import BenchCase, run_case
    from repro.obs.critical_path import analyze_trace
    from repro.obs.tracer import Tracer

    case = BenchCase(
        name=candidate.label(),
        model=request.config.name,
        num_gpus=request.num_gpus,
        gpus_per_node=request.gpus_per_node,
        tp_size=candidate.tp_size,
        fsdp_size=candidate.fsdp_size,
        ddp_size=candidate.ddp_size,
        micro_batch=candidate.micro_batch,
        pp_size=candidate.pp_size,
        prefetch=candidate.prefetch,
        recompute=candidate.recompute,
        tp_innermost=candidate.tp_innermost,
    )
    tracer = Tracer()
    record = run_case(case, config=request.config, tracer=tracer)
    overall = analyze_trace(tracer).overall
    critical = overall.ranks[overall.critical_rank]
    by_op = sorted(
        ((op, s) for op, s in overall.exposed_comm_by_op.items() if s > 0),
        key=lambda kv: kv[1], reverse=True,
    )
    return {
        "step_time_s": record.step_time_s,
        "time_per_obs_s": record.time_per_obs_s,
        "peak_memory_bytes": record.peak_memory_bytes,
        "exposed_comm_fraction": record.exposed_comm_fraction,
        "bound_resource": record.bound_resource,
        "critical_path": {
            "critical_rank": overall.critical_rank,
            "compute_s": critical.compute_s,
            "exposed_comm_s": critical.exposed_comm_s,
            "hidden_comm_s": critical.hidden_comm_s,
            "exposed_comm_by_op": dict(by_op[:8]),
        },
    }


def run_search(
    request: TuneRequest,
    top_k: int = 3,
    cache: TuneCache | None = None,
    estimator: AnalyticEstimator | None = None,
) -> TuneResult:
    """Enumerate, score, prune, and validate; return the full picture.

    Raises :class:`InfeasibleRequest` when no candidate is both legal
    and memory-feasible — the CLI maps that to exit status 2.
    """
    if not request.engine_mode:
        raise ValueError(
            "run_search needs engine_mode=True: relaxed-mode candidates "
            "cannot be simulated for validation"
        )
    if top_k < 1:
        raise ValueError("top_k must be positive")
    space = enumerate_space(request)
    if not space.candidates:
        reasons = "; ".join(
            f"{reason} (x{count})"
            for reason, count in sorted(space.rejection_reasons().items())
        )
        raise InfeasibleRequest(
            f"no legal configuration for {request.config.name} on "
            f"{request.num_gpus} GPUs: {reasons}",
            space,
        )
    if estimator is None:
        estimator = AnalyticEstimator(
            request.config, request.num_gpus, request.gpus_per_node
        )
    _LOG.info(
        "tune %s on %d GPUs: scoring %d candidates (%d rejected)",
        request.config.name, request.num_gpus,
        len(space.candidates), len(space.rejections),
    )
    scored = [
        ScoredCandidate(candidate, estimator.estimate(candidate))
        for candidate in space.candidates
    ]
    # Ranked by throughput — walltime per observation, the paper's
    # Fig 6 metric — since the FSDP/DDP axes multiply the global batch.
    feasible = sorted(
        (s for s in scored if s.estimate.fits),
        key=lambda s: s.estimate.time_per_obs_s,
    )
    oom = tuple(
        sorted(
            (s for s in scored if not s.estimate.fits),
            key=lambda s: s.estimate.peak_memory_bytes,
        )
    )
    if not feasible:
        raise InfeasibleRequest(
            f"all {len(scored)} legal configurations of {request.config.name} "
            f"exceed device memory on {request.num_gpus} GPUs "
            "(smallest predicted peak "
            f"{oom[0].estimate.peak_memory_bytes / 2**30:.1f} GiB)",
            space,
        )

    if cache is None:
        cache = TuneCache()
    top = feasible[: min(top_k, len(feasible))]
    for entry in top:
        simulated = cache.get(request, entry.candidate)
        if simulated is None:
            simulated = simulate_candidate(request, entry.candidate)
            cache.put(request, entry.candidate, simulated)
        entry.simulated = simulated
    cache.save()

    winner = min(top, key=lambda s: s.simulated["time_per_obs_s"])
    _LOG.info(
        "tune winner: %s, simulated step %.6f s (analytic %.6f s)",
        winner.candidate.label(),
        winner.simulated["step_time_s"], winner.estimate.step_time_s,
    )
    return TuneResult(
        request=request,
        space=space,
        ranked=tuple(feasible),
        oom_pruned=oom,
        validated=tuple(top),
        winner=winner,
        cache_hits=cache.hits,
        cache_misses=cache.misses,
    )

"""Analytic per-candidate cost estimates for the parallelism planner.

Step time is derived without running a full engine step.  The key
structural facts that make this exact rather than approximate:

* the :class:`~repro.cluster.timeline.Timeline` accounts each rank's
  ledger independently (walltime is the max over ranks of
  ``compute_s + exposed_comm_s``), so only each rank's *own ordered
  event sequence* matters, never the cross-rank interleaving;
* all DDP replicas are identical and all FSDP indices are symmetric,
  so only the K tensor-parallel rank classes ``rank(0, 0, k)`` can be
  the slowest rank (class k=0 additionally carries the layer-norm /
  bias / dense work);
* every trunk block produces the same event sequence (identical
  shapes), so one block is probed and replayed ``depth`` times.

The probe runs the *real* :class:`~repro.core.hybrid_block.HybridSTOPBlock`
code path on shape-only meta arrays against a recording timeline: FLOP
counts come from the meta op layer and collective seconds from the
alpha-beta :class:`~repro.cluster.costmodel.CollectiveCostModel` along
the plan's true group layout.  The captured per-block stream — plus
closed-form events for the dense front/head, the replicated-dense
gradient sync, and the DDP shard reductions — is replayed through a
fresh timeline, reproducing the engine's overlap accounting (prefetch
hiding, budget resets) exactly.  Cost: one block's events instead of
``ddp * depth`` blocks plus engine construction, roughly two orders of
magnitude cheaper than the simulation it predicts.

Peak memory comes from the closed-form
:class:`~repro.memory.estimator.MemoryModel` (real-machine bytes:
optimizer states, activations), which is what prunes OOM candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.cluster.timeline import Timeline
from repro.memory.estimator import MemoryModel, Parallelism, TrainingSetup
from repro.meta import MetaArray, nbytes_of
from repro.models.climax_vit import build_model
from repro.models.configs import OrbitConfig
from repro.nn.context import ExecutionContext, execution_context
from repro.nn.transformer import TransformerBlock
from repro.parallel.compute import PeakFractionCompute
from repro.parallel.plan import HybridParallelPlan
from repro.runtime.session import build_cluster, fabricate_batch
from repro.tune.space import Candidate


@dataclass(frozen=True)
class Estimate:
    """Analytic prediction for one candidate."""

    candidate: Candidate
    #: Predicted step walltime (slowest rank's busy time).
    step_time_s: float
    #: Ledger buckets of the predicted critical rank.
    compute_s: float
    comm_s: float
    exposed_comm_s: float
    #: Real-machine per-GPU bytes from the closed-form memory model.
    peak_memory_bytes: float
    #: Whether the candidate fits the per-GPU memory budget.
    fits: bool
    #: Pipeline-bubble cost: idle seconds the 1F1B schedule adds beyond
    #: the slowest stage's busy time, and the schedule's idle fraction
    #: ``(S - 1) / (M + S - 1)``.  Zero for 3D (``pp_size == 1``) plans.
    bubble_s: float = 0.0
    bubble_fraction: float = 0.0

    @property
    def time_per_obs_s(self) -> float:
        return self.step_time_s / self.candidate.observations

    @property
    def exposed_comm_fraction(self) -> float:
        busy = self.compute_s + self.exposed_comm_s
        return self.exposed_comm_s / busy if busy > 0 else 0.0


class _DegradedReplayTimeline(Timeline):
    """Replay timeline that applies per-rank degradation factors.

    Mirrors the :class:`~repro.faults.injector.FaultInjector` timeline
    protocol: compute events on a degraded rank are multiplied by its
    straggler factor, and collective events by the product of the link
    factors of every degraded participant — so an estimate replayed
    through this timeline predicts what the *injected* engine run would
    measure.  ``pipeline.stall`` filler is exempt: stalls are derived
    from already-degraded busy times, not physical work.
    """

    def __init__(self, num_ranks: int, compute_factors: dict[int, float],
                 link_factors: dict[int, float]):
        super().__init__(num_ranks)
        self._compute_factors = compute_factors
        self._link_factors = link_factors

    def record_compute(self, rank, seconds, flops=0.0, op="compute"):
        if op != "pipeline.stall":
            seconds = seconds * self._compute_factors.get(rank, 1.0)
        super().record_compute(rank, seconds, flops, op)

    def record_comm(self, ranks, seconds, nbytes, overlappable=False, op="comm"):
        ranks = tuple(ranks)
        for rank in ranks:
            seconds = seconds * self._link_factors.get(rank, 1.0)
        super().record_comm(
            ranks, seconds, nbytes, overlappable=overlappable, op=op
        )


def _class_representative(candidate: Candidate, rank: int) -> int:
    """The estimator's replay rank standing in for physical ``rank``.

    The replay only simulates the tensor-parallel rank classes
    ``stage * stage_size + rank(0, 0, k)`` (all DDP replicas and FSDP
    indices are symmetric), so a degradation on any physical rank is
    projected onto its class representative.  Exact when at most one
    member of each class is degraded; class-maximal (the projection
    can only overstate the current plan's degradation, never invent a
    difference between candidates) otherwise.
    """
    tp, fsdp = candidate.tp_size, candidate.fsdp_size
    stage_size = tp * fsdp * candidate.ddp_size
    stage, within = divmod(rank, stage_size)
    per_replica = tp * fsdp
    if candidate.tp_innermost:
        k = within % tp
        rep = k
    else:
        k = (within % per_replica) // fsdp
        rep = k * fsdp
    return stage * stage_size + rep


class _RecordingTimeline(Timeline):
    """Timeline that also captures every event for later replay."""

    def __init__(self, num_ranks: int):
        super().__init__(num_ranks)
        self.events: list[tuple] = []

    def record_compute(self, rank, seconds, flops=0.0, op="compute"):
        self.events.append(("compute", rank, seconds, flops, op))
        super().record_compute(rank, seconds, flops, op)

    def record_comm(self, ranks, seconds, nbytes, overlappable=False, op="comm"):
        ranks = tuple(ranks)
        self.events.append(("comm", ranks, seconds, nbytes, overlappable, op))
        super().record_comm(ranks, seconds, nbytes, overlappable=overlappable, op=op)


@dataclass(frozen=True)
class _BlockProbe:
    """One trunk block's event stream, pre-filtered to the rank classes."""

    plan: HybridParallelPlan
    forward: tuple[tuple, ...]
    backward: tuple[tuple, ...]
    #: (tensor-parallel column, shard bytes) of each sharded parameter —
    #: the DDP gradient reduction schedule of one block.
    shard_columns: tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class _DenseProbe:
    """Dense front/head FLOPs and parameter bytes for one micro-batch."""

    front_fwd_flops: float
    head_fwd_flops: float
    head_bwd_flops: float
    front_bwd_flops: float
    front_param_nbytes: tuple[int, ...]
    head_param_nbytes: tuple[int, ...]

    @property
    def param_nbytes(self) -> tuple[int, ...]:
        return self.front_param_nbytes + self.head_param_nbytes

    @property
    def total_bytes(self) -> int:
        return sum(self.param_nbytes)


def _filter_events(events: Iterable[tuple], reps: frozenset[int]) -> tuple[tuple, ...]:
    """Keep only the accounting that touches a representative rank."""
    kept = []
    for event in events:
        if event[0] == "compute":
            if event[1] in reps:
                kept.append(event)
        else:
            ranks = tuple(r for r in event[1] if r in reps)
            if ranks:
                kept.append(("comm", ranks, *event[2:]))
    return tuple(kept)


class AnalyticEstimator:
    """Scores candidates of one (model, topology) request analytically."""

    def __init__(
        self,
        config: OrbitConfig,
        num_gpus: int,
        gpus_per_node: int = 8,
        efficiency: float = 0.45,
        memory_model: MemoryModel | None = None,
    ):
        self.config = config
        self.num_gpus = num_gpus
        self.gpus_per_node = gpus_per_node
        self.memory_model = memory_model if memory_model is not None else MemoryModel()
        # One shared probe cluster: all candidates factorize the same
        # world, and the recording timeline is reset per probe.
        self._cluster = build_cluster(
            num_gpus, gpus_per_node, track_device_memory=False
        )
        self._recorder = _RecordingTimeline(num_gpus)
        self._cluster.timeline = self._recorder
        self._compute_model = PeakFractionCompute(self._cluster, efficiency=efficiency)
        self._model = None
        self._block_probes: dict[tuple, _BlockProbe] = {}
        self._dense_probes: dict[int, _DenseProbe] = {}

    # -- memory -----------------------------------------------------------------
    def memory_setup(self, candidate: Candidate) -> TrainingSetup:
        """The closed-form memory model's view of a candidate."""
        return TrainingSetup(
            self.config,
            self.num_gpus,
            Parallelism.HYBRID_STOP,
            tp_size=candidate.tp_size,
            fsdp_size=candidate.fsdp_size,
            pp_size=candidate.pp_size,
            micro_batch=candidate.micro_batch,
            activation_checkpointing=candidate.recompute,
            layer_wrapping=True,
            prefetch=candidate.prefetch,
        )

    def peak_memory_bytes(self, candidate: Candidate) -> float:
        return self.memory_model.per_gpu_bytes(self.memory_setup(candidate))

    def fits(self, candidate: Candidate) -> bool:
        return self.memory_model.fits(self.memory_setup(candidate))

    # -- probes -----------------------------------------------------------------
    def _dense_probe(self, micro_batch: int) -> _DenseProbe:
        if micro_batch in self._dense_probes:
            return self._dense_probes[micro_batch]
        from repro.parallel.engine import _DenseFront, _DenseHead

        if self._model is None:
            self._model = build_model(self.config, meta=True)
        front = _DenseFront(self._model)
        head = _DenseHead(self._model)
        cfg = self.config
        x = MetaArray((micro_batch, cfg.in_vars, cfg.img_height, cfg.img_width))
        lead = MetaArray((micro_batch,))
        phases = [ExecutionContext() for _ in range(4)]
        with execution_context(phases[0]):
            tokens = front.forward(x, lead)
        with execution_context(phases[1]):
            preds = head.forward(tokens)
        with execution_context(phases[2]):
            grad_tokens = head.backward(MetaArray(preds.shape))
        with execution_context(phases[3]):
            front.backward(grad_tokens)
        probe = _DenseProbe(
            front_fwd_flops=phases[0].flops,
            head_fwd_flops=phases[1].flops,
            head_bwd_flops=phases[2].flops,
            front_bwd_flops=phases[3].flops,
            front_param_nbytes=tuple(
                nbytes_of(p.data) for p in front.parameters()
            ),
            head_param_nbytes=tuple(
                nbytes_of(p.data) for p in head.parameters()
            ),
        )
        self._dense_probes[micro_batch] = probe
        return probe

    def _block_probe(self, candidate: Candidate) -> _BlockProbe:
        """Run one real trunk block in meta mode and capture its events."""
        key = (
            candidate.tp_size, candidate.fsdp_size, candidate.ddp_size,
            candidate.tp_innermost, candidate.prefetch, candidate.micro_batch,
        )
        if key in self._block_probes:
            return self._block_probes[key]
        from repro.core.hybrid_block import HybridSTOPBlock

        cfg = self.config
        plan = HybridParallelPlan(
            self._cluster,
            tp_size=candidate.tp_size,
            fsdp_size=candidate.fsdp_size,
            ddp_size=candidate.ddp_size,
            tp_innermost=candidate.tp_innermost,
            pp_size=candidate.pp_size,
        )
        serial = TransformerBlock(
            cfg.embed_dim, cfg.num_heads, mlp_ratio=cfg.mlp_ratio,
            qk_layernorm=cfg.qk_layernorm, meta=True,
        )
        # The probe always runs on stage 0's sub-grid (the whole plan at
        # pp=1): every stage is a rank-offset copy, so the captured
        # stream replays at any stage by shifting ranks.
        block = HybridSTOPBlock(
            serial, plan.stage_plan(0), ddp_index=0, prefetch=candidate.prefetch,
            compute_model=self._compute_model, name="probe",
        )
        block.set_track_gather_memory(False)
        reps = frozenset(plan.rank(0, 0, k) for k in range(candidate.tp_size))
        xs = fabricate_batch(
            (candidate.micro_batch, cfg.num_patches, cfg.embed_dim),
            fsdp_size=candidate.fsdp_size,
        )
        self._recorder.reset()
        self._recorder.events.clear()
        ys = block.forward(xs)
        forward = _filter_events(self._recorder.events, reps)
        self._recorder.events.clear()
        block.backward([MetaArray(y.shape) for y in ys])
        backward = _filter_events(self._recorder.events, reps)
        self._recorder.events.clear()
        shard_columns = tuple(
            (plan.coords(param.devices[0].rank)[2], param.shard_nbytes)
            for param in block.sharded_parameters()
        )
        probe = _BlockProbe(plan, forward, backward, shard_columns)
        self._block_probes[key] = probe
        return probe

    # -- replay -----------------------------------------------------------------
    def _replay_timeline(self, candidate: Candidate, degradation) -> Timeline:
        """A fresh replay timeline — degradation-aware when a profile
        with compute/link factors is given."""
        if degradation is None or (not degradation.compute
                                   and not degradation.links):
            return Timeline(self.num_gpus)

        def project(pairs) -> dict[int, float]:
            factors: dict[int, float] = {}
            for rank, factor in pairs:
                rep = _class_representative(candidate, rank)
                factors[rep] = max(factors.get(rep, 1.0), factor)
            return factors

        return _DegradedReplayTimeline(
            self.num_gpus, project(degradation.compute),
            project(degradation.links),
        )

    def estimate(self, candidate: Candidate, degradation=None) -> Estimate:
        """Predicted step time and memory for one candidate.

        ``degradation`` (a :class:`~repro.replan.DegradationProfile`)
        re-prices the candidate on a degraded machine: the captured
        event stream is replayed through a timeline that applies the
        profile's per-rank compute and link slowdown factors, exactly
        as the fault injector would scale the live engine's events.
        The probes themselves are degradation-independent (they record
        clean base costs), so one estimator serves any profile.
        """
        if candidate.world_size != self.num_gpus:
            raise ValueError(
                f"candidate world {candidate.world_size} != {self.num_gpus} GPUs"
            )
        peak = self.peak_memory_bytes(candidate)
        fits = peak <= self.memory_model.gpu_memory_bytes
        if candidate.pp_size > 1:
            return self._estimate_pipelined(candidate, peak, fits,
                                            degradation=degradation)
        probe = self._block_probe(candidate)
        dense = self._dense_probe(candidate.micro_batch)
        plan = probe.plan
        cfg = self.config
        timeline = self._replay_timeline(candidate, degradation)
        reps = [plan.rank(0, 0, k) for k in range(candidate.tp_size)]
        lead = reps[0]

        def replay(events: tuple[tuple, ...]) -> None:
            for event in events:
                if event[0] == "compute":
                    timeline.record_compute(*event[1:])
                else:
                    _, ranks, seconds, nbytes, overlappable, op = event
                    timeline.record_comm(
                        ranks, seconds, nbytes, overlappable=overlappable, op=op
                    )

        def dense_compute(flops: float, op: str) -> None:
            timeline.record_compute(
                lead, self._compute_model.seconds_for(flops, lead), flops, op=op
            )

        # Forward: per-FSDP dense front, depth trunk blocks, dense head.
        dense_compute(dense.front_fwd_flops, "dense.front")
        for _ in range(cfg.depth):
            replay(probe.forward)
        dense_compute(dense.head_fwd_flops, "dense.head")
        # Backward (reverse order); checkpointing re-runs each block's
        # forward — re-gathering and re-paying compute — before its
        # backward, exactly as the trunk does.
        dense_compute(dense.head_bwd_flops, "dense.head")
        for _ in range(cfg.depth):
            if candidate.recompute:
                replay(probe.forward)
            replay(probe.backward)
        dense_compute(dense.front_bwd_flops, "dense.front")

        cost_model = self._cluster.cost_model
        replica_ranks = [
            plan.rank(0, f, k)
            for f in range(candidate.fsdp_size)
            for k in range(candidate.tp_size)
        ]
        if len(replica_ranks) > 1:
            seconds = cost_model.all_reduce(replica_ranks, dense.total_bytes)
            timeline.record_comm(
                reps, seconds, dense.total_bytes, op="dense_grad_sync"
            )
        if candidate.ddp_size > 1:
            # Each representative joins the shard-0 reduction group of
            # every sharded parameter on its column, once per block; the
            # reductions are non-overlappable, so recording depth-scaled
            # seconds once per parameter leaves the ledger identical to
            # depth separate events.
            for column, shard_nbytes in probe.shard_columns:
                group = [
                    plan.rank(d, 0, column) for d in range(candidate.ddp_size)
                ]
                seconds = cost_model.all_reduce(group, shard_nbytes)
                timeline.record_comm(
                    [plan.rank(0, 0, column)],
                    seconds * cfg.depth,
                    shard_nbytes * cfg.depth,
                    op="all_reduce",
                )
            lead_group = [plan.rank(d, 0, 0) for d in range(candidate.ddp_size)]
            for param_nbytes in dense.param_nbytes:
                seconds = cost_model.all_reduce(lead_group, param_nbytes)
                timeline.record_comm([lead], seconds, param_nbytes, op="all_reduce")

        critical = max((timeline.ledger(r) for r in reps), key=lambda l: l.walltime_s)
        return Estimate(
            candidate=candidate,
            step_time_s=critical.walltime_s,
            compute_s=critical.compute_s,
            comm_s=critical.comm_s,
            exposed_comm_s=critical.exposed_comm_s,
            peak_memory_bytes=peak,
            fits=fits,
        )

    def _estimate_pipelined(self, candidate: Candidate, peak: float,
                            fits: bool, degradation=None) -> Estimate:
        """Per-stage replay of a 4D candidate, mirroring the engine.

        Each stage replays its own slice of blocks at its rank offset
        (stages are rank-offset copies of the probe grid), with the
        dense front on stage 0, the head on the last stage, and fused
        point-to-point boundary sends in between.  Per-rank ledgers are
        event-order independent, so the 1F1B makespan is reconstructed
        from the per-stage busy times via the closed-form
        ``(M + S - 1) * max(busy) / M`` — the same post-hoc accounting
        :class:`~repro.parallel.engine.HybridSTOPEngine` applies — and
        the remainder shows up as ``pipeline.stall`` compute, followed
        by the epilogue reductions.
        """
        from repro.parallel.stages import (
            bubble_fraction, partition_blocks, schedule_walltime,
        )

        probe = self._block_probe(candidate)
        dense = self._dense_probe(candidate.micro_batch)
        plan = probe.plan
        cfg = self.config
        S, M, K = candidate.pp_size, candidate.micro_batch, candidate.tp_size
        stage_size = plan.stage_size
        bounds = partition_blocks(cfg.depth, S)
        timeline = self._replay_timeline(candidate, degradation)
        cost_model = self._cluster.cost_model

        def stage_reps(s: int) -> list[int]:
            return [s * stage_size + plan.rank(0, 0, k) for k in range(K)]

        def replay(events: tuple[tuple, ...], offset: int) -> None:
            for event in events:
                if event[0] == "compute":
                    _, rank, seconds, flops, op = event
                    timeline.record_compute(rank + offset, seconds, flops, op)
                else:
                    _, ranks, seconds, nbytes, overlappable, op = event
                    timeline.record_comm(
                        [r + offset for r in ranks], seconds, nbytes,
                        overlappable=overlappable, op=op,
                    )

        def dense_compute(rank: int, flops: float, op: str) -> None:
            timeline.record_compute(
                rank, self._compute_model.seconds_for(flops, rank), flops, op=op
            )

        # Per-f activation payload crossing a stage boundary (fp32 meta).
        token_nbytes = 4 * M * cfg.num_patches * cfg.embed_dim

        def boundary(src_stage: int, dst_stage: int, op: str) -> None:
            # The engine records one fused event per (d, f, k); only the
            # (0, 0, k) class ranks can be critical, so those suffice.
            per_micro = token_nbytes / M
            for k in range(K):
                src = src_stage * stage_size + plan.rank(0, 0, k)
                dst = dst_stage * stage_size + plan.rank(0, 0, k)
                seconds = M * cost_model.point_to_point(src, dst, per_micro)
                timeline.record_comm([src, dst], seconds, token_nbytes, op=op)

        # Forward: front on stage 0, each stage's block slice, boundary
        # sends, head on the last stage.
        for s in range(S):
            offset = s * stage_size
            if s == 0:
                dense_compute(offset + plan.rank(0, 0, 0),
                              dense.front_fwd_flops, "dense.front")
            start, end = bounds[s]
            for _ in range(end - start):
                replay(probe.forward, offset)
            if s + 1 < S:
                boundary(s, s + 1, "pipeline.send")
            if s == S - 1:
                dense_compute(offset + plan.rank(0, 0, 0),
                              dense.head_fwd_flops, "dense.head")
        # Backward: mirror order, gradient sends toward stage 0.
        for s in reversed(range(S)):
            offset = s * stage_size
            if s == S - 1:
                dense_compute(offset + plan.rank(0, 0, 0),
                              dense.head_bwd_flops, "dense.head")
            start, end = bounds[s]
            for _ in range(end - start):
                if candidate.recompute:
                    replay(probe.forward, offset)
                replay(probe.backward, offset)
            if s > 0:
                boundary(s, s - 1, "pipeline.grad_send")
            if s == 0:
                dense_compute(offset + plan.rank(0, 0, 0),
                              dense.front_bwd_flops, "dense.front")

        # 1F1B makespan: stages overlap across micro-batches, so the
        # drained walltime is (M + S - 1) / M of the slowest stage; the
        # surplus over each stage's own busy time is its bubble stall.
        busy = [
            max(timeline.ledger(r).walltime_s for r in stage_reps(s))
            for s in range(S)
        ]
        total = schedule_walltime(busy, M)
        for s in range(S):
            for rank in stage_reps(s):
                timeline.record_compute(rank, total - busy[s], 0.0,
                                        op="pipeline.stall")

        # Epilogue: the dense front syncs over stage 0's replica, the
        # head over the last stage's.
        def dense_sync(stage: int, nbytes: int) -> None:
            offset = stage * stage_size
            replica_ranks = [
                offset + plan.rank(0, f, k)
                for f in range(candidate.fsdp_size) for k in range(K)
            ]
            if len(replica_ranks) > 1 and nbytes:
                seconds = cost_model.all_reduce(replica_ranks, nbytes)
                timeline.record_comm(stage_reps(stage), seconds, nbytes,
                                     op="dense_grad_sync")

        dense_sync(0, sum(dense.front_param_nbytes))
        dense_sync(S - 1, sum(dense.head_param_nbytes))
        if candidate.ddp_size > 1:
            for s in range(S):
                offset = s * stage_size
                start, end = bounds[s]
                stage_depth = end - start
                for column, shard_nbytes in probe.shard_columns:
                    group = [
                        offset + plan.rank(d, 0, column)
                        for d in range(candidate.ddp_size)
                    ]
                    seconds = cost_model.all_reduce(group, shard_nbytes)
                    timeline.record_comm(
                        [offset + plan.rank(0, 0, column)],
                        seconds * stage_depth,
                        shard_nbytes * stage_depth,
                        op="all_reduce",
                    )

            def dense_reduce(stage: int, nbytes_list: tuple[int, ...]) -> None:
                offset = stage * stage_size
                lead_group = [
                    offset + plan.rank(d, 0, 0)
                    for d in range(candidate.ddp_size)
                ]
                for param_nbytes in nbytes_list:
                    seconds = cost_model.all_reduce(lead_group, param_nbytes)
                    timeline.record_comm([lead_group[0]], seconds,
                                         param_nbytes, op="all_reduce")

            dense_reduce(0, dense.front_param_nbytes)
            dense_reduce(S - 1, dense.head_param_nbytes)

        all_reps = [r for s in range(S) for r in stage_reps(s)]
        critical = max(
            (timeline.ledger(r) for r in all_reps), key=lambda l: l.walltime_s
        )
        return Estimate(
            candidate=candidate,
            step_time_s=critical.walltime_s,
            compute_s=critical.compute_s,
            comm_s=critical.comm_s,
            exposed_comm_s=critical.exposed_comm_s,
            peak_memory_bytes=peak,
            fits=fits,
            bubble_s=total - max(busy),
            bubble_fraction=bubble_fraction(S, M),
        )

"""Human- and machine-readable output for tune results.

:func:`render_report` prints the ranked table (analytic time, memory,
exposed-communication share, and — for the validated top-k — the
simulated step time and the analytic error against it), the why-pruned
explanations grouped by reason, and a critical-path breakdown of the
winner.  :func:`result_document` is the JSON mirror of the same
information (``repro tune --out``), and :func:`write_report` puts it on
disk.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.tune.search import ScoredCandidate, TuneResult

#: Format version of the ``repro tune --out`` document.
REPORT_SCHEMA = 1


def _gib(nbytes: float) -> str:
    return f"{nbytes / 2**30:.2f} GiB"


def _ranked_rows(result: TuneResult, limit: int) -> list[list[str]]:
    rows = []
    for index, entry in enumerate(result.ranked[:limit], start=1):
        estimate = entry.estimate
        simulated = entry.simulated_step_time_s
        error = entry.analytic_error
        rows.append([
            str(index),
            entry.candidate.label(),
            f"{estimate.step_time_s:.6f}",
            f"{estimate.time_per_obs_s:.6f}",
            f"{estimate.exposed_comm_fraction:.3f}",
            f"{estimate.bubble_s:.6f}" if estimate.bubble_s else "-",
            _gib(estimate.peak_memory_bytes),
            f"{simulated:.6f}" if simulated is not None else "-",
            f"{error:.2%}" if error is not None else "-",
        ])
    return rows


def render_report(result: TuneResult, limit: int = 12) -> str:
    """The full text report for one tune run."""
    from repro.experiments.common import format_table

    request = result.request
    lines = [
        f"repro tune: {request.config.name} on {request.num_gpus} GPUs "
        f"({request.nodes} nodes x {request.gpus_per_node})",
        f"  legal candidates: {len(result.space.candidates)}"
        f" | memory-feasible: {len(result.ranked)}"
        f" | validated: {len(result.validated)}"
        f" | cache: {result.cache_hits} hits / {result.cache_misses} misses",
        "",
        format_table(
            ["#", "config", "est_step_s", "est_s/obs", "exp-comm",
             "bubble_s", "est peak", "sim_step_s", "err"],
            _ranked_rows(result, limit),
            title="Ranked configurations (analytic estimate; top-k simulated)",
        ),
    ]
    if len(result.ranked) > limit:
        lines.append(f"  ... and {len(result.ranked) - limit} more")

    pruned = result.space.rejection_reasons()
    if pruned or result.oom_pruned:
        lines += ["", "Why configurations were pruned:"]
        for reason, count in sorted(pruned.items()):
            lines.append(f"  - {reason}  (x{count})")
        if result.oom_pruned:
            worst = result.oom_pruned[0]
            lines.append(
                f"  - predicted peak exceeds device memory "
                f"(x{len(result.oom_pruned)}; closest: "
                f"{worst.candidate.label()} at "
                f"{_gib(worst.estimate.peak_memory_bytes)})"
            )

    winner = result.winner
    path = winner.simulated["critical_path"]
    lines += [
        "",
        f"Winner: {winner.candidate.label()}",
        f"  simulated step {winner.simulated['step_time_s']:.6f} s "
        f"({winner.simulated['time_per_obs_s']:.6f} s/obs), "
        f"analytic error {winner.analytic_error:.2%}",
        f"  predicted peak memory {_gib(winner.estimate.peak_memory_bytes)}, "
        f"{winner.simulated['bound_resource']}-bound",
        f"  critical path (rank {path['critical_rank']}): "
        f"compute {path['compute_s']:.6f} s"
        f" + exposed comm {path['exposed_comm_s']:.6f} s"
        f" (hidden {path['hidden_comm_s']:.6f} s)",
    ]
    by_op = path.get("exposed_comm_by_op") or {}
    if by_op:
        lines.append("  exposed communication by op:")
        for op, seconds in by_op.items():
            lines.append(f"    {op:<20s} {seconds:.6f} s")
    return "\n".join(lines)


def recovery_recommendation(
    result: TuneResult,
    mtbf_s: float,
    checkpoint_cost_s: float = 30.0,
    restart_latency_s: float = 120.0,
) -> dict:
    """Recovery-aware checkpoint cadence for the tune winner.

    Uses the winner's *simulated* step time with the Young/Daly model
    (:mod:`repro.faults.goodput`) to recommend a checkpoint interval
    (``repro faults --checkpoint-every`` units) and report the expected
    goodput fraction under the given MTBF.
    """
    from repro.faults.goodput import (
        expected_goodput_fraction,
        recommend_checkpoint_interval,
    )

    step_s = result.winner.simulated["step_time_s"]
    interval_s = recommend_checkpoint_interval(
        mtbf_s, checkpoint_cost_s, step_time_s=step_s
    )
    return {
        "mtbf_s": mtbf_s,
        "checkpoint_cost_s": checkpoint_cost_s,
        "restart_latency_s": restart_latency_s,
        "step_time_s": step_s,
        "checkpoint_interval_s": interval_s,
        "checkpoint_every_steps": max(1, round(interval_s / step_s)),
        "expected_goodput_fraction": expected_goodput_fraction(
            mtbf_s, checkpoint_cost_s, restart_latency_s, interval_s
        ),
    }


def render_recovery(recommendation: dict) -> str:
    """Text form of :func:`recovery_recommendation`."""
    rec = recommendation
    return "\n".join([
        f"Recovery-aware checkpointing (MTBF {rec['mtbf_s']:.0f} s, "
        f"checkpoint cost {rec['checkpoint_cost_s']:.0f} s, "
        f"restart latency {rec['restart_latency_s']:.0f} s):",
        f"  checkpoint every {rec['checkpoint_interval_s']:.1f} s "
        f"= {rec['checkpoint_every_steps']} step(s) of "
        f"{rec['step_time_s']:.6f} s",
        f"  expected goodput fraction {rec['expected_goodput_fraction']:.4f}",
    ])


def _scored_dict(entry: ScoredCandidate) -> dict:
    estimate = entry.estimate
    out = {
        "config": entry.candidate.label(),
        "pp_size": entry.candidate.pp_size,
        "tp_size": entry.candidate.tp_size,
        "fsdp_size": entry.candidate.fsdp_size,
        "ddp_size": entry.candidate.ddp_size,
        "micro_batch": entry.candidate.micro_batch,
        "recompute": entry.candidate.recompute,
        "prefetch": entry.candidate.prefetch,
        "tp_innermost": entry.candidate.tp_innermost,
        "estimate": {
            "step_time_s": estimate.step_time_s,
            "time_per_obs_s": estimate.time_per_obs_s,
            "compute_s": estimate.compute_s,
            "comm_s": estimate.comm_s,
            "exposed_comm_s": estimate.exposed_comm_s,
            "exposed_comm_fraction": estimate.exposed_comm_fraction,
            "bubble_s": estimate.bubble_s,
            "bubble_fraction": estimate.bubble_fraction,
            "peak_memory_bytes": estimate.peak_memory_bytes,
            "fits": estimate.fits,
        },
    }
    if entry.simulated is not None:
        out["simulated"] = entry.simulated
        out["analytic_error"] = entry.analytic_error
    return out


def result_document(result: TuneResult) -> dict:
    """The JSON document for ``repro tune --out``."""
    request = result.request
    return {
        "schema": REPORT_SCHEMA,
        "request": {
            "model": request.config.name,
            "config_key": request.config_key(),
            "topology_key": request.topology_key(),
            "num_gpus": request.num_gpus,
            "gpus_per_node": request.gpus_per_node,
            "micro_batches": list(request.micro_batches),
            "pp_sizes": list(request.pp_sizes),
            "recompute_options": list(request.recompute_options),
            "prefetch_options": list(request.prefetch_options),
        },
        "space": {
            "candidates": len(result.space.candidates),
            "feasible": len(result.ranked),
            "oom_pruned": len(result.oom_pruned),
            "rejections": [
                {
                    "pp_size": r.pp_size,
                    "tp_size": r.tp_size,
                    "fsdp_size": r.fsdp_size,
                    "ddp_size": r.ddp_size,
                    "tp_innermost": r.tp_innermost,
                    "reason": r.reason,
                }
                for r in result.space.rejections
            ],
        },
        "ranked": [_scored_dict(entry) for entry in result.ranked],
        "winner": _scored_dict(result.winner),
        "cache": {"hits": result.cache_hits, "misses": result.cache_misses},
    }


def write_report(result: TuneResult, path) -> Path:
    """Write :func:`result_document` as JSON; returns the path."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_document(result), indent=1, sort_keys=True) + "\n")
    return path

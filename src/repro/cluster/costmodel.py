"""Alpha-beta cost models for ring/tree collectives.

Costs follow the standard LogP-style formulation used to reason about
RCCL/NCCL ring algorithms: a collective over ``g`` ranks moving a
per-rank shard of ``s`` bytes on a link with latency ``alpha`` and
bandwidth ``beta`` costs

* ring all-gather / reduce-scatter:  ``(g-1) * (alpha + s / beta)``
* ring all-reduce:                   ``2 * (g-1) * (alpha + s / beta)``
* binomial-tree broadcast/gather:    ``ceil(log2 g) * (alpha + S / beta)``

where ``S`` is the full buffer and ``s = S / g``.  The link spec comes
from :meth:`~repro.cluster.topology.FrontierTopology.effective_bandwidth`,
so NIC contention between co-located groups is already folded in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.cluster.topology import FrontierTopology, LinkKind, LinkSpec


@dataclass(frozen=True)
class CollectiveCostModel:
    """Maps (collective, group, bytes) to seconds on a topology."""

    topology: FrontierTopology

    def _spec(self, ranks: Sequence[int]) -> LinkSpec:
        return self.topology.effective_bandwidth(ranks)

    @staticmethod
    def _steps(alpha: float, beta: float, steps: int, bytes_per_step: float) -> float:
        if steps <= 0 or bytes_per_step < 0:
            return 0.0
        if math.isinf(beta):
            return steps * alpha
        return steps * (alpha + bytes_per_step / beta)

    @staticmethod
    def _steps_batch(alpha, beta, steps: int, bytes_per_step: float):
        """Vectorized :meth:`_steps` over arrays of link specs.

        ``alpha``/``beta`` are numpy arrays of per-group latency and
        bandwidth; the return value is elementwise identical (same
        float operations, same order) to calling :meth:`_steps` per
        group.  Used by :mod:`repro.cluster.symmetry` to evaluate the
        alpha-beta model across every member of a rank equivalence
        class in one sweep.
        """
        import numpy as np

        alpha = np.asarray(alpha, dtype=float)
        beta = np.asarray(beta, dtype=float)
        if steps <= 0 or bytes_per_step < 0:
            return np.zeros_like(alpha)
        return np.where(np.isinf(beta), steps * alpha,
                        steps * (alpha + bytes_per_step / beta))

    def all_gather(self, ranks: Sequence[int], total_bytes: int) -> float:
        """Ring all-gather producing ``total_bytes`` on every rank."""
        g = len(ranks)
        if g <= 1:
            return 0.0
        spec = self._spec(ranks)
        return self._steps(spec.latency_s, spec.bandwidth_Bps, g - 1, total_bytes / g)

    def reduce_scatter(self, ranks: Sequence[int], total_bytes: int) -> float:
        """Ring reduce-scatter of a ``total_bytes`` buffer (per-rank share out)."""
        return self.all_gather(ranks, total_bytes)

    def all_reduce(self, ranks: Sequence[int], total_bytes: int) -> float:
        """Ring all-reduce (reduce-scatter followed by all-gather)."""
        g = len(ranks)
        if g <= 1:
            return 0.0
        spec = self._spec(ranks)
        return self._steps(spec.latency_s, spec.bandwidth_Bps, 2 * (g - 1), total_bytes / g)

    def broadcast(self, ranks: Sequence[int], total_bytes: int) -> float:
        """Binomial-tree broadcast of the full buffer."""
        g = len(ranks)
        if g <= 1:
            return 0.0
        spec = self._spec(ranks)
        return self._steps(spec.latency_s, spec.bandwidth_Bps, math.ceil(math.log2(g)), total_bytes)

    def gather(self, ranks: Sequence[int], total_bytes: int) -> float:
        """Binomial-tree gather of ``total_bytes`` onto the root."""
        return self.broadcast(ranks, total_bytes)

    def scatter(self, ranks: Sequence[int], total_bytes: int) -> float:
        """Binomial-tree scatter of ``total_bytes`` from the root."""
        return self.broadcast(ranks, total_bytes)

    def all_to_all(self, ranks: Sequence[int], total_bytes: int) -> float:
        """Pairwise-exchange all-to-all; ``total_bytes`` is the per-rank send total."""
        g = len(ranks)
        if g <= 1:
            return 0.0
        spec = self._spec(ranks)
        return self._steps(spec.latency_s, spec.bandwidth_Bps, g - 1, total_bytes / g)

    #: A single inter-node flow is bound by one NIC, not the whole node
    #: injection bandwidth (Frontier has 4x25 GB/s NICs per node).
    NICS_PER_NODE = 4

    def hierarchical_all_reduce(self, ranks: Sequence[int], total_bytes: int) -> float:
        """Two-level all-reduce: tree-reduce in-node, all-reduce across
        node leaders, tree-broadcast in-node.

        This is the RCCL/NCCL *tree* strategy.  A flat ring over
        contiguous whole nodes is already bandwidth-optimal (each ring
        step crosses the NIC exactly once per node), but it pays
        ``2*(g-1)`` latency terms; the two-level tree pays
        ``O(log(members) + nodes)`` instead, winning for small,
        latency-bound buffers — e.g. the per-layer norm/scale scalars
        and the DDP reductions of small models at extreme scale.  The
        flat ring cost is returned for groups that do not decompose
        into multi-member nodes.
        """
        g = len(ranks)
        if g <= 1:
            return 0.0
        by_node: dict[int, list[int]] = {}
        for rank in ranks:
            by_node.setdefault(self.topology.node_of(rank), []).append(rank)
        if len(by_node) == 1 or min(len(m) for m in by_node.values()) < 2:
            return self.all_reduce(ranks, total_bytes)
        intra = self.topology.link_spec(LinkKind.INTRA_NODE)
        max_members = max(len(m) for m in by_node.values())
        tree_steps = math.ceil(math.log2(max_members))
        # Phases 1/3: tree reduce onto each node leader, tree broadcast back.
        phase_intra = 2 * self._steps(
            intra.latency_s, intra.bandwidth_Bps, tree_steps, total_bytes
        )
        # Phase 2: ring all-reduce over one leader per node (full NIC each:
        # only the leaders drive the fabric during this phase).
        leaders = sorted(members[0] for members in by_node.values())
        inter = self.topology.link_spec(LinkKind.INTER_NODE)
        n = len(leaders)
        phase_inter = self._steps(
            inter.latency_s, inter.bandwidth_Bps, 2 * (n - 1), total_bytes / n
        )
        return phase_intra + phase_inter

    def point_to_point(self, src: int, dst: int, nbytes: int) -> float:
        """Single message between two ranks."""
        if src == dst:
            return 0.0
        kind = self.topology.link_kind(src, dst)
        spec = self.topology.link_spec(kind)
        bandwidth = spec.bandwidth_Bps

        if kind is LinkKind.INTER_NODE:
            bandwidth /= self.NICS_PER_NODE
        return self._steps(spec.latency_s, bandwidth, 1, nbytes)

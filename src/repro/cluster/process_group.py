"""Process groups: ordered rank sets that collectives operate over.

Semantically equivalent to ``torch.distributed`` process groups (or MPI
communicators): a group owns an ordered tuple of *global* ranks, and
collectives address peers by *group-local* index.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import VirtualCluster


class ProcessGroup:
    """An ordered set of global ranks within one virtual cluster."""

    def __init__(self, cluster: "VirtualCluster", ranks: Sequence[int]):
        ranks = tuple(int(r) for r in ranks)
        if not ranks:
            raise ValueError("a process group needs at least one rank")
        if len(set(ranks)) != len(ranks):
            raise ValueError(f"duplicate ranks in group: {ranks}")
        for rank in ranks:
            if not 0 <= rank < cluster.world_size:
                raise ValueError(f"rank {rank} outside world of size {cluster.world_size}")
        self.cluster = cluster
        self.ranks = ranks

    @property
    def size(self) -> int:
        """Number of members."""
        return len(self.ranks)

    def local_index(self, global_rank: int) -> int:
        """Group-local index of a global rank."""
        try:
            return self.ranks.index(global_rank)
        except ValueError:
            raise ValueError(f"rank {global_rank} is not in group {self.ranks}") from None

    def global_rank(self, local_index: int) -> int:
        """Global rank of a group-local index."""
        return self.ranks[local_index]

    def __iter__(self) -> Iterator[int]:
        return iter(self.ranks)

    def __contains__(self, rank: int) -> bool:
        return rank in self.ranks

    def __len__(self) -> int:
        return len(self.ranks)

    def __repr__(self) -> str:
        if len(self.ranks) > 8:
            shown = ", ".join(map(str, self.ranks[:4])) + f", ... ({len(self.ranks)} ranks)"
        else:
            shown = ", ".join(map(str, self.ranks))
        return f"ProcessGroup([{shown}])"

"""Virtual GPU devices.

A :class:`VirtualGPU` stands in for one Frontier MI250X GCD: 64 GB of
HBM (tracked by a :class:`~repro.memory.tracker.MemoryTracker`) and a
sustained matrix-engine throughput used by the performance model.  The
throughput defaults follow the MI250X datasheet derated to the
sustained efficiency observed for large GEMMs (the calibration note in
:mod:`repro.perf.model` explains the derating).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware import (
    MI250X_GCD_MEMORY_BYTES,
    MI250X_GCD_PEAK_BF16,
    MI250X_GCD_PEAK_FP32,
)
from repro.memory.tracker import MemoryTracker


@dataclass
class VirtualGPU:
    """One simulated GPU (GCD).

    Parameters
    ----------
    rank:
        Global rank of the device in its cluster.
    memory_capacity:
        HBM size in bytes (default 64 GB, matching Frontier).
    peak_flops:
        Peak matrix throughput per dtype name ("float32"/"bfloat16").
    """

    rank: int
    memory_capacity: int = MI250X_GCD_MEMORY_BYTES
    peak_flops: dict[str, float] = field(
        default_factory=lambda: {
            "float32": MI250X_GCD_PEAK_FP32,
            "bfloat16": MI250X_GCD_PEAK_BF16,
        }
    )
    memory: MemoryTracker = field(init=False)

    def __post_init__(self):
        if self.rank < 0:
            raise ValueError("rank must be non-negative")
        self.memory = MemoryTracker(self.memory_capacity, name=f"gpu{self.rank}")

    def peak_flops_for(self, dtype) -> float:
        """Peak throughput for a dtype; unknown dtypes fall back to fp32."""
        name = np.dtype(dtype).name if dtype is not None else "float32"
        return self.peak_flops.get(name, self.peak_flops["float32"])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualGPU(rank={self.rank}, {self.memory!r})"

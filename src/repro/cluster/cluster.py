"""The virtual cluster: devices + topology + timeline + groups."""

from __future__ import annotations

from typing import Sequence

from repro.cluster.costmodel import CollectiveCostModel
from repro.cluster.device import VirtualGPU
from repro.cluster.process_group import ProcessGroup
from repro.cluster.timeline import NULL_INJECTOR, Timeline
from repro.cluster.topology import FrontierTopology, LinkSpec
from repro.obs.tracer import NULL_TRACER


class VirtualCluster:
    """A single-process stand-in for a Frontier partition.

    Parameters
    ----------
    num_gpus:
        World size (number of GCDs).
    gpus_per_node:
        GCDs per node (8 on Frontier).
    gpu_memory_bytes:
        HBM per GCD; ``None`` keeps the 64 GB default.
    track_device_memory:
        When False, devices get unlimited trackers (analytic what-if runs).
    intra_node / inter_node:
        Optional :class:`~repro.cluster.topology.LinkSpec` overrides.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer` receiving one span
        per recorded compute/communication event.  Defaults to the
        no-op tracer (zero events, no overhead).

    Examples
    --------
    >>> cluster = VirtualCluster(num_gpus=16)
    >>> tp_group = cluster.new_group(range(8))          # one node
    >>> cluster.topology.group_link_kind(tp_group.ranks).value
    'intra_node'
    """

    def __init__(
        self,
        num_gpus: int,
        gpus_per_node: int = 8,
        gpu_memory_bytes: int | None = None,
        track_device_memory: bool = True,
        intra_node: LinkSpec | None = None,
        inter_node: LinkSpec | None = None,
        tracer=None,
    ):
        topo_kwargs = {}
        if intra_node is not None:
            topo_kwargs["intra_node"] = intra_node
        if inter_node is not None:
            topo_kwargs["inter_node"] = inter_node
        self.topology = FrontierTopology(num_gpus, gpus_per_node, **topo_kwargs)
        self.cost_model = CollectiveCostModel(self.topology)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.timeline = Timeline(num_gpus, tracer=self.tracer)
        self.injector = NULL_INJECTOR
        device_kwargs = {}
        if gpu_memory_bytes is not None:
            device_kwargs["memory_capacity"] = gpu_memory_bytes
        self.devices = [VirtualGPU(rank, **device_kwargs) for rank in range(num_gpus)]
        if not track_device_memory:
            for device in self.devices:
                device.memory.capacity_bytes = None
        self.world = ProcessGroup(self, range(num_gpus))

    @property
    def world_size(self) -> int:
        """Total number of GPUs."""
        return self.topology.num_gpus

    def device(self, rank: int) -> VirtualGPU:
        """Device hosting ``rank``."""
        return self.devices[rank]

    def new_group(self, ranks: Sequence[int]) -> ProcessGroup:
        """Create a process group over the given global ranks."""
        return ProcessGroup(self, ranks)

    def install_timeline(self, timeline: Timeline) -> None:
        """Replace the timeline (e.g. with a
        :class:`~repro.cluster.timeline.FoldedTimeline`), preserving the
        attached tracer and fault injector."""
        timeline.tracer = self.tracer
        timeline.injector = self.injector
        self.timeline = timeline

    def attach_tracer(self, tracer) -> None:
        """Install (or replace) the tracer receiving timeline events."""
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.timeline.tracer = self.tracer

    def attach_injector(self, injector) -> None:
        """Install (or replace) the fault injector consulted by the
        timeline before every compute/communication event."""
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.timeline.injector = self.injector

    def reset(self) -> None:
        """Clear the timeline, trace, and device memory (between runs)."""
        self.timeline.reset()
        self.tracer.clear()
        for device in self.devices:
            device.memory.free_all()
            device.memory.reset_peak()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"VirtualCluster(num_gpus={self.world_size}, "
            f"nodes={self.topology.num_nodes})"
        )

"""Functional collectives over per-rank buffers.

The virtual cluster executes in a single process, so a collective is a
pure function: it takes one buffer per group member (ordered by
group-local index) and returns one result per member, while recording
the modeled communication time on the cluster
:class:`~repro.cluster.timeline.Timeline`.

Both real :class:`numpy.ndarray` buffers and
:class:`~repro.meta.MetaArray` stand-ins are supported; in meta mode
only shapes and costs are produced.  Mixing the two in one call is an
error.

Semantics mirror mpi4py/RCCL:

========================  ====================================================
``all_gather``            every member receives the concatenation of all
                          members' shards (along ``axis``)
``reduce_scatter``        every member contributes a full buffer and receives
                          its reduced shard (along ``axis``)
``all_reduce``            every member receives the elementwise reduction
``broadcast``             every member receives the root's buffer
``scatter``/``gather``    root distributes / collects shards
``all_to_all``            member *i* sends block *j* to member *j*
========================  ====================================================
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cluster.process_group import ProcessGroup
from repro.meta import MetaArray, is_meta, nbytes_of

_REDUCE_OPS = ("sum", "mean", "max", "min")


def _check_buffers(group: ProcessGroup, buffers: Sequence) -> bool:
    """Validate one-buffer-per-member; return True when in meta mode."""
    if len(buffers) != group.size:
        raise ValueError(
            f"expected {group.size} buffers (one per group member), got {len(buffers)}"
        )
    metas = [is_meta(b) for b in buffers]
    if any(metas) and not all(metas):
        raise TypeError("cannot mix MetaArray and ndarray buffers in one collective")
    return metas[0]


def _reduce(stack: np.ndarray, op: str) -> np.ndarray:
    if op == "sum":
        return stack.sum(axis=0)
    if op == "mean":
        return stack.mean(axis=0)
    if op == "max":
        return stack.max(axis=0)
    if op == "min":
        return stack.min(axis=0)
    raise ValueError(f"unknown reduce op {op!r}; expected one of {_REDUCE_OPS}")


def _record(
    group: ProcessGroup, seconds: float, nbytes: float, overlappable: bool, op: str
) -> None:
    group.cluster.timeline.record_comm(
        group.ranks, seconds, nbytes, overlappable=overlappable, op=op
    )


def all_gather(
    group: ProcessGroup,
    shards: Sequence,
    axis: int = 0,
    overlappable: bool = False,
) -> list:
    """Concatenate per-member shards; every member receives the result."""
    meta = _check_buffers(group, shards)
    total_bytes = sum(nbytes_of(s) for s in shards)
    seconds = group.cluster.cost_model.all_gather(group.ranks, total_bytes)
    _record(group, seconds, total_bytes, overlappable, "all_gather")
    if group.size == 1:
        return [shards[0]]
    if meta:
        first = shards[0]
        gather_dim = sum(s.shape[axis] for s in shards)
        shape = list(first.shape)
        shape[axis] = gather_dim
        out = MetaArray(tuple(shape), first.dtype)
        return [out] * group.size
    gathered = np.concatenate([np.asarray(s) for s in shards], axis=axis)
    return [gathered] * group.size


def reduce_scatter(
    group: ProcessGroup,
    buffers: Sequence,
    op: str = "sum",
    axis: int = 0,
    overlappable: bool = False,
) -> list:
    """Reduce full buffers elementwise, then scatter equal shards along ``axis``."""
    meta = _check_buffers(group, buffers)
    shapes = {tuple(b.shape) for b in buffers}
    if len(shapes) != 1:
        raise ValueError(f"reduce_scatter buffers must share a shape, got {shapes}")
    shape = shapes.pop()
    if shape[axis] % group.size:
        raise ValueError(
            f"axis {axis} of shape {shape} not divisible by group size {group.size}"
        )
    total_bytes = nbytes_of(buffers[0])
    seconds = group.cluster.cost_model.reduce_scatter(group.ranks, total_bytes)
    _record(group, seconds, total_bytes, overlappable, "reduce_scatter")
    shard_len = shape[axis] // group.size
    if meta:
        out_shape = list(shape)
        out_shape[axis] = shard_len
        out = MetaArray(tuple(out_shape), buffers[0].dtype)
        return [out] * group.size
    reduced = _reduce(np.stack([np.asarray(b) for b in buffers]), op)
    return [
        np.take(reduced, range(i * shard_len, (i + 1) * shard_len), axis=axis)
        for i in range(group.size)
    ]


def all_reduce(
    group: ProcessGroup,
    buffers: Sequence,
    op: str = "sum",
    overlappable: bool = False,
) -> list:
    """Elementwise reduction delivered to every member."""
    meta = _check_buffers(group, buffers)
    shapes = {tuple(b.shape) for b in buffers}
    if len(shapes) != 1:
        raise ValueError(f"all_reduce buffers must share a shape, got {shapes}")
    total_bytes = nbytes_of(buffers[0])
    seconds = group.cluster.cost_model.all_reduce(group.ranks, total_bytes)
    _record(group, seconds, total_bytes, overlappable, "all_reduce")
    if meta:
        return [buffers[0]] * group.size
    if group.size == 1:
        return [np.asarray(buffers[0])]
    reduced = _reduce(np.stack([np.asarray(b) for b in buffers]), op)
    return [reduced] * group.size


def broadcast(group: ProcessGroup, buffer, root: int = 0, overlappable: bool = False) -> list:
    """Send the root's buffer (group-local ``root``) to every member."""
    if not 0 <= root < group.size:
        raise ValueError(f"root {root} outside group of size {group.size}")
    total_bytes = nbytes_of(buffer)
    seconds = group.cluster.cost_model.broadcast(group.ranks, total_bytes)
    _record(group, seconds, total_bytes, overlappable, "broadcast")
    return [buffer] * group.size


def scatter(
    group: ProcessGroup,
    shards: Sequence,
    root: int = 0,
    overlappable: bool = False,
) -> list:
    """Root distributes ``shards[i]`` to member ``i``."""
    if len(shards) != group.size:
        raise ValueError(f"scatter needs {group.size} shards, got {len(shards)}")
    if not 0 <= root < group.size:
        raise ValueError(f"root {root} outside group of size {group.size}")
    total_bytes = sum(nbytes_of(s) for s in shards)
    seconds = group.cluster.cost_model.scatter(group.ranks, total_bytes)
    _record(group, seconds, total_bytes, overlappable, "scatter")
    return list(shards)


def gather(
    group: ProcessGroup,
    shards: Sequence,
    root: int = 0,
    axis: int = 0,
    overlappable: bool = False,
) -> list:
    """Collect shards onto the root; non-root members receive ``None``."""
    meta = _check_buffers(group, shards)
    if not 0 <= root < group.size:
        raise ValueError(f"root {root} outside group of size {group.size}")
    total_bytes = sum(nbytes_of(s) for s in shards)
    seconds = group.cluster.cost_model.gather(group.ranks, total_bytes)
    _record(group, seconds, total_bytes, overlappable, "gather")
    if meta:
        first = shards[0]
        shape = list(first.shape)
        shape[axis] = sum(s.shape[axis] for s in shards)
        result = MetaArray(tuple(shape), first.dtype)
    else:
        result = np.concatenate([np.asarray(s) for s in shards], axis=axis)
    return [result if i == root else None for i in range(group.size)]


def all_to_all(group: ProcessGroup, blocks: Sequence[Sequence], overlappable: bool = False) -> list:
    """``blocks[i][j]`` goes from member *i* to member *j*; returns per-member lists."""
    if len(blocks) != group.size:
        raise ValueError(f"all_to_all needs {group.size} block rows, got {len(blocks)}")
    for i, row in enumerate(blocks):
        if len(row) != group.size:
            raise ValueError(f"block row {i} has {len(row)} entries, expected {group.size}")
    per_rank_bytes = max(sum(nbytes_of(b) for b in row) for row in blocks)
    seconds = group.cluster.cost_model.all_to_all(group.ranks, per_rank_bytes)
    _record(group, seconds, per_rank_bytes, overlappable, "all_to_all")
    return [[blocks[i][j] for i in range(group.size)] for j in range(group.size)]


def barrier(group: ProcessGroup) -> None:
    """Synchronize the group (costed as a tiny all-reduce)."""
    seconds = group.cluster.cost_model.all_reduce(group.ranks, 4)
    _record(group, seconds, 0, False, "barrier")

"""Frontier-like interconnect topology.

The model follows the System Details of the paper (Sec IV):

* each node has 8 GPUs (GCDs, two per MI250X card);
* GCDs within a node are connected by Infinity Fabric at 50 GB/s;
* nodes are connected by a Slingshot-11 fabric at 100 GB/s per node.

Inter-node bandwidth is a *node* resource: when all 8 GCDs of a node
drive the NICs concurrently (the usual case when FSDP groups are mapped
across nodes, Fig 4), each GCD sees roughly 1/8 of the node
injection bandwidth.  :meth:`FrontierTopology.effective_bandwidth`
captures that contention.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence


class LinkKind(enum.Enum):
    """Classification of the bottleneck link used by a communication."""

    SELF = "self"
    INTRA_NODE = "intra_node"
    INTER_NODE = "inter_node"


@dataclass(frozen=True)
class LinkSpec:
    """Latency (s) and point-to-point bandwidth (B/s) of one link kind."""

    latency_s: float
    bandwidth_Bps: float


@dataclass(frozen=True)
class FrontierTopology:
    """Node-structured two-level topology.

    Parameters
    ----------
    num_gpus:
        Total GCD count; must be a multiple of ``gpus_per_node`` unless
        smaller than one node.
    gpus_per_node:
        GCDs per node (8 on Frontier).
    intra_node:
        Infinity Fabric link spec (default 50 GB/s, 2 us).
    inter_node:
        Slingshot-11 *per-node* injection spec (default 100 GB/s, 10 us).
    """

    num_gpus: int
    gpus_per_node: int = 8
    intra_node: LinkSpec = LinkSpec(latency_s=2e-6, bandwidth_Bps=50e9)
    inter_node: LinkSpec = LinkSpec(latency_s=10e-6, bandwidth_Bps=100e9)

    def __post_init__(self):
        if self.num_gpus < 1:
            raise ValueError("num_gpus must be positive")
        if self.gpus_per_node < 1:
            raise ValueError("gpus_per_node must be positive")
        if self.num_gpus > self.gpus_per_node and self.num_gpus % self.gpus_per_node:
            raise ValueError(
                f"num_gpus={self.num_gpus} is not a whole number of "
                f"{self.gpus_per_node}-GPU nodes"
            )

    # -- structure ---------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of (possibly partial) nodes."""
        return -(-self.num_gpus // self.gpus_per_node)

    def node_of(self, rank: int) -> int:
        """Node index hosting global ``rank``."""
        self._check_rank(rank)
        return rank // self.gpus_per_node

    def local_rank(self, rank: int) -> int:
        """Index of ``rank`` within its node."""
        self._check_rank(rank)
        return rank % self.gpus_per_node

    def ranks_of_node(self, node: int) -> range:
        """Global ranks hosted on ``node``."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")
        start = node * self.gpus_per_node
        return range(start, min(start + self.gpus_per_node, self.num_gpus))

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_gpus:
            raise ValueError(f"rank {rank} out of range [0, {self.num_gpus})")

    # -- link classification -------------------------------------------------
    def link_kind(self, rank_a: int, rank_b: int) -> LinkKind:
        """Classify the link between two ranks."""
        if rank_a == rank_b:
            return LinkKind.SELF
        if self.node_of(rank_a) == self.node_of(rank_b):
            return LinkKind.INTRA_NODE
        return LinkKind.INTER_NODE

    def group_link_kind(self, ranks: Sequence[int]) -> LinkKind:
        """Bottleneck link kind for a group: inter-node if it spans nodes."""
        if len(ranks) <= 1:
            return LinkKind.SELF
        nodes = {self.node_of(r) for r in ranks}
        return LinkKind.INTRA_NODE if len(nodes) == 1 else LinkKind.INTER_NODE

    def link_spec(self, kind: LinkKind) -> LinkSpec:
        """Raw link spec for a link kind (SELF has zero latency, inf bandwidth)."""
        if kind is LinkKind.SELF:
            return LinkSpec(latency_s=0.0, bandwidth_Bps=float("inf"))
        if kind is LinkKind.INTRA_NODE:
            return self.intra_node
        return self.inter_node

    def effective_bandwidth(self, ranks: Sequence[int]) -> LinkSpec:
        """Per-rank effective link spec for a collective over ``ranks``.

        For inter-node groups the node injection bandwidth is divided by
        the number of group members sharing each node NIC concurrently
        (e.g. 8 FSDP groups per node each see 1/8 of 100 GB/s); the
        latency is the inter-node latency.
        """
        kind = self.group_link_kind(ranks)
        spec = self.link_spec(kind)
        if kind is not LinkKind.INTER_NODE:
            return spec
        per_node: dict[int, int] = {}
        for rank in ranks:
            node = self.node_of(rank)
            per_node[node] = per_node.get(node, 0) + 1
        max_sharers = max(per_node.values())
        # Concurrent same-shaped groups occupy the remaining GCDs of each
        # node, so a group using m GCDs of a node competes with the
        # gpus_per_node/m sibling groups for the NIC.
        node_occupancy = min(self.gpus_per_node, self.num_gpus)
        contention = max(1, node_occupancy // max_sharers)
        return LinkSpec(
            latency_s=spec.latency_s,
            bandwidth_Bps=spec.bandwidth_Bps / contention,
        )

"""Per-rank ledgers of compute and communication time.

The paper's walltime results (Table I, Figs 6–7) depend on three
effects the timeline must capture:

* compute time, derived from FLOP counts and device throughput;
* communication time, derived from the alpha-beta cost model;
* *overlap*: with prefetching (Sec III-B) shard gathers are issued
  ahead of use, so their cost hides under compute up to the available
  compute slack.

Every rank accumulates totals; the simulated walltime of a phase is the
maximum over participating ranks (bulk-synchronous semantics).

The timeline is also the tracing choke point: every recorded unit of
time passes through :meth:`Timeline.record_compute` or
:meth:`Timeline.record_comm`, so an attached
:class:`~repro.obs.tracer.Tracer` receives one span per event with the
exact pre-record busy clock and the hidden/exposed split.  The default
handle is the no-op :data:`~repro.obs.tracer.NULL_TRACER`, which keeps
the untraced path allocation-free.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.tracer import NULL_TRACER


class _NullInjector:
    """No-op fault injector: the default, allocation-free hook.

    A real :class:`~repro.faults.injector.FaultInjector` attached via
    :meth:`~repro.cluster.cluster.VirtualCluster.attach_injector` sees
    every event *before* it is recorded, may raise a typed
    :class:`~repro.faults.errors.FaultError` (the event then never
    lands on a ledger — the collective never completed), and may
    stretch the event's seconds (degradation faults).
    """

    __slots__ = ()

    def on_compute(self, rank, seconds, op):
        return seconds

    def on_comm(self, ranks, seconds, op):
        return seconds

    def poison_gradients(self, step, params):
        return None


#: Shared no-op injector (mirrors :data:`~repro.obs.tracer.NULL_TRACER`).
NULL_INJECTOR = _NullInjector()


@dataclass
class RankLedger:
    """Accumulated times (seconds) and counters for one rank."""

    compute_s: float = 0.0
    comm_s: float = 0.0
    exposed_comm_s: float = 0.0
    flops: float = 0.0
    comm_bytes: float = 0.0
    #: compute time logged since the last overlappable communication,
    #: available to hide a future prefetched gather under.
    overlap_budget_s: float = 0.0

    @property
    def walltime_s(self) -> float:
        """Busy time of this rank: compute plus non-hidden communication."""
        return self.compute_s + self.exposed_comm_s


class Timeline:
    """Compute/communication accounting across all ranks of a cluster."""

    def __init__(self, num_ranks: int, tracer=None):
        if num_ranks < 1:
            raise ValueError("num_ranks must be positive")
        self._ledgers = [RankLedger() for _ in range(num_ranks)]
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Fault-injection hook; every event consults it before recording.
        self.injector = NULL_INJECTOR
        #: Collective sequence ids: every ``record_comm`` call issues one
        #: id shared by all participating ranks' spans, so an analyzer
        #: can reconstruct cross-rank dependency edges (which rank's
        #: arrival gated each collective).
        self._collective_ids = itertools.count()

    @property
    def num_ranks(self) -> int:
        return len(self._ledgers)

    def ledger(self, rank: int) -> RankLedger:
        """Ledger for one rank."""
        return self._ledgers[rank]

    # -- recording ---------------------------------------------------------
    def record_compute(
        self, rank: int, seconds: float, flops: float = 0.0, op: str = "compute"
    ) -> None:
        """Log compute work on ``rank``; it also grows the overlap budget.

        ``op`` names the span an attached tracer records (e.g. the
        sharded layer the FLOPs belong to).
        """
        if seconds < 0:
            raise ValueError("compute seconds must be non-negative")
        seconds = self.injector.on_compute(rank, seconds, op)
        led = self._ledgers[rank]
        t0 = led.walltime_s
        led.compute_s += seconds
        led.flops += flops
        led.overlap_budget_s += seconds
        self.tracer.on_compute(rank, t0, seconds, flops, op)

    def record_comm(
        self,
        ranks: Iterable[int],
        seconds: float,
        nbytes: float,
        overlappable: bool = False,
        op: str = "comm",
    ) -> None:
        """Log one collective of ``seconds`` across ``ranks``.

        When ``overlappable`` (prefetched gathers), the cost is hidden
        under each rank's accumulated compute slack; only the excess is
        exposed.  Non-overlappable collectives (e.g. the blocking
        all-reduce closing a micro-batch) are fully exposed.

        ``op`` names the collective for an attached tracer, which
        receives one span per participating rank carrying the
        per-rank hidden/exposed split.
        """
        if seconds < 0:
            raise ValueError("comm seconds must be non-negative")
        ranks = tuple(ranks)
        seconds = self.injector.on_comm(ranks, seconds, op)
        cid = next(self._collective_ids)
        for rank in ranks:
            led = self._ledgers[rank]
            t0 = led.walltime_s
            led.comm_s += seconds
            led.comm_bytes += nbytes
            if overlappable:
                hidden = min(seconds, led.overlap_budget_s)
                led.overlap_budget_s -= hidden
            else:
                hidden = 0.0
                led.overlap_budget_s = 0.0
            led.exposed_comm_s += seconds - hidden
            self.tracer.on_comm(rank, t0, seconds, hidden, nbytes, op, ranks, cid=cid)

    # -- summaries ---------------------------------------------------------
    def walltime_s(self, ranks: Iterable[int] | None = None) -> float:
        """Bulk-synchronous walltime: the slowest participating rank."""
        ledgers = self._ledgers if ranks is None else [self._ledgers[r] for r in ranks]
        return max((led.walltime_s for led in ledgers), default=0.0)

    def total_flops(self) -> float:
        """FLOPs summed over all ranks."""
        return sum(led.flops for led in self._ledgers)

    def sustained_flops(self) -> float:
        """Aggregate sustained throughput: total FLOPs / walltime."""
        wall = self.walltime_s()
        return self.total_flops() / wall if wall > 0 else 0.0

    def reset(self) -> None:
        """Zero every ledger and restart the collective-id sequence."""
        self._ledgers = [RankLedger() for _ in self._ledgers]
        self._collective_ids = itertools.count()

"""Per-rank ledgers of compute and communication time.

The paper's walltime results (Table I, Figs 6–7) depend on three
effects the timeline must capture:

* compute time, derived from FLOP counts and device throughput;
* communication time, derived from the alpha-beta cost model;
* *overlap*: with prefetching (Sec III-B) shard gathers are issued
  ahead of use, so their cost hides under compute up to the available
  compute slack.

Every rank accumulates totals; the simulated walltime of a phase is the
maximum over participating ranks (bulk-synchronous semantics).

The timeline is also the tracing choke point: every recorded unit of
time passes through :meth:`Timeline.record_compute` or
:meth:`Timeline.record_comm`, so an attached
:class:`~repro.obs.tracer.Tracer` receives one span per event with the
exact pre-record busy clock and the hidden/exposed split.  The default
handle is the no-op :data:`~repro.obs.tracer.NULL_TRACER`, which keeps
the untraced path allocation-free.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.obs.tracer import NULL_TRACER


class _NullInjector:
    """No-op fault injector: the default, allocation-free hook.

    A real :class:`~repro.faults.injector.FaultInjector` attached via
    :meth:`~repro.cluster.cluster.VirtualCluster.attach_injector` sees
    every event *before* it is recorded, may raise a typed
    :class:`~repro.faults.errors.FaultError` (the event then never
    lands on a ledger — the collective never completed), and may
    stretch the event's seconds (degradation faults).
    """

    __slots__ = ()

    def on_compute(self, rank, seconds, op):
        return seconds

    def on_comm(self, ranks, seconds, op):
        return seconds

    def poison_gradients(self, step, params):
        return None

    def affects_step(self, step):
        """No armed fault can touch ``step`` (there are none)."""
        return False


#: Shared no-op injector (mirrors :data:`~repro.obs.tracer.NULL_TRACER`).
NULL_INJECTOR = _NullInjector()


@dataclass
class RankLedger:
    """Accumulated times (seconds) and counters for one rank."""

    compute_s: float = 0.0
    comm_s: float = 0.0
    exposed_comm_s: float = 0.0
    flops: float = 0.0
    comm_bytes: float = 0.0
    #: compute time logged since the last overlappable communication,
    #: available to hide a future prefetched gather under.
    overlap_budget_s: float = 0.0

    @property
    def walltime_s(self) -> float:
        """Busy time of this rank: compute plus non-hidden communication."""
        return self.compute_s + self.exposed_comm_s


class Timeline:
    """Compute/communication accounting across all ranks of a cluster."""

    def __init__(self, num_ranks: int, tracer=None):
        if num_ranks < 1:
            raise ValueError("num_ranks must be positive")
        self._ledgers = [RankLedger() for _ in range(num_ranks)]
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Fault-injection hook; every event consults it before recording.
        self.injector = NULL_INJECTOR
        #: Collective sequence ids: every ``record_comm`` call issues one
        #: id shared by all participating ranks' spans, so an analyzer
        #: can reconstruct cross-rank dependency edges (which rank's
        #: arrival gated each collective).
        self._collective_ids = itertools.count()

    @property
    def num_ranks(self) -> int:
        return len(self._ledgers)

    def ledger(self, rank: int) -> RankLedger:
        """Ledger for one rank."""
        return self._ledgers[rank]

    # -- recording ---------------------------------------------------------
    def record_compute(
        self, rank: int, seconds: float, flops: float = 0.0, op: str = "compute"
    ) -> None:
        """Log compute work on ``rank``; it also grows the overlap budget.

        ``op`` names the span an attached tracer records (e.g. the
        sharded layer the FLOPs belong to).
        """
        if seconds < 0:
            raise ValueError("compute seconds must be non-negative")
        seconds = self.injector.on_compute(rank, seconds, op)
        led = self._ledgers[rank]
        t0 = led.walltime_s
        led.compute_s += seconds
        led.flops += flops
        led.overlap_budget_s += seconds
        self.tracer.on_compute(rank, t0, seconds, flops, op)

    def record_comm(
        self,
        ranks: Iterable[int],
        seconds: float,
        nbytes: float,
        overlappable: bool = False,
        op: str = "comm",
    ) -> None:
        """Log one collective of ``seconds`` across ``ranks``.

        When ``overlappable`` (prefetched gathers), the cost is hidden
        under each rank's accumulated compute slack; only the excess is
        exposed.  Non-overlappable collectives (e.g. the blocking
        all-reduce closing a micro-batch) are fully exposed.

        ``op`` names the collective for an attached tracer, which
        receives one span per participating rank carrying the
        per-rank hidden/exposed split.
        """
        if seconds < 0:
            raise ValueError("comm seconds must be non-negative")
        ranks = tuple(ranks)
        seconds = self.injector.on_comm(ranks, seconds, op)
        cid = next(self._collective_ids)
        for rank in ranks:
            led = self._ledgers[rank]
            t0 = led.walltime_s
            led.comm_s += seconds
            led.comm_bytes += nbytes
            if overlappable:
                hidden = min(seconds, led.overlap_budget_s)
                led.overlap_budget_s -= hidden
            else:
                hidden = 0.0
                led.overlap_budget_s = 0.0
            led.exposed_comm_s += seconds - hidden
            self.tracer.on_comm(rank, t0, seconds, hidden, nbytes, op, ranks, cid=cid)

    def record_free(self, ranks: Iterable[int], name: str, nbytes: float) -> None:
        """Log a zero-duration release marker (freed gathered shards)."""
        self.tracer.mark_free(self, tuple(ranks), name, nbytes)

    # -- symmetry folding hooks (no-ops on the exact timeline) -------------
    def fold_iter(self, axis: str, iterable):
        """Iterate a symmetric loop; the exact timeline runs every item."""
        return iter(iterable)

    def fold_pad(self, axis: str, items: list, size: int) -> list:
        """Pad a folded loop's outputs back to full length (no-op here)."""
        return items

    def folds_axis(self, axis: str) -> bool:
        """Whether loops over ``axis`` ('fsdp'/'ddp') are being folded."""
        return False

    def tracked_ranks(self, ranks: Sequence[int]) -> Sequence[int]:
        """The subset of ``ranks`` whose device memory is worth tracking.

        The exact timeline tracks everything; a folded one narrows
        symmetric bulk operations (FSDP gathers registering the same
        transient buffer on every group member) to the class
        representatives, whose devices see the full allocation pattern
        — so per-device *maxima* are unchanged.
        """
        return ranks

    # -- summaries ---------------------------------------------------------
    def walltime_s(self, ranks: Iterable[int] | None = None) -> float:
        """Bulk-synchronous walltime: the slowest participating rank."""
        ledgers = self._ledgers if ranks is None else [self._ledgers[r] for r in ranks]
        return max((led.walltime_s for led in ledgers), default=0.0)

    def total_flops(self) -> float:
        """FLOPs summed over all ranks."""
        return sum(led.flops for led in self._ledgers)

    def sustained_flops(self) -> float:
        """Aggregate sustained throughput: total FLOPs / walltime."""
        wall = self.walltime_s()
        return self.total_flops() / wall if wall > 0 else 0.0

    def reset(self) -> None:
        """Zero every ledger and restart the collective-id sequence."""
        self._ledgers = [RankLedger() for _ in self._ledgers]
        self._collective_ids = itertools.count()


def _ledger_values(led: RankLedger) -> tuple:
    return (led.compute_s, led.comm_s, led.exposed_comm_s, led.flops,
            led.comm_bytes, led.overlap_budget_s)


def _copy_ledger(led: RankLedger) -> RankLedger:
    return RankLedger(*_ledger_values(led))


def _apply_renames(text: str, renames: tuple) -> str:
    for old, new in renames:
        text = text.replace(old, new)
    return text


class _ReplayTracer:
    """Span sink for :meth:`FoldedTimeline.expand`.

    Mirrors the span construction of :class:`~repro.obs.tracer.Tracer`
    field-for-field, but takes scope/kind from the event log (set via
    :meth:`set_context` before each replayed event) instead of from a
    live scope stack.
    """

    __slots__ = ("spans", "_scope", "_kind")

    def __init__(self):
        self.spans = []
        self._scope = ""
        self._kind = "collective"

    def set_context(self, scope: str, kind: str | None) -> None:
        self._scope = scope
        self._kind = kind or "collective"

    def on_compute(self, rank, t0, seconds, flops, op, members=None):
        from repro.obs.tracer import Span

        self.spans.append(Span("compute", op, rank, t0, seconds,
                               flops=flops, scope=self._scope))

    def on_comm(self, rank, t0, seconds, hidden_s, nbytes, op, group,
                cid=None, members=None):
        from repro.obs.tracer import Span

        attrs = {} if cid is None else {"cid": cid}
        self.spans.append(Span(self._kind, op, rank, t0, seconds,
                               hidden_s=hidden_s, nbytes=nbytes,
                               group=tuple(group), scope=self._scope,
                               attrs=attrs))

    def mark_free(self, timeline, ranks, name, nbytes):
        from repro.obs.tracer import Span

        for rank in ranks:
            self.spans.append(Span("gather", f"free.{name}", rank,
                                   timeline.ledger(rank).walltime_s, 0.0,
                                   nbytes=nbytes, scope=self._scope))


class FoldedTimeline(Timeline):
    """A Timeline that simulates one representative rank per symmetry class.

    Ranks are partitioned by a
    :class:`~repro.cluster.symmetry.RankClassPartition` into
    ``(stage, k, f==0)``
    equivalence classes.  Symmetric loops (the engine's DDP replica loop,
    the modules' FSDP shard loops) are *folded*: only their first
    iteration executes, bracketed in the event log by a segment marker
    carrying the iteration count and the rank stride between iterations.
    Each recorded event updates one ledger per covered class — bitwise
    the same arithmetic a member rank's ledger would see — and emits one
    class-annotated compact span at the representative rank.

    :meth:`expand` replays the log through a fresh exact
    :class:`Timeline`, unrolling segments with rank offsets (and the
    ``trunk{d}`` rename on the DDP axis), reproducing the full per-rank
    ledgers and span list float-for-float.

    :meth:`unfold` drops to exact per-rank recording mid-run (fault
    windows); :meth:`try_refold` returns to folded mode once every
    class's member ledgers are value-identical again.  Events are logged
    in both modes, so a mixed run still expands completely.
    """

    _RENAMES = {"ddp": ("trunk0", "trunk{}")}

    def __init__(self, num_ranks: int, partition, tracer=None):
        super().__init__(num_ranks, tracer=tracer)
        if partition.num_gpus != num_ranks:
            raise ValueError(
                f"partition covers {partition.num_gpus} ranks, "
                f"timeline has {num_ranks}"
            )
        self.partition = partition
        self._keys = partition.keys
        self._reps = {key: partition.representative(key) for key in self._keys}
        self._sizes = {key: partition.size(key) for key in self._keys}
        self._class_ledgers = {key: RankLedger() for key in self._keys}
        self._rep_set = frozenset(self._reps.values())
        self._folded = True
        self._seg_stack: list[str] = []
        self._log: list[tuple] = []
        self._covered_cache: dict[tuple, list] = {}

    # -- mode --------------------------------------------------------------
    @property
    def folded(self) -> bool:
        return self._folded

    def _axis_count(self, axis: str) -> int:
        if axis == "fsdp":
            return self.partition.fsdp_size
        if axis == "ddp":
            return self.partition.ddp_size
        raise ValueError(f"unknown fold axis {axis!r}")

    def _axis_stride(self, axis: str) -> int:
        if axis == "fsdp":
            return self.partition.fsdp_stride
        return self.partition.ddp_stride

    def folds_axis(self, axis: str) -> bool:
        return self._folded and self._axis_count(axis) > 1

    def fold_iter(self, axis: str, iterable):
        if not self.folds_axis(axis):
            yield from iterable
            return
        first = next(iter(iterable), None)
        if first is None:
            return
        self._log.append(("push", axis, self._axis_count(axis),
                          self._axis_stride(axis), self._RENAMES.get(axis)))
        self._seg_stack.append(axis)
        try:
            yield first
        finally:
            self._log.append(("pop",))
            self._seg_stack.pop()

    def fold_pad(self, axis: str, items: list, size: int) -> list:
        if not self._folded or len(items) >= size:
            return items
        return list(items) + [items[-1]] * (size - len(items))

    # -- class coverage ----------------------------------------------------
    def _covered(self, ranks):
        """Class keys an event over ``ranks`` lands on, in rep-rank order.

        Inside a folded FSDP segment the recorded rank stands for every
        shard index, so its tensor-parallel column covers both the lead
        (``f == 0``) and non-lead class; outside, a rank covers only its
        own class (this is what keeps the dense lead-rank all-reduce off
        the non-lead ledgers).
        """
        in_fsdp = self.partition.fsdp_size > 1 and "fsdp" in self._seg_stack
        cache_key = (tuple(ranks), in_fsdp)
        cached = self._covered_cache.get(cache_key)
        if cached is not None:
            return cached
        keys = set()
        for rank in ranks:
            stage, k, lead = self.partition.class_of(rank)
            if in_fsdp:
                keys.add((stage, k, True))
                keys.add((stage, k, False))
            else:
                keys.add((stage, k, lead))
        covered = sorted(keys, key=self._reps.__getitem__)
        self._covered_cache[cache_key] = covered
        return covered

    def tracked_ranks(self, ranks):
        if not self._folded:
            return ranks
        return [r for r in ranks if r in self._rep_set]

    # -- recording ---------------------------------------------------------
    def record_compute(self, rank, seconds, flops=0.0, op="compute"):
        if seconds < 0:
            raise ValueError("compute seconds must be non-negative")
        seconds = self.injector.on_compute(rank, seconds, op)
        self._log.append(("compute", rank, seconds, flops, op,
                          self.tracer.current_scope))
        if not self._folded:
            led = self._ledgers[rank]
            t0 = led.walltime_s
            led.compute_s += seconds
            led.flops += flops
            led.overlap_budget_s += seconds
            self.tracer.on_compute(rank, t0, seconds, flops, op)
            return
        for key in self._covered((rank,)):
            led = self._class_ledgers[key]
            t0 = led.walltime_s
            led.compute_s += seconds
            led.flops += flops
            led.overlap_budget_s += seconds
            self.tracer.on_compute(self._reps[key], t0, seconds, flops, op,
                                   members=self._sizes[key])

    def record_comm(self, ranks, seconds, nbytes, overlappable=False, op="comm"):
        if seconds < 0:
            raise ValueError("comm seconds must be non-negative")
        ranks = tuple(ranks)
        seconds = self.injector.on_comm(ranks, seconds, op)
        self._log.append(("comm", ranks, seconds, nbytes, overlappable, op,
                          self.tracer.current_scope,
                          self.tracer.current_comm_kind))
        cid = next(self._collective_ids)
        if not self._folded:
            for rank in ranks:
                led = self._ledgers[rank]
                t0 = led.walltime_s
                led.comm_s += seconds
                led.comm_bytes += nbytes
                if overlappable:
                    hidden = min(seconds, led.overlap_budget_s)
                    led.overlap_budget_s -= hidden
                else:
                    hidden = 0.0
                    led.overlap_budget_s = 0.0
                led.exposed_comm_s += seconds - hidden
                self.tracer.on_comm(rank, t0, seconds, hidden, nbytes, op,
                                    ranks, cid=cid)
            return
        for key in self._covered(ranks):
            led = self._class_ledgers[key]
            t0 = led.walltime_s
            led.comm_s += seconds
            led.comm_bytes += nbytes
            if overlappable:
                hidden = min(seconds, led.overlap_budget_s)
                led.overlap_budget_s -= hidden
            else:
                hidden = 0.0
                led.overlap_budget_s = 0.0
            led.exposed_comm_s += seconds - hidden
            self.tracer.on_comm(self._reps[key], t0, seconds, hidden, nbytes,
                                op, ranks, cid=cid, members=self._sizes[key])

    def record_free(self, ranks, name, nbytes):
        ranks = tuple(ranks)
        self._log.append(("free", ranks, name, nbytes,
                          self.tracer.current_scope))
        if not self._folded:
            self.tracer.mark_free(self, ranks, name, nbytes)
            return
        reps = [self._reps[key] for key in self._covered(ranks)]
        self.tracer.mark_free(self, reps, name, nbytes)

    # -- summaries ---------------------------------------------------------
    def ledger(self, rank):
        if self._folded:
            return self._class_ledgers[self.partition.class_of(rank)]
        return self._ledgers[rank]

    def class_ledger(self, key) -> RankLedger:
        """Ledger of one equivalence class (folded mode)."""
        return self._class_ledgers[key]

    def walltime_s(self, ranks=None):
        if not self._folded:
            return super().walltime_s(ranks)
        if ranks is None:
            ledgers = self._class_ledgers.values()
        else:
            keys = {self.partition.class_of(r) for r in ranks}
            ledgers = [self._class_ledgers[key] for key in keys]
        return max((led.walltime_s for led in ledgers), default=0.0)

    def total_flops(self):
        if not self._folded:
            return super().total_flops()
        return sum(self._sizes[key] * led.flops
                   for key, led in self._class_ledgers.items())

    def reset(self):
        super().reset()
        self._class_ledgers = {key: RankLedger() for key in self._keys}
        self._folded = True
        self._seg_stack = []
        self._log = []
        self._covered_cache = {}

    # -- exact fallback ----------------------------------------------------
    def unfold(self) -> None:
        """Switch to exact per-rank recording (e.g. a fault window opens).

        Every member rank's ledger is materialized as a bitwise copy of
        its class ledger; subsequent events record per rank, still
        logged (without segments) so :meth:`expand` covers mixed runs.
        """
        if not self._folded:
            return
        for rank in range(self.num_ranks):
            self._ledgers[rank] = _copy_ledger(
                self._class_ledgers[self.partition.class_of(rank)])
        self._folded = False

    def try_refold(self) -> bool:
        """Return to folded mode if every class is value-uniform again.

        A timing-divergent fault (straggler, link degradation) leaves
        member ledgers unequal forever, so the run correctly stays
        exact; timing-neutral faults refold on the next clean step.
        """
        if self._folded:
            return True
        for key in self._keys:
            members = self.partition.members(key)
            ref = _ledger_values(self._ledgers[members[0]])
            if any(_ledger_values(self._ledgers[m]) != ref
                   for m in members[1:]):
                return False
        for key in self._keys:
            self._class_ledgers[key] = _copy_ledger(
                self._ledgers[self._reps[key]])
        self._folded = True
        return True

    # -- expansion ---------------------------------------------------------
    def expand(self):
        """Replay the event log into full per-rank form.

        Returns ``(ledgers, spans)``: a per-rank ledger list and a span
        list bitwise equal to what an exact-mode run of the same
        workload records (same floats, same order, same collective ids).
        """
        tracer = _ReplayTracer()
        replay = Timeline(self.num_ranks, tracer=tracer)
        self._replay(self._log, 0, len(self._log), replay, tracer, 0, ())
        return replay._ledgers, tracer.spans

    def _replay(self, log, start, end, replay, tracer, offset, renames):
        i = start
        while i < end:
            entry = log[i]
            tag = entry[0]
            if tag == "push":
                _, axis, count, stride, rename = entry
                depth, j = 1, i + 1
                while depth:
                    t = log[j][0]
                    depth += (t == "push") - (t == "pop")
                    j += 1
                for it in range(count):
                    sub = renames
                    if rename is not None and it > 0:
                        sub = renames + ((rename[0], rename[1].format(it)),)
                    self._replay(log, i + 1, j - 1, replay, tracer,
                                 offset + it * stride, sub)
                i = j
                continue
            if tag == "compute":
                _, rank, seconds, flops, op, scope = entry
                tracer.set_context(_apply_renames(scope, renames), "compute")
                replay.record_compute(rank + offset, seconds, flops,
                                      op=_apply_renames(op, renames))
            elif tag == "comm":
                _, ranks, seconds, nbytes, overlappable, op, scope, kind = entry
                tracer.set_context(_apply_renames(scope, renames), kind)
                replay.record_comm(tuple(r + offset for r in ranks), seconds,
                                   nbytes, overlappable=overlappable,
                                   op=_apply_renames(op, renames))
            elif tag == "free":
                _, ranks, name, nbytes, scope = entry
                tracer.set_context(_apply_renames(scope, renames), "gather")
                replay.record_free(tuple(r + offset for r in ranks),
                                   _apply_renames(name, renames), nbytes)
            i += 1

"""Rank-symmetry analysis for folded Timeline simulation.

ORBIT's Hybrid-STOP layout is almost perfectly symmetric: every DDP
replica runs the identical event stream, and within a replica every
FSDP shard index ``f`` runs the identical stream *except* that the
dense (unsharded) gradient all-reduce involves only the ``f == 0``
lead ranks.  That leaves exactly ``2 * tp_size`` behaviourally
distinct rank classes per pipeline stage (``tp_size`` when
``fsdp_size == 1``), keyed by

    ``(s, k, f == 0)``   where ``s`` is the pipeline stage and ``k``
    the tensor-parallel index.

Pipeline stages are *never* folded — each runs different blocks of the
model — but every stage is a self-similar 3D sub-grid at a constant
rank offset, so the within-stage FSDP/DDP fold arithmetic (strides,
member enumeration, replay offsets) is unchanged from the 3D case.

:class:`RankClassPartition` is the arithmetic of that partition;
:func:`decide_fold` is the eligibility gate that checks — with one
vectorized numpy sweep over every collective-group family — that the
machine topology really does give every class member the identical
alpha-beta cost, so one representative per class can stand in for the
whole class bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.costmodel import CollectiveCostModel
from repro.cluster.topology import FrontierTopology

#: (pipeline stage s, tp index k, is lead shard f == 0)
ClassKey = tuple[int, int, bool]

#: Byte size used by the vectorized alpha-beta probe in
#: :func:`decide_fold`; any positive finite value works because the
#: probe only compares predictions *within* a group family.
PROBE_BYTES = 1 << 20


@dataclass(frozen=True)
class RankClassPartition:
    """The (PP, TP, FSDP, DDP) equivalence classes of a Hybrid-STOP layout."""

    tp_size: int
    fsdp_size: int
    ddp_size: int
    tp_innermost: bool = True
    pp_size: int = 1

    @property
    def stage_size(self) -> int:
        """Ranks per pipeline stage (the 3D sub-grid size)."""
        return self.tp_size * self.fsdp_size * self.ddp_size

    @property
    def num_gpus(self) -> int:
        return self.stage_size * self.pp_size

    def rank(self, d: int, f: int, k: int) -> int:
        """Mirror of :meth:`repro.parallel.plan.HybridParallelPlan.rank`
        (stage-local: stage 0)."""
        if self.tp_innermost:
            return (d * self.fsdp_size + f) * self.tp_size + k
        return (d * self.tp_size + k) * self.fsdp_size + f

    def coords(self, rank: int) -> tuple[int, int, int]:
        """Within-stage (ddp, fsdp, tp) coordinates of a global rank."""
        if not 0 <= rank < self.num_gpus:
            raise ValueError(f"rank {rank} outside world of {self.num_gpus}")
        rem = rank % self.stage_size
        per_replica = self.fsdp_size * self.tp_size
        d, rem = divmod(rem, per_replica)
        if self.tp_innermost:
            f, k = divmod(rem, self.tp_size)
        else:
            k, f = divmod(rem, self.fsdp_size)
        return d, f, k

    def stage_of(self, rank: int) -> int:
        """Pipeline stage hosting a global rank (stage-outermost layout)."""
        if not 0 <= rank < self.num_gpus:
            raise ValueError(f"rank {rank} outside world of {self.num_gpus}")
        return rank // self.stage_size

    def class_of(self, rank: int) -> ClassKey:
        _, f, k = self.coords(rank)
        return (self.stage_of(rank), k, f == 0)

    @property
    def keys(self) -> tuple[ClassKey, ...]:
        """All class keys, ordered by representative rank."""
        out = [(s, k, True)
               for s in range(self.pp_size) for k in range(self.tp_size)]
        if self.fsdp_size > 1:
            out.extend((s, k, False)
                       for s in range(self.pp_size) for k in range(self.tp_size))
        return tuple(sorted(out, key=self.representative))

    def representative(self, key: ClassKey) -> int:
        stage, k, lead = key
        return stage * self.stage_size + self.rank(0, 0 if lead else 1, k)

    def size(self, key: ClassKey) -> int:
        _, _, lead = key
        if lead:
            return self.ddp_size
        return self.ddp_size * (self.fsdp_size - 1)

    def members(self, key: ClassKey) -> list[int]:
        stage, k, lead = key
        shards = (0,) if lead else range(1, self.fsdp_size)
        offset = stage * self.stage_size
        return sorted(
            offset + self.rank(d, f, k)
            for d in range(self.ddp_size) for f in shards
        )

    @property
    def fsdp_stride(self) -> int:
        """Rank delta between consecutive FSDP shard indices."""
        return self.rank(0, 1, 0) - self.rank(0, 0, 0) if self.fsdp_size > 1 \
            else 0

    @property
    def ddp_stride(self) -> int:
        """Rank delta between consecutive DDP replicas (both layouts)."""
        return self.fsdp_size * self.tp_size

    def rank_grid(self) -> np.ndarray:
        """``R[d, f, k]`` rank array, vectorized."""
        dd, ff, kk = np.meshgrid(
            np.arange(self.ddp_size), np.arange(self.fsdp_size),
            np.arange(self.tp_size), indexing="ij",
        )
        if self.tp_innermost:
            return (dd * self.fsdp_size + ff) * self.tp_size + kk
        return (dd * self.tp_size + kk) * self.fsdp_size + ff


@dataclass(frozen=True)
class FoldDecision:
    """Outcome of :func:`decide_fold`: whether to fold, and why (not)."""

    folded: bool
    reason: str
    partition: RankClassPartition | None = None


def _effective_specs(topology: FrontierTopology,
                     rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized mirror of :meth:`FrontierTopology.effective_bandwidth`.

    ``rows`` is an (n_groups, group_size) rank matrix; returns per-row
    (latency_s, bandwidth_Bps) arrays that match the scalar method
    float-for-float.
    """
    rows = np.asarray(rows)
    n, g = rows.shape
    if g <= 1:  # SELF links
        return np.zeros(n), np.full(n, np.inf)
    nodes = rows // topology.gpus_per_node
    inter = nodes.max(axis=1) > nodes.min(axis=1)
    # max ranks sharing one node, per group (mirrors the per_node dict)
    eq = nodes[:, :, None] == nodes[:, None, :]
    sharers = eq.sum(axis=2).max(axis=1)
    occupancy = min(topology.gpus_per_node, topology.num_gpus)
    contention = np.maximum(1, occupancy // sharers)
    lat = np.where(inter, topology.inter_node.latency_s,
                   topology.intra_node.latency_s)
    bw = np.where(inter, topology.inter_node.bandwidth_Bps / contention,
                  topology.intra_node.bandwidth_Bps)
    return lat, bw


def _family_uniform(topology: FrontierTopology, rows: np.ndarray) -> bool:
    """True iff every group in the family has the identical effective
    link spec *and* the identical vectorized alpha-beta prediction."""
    rows = np.asarray(rows)
    if rows.shape[0] <= 1:
        return True
    lat, bw = _effective_specs(topology, rows)
    if not (np.all(lat == lat[0]) and np.all(bw == bw[0])):
        return False
    # Belt and braces: evaluate the ring all-reduce alpha-beta model
    # across every group at once and require bitwise-equal predictions.
    g = rows.shape[1]
    seconds = CollectiveCostModel._steps_batch(
        lat, bw, 2 * (g - 1), PROBE_BYTES / g if g else 0.0
    )
    return bool(np.all(seconds == seconds[0]))


def symmetry_blockers(spec, topology: FrontierTopology) -> list[str]:
    """Every reason the given RunSpec cannot be folded on ``topology``.

    Empty list means the (PP, TP, FSDP, DDP) class partition is exact:
    for each collective-group family, all groups a class replicates over
    share one effective link spec, so one representative's alpha-beta
    costs are bitwise valid for every member.  Each pipeline stage is a
    rank-offset copy of the 3D grid, so stage ``s``'s families are the
    stage-0 rows plus ``s * stage_size``; at ``pp_size > 1`` the dense
    front lives on stage 0 and the head on the last stage (separate
    replica groups), and the stage-boundary activation/gradient sends
    add a family of 2-wide point-to-point rows.
    """
    blockers: list[str] = []
    S = getattr(spec, "pp_size", 1)
    part = RankClassPartition(spec.tp_size, spec.fsdp_size, spec.ddp_size,
                              tp_innermost=spec.tp_innermost, pp_size=S)
    grid = part.rank_grid()
    D, F, K = spec.ddp_size, spec.fsdp_size, spec.tp_size
    offsets = np.arange(S).reshape(S, 1, 1, 1) * part.stage_size
    grid4 = grid[None, ...] + offsets  # [s, d, f, k]
    families = {
        "tensor-parallel": grid4.reshape(S * D * F, K),
        "fsdp-shard": grid4.transpose(0, 1, 3, 2).reshape(S * D * K, F),
        "ddp-replica-sync": grid4.transpose(0, 2, 3, 1).reshape(S * F * K, D),
    }
    if S == 1:
        families["dense-replica"] = grid.reshape(D, F * K)
    else:
        # Front embeddings sync on stage 0, the head on the last stage.
        families["dense-replica"] = np.concatenate(
            [grid4[0].reshape(D, F * K), grid4[-1].reshape(D, F * K)])
        # Activation/gradient sends pair rank (s,d,f,k) with (s+1,d,f,k).
        families["pipeline-boundary"] = np.stack(
            [grid4[:-1].reshape(-1), grid4[1:].reshape(-1)], axis=1)
    for name, rows in families.items():
        if not _family_uniform(topology, rows):
            blockers.append(f"{name} groups have non-uniform link specs")
    if K > spec.config.num_heads:
        # Sub-head sharding all-reduces over per-head subsets of the TP
        # group; they share one spec only when TP groups stay on-node.
        tp_rows = families["tensor-parallel"]
        nodes = tp_rows // topology.gpus_per_node
        if np.any(nodes.max(axis=1) > nodes.min(axis=1)):
            blockers.append("sub-head regime with node-spanning TP groups")
    return blockers


def decide_fold(spec, topology: FrontierTopology,
                compute_model=None) -> FoldDecision:
    """Should this run fold ranks into equivalence classes?

    ``fold="off"`` never folds; ``"on"``/``"auto"`` fold whenever the
    run is eligible and silently fall back to exact mode otherwise
    (numeric runs, skewed compute, asymmetric topologies).
    """
    if spec.fold == "off":
        return FoldDecision(False, "fold=off")
    if not spec.meta:
        return FoldDecision(False, "numeric runs always use exact mode")
    if spec.compute_skew:
        return FoldDecision(False, "compute_skew breaks rank symmetry")
    if compute_model is not None and \
            not getattr(compute_model, "rank_invariant", False):
        return FoldDecision(False, "compute model is rank-dependent")
    blockers = symmetry_blockers(spec, topology)
    if blockers:
        return FoldDecision(False, "; ".join(blockers))
    part = RankClassPartition(spec.tp_size, spec.fsdp_size, spec.ddp_size,
                              tp_innermost=spec.tp_innermost,
                              pp_size=getattr(spec, "pp_size", 1))
    return FoldDecision(True, "eligible", part)

"""Simulated Frontier-class cluster.

The substrate the ORBIT scaling study ran on (49,152 MI250X GCDs on
Frontier) is reproduced here as a single-process virtual cluster:

* :mod:`~repro.cluster.topology` — nodes, Infinity Fabric intra-node
  links, Slingshot-11 inter-node links;
* :mod:`~repro.cluster.device` — per-GCD memory tracking (64 GB);
* :mod:`~repro.cluster.process_group` — rank groups over which
  collectives operate;
* :mod:`~repro.cluster.collectives` — functional all-gather /
  reduce-scatter / all-reduce / broadcast over per-rank buffers with
  alpha-beta communication cost accounting;
* :mod:`~repro.cluster.timeline` — per-rank compute/communication time
  ledger including prefetch overlap, plus the rank-symmetry-folded
  variant that simulates one representative per equivalence class;
* :mod:`~repro.cluster.symmetry` — the (TP, FSDP, DDP) rank-class
  partition and the fold-eligibility decision.
"""

from repro.cluster.cluster import VirtualCluster
from repro.cluster.collectives import (
    all_gather,
    all_reduce,
    all_to_all,
    barrier,
    broadcast,
    gather,
    reduce_scatter,
    scatter,
)
from repro.cluster.costmodel import CollectiveCostModel
from repro.cluster.device import VirtualGPU
from repro.cluster.process_group import ProcessGroup
from repro.cluster.symmetry import FoldDecision, RankClassPartition, decide_fold
from repro.cluster.timeline import FoldedTimeline, Timeline
from repro.cluster.topology import FrontierTopology, LinkKind

__all__ = [
    "CollectiveCostModel",
    "FoldDecision",
    "FoldedTimeline",
    "FrontierTopology",
    "LinkKind",
    "ProcessGroup",
    "RankClassPartition",
    "Timeline",
    "decide_fold",
    "VirtualCluster",
    "VirtualGPU",
    "all_gather",
    "all_reduce",
    "all_to_all",
    "barrier",
    "broadcast",
    "gather",
    "reduce_scatter",
    "scatter",
]

"""Gather/scatter building blocks shared by the sharded engines.

These wrap the raw collectives with the bookkeeping every sharded
parameter operation needs: transient memory registration on the
participating devices, shape restoration after flat gathers, and
flatten-pad-reduce-scatter for gradients.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.collectives import all_gather, all_reduce, reduce_scatter
from repro.cluster.process_group import ProcessGroup
from repro.core.sharding import ShardedParameter, flat_pad_shard, flat_unshard
from repro.meta import nbytes_of
from repro.nn import ops


class GatheredParam:
    """A transiently materialized full parameter.

    Holds the reassembled array plus the per-device allocations backing
    it; call :meth:`release` (or use as a context manager) when the
    layer is done with it (layer wrapping frees after every layer).
    Releases are marked on the owning cluster's tracer so a trace shows
    the gathered-shard lifetime, not just the gather.
    """

    def __init__(self, data, allocations, devices, *, tracer=None, timeline=None,
                 ranks=(), name="param", nbytes=0.0):
        self.data = data
        self._allocations = allocations
        self._devices = devices
        self._tracer = tracer
        self._timeline = timeline
        self._ranks = tuple(ranks)
        self._name = name
        self._nbytes = nbytes
        self.released = False

    def release(self) -> None:
        if self.released:
            return
        for device, alloc in zip(self._devices, self._allocations):
            device.memory.free(alloc)
        self.released = True
        if self._timeline is not None:
            # Routed through the timeline so a folded run logs the
            # release for replay; lands on Tracer.mark_free either way.
            self._timeline.record_free(self._ranks, self._name, self._nbytes)
        elif self._tracer is not None:
            self._tracer.mark_free(self._timeline, self._ranks, self._name, self._nbytes)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.release()


def gather_param(
    param: ShardedParameter,
    group: ProcessGroup,
    overlappable: bool = False,
    track_memory: bool = True,
) -> GatheredParam:
    """All-gather a flat-sharded parameter back to its logical shape.

    Every member of ``group`` transiently holds the full (padded)
    buffer; the allocation is registered on each member's device so
    peak-memory effects of gathering are observable.  Engines that
    account gathered memory at a coarser granularity (the
    no-layer-wrapping mode pre-allocates all layers at once) pass
    ``track_memory=False`` to avoid double counting.
    """
    if param.num_shards != group.size:
        raise ValueError(
            f"{param.name}: {param.num_shards} shards but group size {group.size}"
        )
    tracer = group.cluster.tracer
    with tracer.scope("gather", param.name, kind="gather"):
        gathered = all_gather(group, param.shards, overlappable=overlappable)
    nbytes = nbytes_of(gathered[0])
    devices, allocations = [], []
    if track_memory:
        tracked = group.cluster.timeline.tracked_ranks(group.ranks)
        devices = [group.cluster.device(r) for r in tracked]
        allocations = [
            device.memory.allocate(nbytes, tag=f"gathered.{param.name}") for device in devices
        ]
    # All ranks receive identical gathered content; one array is shared.
    full = flat_unshard([gathered[0]], param.logical_shape)
    return GatheredParam(
        full, allocations, devices,
        tracer=tracer, timeline=group.cluster.timeline, ranks=group.ranks,
        name=param.name, nbytes=nbytes,
    )


def reduce_scatter_grads(
    param: ShardedParameter,
    group: ProcessGroup,
    per_rank_grads: Sequence,
    overlappable: bool = False,
) -> None:
    """Reduce per-rank full gradients into the parameter's flat shards.

    ``per_rank_grads[i]`` is member *i*'s locally computed full
    gradient of the logical parameter (from its own micro-batch); the
    reduce-scatter sums them and leaves each member its shard — the
    FSDP backward step of paper Fig 2(b)/Fig 3(b).
    """
    if len(per_rank_grads) != group.size:
        raise ValueError(
            f"{param.name}: expected {group.size} gradient buffers, got {len(per_rank_grads)}"
        )
    # A folded engine pads its gradient list by repeating one object;
    # flatten each distinct buffer once (id-keyed, so numeric runs with
    # per-rank arrays are untouched).
    flat_cache: dict[int, object] = {}
    flat_per_rank = []
    for grad in per_rank_grads:
        flat = flat_cache.get(id(grad))
        if flat is None:
            if tuple(grad.shape) != param.logical_shape:
                raise ValueError(
                    f"{param.name}: gradient shape {tuple(grad.shape)} != logical "
                    f"{param.logical_shape}"
                )
            shards = flat_pad_shard(grad, group.size)
            flat = ops.concat(shards, axis=0)
            flat_cache[id(grad)] = flat
        flat_per_rank.append(flat)
    with group.cluster.tracer.scope("grad", param.name):
        shard_lists = reduce_scatter(group, flat_per_rank, op="sum", overlappable=overlappable)
    param.set_grad_shards(shard_lists)


def tensor_parallel_sum(group: ProcessGroup, partials: Sequence, overlappable: bool = False):
    """Sum per-rank partial activations over the tensor-parallel group."""
    return all_reduce(group, partials, op="sum", overlappable=overlappable)[0]

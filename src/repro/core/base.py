"""Shared machinery for Hybrid-STOP sublayer modules."""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING

from repro.nn.context import ExecutionContext, execution_context

if TYPE_CHECKING:  # pragma: no cover
    from repro.parallel.plan import HybridParallelPlan


class HybridModuleBase:
    """Base for sharded sublayers living on one DDP replica of a plan.

    Provides replica-scoped group accessors and per-rank compute
    recording: engine code wraps each rank's local math in
    :meth:`ranked_compute` so its FLOPs land on that rank's timeline
    ledger (converted to seconds by the optional ``compute_model``).
    """

    def __init__(
        self,
        plan: "HybridParallelPlan",
        ddp_index: int = 0,
        prefetch: bool = False,
        compute_model=None,
        name: str = "layer",
    ):
        if not 0 <= ddp_index < plan.ddp_size:
            raise ValueError(f"ddp_index {ddp_index} outside ddp_size {plan.ddp_size}")
        self.plan = plan
        self.ddp_index = ddp_index
        self.prefetch = prefetch
        self.compute_model = compute_model
        self.name = name
        self._cache = None
        #: Set False when a trunk accounts gathered memory wholesale
        #: (the no-layer-wrapping mode of Table I).
        self.track_gather_memory = True

    def _gather(self, param, group):
        """Gather a shard with this module's prefetch/track settings."""
        from repro.core.fsdp_ops import gather_param

        return gather_param(
            param, group, overlappable=self.prefetch, track_memory=self.track_gather_memory
        )

    # -- replica-scoped shortcuts ---------------------------------------------
    @property
    def tp_size(self) -> int:
        return self.plan.tp_size

    @property
    def fsdp_size(self) -> int:
        return self.plan.fsdp_size

    def tp_group(self, fsdp: int):
        return self.plan.tp_group(self.ddp_index, fsdp)

    def fsdp_group(self, tp: int):
        return self.plan.fsdp_group(self.ddp_index, tp)

    def rank(self, fsdp: int, tp: int) -> int:
        return self.plan.rank(self.ddp_index, fsdp, tp)

    # -- symmetry folding ------------------------------------------------------
    def fold_fsdp(self, iterable):
        """Iterate a per-shard (``f``) loop, folded when the timeline is.

        On a :class:`~repro.cluster.timeline.FoldedTimeline` only the
        first iteration runs (bracketed by a replayable segment marker);
        on the exact timeline this is plain iteration.
        """
        return self.plan.cluster.timeline.fold_iter("fsdp", iterable)

    def fold_pad(self, items: list) -> list:
        """Pad a folded ``f``-loop's outputs back to ``fsdp_size``."""
        return self.plan.cluster.timeline.fold_pad("fsdp", items, self.fsdp_size)

    # -- accounting --------------------------------------------------------------
    @contextmanager
    def ranked_compute(self, fsdp: int, tp: int):
        """Attribute the enclosed work to rank ``(fsdp, tp)``'s timeline."""
        from repro.utils.logging import trace_log_context

        ctx = ExecutionContext()
        rank = self.rank(fsdp, tp)
        with trace_log_context(rank=rank), execution_context(ctx):
            yield
        if self.compute_model is not None:
            seconds = self.compute_model.seconds_for(ctx.flops, rank)
            self.plan.cluster.timeline.record_compute(rank, seconds, ctx.flops, op=self.name)

    def _require_cache(self):
        if self._cache is None:
            raise RuntimeError(
                f"{type(self).__name__} '{self.name}': backward called without a "
                "cached forward"
            )
        return self._cache

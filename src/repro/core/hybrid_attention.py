"""Hybrid-STOP self-attention sublayer.

Self-attention is the second ``y <- x A B`` chain the paper shards
(Sec III-A: ``softmax(Q K^T) V`` plus its projections).  The same
alternating column/row layout as the feed-forward sublayer applies:
``W_q/W_k/W_v`` are *column*-sharded over the tensor-parallel group and
``W_o`` is *row*-sharded, so each rank k owns columns
``[k*D/K, (k+1)*D/K)`` of the projections and the matching rows of the
output projection, with every shard flat-sharded again over its FSDP
group.

Head-count independence.  Megatron-style tensor parallelism cannot use
more ranks than attention heads because each rank must own whole heads.
Hybrid-STOP exploits the chain identity *inside* the head: when
``K > H``, each head's ``d_h`` dimensions are split over ``s = K/H``
ranks, the per-rank partial scores ``Q_k K_k^T`` are summed with an
all-reduce over the ``s``-rank sub-head group (Eqn 2 applied to the
``Q K^T`` chain), softmax runs on the reduced scores, and each rank
multiplies by its ``d_h/s`` value slice.  With ``K <= H`` the sub-head
groups are singletons and the reduction is free, recovering standard
head-parallel attention — one code path covers both regimes.

QK layer normalization (Sec III-B) normalizes over the full head
dimension, which is local only when ranks own whole heads; combining
``qk_layernorm`` with ``K > H`` therefore raises ``NotImplementedError``
(the paper never runs that combination: tensor-parallel degree is at
most 8 in-node while all models have 16-64 heads).
"""

from __future__ import annotations

import math

from repro.cluster.collectives import all_reduce
from repro.core.base import HybridModuleBase
from repro.core.fsdp_ops import reduce_scatter_grads, tensor_parallel_sum
from repro.core.sharding import ShardedParameter, column_shards
from repro.nn import functional as F
from repro.nn import ops
from repro.nn.attention import MultiHeadAttention


class HybridSTOPAttention(HybridModuleBase):
    """Multi-head attention distributed with Hybrid-STOP.

    Built from a serial :class:`~repro.nn.attention.MultiHeadAttention`
    for parameter-exact equivalence testing.
    """

    def __init__(
        self,
        serial: MultiHeadAttention,
        plan,
        ddp_index: int = 0,
        prefetch: bool = False,
        compute_model=None,
        name: str = "attn",
    ):
        super().__init__(plan, ddp_index, prefetch, compute_model, name)
        K = plan.tp_size
        self.dim = serial.dim
        self.num_heads = serial.num_heads
        self.head_dim = serial.head_dim
        self.scale = serial.scale
        self.qk_layernorm = serial.qk_layernorm
        if self.dim % K:
            raise ValueError(f"dim {self.dim} not divisible by tensor-parallel size {K}")
        if K <= self.num_heads:
            if self.num_heads % K:
                raise ValueError(
                    f"num_heads {self.num_heads} not divisible by tensor-parallel size {K}"
                )
            self.heads_per_rank = self.num_heads // K
            self.subhead_size = 1
        else:
            if K % self.num_heads:
                raise ValueError(
                    f"tensor-parallel size {K} not divisible by num_heads {self.num_heads}"
                )
            self.subhead_size = K // self.num_heads
            if self.head_dim % self.subhead_size:
                raise ValueError(
                    f"head_dim {self.head_dim} not divisible by sub-head factor "
                    f"{self.subhead_size}"
                )
            if self.qk_layernorm:
                raise NotImplementedError(
                    "qk_layernorm needs whole heads per rank; it cannot be combined "
                    f"with tensor-parallel size {K} > num_heads {self.num_heads}"
                )
            self.heads_per_rank = 1
        self.local_dim = self.dim // K  # columns owned per tensor-parallel rank
        self.local_head_dim = self.local_dim // self.heads_per_rank

        F_ = plan.fsdp_size
        self._params: dict[str, list[ShardedParameter]] = {}
        for pname, weight, bias in (
            ("wq", serial.wq.weight.data, serial.wq.bias.data),
            ("wk", serial.wk.weight.data, serial.wk.bias.data),
            ("wv", serial.wv.weight.data, serial.wv.bias.data),
        ):
            w_shards = column_shards(weight, K)
            b_shards = column_shards(bias, K)
            self._params[pname] = [
                ShardedParameter(
                    w_shards[k], F_, f"{name}.{pname}{k}", devices=plan.fsdp_devices(ddp_index, k)
                )
                for k in range(K)
            ]
            self._params[f"{pname}_bias"] = [
                ShardedParameter(
                    b_shards[k], F_, f"{name}.{pname}_b{k}", devices=plan.fsdp_devices(ddp_index, k)
                )
                for k in range(K)
            ]
        # W_o row shards: rows [k*D/K, (k+1)*D/K) == transposed column shards.
        wo_rows = column_shards(ops.swapaxes(serial.wo.weight.data, -1, -2), K)
        self._params["wo"] = [
            ShardedParameter(
                ops.swapaxes(wo_rows[k], -1, -2),
                F_,
                f"{name}.wo{k}",
                devices=plan.fsdp_devices(ddp_index, k),
            )
            for k in range(K)
        ]
        self.wo_bias = ShardedParameter(
            serial.wo.bias.data, F_, f"{name}.wo_bias", devices=plan.fsdp_devices(ddp_index, 0)
        )
        if self.qk_layernorm:
            self.ln_q_gamma = ShardedParameter(
                serial.ln_q.gamma.data, F_, f"{name}.lnq_g", devices=plan.fsdp_devices(ddp_index, 0)
            )
            self.ln_q_beta = ShardedParameter(
                serial.ln_q.beta.data, F_, f"{name}.lnq_b", devices=plan.fsdp_devices(ddp_index, 0)
            )
            self.ln_k_gamma = ShardedParameter(
                serial.ln_k.gamma.data, F_, f"{name}.lnk_g", devices=plan.fsdp_devices(ddp_index, 0)
            )
            self.ln_k_beta = ShardedParameter(
                serial.ln_k.beta.data, F_, f"{name}.lnk_b", devices=plan.fsdp_devices(ddp_index, 0)
            )
        self.ln_eps = serial.ln_q.eps if self.qk_layernorm else 1e-5
        self._subhead_groups: dict[int, object] = {}

    # -- groups ---------------------------------------------------------------
    def subhead_group(self, fsdp: int, tp: int):
        """Sub-head reduction group of rank (f, k): the s ranks sharing a head."""
        s = self.subhead_size
        head = tp // s
        key = fsdp * self.plan.tp_size + head
        if key not in self._subhead_groups:
            tp_ranks = self.tp_group(fsdp).ranks
            members = [tp_ranks[head * s + j] for j in range(s)]
            self._subhead_groups[key] = self.plan.cluster.new_group(members)
        return self._subhead_groups[key]

    # -- parameter access -------------------------------------------------------
    def sharded_parameters(self) -> list[ShardedParameter]:
        params = [p for plist in self._params.values() for p in plist]
        params.append(self.wo_bias)
        if self.qk_layernorm:
            params += [self.ln_q_gamma, self.ln_q_beta, self.ln_k_gamma, self.ln_k_beta]
        return params

    def gathered_state(self) -> dict:
        state = {
            "wq.weight": ops.concat([p.full() for p in self._params["wq"]], axis=-1),
            "wq.bias": ops.concat([p.full() for p in self._params["wq_bias"]], axis=-1),
            "wk.weight": ops.concat([p.full() for p in self._params["wk"]], axis=-1),
            "wk.bias": ops.concat([p.full() for p in self._params["wk_bias"]], axis=-1),
            "wv.weight": ops.concat([p.full() for p in self._params["wv"]], axis=-1),
            "wv.bias": ops.concat([p.full() for p in self._params["wv_bias"]], axis=-1),
            "wo.weight": ops.concat([p.full() for p in self._params["wo"]], axis=-2),
            "wo.bias": self.wo_bias.full(),
        }
        if self.qk_layernorm:
            state["ln_q.gamma"] = self.ln_q_gamma.full()
            state["ln_q.beta"] = self.ln_q_beta.full()
            state["ln_k.gamma"] = self.ln_k_gamma.full()
            state["ln_k.beta"] = self.ln_k_beta.full()
        return state

    def gathered_grads(self) -> dict:
        grads = {
            "wq.weight": ops.concat([p.full_grad() for p in self._params["wq"]], axis=-1),
            "wq.bias": ops.concat([p.full_grad() for p in self._params["wq_bias"]], axis=-1),
            "wk.weight": ops.concat([p.full_grad() for p in self._params["wk"]], axis=-1),
            "wk.bias": ops.concat([p.full_grad() for p in self._params["wk_bias"]], axis=-1),
            "wv.weight": ops.concat([p.full_grad() for p in self._params["wv"]], axis=-1),
            "wv.bias": ops.concat([p.full_grad() for p in self._params["wv_bias"]], axis=-1),
            "wo.weight": ops.concat([p.full_grad() for p in self._params["wo"]], axis=-2),
            "wo.bias": self.wo_bias.full_grad(),
        }
        if self.qk_layernorm:
            grads["ln_q.gamma"] = self.ln_q_gamma.full_grad()
            grads["ln_q.beta"] = self.ln_q_beta.full_grad()
            grads["ln_k.gamma"] = self.ln_k_gamma.full_grad()
            grads["ln_k.beta"] = self.ln_k_beta.full_grad()
        return grads

    def zero_grad(self) -> None:
        for param in self.sharded_parameters():
            param.zero_grad()

    # -- head reshapes ---------------------------------------------------------
    def _split_local(self, x, batch: int, seq: int):
        x = ops.reshape(x, (batch, seq, self.heads_per_rank, self.local_head_dim))
        return ops.transpose(x, (0, 2, 1, 3))

    def _merge_local(self, x, batch: int, seq: int):
        return ops.reshape(ops.transpose(x, (0, 2, 1, 3)), (batch, seq, self.local_dim))

    def _apply_ln(self, x, gamma, beta):
        xhat, cache = F.layernorm_forward(x, eps=self.ln_eps)
        return ops.add(ops.multiply(xhat, gamma), beta), cache

    # -- execution -----------------------------------------------------------------
    def forward(self, xs: list) -> list:
        if len(xs) != self.fsdp_size:
            raise ValueError(f"expected {self.fsdp_size} micro-batches, got {len(xs)}")
        K, F_ = self.tp_size, self.fsdp_size
        batch, seq = xs[0].shape[0], xs[0].shape[1]
        ln_params = None
        if self.qk_layernorm:
            lnq_g = self._gather(self.ln_q_gamma, self.fsdp_group(0))
            lnq_b = self._gather(self.ln_q_beta, self.fsdp_group(0))
            lnk_g = self._gather(self.ln_k_gamma, self.fsdp_group(0))
            lnk_b = self._gather(self.ln_k_beta, self.fsdp_group(0))
            ln_params = (lnq_g, lnq_b, lnk_g, lnk_b)

        locals_cache = [[None] * K for _ in range(F_)]
        score_partials = [[None] * K for _ in range(F_)]
        for k in range(K):
            group = self.fsdp_group(k)
            with self._gather(self._params["wq"][k], group) as wq, \
                    self._gather(self._params["wq_bias"][k], group) as bq, \
                    self._gather(self._params["wk"][k], group) as wk, \
                    self._gather(self._params["wk_bias"][k], group) as bk, \
                    self._gather(self._params["wv"][k], group) as wv, \
                    self._gather(self._params["wv_bias"][k], group) as bv:
                for f in self.fold_fsdp(range(F_)):
                    with self.ranked_compute(f, k):
                        q = self._split_local(ops.add(ops.matmul(xs[f], wq.data), bq.data), batch, seq)
                        key = self._split_local(ops.add(ops.matmul(xs[f], wk.data), bk.data), batch, seq)
                        val = self._split_local(ops.add(ops.matmul(xs[f], wv.data), bv.data), batch, seq)
                        ln_caches = None
                        if self.qk_layernorm:
                            q, q_cache = self._apply_ln(q, ln_params[0].data, ln_params[1].data)
                            key, k_cache = self._apply_ln(key, ln_params[2].data, ln_params[3].data)
                            ln_caches = (q_cache, k_cache)
                        locals_cache[f][k] = {"q": q, "k": key, "v": val, "ln": ln_caches}
                        score_partials[f][k] = ops.multiply(
                            ops.matmul(q, ops.swapaxes(key, -1, -2)), self.scale
                        )

        # Sub-head reduction (Eqn 2 on the Q K^T chain); free when s == 1.
        probs = [[None] * K for _ in range(F_)]
        out_partials = [[None] * K for _ in range(F_)]
        for f in self.fold_fsdp(range(F_)):
            if self.subhead_size > 1:
                for head in range(self.num_heads):
                    members = range(head * self.subhead_size, (head + 1) * self.subhead_size)
                    reduced = all_reduce(
                        self.subhead_group(f, head * self.subhead_size),
                        [score_partials[f][k] for k in members],
                        op="sum",
                    )
                    for j, k in enumerate(members):
                        score_partials[f][k] = reduced[j]
            for k in range(K):
                with self.ranked_compute(f, k):
                    p, _ = F.softmax_forward(score_partials[f][k])
                    probs[f][k] = p
                    out_partials[f][k] = ops.matmul(p, locals_cache[f][k]["v"])

        ys = []
        wo_handles = [
            self._gather(self._params["wo"][k], self.fsdp_group(k))
            for k in range(K)
        ]
        with self._gather(self.wo_bias, self.fsdp_group(0)) as bo:
            merged = [[None] * K for _ in range(F_)]
            for f in self.fold_fsdp(range(F_)):
                y_partials = []
                for k in range(K):
                    with self.ranked_compute(f, k):
                        merged[f][k] = self._merge_local(out_partials[f][k], batch, seq)
                        y_k = ops.matmul(merged[f][k], wo_handles[k].data)
                        if k == 0:
                            y_k = ops.add(y_k, bo.data)
                        y_partials.append(y_k)
                ys.append(tensor_parallel_sum(self.tp_group(f), y_partials))
        for handle in wo_handles:
            handle.release()
        if ln_params is not None:
            for handle in ln_params:
                handle.release()
        self._cache = (xs, locals_cache, probs, merged, batch, seq)
        return self.fold_pad(ys)

    def backward(self, grad_ys: list) -> list:
        xs, locals_cache, probs, merged, batch, seq = self._require_cache()
        self._cache = None
        K, F_ = self.tp_size, self.fsdp_size

        batch_axes = tuple(range(grad_ys[0].ndim - 1))
        reduce_scatter_grads(
            self.wo_bias, self.fsdp_group(0), [ops.sum_(g, axis=batch_axes) for g in grad_ys]
        )

        # Backward through W_o (row shards).
        grad_out_local = [[None] * K for _ in range(F_)]
        for k in range(K):
            group = self.fsdp_group(k)
            with self._gather(self._params["wo"][k], group) as wo:
                wo_grads = []
                for f in self.fold_fsdp(range(F_)):
                    with self.ranked_compute(f, k):
                        flat = batch * seq
                        m2d = ops.reshape(merged[f][k], (flat, self.local_dim))
                        g2d = ops.reshape(grad_ys[f], (flat, self.dim))
                        wo_grads.append(ops.matmul(ops.swapaxes(m2d, 0, 1), g2d))
                        grad_merged = ops.matmul(grad_ys[f], ops.swapaxes(wo.data, -1, -2))
                        grad_out_local[f][k] = self._split_local(grad_merged, batch, seq)
                reduce_scatter_grads(self._params["wo"][k], group, self.fold_pad(wo_grads))

        # Backward through the attention core.
        grad_q = [[None] * K for _ in range(F_)]
        grad_k = [[None] * K for _ in range(F_)]
        grad_v = [[None] * K for _ in range(F_)]
        for f in self.fold_fsdp(range(F_)):
            grad_p_partials = [None] * K
            for k in range(K):
                with self.ranked_compute(f, k):
                    v = locals_cache[f][k]["v"]
                    grad_p_partials[k] = ops.matmul(grad_out_local[f][k], ops.swapaxes(v, -1, -2))
                    grad_v[f][k] = ops.matmul(
                        ops.swapaxes(probs[f][k], -1, -2), grad_out_local[f][k]
                    )
            if self.subhead_size > 1:
                for head in range(self.num_heads):
                    members = range(head * self.subhead_size, (head + 1) * self.subhead_size)
                    reduced = all_reduce(
                        self.subhead_group(f, head * self.subhead_size),
                        [grad_p_partials[k] for k in members],
                        op="sum",
                    )
                    for j, k in enumerate(members):
                        grad_p_partials[k] = reduced[j]
            for k in range(K):
                with self.ranked_compute(f, k):
                    grad_scores = ops.multiply(
                        F.softmax_backward(probs[f][k], grad_p_partials[k]), self.scale
                    )
                    grad_q[f][k] = ops.matmul(grad_scores, locals_cache[f][k]["k"])
                    grad_k[f][k] = ops.matmul(
                        ops.swapaxes(grad_scores, -1, -2), locals_cache[f][k]["q"]
                    )

        # Backward through QK layer norm (whole-head regime only).
        if self.qk_layernorm:
            self._backward_qk_layernorm(grad_q, grad_k, locals_cache)

        # Backward through the column-sharded projections.
        grad_x_partials = [[None] * K for _ in range(F_)]
        for pname, grads in (("wq", grad_q), ("wk", grad_k), ("wv", grad_v)):
            for k in range(K):
                group = self.fsdp_group(k)
                with self._gather(self._params[pname][k], group) as w:
                    w_grads = []
                    b_grads = []
                    for f in self.fold_fsdp(range(F_)):
                        with self.ranked_compute(f, k):
                            g_merged = self._merge_local(grads[f][k], batch, seq)
                            flat = batch * seq
                            x2d = ops.reshape(xs[f], (flat, self.dim))
                            g2d = ops.reshape(g_merged, (flat, self.local_dim))
                            w_grads.append(ops.matmul(ops.swapaxes(x2d, 0, 1), g2d))
                            b_grads.append(ops.sum_(g2d, axis=0))
                            partial = ops.matmul(g_merged, ops.swapaxes(w.data, -1, -2))
                            if grad_x_partials[f][k] is None:
                                grad_x_partials[f][k] = partial
                            else:
                                grad_x_partials[f][k] = ops.add(grad_x_partials[f][k], partial)
                    reduce_scatter_grads(self._params[pname][k], group, self.fold_pad(w_grads))
                    reduce_scatter_grads(self._params[f"{pname}_bias"][k], group,
                                         self.fold_pad(b_grads))

        grad_xs = []
        for f in self.fold_fsdp(range(F_)):
            grad_xs.append(tensor_parallel_sum(self.tp_group(f), grad_x_partials[f]))
        return self.fold_pad(grad_xs)

    def _backward_qk_layernorm(self, grad_q, grad_k, locals_cache) -> None:
        """Gradients through the q/k layer norms and their (replicated) affines.

        Affine parameter grads are summed over tensor-parallel ranks
        (each owns different heads) and then reduce-scattered over the
        FSDP group that stores them.
        """
        K, F_ = self.tp_size, self.fsdp_size
        lnq_g = self._gather(self.ln_q_gamma, self.fsdp_group(0))
        lnk_g = self._gather(self.ln_k_gamma, self.fsdp_group(0))
        qg_partials: list[list] = [[None] * K for _ in range(F_)]
        qb_partials: list[list] = [[None] * K for _ in range(F_)]
        kg_partials: list[list] = [[None] * K for _ in range(F_)]
        kb_partials: list[list] = [[None] * K for _ in range(F_)]
        for f in self.fold_fsdp(range(F_)):
            for k in range(K):
                q_cache, k_cache = locals_cache[f][k]["ln"]
                with self.ranked_compute(f, k):
                    reduce_axes = tuple(range(grad_q[f][k].ndim - 1))
                    qhat = q_cache[0]
                    qg_partials[f][k] = ops.sum_(ops.multiply(grad_q[f][k], qhat), axis=reduce_axes)
                    qb_partials[f][k] = ops.sum_(grad_q[f][k], axis=reduce_axes)
                    grad_q[f][k] = F.layernorm_backward(
                        q_cache, ops.multiply(grad_q[f][k], lnq_g.data)
                    )
                    khat = k_cache[0]
                    kg_partials[f][k] = ops.sum_(ops.multiply(grad_k[f][k], khat), axis=reduce_axes)
                    kb_partials[f][k] = ops.sum_(grad_k[f][k], axis=reduce_axes)
                    grad_k[f][k] = F.layernorm_backward(
                        k_cache, ops.multiply(grad_k[f][k], lnk_g.data)
                    )
        lnq_g.release()
        lnk_g.release()
        for param, partials in (
            (self.ln_q_gamma, qg_partials),
            (self.ln_q_beta, qb_partials),
            (self.ln_k_gamma, kg_partials),
            (self.ln_k_beta, kb_partials),
        ):
            per_f = []
            for f in self.fold_fsdp(range(F_)):
                per_f.append(tensor_parallel_sum(self.tp_group(f), partials[f]))
            reduce_scatter_grads(param, self.fsdp_group(0), self.fold_pad(per_f))

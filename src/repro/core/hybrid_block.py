"""Hybrid-STOP transformer block and trunk.

A block composes the two sharded sublayers with the pre-norm residual
structure of :class:`~repro.nn.transformer.TransformerBlock`.  The
layer norms are computationally tiny; their parameters are flat-sharded
over tensor-parallel rank 0's FSDP group and gathered per layer, and
the normalization itself runs once per FSDP index (its output is
identical on every tensor-parallel rank of that group).

The trunk adds the two engine-level policies the Table I ablation
toggles:

* **layer wrapping** (default on): shards are gathered one layer at a
  time and freed immediately.  When off, the trunk pre-registers the
  gathered bytes of *all* layers at once on every device — the
  full-model gather that sends the unwrapped configuration out of
  memory in Table I's first column.
* **prefetching**: gathers are issued as overlappable communication
  hidden under compute slack (Sec III-B);
* **recompute** (activation checkpointing): the forward pass keeps only
  each block's input; the backward pass re-runs the block forward —
  re-gathering its shards and re-paying its compute — before
  backpropagating through it, the Table I "+ckpt" policy.
"""

from __future__ import annotations

from repro.core.base import HybridModuleBase
from repro.core.fsdp_ops import reduce_scatter_grads
from repro.core.hybrid_attention import HybridSTOPAttention
from repro.core.hybrid_linear import HybridSTOPMLP
from repro.core.sharding import ShardedParameter
from repro.meta import nbytes_of
from repro.nn import functional as F
from repro.nn import ops
from repro.nn.transformer import TransformerBlock, TransformerStack


class _ShardedLayerNorm(HybridModuleBase):
    """A replicated layer norm whose affine lives sharded on FSDP group 0."""

    def __init__(self, serial_ln, plan, ddp_index=0, prefetch=False, compute_model=None, name="ln"):
        super().__init__(plan, ddp_index, prefetch, compute_model, name)
        self.eps = serial_ln.eps
        self.gamma = ShardedParameter(
            serial_ln.gamma.data, plan.fsdp_size, f"{name}.gamma",
            devices=plan.fsdp_devices(ddp_index, 0),
        )
        self.beta = ShardedParameter(
            serial_ln.beta.data, plan.fsdp_size, f"{name}.beta",
            devices=plan.fsdp_devices(ddp_index, 0),
        )

    def sharded_parameters(self):
        return [self.gamma, self.beta]

    def zero_grad(self):
        self.gamma.zero_grad()
        self.beta.zero_grad()

    def forward(self, xs: list) -> list:
        outs, caches = [], []
        with self._gather(self.gamma, self.fsdp_group(0)) as gamma, \
                self._gather(self.beta, self.fsdp_group(0)) as beta:
            for f, x in self.fold_fsdp(enumerate(xs)):
                with self.ranked_compute(f, 0):
                    xhat, cache = F.layernorm_forward(x, eps=self.eps)
                    outs.append(ops.add(ops.multiply(xhat, gamma.data), beta.data))
                    caches.append((xhat, cache))
        self._cache = self.fold_pad(caches)
        return self.fold_pad(outs)

    def backward(self, grad_ys: list) -> list:
        caches = self._require_cache()
        self._cache = None
        grad_xs, gamma_grads, beta_grads = [], [], []
        with self._gather(self.gamma, self.fsdp_group(0)) as gamma:
            for f, (grad_y, (xhat, cache)) in self.fold_fsdp(
                    enumerate(zip(grad_ys, caches))):
                with self.ranked_compute(f, 0):
                    reduce_axes = tuple(range(grad_y.ndim - 1))
                    gamma_grads.append(ops.sum_(ops.multiply(grad_y, xhat), axis=reduce_axes))
                    beta_grads.append(ops.sum_(grad_y, axis=reduce_axes))
                    grad_xs.append(F.layernorm_backward(cache, ops.multiply(grad_y, gamma.data)))
        reduce_scatter_grads(self.gamma, self.fsdp_group(0), self.fold_pad(gamma_grads))
        reduce_scatter_grads(self.beta, self.fsdp_group(0), self.fold_pad(beta_grads))
        return self.fold_pad(grad_xs)


class HybridSTOPBlock(HybridModuleBase):
    """One transformer block under Hybrid-STOP (pre-norm residuals)."""

    def __init__(
        self,
        serial: TransformerBlock,
        plan,
        ddp_index: int = 0,
        prefetch: bool = False,
        compute_model=None,
        name: str = "block",
    ):
        super().__init__(plan, ddp_index, prefetch, compute_model, name)
        kwargs = dict(ddp_index=ddp_index, prefetch=prefetch, compute_model=compute_model)
        self.ln1 = _ShardedLayerNorm(serial.ln1, plan, name=f"{name}.ln1", **kwargs)
        self.attn = HybridSTOPAttention(serial.attn, plan, name=f"{name}.attn", **kwargs)
        self.ln2 = _ShardedLayerNorm(serial.ln2, plan, name=f"{name}.ln2", **kwargs)
        self.mlp = HybridSTOPMLP(serial.mlp, plan, name=f"{name}.mlp", **kwargs)

    @property
    def submodules(self):
        return (self.ln1, self.attn, self.ln2, self.mlp)

    def sharded_parameters(self):
        params = []
        for module in self.submodules:
            params.extend(module.sharded_parameters())
        return params

    def zero_grad(self):
        for module in self.submodules:
            module.zero_grad()

    def set_prefetch(self, prefetch: bool) -> None:
        self.prefetch = prefetch
        for module in self.submodules:
            module.prefetch = prefetch

    def set_track_gather_memory(self, track: bool) -> None:
        self.track_gather_memory = track
        for module in self.submodules:
            module.track_gather_memory = track

    def gathered_grads(self) -> dict:
        grads = {}
        grads.update({f"ln1.{k}": v for k, v in {
            "gamma": self.ln1.gamma.full_grad(), "beta": self.ln1.beta.full_grad()}.items()})
        grads.update({f"attn.{k}": v for k, v in self.attn.gathered_grads().items()})
        grads.update({f"ln2.{k}": v for k, v in {
            "gamma": self.ln2.gamma.full_grad(), "beta": self.ln2.beta.full_grad()}.items()})
        grads.update({f"mlp.{k}": v for k, v in self.mlp.gathered_grads().items()})
        return grads

    def forward(self, xs: list) -> list:
        attn_out = self.attn.forward(self.ln1.forward(xs))
        mid = [ops.add(x, a) for x, a in zip(xs, attn_out)]
        mlp_out = self.mlp.forward(self.ln2.forward(mid))
        self._cache = True
        return [ops.add(m, o) for m, o in zip(mid, mlp_out)]

    def backward(self, grad_ys: list) -> list:
        self._require_cache()
        self._cache = None
        grad_mid = [
            ops.add(g, l) for g, l in zip(grad_ys, self.ln2.backward(self.mlp.backward(grad_ys)))
        ]
        grad_x = [
            ops.add(g, l)
            for g, l in zip(grad_mid, self.ln1.backward(self.attn.backward(grad_mid)))
        ]
        return grad_x

    def gathered_param_bytes(self) -> int:
        """Bytes a device holds when this layer's shards are materialized."""
        total = 0
        for param in self.attn.sharded_parameters() + self.mlp.sharded_parameters():
            total += nbytes_of(param.shards[0]) * param.num_shards
        # One tensor-parallel rank's worth: each device only gathers the
        # shards of the parameters its own rank participates in, which is
        # 1/K of the layer (the params above enumerate all K TP shards).
        return total // self.plan.tp_size


class HybridSTOPTrunk(HybridModuleBase):
    """A stack of Hybrid-STOP blocks with layer wrapping and prefetch policies."""

    def __init__(
        self,
        serial: TransformerStack,
        plan,
        ddp_index: int = 0,
        prefetch: bool = False,
        layer_wrapping: bool = True,
        recompute: bool = False,
        compute_model=None,
        name: str = "trunk",
        block_offset: int = 0,
    ):
        super().__init__(plan, ddp_index, prefetch, compute_model, name)
        self.layer_wrapping = layer_wrapping
        self.recompute = recompute
        #: Global index of this trunk's first block — nonzero for the
        #: per-stage slice trunks of a pipelined engine, so block names
        #: (and therefore trace spans and sharded-parameter names) stay
        #: global across stages.
        self.block_offset = block_offset
        self._saved_inputs: list = []
        self.blocks = [
            HybridSTOPBlock(
                block, plan, ddp_index=ddp_index, prefetch=prefetch,
                compute_model=compute_model,
                name=f"{name}.block{block_offset + i}",
            )
            for i, block in enumerate(serial.blocks)
        ]
        self._wholesale_allocs: list = []
        if not layer_wrapping:
            for block in self.blocks:
                block.set_track_gather_memory(False)

    def sharded_parameters(self):
        return [p for block in self.blocks for p in block.sharded_parameters()]

    def zero_grad(self):
        for block in self.blocks:
            block.zero_grad()

    def _acquire_all_layers(self) -> None:
        """No-layer-wrapping: every device holds all layers' gathered shards."""
        if self._wholesale_allocs:
            return
        per_device = sum(block.gathered_param_bytes() for block in self.blocks)
        replica_ranks = [
            self.rank(f, k) for f in range(self.fsdp_size) for k in range(self.tp_size)
        ]
        for rank in replica_ranks:
            device = self.plan.cluster.device(rank)
            self._wholesale_allocs.append(
                (device, device.memory.allocate(per_device, tag="gathered.all_layers"))
            )

    def _release_all_layers(self) -> None:
        for device, alloc in self._wholesale_allocs:
            device.memory.free(alloc)
        self._wholesale_allocs = []

    def forward(self, xs: list) -> list:
        if not self.layer_wrapping:
            self._acquire_all_layers()
        self._saved_inputs = []
        for block in self.blocks:
            if self.recompute:
                self._saved_inputs.append(xs)
            xs = block.forward(xs)
        self._cache = True
        return xs

    def backward(self, grad_ys: list) -> list:
        self._require_cache()
        self._cache = None
        for index in reversed(range(len(self.blocks))):
            block = self.blocks[index]
            if self.recompute:
                # Checkpointing re-runs the block forward from its saved
                # input, re-gathering shards and re-paying the compute.
                block.forward(self._saved_inputs[index])
            grad_ys = block.backward(grad_ys)
        self._saved_inputs = []
        if not self.layer_wrapping:
            self._release_all_layers()
        return grad_ys

    def gathered_grads(self) -> dict:
        grads = {}
        for i, block in enumerate(self.blocks):
            grads.update({
                f"block{self.block_offset + i}.{k}": v
                for k, v in block.gathered_grads().items()
            })
        return grads

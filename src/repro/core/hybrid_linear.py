"""Hybrid-STOP feed-forward sublayer (paper Fig 3, applied to GeLU(xA)B).

Parameter layout for tensor-parallel degree K and FSDP degree F:

* ``A`` (``dim x hidden``) and its bias are split into K *column*
  shards; tensor-parallel rank k owns ``A_k = A[:, k]``;
* ``B`` (``hidden x dim``) is split into K *row* shards;
  rank k owns ``B_k = B[k, :]``; the output bias rides with rank 0
  (partials are summed, so adding it once is exact);
* every per-rank shard is additionally flat-sharded over the F members
  of that rank's FSDP group and all-gathered just-in-time (Fig 3
  timesteps T2/T3 and T6), then freed — the full ``A`` or ``B`` is
  never materialized anywhere.

Forward per FSDP index f (own micro-batch ``x_f``)::

    h_fk = GeLU(x_f @ A_k + b1_k)          # on rank (f, k)
    y_f  = all_reduce_k( h_fk @ B_k ) + b2  # Eqn 2

Backward mirrors Fig 3(b): gather ``B_k`` row shards, reduce-scatter
their gradients, gather ``A_k`` column shards, reduce-scatter theirs,
and all-reduce the input gradient over the tensor-parallel group
(Eqn 3).
"""

from __future__ import annotations

import math

from repro.core.base import HybridModuleBase
from repro.core.fsdp_ops import reduce_scatter_grads, tensor_parallel_sum
from repro.core.sharding import ShardedParameter, column_shards, row_shards
from repro.nn import functional as F
from repro.nn import ops
from repro.nn.mlp import MLP


class HybridSTOPMLP(HybridModuleBase):
    """The MLP sublayer distributed with Hybrid-STOP.

    Built from a serial :class:`~repro.nn.mlp.MLP` so numerical
    equivalence is testable parameter-for-parameter.
    """

    def __init__(
        self,
        serial: MLP,
        plan,
        ddp_index: int = 0,
        prefetch: bool = False,
        compute_model=None,
        name: str = "mlp",
    ):
        super().__init__(plan, ddp_index, prefetch, compute_model, name)
        if serial.hidden_dim % plan.tp_size:
            raise ValueError(
                f"hidden dim {serial.hidden_dim} not divisible by tensor-parallel "
                f"size {plan.tp_size}"
            )
        self.dim = serial.dim
        self.hidden_dim = serial.hidden_dim
        K, F_ = plan.tp_size, plan.fsdp_size
        a_cols = column_shards(serial.fc1.weight.data, K)
        b1_cols = column_shards(serial.fc1.bias.data, K)
        b_rows = row_shards(serial.fc2.weight.data, K)
        self.a = [
            ShardedParameter(a_cols[k], F_, f"{name}.a{k}", devices=plan.fsdp_devices(ddp_index, k))
            for k in range(K)
        ]
        self.b1 = [
            ShardedParameter(b1_cols[k], F_, f"{name}.b1_{k}", devices=plan.fsdp_devices(ddp_index, k))
            for k in range(K)
        ]
        self.b = [
            ShardedParameter(b_rows[k], F_, f"{name}.b{k}", devices=plan.fsdp_devices(ddp_index, k))
            for k in range(K)
        ]
        self.b2 = ShardedParameter(
            serial.fc2.bias.data, F_, f"{name}.b2", devices=plan.fsdp_devices(ddp_index, 0)
        )

    # -- parameter access (tests / optimizer) ----------------------------------
    def sharded_parameters(self) -> list[ShardedParameter]:
        return [*self.a, *self.b1, *self.b, self.b2]

    def gathered_state(self) -> dict:
        """Logical (unsharded) parameter arrays, for equivalence checks."""
        return {
            "fc1.weight": ops.concat([p.full() for p in self.a], axis=-1),
            "fc1.bias": ops.concat([p.full() for p in self.b1], axis=-1),
            "fc2.weight": ops.concat([p.full() for p in self.b], axis=-2),
            "fc2.bias": self.b2.full(),
        }

    def gathered_grads(self) -> dict:
        """Logical gradients reassembled from the reduced shards."""
        return {
            "fc1.weight": ops.concat([p.full_grad() for p in self.a], axis=-1),
            "fc1.bias": ops.concat([p.full_grad() for p in self.b1], axis=-1),
            "fc2.weight": ops.concat([p.full_grad() for p in self.b], axis=-2),
            "fc2.bias": self.b2.full_grad(),
        }

    def zero_grad(self) -> None:
        for param in self.sharded_parameters():
            param.zero_grad()

    # -- execution -----------------------------------------------------------------
    def forward(self, xs: list) -> list:
        """Per-FSDP-rank micro-batches in, per-FSDP-rank outputs out."""
        if len(xs) != self.fsdp_size:
            raise ValueError(f"expected {self.fsdp_size} micro-batches, got {len(xs)}")
        K, F_ = self.tp_size, self.fsdp_size
        hidden_caches = [[None] * K for _ in range(F_)]
        partials = [[None] * K for _ in range(F_)]
        for k in range(K):
            # Fig 3(a) T2/T3: the FSDP group gathers rank k's column shard.
            with self._gather(self.a[k], self.fsdp_group(k)) as a_k, \
                    self._gather(self.b1[k], self.fsdp_group(k)) as b1_k:
                for f in self.fold_fsdp(range(F_)):
                    with self.ranked_compute(f, k):
                        pre = ops.add(ops.matmul(xs[f], a_k.data), b1_k.data)
                        act, cache = F.gelu_forward(pre)
                        hidden_caches[f][k] = (act, cache)
            # Fig 3(a) T6: gather rank k's row shard of B.
            with self._gather(self.b[k], self.fsdp_group(k)) as b_k:
                for f in self.fold_fsdp(range(F_)):
                    with self.ranked_compute(f, k):
                        partials[f][k] = ops.matmul(hidden_caches[f][k][0], b_k.data)
        with self._gather(self.b2, self.fsdp_group(0)) as b2:
            ys = []
            for f in self.fold_fsdp(range(F_)):
                # Eqn 2: sum the K partial products over the tensor-parallel group.
                partials[f][0] = ops.add(partials[f][0], b2.data)
                ys.append(tensor_parallel_sum(self.tp_group(f), partials[f]))
        self._cache = (xs, hidden_caches)
        return self.fold_pad(ys)

    def backward(self, grad_ys: list) -> list:
        xs, hidden_caches = self._require_cache()
        self._cache = None
        K, F_ = self.tp_size, self.fsdp_size
        grad_x_partials = [[None] * K for _ in range(F_)]

        # Output bias: each f's contribution summed over its batch, then
        # reduced across the FSDP group holding b2.
        batch_axes = tuple(range(grad_ys[0].ndim - 1))
        b2_grads = [ops.sum_(g, axis=batch_axes) for g in grad_ys]
        reduce_scatter_grads(self.b2, self.fsdp_group(0), b2_grads)

        for k in range(K):
            # Fig 3(b) T1/T2: gather B_k, compute + reduce-scatter its grads.
            with self._gather(self.b[k], self.fsdp_group(k)) as b_k:
                grad_hidden_acts = []
                b_grads = []
                for f in self.fold_fsdp(range(F_)):
                    act, _ = hidden_caches[f][k]
                    with self.ranked_compute(f, k):
                        flat = math.prod(act.shape[:-1])
                        act2d = ops.reshape(act, (flat, act.shape[-1]))
                        g2d = ops.reshape(grad_ys[f], (flat, self.dim))
                        b_grads.append(ops.matmul(ops.swapaxes(act2d, 0, 1), g2d))
                        grad_hidden_acts.append(ops.matmul(grad_ys[f], ops.swapaxes(b_k.data, -1, -2)))
                grad_hidden_acts = self.fold_pad(grad_hidden_acts)
                reduce_scatter_grads(self.b[k], self.fsdp_group(k), self.fold_pad(b_grads))
            # Fig 3(b) T3/T4: gather A_k, compute + reduce-scatter its grads.
            with self._gather(self.a[k], self.fsdp_group(k)) as a_k:
                a_grads = []
                b1_grads = []
                for f in self.fold_fsdp(range(F_)):
                    _, gelu_cache = hidden_caches[f][k]
                    with self.ranked_compute(f, k):
                        grad_pre = F.gelu_backward(gelu_cache, grad_hidden_acts[f])
                        flat = math.prod(grad_pre.shape[:-1])
                        x2d = ops.reshape(xs[f], (flat, self.dim))
                        g2d = ops.reshape(grad_pre, (flat, grad_pre.shape[-1]))
                        a_grads.append(ops.matmul(ops.swapaxes(x2d, 0, 1), g2d))
                        b1_grads.append(ops.sum_(g2d, axis=0))
                        grad_x_partials[f][k] = ops.matmul(grad_pre, ops.swapaxes(a_k.data, -1, -2))
                reduce_scatter_grads(self.a[k], self.fsdp_group(k), self.fold_pad(a_grads))
                reduce_scatter_grads(self.b1[k], self.fsdp_group(k), self.fold_pad(b1_grads))

        # Fig 3(b) T5: Eqn 3 — all-reduce the input gradient per TP group.
        grad_xs = []
        for f in self.fold_fsdp(range(F_)):
            grad_xs.append(tensor_parallel_sum(self.tp_group(f), grad_x_partials[f]))
        return self.fold_pad(grad_xs)

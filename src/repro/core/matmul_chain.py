"""The matrix-chain identities Hybrid-STOP is built on (paper Eqns 1-3).

For ``y = x A B`` with ``A`` split into column shards ``A_k`` and ``B``
into matching row shards ``B_k``::

    y = x A B = sum_k  x A_k B_k                          (Eqn 2)
    dy/dx     = sum_k  B_k^T A_k^T  (as right-multiplier) (Eqn 3)

An elementwise nonlinearity ``phi`` between the two products commutes
with the column split (``phi`` acts per element, and columns of
``x A`` are computed independently), so ``phi(x A) B = sum_k
phi(x A_k) B_k`` — the property that lets one scheme cover both the
feed-forward sublayer (``phi = GeLU``) and, with the softmax applied to
a head-local block, self-attention.

These reference kernels operate on explicit shard lists with a real
tensor-parallel group performing the reduction; the Hybrid-STOP modules
wrap them with FSDP sharding, prefetch, and memory accounting.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.cluster.collectives import all_reduce
from repro.cluster.process_group import ProcessGroup
from repro.nn import ops


def chain_forward_reference(x, a, b, phi: Callable | None = None):
    """Serial ``y = phi(x A) B`` (identity ``phi`` when None)."""
    hidden = ops.matmul(x, a)
    if phi is not None:
        hidden = phi(hidden)
    return ops.matmul(hidden, b)


def chain_backward_reference(x, a, b, grad_y):
    """Serial gradients of ``y = x A B`` (no nonlinearity).

    Returns ``(grad_x, grad_a, grad_b)``.
    """
    hidden = ops.matmul(x, a)
    grad_hidden = ops.matmul(grad_y, ops.swapaxes(b, -1, -2))
    grad_b = ops.matmul(ops.swapaxes(hidden, -1, -2), grad_y)
    grad_a = ops.matmul(ops.swapaxes(x, -1, -2), grad_hidden)
    grad_x = ops.matmul(grad_hidden, ops.swapaxes(a, -1, -2))
    return grad_x, grad_a, grad_b


def chain_forward_sharded(
    x,
    a_shards: Sequence,
    b_shards: Sequence,
    tp_group: ProcessGroup,
    phi: Callable | None = None,
):
    """Eqn 2: every tensor-parallel rank computes ``phi(x A_k) B_k``;
    the partials are summed with an all-reduce over the group.

    Returns ``(y, hiddens)`` where ``hiddens[k] = phi(x A_k)`` (each
    rank's activation half, kept for the backward pass).
    """
    if len(a_shards) != tp_group.size or len(b_shards) != tp_group.size:
        raise ValueError(
            f"need one A and one B shard per tensor-parallel rank "
            f"({tp_group.size}), got {len(a_shards)} / {len(b_shards)}"
        )
    hiddens = []
    partials = []
    for a_k, b_k in zip(a_shards, b_shards):
        hidden_k = ops.matmul(x, a_k)
        if phi is not None:
            hidden_k = phi(hidden_k)
        hiddens.append(hidden_k)
        partials.append(ops.matmul(hidden_k, b_k))
    y = all_reduce(tp_group, partials, op="sum")[0]
    return y, hiddens


def chain_grad_input_sharded(
    grad_y,
    a_shards: Sequence,
    b_shards: Sequence,
    tp_group: ProcessGroup,
):
    """Eqn 3 (identity ``phi``): ``grad_x = sum_k grad_y B_k^T A_k^T``.

    Each rank computes its partial input gradient locally; the
    tensor-parallel all-reduce forms the total.
    """
    partials = []
    for a_k, b_k in zip(a_shards, b_shards):
        grad_hidden_k = ops.matmul(grad_y, ops.swapaxes(b_k, -1, -2))
        partials.append(ops.matmul(grad_hidden_k, ops.swapaxes(a_k, -1, -2)))
    return all_reduce(tp_group, partials, op="sum")[0]

"""Hybrid-STOP: the paper's contribution (Sec III).

Hybrid Sharded Tensor-Data Orthogonal Parallelism distributes the two
matrix chains at the heart of every transformer layer —
``GeLU(x A) B`` in the feed-forward sublayer and
``softmax(Q K^T) V`` (with its projections) in self-attention — as
*alternating column/row shards* over a tensor-parallel group, while
each tensor-parallel rank's shard is itself flat-sharded over an FSDP
group.  Parameters are never gathered beyond one layer's
tensor-parallel shard, which is what removes FSDP's peak-memory
problem (paper Fig 2 vs Fig 3).

Modules here mirror their serial counterparts in :mod:`repro.nn` and
are verified to produce bit-comparable outputs and gradients.
"""

from repro.core.hybrid_attention import HybridSTOPAttention
from repro.core.hybrid_block import HybridSTOPBlock, HybridSTOPTrunk
from repro.core.hybrid_linear import HybridSTOPMLP
from repro.core.matmul_chain import (
    chain_backward_reference,
    chain_forward_reference,
    chain_forward_sharded,
    chain_grad_input_sharded,
)
from repro.core.sharding import (
    ShardedParameter,
    column_shards,
    flat_pad_shard,
    flat_unshard,
    row_shards,
)

__all__ = [
    "HybridSTOPAttention",
    "HybridSTOPBlock",
    "HybridSTOPMLP",
    "HybridSTOPTrunk",
    "ShardedParameter",
    "chain_backward_reference",
    "chain_forward_reference",
    "chain_forward_sharded",
    "chain_grad_input_sharded",
    "column_shards",
    "flat_pad_shard",
    "flat_unshard",
    "row_shards",
]

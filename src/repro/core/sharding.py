"""Shard layouts used by Hybrid-STOP.

Two layouts compose (paper Fig 3):

* **column/row shards** over the tensor-parallel group — matrix ``A``
  is split along columns, matrix ``B`` along rows, so partial products
  ``x A_k B_k`` sum to ``x A B`` (Eqn 2);
* **flat shards** over the FSDP group — each tensor-parallel shard is
  flattened, zero-padded to a multiple of the group size, and split
  evenly, so all-gather / reduce-scatter move equal-sized messages
  (how PyTorch FSDP lays flat parameters out).
"""

from __future__ import annotations

import math

import numpy as np

from repro.meta import MetaArray, is_meta, nbytes_of


def column_shards(matrix, num_shards: int) -> list:
    """Split the last axis into ``num_shards`` equal column blocks."""
    cols = matrix.shape[-1]
    if cols % num_shards:
        raise ValueError(f"{cols} columns not divisible into {num_shards} shards")
    if is_meta(matrix):
        shape = tuple(matrix.shape[:-1]) + (cols // num_shards,)
        return [MetaArray(shape, matrix.dtype)] * num_shards
    return [np.ascontiguousarray(s) for s in np.split(np.asarray(matrix), num_shards, axis=-1)]


def row_shards(matrix, num_shards: int) -> list:
    """Split the second-to-last axis into ``num_shards`` equal row blocks."""
    rows = matrix.shape[-2]
    if rows % num_shards:
        raise ValueError(f"{rows} rows not divisible into {num_shards} shards")
    if is_meta(matrix):
        shape = tuple(matrix.shape)
        shape = shape[:-2] + (rows // num_shards, shape[-1])
        return [MetaArray(shape, matrix.dtype)] * num_shards
    return [np.ascontiguousarray(s) for s in np.split(np.asarray(matrix), num_shards, axis=-2)]


def flat_pad_shard(array, num_shards: int) -> list:
    """Flatten, zero-pad to a multiple of ``num_shards``, split evenly.

    The inverse is :func:`flat_unshard` with the original shape.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be positive")
    size = int(array.size)
    padded = math.ceil(size / num_shards) * num_shards if size else num_shards
    if is_meta(array):
        return [MetaArray((padded // num_shards,), array.dtype)] * num_shards
    flat = np.asarray(array).reshape(-1)
    if padded != size:
        flat = np.concatenate([flat, np.zeros(padded - size, flat.dtype)])
    return [np.ascontiguousarray(s) for s in np.split(flat, num_shards)]


def flat_unshard(shards: list, shape: tuple[int, ...]):
    """Reassemble :func:`flat_pad_shard` output into ``shape``."""
    if any(is_meta(s) for s in shards):
        return MetaArray(tuple(shape), shards[0].dtype)
    flat = np.concatenate([np.asarray(s).reshape(-1) for s in shards])
    size = math.prod(shape)
    if flat.size < size:
        raise ValueError(f"shards hold {flat.size} elements; shape {shape} needs {size}")
    return flat[:size].reshape(shape)


class ShardedParameter:
    """One logical matrix stored as flat shards over an FSDP group.

    Tracks the logical (unsharded) shape so gathers can restore it, and
    registers the per-rank shard bytes with each owning device's memory
    tracker.

    Parameters
    ----------
    full:
        The logical array (real or meta) to distribute.
    num_shards:
        FSDP group size.
    name:
        Used for memory-tracker tags and error messages.
    devices:
        Optional per-shard devices; when given, persistent shard memory
        is allocated on each (tag ``params.<name>``).
    """

    def __init__(self, full, num_shards: int, name: str = "param", devices=None):
        self.logical_shape = tuple(full.shape)
        self.dtype = full.dtype
        self.name = name
        self.shards = flat_pad_shard(full, num_shards)
        self.grad_shards: list | None = None
        self._allocations = []
        if devices is not None:
            if len(devices) != num_shards:
                raise ValueError(f"need {num_shards} devices, got {len(devices)}")
            for device, shard in zip(devices, self.shards):
                self._allocations.append(
                    device.memory.allocate(nbytes_of(shard), tag=f"params.{name}")
                )
            self.devices = list(devices)
        else:
            self.devices = None

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def shard_nbytes(self) -> int:
        """Bytes of one shard."""
        return nbytes_of(self.shards[0])

    def full(self):
        """Reassemble the logical array from the local shards (no comm)."""
        return flat_unshard(self.shards, self.logical_shape)

    def set_grad_shards(self, grad_shards: list) -> None:
        """Store (accumulate) the reduced gradient shards."""
        if len(grad_shards) != self.num_shards:
            raise ValueError(
                f"{self.name}: expected {self.num_shards} gradient shards, "
                f"got {len(grad_shards)}"
            )
        if self.grad_shards is None or any(is_meta(g) for g in grad_shards):
            self.grad_shards = list(grad_shards)
        else:
            self.grad_shards = [g0 + g1 for g0, g1 in zip(self.grad_shards, grad_shards)]

    def zero_grad(self) -> None:
        self.grad_shards = None

    def full_grad(self):
        """Reassemble the logical gradient (testing/optimizer use)."""
        if self.grad_shards is None:
            return None
        return flat_unshard(self.grad_shards, self.logical_shape)

    def free(self) -> None:
        """Release the persistent shard allocations (simulated)."""
        if self.devices is not None:
            for device, alloc in zip(self.devices, self._allocations):
                device.memory.free(alloc)
            self._allocations = []
            self.devices = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardedParameter({self.name}, logical={self.logical_shape}, "
            f"shards={self.num_shards})"
        )

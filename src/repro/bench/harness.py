"""Performance-regression harness over the trace layer.

Runs a fixed matrix of simulated Hybrid-STOP configurations — the
paper's ORBIT-115M and ORBIT-1B models at 2 and 4 Frontier nodes, plus
the 113B model at up to the full 49,152-GCD machine (symmetry-folded;
see :mod:`repro.cluster.symmetry`) — in meta mode (shape-only arrays,
full engine code path, exact cost-model accounting), and derives every
headline number *from the trace*:

* **step time** — the critical path of the traced step
  (bitwise-equal to ``Timeline.walltime_s`` by the analyzer invariant);
* **scaling efficiency** — time-per-observation speedup from 2 to 4
  nodes against the ideal 2x (the Fig 7 metric, on the bench matrix);
* **exposed-comm fraction** — the share of busy time spent in
  non-overlapped communication (the ATP-style attribution);
* **peak memory** — the per-device high-watermark from the trackers.

Everything downstream of the seed is deterministic pure-float
arithmetic, so the committed ``BENCH_obs.json`` baseline only moves
when a code change moves the modeled system — which is exactly what
the CI tolerance gate (``repro bench --check``) is for.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.utils.logging import get_logger

_LOG = get_logger("bench")

#: Format version of ``BENCH_obs.json``.
SCHEMA_VERSION = 1

#: Default drift tolerance for the regression gate (fractional).
DEFAULT_TOLERANCE = 0.05


@dataclass(frozen=True)
class BenchCase:
    """One point of the bench matrix."""

    name: str
    model: str
    num_gpus: int
    gpus_per_node: int
    tp_size: int
    fsdp_size: int
    ddp_size: int
    micro_batch: int
    #: Pipeline depth of the 4D factorization (1 = pure 3D layout).
    #: Identity, not policy: a pipelined case is a different
    #: configuration, so it stays in the committed document.
    pp_size: int = 1
    #: Included in the ``--quick`` subset (CI time limits).
    quick: bool = False
    #: Engine policies (Table I / Sec III-B).  The defaults match the
    #: committed matrix; the tuner's validation stage sweeps them.
    prefetch: bool = True
    recompute: bool = False
    tp_innermost: bool = True
    #: Rank-symmetry folding policy (see :mod:`repro.cluster.symmetry`).
    #: Folded runs are bitwise-equal to exact ones, so this never moves
    #: a committed measurement; the frontier-scale cases need it to be
    #: affordable at all.
    fold: str = "off"

    @property
    def nodes(self) -> int:
        return self.num_gpus // self.gpus_per_node

    @property
    def observations(self) -> int:
        """Observations processed per step (global batch)."""
        return self.micro_batch * self.fsdp_size * self.ddp_size


#: The committed matrix: 115M and 1B at 2 and 4 nodes.  TP stays
#: in-node; scale-out grows the FSDP axis, mirroring the paper's Fig 4
#: placement.  The 115M cases form the ``--quick`` subset.
DEFAULT_MATRIX: tuple[BenchCase, ...] = (
    BenchCase("orbit-115m-2n", "orbit-115m", 16, 8, tp_size=4, fsdp_size=2,
              ddp_size=2, micro_batch=2, quick=True),
    BenchCase("orbit-115m-4n", "orbit-115m", 32, 8, tp_size=4, fsdp_size=4,
              ddp_size=2, micro_batch=2, quick=True),
    BenchCase("orbit-1b-2n", "orbit-1b", 16, 8, tp_size=8, fsdp_size=2,
              ddp_size=1, micro_batch=2),
    BenchCase("orbit-1b-4n", "orbit-1b", 32, 8, tp_size=8, fsdp_size=4,
              ddp_size=1, micro_batch=2),
)

#: Frontier-scale points: the paper's 113B model at 128, 1,024, and
#: 6,144 nodes (49,152 GCDs — the full Fig 7 machine).  Affordable only
#: because symmetry folding simulates one representative rank per
#: equivalence class; folded accounting is bitwise-equal to exact, so
#: these entries are measurements, not estimates.  Not part of the
#: ``--quick`` subset (the wall-clock gate lives in
#: ``benchmarks/test_bench_frontier.py``).
FRONTIER_MATRIX: tuple[BenchCase, ...] = (
    BenchCase("orbit-113b-128n", "orbit-113b", 1024, 8, tp_size=8,
              fsdp_size=32, ddp_size=4, micro_batch=3, fold="on"),
    BenchCase("orbit-113b-128n-pp4", "orbit-113b", 1024, 8, tp_size=8,
              fsdp_size=16, ddp_size=2, micro_batch=3, pp_size=4, fold="on"),
    BenchCase("orbit-113b-1024n", "orbit-113b", 8192, 8, tp_size=8,
              fsdp_size=64, ddp_size=16, micro_batch=3, fold="on"),
    BenchCase("orbit-113b-6144n", "orbit-113b", 49152, 8, tp_size=8,
              fsdp_size=64, ddp_size=96, micro_batch=3, fold="on"),
)

#: Everything in ``BENCH_obs.json``: the paper-model matrix plus the
#: frontier-scale points.  This is the ``run_matrix`` default so a
#: ``require_all`` comparison against the committed baseline always
#: has every case to compare.
FULL_MATRIX: tuple[BenchCase, ...] = DEFAULT_MATRIX + FRONTIER_MATRIX


@dataclass
class BenchRecord:
    """Trace-derived measurements for one case."""

    case: BenchCase
    step_time_s: float
    time_per_obs_s: float
    exposed_comm_fraction: float
    peak_memory_bytes: int
    bound_resource: str
    spans: int

    def as_dict(self) -> dict:
        from repro.runtime import policy_field_names

        out = asdict(self.case)
        # Selection / policy fields that would churn the committed
        # baseline document; the matrix pins them to the defaults.  The
        # policy set comes from RunSpec field metadata, so a new knob
        # added there is excluded here automatically.
        for transient in sorted({"quick"} | (policy_field_names() & out.keys())):
            out.pop(transient)
        out.update(
            step_time_s=self.step_time_s,
            time_per_obs_s=self.time_per_obs_s,
            exposed_comm_fraction=self.exposed_comm_fraction,
            peak_memory_bytes=self.peak_memory_bytes,
            bound_resource=self.bound_resource,
            spans=self.spans,
        )
        return out


def run_case(case: BenchCase, config=None, tracer=None,
             monitor=None) -> BenchRecord:
    """One traced meta-mode step of ``case``; measurements from the trace.

    ``config`` overrides the ``PAPER_MODELS[case.model]`` lookup — the
    tuner's validation stage passes its own :class:`OrbitConfig` here.
    Passing a ``tracer`` lets the caller keep the span stream (the
    tuner's winner explanation re-analyzes it).  Passing a ``monitor``
    (a :class:`~repro.obs.monitor.RunMonitor`) additionally captures
    the per-step timeseries — telemetry reads the ledgers without
    writing them, so the measurements are bitwise unaffected.
    """
    from repro.obs import analysis
    from repro.obs.critical_path import analyze_trace
    from repro.runtime import RunSpec, Session, StepLoop

    spec = RunSpec.from_case(case, config=config)
    session = Session(spec, tracer=tracer, monitor=monitor)
    StepLoop(session.meta_step, hooks=session.loop_hooks()).run(1)

    tracer = session.tracer
    decomposition = analyze_trace(tracer)
    step_time = decomposition.critical_path_s
    record = BenchRecord(
        case=case,
        step_time_s=step_time,
        time_per_obs_s=step_time / case.observations,
        exposed_comm_fraction=analysis.exposed_comm_ratio(tracer.spans),
        peak_memory_bytes=session.peak_memory_bytes(),
        bound_resource=decomposition.bound_resource,
        spans=len(tracer.spans),
    )
    _LOG.info(
        "bench %s: step %.6f s, %s-bound, exposed-comm %.3f, peak %.2f GiB",
        case.name, record.step_time_s, record.bound_resource,
        record.exposed_comm_fraction, record.peak_memory_bytes / 2**30,
    )
    return record


def run_matrix(
    cases: Sequence[BenchCase] = FULL_MATRIX,
    quick: bool = False,
    timeseries_dir=None,
) -> list[BenchRecord]:
    """Run the matrix (or its ``quick`` subset).

    ``timeseries_dir`` persists one monitored timeseries artifact per
    case (``<dir>/<case>_timeseries.jsonl``) alongside whatever bench
    document the caller writes — the raw per-step telemetry behind the
    headline numbers.  Monitoring reads the ledgers without writing
    them, so the records are bitwise identical either way.
    """
    selected = [c for c in cases if c.quick] if quick else list(cases)
    if not selected:
        raise ValueError("bench matrix selection is empty")
    if timeseries_dir is None:
        return [run_case(case) for case in selected]
    from repro.obs.monitor import RunMonitor

    timeseries_dir = Path(timeseries_dir)
    timeseries_dir.mkdir(parents=True, exist_ok=True)
    records = []
    for case in selected:
        monitor = RunMonitor()
        records.append(run_case(case, monitor=monitor))
        monitor.store.write_jsonl(
            timeseries_dir / f"{case.name}_timeseries.jsonl"
        )
    return records


def scaling_efficiencies(records: Iterable[BenchRecord]) -> dict[str, dict]:
    """Per-model strong-scaling efficiency vs the smallest-GPU point.

    The series tracks the Fig 4-style 3D placement as the GPU count
    grows; a pipelined (``pp_size > 1``) case is a different
    configuration at the same scale — it would collide with the 3D
    case's GPU-count key — so it stays a standalone regression anchor
    and is excluded here.
    """
    from repro.perf.metrics import scaling_efficiency

    by_model: dict[str, list[BenchRecord]] = {}
    for record in records:
        if record.case.pp_size > 1:
            continue
        by_model.setdefault(record.case.model, []).append(record)
    out: dict[str, dict] = {}
    for model, model_records in sorted(by_model.items()):
        model_records.sort(key=lambda r: r.case.num_gpus)
        base = model_records[0]
        points = {
            str(record.case.num_gpus): scaling_efficiency(
                base.case.num_gpus, base.time_per_obs_s,
                record.case.num_gpus, record.time_per_obs_s,
            )
            for record in model_records
        }
        out[model] = {"baseline_gpus": base.case.num_gpus, "points": points}
    return out


# -- baseline files ----------------------------------------------------------
def to_document(records: Sequence[BenchRecord]) -> dict:
    """The ``BENCH_obs.json`` document for a set of records."""
    return {
        "schema": SCHEMA_VERSION,
        "tolerance": DEFAULT_TOLERANCE,
        "cases": {record.case.name: record.as_dict() for record in records},
        "efficiency": scaling_efficiencies(records),
    }


def write_baseline(records: Sequence[BenchRecord], path) -> Path:
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_document(records), indent=1, sort_keys=True) + "\n")
    return path


def load_baseline(path) -> dict:
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"baseline {path} has schema {doc.get('schema')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    return doc


def compare(
    current: dict,
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    require_all: bool = True,
) -> list[str]:
    """Drift messages between two bench documents (empty = gate passes).

    Relative drift beyond ``tolerance`` on step time or peak memory,
    and absolute drift beyond ``tolerance`` on the ratio metrics
    (efficiency, exposed-comm fraction), is a regression *or* an
    unacknowledged improvement — either way the committed baseline no
    longer describes the system, so the gate fails until it is
    regenerated (``repro bench --out BENCH_obs.json``).
    """
    problems: list[str] = []

    def rel(cur: float, base: float) -> float:
        if base == 0.0:
            return math.inf if cur else 0.0
        return abs(cur - base) / abs(base)

    for name, base_case in sorted(baseline.get("cases", {}).items()):
        cur_case = current.get("cases", {}).get(name)
        if cur_case is None:
            if require_all:
                problems.append(f"{name}: missing from current run")
            continue
        for metric in ("step_time_s", "peak_memory_bytes"):
            drift = rel(cur_case[metric], base_case[metric])
            if drift > tolerance:
                problems.append(
                    f"{name}: {metric} drifted {drift:.1%} "
                    f"({base_case[metric]:.6g} -> {cur_case[metric]:.6g})"
                )
        drift = abs(
            cur_case["exposed_comm_fraction"] - base_case["exposed_comm_fraction"]
        )
        if drift > tolerance:
            problems.append(
                f"{name}: exposed_comm_fraction drifted {drift:.3f} "
                f"({base_case['exposed_comm_fraction']:.4f} -> "
                f"{cur_case['exposed_comm_fraction']:.4f})"
            )

    for model, base_eff in sorted(baseline.get("efficiency", {}).items()):
        cur_eff = current.get("efficiency", {}).get(model)
        if cur_eff is None:
            if require_all:
                problems.append(f"efficiency[{model}]: missing from current run")
            continue
        for gpus, base_value in sorted(base_eff["points"].items()):
            cur_value = cur_eff["points"].get(gpus)
            if cur_value is None:
                if require_all:
                    problems.append(f"efficiency[{model}][{gpus}]: missing point")
                continue
            drift = abs(cur_value - base_value)
            if drift > tolerance:
                problems.append(
                    f"efficiency[{model}][{gpus} GPUs] drifted {drift:.3f} "
                    f"({base_value:.4f} -> {cur_value:.4f})"
                )
    return problems


def summary_table(doc: dict) -> str:
    """Paper-style text table of a bench document."""
    from repro.experiments.common import format_table

    rows = []
    for name, case in sorted(doc["cases"].items()):
        model = case["model"]
        eff = None
        if case.get("pp_size", 1) == 1:  # pipelined cases sit outside the series
            eff = doc["efficiency"].get(model, {}).get("points", {}).get(
                str(case["num_gpus"])
            )
        rows.append(
            [
                name,
                case["num_gpus"],
                f"{case['step_time_s']:.6f}",
                f"{case['time_per_obs_s']:.6f}",
                f"{eff:.0%}" if eff is not None else "-",
                f"{case['exposed_comm_fraction']:.3f}",
                f"{case['peak_memory_bytes'] / 2**30:.2f} GiB",
                case["bound_resource"],
            ]
        )
    return format_table(
        ["case", "GPUs", "step_s", "s/obs", "E", "exp-comm", "peak mem", "bound"],
        rows,
        title="repro bench: trace-derived performance matrix",
    )

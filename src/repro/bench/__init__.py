"""Performance-regression harness (``repro bench``).

Trace-derived step time, scaling efficiency, exposed-comm fraction and
peak memory for a fixed matrix of simulated ORBIT configurations, with
a JSON baseline (``BENCH_obs.json``) and a CI tolerance gate.
"""

from repro.bench.harness import (
    DEFAULT_MATRIX,
    DEFAULT_TOLERANCE,
    FRONTIER_MATRIX,
    FULL_MATRIX,
    BenchCase,
    BenchRecord,
    compare,
    load_baseline,
    run_case,
    run_matrix,
    scaling_efficiencies,
    summary_table,
    to_document,
    write_baseline,
)

__all__ = [
    "DEFAULT_MATRIX",
    "DEFAULT_TOLERANCE",
    "FRONTIER_MATRIX",
    "FULL_MATRIX",
    "BenchCase",
    "BenchRecord",
    "compare",
    "load_baseline",
    "run_case",
    "run_matrix",
    "scaling_efficiencies",
    "summary_table",
    "to_document",
    "write_baseline",
]

"""Lead-time forecast evaluation over a test year (the Fig 9 harness)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.climatology import Climatology
from repro.data.dataset import ClimateDataset
from repro.eval.metrics import latitude_weighted_acc, latitude_weighted_rmse


@dataclass
class LeadTimeScores:
    """Per-variable wACC / wRMSE at one lead time."""

    lead_steps: int
    wacc: dict[str, float] = field(default_factory=dict)
    wrmse: dict[str, float] = field(default_factory=dict)

    @property
    def lead_days(self) -> float:
        return self.lead_steps / 4.0

    def mean_wacc(self) -> float:
        return float(np.mean(list(self.wacc.values())))


class ForecastEvaluator:
    """Evaluate forecasters over evenly spaced initializations.

    Mirrors the paper's protocol: predictions over the test year
    (2020), scored per variable with latitude-weighted ACC against the
    climatology (Sec IV / Fig 9).
    """

    def __init__(
        self,
        test_dataset: ClimateDataset,
        climatology: Climatology,
        num_initializations: int = 8,
    ):
        if num_initializations < 1:
            raise ValueError("need at least one initialization")
        self.dataset = test_dataset
        self.climatology = climatology
        self.num_initializations = num_initializations
        self.lat_weights = test_dataset.system.grid.latitude_weights()

    def _init_indices(self, lead_steps: int) -> np.ndarray:
        max_index = self.dataset.max_input_index(lead_steps)
        count = min(self.num_initializations, max_index + 1)
        return np.linspace(0, max_index, count, dtype=int)

    def _verification_day(self, index: int) -> float | None:
        """Day-of-year of the verification time (None when unavailable)."""
        if self.climatology.num_bins == 1:
            return None
        day_fn = getattr(self.dataset.system, "day_of_year", None)
        if day_fn is None:
            return None
        return float(day_fn(self.dataset.absolute_step(index)))

    def evaluate(self, forecaster, lead_steps: int) -> LeadTimeScores:
        """Score one forecaster at one lead time.

        With a seasonal climatology, anomalies are taken against the
        verification date's day-of-year bin (the WeatherBench protocol).
        """
        names = self.dataset.out_names
        acc_sums = {n: 0.0 for n in names}
        rmse_sums = {n: 0.0 for n in names}
        indices = self._init_indices(lead_steps)
        for index in indices:
            prediction = forecaster.forecast(self.dataset, int(index), lead_steps)
            truth = self.dataset.target(int(index) + lead_steps)
            day = self._verification_day(int(index) + lead_steps)
            for c, name in enumerate(names):
                acc_sums[name] += latitude_weighted_acc(
                    prediction[c], truth[c], self.climatology.field(name, day),
                    self.lat_weights,
                )
                rmse_sums[name] += latitude_weighted_rmse(
                    prediction[c], truth[c], self.lat_weights
                )
        n = len(indices)
        return LeadTimeScores(
            lead_steps=lead_steps,
            wacc={name: acc_sums[name] / n for name in names},
            wrmse={name: rmse_sums[name] / n for name in names},
        )

    def evaluate_many(self, forecasters: dict, lead_steps_list) -> dict:
        """Nested results: ``{forecaster_name: {lead_steps: LeadTimeScores}}``."""
        return {
            name: {lead: self.evaluate(fc, lead) for lead in lead_steps_list}
            for name, fc in forecasters.items()
        }

"""Autoregressive rollout forecasting.

ClimaX-family models can reach long leads two ways: direct prediction
with a lead-time embedding (what the paper fine-tunes), or rolling a
short-lead model forward autoregressively (the FourCastNet protocol).
:class:`RolloutForecaster` implements the latter so both protocols can
be compared on the same trained model.

A rollout needs the model to predict *all* of its input channels (the
output feeds back as the next input); static channels are carried over
from the initial condition.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import ClimateDataset
from repro.data.normalization import Normalizer
from repro.data.synthetic import HOURS_PER_STEP


class RolloutForecaster:
    """Iteratively apply a one-step model to reach longer leads.

    Parameters
    ----------
    model:
        A model mapping all channels to all channels (``out_vars ==
        in_vars``), trained at ``base_lead_steps``.
    normalizer:
        Channel statistics for the model's normalized space.
    base_lead_steps:
        The lead (in 6-hour steps) of one model application.
    """

    def __init__(
        self,
        model,
        normalizer: Normalizer,
        base_lead_steps: int = 1,
        name: str = "rollout",
    ):
        if base_lead_steps < 1:
            raise ValueError("base_lead_steps must be positive")
        self.model = model
        self.normalizer = normalizer
        self.base_lead_steps = base_lead_steps
        self.name = name

    def forecast(self, dataset: ClimateDataset, index: int, lead_steps: int) -> np.ndarray:
        """Roll the model forward to ``lead_steps`` and return the targets."""
        if lead_steps % self.base_lead_steps:
            raise ValueError(
                f"lead {lead_steps} not a multiple of the rollout step "
                f"{self.base_lead_steps}"
            )
        registry = dataset.registry
        static = registry.static_indices
        state = self.normalizer.normalize(dataset.snapshot(index))
        lead_hours = np.asarray([self.base_lead_steps * HOURS_PER_STEP], np.float32)
        for _ in range(lead_steps // self.base_lead_steps):
            prediction = self.model(state[None].astype(np.float32), lead_hours)[0]
            self.model.clear_cache()
            if prediction.shape != state.shape:
                raise ValueError(
                    "rollout needs a model predicting all input channels: "
                    f"got {prediction.shape}, state is {state.shape}"
                )
            # Static channels (orography etc.) never change.
            prediction[static] = state[static]
            state = prediction
        denorm = self.normalizer.denormalize(state)
        out_indices = registry.indices(dataset.out_names)
        return denorm[out_indices]

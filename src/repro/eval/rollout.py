"""Autoregressive rollout forecasting.

ClimaX-family models can reach long leads two ways: direct prediction
with a lead-time embedding (what the paper fine-tunes), or rolling a
short-lead model forward autoregressively (the FourCastNet protocol).
:class:`RolloutForecaster` implements the latter so both protocols can
be compared on the same trained model.

A rollout needs the model to predict *all* of its input channels (the
output feeds back as the next input); static channels are carried over
from the initial condition.

The rollout is exposed **incrementally**: :meth:`~RolloutForecaster.
iter_states` yields the normalized state after each base-lead model
application, so a consumer that wants many leads from the same
initialization (the serving layer's rollout prefix cache,
:mod:`repro.serve.cache`) pays for each autoregressive step exactly
once.  :meth:`~RolloutForecaster.forecast` is a thin loop over the same
iterator, so the chain of float operations — and therefore the result —
is bitwise identical whichever door a lead is computed through.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.dataset import ClimateDataset
from repro.data.normalization import Normalizer
from repro.data.synthetic import HOURS_PER_STEP


class RolloutForecaster:
    """Iteratively apply a one-step model to reach longer leads.

    Parameters
    ----------
    model:
        A model mapping all channels to all channels (``out_vars ==
        in_vars``), trained at ``base_lead_steps``.
    normalizer:
        Channel statistics for the model's normalized space.
    base_lead_steps:
        The lead (in 6-hour steps) of one model application.
    """

    def __init__(
        self,
        model,
        normalizer: Normalizer,
        base_lead_steps: int = 1,
        name: str = "rollout",
    ):
        if base_lead_steps < 1:
            raise ValueError("base_lead_steps must be positive")
        self.model = model
        self.normalizer = normalizer
        self.base_lead_steps = base_lead_steps
        self.name = name

    # -- incremental interface ------------------------------------------------
    def initial_state(self, dataset: ClimateDataset, index: int) -> np.ndarray:
        """The normalized initial condition (state after zero steps)."""
        return self.normalizer.normalize(dataset.snapshot(index))

    def advance(self, state: np.ndarray, static_indices) -> np.ndarray:
        """One base-lead model application; returns a *fresh* array.

        The model's returned buffer is never written: static channels
        (orography etc.) are pinned on a copy, so a model that hands
        back a cached or shared array keeps it intact.
        """
        lead_hours = np.asarray([self.base_lead_steps * HOURS_PER_STEP], np.float32)
        prediction = self.model(state[None].astype(np.float32), lead_hours)[0]
        clear_cache = getattr(self.model, "clear_cache", None)
        if clear_cache is not None:
            clear_cache()
        if prediction.shape != state.shape:
            raise ValueError(
                "rollout needs a model predicting all input channels: "
                f"got {prediction.shape}, state is {state.shape}"
            )
        prediction = np.array(prediction)
        prediction[static_indices] = state[static_indices]
        return prediction

    def iter_states(
        self, dataset: ClimateDataset, index: int
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(k, state)`` after ``k`` base-lead applications.

        ``k`` runs 1, 2, 3, ... without bound — the consumer stops
        iterating at the lead it needs.  Each yielded state is the
        normalized all-channel field at lead ``k * base_lead_steps``.
        """
        static = dataset.registry.static_indices
        state = self.initial_state(dataset, index)
        k = 0
        while True:
            state = self.advance(state, static)
            k += 1
            yield k, state

    def finalize(
        self, state: np.ndarray, dataset: ClimateDataset,
        out_names: list[str] | None = None,
    ) -> np.ndarray:
        """Denormalize a rollout state and select the output channels."""
        denorm = self.normalizer.denormalize(state)
        names = dataset.out_names if out_names is None else list(out_names)
        return denorm[dataset.registry.indices(names)]

    # -- the classic one-shot interface ---------------------------------------
    def forecast(self, dataset: ClimateDataset, index: int, lead_steps: int) -> np.ndarray:
        """Roll the model forward to ``lead_steps`` and return the targets."""
        if lead_steps % self.base_lead_steps:
            raise ValueError(
                f"lead {lead_steps} not a multiple of the rollout step "
                f"{self.base_lead_steps}"
            )
        applications = lead_steps // self.base_lead_steps
        if applications == 0:
            return self.finalize(self.initial_state(dataset, index), dataset)
        for k, state in self.iter_states(dataset, index):
            if k == applications:
                return self.finalize(state, dataset)
        raise AssertionError("unreachable: iter_states is unbounded")

"""Evaluation: wACC/wRMSE metrics, forecast harness, baselines."""

from repro.eval.baselines import (
    ClimatologyForecaster,
    FFTFilterForecaster,
    ModelForecaster,
    NumericalSurrogateForecaster,
    PersistenceForecaster,
)
from repro.eval.forecast import ForecastEvaluator, LeadTimeScores
from repro.eval.metrics import latitude_weighted_acc, latitude_weighted_rmse
from repro.eval.reference import PUBLISHED_WACC
from repro.eval.rollout import RolloutForecaster

__all__ = [
    "ClimatologyForecaster",
    "FFTFilterForecaster",
    "ForecastEvaluator",
    "LeadTimeScores",
    "ModelForecaster",
    "NumericalSurrogateForecaster",
    "PersistenceForecaster",
    "PUBLISHED_WACC",
    "RolloutForecaster",
    "latitude_weighted_acc",
    "latitude_weighted_rmse",
]

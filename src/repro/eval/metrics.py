"""Latitude-weighted forecast metrics (paper Sec IV).

wACC — the headline metric of Fig 9 — is the Pearson correlation of
*anomalies with respect to the climatology*, weighted by latitude:
+1 is a perfect forecast, 0 is indistinguishable from climatology,
negative values anti-correlate.
"""

from __future__ import annotations

import numpy as np


def _checked_weights(field_shape, lat_weights) -> np.ndarray:
    weights = np.broadcast_to(lat_weights, field_shape[-2:])
    return weights


def latitude_weighted_acc(
    prediction: np.ndarray,
    truth: np.ndarray,
    climatology: np.ndarray,
    lat_weights: np.ndarray,
) -> float:
    """wACC of one ``(H, W)`` field (or batch-mean over leading axes).

    Anomalies are taken against ``climatology``; the spatial mean
    anomaly is removed (centered ACC, the WeatherBench convention).
    """
    if prediction.shape != truth.shape:
        raise ValueError(f"shape mismatch: {prediction.shape} vs {truth.shape}")
    weights = _checked_weights(prediction.shape, lat_weights)
    pred_anom = prediction.astype(np.float64) - climatology
    true_anom = truth.astype(np.float64) - climatology
    axes = (-2, -1)
    w_mean = weights.mean()
    pred_anom = pred_anom - (weights * pred_anom).mean(axis=axes, keepdims=True) / w_mean
    true_anom = true_anom - (weights * true_anom).mean(axis=axes, keepdims=True) / w_mean
    num = (weights * pred_anom * true_anom).sum(axis=axes)
    den = np.sqrt(
        (weights * pred_anom**2).sum(axis=axes) * (weights * true_anom**2).sum(axis=axes)
    )
    acc = num / np.maximum(den, 1e-12)
    return float(np.mean(acc))


def latitude_weighted_rmse(
    prediction: np.ndarray,
    truth: np.ndarray,
    lat_weights: np.ndarray,
) -> float:
    """Latitude-weighted RMSE of one field (or batch mean)."""
    if prediction.shape != truth.shape:
        raise ValueError(f"shape mismatch: {prediction.shape} vs {truth.shape}")
    weights = _checked_weights(prediction.shape, lat_weights)
    sq = weights * (prediction.astype(np.float64) - truth.astype(np.float64)) ** 2
    return float(np.sqrt(sq.mean(axis=(-2, -1))).mean())

"""Forecast baselines for the Fig 9 comparison.

Every forecaster implements ``forecast(dataset, index, lead_steps) ->
(C_out, H, W)``.  The comparator roles map to the paper's panel:

================================  ===========================================
paper comparator                  stand-in here
================================  ===========================================
IFS (ECMWF numerical model)       :class:`NumericalSurrogateForecaster` —
                                  integrates the synthetic world's own
                                  dynamics with perturbed parameters
FourCastNet (task-specific AI)    :class:`FFTFilterForecaster` — a tuned
                                  spectral damping/advection operator, i.e.
                                  a minimal Fourier operator model
ClimaX / Stormer / ORBIT          :class:`ModelForecaster` over trained
                                  ViTs (with/without pre-training, QK-LN)
trivial references                :class:`PersistenceForecaster`,
                                  :class:`ClimatologyForecaster`
================================  ===========================================
"""

from __future__ import annotations

import numpy as np

from repro.data.climatology import Climatology
from repro.data.dataset import ClimateDataset
from repro.data.normalization import Normalizer
from repro.data.synthetic import HOURS_PER_STEP


class PersistenceForecaster:
    """Tomorrow looks like today: the input state is the forecast."""

    name = "persistence"

    def forecast(self, dataset: ClimateDataset, index: int, lead_steps: int) -> np.ndarray:
        return dataset.target(index)


class ClimatologyForecaster:
    """Forecast the climatology (wACC exactly 0 by construction)."""

    name = "climatology"

    def __init__(self, climatology: Climatology):
        self.climatology = climatology

    def forecast(self, dataset: ClimateDataset, index: int, lead_steps: int) -> np.ndarray:
        return self.climatology.mean_fields.astype(np.float32)


class NumericalSurrogateForecaster:
    """The IFS stand-in: imperfect-physics integration of the true dynamics."""

    name = "numerical (IFS-like)"

    def __init__(self, persistence_error: float = 0.005, advection_error: float = 0.05):
        self.persistence_error = persistence_error
        self.advection_error = advection_error

    def forecast(self, dataset: ClimateDataset, index: int, lead_steps: int) -> np.ndarray:
        return dataset.system.numerical_forecast(
            dataset.absolute_step(index),
            lead_steps,
            persistence_error=self.persistence_error,
            advection_error=self.advection_error,
            names=dataset.out_names,
        )


class FFTFilterForecaster:
    """FourCastNet-like spectral operator fitted on training data.

    Learns, per output variable and zonal wavenumber, the complex
    multiplier that best maps today's anomaly spectrum to the
    ``lead``-step-ahead spectrum (least squares over training pairs) —
    the essence of a Fourier-operator forecast model at minimal size.
    """

    name = "spectral operator (FourCastNet-like)"

    def __init__(self, train_dataset: ClimateDataset, climatology: Climatology,
                 num_fit_samples: int = 24):
        self.climatology = climatology
        self.train_dataset = train_dataset
        self.num_fit_samples = num_fit_samples
        self._operators: dict[int, np.ndarray] = {}

    def _anomaly(self, dataset: ClimateDataset, index: int) -> np.ndarray:
        return dataset.target(index).astype(np.float64) - self.climatology.mean_fields

    def _fit(self, lead_steps: int) -> np.ndarray:
        ds = self.train_dataset
        max_index = ds.max_input_index(lead_steps)
        indices = np.linspace(0, max_index, min(self.num_fit_samples, max_index + 1), dtype=int)
        num = None
        den = None
        for index in indices:
            x = np.fft.rfft(self._anomaly(ds, int(index)), axis=-1)
            y = np.fft.rfft(self._anomaly(ds, int(index) + lead_steps), axis=-1)
            contrib_num = (np.conj(x) * y).sum(axis=-2)  # sum over latitude
            contrib_den = (np.conj(x) * x).sum(axis=-2).real
            num = contrib_num if num is None else num + contrib_num
            den = contrib_den if den is None else den + contrib_den
        return num / np.maximum(den, 1e-9)

    def forecast(self, dataset: ClimateDataset, index: int, lead_steps: int) -> np.ndarray:
        if lead_steps not in self._operators:
            self._operators[lead_steps] = self._fit(lead_steps)
        operator = self._operators[lead_steps]  # (C, nfreq)
        x = np.fft.rfft(self._anomaly(dataset, index), axis=-1)
        y = x * operator[:, None, :]
        anomaly = np.fft.irfft(y, n=dataset.system.grid.nlon, axis=-1)
        return (anomaly + self.climatology.mean_fields).astype(np.float32)


class ModelForecaster:
    """Wrap a trained ViT (ORBIT/ClimaX/Stormer-like) as a forecaster."""

    def __init__(self, model, normalizer: Normalizer, name: str = "model"):
        self.model = model
        self.normalizer = normalizer
        self.name = name

    def forecast(self, dataset: ClimateDataset, index: int, lead_steps: int) -> np.ndarray:
        x = self.normalizer.normalize(dataset.snapshot(index))[None]
        lead = np.asarray([lead_steps * HOURS_PER_STEP], dtype=np.float32)
        pred = self.model(x.astype(np.float32), lead)[0]
        self.model.clear_cache()
        return self.normalizer.denormalize(pred, names=dataset.out_names)

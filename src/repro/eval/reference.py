"""Published wACC scores used for documentation-level comparison.

Values read from paper Fig 9 (which itself aggregates the ClimaX,
Stormer, and FourCastNet papers).  They describe performance on *real*
ERA5 at the papers' resolutions and are **not** comparable numerically
to scores on the synthetic world — the benchmark prints them alongside
measured values so the *shape* (ranking by lead time) can be checked,
as DESIGN.md explains.

Keys: ``PUBLISHED_WACC[model][variable][lead_days]``.  ``None`` marks
combinations the original systems do not provide (Stormer stops at 14
days; FourCastNet and IFS at short range only).
"""

from __future__ import annotations

PUBLISHED_WACC: dict[str, dict[str, dict[int, float | None]]] = {
    "ORBIT-115M": {
        "geopotential_500": {1: 0.98, 14: 0.60, 30: 0.35},
        "temperature_850": {1: 0.97, 14: 0.62, 30: 0.40},
        "2m_temperature": {1: 0.97, 14: 0.68, 30: 0.48},
        "10m_u_component_of_wind": {1: 0.95, 14: 0.50, 30: 0.28},
    },
    "ClimaX": {
        "geopotential_500": {1: 0.98, 14: 0.55, 30: 0.33},
        "temperature_850": {1: 0.97, 14: 0.58, 30: 0.38},
        "2m_temperature": {1: 0.96, 14: 0.62, 30: 0.45},
        "10m_u_component_of_wind": {1: 0.94, 14: 0.45, 30: 0.26},
    },
    "Stormer": {
        "geopotential_500": {1: 0.99, 14: 0.35, 30: None},
        "temperature_850": {1: 0.97, 14: 0.30, 30: None},
        "2m_temperature": {1: 0.97, 14: 0.40, 30: None},
        "10m_u_component_of_wind": {1: 0.96, 14: 0.25, 30: None},
    },
    "FourCastNet": {
        "geopotential_500": {1: 0.99, 14: None, 30: None},
        "temperature_850": {1: 0.97, 14: None, 30: None},
        "2m_temperature": {1: 0.96, 14: None, 30: None},
        "10m_u_component_of_wind": {1: 0.95, 14: None, 30: None},
    },
    "IFS": {
        "geopotential_500": {1: 0.99, 14: 0.42, 30: None},
        "temperature_850": {1: 0.98, 14: 0.45, 30: None},
        "2m_temperature": {1: 0.98, 14: 0.50, 30: None},
        "10m_u_component_of_wind": {1: 0.97, 14: 0.35, 30: None},
    },
}

#: Paper-claimed relative improvements (Sec V-F).
PAPER_CLAIMS = {
    "14d_vs_ifs_max_improvement": 0.52,
    "14d_vs_stormer_max_improvement": 1.66,
    "30d_vs_climax_max_improvement": 0.09,
}

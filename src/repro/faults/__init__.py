"""Deterministic fault injection and self-healing supervision.

The failure half of the simulated Hybrid-STOP stack — the part a real
30-day Frontier pre-training run spends a material fraction of its
walltime on:

* :mod:`repro.faults.plan` — a seeded, step/event-indexed
  :class:`~repro.faults.plan.FaultPlan` naming exactly which rank
  fails how and when (JSON round-trippable, so a failure scenario is
  an artifact);
* :mod:`repro.faults.injector` — the
  :class:`~repro.faults.injector.FaultInjector` attached to the
  cluster timeline, firing each injection exactly once at the named
  compute or collective event;
* :mod:`repro.faults.supervisor` — the
  :class:`~repro.faults.supervisor.Supervisor`: retry transients with
  backoff, rollback-restart crashes from sharded checkpoints
  (bitwise), elastically regroup after permanent node loss;
* :mod:`repro.faults.goodput` — the
  :class:`~repro.faults.goodput.GoodputLedger` charging every
  recovery path, plus the Young/Daly analytic model behind
  ``repro bench --mtbf``;
* :mod:`repro.faults.report` — the
  :class:`~repro.faults.report.RecoveryReport` the CLI prints and CI
  archives;
* :mod:`repro.faults.degradation` — non-crash degradations
  (:class:`~repro.faults.degradation.SkewedCompute` stragglers),
  promoted here from ``repro.parallel.compute``.
"""

from repro.faults.degradation import SkewedCompute, seeded_skew_profile
from repro.faults.errors import (
    CollectiveTimeoutError,
    ElasticRecoveryError,
    FatalFaultError,
    FaultError,
    GpuCrashError,
    NodeLossError,
    TransientFaultError,
)
from repro.faults.goodput import (
    GoodputLedger,
    bench_goodput,
    expected_goodput_fraction,
    goodput_table,
    recommend_checkpoint_interval,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    DEGRADATION_KINDS,
    FATAL_KINDS,
    NUMERICAL_KINDS,
    PLAN_SCHEMA,
    TRANSIENT_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    classify,
)
from repro.faults.report import REPORT_SCHEMA, RecoveryEvent, RecoveryReport
from repro.faults.supervisor import Supervisor, run_supervised

__all__ = [
    "DEGRADATION_KINDS",
    "FATAL_KINDS",
    "NUMERICAL_KINDS",
    "PLAN_SCHEMA",
    "REPORT_SCHEMA",
    "TRANSIENT_KINDS",
    "CollectiveTimeoutError",
    "ElasticRecoveryError",
    "FatalFaultError",
    "FaultError",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "GoodputLedger",
    "GpuCrashError",
    "NodeLossError",
    "RecoveryEvent",
    "RecoveryReport",
    "SkewedCompute",
    "Supervisor",
    "TransientFaultError",
    "bench_goodput",
    "classify",
    "expected_goodput_fraction",
    "goodput_table",
    "recommend_checkpoint_interval",
    "run_supervised",
    "seeded_skew_profile",
]

"""Goodput accounting: what recovery actually costs.

*Throughput* is observations per second of busy time; *goodput* is
observations per second of total walltime, where the total includes
every second recovery burned.  The :class:`GoodputLedger` charges each
recovery path of the supervisor to its own bucket:

``retry``
    Wasted attempt time plus exponential-backoff delays plus the
    timeout-detection window, for transient faults retried in place.
``rollback``
    Committed-but-uncheckpointed step time lost at a crash, plus the
    partial attempt that died, plus the re-execution of those steps.
    (Re-executed steps count as useful when they commit again — the
    *original* executions are the ones the crash destroyed.)
``restart``
    Fixed restart latency per incarnation (scheduler requeue, process
    spawn, checkpoint load).
``skipped``
    Steps whose update the grad scaler rejected (NaN/inf gradients):
    full step cost, zero useful progress.
``checkpoint``
    Time spent writing checkpoints — the insurance premium.
``degraded``
    Opt-in (the Supervisor's ``degradation_aware`` mode): the *excess*
    seconds a step spent over the run's own clean-step baseline while a
    straggler / link-degradation window was active.  The step still
    commits — only the slowdown surcharge is charged here.
``replan``
    Mid-run plan-migration time (pre-migration checkpoint, session
    rebuild, warm-up).  Neither useful work nor a rollback: the run
    keeps every committed step, but the walltime is gone — so it is its
    own term of the total-time identity, next to ``checkpoint_s``.

The analytic side (:func:`expected_goodput_fraction`,
:func:`recommend_checkpoint_interval`) is the classic Young/Daly
first-order model, which ``repro bench --mtbf`` and the tuner's
recovery-aware checkpoint-interval recommendation both use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class GoodputLedger:
    """Simulated-walltime charges, bucketed by recovery path."""

    useful_s: float = 0.0
    lost_retry_s: float = 0.0
    lost_rollback_s: float = 0.0
    lost_restart_s: float = 0.0
    lost_skipped_s: float = 0.0
    lost_degraded_s: float = 0.0
    checkpoint_s: float = 0.0
    replan_s: float = 0.0
    skipped_steps: int = 0
    retries: int = 0
    restarts: int = 0
    regroups: int = 0
    checkpoints: int = 0
    replans: int = 0
    #: ``(step, useful_seconds)`` committed since the last durable
    #: checkpoint — the work a crash would destroy.
    _window: list[tuple[int, float]] = field(default_factory=list)

    # -- charging ------------------------------------------------------------
    def commit_step(self, step: int, seconds: float, skipped: bool = False,
                    degraded_s: float = 0.0) -> None:
        """One completed step: useful, unless the update was skipped.

        ``degraded_s`` (degradation-aware accounting) is the slice of
        ``seconds`` attributed to an active straggler / link-degradation
        window rather than to useful work; it moves to the degraded
        bucket while the remainder stays useful.
        """
        if seconds < 0:
            raise ValueError("step seconds must be non-negative")
        if not 0.0 <= degraded_s <= seconds:
            raise ValueError("degraded_s must lie within the step seconds")
        if skipped:
            self.lost_skipped_s += seconds
            self.skipped_steps += 1
            self._window.append((step, 0.0))
        else:
            self.useful_s += seconds - degraded_s
            self.lost_degraded_s += degraded_s
            self._window.append((step, seconds - degraded_s))

    def checkpoint(self, seconds: float) -> None:
        """A durable checkpoint: charge its cost, seal the window."""
        self.checkpoint_s += seconds
        self.checkpoints += 1
        self._window.clear()

    def replan(self, seconds: float) -> None:
        """A plan migration: charge its cost, seal the window.

        The migration writes its own durable checkpoint (the bitwise
        resume point of the new plan), so — like :meth:`checkpoint` —
        nothing committed before the switch can be lost to a later
        crash.
        """
        if seconds < 0:
            raise ValueError("replan seconds must be non-negative")
        self.replan_s += seconds
        self.replans += 1
        self._window.clear()

    def retry(self, wasted_s: float, backoff_s: float = 0.0) -> None:
        """One failed attempt retried in place."""
        self.lost_retry_s += wasted_s + backoff_s
        self.retries += 1

    def rollback(self, attempt_s: float = 0.0) -> tuple[int, float]:
        """A crash: everything since the last checkpoint is lost.

        Moves the window's useful seconds to the rollback bucket (those
        steps will be re-executed) and charges the dead partial attempt.
        Returns ``(lost_steps, lost_seconds)`` for the recovery report.
        """
        lost_useful = sum(seconds for _, seconds in self._window)
        lost_steps = len(self._window)
        self.useful_s -= lost_useful
        self.lost_rollback_s += lost_useful + attempt_s
        self._window.clear()
        return lost_steps, lost_useful + attempt_s

    def restart(self, latency_s: float, elastic: bool = False) -> None:
        self.lost_restart_s += latency_s
        self.restarts += 1
        if elastic:
            self.regroups += 1

    # -- summaries -----------------------------------------------------------
    @property
    def lost_s(self) -> float:
        return (
            self.lost_retry_s
            + self.lost_rollback_s
            + self.lost_restart_s
            + self.lost_skipped_s
            + self.lost_degraded_s
        )

    @property
    def total_s(self) -> float:
        """Everything: useful + lost + checkpoint + replan overhead."""
        return self.useful_s + self.lost_s + self.checkpoint_s + self.replan_s

    @property
    def goodput_fraction(self) -> float:
        """Useful walltime over total walltime (1.0 for a clean run)."""
        total = self.total_s
        return self.useful_s / total if total > 0 else 1.0

    def bucket_fractions(self) -> dict:
        """Every bucket as a fraction of total walltime, gauge-named.

        ``goodput.fraction`` is the headline number (1.0 for a clean
        run, even before any step commits); the per-bucket fractions
        attribute the remainder.
        """
        total = self.total_s

        def frac(seconds: float) -> float:
            return seconds / total if total > 0 else 0.0

        fractions = {
            "goodput.fraction": self.goodput_fraction,
            "goodput.useful_fraction": frac(self.useful_s),
            "goodput.retry_fraction": frac(self.lost_retry_s),
            "goodput.rollback_fraction": frac(self.lost_rollback_s),
            "goodput.restart_fraction": frac(self.lost_restart_s),
            "goodput.skipped_fraction": frac(self.lost_skipped_s),
            "goodput.checkpoint_fraction": frac(self.checkpoint_s),
        }
        # Opt-in buckets appear only once charged, so default runs —
        # and their journal/timeseries bytes — are untouched.
        if self.lost_degraded_s:
            fractions["goodput.degraded_fraction"] = frac(self.lost_degraded_s)
        if self.replan_s:
            fractions["goodput.replan_fraction"] = frac(self.replan_s)
        return fractions

    def publish_gauges(self, metrics) -> dict:
        """Set every bucket fraction on a MetricsRegistry; returns them.

        Called once per committed step by the Supervisor, so goodput
        shows up in step reports and the monitor's timeseries without
        a separate code path.
        """
        fractions = self.bucket_fractions()
        for name, value in fractions.items():
            metrics.gauge(name).set(value)
        return fractions

    def as_dict(self) -> dict:
        return {
            "useful_s": self.useful_s,
            "lost_retry_s": self.lost_retry_s,
            "lost_rollback_s": self.lost_rollback_s,
            "lost_restart_s": self.lost_restart_s,
            "lost_skipped_s": self.lost_skipped_s,
            "lost_degraded_s": self.lost_degraded_s,
            "checkpoint_s": self.checkpoint_s,
            "replan_s": self.replan_s,
            "lost_s": self.lost_s,
            "total_s": self.total_s,
            "goodput_fraction": self.goodput_fraction,
            "skipped_steps": self.skipped_steps,
            "retries": self.retries,
            "restarts": self.restarts,
            "regroups": self.regroups,
            "checkpoints": self.checkpoints,
            "replans": self.replans,
        }


# -- analytic MTBF model (Young/Daly) ----------------------------------------
def recommend_checkpoint_interval(
    mtbf_s: float, checkpoint_cost_s: float, step_time_s: float | None = None
) -> float:
    """Young/Daly optimal seconds of work between checkpoints.

    ``T_opt = sqrt(2 * C * M)`` for checkpoint cost ``C`` and MTBF
    ``M`` (first-order; valid while ``C << M``).  When ``step_time_s``
    is given the interval is floored to one step, so the
    recommendation is always actionable as a ``checkpoint_every``.
    """
    if mtbf_s <= 0 or checkpoint_cost_s < 0:
        raise ValueError("mtbf_s must be positive and checkpoint_cost_s >= 0")
    interval = math.sqrt(2.0 * checkpoint_cost_s * mtbf_s)
    if step_time_s:
        interval = max(interval, step_time_s)
    return interval


def expected_goodput_fraction(
    mtbf_s: float,
    checkpoint_cost_s: float,
    restart_latency_s: float,
    checkpoint_interval_s: float,
) -> float:
    """First-order expected goodput under a Poisson failure model.

    Per useful second the run pays ``C/T`` in checkpoint overhead and,
    at rate ``1/M``, a failure costing the restart latency ``R`` plus
    on average half a checkpoint interval of lost work:

    ``goodput = 1 / (1 + C/T + (R + (T + C) / 2) / M)``
    """
    T, C, R, M = checkpoint_interval_s, checkpoint_cost_s, restart_latency_s, mtbf_s
    if T <= 0 or M <= 0 or C < 0 or R < 0:
        raise ValueError("interval and MTBF must be positive; costs non-negative")
    overhead = C / T + (R + (T + C) / 2.0) / M
    return 1.0 / (1.0 + overhead)


def bench_goodput(
    doc: dict,
    mtbf_s: float,
    checkpoint_cost_s: float = 30.0,
    restart_latency_s: float = 120.0,
) -> dict:
    """Expected goodput per bench case of a ``BENCH_obs.json`` document.

    For each case: the Young/Daly checkpoint interval, the expected
    goodput fraction, and goodput observations/s — which is *exactly*
    ``throughput * fraction``, so goodput trails raw throughput by
    precisely the charged overhead.
    """
    out = {}
    for name, case in sorted(doc.get("cases", {}).items()):
        step = case["step_time_s"]
        interval = recommend_checkpoint_interval(
            mtbf_s, checkpoint_cost_s, step_time_s=step
        )
        fraction = expected_goodput_fraction(
            mtbf_s, checkpoint_cost_s, restart_latency_s, interval
        )
        throughput = 1.0 / case["time_per_obs_s"]
        out[name] = {
            "mtbf_s": mtbf_s,
            "checkpoint_interval_s": interval,
            "checkpoint_every_steps": max(1, round(interval / step)),
            "goodput_fraction": fraction,
            "throughput_obs_per_s": throughput,
            "goodput_obs_per_s": throughput * fraction,
        }
    return out


def goodput_table(goodput: dict) -> str:
    """Paper-style text table of :func:`bench_goodput` output."""
    from repro.experiments.common import format_table

    rows = []
    for name, entry in sorted(goodput.items()):
        rows.append(
            [
                name,
                f"{entry['throughput_obs_per_s']:.1f}",
                f"{entry['goodput_obs_per_s']:.1f}",
                f"{entry['goodput_fraction']:.4f}",
                f"{entry['checkpoint_interval_s']:.1f}",
                entry["checkpoint_every_steps"],
            ]
        )
    return format_table(
        ["case", "obs/s", "goodput obs/s", "fraction", "ckpt interval s",
         "ckpt every"],
        rows,
        title=(
            f"goodput under MTBF {next(iter(goodput.values()))['mtbf_s']:.0f} s"
            if goodput
            else "goodput (no cases)"
        ),
    )

"""Recovery reports: what fired, what the supervisor did, what it cost.

The JSON form (``RecoveryReport.as_dict``) is the artifact the CI
fault-suite job uploads; the text form is what ``repro faults``
prints.  A report with a non-empty ``unrecovered`` list is a failed
run — the CLI maps that to a non-zero exit status.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.goodput import GoodputLedger
from repro.faults.plan import FaultSpec

#: Report format version.
REPORT_SCHEMA = 1


@dataclass(frozen=True)
class RecoveryEvent:
    """One supervisor reaction to one fired (or observed) fault."""

    step: int
    kind: str
    action: str  #: retry | rollback_restart | elastic_regroup | skip_step | observed | unrecovered
    rank: int | None = None
    attempts: int = 0
    lost_s: float = 0.0
    lost_steps: int = 0
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "step": self.step,
            "kind": self.kind,
            "action": self.action,
            "rank": self.rank,
            "attempts": self.attempts,
            "lost_s": self.lost_s,
            "lost_steps": self.lost_steps,
            "detail": self.detail,
        }


@dataclass
class RecoveryReport:
    """Everything a supervised run produced, failure-wise."""

    events: list[RecoveryEvent] = field(default_factory=list)
    ledger: GoodputLedger = field(default_factory=GoodputLedger)
    #: ``(observations_seen, loss)`` trajectory, as a plain list.
    history: list[tuple[int, float]] = field(default_factory=list)
    #: Faults that fired but could not be recovered from.
    unrecovered: list[str] = field(default_factory=list)
    #: Faults scheduled but never triggered (e.g. beyond the step budget).
    pending: list[FaultSpec] = field(default_factory=list)
    #: Faults dropped because their target rank was lost in a regroup.
    moot: list[FaultSpec] = field(default_factory=list)
    #: Final world shape (identity dict of the last RunSpec).
    final_spec: dict = field(default_factory=dict)
    steps_completed: int = 0

    @property
    def recovered(self) -> bool:
        return not self.unrecovered

    def as_dict(self) -> dict:
        return {
            "schema": REPORT_SCHEMA,
            "recovered": self.recovered,
            "steps_completed": self.steps_completed,
            "events": [event.as_dict() for event in self.events],
            "goodput": self.ledger.as_dict(),
            "unrecovered": list(self.unrecovered),
            "pending": [spec.as_dict() for spec in self.pending],
            "moot": [spec.as_dict() for spec in self.moot],
            "final_spec": dict(self.final_spec),
            "history": [[obs, loss] for obs, loss in self.history],
        }

    def render(self) -> str:
        """Human-readable recovery report."""
        led = self.ledger
        lines = [
            f"recovery report: {self.steps_completed} step(s) completed, "
            f"{len(self.events)} recovery event(s), "
            f"{'all recovered' if self.recovered else 'UNRECOVERED FAULTS'}"
        ]
        for event in self.events:
            extra = f", {event.attempts} attempt(s)" if event.attempts else ""
            extra += f", {event.lost_steps} step(s) re-run" if event.lost_steps else ""
            lines.append(
                f"  step {event.step:>4d}  {event.kind:<20s} -> {event.action}"
                f"  (lost {event.lost_s:.6f} s{extra})"
                + (f"  {event.detail}" if event.detail else "")
            )
        for message in self.unrecovered:
            lines.append(f"  UNRECOVERED: {message}")
        if self.pending:
            lines.append(f"  {len(self.pending)} scheduled fault(s) never fired")
        if self.moot:
            lines.append(
                f"  {len(self.moot)} fault(s) dropped with their lost ranks"
            )
        lines.append(
            "goodput: "
            f"{led.goodput_fraction:.4f} "
            f"(useful {led.useful_s:.6f} s / total {led.total_s:.6f} s; "
            f"retry {led.lost_retry_s:.6f} s, rollback {led.lost_rollback_s:.6f} s, "
            f"restart {led.lost_restart_s:.6f} s, skipped {led.lost_skipped_s:.6f} s, "
            f"checkpoints {led.checkpoint_s:.6f} s)"
        )
        return "\n".join(lines)

"""Deterministic, seeded fault schedules.

A :class:`FaultPlan` is a frozen list of :class:`FaultSpec` injections,
each pinned to a step index (and optionally to a named compute or
collective event within that step).  Because the simulated stack is
fully deterministic, a plan replayed against the same
:class:`~repro.runtime.spec.RunSpec` fires each fault at *exactly* the
same event every time — fault runs are test fixtures, the same way
traces are.

Plans serialize to JSON (``repro faults --plan plan.json``) and can be
generated from a seed (:meth:`FaultPlan.random`), so an MTBF-style
soak can be reproduced from ``(seed, world, steps)`` alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from enum import Enum
from pathlib import Path

#: Format version of the plan JSON document.
PLAN_SCHEMA = 1


class FaultKind(str, Enum):
    """Every injectable fault, mirroring Frontier's observed failure modes."""

    #: A collective stalls past its timeout once; a retry succeeds.
    COLLECTIVE_TIMEOUT = "collective_timeout"
    #: One GCD dies; the incarnation is lost but the world shape survives.
    GPU_CRASH = "gpu_crash"
    #: A whole node is permanently gone; the world must shrink.
    NODE_LOSS = "node_loss"
    #: A link's bandwidth degrades (collectives touching ``rank`` slow
    #: down by ``factor``) for ``duration_steps`` steps.
    LINK_DEGRADE = "link_degrade"
    #: ``rank``'s compute slows down by ``factor`` for
    #: ``duration_steps`` steps (the windowed form of
    #: :class:`~repro.faults.degradation.SkewedCompute`).
    STRAGGLER = "straggler"
    #: A NaN/inf lands in the reduced gradient at ``step``; the grad
    #: scaler must skip the update.
    GRAD_CORRUPTION = "grad_corruption"


#: Kinds the supervisor retries in place.
TRANSIENT_KINDS = frozenset({FaultKind.COLLECTIVE_TIMEOUT})
#: Kinds that kill the current incarnation.
FATAL_KINDS = frozenset({FaultKind.GPU_CRASH, FaultKind.NODE_LOSS})
#: Kinds that only slow events down (never raise).
DEGRADATION_KINDS = frozenset({FaultKind.LINK_DEGRADE, FaultKind.STRAGGLER})
#: Kinds that corrupt numerics (handled by the grad-scaler path).
NUMERICAL_KINDS = frozenset({FaultKind.GRAD_CORRUPTION})


def classify(kind: FaultKind) -> str:
    """Supervisor-facing class: transient / fatal / degradation / numerical."""
    if kind in TRANSIENT_KINDS:
        return "transient"
    if kind in FATAL_KINDS:
        return "fatal"
    if kind in DEGRADATION_KINDS:
        return "degradation"
    return "numerical"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled injection.

    Parameters
    ----------
    kind:
        What breaks.
    step:
        0-based step index at which the fault arms.
    rank:
        Target global rank (for :data:`FaultKind.NODE_LOSS`, any rank
        on the doomed node).
    op:
        Event name to fire at (``"all_gather"``, ``"all_reduce"``, a
        compute op, ...).  ``None`` fires at the first matching event
        of the step the target rank participates in.
    factor:
        Slowdown multiplier for degradations (must exceed 1).
    duration_steps:
        How many steps a degradation persists.
    """

    kind: FaultKind
    step: int
    rank: int = 0
    op: str | None = None
    factor: float = 1.0
    duration_steps: int = 1

    def __post_init__(self):
        object.__setattr__(self, "kind", FaultKind(self.kind))
        if self.step < 0:
            raise ValueError(f"fault step {self.step} must be non-negative")
        if self.rank < 0:
            raise ValueError(f"fault rank {self.rank} must be non-negative")
        if self.duration_steps < 1:
            raise ValueError(
                f"duration_steps {self.duration_steps} must be at least 1"
            )
        if self.kind in DEGRADATION_KINDS and self.factor <= 1.0:
            raise ValueError(
                f"{self.kind.value} factor {self.factor} must exceed 1 "
                "(a slowdown multiplier)"
            )

    @property
    def classification(self) -> str:
        return classify(self.kind)

    def as_dict(self) -> dict:
        out = {"kind": self.kind.value, "step": self.step, "rank": self.rank}
        if self.op is not None:
            out["op"] = self.op
        if self.kind in DEGRADATION_KINDS:
            out["factor"] = self.factor
            out["duration_steps"] = self.duration_steps
        return out


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injections for one supervised run."""

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(
            self,
            "faults",
            tuple(
                f if isinstance(f, FaultSpec) else FaultSpec(**f)
                for f in self.faults
            ),
        )

    def __len__(self) -> int:
        return len(self.faults)

    def faults_at(self, step: int) -> tuple[FaultSpec, ...]:
        """Injections arming at ``step`` (degradations: their first step)."""
        return tuple(f for f in self.faults if f.step == step)

    def max_rank(self) -> int:
        """Highest rank any fault targets (plan/world compatibility check)."""
        return max((f.rank for f in self.faults), default=0)

    # -- serialization -------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "schema": PLAN_SCHEMA,
            "seed": self.seed,
            "faults": [f.as_dict() for f in self.faults],
        }

    def to_json(self, path) -> Path:
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=1) + "\n")
        return path

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        if doc.get("schema") != PLAN_SCHEMA:
            raise ValueError(
                f"unsupported fault-plan schema {doc.get('schema')!r} "
                f"(this build reads {PLAN_SCHEMA})"
            )
        return cls(
            faults=tuple(FaultSpec(**entry) for entry in doc.get("faults", ())),
            seed=int(doc.get("seed", 0)),
        )

    @classmethod
    def from_json(cls, path) -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))

    # -- generation ----------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        num_steps: int,
        world_size: int,
        count: int = 3,
        kinds: tuple[FaultKind, ...] = (
            FaultKind.COLLECTIVE_TIMEOUT,
            FaultKind.GPU_CRASH,
            FaultKind.STRAGGLER,
            FaultKind.LINK_DEGRADE,
            FaultKind.GRAD_CORRUPTION,
        ),
        max_factor: float = 4.0,
    ) -> "FaultPlan":
        """A seeded schedule: same arguments, same plan, bit for bit."""
        import numpy as np

        if num_steps < 1 or world_size < 1 or count < 0:
            raise ValueError("num_steps and world_size must be positive")
        rng = np.random.default_rng(seed)
        faults = []
        for _ in range(count):
            kind = kinds[int(rng.integers(len(kinds)))]
            spec = FaultSpec(
                kind=kind,
                step=int(rng.integers(num_steps)),
                rank=int(rng.integers(world_size)),
                factor=(
                    1.0 + float(rng.uniform(0.5, max_factor - 1.0))
                    if kind in DEGRADATION_KINDS
                    else 1.0
                ),
                duration_steps=(
                    int(rng.integers(1, max(2, num_steps // 2)))
                    if kind in DEGRADATION_KINDS
                    else 1
                ),
            )
            faults.append(spec)
        return cls(faults=tuple(faults), seed=seed)

    def remapped(self, mapping: dict[int, int]) -> "FaultPlan":
        """A copy with fault ranks renumbered (elastic-regroup helper);
        faults whose rank is absent from ``mapping`` are dropped."""
        kept = tuple(
            replace(f, rank=mapping[f.rank])
            for f in self.faults
            if f.rank in mapping
        )
        return FaultPlan(faults=kept, seed=self.seed)

"""The self-healing supervisor: detect, classify, recover, account.

Wraps a :class:`~repro.runtime.session.Session` /
:class:`~repro.runtime.steploop.StepLoop` pair and drives a step budget
to completion *through* the faults a
:class:`~repro.faults.plan.FaultPlan` injects:

* **transient** faults (collective timeouts) are retried in place with
  exponential backoff — the step's RNG state is rewound first, so the
  retried step consumes the exact batch the failed attempt did;
* **crashes** (GPU loss) trigger checkpoint-rollback restart: a fresh
  incarnation of the session resumes from the latest sharded archive
  and replays the lost steps, reproducing the fault-free trajectory
  bitwise (the fire-once injector never re-kills a replayed step);
* **node loss** is permanent: the supervisor rebuilds the
  :class:`~repro.runtime.spec.RunSpec` with a shrunken DDP axis
  (micro-batch rescaled so the global batch — and therefore the data
  stream — is preserved), remaps surviving ranks, and resumes
  elastically from the archive;
* **gradient corruption** never reaches the parameters: the numeric
  trainer's grad scaler backs off and skips the step, and the skip is
  charged to the goodput ledger.

Every recovery path is charged to a :class:`~repro.faults.goodput.
GoodputLedger`, so the final :class:`~repro.faults.report.
RecoveryReport` attributes exactly where the walltime went.
"""

from __future__ import annotations

from pathlib import Path

from repro.faults.errors import (
    ElasticRecoveryError,
    FatalFaultError,
    NodeLossError,
    TransientFaultError,
)
from repro.faults.goodput import GoodputLedger
from repro.faults.injector import FaultInjector
from repro.faults.plan import DEGRADATION_KINDS, FaultPlan
from repro.faults.report import RecoveryEvent, RecoveryReport
from repro.utils.logging import get_logger

_LOG = get_logger("faults.supervisor")


class Supervisor:
    """Drive a spec through a fault plan to completion.

    Parameters
    ----------
    spec:
        The run to protect (meta or numeric mode).
    plan:
        The deterministic fault schedule (may be empty).
    checkpoint_every / checkpoint_dir:
        Periodic durable checkpoints — the rollback target for crash
        and node-loss recovery.  ``checkpoint_every=0`` disables them;
        recovery then restarts from step 0 (still bitwise-correct,
        just expensive).
    retry_budget / backoff_base_s / detect_timeout_s:
        Transient recovery: at most ``retry_budget`` in-place retries,
        with backoff delays ``base * 2**attempt`` charged to the
        ledger; each failed attempt also pays the detection window.
    restart_latency_s / checkpoint_cost_s:
        Simulated cost-model charges for an incarnation restart and
        for writing one checkpoint.
    max_restarts:
        Hard cap on incarnations (defense against a plan that kills
        every replay; a fire-once plan never hits it).
    health_every:
        Run :meth:`~repro.runtime.session.Session.check_health` every
        N steps and record straggler findings as ``observed`` events —
        the detection channel for non-crash degradations.
    degradation_aware:
        Opt-in goodput accounting for degradation windows: the excess
        of a degraded step over the plan's best observed clean step is
        charged to the ledger's ``lost_degraded_s`` bucket instead of
        counting as useful work.  Off by default — the historical
        accounting (and its journal bytes) treats every committed
        second as useful.
    replan_hysteresis / replan_warmup_s / replan_micro_batches:
        Controller tuning for ``spec.replan == "on"`` runs: the
        break-even margin, the configured warm-up surcharge of the
        migration cost model, and the micro-batch axis of the
        alternative space.
    session_kwargs:
        Extra keyword arguments for every ``Session`` construction
        (``lr``, ``precision``, ...).
    """

    def __init__(
        self,
        spec,
        plan: FaultPlan | None = None,
        *,
        checkpoint_every: int = 0,
        checkpoint_dir=None,
        retry_budget: int = 3,
        backoff_base_s: float = 0.05,
        detect_timeout_s: float = 0.5,
        restart_latency_s: float = 2.0,
        checkpoint_cost_s: float = 0.25,
        max_restarts: int = 8,
        health_every: int = 0,
        degradation_aware: bool = False,
        replan_hysteresis: float = 0.25,
        replan_warmup_s: float = 0.0,
        replan_micro_batches: tuple[int, ...] = (1, 2, 4, 8),
        grad_scaler=None,
        session_kwargs: dict | None = None,
    ):
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if checkpoint_every and checkpoint_dir is None:
            raise ValueError("periodic checkpoints need a checkpoint_dir")
        if retry_budget < 1:
            raise ValueError("retry_budget must be at least 1")
        if spec.replan == "on" and checkpoint_dir is None:
            raise ValueError(
                "replan='on' needs a checkpoint_dir: a live plan switch "
                "migrates through a durable checkpoint"
            )
        self.spec = spec
        self.plan = plan if plan is not None else FaultPlan()
        if self.plan.faults and self.plan.max_rank() >= spec.num_gpus:
            raise ValueError(
                f"fault plan targets rank {self.plan.max_rank()}, outside "
                f"the {spec.num_gpus}-GPU world"
            )
        self.injector = FaultInjector(self.plan, gpus_per_node=spec.gpus_per_node)
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.retry_budget = retry_budget
        self.backoff_base_s = backoff_base_s
        self.detect_timeout_s = detect_timeout_s
        self.restart_latency_s = restart_latency_s
        self.checkpoint_cost_s = checkpoint_cost_s
        self.max_restarts = max_restarts
        self.health_every = health_every
        self._grad_scaler = grad_scaler
        self.session_kwargs = dict(session_kwargs or {})
        # One monitor instance across every incarnation: the session is
        # rebuilt after crashes/regroups, so the telemetry stream must
        # be owned here (the injector pattern) and passed through.
        monitor = self.session_kwargs.get("monitor")
        if monitor is None:
            if spec.monitor == "on":
                from repro.obs.monitor import RunMonitor

                monitor = RunMonitor()
            else:
                from repro.obs.monitor import NULL_MONITOR

                monitor = NULL_MONITOR
            self.session_kwargs["monitor"] = monitor
        self.monitor = monitor
        self.ledger = GoodputLedger()
        self.session = None
        self.loop = None
        self._last_checkpoint: dict | None = None
        self._reported_degradations: set[int] = set()
        # -- adaptive re-planning state ------------------------------------
        self.degradation_aware = bool(degradation_aware)
        self.replan_hysteresis = replan_hysteresis
        self.replan_warmup_s = replan_warmup_s
        self.replan_micro_batches = tuple(replan_micro_batches)
        #: Best observed clean-step seconds per plan shape — the
        #: degradation-aware baseline a degraded step is charged against.
        self._clean_baselines: dict[tuple, float] = {}
        self._controller = None
        self._last_replan_signature = None
        #: Realized post-switch accounting for the outcome journal event.
        self._switch_info: dict | None = None
        self._num_steps = 0

    # -- construction ----------------------------------------------------------
    def _make_grad_scaler(self):
        if self.spec.meta:
            return None
        if self._grad_scaler is False:
            return None
        from repro.nn.grad_scaler import DynamicGradScaler

        if self._grad_scaler is None or self._grad_scaler is True:
            return DynamicGradScaler()
        # A template instance: fresh copy per incarnation, state restored
        # from the checkpoint (never shared across incarnations).
        template = self._grad_scaler
        return DynamicGradScaler(
            init_scale=template.scale,
            growth_factor=template.growth_factor,
            backoff_factor=template.backoff_factor,
            growth_interval=template.growth_interval,
            min_scale=template.min_scale,
        )

    def _build_session(self, spec, loop_state: dict | None = None):
        from repro.runtime import Session, StepLoop

        self.session = Session(
            spec, grad_scaler=self._make_grad_scaler(), **self.session_kwargs
        )
        self.session.cluster.attach_injector(self.injector)
        hooks = self.session.loop_hooks()
        if loop_state is None:
            self.loop = StepLoop(self.session.step_fn(), hooks=hooks)
        else:
            self.loop = StepLoop(
                self.session.step_fn(),
                hooks=hooks,
                start_step=loop_state["step"],
                observations_seen=loop_state["observations_seen"],
                history=[tuple(pair) for pair in loop_state["history"]],
            )

    def _wall(self) -> float:
        return self.session.cluster.timeline.walltime_s()

    def _rng_state(self):
        return self.session.data_rng.bit_generator.state

    def _restore_rng(self, state) -> None:
        self.session.data_rng.bit_generator.state = state

    def _record(self, report: RecoveryReport, event: RecoveryEvent) -> None:
        """Append to the report and mirror into the monitor's journal."""
        report.events.append(event)
        self.monitor.record_recovery(event)

    # -- the supervised loop ----------------------------------------------------
    def run(self, num_steps: int) -> RecoveryReport:
        """Drive ``num_steps`` steps through the plan; never raises for
        scheduled faults — failures land in ``report.unrecovered``."""
        if num_steps < 1:
            raise ValueError("num_steps must be positive")
        self._num_steps = num_steps
        report = RecoveryReport(ledger=self.ledger)
        if self.session is None:
            self._build_session(self.spec)
        self.monitor.record_run(
            self.loop.step, "start",
            f"supervised run: {num_steps} step(s), "
            f"{len(self.plan.faults)} scheduled fault(s)",
        )
        while self.loop.step < num_steps and not report.unrecovered:
            step = self.loop.step
            self.injector.begin_step(step)
            rng_state = self._rng_state()
            t0 = self._wall()
            try:
                event = self.loop.run_step()
            except TransientFaultError as err:
                self._recover_transient(err, step, t0, rng_state, report)
                continue
            except NodeLossError as err:
                self._recover_node_loss(err, step, t0, report)
                continue
            except FatalFaultError as err:
                self._recover_crash(err, step, t0, report)
                continue
            self._commit(event, self._wall() - t0, report)
        report.steps_completed = self.loop.step
        report.history = list(self.loop.history)
        report.pending = self.injector.pending()
        report.moot = self.injector.moot()
        report.final_spec = self.spec.identity()
        self._report_switch_outcome()
        outcome = "recovered" if report.recovered else "unrecovered"
        self.monitor.record_run(
            self.loop.step, "end",
            f"run {outcome}: {report.steps_completed} step(s) committed, "
            f"goodput {self.ledger.goodput_fraction:.4f}",
        )
        return report

    # -- commit + periodic work -------------------------------------------------
    def _commit(self, event, seconds: float, report: RecoveryReport) -> None:
        step = event.step
        if self.spec.meta:
            grad_fault = self.injector.grad_fault(step, fire=True)
            skipped = grad_fault is not None
        else:
            grad_fault = self.injector.grad_fault(step)
            skipped = bool(
                getattr(self.session.trainer, "last_step_skipped", False)
            )
        degraded_s = self._degraded_excess(step, seconds, skipped)
        self.ledger.commit_step(step, seconds, skipped=skipped,
                                degraded_s=degraded_s)
        if self._switch_info is not None:
            self._switch_info["steps"] += 1
            self._switch_info["seconds"] += seconds
            if self.injector.active_degradations(step):
                self._switch_info["degraded"] += 1
        # Goodput fractions land on the session's metrics and in the
        # monitor's timeseries every committed step (the goodput_decay
        # detector watches goodput.fraction).
        fractions = self.ledger.publish_gauges(self.session.tracer.metrics)
        self.monitor.observe_gauges(step, fractions)
        if skipped:
            kind = grad_fault.kind.value if grad_fault else "grad_overflow"
            self._record(
                report,
                RecoveryEvent(
                    step=step,
                    kind=kind,
                    action="skip_step",
                    rank=grad_fault.rank if grad_fault else None,
                    lost_s=seconds,
                    detail="grad scaler backed off; optimizer step skipped",
                )
            )
            _LOG.warning("step %d skipped (%s)", step, kind)
        for spec in self.injector.fired_at(step):
            if spec.kind in DEGRADATION_KINDS and id(spec) not in self._reported_degradations:
                self._reported_degradations.add(id(spec))
                self._record(
                    report,
                    RecoveryEvent(
                        step=step,
                        kind=spec.kind.value,
                        action="observed",
                        rank=spec.rank,
                        detail=(
                            f"x{spec.factor:.2f} slowdown for "
                            f"{spec.duration_steps} step(s)"
                        ),
                    )
                )
        self._maybe_checkpoint()
        self._maybe_health(report)
        self._maybe_replan(report)

    def _degraded_excess(self, step: int, seconds: float, skipped: bool) -> float:
        """Degradation-aware accounting: a degraded step's excess over
        the plan's best observed clean step; clean steps feed the
        baseline instead.  Returns 0.0 unless ``degradation_aware``."""
        if not self.degradation_aware or skipped:
            return 0.0
        key = self._plan_key(self.spec)
        baseline = self._clean_baselines.get(key)
        if self.injector.active_degradations(step):
            if baseline is None:
                return 0.0
            return max(0.0, seconds - baseline)
        if baseline is None or seconds < baseline:
            self._clean_baselines[key] = seconds
        return 0.0

    @staticmethod
    def _plan_key(spec) -> tuple:
        return (spec.pp_size, spec.tp_size, spec.fsdp_size, spec.ddp_size,
                spec.micro_batch, spec.recompute, spec.prefetch,
                spec.tp_innermost)

    def _maybe_checkpoint(self) -> None:
        if not self.checkpoint_every or self.loop.step % self.checkpoint_every:
            return
        loop_state = {
            "step": self.loop.step,
            "observations_seen": self.loop.observations_seen,
            "history": [[obs, loss] for obs, loss in self.loop.history],
        }
        path = self.checkpoint_dir / f"ckpt_step{self.loop.step}.npz"
        if self.spec.meta:
            self.session.save_meta(path, loop_state=loop_state)
        else:
            self.session.save(path, loop=self.loop)
        self._last_checkpoint = {"path": path, "step": self.loop.step}
        self.ledger.checkpoint(self.checkpoint_cost_s)
        self.monitor.record_checkpoint(
            self.loop.step, "save", detail=f"durable checkpoint at {path.name}"
        )

    def _maybe_health(self, report: RecoveryReport) -> None:
        if not self.health_every or self.loop.step % self.health_every:
            return
        findings = self.session.check_health()
        for finding in findings:
            if finding.category == "straggler":
                self._record(
                    report,
                    RecoveryEvent(
                        step=self.loop.step - 1,
                        kind="health." + finding.category,
                        action="observed",
                        rank=finding.ranks[0] if finding.ranks else None,
                        detail=finding.message,
                    )
                )

    # -- online adaptive re-planning ----------------------------------------------
    def _replan_controller(self):
        """The controller for the current world (rebuilt after regroups)."""
        from repro.replan import ReplanController

        if (self._controller is None
                or self._controller.spec.num_gpus != self.spec.num_gpus):
            self._controller = ReplanController(
                self.spec,
                hysteresis=self.replan_hysteresis,
                micro_batches=self.replan_micro_batches,
            )
        return self._controller

    def _maybe_replan(self, report: RecoveryReport) -> None:
        """Consult the controller when degradation evidence is live.

        One evaluation per distinct evidence signature (the factor maps,
        not the shrinking window): re-pricing the same sickness every
        step would only journal noise, and a shrinking horizon can turn
        a switch into a stay but never the reverse.
        """
        if self.spec.replan != "on":
            return
        from repro.replan import DegradationProfile, MigrationCostModel

        step = self.loop.step
        profile = DegradationProfile.from_injector(self.injector, step)
        if profile.is_clean:
            self._last_replan_signature = None
            return
        signature = (profile.compute, profile.links, profile.lost_ranks)
        if signature == self._last_replan_signature:
            return
        self._last_replan_signature = signature
        cost = MigrationCostModel.from_ledger(
            self.ledger, self.checkpoint_cost_s, self.restart_latency_s,
            warmup_s=self.replan_warmup_s,
        )
        decision = self._replan_controller().evaluate(
            self.spec, step, self._num_steps, profile, cost
        )
        self.monitor.record_replan(
            step, "decision", message=decision.reason,
            data=decision.as_dict(),
        )
        if decision.switch:
            self._execute_switch(decision, report)

    def _execute_switch(self, decision, report: RecoveryReport) -> None:
        """Live plan migration: checkpoint -> rebuild -> bitwise resume."""
        old = self.spec
        candidate = decision.best_candidate
        step = self.loop.step
        new_spec = old.replace(
            tp_size=candidate.tp_size,
            fsdp_size=candidate.fsdp_size,
            ddp_size=candidate.ddp_size,
            micro_batch=candidate.micro_batch,
            recompute=candidate.recompute,
            prefetch=candidate.prefetch,
            tp_innermost=candidate.tp_innermost,
            pp_size=candidate.pp_size,
        )
        path = self.checkpoint_dir / f"replan_step{step}.npz"
        if old.meta:
            self.session.save_meta(path, loop_state={
                "step": step,
                "observations_seen": self.loop.observations_seen,
                "history": [[obs, loss] for obs, loss in self.loop.history],
            })
        else:
            self.session.save(path, loop=self.loop)
        self.ledger.replan(decision.migration_cost_s)
        # Seed the new plan's clean baseline from the old plan's by the
        # projected clean-step ratio, so degradation-aware accounting
        # keeps charging post-switch degraded steps honestly even
        # before the new plan commits its first clean step.
        old_base = self._clean_baselines.get(self._plan_key(old))
        if old_base is not None and decision.current_clean_step_s > 0:
            self._clean_baselines.setdefault(
                self._plan_key(new_spec),
                old_base * decision.best_clean_step_s
                / decision.current_clean_step_s,
            )
        self.spec = new_spec
        self._build_session(new_spec)
        if new_spec.meta:
            state = self.session.resume_meta(path)
        else:
            state = self.session.resume_elastic(path)["loop"]
        self._build_loop_from(state)
        self._last_checkpoint = {"path": path, "step": step}
        self._controller = None
        self._switch_info = {
            "decision": decision, "steps": 0, "seconds": 0.0, "degraded": 0,
        }
        detail = f"{decision.current_label} -> {decision.best_label}"
        report.events.append(RecoveryEvent(
            step=step,
            kind="replan",
            action="plan_switch",
            lost_s=decision.migration_cost_s,
            detail=detail + f": {decision.reason}",
        ))
        self.monitor.record_replan(
            step, "switch", message=detail,
            data={
                "from": decision.current_label,
                "to": decision.best_label,
                "migration_cost_s": decision.migration_cost_s,
                "projected_gain_s": decision.projected_gain_s,
                "checkpoint": path.name,
            },
        )
        _LOG.warning("replan at step %d: %s (projected gain %.6f s)",
                     step, detail, decision.projected_gain_s)

    def _report_switch_outcome(self) -> None:
        """Journal projected vs realized gain once the run ends."""
        if self._switch_info is None or not self._switch_info["steps"]:
            return
        info = self._switch_info
        decision = info["decision"]
        degraded = info["degraded"]
        clean = info["steps"] - degraded
        counterfactual = (degraded * decision.current_step_s
                          + clean * decision.current_clean_step_s)
        realized = (counterfactual - info["seconds"]
                    - decision.migration_cost_s)
        self.monitor.record_replan(
            self.loop.step, "outcome",
            message=(
                f"switch at step {decision.step}: projected "
                f"{decision.projected_gain_s:.6f} s gain, realized "
                f"{realized:.6f} s over {info['steps']} step(s)"
            ),
            data={
                "switch_step": decision.step,
                "steps_on_new_plan": info["steps"],
                "degraded_steps_on_new_plan": degraded,
                "seconds_on_new_plan": info["seconds"],
                "counterfactual_s": counterfactual,
                "projected_gain_s": decision.projected_gain_s,
                "realized_gain_s": realized,
            },
        )

    # -- transient recovery -------------------------------------------------------
    def _recover_transient(self, err, step, t0, rng_state, report) -> None:
        fault = err
        wasted = (self._wall() - t0) + self.detect_timeout_s
        lost_total = 0.0
        for attempt in range(1, self.retry_budget + 1):
            backoff = self.backoff_base_s * 2 ** (attempt - 1)
            self.ledger.retry(wasted, backoff)
            lost_total += wasted + backoff
            self._restore_rng(rng_state)
            t0 = self._wall()
            try:
                event = self.loop.run_step()
            except TransientFaultError as again:
                fault = again
                wasted = (self._wall() - t0) + self.detect_timeout_s
                continue
            except NodeLossError as fatal:
                self._recover_node_loss(fatal, step, t0, report)
                return
            except FatalFaultError as fatal:
                self._recover_crash(fatal, step, t0, report)
                return
            self._record(
                report,
                RecoveryEvent(
                    step=step,
                    kind=self._kind_of(fault),
                    action="retry",
                    rank=self._rank_of(fault),
                    attempts=attempt,
                    lost_s=lost_total,
                    detail=f"recovered after {attempt} retry attempt(s)",
                )
            )
            _LOG.info("step %d recovered after %d retry(ies)", step, attempt)
            self._commit(event, self._wall() - t0, report)
            return
        # Retry budget exhausted: escalate to rollback-restart.
        self._record(
            report,
            RecoveryEvent(
                step=step,
                kind=self._kind_of(fault),
                action="retry_exhausted",
                rank=self._rank_of(fault),
                attempts=self.retry_budget,
                lost_s=lost_total,
                detail="escalating to rollback restart",
            )
        )
        self._recover_crash(fault, step, t0, report)

    # -- crash recovery -----------------------------------------------------------
    def _resume_state(self) -> dict | None:
        """Loop resume state from the latest durable checkpoint."""
        if self._last_checkpoint is None:
            return None
        path = self._last_checkpoint["path"]
        if self.spec.meta:
            return self.session.resume_meta(path)
        meta = self.session.resume(path)
        return meta["loop"]

    def _resume_state_elastic(self) -> dict | None:
        if self._last_checkpoint is None:
            return None
        path = self._last_checkpoint["path"]
        if self.spec.meta:
            return self.session.resume_meta(path)
        meta = self.session.resume_elastic(path)
        return meta["loop"]

    def _recover_crash(self, err, step, t0, report) -> None:
        if self.ledger.restarts >= self.max_restarts:
            report.unrecovered.append(
                f"restart budget ({self.max_restarts}) exhausted at step "
                f"{step}: {err}"
            )
            self._record(
                report,
                RecoveryEvent(
                    step=step, kind=self._kind_of(err), action="unrecovered",
                    rank=self._rank_of(err), detail=str(err),
                )
            )
            return
        attempt_s = (self._wall() - t0) + self.detect_timeout_s
        lost_steps, lost_s = self.ledger.rollback(attempt_s)
        self.ledger.restart(self.restart_latency_s)
        resume_from = (
            self._last_checkpoint["step"] if self._last_checkpoint else 0
        )
        self.monitor.record_checkpoint(
            step, "rollback",
            detail=f"rolling back from step {step} to step {resume_from}",
        )
        self._build_session(self.spec)
        state = self._resume_state()
        self._build_loop_from(state)
        self._record(
            report,
            RecoveryEvent(
                step=step,
                kind=self._kind_of(err),
                action="rollback_restart",
                rank=self._rank_of(err),
                lost_s=lost_s + self.restart_latency_s,
                lost_steps=lost_steps,
                detail=f"resumed from step {resume_from}",
            )
        )
        _LOG.warning(
            "crash at step %d: rolled back to step %d (%d step(s) to replay)",
            step, resume_from, lost_steps,
        )

    def _build_loop_from(self, state: dict | None) -> None:
        from repro.runtime import StepLoop

        if state is None:
            self.loop = StepLoop(self.session.step_fn(),
                                 hooks=self.session.loop_hooks())
        else:
            self.loop = StepLoop(
                self.session.step_fn(),
                hooks=self.session.loop_hooks(),
                start_step=state["step"],
                observations_seen=state["observations_seen"],
                history=[tuple(pair) for pair in state["history"]],
            )

    # -- elastic recovery ----------------------------------------------------------
    def _recover_node_loss(self, err, step, t0, report) -> None:
        old = self.spec
        gpn = old.gpus_per_node
        rank = self._rank_of(err)
        node = (rank if rank is not None else 0) // gpn
        lost_ranks = set(range(node * gpn, (node + 1) * gpn))
        try:
            new_spec = self._shrunken_spec(old, lost_ranks)
        except ElasticRecoveryError as impossible:
            report.unrecovered.append(str(impossible))
            self._record(
                report,
                RecoveryEvent(
                    step=step, kind=self._kind_of(err), action="unrecovered",
                    rank=rank, detail=str(impossible),
                )
            )
            return
        if self.ledger.restarts >= self.max_restarts:
            report.unrecovered.append(
                f"restart budget ({self.max_restarts}) exhausted at step "
                f"{step}: {err}"
            )
            return
        attempt_s = (self._wall() - t0) + self.detect_timeout_s
        lost_steps, lost_s = self.ledger.rollback(attempt_s)
        self.ledger.restart(self.restart_latency_s, elastic=True)
        mapping = {
            r: (r if r < node * gpn else r - gpn)
            for r in range(old.num_gpus)
            if r not in lost_ranks
        }
        self.injector.remap_ranks(mapping)
        resume_from = (
            self._last_checkpoint["step"] if self._last_checkpoint else 0
        )
        self.monitor.record_checkpoint(
            step, "rollback",
            detail=f"rolling back from step {step} to step {resume_from} "
                   f"(elastic regroup)",
        )
        self.spec = new_spec
        self._build_session(new_spec)
        state = self._resume_state_elastic()
        self._build_loop_from(state)
        self._record(
            report,
            RecoveryEvent(
                step=step,
                kind=self._kind_of(err),
                action="elastic_regroup",
                rank=rank,
                lost_s=lost_s + self.restart_latency_s,
                lost_steps=lost_steps,
                detail=(
                    f"node {node} lost: ddp {old.ddp_size}->{new_spec.ddp_size}, "
                    f"micro-batch {old.micro_batch}->{new_spec.micro_batch}, "
                    f"resumed from step {resume_from}"
                ),
            )
        )
        _LOG.warning(
            "node %d lost at step %d: regrouped to %d GPUs (ddp=%d), "
            "resumed from step %d",
            node, step, new_spec.num_gpus, new_spec.ddp_size, resume_from,
        )

    @staticmethod
    def _shrunken_spec(old, lost_ranks: set[int]):
        """The legal DDP-shrunken RunSpec after losing ``lost_ranks``,
        preserving the global batch; raises ElasticRecoveryError."""
        from repro.runtime import RunSpecError

        surviving = old.num_gpus - len(lost_ranks)
        per_replica = old.pp_size * old.tp_size * old.fsdp_size
        if surviving < per_replica or surviving % per_replica:
            raise ElasticRecoveryError(
                f"surviving world of {surviving} GPUs cannot host whole "
                f"pp x tp x fsdp = {per_replica} replicas"
            )
        new_ddp = surviving // per_replica
        global_batch = old.micro_batch * old.fsdp_size * old.ddp_size
        if global_batch % (new_ddp * old.fsdp_size):
            raise ElasticRecoveryError(
                f"global batch {global_batch} cannot be preserved over "
                f"ddp={new_ddp} x fsdp={old.fsdp_size} micro-batches"
            )
        new_micro = global_batch // (new_ddp * old.fsdp_size)
        try:
            new_spec = old.replace(
                num_gpus=surviving, ddp_size=new_ddp, micro_batch=new_micro
            )
        except RunSpecError as invalid:
            raise ElasticRecoveryError(
                f"no legal shrunken topology: {invalid}"
            ) from invalid
        reason = new_spec.legality_reason()
        if reason is not None:
            raise ElasticRecoveryError(
                f"shrunken topology rejected by engine legality: {reason}"
            )
        return new_spec

    # -- fault attribute helpers -----------------------------------------------------
    @staticmethod
    def _kind_of(err) -> str:
        fault = getattr(err, "fault", None)
        return fault.kind.value if fault is not None else type(err).__name__

    @staticmethod
    def _rank_of(err):
        fault = getattr(err, "fault", None)
        return fault.rank if fault is not None else None


def run_supervised(
    spec,
    plan: FaultPlan | None = None,
    num_steps: int = 8,
    **supervisor_kwargs,
) -> RecoveryReport:
    """One-call convenience: supervise ``spec`` through ``plan``."""
    return Supervisor(spec, plan, **supervisor_kwargs).run(num_steps)

"""Non-crash degradations: stragglers as a first-class fault kind.

:class:`SkewedCompute` (previously ``repro.parallel.compute``) wraps
any compute-time model with per-rank slowdown multipliers — the
whole-run form of straggler injection, used by ``repro trace --skew``
and the health-monitor tests.  The step-windowed form lives in the
:class:`~repro.faults.injector.FaultInjector`
(:data:`~repro.faults.plan.FaultKind.STRAGGLER`).

:func:`seeded_skew_profile` derives the multipliers from a seed, so a
straggler scenario is reproducible across runs from ``(seed, world)``
alone — the fault-model analogue of seeded synthetic batches.
"""

from __future__ import annotations

import numpy as np


class SkewedCompute:
    """Per-rank slowdown wrapper around any compute-time model.

    Multiplies the base model's seconds by a rank-specific factor —
    the controlled way to inject stragglers (a flaky GCD, a thermally
    throttled node) into a simulated run, used by the health-monitor
    tests and ``run_traced_step(compute_skew=...)``.
    """

    def __init__(self, base, multipliers: dict[int, float]):
        for rank, factor in multipliers.items():
            if factor <= 0:
                raise ValueError(f"skew multiplier for rank {rank} must be positive")
        self.base = base
        self.multipliers = dict(multipliers)

    def seconds_for(self, flops: float, rank: int) -> float:
        return self.base.seconds_for(flops, rank) * self.multipliers.get(rank, 1.0)


def seeded_skew_profile(
    seed: int,
    world_size: int,
    num_stragglers: int = 1,
    min_factor: float = 1.2,
    max_factor: float = 2.5,
) -> dict[int, float]:
    """Reproducible straggler profile: rank -> slowdown multiplier.

    Draws ``num_stragglers`` distinct ranks and a slowdown factor per
    rank from ``default_rng(seed)`` — the same arguments always produce
    the same profile, bit for bit, so a skewed run can be named by its
    seed in tests and reports.
    """
    if world_size < 1:
        raise ValueError("world_size must be positive")
    if not 0 <= num_stragglers <= world_size:
        raise ValueError(
            f"num_stragglers {num_stragglers} outside [0, {world_size}]"
        )
    if not 1.0 < min_factor <= max_factor:
        raise ValueError("need 1 < min_factor <= max_factor")
    rng = np.random.default_rng(seed)
    ranks = rng.choice(world_size, size=num_stragglers, replace=False)
    factors = rng.uniform(min_factor, max_factor, size=num_stragglers)
    return {int(r): float(f) for r, f in zip(sorted(ranks), factors)}

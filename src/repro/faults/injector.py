"""The deterministic fault injector hooked into the Timeline.

Every unit of simulated time passes through
:meth:`~repro.cluster.timeline.Timeline.record_compute` or
:meth:`~repro.cluster.timeline.Timeline.record_comm`; those methods
consult the cluster's attached injector *before* recording, so a
scheduled fault fires at exactly the compute or collective event the
:class:`~repro.faults.plan.FaultPlan` names — the same choke-point
pattern the tracer uses, but on the failure path:

* crash-class faults (:data:`~repro.faults.plan.FaultKind.GPU_CRASH`,
  :data:`~repro.faults.plan.FaultKind.NODE_LOSS`,
  :data:`~repro.faults.plan.FaultKind.COLLECTIVE_TIMEOUT`) raise the
  matching typed :class:`~repro.faults.errors.FaultError` and leave the
  event unrecorded (the collective never completed);
* degradations (:data:`~repro.faults.plan.FaultKind.LINK_DEGRADE`,
  :data:`~repro.faults.plan.FaultKind.STRAGGLER`) multiply the event's
  seconds while their step window is active;
* :data:`~repro.faults.plan.FaultKind.GRAD_CORRUPTION` is consumed by
  the numeric trainer (:meth:`FaultInjector.poison_gradients`) or, in
  meta mode, acknowledged by the supervisor
  (:meth:`FaultInjector.grad_fault`).

Each injection fires exactly once: replaying a step after recovery
does not re-fire the fault that killed it, which is what makes
crash-and-resume runs bitwise comparable to fault-free ones.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.faults.errors import (
    CollectiveTimeoutError,
    GpuCrashError,
    NodeLossError,
)
from repro.faults.plan import (
    DEGRADATION_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
)


class _Armed:
    """Mutable firing state for one scheduled injection."""

    __slots__ = ("spec", "rank", "fired", "fired_step", "moot")

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        #: Current target rank (renumbered by elastic regroups).
        self.rank = spec.rank
        self.fired = False
        self.fired_step: int | None = None
        self.moot = False  # target rank was lost before the fault fired

    @property
    def live(self) -> bool:
        return not self.fired and not self.moot


class FaultInjector:
    """Timeline-attached executor of one :class:`FaultPlan`.

    The supervisor calls :meth:`begin_step` before driving each step so
    step-indexed injections know when they are armed; the timeline
    calls :meth:`on_compute` / :meth:`on_comm` per event.  The injector
    survives session teardown (crash recovery re-attaches the same
    instance to the rebuilt cluster), so fire-once bookkeeping spans
    incarnations.
    """

    def __init__(self, plan: FaultPlan, gpus_per_node: int = 8):
        self.plan = plan
        self.gpus_per_node = int(gpus_per_node)
        self._armed = [_Armed(spec) for spec in plan.faults]
        self.step = -1

    # -- driving -------------------------------------------------------------
    def begin_step(self, step: int) -> None:
        """Arm the injections of ``step`` (supervisor hook)."""
        self.step = int(step)

    # -- timeline protocol ---------------------------------------------------
    def on_compute(self, rank: int, seconds: float, op: str) -> float:
        self._maybe_raise((rank,), op, comm=False)
        return seconds * self._factor(FaultKind.STRAGGLER, (rank,))

    def on_comm(self, ranks: Sequence[int], seconds: float, op: str) -> float:
        self._maybe_raise(tuple(ranks), op, comm=True)
        return seconds * self._factor(FaultKind.LINK_DEGRADE, ranks)

    # -- crash-class firing ---------------------------------------------------
    def _maybe_raise(self, ranks: tuple[int, ...], op: str, comm: bool) -> None:
        for armed in self._armed:
            spec = armed.spec
            if not armed.live or spec.step != self.step:
                continue
            if spec.kind is FaultKind.COLLECTIVE_TIMEOUT and not comm:
                continue  # timeouts are collective-only events
            if spec.kind not in (
                FaultKind.COLLECTIVE_TIMEOUT,
                FaultKind.GPU_CRASH,
                FaultKind.NODE_LOSS,
            ):
                continue
            if armed.rank not in ranks:
                continue
            if spec.op is not None and spec.op != op:
                continue
            armed.fired = True
            armed.fired_step = self.step
            where = f"step {self.step}, op {op!r}, rank {armed.rank}"
            if spec.kind is FaultKind.COLLECTIVE_TIMEOUT:
                raise CollectiveTimeoutError(
                    f"collective timeout at {where}", fault=spec
                )
            if spec.kind is FaultKind.GPU_CRASH:
                raise GpuCrashError(f"GPU crash at {where}", fault=spec)
            node = armed.rank // self.gpus_per_node
            raise NodeLossError(
                f"node {node} lost at {where}", fault=spec
            )

    # -- degradations ---------------------------------------------------------
    def _factor(self, kind: FaultKind, ranks: Iterable[int]) -> float:
        factor = 1.0
        ranks = set(ranks)
        for armed in self._armed:
            spec = armed.spec
            if armed.moot or spec.kind is not kind:
                continue
            if not spec.step <= self.step < spec.step + spec.duration_steps:
                continue
            if armed.rank not in ranks:
                continue
            if not armed.fired:
                armed.fired = True
                armed.fired_step = self.step
            factor *= spec.factor
        return factor

    # -- symmetry-fold coordination --------------------------------------------
    def affects_step(self, step: int) -> bool:
        """Could any injection touch an event of ``step``?

        The folded timeline consults this before each step: a step a
        fault can touch must run in exact (per-rank) mode, because the
        fault singles out one rank and breaks the class symmetry.
        Degradations count for their whole step window; crash-class and
        corruption injections only while still live at their step.
        """
        step = int(step)
        for armed in self._armed:
            spec = armed.spec
            if spec.kind in DEGRADATION_KINDS:
                if not armed.moot and \
                        spec.step <= step < spec.step + spec.duration_steps:
                    return True
            elif armed.live and spec.step == step:
                return True
        return False

    # -- gradient corruption ---------------------------------------------------
    def grad_fault(self, step: int, fire: bool = False) -> FaultSpec | None:
        """The grad-corruption injection of ``step``, if any.

        ``fire=True`` additionally marks an unfired injection as fired
        (the meta-mode path, where there are no numeric gradients to
        poison but the skipped step must still be accounted).
        """
        for armed in self._armed:
            spec = armed.spec
            if spec.kind is not FaultKind.GRAD_CORRUPTION or armed.moot:
                continue
            if spec.step != step:
                continue
            if armed.fired or fire:
                if fire and not armed.fired:
                    armed.fired = True
                    armed.fired_step = step
                return spec
        return None

    def poison_gradients(self, step: int, params: Sequence) -> FaultSpec | None:
        """Numeric path: plant a NaN in the first available gradient.

        Called by the distributed trainer after gradient reduction and
        before the grad-scaler finiteness check, so an injected
        corruption takes the exact route a real bit-flip would: the
        scaler sees a non-finite gradient, backs the scale off, and the
        optimizer step is skipped.
        """
        import numpy as np

        from repro.meta import is_meta

        for armed in self._armed:
            spec = armed.spec
            if spec.kind is not FaultKind.GRAD_CORRUPTION or not armed.live:
                continue
            if spec.step != step:
                continue
            for param in params:
                grad = getattr(param, "grad", None)
                if grad is None or is_meta(grad):
                    continue
                np.asarray(grad).flat[0] = math.nan
                armed.fired = True
                armed.fired_step = step
                return spec
        return None

    # -- elastic regroup -------------------------------------------------------
    def remap_ranks(self, mapping: dict[int, int]) -> list[FaultSpec]:
        """Renumber pending faults after a node loss.

        ``mapping`` maps surviving old global ranks to their new ranks;
        pending faults targeting a lost rank become moot (returned so
        the report can note them).
        """
        dropped = []
        for armed in self._armed:
            if armed.fired or armed.moot:
                continue
            if armed.rank in mapping:
                armed.rank = mapping[armed.rank]
            else:
                armed.moot = True
                dropped.append(armed.spec)
        return dropped

    # -- introspection ----------------------------------------------------------
    def active_degradations(self, step: int) -> list[tuple[int, FaultSpec]]:
        """Degradations that have fired and whose window covers ``step``.

        Returns ``(current_rank, spec)`` pairs — the rank is the armed
        entry's (possibly elastically renumbered) target, the spec
        carries kind, factor, and window.  This is the Supervisor's
        evidence feed for degradation-aware accounting and the replan
        controller's :meth:`~repro.replan.DegradationProfile.from_injector`
        projection; only *fired* injections count, so the evidence is
        what the run has actually observed, never the plan's future.
        """
        step = int(step)
        return [
            (armed.rank, armed.spec)
            for armed in self._armed
            if armed.spec.kind in DEGRADATION_KINDS
            and armed.fired and not armed.moot
            and armed.spec.step <= step < armed.spec.step + armed.spec.duration_steps
        ]

    def fired(self) -> list[FaultSpec]:
        return [a.spec for a in self._armed if a.fired]

    def fired_at(self, step: int) -> list[FaultSpec]:
        return [a.spec for a in self._armed if a.fired and a.fired_step == step]

    def pending(self) -> list[FaultSpec]:
        return [a.spec for a in self._armed if a.live]

    def moot(self) -> list[FaultSpec]:
        return [a.spec for a in self._armed if a.moot]

"""Typed fault exceptions raised by the deterministic injector.

The hierarchy encodes the supervisor's classification decision:

* :class:`TransientFaultError` — retry in place (exponential backoff);
  the canonical instance is :class:`CollectiveTimeoutError`, a
  collective that never completed because one participant hiccuped.
* :class:`FatalFaultError` — the current incarnation of the run is
  dead.  :class:`GpuCrashError` is recoverable by checkpoint-rollback
  restart into the same world shape; :class:`NodeLossError` is a
  *permanent* capacity loss and needs an elastic regroup.
* :class:`ElasticRecoveryError` — the regroup itself is impossible
  (no legal shrunken topology); the run is unrecoverable.

Every error carries the :class:`~repro.faults.plan.FaultSpec` that
caused it (when raised by the injector), so recovery reports can tie
an observed failure back to the exact scheduled injection.
"""

from __future__ import annotations


class FaultError(RuntimeError):
    """Base class for every injected-fault exception."""

    def __init__(self, message: str, fault=None):
        super().__init__(message)
        #: The scheduled :class:`~repro.faults.plan.FaultSpec` behind
        #: this failure (``None`` for faults not raised by the injector).
        self.fault = fault


class TransientFaultError(FaultError):
    """A fault the supervisor should retry in place."""


class CollectiveTimeoutError(TransientFaultError):
    """A collective operation timed out (one participant stalled)."""


class FatalFaultError(FaultError):
    """The current incarnation of the run cannot continue."""


class GpuCrashError(FatalFaultError):
    """A GCD died mid-event; recover by rollback-restart."""


class NodeLossError(FatalFaultError):
    """A whole node is permanently gone; recover by elastic regroup."""


class ElasticRecoveryError(FaultError):
    """No legal shrunken topology exists for the surviving world."""

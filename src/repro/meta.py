"""Shape-and-dtype-only array stand-ins for meta (analytic) execution.

Large ORBIT configurations (10B / 113B parameters) cannot be
instantiated as real arrays on one machine.  In *meta mode* the model
and parallelism code paths run with :class:`MetaArray` values: every
module computes output **shapes**, registers **allocations** with the
per-device :class:`~repro.memory.tracker.MemoryTracker`, and reports
**FLOPs** — but never touches numeric data.  Collectives cost-account
meta arrays identically to real ones.

Helper functions (:func:`nbytes_of`, :func:`shape_of`, :func:`is_meta`)
let shared code handle ``numpy.ndarray`` and :class:`MetaArray`
uniformly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MetaArray:
    """An array with a shape and dtype but no data."""

    shape: tuple[int, ...]
    dtype: np.dtype

    def __init__(self, shape: tuple[int, ...] | list[int], dtype=np.float32):
        object.__setattr__(self, "shape", tuple(int(s) for s in shape))
        object.__setattr__(self, "dtype", np.dtype(dtype))
        if any(s < 0 for s in self.shape):
            raise ValueError(f"negative dimension in shape {self.shape}")

    # -- ndarray-compatible surface ---------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return math.prod(self.shape) if self.shape else 1

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    @property
    def T(self) -> "MetaArray":
        return MetaArray(self.shape[::-1], self.dtype)

    def astype(self, dtype) -> "MetaArray":
        return MetaArray(self.shape, dtype)

    def reshape(self, *shape) -> "MetaArray":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        shape = tuple(int(s) for s in shape)
        if -1 in shape:
            known = math.prod(s for s in shape if s != -1)
            if shape.count(-1) != 1 or known == 0 or self.size % known:
                raise ValueError(f"cannot reshape {self.shape} into {shape}")
            shape = tuple(self.size // known if s == -1 else s for s in shape)
        if math.prod(shape) != self.size:
            raise ValueError(f"cannot reshape size {self.size} into {shape}")
        return MetaArray(shape, self.dtype)

    def transpose(self, *axes) -> "MetaArray":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(range(self.ndim))[::-1]
        return MetaArray(tuple(self.shape[a] for a in axes), self.dtype)

    def __repr__(self) -> str:
        return f"MetaArray(shape={self.shape}, dtype={self.dtype.name})"


ArrayLike = "np.ndarray | MetaArray"


def is_meta(x) -> bool:
    """True when ``x`` is a :class:`MetaArray`."""
    return isinstance(x, MetaArray)


def shape_of(x) -> tuple[int, ...]:
    """Shape of an ndarray or MetaArray."""
    return tuple(x.shape)


def nbytes_of(x) -> int:
    """Byte size of an ndarray or MetaArray."""
    return int(x.nbytes)


def dtype_of(x) -> np.dtype:
    """Dtype of an ndarray or MetaArray."""
    return np.dtype(x.dtype)


def meta_like(x) -> MetaArray:
    """A :class:`MetaArray` with the shape/dtype of ``x``."""
    return MetaArray(shape_of(x), dtype_of(x))


def matmul_shape(a_shape: tuple[int, ...], b_shape: tuple[int, ...]) -> tuple[int, ...]:
    """Result shape of ``a @ b`` with NumPy batched-matmul broadcasting."""
    if len(a_shape) < 2 or len(b_shape) < 2:
        raise ValueError("matmul_shape requires >=2-D operands")
    if a_shape[-1] != b_shape[-2]:
        raise ValueError(f"matmul inner-dimension mismatch: {a_shape} @ {b_shape}")
    batch = np.broadcast_shapes(a_shape[:-2], b_shape[:-2])
    return tuple(batch) + (a_shape[-2], b_shape[-1])


def matmul_flops(a_shape: tuple[int, ...], b_shape: tuple[int, ...]) -> int:
    """FLOPs of ``a @ b`` counting one multiply plus one add per MAC."""
    out = matmul_shape(a_shape, b_shape)
    return 2 * math.prod(out) * a_shape[-1]

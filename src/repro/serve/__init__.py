"""Async forecast serving over the fine-tuned model (the user-facing
end of the ORBIT north star).

The stack, bottom to top:

* :mod:`repro.serve.clock` — deterministic simulated-clock event loop;
* :mod:`repro.serve.request` — typed requests/responses, latency window;
* :mod:`repro.serve.policy` — the validated serving-policy record;
* :mod:`repro.serve.batcher` — dynamic micro-batching to a latency budget;
* :mod:`repro.serve.cache` — rollout prefix cache (one chain, all leads);
* :mod:`repro.serve.replica` — replica pool and the service cost model;
* :mod:`repro.serve.autoscale` — queue/p99/utilization-driven scaling;
* :mod:`repro.serve.loadgen` — seeded open-loop Poisson workloads;
* :mod:`repro.serve.server` — the front-end tying it all together;
* :mod:`repro.serve.bench` — the ``BENCH_serve.json`` latency bench.

Invariants: served forecasts are bitwise-equal to direct
:meth:`~repro.eval.rollout.RolloutForecaster.forecast` results, and
identical seeded workloads produce byte-identical serve journals.
"""

from repro.serve.autoscale import Autoscaler, ScaleDecision
from repro.serve.batcher import Batch, MicroBatcher
from repro.serve.cache import RolloutPrefixCache
from repro.serve.clock import EventLoop, SimClock
from repro.serve.loadgen import LoadSpec, generate_requests
from repro.serve.policy import ServePolicy, policy_problems
from repro.serve.replica import Replica, ReplicaPool, ServiceCostModel
from repro.serve.request import (
    STATUS_OK,
    STATUS_REJECTED,
    ForecastRequest,
    ForecastResponse,
    LatencyWindow,
    RequestError,
)
from repro.serve.server import ForecastServer, ServeReport

__all__ = [
    "Autoscaler",
    "Batch",
    "EventLoop",
    "ForecastRequest",
    "ForecastResponse",
    "ForecastServer",
    "LatencyWindow",
    "LoadSpec",
    "MicroBatcher",
    "Replica",
    "ReplicaPool",
    "RequestError",
    "RolloutPrefixCache",
    "STATUS_OK",
    "STATUS_REJECTED",
    "ScaleDecision",
    "ServePolicy",
    "ServeReport",
    "ServiceCostModel",
    "SimClock",
    "generate_requests",
    "policy_problems",
]

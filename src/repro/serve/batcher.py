"""Dynamic micro-batching: coalesce compatible requests up to a budget.

Requests asking for the same variable set share a model output grid, so
one dispatch can serve all of them (the rollout is per ``init_index``,
but the prefix cache makes repeats nearly free — the expensive part is
scheduling, and a batch amortizes it).  The batcher holds the first
request of each compatibility class for at most ``window_s`` of
simulated time, flushing early when the class reaches ``max_batch``.

Flush timing is scheduled through the event loop, so the decision "did
a second request arrive inside the window?" is made in deterministic
simulated time, not wall time.  A generation counter per class guards
the scheduled deadline callback: if the class flushed early (size
trigger) and refilled, the stale deadline finds a newer generation and
does nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.serve.clock import EventLoop
from repro.serve.request import ForecastRequest


@dataclass
class Batch:
    """One flushed micro-batch, ready for a replica."""

    batch_id: int
    requests: list[ForecastRequest]
    formed_s: float
    #: Why the batch flushed: ``"full"`` (hit max_batch), ``"window"``
    #: (deadline expired), or ``"drain"`` (explicit flush_all).
    trigger: str = "window"

    @property
    def size(self) -> int:
        return len(self.requests)


@dataclass
class _Group:
    """Open compatibility class awaiting flush."""

    requests: list[ForecastRequest] = field(default_factory=list)
    opened_s: float = 0.0
    generation: int = 0


class MicroBatcher:
    """Coalesce requests per batch key, flushing on size or deadline.

    ``on_batch(batch)`` is invoked (still inside the event loop's
    deterministic order) whenever a batch becomes ready.
    """

    def __init__(
        self,
        loop: EventLoop,
        on_batch: Callable[[Batch], None],
        *,
        max_batch: int = 8,
        window_s: float = 0.005,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        self.loop = loop
        self.on_batch = on_batch
        self.max_batch = max_batch
        self.window_s = window_s
        self._groups: dict[tuple, _Group] = {}
        self._next_batch_id = 0
        self._next_generation = 0
        self.batches_formed = 0

    @property
    def waiting(self) -> int:
        """Requests held open across all compatibility classes."""
        return sum(len(g.requests) for g in self._groups.values())

    def add(self, request: ForecastRequest) -> None:
        """Admit one request; may flush its class immediately."""
        key = request.batch_key
        group = self._groups.get(key)
        if group is None:
            self._next_generation += 1
            group = self._groups[key] = _Group(
                opened_s=self.loop.now, generation=self._next_generation
            )
            self.loop.schedule(
                self.loop.now + self.window_s, self._deadline, key, group.generation
            )
        group.requests.append(request)
        if len(group.requests) >= self.max_batch:
            self._flush(key, "full")

    def _deadline(self, key: tuple, generation: int) -> None:
        group = self._groups.get(key)
        if group is None or group.generation != generation:
            return  # class flushed early and (maybe) reopened: stale event
        self._flush(key, "window")

    def _flush(self, key: tuple, trigger: str) -> None:
        group = self._groups.pop(key)
        batch = Batch(
            batch_id=self._next_batch_id,
            requests=group.requests,
            formed_s=self.loop.now,
            trigger=trigger,
        )
        self._next_batch_id += 1
        self.batches_formed += 1
        self.on_batch(batch)

    def flush_all(self) -> None:
        """Force every open class out (end-of-run drain)."""
        for key in sorted(self._groups):
            self._flush(key, "drain")

"""Seeded open-loop load generation with hot synoptic windows.

Open-loop means arrivals do not wait for completions: inter-arrival
gaps are exponential at ``rate_rps`` (a Poisson process), so offered
load is independent of how the server is doing — the honest way to
measure latency under overload (closed-loop generators self-throttle
and hide queueing collapse).

Real forecast traffic is *not* uniform over initializations: most
users ask about the current synoptic window, a few about recent ones.
``hot_fraction`` of requests hit a small set of ``num_hot`` windows;
the rest spread over the whole index range.  The hot set is what makes
the rollout prefix cache earn its keep.

Everything is driven by one seeded ``numpy`` generator, so a
:class:`LoadSpec` is a complete, replayable description of a workload:
same spec → byte-identical request stream → byte-identical journals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serve.request import ForecastRequest


@dataclass(frozen=True)
class LoadSpec:
    """A replayable workload description."""

    rate_rps: float = 50.0
    duration_s: float = 4.0
    seed: int = 0
    #: Initialization indices are drawn from ``[0, num_windows)``.
    num_windows: int = 64
    #: ``hot_fraction`` of requests target the first ``num_hot`` windows.
    num_hot: int = 4
    hot_fraction: float = 0.8
    #: Lead times (in base steps) drawn uniformly per request.
    lead_choices: tuple[int, ...] = (2, 4, 8)
    #: Variable sets drawn uniformly per request (batch classes).
    var_choices: tuple[tuple[str, ...], ...] = (
        ("2m_temperature",),
        ("2m_temperature", "geopotential_500"),
    )

    def __post_init__(self):
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps {self.rate_rps} must be > 0")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s {self.duration_s} must be > 0")
        if self.num_windows < 1:
            raise ValueError(f"num_windows {self.num_windows} must be >= 1")
        if not 0 < self.num_hot <= self.num_windows:
            raise ValueError(
                f"num_hot {self.num_hot} must be in [1, {self.num_windows}]"
            )
        if not 0 <= self.hot_fraction <= 1:
            raise ValueError(f"hot_fraction {self.hot_fraction} must be in [0, 1]")
        if not self.lead_choices:
            raise ValueError("lead_choices must not be empty")
        if any(lead < 1 for lead in self.lead_choices):
            raise ValueError(f"lead_choices {self.lead_choices} must all be >= 1")
        if not self.var_choices or any(not v for v in self.var_choices):
            raise ValueError("var_choices must hold non-empty variable tuples")

    def as_dict(self) -> dict:
        return {
            "rate_rps": self.rate_rps,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "num_windows": self.num_windows,
            "num_hot": self.num_hot,
            "hot_fraction": self.hot_fraction,
            "lead_choices": list(self.lead_choices),
            "var_choices": [list(v) for v in self.var_choices],
        }


def generate_requests(spec: LoadSpec) -> list[ForecastRequest]:
    """Materialize the workload: one seeded pass, arrival-ordered."""
    rng = np.random.default_rng(spec.seed)
    requests: list[ForecastRequest] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / spec.rate_rps))
        if t >= spec.duration_s:
            break
        if float(rng.random()) < spec.hot_fraction:
            init_index = int(rng.integers(0, spec.num_hot))
        else:
            init_index = int(rng.integers(0, spec.num_windows))
        lead = int(spec.lead_choices[int(rng.integers(0, len(spec.lead_choices)))])
        out_vars = spec.var_choices[int(rng.integers(0, len(spec.var_choices)))]
        requests.append(
            ForecastRequest(
                request_id=len(requests),
                init_index=init_index,
                lead_steps=lead,
                out_vars=tuple(out_vars),
                arrival_s=t,
            )
        )
    return requests

"""The serving policy: every knob of the front-end in one frozen record.

Mirrors the training stack's split between *identity* and *policy*:
none of these knobs change what a forecast **is** (served responses
are bitwise-equal to direct :class:`~repro.eval.rollout.
RolloutForecaster` output under every setting) — they change queueing,
batching, caching, and scaling behaviour, i.e. *when* a response
arrives and what it costs.  :class:`~repro.runtime.spec.RunSpec`
carries the same knobs as policy-tagged fields so a serve deployment
is described by the same validated spec as the training run that
produced its model; :meth:`ServePolicy.from_spec` is the bridge.
"""

from __future__ import annotations

from dataclasses import dataclass

_DEFAULTS = dict(
    autoscale_tick_s=0.25,
    target_p99_s=0.25,
    queue_high=16,
    utilization_low=0.30,
    cooldown_s=0.5,
)


def policy_problems(
    *,
    max_batch: int,
    batch_window_s: float,
    queue_limit: int,
    cache_entries: int,
    min_replicas: int,
    max_replicas: int,
    autoscale_tick_s: float = _DEFAULTS["autoscale_tick_s"],
    target_p99_s: float = _DEFAULTS["target_p99_s"],
    queue_high: int = _DEFAULTS["queue_high"],
    utilization_low: float = _DEFAULTS["utilization_low"],
    cooldown_s: float = _DEFAULTS["cooldown_s"],
) -> list[str]:
    """Human-readable explanations of every invalid knob; empty = valid.

    The single place the serving knobs' legality rules live —
    :class:`ServePolicy` construction and
    :meth:`~repro.runtime.spec.RunSpec.topology_errors` both route
    through here, so an illegal deployment fails identically no matter
    which door it comes through (the RunSpec pattern).
    """
    out: list[str] = []
    if max_batch < 1:
        out.append(f"invalid serve max_batch {max_batch}: must be >= 1")
    if batch_window_s < 0:
        out.append(f"invalid serve batch_window_s {batch_window_s}: must be >= 0")
    if queue_limit < 1:
        out.append(f"invalid serve queue_limit {queue_limit}: must be >= 1")
    if cache_entries < 0:
        out.append(f"invalid serve cache_entries {cache_entries}: must be >= 0")
    if min_replicas < 1:
        out.append(f"invalid serve min_replicas {min_replicas}: must be >= 1")
    if max_replicas < min_replicas:
        out.append(
            f"invalid serve replica bounds: max {max_replicas} < "
            f"min {min_replicas}"
        )
    if autoscale_tick_s <= 0:
        out.append(
            f"invalid serve autoscale_tick_s {autoscale_tick_s}: must be > 0"
        )
    if target_p99_s <= 0:
        out.append(f"invalid serve target_p99_s {target_p99_s}: must be > 0")
    if queue_high < 1:
        out.append(f"invalid serve queue_high {queue_high}: must be >= 1")
    if not 0 <= utilization_low <= 1:
        out.append(
            f"invalid serve utilization_low {utilization_low}: must be in [0, 1]"
        )
    if cooldown_s < 0:
        out.append(f"invalid serve cooldown_s {cooldown_s}: must be >= 0")
    return out


@dataclass(frozen=True)
class ServePolicy:
    """Queue/batcher/cache/autoscaler configuration for one deployment."""

    #: Dynamic micro-batching: coalesce up to ``max_batch`` compatible
    #: requests, waiting at most ``batch_window_s`` after the first.
    max_batch: int = 8
    batch_window_s: float = 0.005
    #: Admission control: requests beyond this many waiting (in batcher
    #: groups or ready batches) are rejected instead of queued.
    queue_limit: int = 256
    #: Rollout prefix cache capacity, in synoptic windows (0 disables).
    cache_entries: int = 32
    #: Replica-pool bounds for the autoscaler.
    min_replicas: int = 1
    max_replicas: int = 4
    #: Autoscaler cadence and objectives.
    autoscale_tick_s: float = 0.25
    target_p99_s: float = 0.25
    queue_high: int = 16
    utilization_low: float = 0.30
    cooldown_s: float = 0.5

    def __post_init__(self):
        problems = self.problems()
        if problems:
            raise ValueError("; ".join(problems))

    def problems(self) -> list[str]:
        """See :func:`policy_problems`."""
        return policy_problems(
            max_batch=self.max_batch,
            batch_window_s=self.batch_window_s,
            queue_limit=self.queue_limit,
            cache_entries=self.cache_entries,
            min_replicas=self.min_replicas,
            max_replicas=self.max_replicas,
            autoscale_tick_s=self.autoscale_tick_s,
            target_p99_s=self.target_p99_s,
            queue_high=self.queue_high,
            utilization_low=self.utilization_low,
            cooldown_s=self.cooldown_s,
        )

    @classmethod
    def from_spec(cls, spec) -> "ServePolicy":
        """The policy a :class:`~repro.runtime.spec.RunSpec` describes."""
        return cls(
            max_batch=spec.serve_max_batch,
            batch_window_s=spec.serve_window_s,
            queue_limit=spec.serve_queue_limit,
            cache_entries=spec.serve_cache_entries,
            min_replicas=spec.serve_min_replicas,
            max_replicas=spec.serve_max_replicas,
        )

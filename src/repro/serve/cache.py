"""Rollout prefix cache: one autoregressive chain serves every shorter lead.

The expensive object in forecast serving is the rollout — ``k`` model
applications to reach lead ``k``.  But rollouts *nest*: the chain that
produced a lead-20 forecast passed through every lead below it.  The
cache therefore stores, per synoptic window (``init_index``), the list
of **normalized** states ``states[k]`` after ``k`` base-lead
applications.  A request for any lead ≤ the cached depth is a pure
lookup (zero model steps); a deeper request extends the chain from the
last cached state, paying only for the new steps.

Variables ride free: states are all-channel, and output selection
happens at :meth:`~repro.eval.rollout.RolloutForecaster.finalize`
time, so the key is ``init_index`` alone — one entry subsumes every
``(lead_steps, out_vars)`` combination the issue's conceptual
``(init_index, lead_steps, out_vars)`` key spans.

Determinism contract: extension reuses the exact
:meth:`~repro.eval.rollout.RolloutForecaster.advance` /
:meth:`~repro.eval.rollout.RolloutForecaster.finalize` chain that
``forecast`` runs, so a cache hit, a partial extension, and a
from-scratch recompute are **bitwise identical** — eviction can change
cost, never bytes.  ``tests/serve/test_cache.py`` asserts this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class _Entry:
    """Cached rollout prefix for one synoptic window."""

    #: ``states[k]`` = normalized all-channel state after ``k`` steps.
    states: list[np.ndarray] = field(default_factory=list)
    #: Last-access stamp for LRU eviction.
    tick: int = 0

    @property
    def depth(self) -> int:
        """Deepest lead (in base steps) this prefix reaches."""
        return len(self.states) - 1


class RolloutPrefixCache:
    """LRU cache of rollout prefixes, keyed by ``init_index``.

    ``capacity`` counts synoptic windows, not states; 0 disables
    caching entirely (every request recomputes from scratch).
    """

    def __init__(self, capacity: int = 32):
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0")
        self.capacity = capacity
        self._entries: dict[int, _Entry] = {}
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.steps_computed = 0

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def depth(self, init_index: int) -> int:
        """Cached prefix depth for a window (-1 when absent)."""
        entry = self._entries.get(init_index)
        return -1 if entry is None else entry.depth

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_ratio": self.hit_ratio,
            "steps_computed": self.steps_computed,
        }

    # -- the serving path ----------------------------------------------------
    def forecast(
        self,
        forecaster,
        dataset,
        init_index: int,
        lead_steps: int,
        out_vars=None,
    ) -> tuple[np.ndarray, int, bool]:
        """Serve one forecast through the cache.

        Returns ``(result, new_steps, hit)``: the denormalized output
        field, the number of model applications newly paid for, and
        whether the request was a full prefix hit (``new_steps == 0``).
        """
        if lead_steps % forecaster.base_lead_steps:
            raise ValueError(
                f"lead {lead_steps} not a multiple of the rollout step "
                f"{forecaster.base_lead_steps}"
            )
        applications = lead_steps // forecaster.base_lead_steps

        if self.capacity == 0:
            self.misses += 1
            self.steps_computed += applications
            static = dataset.registry.static_indices
            state = forecaster.initial_state(dataset, init_index)
            for _ in range(applications):
                state = forecaster.advance(state, static)
            return forecaster.finalize(state, dataset, out_vars), applications, False

        entry = self._entries.get(init_index)
        if entry is None:
            entry = _Entry(states=[forecaster.initial_state(dataset, init_index)])
            self._entries[init_index] = entry
            self._evict_beyond_capacity(keep=init_index)

        new_steps = max(0, applications - entry.depth)
        if new_steps == 0:
            self.hits += 1
        else:
            self.misses += 1
            static = dataset.registry.static_indices
            state = entry.states[-1]
            for _ in range(new_steps):
                state = forecaster.advance(state, static)
                entry.states.append(state)
            self.steps_computed += new_steps

        self._tick += 1
        entry.tick = self._tick
        result = forecaster.finalize(entry.states[applications], dataset, out_vars)
        return result, new_steps, new_steps == 0

    def _evict_beyond_capacity(self, keep: int) -> None:
        while len(self._entries) > self.capacity:
            victim = min(
                (idx for idx in self._entries if idx != keep),
                key=lambda idx: self._entries[idx].tick,
            )
            del self._entries[victim]
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

"""The async forecast front-end: queue → batcher → replicas, on one loop.

:class:`ForecastServer` wires the serving pieces together over the
deterministic event loop:

* arrivals pass **admission control** (reject beyond ``queue_limit``)
  and enter the :class:`~repro.serve.batcher.MicroBatcher`;
* flushed batches queue in arrival order and are dispatched to the
  lowest-id idle replica (deterministic tie-break);
* dispatch computes every response **through the rollout prefix
  cache** — the arrays handed back are bitwise-equal to direct
  :meth:`~repro.eval.rollout.RolloutForecaster.forecast` results — and
  occupies the replica for the modeled service time;
* completions stamp latencies, feed the autoscaler's sliding window,
  and pull more batches;
* a fixed-cadence autoscaler tick reads queue depth / p99 /
  utilization and resizes the pool.

Everything observable — spans, metrics, journal events — derives from
seeded simulation state, so two runs of the same workload produce
byte-identical journals (asserted in ``tests/serve/test_server.py``).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.obs.journal import EventJournal
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.serve.autoscale import Autoscaler, ScaleDecision
from repro.serve.batcher import Batch, MicroBatcher
from repro.serve.cache import RolloutPrefixCache
from repro.serve.clock import EventLoop
from repro.serve.policy import ServePolicy
from repro.serve.replica import ReplicaPool, ServiceCostModel
from repro.serve.request import (
    STATUS_OK,
    STATUS_REJECTED,
    ForecastRequest,
    ForecastResponse,
    LatencyWindow,
)

_JSON_KWARGS = dict(sort_keys=True, separators=(",", ":"))


@dataclass
class ServeReport:
    """Everything one serve run produced, for benches and artifacts."""

    policy: ServePolicy
    responses: list[ForecastResponse] = field(default_factory=list)
    decisions: list[ScaleDecision] = field(default_factory=list)
    cache_stats: dict = field(default_factory=dict)
    replicas_final: int = 0
    replicas_peak: int = 0
    utilization: float = 0.0
    makespan_s: float = 0.0
    events_fired: int = 0

    @property
    def completed(self) -> list[ForecastResponse]:
        return [r for r in self.responses if r.ok]

    @property
    def rejected(self) -> list[ForecastResponse]:
        return [r for r in self.responses if r.status == STATUS_REJECTED]

    def latencies(self) -> list[float]:
        return [r.latency_s for r in self.completed]

    def stats(self) -> dict:
        """The bench-facing scalar summary."""
        latencies = sorted(self.latencies())

        def pct(q: float) -> float:
            if not latencies:
                return 0.0
            rank = max(0, -(-int(q * len(latencies)) // 100) - 1)
            return latencies[min(rank, len(latencies) - 1)]

        completed = len(latencies)
        return {
            "offered": len(self.responses),
            "completed": completed,
            "rejected": len(self.rejected),
            "throughput_rps": completed / self.makespan_s if self.makespan_s else 0.0,
            "latency_p50_s": pct(50),
            "latency_p99_s": pct(99),
            "latency_mean_s": sum(latencies) / completed if completed else 0.0,
            "cache_hit_ratio": self.cache_stats.get("hit_ratio", 0.0),
            "model_steps": self.cache_stats.get("steps_computed", 0),
            "replicas_final": self.replicas_final,
            "replicas_peak": self.replicas_peak,
            "utilization": self.utilization,
            "makespan_s": self.makespan_s,
        }

    def latency_histogram(self, bins: int = 20) -> dict:
        """Fixed-bin latency histogram for the CI artifact."""
        latencies = self.latencies()
        if not latencies:
            return {"bins": [], "counts": [], "unit": "s"}
        low, high = min(latencies), max(latencies)
        if high <= low:
            high = low + 1e-9
        edges = [low + (high - low) * i / bins for i in range(bins + 1)]
        counts = [0] * bins
        for value in latencies:
            slot = min(int((value - low) / (high - low) * bins), bins - 1)
            counts[slot] += 1
        return {"bins": edges, "counts": counts, "unit": "s"}

    def histogram_json(self, bins: int = 20) -> str:
        """Canonical JSON encoding of :meth:`latency_histogram`."""
        return json.dumps(self.latency_histogram(bins), **_JSON_KWARGS) + "\n"


class ForecastServer:
    """Serve forecast requests from one fine-tuned model, deterministically.

    Parameters
    ----------
    forecaster:
        A :class:`~repro.eval.rollout.RolloutForecaster` over the
        served model.
    dataset:
        The dataset supplying initial conditions (synoptic windows).
    policy:
        Queue/batch/cache/scaling knobs (:class:`ServePolicy`).
    cost_model, tracer, journal, metrics:
        Optional; defaults are a stock cost model and null/fresh
        observability objects.
    """

    def __init__(
        self,
        forecaster,
        dataset,
        policy: ServePolicy | None = None,
        *,
        cost_model: ServiceCostModel | None = None,
        tracer=NULL_TRACER,
        journal: EventJournal | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.forecaster = forecaster
        self.dataset = dataset
        self.policy = policy or ServePolicy()
        self.cost_model = cost_model or ServiceCostModel()
        self.tracer = tracer
        self.journal = journal if journal is not None else EventJournal()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

        self.loop = EventLoop()
        self.cache = RolloutPrefixCache(self.policy.cache_entries)
        self.pool = ReplicaPool(self.cost_model, initial=self.policy.min_replicas)
        self.autoscaler = Autoscaler(self.policy)
        self.batcher = MicroBatcher(
            self.loop,
            self._on_batch,
            max_batch=self.policy.max_batch,
            window_s=self.policy.batch_window_s,
        )
        self.latency_window = LatencyWindow()
        self._ready: deque[Batch] = deque()
        self._responses: list[ForecastResponse] = []
        self._outstanding = 0
        self._arrivals_remaining = 0
        self._replicas_peak = len(self.pool)

    # -- queue state ---------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Admitted requests not yet dispatched (batcher + ready batches)."""
        return self.batcher.waiting + sum(b.size for b in self._ready)

    # -- the run -------------------------------------------------------------
    def serve(self, requests: list[ForecastRequest]) -> ServeReport:
        """Run the full workload to completion; one call per server."""
        self._arrivals_remaining = len(requests)
        self.journal.record_serve(
            0, "start", message=f"serving {len(requests)} requests"
        )
        for request in requests:
            self.loop.schedule(request.arrival_s, self._arrive, request)
        if requests:
            self.loop.schedule(self.policy.autoscale_tick_s, self._autoscale_tick)
        self.loop.run_until_idle()
        self.batcher.flush_all()  # safety net; windows should have fired
        self.loop.run_until_idle()

        makespan = max((r.completed_s for r in self._responses), default=0.0)
        self.journal.record_serve(
            len(self._responses), "end",
            message=(
                f"served {len(self._responses)} responses in "
                f"{makespan:.4f}s simulated"
            ),
            data={"makespan_s": makespan},
        )
        self.metrics.gauge("serve.replicas").set(len(self.pool))
        report = ServeReport(
            policy=self.policy,
            responses=sorted(self._responses, key=lambda r: r.request.request_id),
            decisions=list(self.autoscaler.decisions),
            cache_stats=self.cache.stats(),
            replicas_final=len(self.pool),
            replicas_peak=self._replicas_peak,
            utilization=self.pool.utilization(makespan) if makespan else 0.0,
            makespan_s=makespan,
            events_fired=self.loop.fired,
        )
        return report

    # -- event handlers ------------------------------------------------------
    def _arrive(self, request: ForecastRequest) -> None:
        self._arrivals_remaining -= 1
        self.metrics.counter("serve.requests").inc()
        if self.queue_depth >= self.policy.queue_limit:
            response = ForecastResponse(
                request=request,
                status=STATUS_REJECTED,
                completed_s=self.loop.now,
                detail=f"queue at limit {self.policy.queue_limit}",
            )
            self._responses.append(response)
            self.metrics.counter("serve.rejected").inc()
            self.journal.record_serve(
                request.request_id, "reject", severity="warning",
                message=f"request {request.request_id} rejected: queue full",
                data={"queue_depth": self.queue_depth},
            )
            return
        self._outstanding += 1
        self.batcher.add(request)
        self.metrics.gauge("serve.queue_depth").max(self.queue_depth)

    def _on_batch(self, batch: Batch) -> None:
        self._ready.append(batch)
        self.metrics.histogram("serve.batch_size").observe(batch.size)
        self._drain()

    def _drain(self) -> None:
        while self._ready:
            replica = self.pool.acquire_idle(self.loop.now)
            if replica is None:
                return
            self._dispatch(self._ready.popleft(), replica)

    def _dispatch(self, batch: Batch, replica) -> None:
        now = self.loop.now
        responses: list[ForecastResponse] = []
        batch_steps = 0
        for request in batch.requests:
            result, new_steps, hit = self.cache.forecast(
                self.forecaster,
                self.dataset,
                request.init_index,
                request.lead_steps,
                request.out_vars,
            )
            batch_steps += new_steps
            if hit:
                self.metrics.counter("serve.cache_hits").inc()
            responses.append(
                ForecastResponse(
                    request=request,
                    status=STATUS_OK,
                    completed_s=0.0,  # stamped at completion
                    result=result,
                    dispatched_s=now,
                    batch_id=batch.batch_id,
                    replica=replica.replica_id,
                    cache_hit=hit,
                    model_steps=new_steps,
                )
            )
        service_s = self.cost_model.batch_service_s(batch.size, batch_steps)
        done_s = replica.begin_batch(now, service_s, batch.size)
        self.tracer.span(
            "serve", f"batch.{batch.batch_id}", replica.replica_id, now, service_s,
            size=batch.size, steps=batch_steps,
        )
        self.loop.schedule(done_s, self._complete, responses)

    def _complete(self, responses: list[ForecastResponse]) -> None:
        now = self.loop.now
        for response in responses:
            response.completed_s = now
            self._responses.append(response)
            self._outstanding -= 1
            self.latency_window.observe(response.latency_s)
            self.metrics.histogram("serve.latency_s").observe(response.latency_s)
        self._drain()

    def _autoscale_tick(self) -> None:
        decision = self.autoscaler.evaluate(
            self.loop.now,
            self.queue_depth,
            self.latency_window.percentile(99),
            self.pool,
        )
        self._replicas_peak = max(self._replicas_peak, len(self.pool))
        self.metrics.gauge("serve.replicas").set(decision.replicas)
        if decision.action != "hold":
            self.metrics.counter(f"serve.scale_{decision.action}").inc()
            self.journal.record_serve(
                len(self._responses), f"scale_{decision.action}",
                message=decision.reason,
                data=decision.as_dict(),
            )
            if decision.action == "up":
                # the new replica becomes usable mid-flight; pull work then
                ready_at = max(
                    r.ready_at_s for r in self.pool.replicas.values()
                )
                self.loop.schedule(ready_at, self._drain)
        if self._outstanding > 0 or self._arrivals_remaining > 0:
            self.loop.schedule(
                self.loop.now + self.policy.autoscale_tick_s, self._autoscale_tick
            )

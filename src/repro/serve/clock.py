"""Deterministic simulated-clock event loop for the serving front-end.

The serving stack is "async" the same way the training stack is
"distributed": time is simulated, not measured.  Every latency the
bench reports — queueing delay, batching window, service time — is a
pure-float quantity derived from the seeded workload and the service
cost model, so two runs of the same seeded load produce bitwise
identical latency distributions and byte-identical journals (the
repo's reproducibility invariant extended to serving).

The loop is a plain binary heap of ``(time, seq, callback)`` entries.
``seq`` is a monotonically increasing stamp assigned at scheduling
time, so events scheduled for the same instant fire in program order —
float ties can never make the replay order depend on heap internals.
"""

from __future__ import annotations

import heapq
from typing import Callable


class SimClock:
    """The monotone simulated clock; owned by the :class:`EventLoop`."""

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def advance_to(self, when: float) -> None:
        if when < self.now:
            raise ValueError(
                f"simulated clock cannot run backwards: at {self.now:.6f}, "
                f"asked for {when:.6f}"
            )
        self.now = when


class EventLoop:
    """Run scheduled callbacks in deterministic time order.

    Callbacks may schedule further events (arrivals schedule batch
    flushes, dispatches schedule completions, autoscaler ticks
    reschedule themselves); the loop drains when no events remain.
    """

    def __init__(self, start: float = 0.0):
        self.clock = SimClock(start)
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        self.fired = 0

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def pending(self) -> int:
        """Events still scheduled (not yet fired)."""
        return len(self._heap)

    def schedule(self, when: float, callback: Callable, *args) -> None:
        """Run ``callback(*args)`` at simulated time ``when``.

        Scheduling into the past is an error — the simulated clock is
        monotone, so a causality violation is a bug, not a rounding
        issue to paper over.
        """
        when = float(when)
        if when < self.clock.now:
            raise ValueError(
                f"cannot schedule at {when:.6f}: clock is at {self.clock.now:.6f}"
            )
        heapq.heappush(self._heap, (when, self._seq, callback, args))
        self._seq += 1

    def run_next(self) -> bool:
        """Fire the earliest pending event; False when the loop is idle."""
        if not self._heap:
            return False
        when, _, callback, args = heapq.heappop(self._heap)
        self.clock.advance_to(when)
        self.fired += 1
        callback(*args)
        return True

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Drain the heap; returns the number of events fired.

        ``max_events`` is a runaway backstop (a self-rescheduling tick
        that never stops would otherwise spin forever).
        """
        start = self.fired
        while self.run_next():
            if self.fired - start > max_events:
                raise RuntimeError(
                    f"event loop exceeded {max_events} events without draining"
                )
        return self.fired - start

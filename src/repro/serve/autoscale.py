"""Goodput-driven autoscaling for the serving replica pool.

The scaler runs on a fixed simulated-time tick and looks at three
signals, in priority order:

1. **queue depth** — requests waiting (batcher + ready batches).  Above
   ``queue_high``, add a replica: latency is already lost, stop the
   backlog from compounding.
2. **p99 latency** — the sliding-window p99 of recent completions
   against ``target_p99_s``.  The SLO signal: scale up before the
   queue alarm fires when service is merely *slow*.
3. **utilization** — busy/capacity replica-seconds, the
   ``GoodputLedger`` idea applied to serving.  Below
   ``utilization_low`` with an idle replica and a quiet queue, retire
   one: idle replicas are pure goodput loss.

Every decision respects the pool bounds and a cooldown, and each tick
produces a typed :class:`ScaleDecision` so the journal can replay the
scaler's reasoning byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.policy import ServePolicy
from repro.serve.replica import ReplicaPool


@dataclass(frozen=True)
class ScaleDecision:
    """One autoscaler tick's outcome, journaled verbatim."""

    at_s: float
    action: str  # "up" | "down" | "hold"
    reason: str
    replicas: int
    queue_depth: int
    p99_s: float
    utilization: float

    def as_dict(self) -> dict:
        return {
            "at_s": self.at_s,
            "action": self.action,
            "reason": self.reason,
            "replicas": self.replicas,
            "queue_depth": self.queue_depth,
            "p99_s": self.p99_s,
            "utilization": self.utilization,
        }


class Autoscaler:
    """Evaluate the three signals against a :class:`ServePolicy`."""

    def __init__(self, policy: ServePolicy):
        self.policy = policy
        self._last_action_s = float("-inf")
        self.decisions: list[ScaleDecision] = []

    def evaluate(
        self,
        now: float,
        queue_depth: int,
        p99_s: float,
        pool: ReplicaPool,
    ) -> ScaleDecision:
        """Decide and *apply* one scaling action on the pool."""
        policy = self.policy
        action, reason = "hold", "signals nominal"
        utilization = pool.utilization(now)
        in_cooldown = now - self._last_action_s < policy.cooldown_s

        if in_cooldown:
            reason = "cooldown"
        elif queue_depth > policy.queue_high and len(pool) < policy.max_replicas:
            action = "up"
            reason = f"queue depth {queue_depth} > {policy.queue_high}"
        elif p99_s > policy.target_p99_s and len(pool) < policy.max_replicas:
            action = "up"
            reason = f"p99 {p99_s:.4f}s > target {policy.target_p99_s:.4f}s"
        elif (
            utilization < policy.utilization_low
            and queue_depth == 0
            and len(pool) > policy.min_replicas
        ):
            action = "down"
            reason = (
                f"utilization {utilization:.3f} < {policy.utilization_low:.3f}"
            )

        if action == "up":
            pool.scale_up(now)
            self._last_action_s = now
        elif action == "down":
            if pool.scale_down(now) is None:
                action, reason = "hold", "scale-down deferred: no idle replica"
            else:
                self._last_action_s = now

        decision = ScaleDecision(
            at_s=now,
            action=action,
            reason=reason,
            replicas=len(pool),
            queue_depth=queue_depth,
            p99_s=p99_s,
            utilization=utilization,
        )
        self.decisions.append(decision)
        return decision

"""Replica pool and the modeled cost of serving a batch.

Replicas are simulated inference workers: each holds (conceptually) a
copy of the fine-tuned model and serves one micro-batch at a time.
As everywhere in this repo, their time is *modeled*, not measured —
:class:`ServiceCostModel` prices a batch from its size and the number
of model applications it newly pays for, so identical seeded workloads
cost identical simulated seconds.

The pool does the bookkeeping the autoscaler needs: per-replica busy
time (for utilization), ready-at times (scale-up pays a setup cost),
and safe scale-down (only idle replicas can be retired — a busy
replica finishes its batch first).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ServiceCostModel:
    """Simulated service time of one micro-batch on one replica.

    ``setup_s`` is the fixed dispatch overhead per batch; each request
    adds ``per_request_s`` (output assembly), and each *newly computed*
    autoregressive model application adds ``per_step_s`` — so a
    prefix-cache hit is visibly cheaper on the latency histogram, not
    just in a counter.
    """

    setup_s: float = 2e-3
    per_request_s: float = 2e-4
    per_step_s: float = 1.5e-3
    #: Cold-start cost of bringing a new replica into the pool.
    replica_setup_s: float = 0.05

    def batch_service_s(self, num_requests: int, model_steps: int) -> float:
        if num_requests < 1:
            raise ValueError("a batch serves at least one request")
        return (
            self.setup_s
            + self.per_request_s * num_requests
            + self.per_step_s * model_steps
        )


@dataclass
class Replica:
    """One simulated inference worker."""

    replica_id: int
    ready_at_s: float = 0.0
    busy_until_s: float = 0.0
    busy_s: float = 0.0
    batches_served: int = 0
    requests_served: int = 0

    def idle_at(self, now: float) -> bool:
        return now >= self.ready_at_s and now >= self.busy_until_s

    def begin_batch(self, start_s: float, service_s: float, num_requests: int) -> float:
        """Occupy the replica for one batch; returns the completion time."""
        if not self.idle_at(start_s):
            raise RuntimeError(
                f"replica {self.replica_id} is not idle at {start_s:.6f}"
            )
        self.busy_until_s = start_s + service_s
        self.busy_s += service_s
        self.batches_served += 1
        self.requests_served += num_requests
        return self.busy_until_s


class ReplicaPool:
    """The live replica set, with deterministic scale up/down."""

    def __init__(self, cost_model: ServiceCostModel, initial: int = 1):
        if initial < 1:
            raise ValueError("pool starts with at least one replica")
        self.cost_model = cost_model
        self._next_id = 0
        self.replicas: dict[int, Replica] = {}
        self.retired: list[Replica] = []
        for _ in range(initial):
            self._add(ready_at_s=0.0)

    def _add(self, ready_at_s: float) -> Replica:
        replica = Replica(replica_id=self._next_id, ready_at_s=ready_at_s)
        self._next_id += 1
        self.replicas[replica.replica_id] = replica
        return replica

    def __len__(self) -> int:
        return len(self.replicas)

    def acquire_idle(self, now: float) -> Replica | None:
        """Lowest-id idle replica (deterministic pick), or None."""
        for replica_id in sorted(self.replicas):
            replica = self.replicas[replica_id]
            if replica.idle_at(now):
                return replica
        return None

    def idle_count(self, now: float) -> int:
        return sum(1 for r in self.replicas.values() if r.idle_at(now))

    def scale_up(self, now: float) -> Replica:
        """Add a replica; it becomes usable after the cold-start cost."""
        return self._add(ready_at_s=now + self.cost_model.replica_setup_s)

    def scale_down(self, now: float) -> Replica | None:
        """Retire the highest-id idle replica; None when all are busy."""
        for replica_id in sorted(self.replicas, reverse=True):
            replica = self.replicas[replica_id]
            if replica.idle_at(now):
                self.retired.append(self.replicas.pop(replica_id))
                return replica
        return None

    # -- utilization accounting (GoodputLedger style) ------------------------
    def busy_seconds(self) -> float:
        return sum(r.busy_s for r in self.replicas.values()) + sum(
            r.busy_s for r in self.retired
        )

    def utilization(self, now: float) -> float:
        """Busy fraction of live replica-seconds so far.

        Live capacity only (retired replicas paid for their busy time
        while alive); the autoscaler reads this as "how much of what I
        am currently paying for is working?".
        """
        if now <= 0 or not self.replicas:
            return 0.0
        live_busy = sum(
            min(r.busy_s, max(0.0, now - r.ready_at_s))
            for r in self.replicas.values()
        )
        capacity = sum(max(0.0, now - r.ready_at_s) for r in self.replicas.values())
        return live_busy / capacity if capacity > 0 else 0.0

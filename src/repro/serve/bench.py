"""Latency/throughput bench for the serving front-end (``BENCH_serve.json``).

Runs a fixed matrix of seeded workloads — three offered-load levels
over the same small forecast world — and records the serving headline
numbers: p50/p99 latency, throughput, cache-hit ratio, rejection
count, replica peak, utilization.  Everything downstream of the seeds
is pure-float simulated arithmetic (open-loop arrivals, cost-model
service times, deterministic event ordering), so the committed
baseline only moves when a code change moves the modeled system — the
same contract as ``BENCH_obs.json``, gated by the same CI tolerance
check (``repro serve --check``).

The world is deliberately tiny (8x16 grid, four variables, an
untrained seeded model): the bench measures the *serving* system —
queueing, batching, caching, scaling — not forecast skill, and an
untrained model runs the identical code path at a fraction of the
cost.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, replace
from pathlib import Path

from repro.serve.loadgen import LoadSpec, generate_requests
from repro.serve.policy import ServePolicy
from repro.serve.server import ForecastServer, ServeReport
from repro.utils.logging import get_logger

_LOG = get_logger("serve.bench")

#: Format version of ``BENCH_serve.json``.
SCHEMA_VERSION = 1

#: Default drift tolerance for the regression gate (fractional).
DEFAULT_TOLERANCE = 0.05

#: The served variable sets (two micro-batch compatibility classes).
_VAR_CHOICES = (
    ("2m_temperature",),
    ("2m_temperature", "geopotential_500"),
)

#: Geometry of the serving model: all four world channels in and out
#: (a rollout model), on the bench world's 8x16 grid.  ``repro serve``
#: builds its Session's :class:`~repro.models.configs.OrbitConfig`
#: from these so the gathered weights drop straight into the world.
SERVE_CONFIG_KWARGS = dict(
    embed_dim=16, depth=1, num_heads=2, in_vars=4, out_vars=4,
    img_height=8, img_width=16, patch_size=4,
)

_BASE_LOAD = LoadSpec(
    rate_rps=25.0,
    duration_s=4.0,
    seed=0,
    num_windows=48,
    num_hot=4,
    hot_fraction=0.85,
    lead_choices=(2, 4, 8),
    var_choices=_VAR_CHOICES,
)


@dataclass(frozen=True)
class ServeBenchCase:
    """One point of the serving bench matrix."""

    name: str
    load: LoadSpec
    policy: ServePolicy = ServePolicy()
    #: Included in the ``--quick`` subset (CI time limits).
    quick: bool = False


#: The committed matrix: four offered-load levels over the same world.
#: The two hot-window workloads are where the prefix cache earns its
#: >0.5 hit ratio on one replica; the cold (uniform) workload
#: overflows the 32-entry cache and drives the autoscaler up; the
#: surge saturates the 4-replica ceiling and exercises admission
#: control (rejections).
DEFAULT_MATRIX: tuple[ServeBenchCase, ...] = (
    ServeBenchCase("hot-25rps", _BASE_LOAD, quick=True),
    ServeBenchCase(
        "hot-150rps", replace(_BASE_LOAD, rate_rps=150.0, duration_s=2.5),
    ),
    ServeBenchCase(
        "cold-300rps",
        replace(_BASE_LOAD, rate_rps=300.0, duration_s=1.5, hot_fraction=0.0),
    ),
    ServeBenchCase(
        "surge-800rps",
        replace(_BASE_LOAD, rate_rps=800.0, duration_s=1.0, hot_fraction=0.0),
    ),
)


def build_serve_world(seed: int = 0, model=None):
    """The shared bench world: ``(dataset, forecaster)``.

    An 8x16 grid with one static and three dynamic variables, the
    synthetic-ERA5 2020 evaluation year as the synoptic windows, and a
    tiny seeded (untrained) model wrapped in a
    :class:`~repro.eval.rollout.RolloutForecaster`.  ``out_names``
    covers every channel because the rollout feeds its output back as
    the next input; requests select their variables at finalize time.

    ``model`` overrides the built-in seeded model — the ``repro
    serve --smoke`` path passes a
    :meth:`~repro.runtime.session.Session.serving_model` here, so the
    Session→serve hand-off runs through the same world.  It must match
    :data:`SERVE_CONFIG_KWARGS` geometry.
    """
    from repro.data import LatLonGrid, Normalizer, SyntheticERA5, default_registry
    from repro.data.dataset import ClimateDataset
    from repro.eval.rollout import RolloutForecaster
    from repro.models import OrbitConfig, build_model

    names = ["land_sea_mask", "2m_temperature", "temperature_850",
             "geopotential_500"]
    registry = default_registry(91).subset(names)
    era5 = SyntheticERA5(LatLonGrid(8, 16), registry, seed=1979,
                         steps_per_year=64)
    test = era5.test()
    dataset = ClimateDataset(
        era5.system,
        start_step=test.start_step,
        num_steps=test.num_steps,
        out_names=list(registry.names),
        name="serve-bench",
    )
    normalizer = Normalizer.fit(dataset, num_samples=16)
    if model is None:
        model = build_model(
            OrbitConfig("serve-bench", **SERVE_CONFIG_KWARGS), rng=seed
        )
    return dataset, RolloutForecaster(model, normalizer)


def run_serve_case(case: ServeBenchCase, world=None) -> dict:
    """Run one workload; returns the case's bench record (a dict)."""
    if world is None:
        world = build_serve_world()
    dataset, forecaster = world
    server = ForecastServer(forecaster, dataset, case.policy)
    report = server.serve(generate_requests(case.load))
    stats = report.stats()
    _LOG.info(
        "serve bench %s: %d/%d ok, p99 %.4fs, %.1f rps, hit %.2f",
        case.name, stats["completed"], stats["offered"],
        stats["latency_p99_s"], stats["throughput_rps"],
        stats["cache_hit_ratio"],
    )
    record = {"load": case.load.as_dict()}
    record.update(stats)
    return record


def run_serve_matrix(
    cases=DEFAULT_MATRIX, quick: bool = False, world=None
) -> dict[str, dict]:
    """Run the matrix (or its ``quick`` subset); ``{name: record}``."""
    selected = [c for c in cases if c.quick] if quick else list(cases)
    if not selected:
        raise ValueError("serve bench matrix selection is empty")
    if world is None:
        world = build_serve_world()
    return {case.name: run_serve_case(case, world) for case in selected}


# -- baseline files ----------------------------------------------------------
def to_document(records: dict[str, dict]) -> dict:
    """The ``BENCH_serve.json`` document for a set of case records."""
    return {
        "schema": SCHEMA_VERSION,
        "tolerance": DEFAULT_TOLERANCE,
        "cases": dict(sorted(records.items())),
    }


def write_baseline(records: dict[str, dict], path) -> Path:
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(to_document(records), indent=1, sort_keys=True) + "\n"
    )
    return path


def load_baseline(path) -> dict:
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"baseline {path} has schema {doc.get('schema')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    return doc


#: Metrics gated by *relative* drift (scale-dependent quantities).
_RELATIVE_METRICS = ("latency_p50_s", "latency_p99_s", "throughput_rps",
                     "makespan_s")
#: Metrics gated by *absolute* drift (ratios in [0, 1]).
_ABSOLUTE_METRICS = ("cache_hit_ratio", "utilization")
#: Counts that must match exactly (the workload is seeded).
_EXACT_METRICS = ("offered", "completed", "rejected", "model_steps")


def compare(
    current: dict,
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    require_all: bool = True,
) -> list[str]:
    """Drift messages between two serve bench documents (empty = pass).

    Latencies and throughput gate on relative drift, ratio metrics on
    absolute drift, and the seeded counts (offered / completed /
    rejected / model steps) must match exactly — a changed count means
    the deterministic replay itself changed, which is never a rounding
    story.
    """
    problems: list[str] = []

    def rel(cur: float, base: float) -> float:
        if base == 0.0:
            return math.inf if cur else 0.0
        return abs(cur - base) / abs(base)

    for name, base_case in sorted(baseline.get("cases", {}).items()):
        cur_case = current.get("cases", {}).get(name)
        if cur_case is None:
            if require_all:
                problems.append(f"{name}: missing from current run")
            continue
        for metric in _RELATIVE_METRICS:
            drift = rel(cur_case[metric], base_case[metric])
            if drift > tolerance:
                problems.append(
                    f"{name}: {metric} drifted {drift:.1%} "
                    f"({base_case[metric]:.6g} -> {cur_case[metric]:.6g})"
                )
        for metric in _ABSOLUTE_METRICS:
            drift = abs(cur_case[metric] - base_case[metric])
            if drift > tolerance:
                problems.append(
                    f"{name}: {metric} drifted {drift:.3f} "
                    f"({base_case[metric]:.4f} -> {cur_case[metric]:.4f})"
                )
        for metric in _EXACT_METRICS:
            if cur_case[metric] != base_case[metric]:
                problems.append(
                    f"{name}: {metric} changed "
                    f"({base_case[metric]} -> {cur_case[metric]}) — seeded "
                    "replay is no longer identical"
                )
    return problems


def summary_table(doc: dict) -> str:
    """Paper-style text table of a serve bench document."""
    from repro.experiments.common import format_table

    rows = []
    for name, case in sorted(doc["cases"].items()):
        rows.append(
            [
                name,
                case["offered"],
                case["rejected"],
                f"{case['throughput_rps']:.1f}",
                f"{case['latency_p50_s'] * 1e3:.2f}",
                f"{case['latency_p99_s'] * 1e3:.2f}",
                f"{case['cache_hit_ratio']:.2f}",
                case["replicas_peak"],
                f"{case['utilization']:.2f}",
            ]
        )
    return format_table(
        ["case", "offered", "rej", "rps", "p50 ms", "p99 ms", "hit", "peak R",
         "util"],
        rows,
        title="repro serve: latency/throughput under seeded load",
    )

"""Typed forecast requests and responses.

A :class:`ForecastRequest` is what one simulated user asks for: "from
the synoptic window at ``init_index``, give me these variables at this
lead".  Requests carrying the same variable set are batch-compatible —
they share a model invocation grid — and requests for the same
``init_index`` share an autoregressive rollout prefix regardless of
lead (see :mod:`repro.serve.cache`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class RequestError(ValueError):
    """An invalid forecast request (the CLI maps this to exit 2)."""


#: Response terminal states.
STATUS_OK = "ok"
STATUS_REJECTED = "rejected"


@dataclass(frozen=True)
class ForecastRequest:
    """One user's forecast ask, stamped with its open-loop arrival time."""

    request_id: int
    init_index: int
    lead_steps: int
    out_vars: tuple[str, ...]
    arrival_s: float

    def __post_init__(self):
        if self.init_index < 0:
            raise RequestError(f"init_index {self.init_index} must be >= 0")
        if self.lead_steps < 1:
            raise RequestError(f"lead_steps {self.lead_steps} must be >= 1")
        if not self.out_vars:
            raise RequestError("out_vars must name at least one variable")
        if self.arrival_s < 0:
            raise RequestError(f"arrival_s {self.arrival_s} must be >= 0")
        object.__setattr__(self, "out_vars", tuple(self.out_vars))

    @property
    def batch_key(self) -> tuple:
        """Micro-batching compatibility class: same variables share a
        model output grid, so they can ride one dispatch."""
        return self.out_vars


@dataclass
class ForecastResponse:
    """What came back: the forecast array plus the latency decomposition."""

    request: ForecastRequest
    status: str
    completed_s: float
    result: np.ndarray | None = None
    dispatched_s: float = 0.0
    batch_id: int = -1
    replica: int = -1
    cache_hit: bool = False
    #: Autoregressive model applications this request newly paid for
    #: (0 on a full prefix-cache hit).
    model_steps: int = 0
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def latency_s(self) -> float:
        """Arrival-to-completion latency on the simulated clock."""
        return self.completed_s - self.request.arrival_s

    def as_dict(self) -> dict:
        """JSON-able summary (the array stays out of artifacts)."""
        return {
            "request_id": self.request.request_id,
            "init_index": self.request.init_index,
            "lead_steps": self.request.lead_steps,
            "out_vars": list(self.request.out_vars),
            "status": self.status,
            "arrival_s": self.request.arrival_s,
            "completed_s": self.completed_s,
            "latency_s": self.latency_s,
            "batch_id": self.batch_id,
            "replica": self.replica,
            "cache_hit": self.cache_hit,
            "model_steps": self.model_steps,
        }


@dataclass
class LatencyWindow:
    """Sliding window of recent latencies for autoscaling decisions.

    Nearest-rank percentiles over the last ``capacity`` completions —
    small, deterministic, and recency-weighted the way a scaler needs
    (a p99 over the whole run would never come back down after a
    transient spike).
    """

    capacity: int = 128
    values: list[float] = field(default_factory=list)

    def observe(self, latency_s: float) -> None:
        self.values.append(float(latency_s))
        if len(self.values) > self.capacity:
            del self.values[: len(self.values) - self.capacity]

    def percentile(self, q: float) -> float:
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(0, -(-int(q) * len(ordered) // 100) - 1)
        rank = min(rank, len(ordered) - 1)
        return ordered[rank]

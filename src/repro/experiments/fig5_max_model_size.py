"""Fig 5 — maximal model size per parallelism vs GPU count.

Paper result (batch 2, 48 channels, 64 GB GCDs): at 512 GPUs FSDP
saturates near 20B parameters (full-model gather), plain tensor
parallelism near 73B (head-count limit), and Hybrid-STOP reaches 143B.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import format_params, format_table
from repro.memory.estimator import MemoryModel, Parallelism
from repro.models.configs import ORBIT_113B, OrbitConfig

DEFAULT_GPU_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

PAPER_ANCHORS_512 = {
    Parallelism.FSDP: 20e9,
    Parallelism.TENSOR: 73e9,
    Parallelism.HYBRID_STOP: 143e9,
}


@dataclass
class Fig5Result:
    """Max fitted parameter count per (parallelism, GPU count)."""

    max_params: dict[Parallelism, dict[int, int]] = field(default_factory=dict)

    def at(self, parallelism: Parallelism, gpus: int) -> int:
        return self.max_params[parallelism][gpus]

    def format(self) -> str:
        gpu_counts = sorted(next(iter(self.max_params.values())))
        headers = ["GPUs"] + [p.value for p in self.max_params]
        rows = [
            [gpus] + [format_params(self.max_params[p][gpus]) for p in self.max_params]
            for gpus in gpu_counts
        ]
        return format_table(headers, rows, title="Fig 5: maximal model size (parameters)")


def run(
    gpu_counts=DEFAULT_GPU_COUNTS,
    template: OrbitConfig = ORBIT_113B,
    micro_batch: int = 2,
    memory_model: MemoryModel | None = None,
) -> Fig5Result:
    """Scan the maximal model size for each parallelism and GPU count."""
    model = memory_model or MemoryModel()
    result = Fig5Result()
    for parallelism in (Parallelism.FSDP, Parallelism.TENSOR, Parallelism.HYBRID_STOP):
        result.max_params[parallelism] = {
            gpus: model.max_model_size(parallelism, gpus, template, micro_batch)[0]
            for gpus in gpu_counts
        }
    return result

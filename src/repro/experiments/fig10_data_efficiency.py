"""Fig 10 — fine-tuning data efficiency vs model size.

Paper result (30-day task): samples to convergence fall with size —
about 76,000 for 115M, 47,000 for 1B, 32,800 for 10B (a 38% / 57%
reduction relative to the smallest model).

Reproduction: three proxy sizes are pre-trained identically on the
synthetic CMIP6 archive, then fine-tuned on synthetic ERA5 with the
convergence detector of :class:`~repro.train.finetune.Finetuner`; the
recorded quantity is the number of ERA5 samples processed until the
validation wACC for the 30-day task stops improving.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.data.climatology import Climatology
from repro.data.cmip6 import SyntheticCMIP6Archive
from repro.data.era5 import SyntheticERA5
from repro.data.grid import LatLonGrid
from repro.data.loader import BatchLoader, round_robin_loaders
from repro.data.normalization import Normalizer
from repro.data.variables import default_registry
from repro.eval.forecast import ForecastEvaluator
from repro.experiments.common import format_table
from repro.experiments.fig9_wacc import ATMOSPHERIC_SPEC, DEFAULT_NAMES, LEAD_STEPS, _tiny_config
from repro.models import build_model
from repro.models.configs import OrbitConfig
from repro.train import AdamW, Finetuner, Trainer, WarmupCosineSchedule

PAPER_SAMPLES = {"orbit-115m": 76_000, "orbit-1b": 47_000, "orbit-10b": 32_800}


@dataclass
class Fig10Result:
    """Samples to convergence per model size (ascending size order)."""

    samples: dict[str, int] = field(default_factory=dict)
    best_wacc: dict[str, float] = field(default_factory=dict)

    def reductions(self) -> dict[str, float]:
        """Relative sample reduction vs the smallest model."""
        names = list(self.samples)
        base = self.samples[names[0]]
        return {n: 1.0 - self.samples[n] / base for n in names}

    def format(self) -> str:
        reductions = self.reductions()
        rows = [
            [name, self.samples[name], f"{self.best_wacc[name]:.3f}", f"{reductions[name]:.0%}"]
            for name in self.samples
        ]
        return format_table(
            ["model", "samples to converge", "best wACC", "reduction vs smallest"],
            rows,
            title="Fig 10: fine-tuning data efficiency (30-day task)",
        )


def default_size_ladder(num_vars: int, grid: LatLonGrid) -> dict[str, OrbitConfig]:
    """Three sizes mirroring 115M / 1B / 10B at workstation scale."""
    base = _tiny_config(num_vars, grid, qk_layernorm=True, name="size")
    return {
        "proxy-115m": dataclasses.replace(base, name="proxy-115m", embed_dim=16, depth=1,
                                          num_heads=2),
        "proxy-1b": dataclasses.replace(base, name="proxy-1b", embed_dim=32, depth=2,
                                        num_heads=4),
        "proxy-10b": dataclasses.replace(base, name="proxy-10b", embed_dim=64, depth=2,
                                         num_heads=4),
    }


def run(
    grid: LatLonGrid = LatLonGrid(16, 32),
    names: list[str] | None = None,
    pretrain_steps: int = 200,
    max_finetune_steps: int = 500,
    eval_interval: int = 10,
    batch_size: int = 4,
    steps_per_year: int = 240,
    patience: int = 3,
    tolerance: float = 0.01,
    lr: float = 3e-3,
    seed: int = 0,
    sizes: dict[str, OrbitConfig] | None = None,
) -> Fig10Result:
    """Fine-tune the size ladder to convergence on the 30-day task."""
    names = names or DEFAULT_NAMES
    registry = default_registry(91).subset(names)
    era5 = SyntheticERA5(
        grid, registry, steps_per_year=steps_per_year, seed=seed + 1979,
        spec=ATMOSPHERIC_SPEC,
    )
    train, val = era5.train(), era5.validation()
    normalizer = Normalizer.fit(train, num_samples=24)
    climatology = Climatology.from_dataset(train, num_samples=64)
    evaluator = ForecastEvaluator(val, climatology, num_initializations=2)
    archive = SyntheticCMIP6Archive(
        grid, registry, years_per_source=0.1, seed=seed + 6, spec=ATMOSPHERIC_SPEC,
    )
    sizes = sizes or default_size_ladder(len(registry), grid)

    result = Fig10Result()
    for name, config in sizes.items():
        # Identical pre-training recipe per size.
        pre_config = dataclasses.replace(config, out_vars=len(registry))
        model = build_model(pre_config, rng=seed)
        pre_batches = round_robin_loaders(
            archive.datasets(), batch_size, lead_steps_choices=(1,),
            normalizer=normalizer, seed=seed,
        )
        optimizer = AdamW(model.parameters(), lr=lr, weight_decay=0.0)
        schedule = WarmupCosineSchedule(
            lr, warmup_steps=min(5, pretrain_steps - 1), total_steps=pretrain_steps
        )
        Trainer(model, pre_batches, grid.latitude_weights(), optimizer,
                schedule=schedule).train(pretrain_steps)

        finetuned = build_model(config, rng=seed + 1)
        state = finetuned.state_dict()
        for key, value in model.state_dict().items():
            if key in state and state[key].shape == value.shape:
                state[key] = value
        finetuned.load_state_dict(state)

        loader = BatchLoader(
            train, batch_size, lead_steps_choices=(LEAD_STEPS[30],),
            normalizer=normalizer, seed=seed + 2,
        )
        ft_optimizer = AdamW(finetuned.parameters(), lr=lr, weight_decay=0.0)
        trainer = Trainer(
            finetuned, loader.batches(10**9), grid.latitude_weights(), ft_optimizer
        )
        tuner = Finetuner(trainer, evaluator, normalizer, eval_lead_steps=LEAD_STEPS[30],
                          model_name=name)
        outcome = tuner.run(
            max_steps=max_finetune_steps,
            eval_interval=eval_interval,
            patience=patience,
            tolerance=tolerance,
        )
        result.samples[name] = outcome.samples_to_converge
        result.best_wacc[name] = outcome.best_wacc
    return result

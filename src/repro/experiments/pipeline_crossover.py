"""Pipeline-vs-FSDP crossover — the regime the 4D axis exists for.

ORBIT's Hybrid-STOP (paper Sec II) excludes pipeline parallelism,
citing its layer-count limit; the comparative literature (PAPERS.md:
layer-parallel training, the hybrid-parallelism design guide) predicts
the pipeline axis wins at a *fixed* GCD count in identifiable regimes.
This driver reproduces one such point with the 4D tuner.

The mechanism: activation memory is not sharded by FSDP (every rank
holds its own micro-batch), so at a large enough micro-batch every 3D
plan must either activation-checkpoint — re-paying 1/3 of the trunk
compute — or shard tensor-parallel, paying collectives and halving the
observations per step.  A 1F1B pipeline bounds in-flight activations
to ``min(S, M)/M`` of the fused step and holds only its stage's
parameters, so a ``pp>1`` plan fits un-checkpointed and pays only the
bubble ``(S-1)/(M+S-1)``: pipeline outranks recompute whenever
``M > 3*(S-1)``.

Default point: ORBIT-115M on 16 GCDs (2 nodes x 8) at micro-batch 32.
Every ``tp=1`` 3D plan exceeds device memory, the best fitting 3D plan
(``tp2 + recompute``) pays both penalties, and the 2-stage pipeline
wins on time per observation with the bubble visible in its breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import format_table
from repro.models.configs import ORBIT_115M, OrbitConfig
from repro.tune.estimator import AnalyticEstimator, Estimate
from repro.tune.space import Candidate, TuneRequest, enumerate_space


@dataclass
class CrossoverRow:
    """One ranked plan of the fixed-GCD sweep."""

    candidate: Candidate
    estimate: Estimate
    simulated_step_s: float | None = None

    @property
    def pipelined(self) -> bool:
        return self.candidate.pp_size > 1


@dataclass
class CrossoverResult:
    config_name: str
    num_gpus: int
    gpus_per_node: int
    micro_batch: int
    #: Memory-feasible plans, best time-per-observation first.
    rows: list[CrossoverRow] = field(default_factory=list)
    oom_3d: int = 0
    oom_4d: int = 0

    def best(self, pipelined: bool) -> CrossoverRow:
        for row in self.rows:
            if row.pipelined == pipelined:
                return row
        kind = "pipelined" if pipelined else "3D"
        raise RuntimeError(f"no {kind} plan fits on {self.num_gpus} GCDs")

    @property
    def crossed_over(self) -> bool:
        """True when the best 4D plan outranks the best 3D plan."""
        return (
            self.best(True).estimate.time_per_obs_s
            < self.best(False).estimate.time_per_obs_s
        )

    @property
    def speedup(self) -> float:
        """Best-3D time per observation over best-4D (> 1 == pipeline wins)."""
        return (
            self.best(False).estimate.time_per_obs_s
            / self.best(True).estimate.time_per_obs_s
        )

    def format(self, limit: int = 8) -> str:
        shown = list(self.rows[:limit])
        # Keep the two front-runners in frame even when one camp sweeps
        # the top of the ranking.
        for pipelined in (False, True):
            try:
                row = self.best(pipelined)
            except RuntimeError:
                continue
            if row not in shown:
                shown.append(row)
        table_rows = []
        for row in shown:
            estimate = row.estimate
            table_rows.append([
                row.candidate.label(),
                f"{estimate.time_per_obs_s:.6f}",
                f"{estimate.bubble_s:.4f}" if row.pipelined else "-",
                f"{estimate.bubble_fraction:.3f}" if row.pipelined else "-",
                f"{estimate.peak_memory_bytes / 2**30:.1f} GiB",
                f"{row.simulated_step_s:.4f}"
                if row.simulated_step_s is not None else "-",
            ])
        best_3d, best_4d = self.best(False), self.best(True)
        verdict = (
            f"pipeline wins: {best_4d.candidate.label()} is {self.speedup:.2f}x "
            f"the best 3D plan {best_3d.candidate.label()} "
            f"(bubble {best_4d.estimate.bubble_s:.4f} s vs recompute/TP overheads)"
            if self.crossed_over
            else f"no crossover: best 3D plan {best_3d.candidate.label()} "
            f"still leads {best_4d.candidate.label()}"
        )
        return "\n".join([
            format_table(
                ["config", "t/obs", "bubble_s", "bubble_frac", "mem/GCD", "sim_step_s"],
                table_rows,
                title=(
                    f"Pipeline-vs-FSDP crossover: {self.config_name} on "
                    f"{self.num_gpus} GCDs x mb{self.micro_batch} "
                    f"({self.oom_3d} 3D / {self.oom_4d} 4D plans OOM-pruned)"
                ),
            ),
            "",
            verdict,
        ])


def run(
    config: OrbitConfig = ORBIT_115M,
    num_gpus: int = 16,
    gpus_per_node: int = 8,
    micro_batch: int = 32,
    pp_sizes: tuple[int, ...] = (1, 2),
    validate: bool = True,
) -> CrossoverResult:
    """Rank the 4D space at one fixed-GCD point; pin the micro-batch.

    The micro-batch is pinned (like Fig 6's operating regime) because
    the crossover is a statement about a *batch* workload: at small
    micro-batches every 3D plan fits un-checkpointed and the bubble has
    nothing to buy back.  ``validate=True`` also runs one real
    simulated engine step for the two front-runners — the same
    harness ``repro tune`` validates with — as an exactness check.
    """
    request = TuneRequest(
        config, num_gpus, gpus_per_node=gpus_per_node,
        micro_batches=(micro_batch,),
        recompute_options=(False, True), prefetch_options=(True,),
        pp_sizes=pp_sizes,
    )
    estimator = AnalyticEstimator(config, num_gpus, gpus_per_node)
    space = enumerate_space(request)
    scored = [
        CrossoverRow(candidate, estimator.estimate(candidate))
        for candidate in space.candidates
    ]
    result = CrossoverResult(
        config_name=config.name, num_gpus=num_gpus,
        gpus_per_node=gpus_per_node, micro_batch=micro_batch,
    )
    result.rows = sorted(
        (row for row in scored if row.estimate.fits),
        key=lambda row: row.estimate.time_per_obs_s,
    )
    result.oom_3d = sum(
        1 for row in scored if not row.estimate.fits and not row.pipelined
    )
    result.oom_4d = sum(
        1 for row in scored if not row.estimate.fits and row.pipelined
    )
    if validate:
        from repro.tune.search import simulate_candidate

        for pipelined in (False, True):
            try:
                row = result.best(pipelined)
            except RuntimeError:
                continue
            row.simulated_step_s = simulate_candidate(
                request, row.candidate
            )["step_time_s"]
    return result
